/**
 * @file
 * Shared helpers for the bench binaries. Each binary regenerates one
 * paper table or figure and, where the paper publishes numbers,
 * prints them side-by-side for comparison.
 */

#ifndef EDGEBENCH_BENCH_UTIL_HH
#define EDGEBENCH_BENCH_UTIL_HH

#include <iostream>
#include <optional>
#include <string>

#include "edgebench/frameworks/deploy.hh"
#include "edgebench/harness/experiment.hh"
#include "edgebench/harness/report.hh"

namespace edgebench
{
namespace bench
{

/** Print the standard experiment banner from the registry. */
inline void
banner(const std::string& id)
{
    const auto& e = harness::experiment(id);
    harness::printBanner(std::cout, id,
                         e.metric + " (paper Section " + e.section +
                             ")");
}

/** Latency of (framework, model, device); nullopt when undeployable. */
inline std::optional<double>
latencyMs(frameworks::FrameworkId fw, models::ModelId m,
          hw::DeviceId d)
{
    auto dep = frameworks::tryDeploy(fw, models::buildModel(m), d);
    if (!dep)
        return std::nullopt;
    return dep->model.latencyMs();
}

/** "123.4" or a fixed placeholder for undeployable combinations. */
inline std::string
cell(std::optional<double> v, int precision = 1,
     const std::string& placeholder = "n/a")
{
    return v ? harness::Table::num(*v, precision) : placeholder;
}

} // namespace bench
} // namespace edgebench

#endif // EDGEBENCH_BENCH_UTIL_HH
