/**
 * @file
 * Shared helpers for the bench binaries. Each binary regenerates one
 * paper table or figure and, where the paper publishes numbers,
 * prints them side-by-side for comparison.
 */

#ifndef EDGEBENCH_BENCH_UTIL_HH
#define EDGEBENCH_BENCH_UTIL_HH

#include <cstdlib>
#include <iostream>
#include <optional>
#include <string>

#include "edgebench/core/parallel.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/harness/experiment.hh"
#include "edgebench/harness/report.hh"

namespace edgebench
{
namespace bench
{

/**
 * Apply a --threads <n> argument (or EDGEBENCH_THREADS) to the kernel
 * thread pool before any timed work. Determinism makes the thread
 * count a pure performance knob: results are identical for any value.
 */
inline void
initThreads(int argc, char** argv)
{
    int threads = -1;
    if (const char* env = std::getenv("EDGEBENCH_THREADS"))
        threads = std::atoi(env);
    for (int i = 1; i + 1 < argc; ++i)
        if (std::string(argv[i]) == "--threads")
            threads = std::atoi(argv[i + 1]);
    if (threads >= 0)
        core::setParallelism(threads);
}

/** Print the standard experiment banner from the registry. */
inline void
banner(const std::string& id)
{
    const auto& e = harness::experiment(id);
    harness::printBanner(std::cout, id,
                         e.metric + " (paper Section " + e.section +
                             ")");
}

/** Latency of (framework, model, device); nullopt when undeployable. */
inline std::optional<double>
latencyMs(frameworks::FrameworkId fw, models::ModelId m,
          hw::DeviceId d)
{
    auto dep = frameworks::tryDeploy(fw, models::buildModel(m), d);
    if (!dep)
        return std::nullopt;
    return dep->model.latencyMs();
}

/** "123.4" or a fixed placeholder for undeployable combinations. */
inline std::string
cell(std::optional<double> v, int precision = 1,
     const std::string& placeholder = "n/a")
{
    return v ? harness::Table::num(*v, precision) : placeholder;
}

} // namespace bench
} // namespace edgebench

#endif // EDGEBENCH_BENCH_UTIL_HH
