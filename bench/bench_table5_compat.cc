/**
 * @file
 * Regenerates Table V (models x platforms compatibility matrix).
 * Marks: OK = runs; ^ = dynamic-graph swap; O = code
 * incompatibility; 4 = EdgeTPU conversion barrier; ^^ = exceeds the
 * FPGA BRAM / toolchain scope.
 */

#include <iostream>

#include "bench_util.hh"

using namespace edgebench;

int
main()
{
    bench::banner("table5");

    const models::ModelId rows[] = {
        models::ModelId::kResNet18,  models::ModelId::kResNet50,
        models::ModelId::kMobileNetV2,
        models::ModelId::kInceptionV4, models::ModelId::kAlexNet,
        models::ModelId::kVgg16,
        models::ModelId::kSsdMobileNetV1,
        models::ModelId::kTinyYolo,  models::ModelId::kC3d,
    };
    const hw::DeviceId cols[] = {
        hw::DeviceId::kRpi3,     hw::DeviceId::kJetsonTx2,
        hw::DeviceId::kJetsonNano, hw::DeviceId::kEdgeTpu,
        hw::DeviceId::kMovidius, hw::DeviceId::kPynqZ1,
    };

    std::vector<std::string> headers{"Model"};
    for (auto d : cols)
        headers.push_back(hw::deviceName(d));
    harness::Table t(std::move(headers));

    for (auto m : rows) {
        std::vector<std::string> cells{models::modelInfo(m).name};
        for (auto d : cols)
            cells.push_back(frameworks::markSymbol(
                frameworks::deploymentMark(m, d)));
        t.addRow(std::move(cells));
    }
    t.print(std::cout);
    std::cout << "\nLegend: OK runs | ^ dynamic-graph swap (10x) | "
                 "O code incompatibility | 4 conversion barrier | "
                 "^^ exceeds BRAM/toolchain scope\n";
    return 0;
}
