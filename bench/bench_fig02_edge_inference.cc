/**
 * @file
 * Regenerates Fig. 2: time per inference on all edge devices with the
 * best-performing framework per (model, device).
 */

#include <iostream>

#include "bench_util.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig2");

    const models::ModelId rows[] = {
        models::ModelId::kResNet18,  models::ModelId::kResNet50,
        models::ModelId::kMobileNetV2,
        models::ModelId::kInceptionV4, models::ModelId::kAlexNet,
        models::ModelId::kVgg16,
        models::ModelId::kSsdMobileNetV1,
        models::ModelId::kTinyYolo,  models::ModelId::kC3d,
    };

    std::vector<std::string> headers{"Model"};
    for (auto d : hw::edgeDevices())
        headers.push_back(hw::deviceName(d) + " (ms)");
    harness::Table t(std::move(headers));

    harness::Table who({"Model", "Device", "Best framework",
                        "Time (ms)"});
    // The paper's TX2 numbers come from the general-purpose
    // frameworks only (Table IV: TX2/PT) -- TensorRT was evaluated on
    // the Nano. Mirror that selection.
    auto best_per_paper = [](const graph::Graph& g, hw::DeviceId d)
        -> std::optional<frameworks::Deployment> {
        if (d != hw::DeviceId::kJetsonTx2)
            return frameworks::bestDeployment(g, d);
        std::optional<frameworks::Deployment> best;
        for (auto fw : {frameworks::FrameworkId::kPyTorch,
                        frameworks::FrameworkId::kTensorFlow,
                        frameworks::FrameworkId::kCaffe,
                        frameworks::FrameworkId::kDarkNet}) {
            auto dep = frameworks::tryDeploy(fw, g, d);
            if (dep && (!best || dep->model.latencyMs() <
                                     best->model.latencyMs()))
                best = std::move(dep);
        }
        return best;
    };
    for (auto m : rows) {
        std::vector<std::string> cells{models::modelInfo(m).name};
        for (auto d : hw::edgeDevices()) {
            auto best = best_per_paper(models::buildModel(m), d);
            if (best) {
                cells.push_back(harness::Table::num(
                    best->model.latencyMs(), 1));
                who.addRow({models::modelInfo(m).name,
                            hw::deviceName(d),
                            frameworks::frameworkName(best->framework),
                            harness::Table::num(
                                best->model.latencyMs(), 1)});
            } else {
                cells.push_back("n/a");
            }
        }
        t.addRow(std::move(cells));
    }
    t.print(std::cout);
    std::cout << "\nBest framework per cell:\n";
    who.print(std::cout);
    return 0;
}
