/**
 * @file
 * Memory-planner benchmark: end-to-end interpreter latency with the
 * static arena planner on vs. the legacy refcount allocate/release
 * path, plus the memory numbers the planner is about (arena bytes vs
 * refcount peak vs naive sum of all activations).
 *
 * Verifies on every run that the two paths produce byte-identical
 * outputs (exit 1 on mismatch) — this is the same contract the
 * `memplan` ctest label checks, kept here so the perf trajectory can
 * never silently diverge from correctness.
 *
 * `--json [--out <path>]` writes a BENCH_memplan.json snapshot (one
 * record per model/mode) so CI keeps a performance trajectory to
 * regress against; there is no pass/fail latency threshold here.
 */

#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "edgebench/core/parallel.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/core/tensor.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/memplan.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/models/zoo.hh"

namespace ec = edgebench::core;
namespace eg = edgebench::graph;
namespace em = edgebench::models;

namespace
{

struct Case
{
    std::string name;
    double legacyMs;
    double plannedMs;
    std::int64_t arenaBytes;
    std::int64_t refcountPeakBytes;
    std::int64_t sumAllocBytes;
};

/** Best-of-reps wall time of @p fn (same scaling as bench_gemm). */
template <typename F>
double
bestMs(F&& fn)
{
    std::int64_t iters = 1;
    for (;;) {
        const auto t0 = std::chrono::steady_clock::now();
        for (std::int64_t i = 0; i < iters; ++i)
            fn();
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (ms >= 40.0 || iters >= (1 << 20)) {
            double best = ms / static_cast<double>(iters);
            for (int r = 0; r < 4; ++r) {
                const auto r0 = std::chrono::steady_clock::now();
                for (std::int64_t i = 0; i < iters; ++i)
                    fn();
                const double rms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - r0)
                        .count();
                best = std::min(best,
                                rms / static_cast<double>(iters));
            }
            return best;
        }
        iters *= 2;
    }
}

bool
bitIdentical(const ec::Tensor& a, const ec::Tensor& b)
{
    if (a.dtype() != b.dtype() || !ec::sameShape(a.shape(), b.shape()))
        return false;
    if (a.dtype() == ec::DType::kI8) {
        auto qa = a.qdata();
        auto qb = b.qdata();
        return std::memcmp(qa.data(), qb.data(), qa.size()) == 0;
    }
    auto da = a.data();
    auto db = b.data();
    return std::memcmp(da.data(), db.data(),
                       da.size() * sizeof(float)) == 0;
}

/** One model through both executor paths; false on output mismatch. */
bool
runModel(std::vector<Case>& cases, const std::string& name,
         const eg::Graph& g, const ec::Tensor& x)
{
    eg::Interpreter legacy(g);
    legacy.setUseMemoryPlan(false);
    eg::Interpreter planned(g);
    planned.setUseMemoryPlan(true);

    const auto ref = legacy.run({x});
    const auto out = planned.run({x});
    bool ok = ref.size() == out.size();
    for (std::size_t i = 0; ok && i < ref.size(); ++i)
        ok = bitIdentical(ref[i], out[i]);

    Case c;
    c.name = name;
    c.legacyMs = bestMs([&] { legacy.run({x}); });
    c.plannedMs = bestMs([&] { planned.run({x}); });
    const auto& plan = planned.memoryPlan();
    c.arenaBytes = plan.arenaBytes;
    c.refcountPeakBytes = plan.refcountPeakBytes;
    c.sumAllocBytes = plan.sumAllocBytes;
    cases.push_back(c);

    std::cout << "  " << name;
    for (std::size_t pad = name.size(); pad < 26; ++pad)
        std::cout << ' ';
    std::cout << "legacy " << c.legacyMs << " ms  planned "
              << c.plannedMs << " ms  arena "
              << c.arenaBytes / 1024 << " KiB  peak "
              << c.refcountPeakBytes / 1024 << " KiB  sum "
              << c.sumAllocBytes / 1024 << " KiB"
              << (ok ? "" : "  OUTPUT MISMATCH") << "\n";
    return ok;
}

} // namespace

int
main(int argc, char** argv)
{
    bool json = false;
    std::string out_path = "BENCH_memplan.json";
    int threads = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json")
            json = true;
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else if (arg == "--threads" && i + 1 < argc)
            threads = std::atoi(argv[++i]);
    }
    ec::setParallelism(threads);

    std::cout << "bench_memplan: arena planner vs refcount path "
              << "(threads=" << threads << ")\n";
    std::vector<Case> cases;
    bool ok = true;
    ec::Rng rng(17);

    {
        auto g = em::buildCifarNet();
        g.materializeParams(rng);
        auto x = ec::Tensor::randomNormal({1, 3, 32, 32}, rng);
        ok = runModel(cases, "cifarnet_f32", g, x) && ok;
    }
    {
        // The acceptance model: MobileNet-v1 fp32 at 96px.
        auto g = em::buildMobileNetV1(/*classes=*/1000, /*image=*/96);
        g.materializeParams(rng);
        auto x = ec::Tensor::randomNormal({1, 3, 96, 96}, rng);
        ok = runModel(cases, "mobilenet_v1_f32_96", g, x) && ok;
    }
    {
        auto g = em::buildMobileNetV2(/*classes=*/100, /*image=*/96);
        g.materializeParams(rng);
        auto x = ec::Tensor::randomNormal({1, 3, 96, 96}, rng);
        ok = runModel(cases, "mobilenet_v2_f32_96", g, x) && ok;
    }
    {
        auto g = em::buildMobileNetV1(/*classes=*/100, /*image=*/96);
        g.materializeParams(rng);
        auto x = ec::Tensor::randomNormal({1, 3, 96, 96}, rng);
        std::vector<ec::Tensor> calib = {x};
        auto q = eg::quantizeInt8(g, &calib).graph;
        ok = runModel(cases, "mobilenet_v1_int8_96", q, x) && ok;
    }
    {
        auto g = em::buildGruClassifier(/*features=*/40,
                                        /*seq_len=*/50,
                                        /*hidden=*/128,
                                        /*classes=*/12);
        g.materializeParams(rng);
        auto x = ec::Tensor::randomNormal({1, 50, 40}, rng);
        ok = runModel(cases, "gru_classifier_f32", g, x) && ok;
    }

    std::cout << "  planner vs legacy outputs: "
              << (ok ? "byte-identical" : "MISMATCH") << "\n";

    if (json) {
        std::ofstream f(out_path);
        f << "{\n  \"bench\": \"memplan\",\n  \"deterministic\": "
          << (ok ? "true" : "false") << ",\n  \"cases\": [\n";
        for (std::size_t i = 0; i < cases.size(); ++i) {
            const Case& cs = cases[i];
            f << "    {\"name\": \"" << cs.name
              << "\", \"threads\": " << threads
              << ", \"legacy_ms\": " << cs.legacyMs
              << ", \"planned_ms\": " << cs.plannedMs
              << ", \"arena_bytes\": " << cs.arenaBytes
              << ", \"refcount_peak_bytes\": " << cs.refcountPeakBytes
              << ", \"sum_alloc_bytes\": " << cs.sumAllocBytes << "}"
              << (i + 1 < cases.size() ? "," : "") << "\n";
        }
        f << "  ]\n}\n";
        std::cout << "  wrote " << out_path << "\n";
    }
    return ok ? 0 : 1;
}
