/**
 * @file
 * Extension bench: cloud-edge partitioning (Neurosurgeon-style,
 * paper reference [88]) across network-link classes.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/distrib/partition.hh"

using namespace edgebench;

int
main()
{
    std::cout << "\n== ext-partition: cloud-edge DNN splitting "
                 "(edge: RPi3/PyTorch, cloud: Titan Xp/PyTorch) ==\n";

    struct Link
    {
        const char* name;
        distrib::LinkModel model;
    };
    const Link links[] = {
        {"LAN (50 MB/s)", distrib::lanLink()},
        {"WiFi (5 MB/s)", distrib::wifiLink()},
        {"LTE (1 MB/s)", distrib::lteLink()},
    };
    const models::ModelId ms[] = {
        models::ModelId::kCifarNet, models::ModelId::kResNet18,
        models::ModelId::kResNet50, models::ModelId::kVgg16,
        models::ModelId::kVggS224,
    };

    for (const auto& link : links) {
        std::cout << "\nlink: " << link.name << "\n";
        harness::Table t({"Model", "Edge only (ms)",
                          "Cloud only (ms)", "Best split at",
                          "Best (ms)", "Gain vs best extreme"});
        for (auto m : ms) {
            auto edge = frameworks::tryDeploy(
                frameworks::FrameworkId::kPyTorch,
                models::buildModel(m), hw::DeviceId::kRpi3);
            auto cloud = frameworks::tryDeploy(
                frameworks::FrameworkId::kPyTorch,
                models::buildModel(m), hw::DeviceId::kTitanXp);
            if (!edge || !cloud) {
                t.addRow({models::modelInfo(m).name, "n/a", "n/a",
                          "-", "-", "-"});
                continue;
            }
            const auto r = distrib::partition(edge->model,
                                              cloud->model,
                                              link.model);
            const double best_extreme =
                std::min(r.edgeOnlyMs, r.cloudOnlyMs);
            t.addRow({models::modelInfo(m).name,
                      harness::Table::num(r.edgeOnlyMs, 1),
                      harness::Table::num(r.cloudOnlyMs, 1),
                      r.best.cutAfter < 0 ? "(cloud only)"
                                          : r.best.boundaryName,
                      harness::Table::num(r.best.totalMs, 1),
                      harness::Table::num(
                          best_extreme / r.best.totalMs, 2)});
        }
        t.print(std::cout);
    }
    // A capable edge device flips the outcome: the Nano keeps
    // everything local once the link is not free.
    std::cout << "\nedge: Jetson Nano (TensorRT), cloud: Titan Xp, "
                 "per-link best strategy for ResNet-50:\n";
    harness::Table t2({"Link", "Edge only (ms)", "Cloud only (ms)",
                       "Best strategy"});
    for (const auto& link : links) {
        auto edge = frameworks::tryDeploy(
            frameworks::FrameworkId::kTensorRt,
            models::buildModel(models::ModelId::kResNet50),
            hw::DeviceId::kJetsonNano);
        auto cloud = frameworks::tryDeploy(
            frameworks::FrameworkId::kPyTorch,
            models::buildModel(models::ModelId::kResNet50),
            hw::DeviceId::kTitanXp);
        const auto r =
            distrib::partition(edge->model, cloud->model, link.model);
        std::string strategy = r.best.cutAfter < 0
            ? "(cloud only)"
            : r.best.boundaryName;
        t2.addRow({link.name, harness::Table::num(r.edgeOnlyMs, 1),
                   harness::Table::num(r.cloudOnlyMs, 1), strategy});
    }
    t2.print(std::cout);

    std::cout << "\nShape: for a weak edge device (RPi3) every "
                 "usable link favors full offload; for a capable one "
                 "(Nano) anything slower than a LAN keeps inference "
                 "local — the two regimes the paper's introduction "
                 "contrasts (privacy/connectivity vs. cloud "
                 "offloading).\n";
    return 0;
}
