/**
 * @file
 * Regenerates Table I (model inventory: FLOP, parameters, FLOP/param)
 * and Fig. 1 (models sorted by FLOP/param).
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "edgebench/models/zoo.hh"

using namespace edgebench;

int
main()
{
    bench::banner("table1");

    harness::Table t({"Model", "Input", "GFLOP", "GFLOP(paper)",
                      "MParams", "MParams(paper)", "FLOP/Param",
                      "F/P(paper)", "Nodes"});
    struct Row
    {
        std::string name;
        double fpp;
    };
    std::vector<Row> fig1;

    for (auto id : models::allModels()) {
        const auto& info = models::modelInfo(id);
        const auto g = models::buildModel(id);
        const auto st = g.stats();
        const double gflop = static_cast<double>(st.macs) / 1e9;
        const double mparam = static_cast<double>(st.params) / 1e6;
        t.addRow({g.name(), info.inputSize,
                  harness::Table::num(gflop, 2),
                  harness::Table::num(info.paperGFlop, 2),
                  harness::Table::num(mparam, 2),
                  harness::Table::num(info.paperMParams, 2),
                  harness::Table::num(st.flopPerParam, 2),
                  harness::Table::num(info.paperFlopPerParam, 2),
                  std::to_string(st.numNodes)});
        fig1.push_back({g.name() + " " + info.inputSize,
                        st.flopPerParam});
    }
    t.print(std::cout);

    bench::banner("fig1");
    std::sort(fig1.begin(), fig1.end(),
              [](const Row& a, const Row& b) { return a.fpp < b.fpp; });
    harness::Figure f("fig1", "models sorted by FLOP/Param");
    std::vector<std::string> labels;
    std::vector<double> values;
    for (const auto& r : fig1) {
        labels.push_back(r.name);
        values.push_back(r.fpp);
    }
    f.addSeries("FLOP/Param", labels, values);
    f.print(std::cout);
    return 0;
}
