/**
 * @file
 * Extension bench: multi-batch throughput sweep.
 *
 * The paper's Section VI-C argues HPC platforms are designed for
 * multi-batch throughput and therefore gain little on single-batch
 * edge serving. This bench quantifies the other half of that claim:
 * as the batch grows, the HPC GPU's utilization ramp saturates and
 * its throughput advantage over the TX2 explodes, while the TX2
 * (already near-saturated at batch 1) gains little.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/graph/passes.hh"

using namespace edgebench;

int
main()
{
    std::cout << "\n== ext-batch: single- vs multi-batch throughput "
                 "(ResNet-50, PyTorch) ==\n";

    const auto g = models::buildModel(models::ModelId::kResNet50);
    const auto& tx2 = *hw::deviceSpec(hw::DeviceId::kJetsonTx2).gpu;
    const auto& txp = *hw::deviceSpec(hw::DeviceId::kTitanXp).gpu;
    const auto p_tx2 = frameworks::engineProfile(
        frameworks::FrameworkId::kPyTorch, hw::DeviceId::kJetsonTx2);
    const auto p_txp = frameworks::engineProfile(
        frameworks::FrameworkId::kPyTorch, hw::DeviceId::kTitanXp);

    harness::Table t({"Batch", "TX2 (img/s)", "Titan Xp (img/s)",
                      "Xp/TX2 throughput ratio"});
    for (std::int64_t batch : {1, 2, 4, 8, 16, 32, 64}) {
        const auto gb = graph::rebatch(g, batch).graph;
        const double tx2_ms =
            hw::graphLatencyUnchecked(gb, tx2, p_tx2).totalMs;
        const double txp_ms =
            hw::graphLatencyUnchecked(gb, txp, p_txp).totalMs;
        const double tput_tx2 = batch / tx2_ms * 1e3;
        const double tput_txp = batch / txp_ms * 1e3;
        t.addRow({std::to_string(batch),
                  harness::Table::num(tput_tx2, 1),
                  harness::Table::num(tput_txp, 1),
                  harness::Table::num(tput_txp / tput_tx2, 2)});
    }
    t.print(std::cout);
    std::cout << "\nAt batch 1 the HPC GPU wins by only a small "
                 "factor (the paper's point); with cloud-style "
                 "batching the gap widens by an order of magnitude — "
                 "which is why edge devices need a different design "
                 "point.\n";
    return 0;
}
