/**
 * @file
 * Regenerates Fig. 6: TensorFlow vs PyTorch time per inference on the
 * GTX Titan X, with the TF/PT speedup series.
 */

#include <iostream>

#include "bench_util.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig6");

    const models::ModelId rows[] = {
        models::ModelId::kResNet50, models::ModelId::kMobileNetV2,
        models::ModelId::kVgg16, models::ModelId::kVgg19,
    };

    harness::Table t({"Model", "PyTorch (ms)", "TensorFlow (ms)",
                      "Speedup (TF time / PT time)"});
    for (auto m : rows) {
        const auto pt = bench::latencyMs(
            frameworks::FrameworkId::kPyTorch, m,
            hw::DeviceId::kGtxTitanX);
        const auto tf = bench::latencyMs(
            frameworks::FrameworkId::kTensorFlow, m,
            hw::DeviceId::kGtxTitanX);
        t.addRow({models::modelInfo(m).name, bench::cell(pt, 2),
                  bench::cell(tf, 2),
                  (pt && tf) ? harness::Table::num(*tf / *pt, 2)
                             : "n/a"});
    }
    t.print(std::cout);
    std::cout << "\nPaper shape: PyTorch is faster than TensorFlow "
                 "on the HPC GPU for every model (speedup > 1).\n";
    return 0;
}
