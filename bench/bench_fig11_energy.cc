/**
 * @file
 * Regenerates Fig. 11: energy per inference (mJ, log-scale in the
 * paper) across platforms for four models.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/power/energy.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig11");

    const models::ModelId rows[] = {
        models::ModelId::kResNet18, models::ModelId::kResNet50,
        models::ModelId::kMobileNetV2, models::ModelId::kInceptionV4,
    };
    const hw::DeviceId cols[] = {
        hw::DeviceId::kRpi3,       hw::DeviceId::kJetsonNano,
        hw::DeviceId::kJetsonTx2,  hw::DeviceId::kEdgeTpu,
        hw::DeviceId::kMovidius,   hw::DeviceId::kGtxTitanX,
    };

    std::vector<std::string> headers{"Model"};
    for (auto d : cols)
        headers.push_back(hw::deviceName(d) + " (mJ)");
    harness::Table t(std::move(headers));
    for (auto m : rows) {
        std::vector<std::string> cells{models::modelInfo(m).name};
        for (auto d : cols) {
            auto dep =
                frameworks::bestDeployment(models::buildModel(m), d);
            cells.push_back(
                dep ? harness::Table::num(
                          power::energyPerInference(dep->model)
                              .energyPerInferenceMJ,
                          0)
                    : "n/a");
        }
        t.addRow(std::move(cells));
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors (mJ): EdgeTPU MobileNet-v2 ~11; "
                 "Jetson Nano ResNet-18 ~84; TX2 0.3-1 J; GTX Titan X "
                 "1-5 J; RPi highest everywhere.\n";
    return 0;
}
