/**
 * @file
 * Regenerates Table III (hardware platform specifications with the
 * paper's measured idle/average power).
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/hw/device.hh"

using namespace edgebench;

int
main()
{
    bench::banner("table3");

    harness::Table t({"Platform", "Category", "Compute Unit",
                      "Peak GFLOPS(f32)", "Peak GOPS(i8)",
                      "Mem BW GB/s", "Memory", "Idle W", "Avg W"});
    for (auto id : hw::allDevices()) {
        const auto& d = hw::deviceSpec(id);
        const auto& u = d.preferredUnit();
        t.addRow({d.name, hw::categoryName(d.category), u.name,
                  harness::Table::num(u.peakFor(core::DType::kF32), 0),
                  harness::Table::num(u.peakFor(core::DType::kI8), 0),
                  harness::Table::num(u.memBandwidthGBs, 1),
                  d.memoryDescription,
                  harness::Table::num(d.idlePowerW, 2),
                  harness::Table::num(d.averagePowerW, 2)});
    }
    t.print(std::cout);

    std::cout << "\nSupported frameworks per platform "
                 "(Table III 'Platform' row):\n";
    for (auto id : hw::allDevices()) {
        std::cout << "  " << hw::deviceName(id) << ": ";
        bool first = true;
        for (auto fw : frameworks::frameworksFor(id)) {
            if (!first)
                std::cout << ", ";
            std::cout << frameworks::frameworkName(fw);
            first = false;
        }
        std::cout << "\n";
    }
    return 0;
}
