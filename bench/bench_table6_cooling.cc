/**
 * @file
 * Regenerates Table VI (cooling instruments + idle temperatures) and
 * derived steady-state behaviour.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/thermal/thermal.hh"

using namespace edgebench;

int
main()
{
    bench::banner("table6");

    const hw::DeviceId devices[] = {
        hw::DeviceId::kRpi3,       hw::DeviceId::kJetsonTx2,
        hw::DeviceId::kJetsonNano, hw::DeviceId::kEdgeTpu,
        hw::DeviceId::kMovidius,
    };

    harness::Table t({"Device", "Heatsink", "Size", "Fan",
                      "Idle Temp (C)", "Fan Activates (Fig.14)"});
    for (auto d : devices) {
        const auto& c = thermal::coolingSpec(d);
        t.addRow({hw::deviceName(d), c.heatsink ? "yes" : "no",
                  c.heatsinkSize, c.fan ? "yes" : "no",
                  harness::Table::num(c.idleTempC, 1),
                  c.fanActivates ? "yes" : "no"});
    }
    t.print(std::cout);
    return 0;
}
