/**
 * @file
 * google-benchmark microbenchmarks of the real compute kernels: GEMM,
 * im2col convolution (dense/depthwise), INT8 convolution/dense, LSTM,
 * quantization, and graph-interpreter end-to-end CifarNet inference.
 * These measure this machine, not the modeled devices — they document
 * the functional substrate's own performance.
 *
 * Kernel benchmarks take a trailing thread-count argument (the pool
 * is deterministic, so every thread count computes bit-identical
 * results); comparing the /1 and /4 rows gives the parallel speedup
 * quoted in docs/PERFORMANCE.md.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>

#include "edgebench/core/kernels.hh"
#include "edgebench/core/kernels_int8.hh"
#include "edgebench/core/kernels_rnn.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/models/zoo.hh"

namespace ec = edgebench::core;
namespace eg = edgebench::graph;
namespace em = edgebench::models;

namespace
{

/** Apply the benchmark's thread-count argument to the kernel pool. */
void
applyThreads(benchmark::State& state, std::int64_t threads)
{
    state.SetLabel("threads=" + std::to_string(threads));
    ec::setParallelism(static_cast<int>(threads));
}

void
BM_Gemm(benchmark::State& state)
{
    applyThreads(state, state.range(1));
    const auto n = state.range(0);
    ec::Rng rng(1);
    auto a = ec::Tensor::randomNormal({n, n}, rng);
    auto b = ec::Tensor::randomNormal({n, n}, rng);
    std::vector<float> c(static_cast<std::size_t>(n * n));
    for (auto _ : state) {
        ec::gemm(n, n, n, a.data(), b.data(), c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)
    ->Args({256, 1})->Args({256, 2})->Args({256, 4});

void
BM_GemmPrepacked(benchmark::State& state)
{
    applyThreads(state, state.range(1));
    const auto n = state.range(0);
    ec::Rng rng(1);
    auto a = ec::Tensor::randomNormal({n, n}, rng);
    auto b = ec::Tensor::randomNormal({n, n}, rng);
    std::vector<float> c(static_cast<std::size_t>(n * n));
    const ec::PackedA pa = ec::packA(n, n, a.data());
    for (auto _ : state) {
        ec::gemmPackB(pa.view(), n, b.data(), c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmPrepacked)
    ->Args({256, 1})->Args({256, 2})->Args({256, 4});

void
BM_Conv2dIm2col(benchmark::State& state)
{
    applyThreads(state, state.range(1));
    const auto c = state.range(0);
    ec::Conv2dGeom g{.n = 1, .inC = c, .inH = 28, .inW = 28,
                     .outC = c, .kH = 3, .kW = 3, .padH = 1,
                     .padW = 1};
    ec::Rng rng(2);
    auto input = ec::Tensor::randomNormal({1, c, 28, 28}, rng);
    auto w = ec::Tensor::randomNormal({c, c, 3, 3}, rng);
    auto bias = ec::Tensor::zeros({c});
    for (auto _ : state) {
        auto out = ec::conv2d(input, w, bias, g);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * g.macs());
}
BENCHMARK(BM_Conv2dIm2col)
    ->Args({64, 1})->Args({64, 2})->Args({64, 4});

void
BM_DepthwiseConv(benchmark::State& state)
{
    applyThreads(state, state.range(1));
    const auto c = state.range(0);
    ec::Conv2dGeom g{.n = 1, .inC = c, .inH = 28, .inW = 28,
                     .outC = c, .kH = 3, .kW = 3, .padH = 1,
                     .padW = 1, .groups = c};
    ec::Rng rng(3);
    auto input = ec::Tensor::randomNormal({1, c, 28, 28}, rng);
    auto w = ec::Tensor::randomNormal({c, 1, 3, 3}, rng);
    auto bias = ec::Tensor::zeros({c});
    for (auto _ : state) {
        auto out = ec::conv2d(input, w, bias, g);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * g.macs());
}
BENCHMARK(BM_DepthwiseConv)
    ->Args({128, 1})->Args({128, 4});

void
BM_Conv2dInt8(benchmark::State& state)
{
    applyThreads(state, state.range(1));
    const auto c = state.range(0);
    ec::Conv2dGeom g{.n = 1, .inC = c, .inH = 14, .inW = 14,
                     .outC = c, .kH = 3, .kW = 3, .padH = 1,
                     .padW = 1};
    ec::Rng rng(4);
    auto input =
        ec::Tensor::randomNormal({1, c, 14, 14}, rng).toInt8();
    auto w = ec::Tensor::randomNormal({c, c, 3, 3}, rng).toInt8();
    auto bias = ec::Tensor::zeros({c});
    const auto out_qp = ec::chooseQuantParams(-4.0, 4.0);
    for (auto _ : state) {
        auto out = ec::conv2dInt8(input, w, bias, g, out_qp);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * g.macs());
}
BENCHMARK(BM_Conv2dInt8)
    ->Args({32, 1})->Args({32, 2})->Args({32, 4});

void
BM_Dense(benchmark::State& state)
{
    applyThreads(state, state.range(1));
    const auto n = state.range(0);
    ec::DenseGeom g{.batch = 1, .inFeatures = n, .outFeatures = n};
    ec::Rng rng(7);
    auto input = ec::Tensor::randomNormal({1, n}, rng);
    auto w = ec::Tensor::randomNormal({n, n}, rng);
    auto bias = ec::Tensor::zeros({n});
    for (auto _ : state) {
        auto out = ec::dense(input, w, bias, g);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_Dense)
    ->Args({1024, 1})->Args({1024, 4});

// Steady-state dense path: weights packed once (as the interpreter's
// per-node cache does), so iterations measure only the packed GEMV.
void
BM_DensePrepacked(benchmark::State& state)
{
    applyThreads(state, state.range(1));
    const auto n = state.range(0);
    ec::DenseGeom g{.batch = 1, .inFeatures = n, .outFeatures = n};
    ec::Rng rng(7);
    auto input = ec::Tensor::randomNormal({1, n}, rng);
    auto w = ec::Tensor::randomNormal({n, n}, rng);
    auto bias = ec::Tensor::zeros({n});
    const auto packed = ec::packDenseWeights(w, g);
    for (auto _ : state) {
        auto out = ec::densePacked(input, packed, bias, g);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_DensePrepacked)
    ->Args({1024, 1})->Args({1024, 4});

void
BM_DenseInt8(benchmark::State& state)
{
    applyThreads(state, state.range(1));
    const auto n = state.range(0);
    ec::DenseGeom g{.batch = 1, .inFeatures = n, .outFeatures = n};
    ec::Rng rng(8);
    auto input = ec::Tensor::randomNormal({1, n}, rng).toInt8();
    auto w = ec::Tensor::randomNormal({n, n}, rng).toInt8();
    auto bias = ec::Tensor::zeros({n});
    const auto out_qp = ec::chooseQuantParams(-4.0, 4.0);
    for (auto _ : state) {
        auto out = ec::denseInt8(input, w, bias, g, out_qp);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * n * n);
}
BENCHMARK(BM_DenseInt8)
    ->Args({1024, 1})->Args({1024, 4});

void
BM_LstmForward(benchmark::State& state)
{
    applyThreads(state, state.range(1));
    const auto h = state.range(0);
    ec::RnnGeom g{.batch = 1, .seqLen = 16, .inputSize = h,
                  .hiddenSize = h, .gates = 4};
    ec::Rng rng(9);
    auto input = ec::Tensor::randomNormal({1, 16, h}, rng);
    auto w_ih = ec::Tensor::randomNormal({4 * h, h}, rng);
    auto w_hh = ec::Tensor::randomNormal({4 * h, h}, rng);
    auto bias = ec::Tensor::zeros({4 * h});
    for (auto _ : state) {
        auto out = ec::lstmForward(input, w_ih, w_hh, bias, g);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * 16 * 8 * h * h);
}
BENCHMARK(BM_LstmForward)
    ->Args({256, 1})->Args({256, 4});

void
BM_QuantizeRoundTrip(benchmark::State& state)
{
    applyThreads(state, state.range(1));
    ec::Rng rng(5);
    auto t = ec::Tensor::randomNormal({state.range(0)}, rng);
    for (auto _ : state) {
        auto q = t.toInt8();
        auto back = q.toF32();
        benchmark::DoNotOptimize(back);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeRoundTrip)
    ->Args({1 << 18, 1})->Args({1 << 18, 4});

void
BM_InterpreterCifarNet(benchmark::State& state)
{
    applyThreads(state, state.range(0));
    auto g = em::buildCifarNet();
    ec::Rng rng(6);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    auto input = ec::Tensor::randomNormal({1, 3, 32, 32}, rng);
    for (auto _ : state) {
        auto out = interp.run({input});
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * g.stats().macs);
}
BENCHMARK(BM_InterpreterCifarNet)->Arg(1)->Arg(4);

// fp32 end-to-end inference: MobileNet-v1 on the fp32 engine —
// depthwise direct kernels alternating with pointwise packed GEMMs,
// ReLU-family activations fused into the engine epilogues. This is
// the fp32 e2e number quoted in docs/PERFORMANCE.md.
void
BM_InterpreterMobileNetV1(benchmark::State& state)
{
    applyThreads(state, state.range(0));
    auto g = em::buildMobileNetV1(/*classes=*/1000, /*image=*/96);
    ec::Rng rng(12);
    g.materializeParams(rng);
    auto input = ec::Tensor::randomNormal({1, 3, 96, 96}, rng);
    eg::Interpreter interp(g);
    for (auto _ : state) {
        auto out = interp.run({input});
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * g.stats().macs);
}
BENCHMARK(BM_InterpreterMobileNetV1)->Arg(1)->Arg(4);

// Quantized end-to-end inference: MobileNet-v1 through quantizeInt8,
// so every conv/dense layer runs the integer pack-and-tile engine
// (plus the depthwise direct kernel and integer relu6/add). This is
// the e2e number quoted in docs/PERFORMANCE.md's integer-engine
// section.
void
BM_InterpreterMobileNetV1Int8(benchmark::State& state)
{
    applyThreads(state, state.range(0));
    auto g = em::buildMobileNetV1(/*classes=*/1000, /*image=*/96);
    ec::Rng rng(12);
    g.materializeParams(rng);
    auto input = ec::Tensor::randomNormal({1, 3, 96, 96}, rng);
    std::vector<ec::Tensor> calib = {input};
    auto [q, rewrites] = eg::quantizeInt8(g, &calib);
    benchmark::DoNotOptimize(rewrites);
    eg::Interpreter interp(q);
    for (auto _ : state) {
        auto out = interp.run({input});
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * g.stats().macs);
}
BENCHMARK(BM_InterpreterMobileNetV1Int8)->Arg(1)->Arg(4);

void
BM_FusionPass(benchmark::State& state)
{
    const auto g = em::buildResNet(50);
    for (auto _ : state) {
        auto fused = eg::fuseConvBnAct(g);
        benchmark::DoNotOptimize(fused);
    }
}
BENCHMARK(BM_FusionPass);

void
BM_ModelBuild(benchmark::State& state)
{
    for (auto _ : state) {
        auto g = em::buildModel(
            static_cast<em::ModelId>(state.range(0)));
        benchmark::DoNotOptimize(g);
    }
}
BENCHMARK(BM_ModelBuild)
    ->Arg(static_cast<int>(em::ModelId::kResNet101))
    ->Arg(static_cast<int>(em::ModelId::kInceptionV4))
    ->Arg(static_cast<int>(em::ModelId::kYoloV3));

} // namespace

BENCHMARK_MAIN();
