/**
 * @file
 * google-benchmark microbenchmarks of the real compute kernels: GEMM,
 * im2col convolution (dense/depthwise), INT8 convolution,
 * quantization, and graph-interpreter end-to-end CifarNet inference.
 * These measure this machine, not the modeled devices — they document
 * the functional substrate's own performance.
 */

#include <benchmark/benchmark.h>

#include "edgebench/core/kernels.hh"
#include "edgebench/core/kernels_int8.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/models/zoo.hh"

namespace ec = edgebench::core;
namespace eg = edgebench::graph;
namespace em = edgebench::models;

namespace
{

void
BM_Gemm(benchmark::State& state)
{
    const auto n = state.range(0);
    ec::Rng rng(1);
    auto a = ec::Tensor::randomNormal({n, n}, rng);
    auto b = ec::Tensor::randomNormal({n, n}, rng);
    std::vector<float> c(static_cast<std::size_t>(n * n));
    for (auto _ : state) {
        ec::gemm(n, n, n, a.data(), b.data(), c);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_Gemm)->Arg(64)->Arg(128)->Arg(256);

void
BM_Conv2dIm2col(benchmark::State& state)
{
    const auto c = state.range(0);
    ec::Conv2dGeom g{.n = 1, .inC = c, .inH = 28, .inW = 28,
                     .outC = c, .kH = 3, .kW = 3, .padH = 1,
                     .padW = 1};
    ec::Rng rng(2);
    auto input = ec::Tensor::randomNormal({1, c, 28, 28}, rng);
    auto w = ec::Tensor::randomNormal({c, c, 3, 3}, rng);
    auto bias = ec::Tensor::zeros({c});
    for (auto _ : state) {
        auto out = ec::conv2d(input, w, bias, g);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * g.macs());
}
BENCHMARK(BM_Conv2dIm2col)->Arg(16)->Arg(32)->Arg(64);

void
BM_DepthwiseConv(benchmark::State& state)
{
    const auto c = state.range(0);
    ec::Conv2dGeom g{.n = 1, .inC = c, .inH = 28, .inW = 28,
                     .outC = c, .kH = 3, .kW = 3, .padH = 1,
                     .padW = 1, .groups = c};
    ec::Rng rng(3);
    auto input = ec::Tensor::randomNormal({1, c, 28, 28}, rng);
    auto w = ec::Tensor::randomNormal({c, 1, 3, 3}, rng);
    auto bias = ec::Tensor::zeros({c});
    for (auto _ : state) {
        auto out = ec::conv2d(input, w, bias, g);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * g.macs());
}
BENCHMARK(BM_DepthwiseConv)->Arg(32)->Arg(128);

void
BM_Conv2dInt8(benchmark::State& state)
{
    const auto c = state.range(0);
    ec::Conv2dGeom g{.n = 1, .inC = c, .inH = 14, .inW = 14,
                     .outC = c, .kH = 3, .kW = 3, .padH = 1,
                     .padW = 1};
    ec::Rng rng(4);
    auto input =
        ec::Tensor::randomNormal({1, c, 14, 14}, rng).toInt8();
    auto w = ec::Tensor::randomNormal({c, c, 3, 3}, rng).toInt8();
    auto bias = ec::Tensor::zeros({c});
    const auto out_qp = ec::chooseQuantParams(-4.0, 4.0);
    for (auto _ : state) {
        auto out = ec::conv2dInt8(input, w, bias, g, out_qp);
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * g.macs());
}
BENCHMARK(BM_Conv2dInt8)->Arg(16)->Arg(32);

void
BM_QuantizeRoundTrip(benchmark::State& state)
{
    ec::Rng rng(5);
    auto t = ec::Tensor::randomNormal({state.range(0)}, rng);
    for (auto _ : state) {
        auto q = t.toInt8();
        auto back = q.toF32();
        benchmark::DoNotOptimize(back);
    }
    state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_QuantizeRoundTrip)->Arg(1 << 14)->Arg(1 << 18);

void
BM_InterpreterCifarNet(benchmark::State& state)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(6);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    auto input = ec::Tensor::randomNormal({1, 3, 32, 32}, rng);
    for (auto _ : state) {
        auto out = interp.run({input});
        benchmark::DoNotOptimize(out);
    }
    state.SetItemsProcessed(state.iterations() * g.stats().macs);
}
BENCHMARK(BM_InterpreterCifarNet);

void
BM_FusionPass(benchmark::State& state)
{
    const auto g = em::buildResNet(50);
    for (auto _ : state) {
        auto fused = eg::fuseConvBnAct(g);
        benchmark::DoNotOptimize(fused);
    }
}
BENCHMARK(BM_FusionPass);

void
BM_ModelBuild(benchmark::State& state)
{
    for (auto _ : state) {
        auto g = em::buildModel(
            static_cast<em::ModelId>(state.range(0)));
        benchmark::DoNotOptimize(g);
    }
}
BENCHMARK(BM_ModelBuild)
    ->Arg(static_cast<int>(em::ModelId::kResNet101))
    ->Arg(static_cast<int>(em::ModelId::kInceptionV4))
    ->Arg(static_cast<int>(em::ModelId::kYoloV3));

} // namespace

BENCHMARK_MAIN();
