/**
 * @file
 * Extension bench: per-layer latency hotspots. Fig. 5 profiles the
 * software stack at function granularity; this drills into the model
 * itself — which layers dominate on which device class, and how the
 * answer flips between a bandwidth-starved CPU board and a GPU.
 */

#include <algorithm>
#include <iostream>

#include "bench_util.hh"
#include "edgebench/hw/roofline.hh"

using namespace edgebench;

namespace
{

void
hotspots(const char* title, frameworks::FrameworkId fw,
         hw::DeviceId device, models::ModelId model)
{
    auto dep = frameworks::tryDeploy(fw, models::buildModel(model),
                                     device);
    if (!dep) {
        std::cout << title << ": undeployable\n";
        return;
    }
    const auto& g = dep->model.graph;
    const auto per_node = hw::perNodeTotalMs(
        g, dep->model.computeUnit(), dep->model.profile);
    double total = 0.0;
    for (double v : per_node)
        total += v;

    std::vector<std::size_t> order(per_node.size());
    for (std::size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) {
                  return per_node[a] > per_node[b];
              });

    std::cout << "\n" << title << " (total "
              << harness::Table::num(total, 1) << " ms):\n";
    harness::Table t({"Layer", "Kind", "Time (ms)", "Share (%)"});
    for (std::size_t i = 0; i < std::min<std::size_t>(8, order.size());
         ++i) {
        const auto& n = g.node(static_cast<graph::NodeId>(order[i]));
        t.addRow({n.name, graph::opKindName(n.kind),
                  harness::Table::num(per_node[order[i]], 2),
                  harness::Table::num(
                      100.0 * per_node[order[i]] / total, 1)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    std::cout << "\n== ext-hotspots: which layers dominate where ==\n";
    hotspots("VGG16 on RPi3 (TFLite, int8) -- fc weights stream",
             frameworks::FrameworkId::kTfLite, hw::DeviceId::kRpi3,
             models::ModelId::kVgg16);
    hotspots("VGG16 on Jetson TX2 (TensorFlow)",
             frameworks::FrameworkId::kTensorFlow,
             hw::DeviceId::kJetsonTx2, models::ModelId::kVgg16);
    hotspots("VGG16 on Titan Xp (PyTorch) -- convs dominate",
             frameworks::FrameworkId::kPyTorch,
             hw::DeviceId::kTitanXp, models::ModelId::kVgg16);
    hotspots("MobileNet-v2 on RPi3 (PyTorch) -- depthwise pathology",
             frameworks::FrameworkId::kPyTorch, hw::DeviceId::kRpi3,
             models::ModelId::kMobileNetV2);
    hotspots("ResNet-50 on EdgeTPU (TFLite, int8)",
             frameworks::FrameworkId::kTfLite,
             hw::DeviceId::kEdgeTpu, models::ModelId::kResNet50);
    return 0;
}
