/**
 * @file
 * Extension bench: what quantization costs in accuracy, measured for
 * real on the functional engine. The paper quantifies the *speed*
 * side of INT8/FP16 (Table II, Figs. 7-8); this bench runs actual
 * fp32 / fp16 / int8 inference on the interpreter and reports
 * prediction agreement and output distortion, plus the modeled
 * speed/footprint gains on the devices that can exploit each
 * precision.
 */

#include <cmath>
#include <iostream>

#include "bench_util.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/passes.hh"

using namespace edgebench;

namespace
{

struct AgreementResult
{
    double top1Agreement = 0.0;
    double meanAbsError = 0.0;
};

/** Top-1 agreement + mean |delta p| of variant vs fp32 reference. */
AgreementResult
compareVariants(graph::Graph& reference, graph::Graph& variant,
                const core::Shape& input_shape, int trials)
{
    graph::Interpreter ref(reference);
    graph::Interpreter var(variant);
    core::Rng rng(99);
    AgreementResult r;
    double err = 0.0;
    std::int64_t elems = 0;
    int agree = 0;
    for (int i = 0; i < trials; ++i) {
        auto x = core::Tensor::randomNormal(input_shape, rng);
        auto a = ref.run({x})[0].toF32();
        auto b = var.run({x})[0].toF32();
        std::int64_t besta = 0, bestb = 0;
        for (std::int64_t j = 1; j < a.numel(); ++j) {
            if (a.at(j) > a.at(besta))
                besta = j;
            if (b.at(j) > b.at(bestb))
                bestb = j;
        }
        agree += (besta == bestb);
        for (std::int64_t j = 0; j < a.numel(); ++j)
            err += std::fabs(a.at(j) - b.at(j));
        elems += a.numel();
    }
    r.top1Agreement = static_cast<double>(agree) / trials;
    r.meanAbsError = err / static_cast<double>(elems);
    return r;
}

} // namespace

int
main()
{
    std::cout << "\n== ext-quant: measured accuracy cost of reduced "
                 "precision (CifarNet, 64 random inputs, real "
                 "kernels) ==\n";

    const int kTrials = 64;
    const core::Shape input{1, 3, 32, 32};

    auto fp32 = models::buildCifarNet();
    core::Rng rng(7);
    fp32.materializeParams(rng);

    // FP16 variant.
    auto fp16 = graph::convertToF16(fp32).graph;

    // INT8 variant with real calibration on sample inputs.
    core::Rng crng(8);
    std::vector<core::Tensor> calib = {
        core::Tensor::randomNormal(input, crng)};
    auto int8 = graph::quantizeInt8(fp32, &calib).graph;

    harness::Table t({"Variant", "Top-1 agreement", "Mean |dp|",
                      "Weight bytes"});
    t.addRow({"fp32 (reference)", "1.00", "0",
              harness::Table::num(fp32.stats().paramBytes / 1e6, 2) +
                  " MB"});
    const auto h = compareVariants(fp32, fp16, input, kTrials);
    t.addRow({"fp16", harness::Table::num(h.top1Agreement, 2),
              harness::Table::num(h.meanAbsError, 5),
              harness::Table::num(fp16.stats().paramBytes / 1e6, 2) +
                  " MB"});
    const auto q = compareVariants(fp32, int8, input, kTrials);
    t.addRow({"int8 (calibrated)",
              harness::Table::num(q.top1Agreement, 2),
              harness::Table::num(q.meanAbsError, 5),
              harness::Table::num(int8.stats().paramBytes / 1e6, 2) +
                  " MB"});
    t.print(std::cout);

    std::cout << "\nModeled speed gain from the same passes (deferred "
                 "graphs, device cost model):\n";
    harness::Table s({"Device", "fp32 (ms)", "fp16 (ms)",
                      "int8 (ms)"});
    struct Target
    {
        hw::DeviceId device;
        frameworks::FrameworkId fw;
        hw::UnitKind unit;
    };
    const Target targets[] = {
        {hw::DeviceId::kRpi3, frameworks::FrameworkId::kTfLite,
         hw::UnitKind::kCpu},
        {hw::DeviceId::kJetsonNano, frameworks::FrameworkId::kTensorRt,
         hw::UnitKind::kGpu},
        {hw::DeviceId::kRtx2080, frameworks::FrameworkId::kTensorRt,
         hw::UnitKind::kGpu},
    };
    const auto base = models::buildResNet(50);
    for (const auto& tgt : targets) {
        const auto profile =
            frameworks::engineProfile(tgt.fw, tgt.device);
        const auto& spec = hw::deviceSpec(tgt.device);
        const auto& unit = tgt.unit == hw::UnitKind::kGpu
            ? *spec.gpu
            : spec.cpu;
        const auto fused = graph::fuseConvBnAct(base).graph;
        const double t32 =
            hw::graphLatencyUnchecked(fused, unit, profile).totalMs;
        const double t16 = hw::graphLatencyUnchecked(
            graph::convertToF16(fused).graph, unit, profile).totalMs;
        const double t8 = hw::graphLatencyUnchecked(
            graph::quantizeInt8(fused).graph, unit, profile).totalMs;
        s.addRow({hw::deviceName(tgt.device),
                  harness::Table::num(t32, 1),
                  harness::Table::num(t16, 1),
                  harness::Table::num(t8, 1)});
    }
    s.print(std::cout);
    std::cout << "\nShape: fp16 is nearly free in accuracy; "
                 "calibrated int8 keeps high top-1 agreement. The "
                 "speed gain depends on hardware support: the RPi "
                 "only saves memory traffic (the paper's TFLite "
                 "observation), the Turing GPU converts int8 into "
                 "real throughput.\n";
    return 0;
}
