/**
 * @file
 * Regenerates Fig. 4: time per inference on the Jetson TX2 across
 * DarkNet, Caffe, TensorFlow and PyTorch.
 */

#include <iostream>

#include "bench_util.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig4");

    const models::ModelId rows[] = {
        models::ModelId::kResNet50,  models::ModelId::kResNet101,
        models::ModelId::kXception,  models::ModelId::kMobileNetV2,
        models::ModelId::kInceptionV4, models::ModelId::kAlexNet,
        models::ModelId::kVgg16,
    };
    const frameworks::FrameworkId cols[] = {
        frameworks::FrameworkId::kDarkNet,
        frameworks::FrameworkId::kCaffe,
        frameworks::FrameworkId::kTensorFlow,
        frameworks::FrameworkId::kPyTorch,
    };

    harness::Table t({"Model", "DarkNet (ms)", "Caffe (ms)",
                      "TensorFlow (ms)", "PyTorch (ms)"});
    for (auto m : rows) {
        std::vector<std::string> cells{models::modelInfo(m).name};
        for (auto fw : cols)
            cells.push_back(bench::cell(
                bench::latencyMs(fw, m, hw::DeviceId::kJetsonTx2)));
        t.addRow(std::move(cells));
    }
    t.print(std::cout);
    std::cout << "\nPaper shape: PyTorch fastest on the TX2 GPU; "
                 "Caffe beats TensorFlow except on MobileNet-v2; "
                 "DarkNet is roughly an order of magnitude off.\n";
    return 0;
}
