/**
 * @file
 * Extension bench: end-to-end request serving. Puts the paper's
 * separately-measured quantities (latency, power, temperature)
 * together in the deployment scenario its introduction motivates — a
 * drone/robot-class device serving a live request stream.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/frameworks/runtime.hh"
#include "edgebench/serving/simulator.hh"

using namespace edgebench;

int
main()
{
    std::cout << "\n== ext-serving: MobileNet-v2 stream at 2 req/s "
                 "for 30 simulated minutes ==\n";

    harness::Table t({"Device", "Framework", "p50 (ms)", "p99 (ms)",
                      "Util (%)", "Energy/req (J)", "Peak temp (C)",
                      "Shutdown"});
    for (auto d : hw::edgeDevices()) {
        auto dep = frameworks::bestDeployment(
            models::buildModel(models::ModelId::kMobileNetV2), d);
        if (!dep) {
            t.addRow({hw::deviceName(d), "n/a", "-", "-", "-", "-",
                      "-", "-"});
            continue;
        }
        frameworks::InferenceSession session(dep->model);
        serving::ServingConfig cfg{.durationS = 1800.0,
                                   .arrivalRateHz = 2.0, .seed = 21};
        const auto rep = serving::simulateServing(session, cfg);
        t.addRow({hw::deviceName(d),
                  frameworks::frameworkName(dep->framework),
                  harness::Table::num(rep.p50Ms, 1),
                  harness::Table::num(rep.p99Ms, 1),
                  harness::Table::num(100.0 * rep.utilization, 1),
                  harness::Table::num(rep.energyPerRequestJ, 3),
                  rep.peakSurfaceC > 0.0
                      ? harness::Table::num(rep.peakSurfaceC, 1)
                      : "-",
                  rep.thermalShutdown ? "YES" : "no"});
    }
    t.print(std::cout);

    std::cout << "\nSustained heavy load on the RPi (Inception-v4 "
                 "back-to-back, one hour):\n";
    auto dep = frameworks::tryDeploy(
        frameworks::FrameworkId::kTensorFlow,
        models::buildModel(models::ModelId::kInceptionV4),
        hw::DeviceId::kRpi3);
    if (dep) {
        frameworks::InferenceSession session(dep->model);
        serving::ServingConfig cfg{.durationS = 3600.0,
                                   .arrivalRateHz = 1.0, .seed = 22};
        const auto rep = serving::simulateServing(session, cfg);
        harness::Table t2({"Offered", "Served", "Dropped",
                           "Shutdown at (s)", "Peak temp (C)"});
        t2.addRow({std::to_string(rep.offered),
                   std::to_string(rep.served),
                   std::to_string(rep.dropped),
                   rep.thermalShutdown
                       ? harness::Table::num(rep.shutdownAtS, 0)
                       : "-",
                   harness::Table::num(rep.peakSurfaceC, 1)});
        t2.print(std::cout);
        std::cout << "\nThe Fig. 14 thermal shutdown is not just a "
                     "temperature curve: it costs the RPi every "
                     "request after the trip point.\n";
    }
    return 0;
}
