/**
 * @file
 * Focused GEMM benchmark: the retired reference loops vs. the
 * pack-and-tile engines, fp32 (gemm_packed.hh) and int8
 * (gemm_packed_int8.hh), with pre-packed-weight, pruned-weight and
 * multi-thread cases. Also verifies on every run that packed outputs
 * are byte-identical across 1/2/4 threads, for both element types.
 *
 * `--json [--out <path>]` additionally writes a BENCH_gemm.json
 * snapshot (one record per case) so CI keeps a performance trajectory
 * to regress against; there is no pass/fail threshold here.
 *
 * The retired baselines are reproduced locally: the fp32 i-k-j loop
 * in two flavours (with and without the per-element `a == 0` pruning
 * branch it used to carry), and the int8 dot-product loop with its
 * per-element zero-point subtractions and per-element double-math
 * requantization, exactly as the old conv2dInt8/denseInt8 computed.
 */

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "edgebench/core/gemm_packed.hh"
#include "edgebench/core/gemm_packed_int8.hh"
#include "edgebench/core/kernels.hh"
#include "edgebench/core/scratch.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/core/simd.hh"

namespace ec = edgebench::core;

namespace
{

using i64 = std::int64_t;

/** The pre-engine production GEMM, kept verbatim as the baseline. */
void
gemmRefIkj(i64 m, i64 n, i64 k, const float* a, const float* b,
           float* c, bool zero_branch)
{
    std::fill(c, c + m * n, 0.0f);
    constexpr i64 kBlock = 64;
    for (i64 kk = 0; kk < k; kk += kBlock) {
        const i64 k_end = std::min(k, kk + kBlock);
        for (i64 i = 0; i < m; ++i) {
            float* crow = c + i * n;
            for (i64 p = kk; p < k_end; ++p) {
                const float aval = a[i * k + p];
                if (zero_branch && aval == 0.0f)
                    continue;
                const float* brow = b + p * n;
                for (i64 j = 0; j < n; ++j)
                    crow[j] += aval * brow[j];
            }
        }
    }
}

/**
 * The retired int8 GEMM semantics, kept verbatim as the baseline:
 * per-element zero-point subtraction inside the dot product, then a
 * per-element double multiply + nearbyint requantization (the loop
 * conv2dInt8/denseInt8 ran before the integer engine).
 */
void
gemmRefInt8(i64 m, i64 n, i64 k, const std::int8_t* a,
            const std::int8_t* b, std::int32_t a_zp, std::int32_t b_zp,
            double acc_scale, const ec::QuantParams& out_qp,
            std::int8_t* c)
{
    for (i64 i = 0; i < m; ++i)
        for (i64 j = 0; j < n; ++j) {
            std::int64_t acc = 0;
            for (i64 p = 0; p < k; ++p)
                acc += static_cast<std::int64_t>(a[i * k + p] - a_zp) *
                    (b[p * n + j] - b_zp);
            const double real = static_cast<double>(acc) * acc_scale;
            const double q =
                std::nearbyint(real / out_qp.scale) + out_qp.zeroPoint;
            c[i * n + j] = static_cast<std::int8_t>(
                std::clamp(q, -128.0, 127.0));
        }
}

struct Case
{
    std::string name;
    i64 m, n, k;
    int threads;
    double ms;
    double gflops;
    double gbs;
    bool simd;
};

/** Best-of-reps wall time of @p fn, auto-scaled to >= ~40ms reps. */
template <typename F>
double
bestMs(F&& fn)
{
    i64 iters = 1;
    for (;;) {
        const auto t0 = std::chrono::steady_clock::now();
        for (i64 i = 0; i < iters; ++i)
            fn();
        const double ms =
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count();
        if (ms >= 40.0 || iters >= (1 << 20)) {
            double best = ms / static_cast<double>(iters);
            for (int r = 0; r < 4; ++r) {
                const auto r0 = std::chrono::steady_clock::now();
                for (i64 i = 0; i < iters; ++i)
                    fn();
                const double rms =
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - r0)
                        .count();
                best = std::min(best,
                                rms / static_cast<double>(iters));
            }
            return best;
        }
        iters *= 2;
    }
}

template <typename F>
Case
runCase(std::vector<Case>& cases, const std::string& name, i64 m,
        i64 n, i64 k, int threads, i64 elem_bytes, F&& fn)
{
    ec::setParallelism(threads);
    const double ms = bestMs(fn);
    const double gflops =
        2.0 * static_cast<double>(m) * static_cast<double>(n) *
        static_cast<double>(k) / (ms * 1e6);
    // Minimum memory traffic: read A and B once, write C once.
    const double gbs = static_cast<double>(
                           (m * k + k * n + m * n) * elem_bytes) /
        (ms * 1e6);
    Case c{name, m, n, k, threads, ms, gflops, gbs, ec::simdActive()};
    cases.push_back(c);
    std::cout << "  " << name;
    for (std::size_t pad = name.size(); pad < 28; ++pad)
        std::cout << ' ';
    std::cout << m << "x" << n << "x" << k << "  threads=" << threads
              << "  " << ms << " ms  " << gflops << " GF/s  " << gbs
              << " GB/s  simd=" << (c.simd ? "on" : "off") << "\n";
    return c;
}

} // namespace

int
main(int argc, char** argv)
{
    bool json = false;
    std::string out_path = "BENCH_gemm.json";
    int base_threads = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json")
            json = true;
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
        else if (arg == "--threads" && i + 1 < argc)
            base_threads = std::atoi(argv[++i]);
    }

    const i64 m = 256, n = 256, k = 256;
    ec::Rng rng(1);
    auto ta = ec::Tensor::randomNormal({m, k}, rng);
    auto tb = ec::Tensor::randomNormal({k, n}, rng);
    auto a = ta.data();
    auto b = tb.data();
    std::vector<float> c(static_cast<std::size_t>(m * n));

    std::cout << "bench_gemm: fp32 " << m << "x" << n << "x" << k
              << " (pack-and-tile engine vs retired i-k-j loop)\n";
    std::vector<Case> cases;

    // Baselines: the old production loop with its per-element pruning
    // branch, and the same loop without it (dense-case branch cost).
    runCase(cases, "ref_ikj_zero_branch", m, n, k, base_threads, 4, [&] {
        gemmRefIkj(m, n, k, a.data(), b.data(), c.data(), true);
    });
    runCase(cases, "ref_ikj_no_branch", m, n, k, base_threads, 4, [&] {
        gemmRefIkj(m, n, k, a.data(), b.data(), c.data(), false);
    });

    // The engine, packing both operands per call (gemm entry point).
    runCase(cases, "packed", m, n, k, base_threads, 4,
            [&] { ec::gemm(m, n, k, a, b, c); });

    // Steady-state shape: weights packed once, per-call B pack only.
    const ec::PackedA pa = ec::packA(m, k, a);
    runCase(cases, "packed_prepacked_a", m, n, k, base_threads, 4,
            [&] { ec::gemmPackB(pa.view(), n, b, c); });
    for (int t : {2, 4})
        runCase(cases, "packed_prepacked_a", m, n, k, t, 4,
                [&] { ec::gemmPackB(pa.view(), n, b, c); });

    // The scalar engine on the same steady-state shape (vector paths
    // forced off): the SIMD speedup row for docs/PERFORMANCE.md. Also
    // check the two engines agree bit-for-bit on this shape.
    if (ec::kSimdCompiled && ec::simdActive()) {
        std::vector<float> c_simd(c.size());
        ec::setParallelism(base_threads);
        ec::gemmPackB(pa.view(), n, b, c_simd);
        ec::setSimdActive(false);
        runCase(cases, "packed_prepacked_a_scalar", m, n, k,
                base_threads, 4,
                [&] { ec::gemmPackB(pa.view(), n, b, c); });
        ec::setSimdActive(true);
        if (std::memcmp(c.data(), c_simd.data(),
                        c.size() * sizeof(float)) != 0) {
            std::cout << "  simd-vs-scalar: MISMATCH\n";
            return 1;
        }
        std::cout << "  simd-vs-scalar: byte-identical\n";
    }

    // Magnitude-pruned weights: 75% of rows zeroed in whole register
    // panels; the engine skips them via pack-time chunk flags, the old
    // loop via its per-element branch.
    auto pruned = ta;
    {
        auto pd = pruned.data();
        std::fill(pd.begin(),
                  pd.begin() +
                      static_cast<std::size_t>((m * 3 / 4) * k),
                  0.0f);
    }
    auto ap = pruned.data();
    runCase(cases, "ref_ikj_pruned75", m, n, k, base_threads, 4, [&] {
        gemmRefIkj(m, n, k, ap.data(), b.data(), c.data(), true);
    });
    const ec::PackedA pa_pruned = ec::packA(m, k, ap);
    runCase(cases, "packed_pruned75", m, n, k, base_threads, 4,
            [&] { ec::gemmPackB(pa_pruned.view(), n, b, c); });

    // Thread-count determinism: packed output must be byte-identical
    // at 1/2/4 threads (the repo-wide invariant, parallel.hh).
    std::vector<float> c1(c.size());
    ec::setParallelism(1);
    ec::gemm(m, n, k, a, b, c1);
    bool identical = true;
    for (int t : {2, 4}) {
        ec::setParallelism(t);
        ec::gemm(m, n, k, a, b, c);
        identical = identical &&
            std::memcmp(c.data(), c1.data(),
                        c.size() * sizeof(float)) == 0;
    }
    std::cout << "  thread determinism (1/2/4): "
              << (identical ? "byte-identical" : "MISMATCH") << "\n";
    if (!identical)
        return 1;

    // ---- int8 section: same 256^3 shape on the integer engine. ----
    std::cout << "bench_gemm: int8 " << m << "x" << n << "x" << k
              << " (integer pack-and-tile engine vs retired "
                 "double-requant loop)\n";
    const ec::QuantParams qa_params{0.0213, 7};
    const ec::QuantParams qb_params{0.0471, -19};
    const ec::QuantParams qo_params{1.37, 3};
    std::vector<std::int8_t> ia(static_cast<std::size_t>(m * k));
    std::vector<std::int8_t> ib(static_cast<std::size_t>(k * n));
    for (auto& v : ia)
        v = static_cast<std::int8_t>(
            std::lround(rng.uniform(-128.0, 127.0)));
    for (auto& v : ib)
        v = static_cast<std::int8_t>(
            std::lround(rng.uniform(-128.0, 127.0)));
    std::vector<std::int8_t> ic(static_cast<std::size_t>(m * n));
    const double acc_scale = qa_params.scale * qb_params.scale;
    const ec::Int8GemmQuant iq{qa_params, qb_params, qo_params};

    runCase(cases, "int8_ref_double_requant", m, n, k, base_threads,
            1, [&] {
                gemmRefInt8(m, n, k, ia.data(), ib.data(),
                            qa_params.zeroPoint, qb_params.zeroPoint,
                            acc_scale, qo_params, ic.data());
            });

    // Packing both operands per call (the ad-hoc kernel shape).
    runCase(cases, "int8_packed", m, n, k, base_threads, 1, [&] {
        const ec::PackedAI8View pav = ec::packAInt8Into(
            m, k, ia,
            ec::scratchI8(ec::ScratchSlot::kGemmPackAI8,
                          static_cast<std::size_t>(
                              ec::packedAI8ValueCount(m, k))),
            ec::scratchI32(ec::ScratchSlot::kGemmPackAI8,
                           static_cast<std::size_t>(
                               ec::packedAI8SumCount(m))));
        auto pb = ec::scratchI8(ec::ScratchSlot::kGemmPackBI8,
                                static_cast<std::size_t>(
                                    ec::packedBI8ValueCount(n, k)));
        auto pbs = ec::scratchI32(ec::ScratchSlot::kGemmPackBI8,
                                  static_cast<std::size_t>(
                                      ec::packedBI8SumCount(n)));
        ec::packBInt8Into(n, k, ib, pb, pbs);
        ec::gemmPackedInt8(pav, n, pb, pbs, {}, iq, ic);
    });

    // Steady-state shape: weights packed once, per-call B pack only.
    const ec::PackedAI8 pai8 = ec::packAInt8(m, k, ia);
    auto run_prepacked_i8 = [&] {
        auto pb = ec::scratchI8(ec::ScratchSlot::kGemmPackBI8,
                                static_cast<std::size_t>(
                                    ec::packedBI8ValueCount(n, k)));
        auto pbs = ec::scratchI32(ec::ScratchSlot::kGemmPackBI8,
                                  static_cast<std::size_t>(
                                      ec::packedBI8SumCount(n)));
        ec::packBInt8Into(n, k, ib, pb, pbs);
        ec::gemmPackedInt8(pai8.view(), n, pb, pbs, {}, iq, ic);
    };
    runCase(cases, "int8_packed_prepacked_a", m, n, k, base_threads,
            1, run_prepacked_i8);
    for (int t : {2, 4})
        runCase(cases, "int8_packed_prepacked_a", m, n, k, t, 1,
                run_prepacked_i8);

    // Scalar integer engine row + simd-vs-scalar identity check.
    if (ec::kSimdCompiled && ec::simdActive()) {
        std::vector<std::int8_t> ic_simd(ic.size());
        ec::setParallelism(base_threads);
        run_prepacked_i8();
        std::copy(ic.begin(), ic.end(), ic_simd.begin());
        ec::setSimdActive(false);
        runCase(cases, "int8_packed_prepacked_a_scalar", m, n, k,
                base_threads, 1, run_prepacked_i8);
        ec::setSimdActive(true);
        if (std::memcmp(ic.data(), ic_simd.data(), ic.size()) != 0) {
            std::cout << "  int8 simd-vs-scalar: MISMATCH\n";
            return 1;
        }
        std::cout << "  int8 simd-vs-scalar: byte-identical\n";
    }

    // int8 thread-count determinism, same contract as fp32.
    std::vector<std::int8_t> ic1(ic.size());
    ec::setParallelism(1);
    run_prepacked_i8();
    std::copy(ic.begin(), ic.end(), ic1.begin());
    bool i8_identical = true;
    for (int t : {2, 4}) {
        ec::setParallelism(t);
        run_prepacked_i8();
        i8_identical = i8_identical &&
            std::memcmp(ic.data(), ic1.data(), ic.size()) == 0;
    }
    std::cout << "  int8 thread determinism (1/2/4): "
              << (i8_identical ? "byte-identical" : "MISMATCH")
              << "\n";
    if (!i8_identical)
        return 1;

    if (json) {
        std::ofstream f(out_path);
        f << "{\n  \"bench\": \"gemm\",\n  \"deterministic\": true,\n"
          << "  \"simd\": {\"compiled\": "
          << (ec::kSimdCompiled ? "true" : "false")
          << ", \"active\": "
          << (ec::simdActive() ? "true" : "false")
          << ", \"lanes\": " << ec::simdLaneWidth() << "},\n"
          << "  \"cases\": [\n";
        for (std::size_t i = 0; i < cases.size(); ++i) {
            const Case& cs = cases[i];
            f << "    {\"name\": \"" << cs.name << "\", \"m\": "
              << cs.m << ", \"n\": " << cs.n << ", \"k\": " << cs.k
              << ", \"threads\": " << cs.threads << ", \"ms\": "
              << cs.ms << ", \"gflops\": " << cs.gflops
              << ", \"gbs\": " << cs.gbs << ", \"simd\": "
              << (cs.simd ? "true" : "false") << "}"
              << (i + 1 < cases.size() ? "," : "") << "\n";
        }
        f << "  ]\n}\n";
        std::cout << "  wrote " << out_path << "\n";
    }
    return 0;
}
