/**
 * @file
 * Extension bench: sensitivity of the reproduced conclusions to the
 * calibrated efficiency parameters. Each (framework, device) profile
 * is anchored to paper-reported points with residual uncertainty; a
 * reproduction is only trustworthy if the paper's *orderings* survive
 * perturbation of those anchors. This bench perturbs every profile's
 * computeEfficiency by +-20% (one side at a time, worst case against
 * the claim) and reports which qualitative conclusions flip.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/graph/passes.hh"

using namespace edgebench;

namespace
{

double
latencyWithScaledEfficiency(frameworks::FrameworkId fw,
                            models::ModelId m, hw::DeviceId d,
                            double scale)
{
    auto dep = frameworks::tryDeploy(fw, models::buildModel(m), d);
    if (!dep)
        return -1.0;
    dep->model.profile.computeEfficiency =
        std::min(1.0, dep->model.profile.computeEfficiency * scale);
    return dep->model.latencyMs();
}

/** Does claim "a faster than b" hold at worst-case perturbation? */
bool
orderingRobust(frameworks::FrameworkId fast_fw, hw::DeviceId fast_d,
               frameworks::FrameworkId slow_fw, hw::DeviceId slow_d,
               models::ModelId m, double perturb)
{
    // Worst case against the claim: slow side gets faster, fast side
    // gets slower.
    const double fast = latencyWithScaledEfficiency(
        fast_fw, m, fast_d, 1.0 / perturb);
    const double slow = latencyWithScaledEfficiency(
        slow_fw, m, slow_d, perturb);
    return fast > 0.0 && slow > 0.0 && fast < slow;
}

} // namespace

int
main()
{
    std::cout << "\n== ext-sensitivity: do the paper's orderings "
                 "survive +-20% efficiency perturbation? ==\n\n";

    const double kPerturb = 1.2;
    harness::Table t({"Claim", "Model", "Nominal", "Worst-case",
                      "Robust?"});

    struct Claim
    {
        const char* name;
        frameworks::FrameworkId fast_fw;
        hw::DeviceId fast_d;
        frameworks::FrameworkId slow_fw;
        hw::DeviceId slow_d;
    };
    const Claim claims[] = {
        {"TFLite < TF on RPi", frameworks::FrameworkId::kTfLite,
         hw::DeviceId::kRpi3, frameworks::FrameworkId::kTensorFlow,
         hw::DeviceId::kRpi3},
        {"TF < PyTorch on RPi", frameworks::FrameworkId::kTensorFlow,
         hw::DeviceId::kRpi3, frameworks::FrameworkId::kPyTorch,
         hw::DeviceId::kRpi3},
        {"PyTorch < TF on TX2 GPU",
         frameworks::FrameworkId::kPyTorch, hw::DeviceId::kJetsonTx2,
         frameworks::FrameworkId::kTensorFlow,
         hw::DeviceId::kJetsonTx2},
        {"TensorRT < PyTorch on Nano",
         frameworks::FrameworkId::kTensorRt,
         hw::DeviceId::kJetsonNano, frameworks::FrameworkId::kPyTorch,
         hw::DeviceId::kJetsonNano},
        {"TX2 < Xeon (ResNet-class)",
         frameworks::FrameworkId::kPyTorch, hw::DeviceId::kJetsonTx2,
         frameworks::FrameworkId::kPyTorch, hw::DeviceId::kXeon},
    };
    const models::ModelId probe_models[] = {
        models::ModelId::kResNet18, models::ModelId::kResNet50,
        models::ModelId::kInceptionV4,
    };

    int robust = 0, total = 0;
    for (const auto& c : claims) {
        for (auto m : probe_models) {
            const double nominal_fast = latencyWithScaledEfficiency(
                c.fast_fw, m, c.fast_d, 1.0);
            const double nominal_slow = latencyWithScaledEfficiency(
                c.slow_fw, m, c.slow_d, 1.0);
            if (nominal_fast < 0.0 || nominal_slow < 0.0)
                continue;
            const bool nominal_holds = nominal_fast < nominal_slow;
            const bool worst = orderingRobust(c.fast_fw, c.fast_d,
                                              c.slow_fw, c.slow_d, m,
                                              kPerturb);
            ++total;
            robust += worst;
            t.addRow({c.name, models::modelInfo(m).name,
                      nominal_holds ? "holds" : "FAILS",
                      worst ? "holds" : "flips",
                      worst ? "yes" : "NO"});
        }
    }
    t.print(std::cout);
    std::cout << "\n" << robust << "/" << total
              << " claim instances survive the worst-case +-20% "
                 "perturbation. Claims that flip are within the "
                 "calibration noise floor and are reported as "
                 "tendencies, not findings, in EXPERIMENTS.md.\n";
    return 0;
}
