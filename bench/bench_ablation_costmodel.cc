/**
 * @file
 * Ablation study of the design choices behind the latency model
 * (DESIGN.md Section 4): what Fig. 2-class predictions look like
 * when individual model components are disabled.
 *
 *  A0  full model (roofline + saturation ramp + overheads)
 *  A1  no memory term (pure compute scaling)
 *  A2  no saturation ramp (flat efficiency)
 *  A3  no per-op overhead
 *  A4  fusion pass disabled (TensorRT pipeline)
 *  A5  quantization disabled (TFLite on RPi)
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/harness/stats.hh"

using namespace edgebench;

namespace
{

double
latencyWith(const graph::Graph& g, const hw::ComputeUnit& unit,
            hw::EngineProfile p)
{
    return hw::graphLatencyUnchecked(g, unit, p).totalMs;
}

} // namespace

int
main()
{
    std::cout << "\n== ablation: latency-model components ==\n";

    const models::ModelId rows[] = {
        models::ModelId::kResNet50, models::ModelId::kMobileNetV2,
        models::ModelId::kVgg16,    models::ModelId::kInceptionV4,
    };

    // Reference pipeline: PyTorch on Jetson TX2.
    const auto& unit =
        *hw::deviceSpec(hw::DeviceId::kJetsonTx2).gpu;
    const auto base = frameworks::engineProfile(
        frameworks::FrameworkId::kPyTorch, hw::DeviceId::kJetsonTx2);

    harness::Table t({"Model", "A0 full (ms)", "A1 no-mem",
                      "A2 no-ramp", "A3 no-op-ovh"});
    for (auto m : rows) {
        const auto g = models::buildModel(m);

        const double a0 = latencyWith(g, unit, base);

        // A1: make memory effectively free.
        auto p1 = base;
        auto unit_fast_mem = unit;
        unit_fast_mem.memBandwidthGBs = 1e9;
        const double a1 = latencyWith(g, unit_fast_mem, p1);

        // A2: flat efficiency.
        auto p2 = base;
        p2.saturationMacs = 0.0;
        const double a2 = latencyWith(g, unit, p2);

        // A3: no dispatch overhead.
        auto p3 = base;
        p3.perOpOverheadMs = 0.0;
        p3.perInferenceOverheadMs = 0.0;
        const double a3 = latencyWith(g, unit, p3);

        t.addRow({models::modelInfo(m).name,
                  harness::Table::num(a0, 1),
                  harness::Table::num(a1, 1),
                  harness::Table::num(a2, 1),
                  harness::Table::num(a3, 1)});
    }
    t.print(std::cout);

    // A4: fusion ablation on the TensorRT pipeline (Jetson Nano).
    std::cout << "\nA4: fusion pass contribution (TensorRT-style "
                 "pipeline on Jetson Nano, fp16):\n";
    harness::Table t4({"Model", "fused (ms)", "unfused (ms)",
                       "fusion gain"});
    const auto& nano =
        *hw::deviceSpec(hw::DeviceId::kJetsonNano).gpu;
    const auto trt = frameworks::engineProfile(
        frameworks::FrameworkId::kTensorRt,
        hw::DeviceId::kJetsonNano);
    for (auto m : rows) {
        const auto g = models::buildModel(m);
        const auto fused = graph::convertToF16(
            graph::fuseConvBnAct(g).graph).graph;
        const auto unfused = graph::convertToF16(g).graph;
        const double with_f = latencyWith(fused, nano, trt);
        const double without_f = latencyWith(unfused, nano, trt);
        t4.addRow({models::modelInfo(m).name,
                   harness::Table::num(with_f, 1),
                   harness::Table::num(without_f, 1),
                   harness::Table::num(without_f / with_f, 2)});
    }
    t4.print(std::cout);

    // A5: quantization ablation for TFLite on the RPi (the paper's
    // point that the RPi CPU cannot exploit INT8 compute, only the
    // footprint shrinks).
    std::cout << "\nA5: INT8 quantization contribution (TFLite on "
                 "RPi3):\n";
    harness::Table t5({"Model", "int8 (ms)", "fp32 (ms)", "gain"});
    const auto& rpi = hw::deviceSpec(hw::DeviceId::kRpi3).cpu;
    const auto tfl = frameworks::engineProfile(
        frameworks::FrameworkId::kTfLite, hw::DeviceId::kRpi3);
    for (auto m : rows) {
        const auto g = models::buildModel(m);
        const auto fused = graph::fuseConvBnAct(g).graph;
        const auto quant = graph::quantizeInt8(fused).graph;
        const double q_ms = latencyWith(quant, rpi, tfl);
        const double f_ms = latencyWith(fused, rpi, tfl);
        t5.addRow({models::modelInfo(m).name,
                   harness::Table::num(q_ms, 1),
                   harness::Table::num(f_ms, 1),
                   harness::Table::num(f_ms / q_ms, 2)});
    }
    t5.print(std::cout);
    return 0;
}
