/**
 * @file
 * Extension bench: RNN/LSTM models in the edge characterization —
 * the paper's stated future work ("extend our models to include more
 * varieties of DNN models, such as RNNs and LSTMs").
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/power/energy.hh"

using namespace edgebench;

int
main()
{
    std::cout << "\n== ext-rnn: recurrent models on edge and HPC "
                 "platforms ==\n";

    auto zoo = models::buildRecurrentExtensions();

    harness::Table stats({"Model", "Input", "GFLOP", "MParams",
                          "FLOP/Param"});
    for (const auto& g : zoo) {
        const auto st = g.stats();
        stats.addRow({g.name(), g.inputDescription(),
                      harness::Table::num(st.macs / 1e9, 3),
                      harness::Table::num(st.params / 1e6, 2),
                      harness::Table::num(st.flopPerParam, 1)});
    }
    stats.print(std::cout);

    const hw::DeviceId devices[] = {
        hw::DeviceId::kRpi3,       hw::DeviceId::kJetsonTx2,
        hw::DeviceId::kJetsonNano, hw::DeviceId::kEdgeTpu,
        hw::DeviceId::kMovidius,   hw::DeviceId::kXeon,
        hw::DeviceId::kTitanXp,
    };

    std::cout << "\nBest-framework latency (ms); accelerators reject "
                 "recurrent ops:\n";
    std::vector<std::string> headers{"Model"};
    for (auto d : devices)
        headers.push_back(hw::deviceName(d));
    harness::Table t(std::move(headers));
    for (const auto& g : zoo) {
        std::vector<std::string> cells{g.name()};
        for (auto d : devices) {
            auto best = frameworks::bestDeployment(g, d);
            cells.push_back(
                best ? harness::Table::num(best->model.latencyMs(), 1)
                     : "n/a");
        }
        t.addRow(std::move(cells));
    }
    t.print(std::cout);

    std::cout << "\nEnergy per inference (mJ, best framework):\n";
    harness::Table e({"Model", "RPi3", "Jetson TX2", "Jetson Nano"});
    for (const auto& g : zoo) {
        std::vector<std::string> cells{g.name()};
        for (auto d : {hw::DeviceId::kRpi3, hw::DeviceId::kJetsonTx2,
                       hw::DeviceId::kJetsonNano}) {
            auto best = frameworks::bestDeployment(g, d);
            cells.push_back(
                best ? harness::Table::num(
                           power::energyPerInference(best->model)
                               .energyPerInferenceMJ,
                           1)
                     : "n/a");
        }
        e.addRow(std::move(cells));
    }
    e.print(std::cout);
    std::cout << "\nObservation: the sequential dependence of RNNs "
                 "keeps per-layer parallelism small, so GPU edge "
                 "devices gain less over the RPi than they do on "
                 "CNNs, and the 2019 accelerator toolchains cannot "
                 "run them at all.\n";
    return 0;
}
