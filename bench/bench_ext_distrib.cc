/**
 * @file
 * Extension bench: the event-driven pipeline simulator against its
 * own analytic plan. Under an ideal switched LAN the simulator must
 * land on the closed form (the validation row); 5% loss, latency
 * jitter, and a shared broadcast medium then degrade the same plan in
 * ways the closed form cannot price.
 *
 * `--json [--out <path>]` additionally writes a BENCH_distrib.json
 * snapshot of every row for the CI perf-smoke artifact.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.hh"
#include "edgebench/distrib/pipeline_sim.hh"

using namespace edgebench;

namespace
{

struct Row
{
    std::string model;
    int devices = 0;
    std::string scenario;
    double analyticHz = 0.0;
    double simHz = 0.0;
    double p99Ms = 0.0;
    std::int64_t completed = 0;
    std::int64_t dropped = 0;
    std::int64_t retransmits = 0;
};

distrib::PipelineSimReport
simulate(const distrib::PipelineResult& plan,
         const frameworks::CompiledModel& m,
         const distrib::NetworkConfig& net)
{
    distrib::PipelineSimConfig cfg;
    cfg.frames = 400;
    cfg.queueCapacity = 8;
    return distrib::simulatePipeline(plan, m, net, cfg);
}

Row
makeRow(const std::string& model, int devices,
        const std::string& scenario,
        const distrib::PipelineResult& plan,
        const distrib::PipelineSimReport& rep)
{
    Row r;
    r.model = model;
    r.devices = devices;
    r.scenario = scenario;
    r.analyticHz = plan.throughputHz;
    r.simHz = rep.throughputHz;
    r.p99Ms = rep.p99Ms;
    r.completed = rep.completed;
    r.dropped = rep.dropped;
    for (const auto& l : rep.links)
        r.retransmits += l.retransmits;
    return r;
}

} // namespace

int
main(int argc, char** argv)
{
    bench::initThreads(argc, argv);
    bool json = false;
    std::string out_path = "BENCH_distrib.json";
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--json")
            json = true;
        else if (arg == "--out" && i + 1 < argc)
            out_path = argv[++i];
    }

    std::cout << "\n== ext-distrib: event-driven pipeline simulator "
                 "vs the analytic plan (RPi3 boards, 802.11n-class "
                 "WiFi) ==\n";

    const models::ModelId ms[] = {
        models::ModelId::kMobileNetV2,
        models::ModelId::kResNet18,
    };
    const auto link = distrib::wifiLink();
    std::vector<Row> rows;

    for (auto m : ms) {
        auto dep = frameworks::tryDeploy(
            frameworks::FrameworkId::kTensorFlow,
            models::buildModel(m), hw::DeviceId::kRpi3);
        if (!dep)
            continue;
        const auto name = models::modelInfo(m).name;
        std::cout << "\n" << name << ":\n";
        harness::Table t({"Devices", "Scenario", "Analytic (fps)",
                          "Simulated (fps)", "p99 (ms)", "Dropped",
                          "Re-sends"});
        for (int k : {2, 4}) {
            const auto plan =
                distrib::pipelinePartition(dep->model, link, k);

            distrib::NetworkConfig ideal;
            ideal.link = distrib::linkSpec(link);
            auto lossy = ideal;
            lossy.link.lossRate = 0.05;
            auto noretx = lossy;
            noretx.retransmit.maxAttempts = 0;
            auto shared = ideal;
            shared.medium = distrib::MediumMode::kShared;
            auto jittery = ideal;
            jittery.link.jitter = 0.5;

            const std::pair<const char*,
                            const distrib::NetworkConfig*>
                scenarios[] = {
                    {"ideal", &ideal},
                    {"5% loss", &lossy},
                    {"5% loss, no re-send", &noretx},
                    {"shared medium", &shared},
                    {"50% jitter", &jittery},
                };
            for (const auto& [label, net] : scenarios) {
                const auto rep = simulate(plan, dep->model, *net);
                const auto row =
                    makeRow(name, k, label, plan, rep);
                rows.push_back(row);
                t.addRow({std::to_string(k), label,
                          harness::Table::num(row.analyticHz, 2),
                          harness::Table::num(row.simHz, 2),
                          harness::Table::num(row.p99Ms, 1),
                          std::to_string(row.dropped),
                          std::to_string(row.retransmits)});
            }
        }
        t.print(std::cout);
    }

    std::cout << "\nShape: the ideal rows validate the simulator "
                 "against the closed form (within 1%); loss pays "
                 "re-send serializations, disabling re-sends trades "
                 "throughput for lost frames, and one broadcast "
                 "domain makes concurrent hops share the medium.\n";

    if (json) {
        std::ofstream f(out_path);
        f << "{\n  \"bench\": \"distrib\",\n  \"rows\": [\n";
        for (std::size_t i = 0; i < rows.size(); ++i) {
            const Row& r = rows[i];
            f << "    {\"model\": \"" << r.model
              << "\", \"devices\": " << r.devices
              << ", \"scenario\": \"" << r.scenario
              << "\", \"analytic_hz\": " << r.analyticHz
              << ", \"sim_hz\": " << r.simHz
              << ", \"p99_ms\": " << r.p99Ms
              << ", \"completed\": " << r.completed
              << ", \"dropped\": " << r.dropped
              << ", \"retransmits\": " << r.retransmits << "}"
              << (i + 1 < rows.size() ? "," : "") << "\n";
        }
        f << "  ]\n}\n";
        std::cout << "  wrote " << out_path << "\n";
    }
    return 0;
}
