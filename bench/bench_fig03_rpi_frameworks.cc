/**
 * @file
 * Regenerates Fig. 3: time per inference on the Raspberry Pi across
 * DarkNet, Caffe, TensorFlow and PyTorch, including the paper's
 * "Memory Error" outcomes for static-graph frameworks.
 */

#include <iostream>

#include "bench_util.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig3");

    const models::ModelId rows[] = {
        models::ModelId::kResNet50,  models::ModelId::kResNet101,
        models::ModelId::kXception,  models::ModelId::kMobileNetV2,
        models::ModelId::kInceptionV4, models::ModelId::kAlexNet,
        models::ModelId::kVgg16,
    };
    const frameworks::FrameworkId cols[] = {
        frameworks::FrameworkId::kDarkNet,
        frameworks::FrameworkId::kCaffe,
        frameworks::FrameworkId::kTensorFlow,
        frameworks::FrameworkId::kPyTorch,
    };

    harness::Table t({"Model", "DarkNet (s)", "Caffe (s)",
                      "TensorFlow (s)", "PyTorch (s)"});
    for (auto m : rows) {
        std::vector<std::string> cells{models::modelInfo(m).name};
        for (auto fw : cols) {
            auto dep = frameworks::tryDeploy(
                fw, models::buildModel(m), hw::DeviceId::kRpi3);
            if (!dep) {
                cells.push_back("MemErr");
                continue;
            }
            std::string v = harness::Table::num(
                dep->model.latencyMs() / 1e3, 2);
            if (dep->mark == frameworks::DeployMark::kDynamicSwap)
                v += " (swap)";
            cells.push_back(std::move(v));
        }
        t.addRow(std::move(cells));
    }
    t.print(std::cout);
    std::cout << "\nPaper anchors (s): TF MobileNet-v2 1.40, Caffe "
                 "2.27, PyTorch 8.25; TF fails AlexNet/VGG16 with "
                 "memory errors; PyTorch swaps.\n";
    return 0;
}
