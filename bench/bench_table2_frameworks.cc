/**
 * @file
 * Regenerates Table II (framework specifications and implemented
 * optimizations).
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/frameworks/framework.hh"

using namespace edgebench;

namespace
{

std::string
yn(bool v)
{
    return v ? "yes" : "no";
}

std::string
stars(int n)
{
    return std::string(static_cast<std::size_t>(n), '*');
}

} // namespace

int
main()
{
    bench::banner("table2");

    harness::Table t({"Trait", "TensorFlow", "TFLite", "Caffe",
                      "Movidius", "PyTorch", "TensorRT", "DarkNet"});
    const frameworks::FrameworkId cols[] = {
        frameworks::FrameworkId::kTensorFlow,
        frameworks::FrameworkId::kTfLite,
        frameworks::FrameworkId::kCaffe,
        frameworks::FrameworkId::kMovidiusNcsdk,
        frameworks::FrameworkId::kPyTorch,
        frameworks::FrameworkId::kTensorRt,
        frameworks::FrameworkId::kDarkNet,
    };

    auto row = [&](const std::string& name, auto getter) {
        std::vector<std::string> cells{name};
        for (auto id : cols)
            cells.push_back(getter(frameworks::framework(id).traits()));
        t.addRow(std::move(cells));
    };

    using frameworks::FrameworkTraits;
    row("Language", [](const FrameworkTraits& tr) {
        return tr.language;
    });
    row("Industry Backed", [](const FrameworkTraits& tr) {
        return yn(tr.industryBacked);
    });
    row("Training Framework", [](const FrameworkTraits& tr) {
        return yn(tr.trainingFramework);
    });
    row("Usability", [](const FrameworkTraits& tr) {
        return stars(tr.usability);
    });
    row("Adding New Models", [](const FrameworkTraits& tr) {
        return stars(tr.addingNewModels);
    });
    row("Pre-Defined Models", [](const FrameworkTraits& tr) {
        return stars(tr.preDefinedModels);
    });
    row("Documentation", [](const FrameworkTraits& tr) {
        return stars(tr.documentation);
    });
    row("No Extra Steps", [](const FrameworkTraits& tr) {
        return yn(tr.noExtraSteps);
    });
    row("Mobile Deployment", [](const FrameworkTraits& tr) {
        return yn(tr.mobileDeployment);
    });
    row("Low-Level Modifications", [](const FrameworkTraits& tr) {
        return stars(tr.lowLevelModifications);
    });
    row("Compatibility w/ Others", [](const FrameworkTraits& tr) {
        return stars(tr.compatibilityWithOthers);
    });
    row("Quantization", [](const FrameworkTraits& tr) {
        return yn(tr.quantization);
    });
    row("Mixed-Precision", [](const FrameworkTraits& tr) {
        return yn(tr.mixedPrecision);
    });
    row("Dynamic Graph", [](const FrameworkTraits& tr) {
        return yn(tr.dynamicGraph);
    });
    row("Pruning (exploit)", [](const FrameworkTraits& tr) {
        return yn(tr.pruningExploit);
    });
    row("Fusion", [](const FrameworkTraits& tr) {
        return yn(tr.fusion);
    });
    row("Auto Tuning", [](const FrameworkTraits& tr) {
        return yn(tr.autoTuning);
    });
    row("Half-Precision", [](const FrameworkTraits& tr) {
        return yn(tr.halfPrecision);
    });
    t.print(std::cout);
    return 0;
}
