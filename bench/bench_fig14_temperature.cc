/**
 * @file
 * Regenerates Fig. 14: temperature behaviour of the edge devices
 * while executing a heavy DNN (Inception-v4 class load), including
 * fan activation and the RPi's thermal shutdown.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/thermal/thermal.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig14");

    const hw::DeviceId devices[] = {
        hw::DeviceId::kRpi3,       hw::DeviceId::kJetsonNano,
        hw::DeviceId::kJetsonTx2,  hw::DeviceId::kEdgeTpu,
        hw::DeviceId::kMovidius,
    };

    harness::Table t({"Device", "Idle (C)", "Loaded steady (C)",
                      "Peak (C)", "Fan", "Shutdown",
                      "Time to steady (s)"});
    for (auto d : devices) {
        thermal::ThermalSimulator sim(d);
        const double idle = sim.surfaceC();
        const double load = hw::deviceSpec(d).averagePowerW;
        auto trace = sim.runToSteadyState(load);
        double peak = idle;
        for (double c : trace.surfaceC)
            peak = std::max(peak, c);
        t.addRow({hw::deviceName(d), harness::Table::num(idle, 1),
                  harness::Table::num(trace.finalSurfaceC(), 1),
                  harness::Table::num(peak, 1),
                  trace.sawEvent(thermal::ThermalEvent::kFanOn)
                      ? "on"
                      : "off",
                  trace.sawEvent(thermal::ThermalEvent::kShutdown)
                      ? "YES"
                      : "no",
                  harness::Table::num(trace.timeS.back(), 0)});
    }
    t.print(std::cout);

    // A short trace for the hottest device, Fig. 14 style.
    std::cout << "\nRPi3 surface-temperature trace under load "
                 "(sampled every 60 s):\n";
    thermal::ThermalSimulator rpi(hw::DeviceId::kRpi3);
    auto trace = rpi.simulate([](double) { return 2.73; }, 1800.0,
                              60.0);
    harness::Figure f("fig14-rpi", "RPi3 heating trace");
    std::vector<std::string> labels;
    std::vector<double> values;
    for (std::size_t i = 0; i < trace.timeS.size(); ++i) {
        labels.push_back("t=" + harness::Table::num(
                                    trace.timeS[i], 0) + "s");
        values.push_back(trace.surfaceC[i]);
    }
    f.addSeries("surface C", labels, values);
    f.print(std::cout);
    for (const auto& e : trace.events) {
        std::cout << "event @" << harness::Table::num(e.timeS, 0)
                  << "s: "
                  << (e.event == thermal::ThermalEvent::kShutdown
                          ? "DEVICE SHUTDOWN"
                          : "fan")
                  << "\n";
    }
    std::cout << "\nPaper shape: TX2/Nano fans activate; Movidius "
                 "shows the lowest variation; the RPi trips its "
                 "thermal limit (\"Device Shutdown\").\n";
    return 0;
}
