/**
 * @file
 * Extension bench: pipelined model parallelism across Raspberry Pis
 * (the paper authors' collaborative-IoT line, references [11],
 * [90]-[94]): how many RPis does it take to reach real-time rates?
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/distrib/partition.hh"

using namespace edgebench;

int
main()
{
    std::cout << "\n== ext-pipeline: DNN pipelining across RPi3 "
                 "boards (TensorFlow, wired LAN) ==\n";

    const models::ModelId ms[] = {
        models::ModelId::kCifarNet, models::ModelId::kResNet18,
        models::ModelId::kResNet50, models::ModelId::kInceptionV4,
    };

    for (auto m : ms) {
        auto dep = frameworks::tryDeploy(
            frameworks::FrameworkId::kTensorFlow,
            models::buildModel(m), hw::DeviceId::kRpi3);
        if (!dep)
            continue;
        std::cout << "\n" << models::modelInfo(m).name << ":\n";
        harness::Table t({"Devices", "Stages", "Bottleneck (ms)",
                          "Throughput (fps)", "Frame latency (ms)",
                          "Speedup"});
        double base = 0.0;
        for (int k : {1, 2, 3, 4, 6}) {
            const auto r = distrib::pipelinePartition(
                dep->model, distrib::lanLink(), k);
            if (k == 1)
                base = r.throughputHz;
            t.addRow({std::to_string(k),
                      std::to_string(r.stageMs.size()),
                      harness::Table::num(r.bottleneckMs, 1),
                      harness::Table::num(r.throughputHz, 2),
                      harness::Table::num(r.latencyMs, 1),
                      harness::Table::num(r.throughputHz / base, 2)});
        }
        t.print(std::cout);
    }
    std::cout << "\nShape (matching the authors' collaborative-IoT "
                 "results): a handful of RPis buys a near-linear "
                 "throughput multiple until transfers or the largest "
                 "indivisible layer become the bottleneck.\n";
    return 0;
}
