/**
 * @file
 * Regenerates Fig. 10: speedup of each HPC platform over the Jetson
 * TX2 (PyTorch), with per-platform and overall geomeans (paper:
 * "only 3x" on average).
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/harness/stats.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig10");

    const models::ModelId rows[] = {
        models::ModelId::kResNet18,  models::ModelId::kResNet50,
        models::ModelId::kResNet101, models::ModelId::kMobileNetV2,
        models::ModelId::kInceptionV4, models::ModelId::kAlexNet,
        models::ModelId::kVgg16,     models::ModelId::kVgg19,
        models::ModelId::kVggS224,   models::ModelId::kVggS32,
        models::ModelId::kYoloV3,    models::ModelId::kTinyYolo,
        models::ModelId::kC3d,
    };
    const hw::DeviceId cols[] = {
        hw::DeviceId::kXeon, hw::DeviceId::kGtxTitanX,
        hw::DeviceId::kTitanXp, hw::DeviceId::kRtx2080,
    };

    std::vector<std::string> headers{"Model"};
    for (auto d : cols)
        headers.push_back(hw::deviceName(d));
    harness::Table t(std::move(headers));

    std::vector<double> all;
    std::vector<std::vector<double>> per_platform(4);
    for (auto m : rows) {
        const auto tx2 = bench::latencyMs(
            frameworks::FrameworkId::kPyTorch, m,
            hw::DeviceId::kJetsonTx2);
        std::vector<std::string> cells{models::modelInfo(m).name};
        for (std::size_t c = 0; c < 4; ++c) {
            const auto hpc = bench::latencyMs(
                frameworks::FrameworkId::kPyTorch, m, cols[c]);
            if (tx2 && hpc) {
                const double s = *tx2 / *hpc;
                all.push_back(s);
                per_platform[c].push_back(s);
                cells.push_back(harness::Table::num(s, 2));
            } else {
                cells.push_back("n/a");
            }
        }
        t.addRow(std::move(cells));
    }
    t.print(std::cout);

    std::cout << "\nGeomean speedup per platform:\n";
    for (std::size_t c = 0; c < 4; ++c)
        std::cout << "  " << hw::deviceName(cols[c]) << ": "
                  << harness::Table::num(
                         harness::geomean(per_platform[c]), 2)
                  << "x\n";
    std::cout << "GEOMEAN across all models and platforms: "
              << harness::Table::num(harness::geomean(all), 2)
              << "x (paper: ~3x)\n";
    return 0;
}
