/**
 * @file
 * Regenerates Fig. 12: inference time vs active power scatter across
 * platforms (one point per model per platform).
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/power/energy.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig12");

    const models::ModelId rows[] = {
        models::ModelId::kResNet18, models::ModelId::kResNet50,
        models::ModelId::kMobileNetV2, models::ModelId::kInceptionV4,
    };
    const hw::DeviceId cols[] = {
        hw::DeviceId::kMovidius,  hw::DeviceId::kEdgeTpu,
        hw::DeviceId::kRpi3,      hw::DeviceId::kJetsonNano,
        hw::DeviceId::kJetsonTx2, hw::DeviceId::kGtxTitanX,
    };

    harness::Table t({"Platform", "Model", "Power (W)",
                      "Inference time (ms)"});
    for (auto d : cols) {
        for (auto m : rows) {
            auto dep =
                frameworks::bestDeployment(models::buildModel(m), d);
            if (!dep)
                continue;
            const auto e = power::energyPerInference(dep->model);
            t.addRow({hw::deviceName(d), models::modelInfo(m).name,
                      harness::Table::num(e.activePowerW, 2),
                      harness::Table::num(e.inferenceTimeMs, 1)});
        }
    }
    t.print(std::cout);
    std::cout << "\nPaper shape: Movidius has the lowest active "
                 "power; EdgeTPU the lowest inference time; GTX Titan "
                 "X sits at ~100 W; Jetson Nano balances both.\n";
    return 0;
}
