/**
 * @file
 * Extension bench: classic roofline data. For each device, print the
 * machine balance point and, for each model, its operational
 * intensity (FLOP/byte) and achieved performance under the best
 * framework — the quantitative backbone of the paper's
 * compute-bound vs memory-bound discussion (Fig. 1, Section VI-C).
 */

#include <iostream>

#include "bench_util.hh"

using namespace edgebench;

int
main()
{
    std::cout << "\n== ext-roofline: operational intensity vs "
                 "achieved performance ==\n";

    const hw::DeviceId devices[] = {
        hw::DeviceId::kRpi3, hw::DeviceId::kJetsonTx2,
        hw::DeviceId::kTitanXp,
    };

    for (auto d : devices) {
        const auto& spec = hw::deviceSpec(d);
        const auto& unit = spec.preferredUnit();
        const double peak = unit.peakFor(core::DType::kF32);
        const double balance = peak / unit.memBandwidthGBs;
        std::cout << "\n" << spec.name << ": peak "
                  << harness::Table::num(peak, 0) << " GFLOP/s, "
                  << harness::Table::num(unit.memBandwidthGBs, 1)
                  << " GB/s, balance point "
                  << harness::Table::num(balance, 1)
                  << " FLOP/byte\n";
        harness::Table t({"Model", "OI (FLOP/byte)", "Bound",
                          "Achieved GFLOP/s", "% of peak"});
        for (auto m : {models::ModelId::kVggS32,
                       models::ModelId::kAlexNet,
                       models::ModelId::kVgg16,
                       models::ModelId::kResNet50,
                       models::ModelId::kMobileNetV2,
                       models::ModelId::kYoloV3,
                       models::ModelId::kC3d}) {
            const auto g = models::buildModel(m);
            const auto st = g.stats();
            const double bytes =
                st.paramBytes + st.activationBytes;
            const double oi = static_cast<double>(st.macs) / bytes;
            auto dep = frameworks::bestDeployment(g, d);
            if (!dep) {
                t.addRow({models::modelInfo(m).name,
                          harness::Table::num(oi, 1),
                          oi < balance ? "memory" : "compute", "n/a",
                          "-"});
                continue;
            }
            const double gflops = static_cast<double>(st.macs) /
                (dep->model.latencyMs() / 1e3) / 1e9;
            t.addRow({models::modelInfo(m).name,
                      harness::Table::num(oi, 1),
                      oi < balance ? "memory" : "compute",
                      harness::Table::num(gflops, 1),
                      harness::Table::num(100.0 * gflops / peak, 1)});
        }
        t.print(std::cout);
    }
    std::cout << "\nShape: VGG-S/AlexNet sit left of every balance "
                 "point (weight streaming dominates); ResNet/YOLO/C3D "
                 "sit right of it. Achieved fractions of peak stay in "
                 "single digits for single-batch serving -- the "
                 "paper's core Section VI-C finding.\n";
    return 0;
}
