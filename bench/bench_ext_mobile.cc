/**
 * @file
 * Extension bench: mobile-specific architectures from the paper's
 * related work (Section VIII, group 2) — SqueezeNet [84] and
 * ShuffleNet [85] — characterized alongside MobileNet-v2 on the edge
 * devices.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/power/energy.hh"

using namespace edgebench;

int
main()
{
    std::cout << "\n== ext-mobile: handcrafted mobile architectures "
                 "on the edge devices ==\n";

    std::vector<graph::Graph> zoo;
    zoo.push_back(models::buildSqueezeNet());
    zoo.push_back(models::buildShuffleNet());
    zoo.push_back(models::buildDenseNet121());
    zoo.push_back(models::buildMobileNetV2());

    harness::Table stats({"Model", "GFLOP", "MParams", "FLOP/Param"});
    for (const auto& g : zoo) {
        const auto st = g.stats();
        stats.addRow({g.name(), harness::Table::num(st.macs / 1e9, 3),
                      harness::Table::num(st.params / 1e6, 2),
                      harness::Table::num(st.flopPerParam, 1)});
    }
    stats.print(std::cout);

    std::cout << "\nBest-framework latency (ms) and energy (mJ):\n";
    harness::Table t({"Model", "Device", "Framework", "Latency (ms)",
                      "Energy (mJ)"});
    for (const auto& g : zoo) {
        for (auto d : {hw::DeviceId::kRpi3, hw::DeviceId::kJetsonNano,
                       hw::DeviceId::kEdgeTpu,
                       hw::DeviceId::kMovidius}) {
            auto dep = frameworks::bestDeployment(g, d);
            if (!dep) {
                t.addRow({g.name(), hw::deviceName(d), "n/a", "-",
                          "-"});
                continue;
            }
            const auto e = power::energyPerInference(dep->model);
            t.addRow({g.name(), hw::deviceName(d),
                      frameworks::frameworkName(dep->framework),
                      harness::Table::num(dep->model.latencyMs(), 1),
                      harness::Table::num(e.energyPerInferenceMJ,
                                          1)});
        }
    }
    t.print(std::cout);
    std::cout << "\nThe handcrafted models trade parameters for "
                 "depthwise/grouped structure; on stacks without "
                 "tuned grouped-conv kernels (general frameworks on "
                 "the RPi) the FLOP savings do not fully convert "
                 "into latency -- the framework effect the paper's "
                 "Section VI-B quantifies.\n";
    return 0;
}
