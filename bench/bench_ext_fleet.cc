/**
 * @file
 * Extension bench: multi-replica fleet serving. Scales the paper's
 * single-device deployment story out to a small fleet: how many
 * replicas does an overloaded arrival stream need, which balancer
 * spends the replicas best, and what happens to the fleet when one
 * device hits the Fig. 14 thermal wall.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/frameworks/runtime.hh"
#include "edgebench/serving/fleet.hh"

using namespace edgebench;

namespace
{

serving::FleetConfig
overloadConfig()
{
    serving::FleetConfig cfg;
    cfg.durationS = 300.0;
    // One Nano clears MobileNet-v2 in ~11 ms (~90 Hz); 300 req/s
    // needs most of a 4-replica fleet.
    cfg.arrivalRateHz = 300.0;
    cfg.seed = 31;
    cfg.queueCapacity = 16;
    cfg.enableThermal = false; // isolate queueing from thermals
    return cfg;
}

} // namespace

int
main()
{
    auto dep = frameworks::bestDeployment(
        models::buildModel(models::ModelId::kMobileNetV2),
        hw::DeviceId::kJetsonNano);
    if (!dep) {
        std::cout << "MobileNet-v2 undeployable on Jetson Nano?\n";
        return 1;
    }
    frameworks::InferenceSession session(dep->model);

    std::cout << "\n== ext-fleet: MobileNet-v2 on Jetson Nano "
                 "replicas, open-loop 300 req/s for 5 minutes ==\n";
    harness::Table t({"Replicas", "Served", "Dropped", "p50 (ms)",
                      "p99 (ms)", "Tput (Hz)", "Speedup",
                      "Util (%)"});
    double base_tput = 0.0;
    for (int n : {1, 2, 4, 8}) {
        const auto rep =
            serving::simulateFleet(session, n, overloadConfig());
        if (n == 1)
            base_tput = rep.throughputHz;
        t.addRow({std::to_string(n), std::to_string(rep.served),
                  std::to_string(rep.dropped),
                  harness::Table::num(rep.p50Ms, 1),
                  harness::Table::num(rep.p99Ms, 1),
                  harness::Table::num(rep.throughputHz, 2),
                  harness::Table::num(
                      base_tput > 0.0 ? rep.throughputHz / base_tput
                                      : 0.0, 2),
                  harness::Table::num(100.0 * rep.utilization, 1)});
    }
    t.print(std::cout);
    std::cout << "\nThroughput scales near-linearly until the fleet "
                 "absorbs the offered load; after that extra replicas "
                 "only buy idle headroom.\n";

    std::cout << "\nBalancer policies, 4 replicas at the same "
                 "overload:\n";
    harness::Table tb({"Balancer", "Served", "Dropped", "p99 (ms)",
                       "Tput (Hz)"});
    for (auto p : {serving::BalancerPolicy::kRoundRobin,
                   serving::BalancerPolicy::kLeastLoaded,
                   serving::BalancerPolicy::kPowerOfTwo}) {
        auto cfg = overloadConfig();
        cfg.balancer = p;
        const auto rep = serving::simulateFleet(session, 4, cfg);
        tb.addRow({serving::balancerName(p),
                   std::to_string(rep.served),
                   std::to_string(rep.dropped),
                   harness::Table::num(rep.p99Ms, 1),
                   harness::Table::num(rep.throughputHz, 2)});
    }
    tb.print(std::cout);

    std::cout << "\nMicro-batching on one replica (roofline batch "
                 "gains, same load):\n";
    harness::Table tm({"Max batch", "Served", "Dropped", "p99 (ms)",
                       "Tput (Hz)"});
    for (int b : {1, 2, 4, 8}) {
        auto cfg = overloadConfig();
        cfg.maxBatch = b;
        const auto rep = serving::simulateFleet(session, 1, cfg);
        tm.addRow({std::to_string(b), std::to_string(rep.served),
                   std::to_string(rep.dropped),
                   harness::Table::num(rep.p99Ms, 1),
                   harness::Table::num(rep.throughputHz, 2)});
    }
    tm.print(std::cout);

    std::cout << "\n== Graceful degradation: RPi3 + Jetson Nano "
                 "fleet, Inception-v4 at 2 req/s for one hour ==\n";
    auto rpi = frameworks::tryDeploy(
        frameworks::FrameworkId::kTensorFlow,
        models::buildModel(models::ModelId::kInceptionV4),
        hw::DeviceId::kRpi3);
    auto nano = frameworks::bestDeployment(
        models::buildModel(models::ModelId::kInceptionV4),
        hw::DeviceId::kJetsonNano);
    if (rpi && nano) {
        frameworks::InferenceSession rpi_s(rpi->model);
        frameworks::InferenceSession nano_s(nano->model);
        serving::FleetConfig cfg;
        cfg.durationS = 3600.0;
        cfg.arrivalRateHz = 2.0;
        cfg.seed = 32;
        cfg.queueCapacity = 32;
        // Round-robin on purpose: it keeps feeding the RPi half the
        // stream no matter how far behind it falls.
        cfg.balancer = serving::BalancerPolicy::kRoundRobin;
        cfg.retry.maxAttempts = 2;
        const auto rep = serving::simulateFleet(
            std::vector<const frameworks::InferenceSession*>{
                &rpi_s, &nano_s},
            cfg);
        harness::Table td({"Replica", "Served", "Util (%)",
                           "Peak (C)", "Fate"});
        const char* names[] = {"RPi3", "Jetson Nano"};
        for (std::size_t r = 0; r < rep.replicas.size(); ++r) {
            const auto& rr = rep.replicas[r];
            td.addRow({names[r], std::to_string(rr.served),
                       harness::Table::num(
                           100.0 * rr.utilization, 1),
                       harness::Table::num(rr.peakSurfaceC, 1),
                       rr.thermalShutdown
                           ? "shutdown @" +
                                 harness::Table::num(
                                     rr.shutdownAtS, 0) + " s"
                           : (rr.thermalThrottled ? "throttled"
                                                  : "healthy")});
        }
        td.print(std::cout);
        std::cout << "\nFleet: offered " << rep.offered << ", served "
                  << rep.served << ", dropped " << rep.dropped
                  << ", in flight " << rep.inFlight << "; "
                  << rep.aliveReplicas
                  << " replica(s) alive at the end. The fleet "
                     "outlives its weakest device.\n";
    }
    return 0;
}
