/**
 * @file
 * Regenerates Fig. 8: Raspberry Pi with TensorFlow, PyTorch and
 * TFLite, with TFLite's speedup over each (paper: 1.58x over TF,
 * 4.53x over PyTorch).
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/harness/stats.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig8");

    struct Row
    {
        models::ModelId id;
        double paper_pt, paper_tf, paper_tfl; // seconds
    };
    const Row rows[] = {
        {models::ModelId::kResNet18, 6.57, 0.99, 0.87},
        {models::ModelId::kResNet50, 8.30, 3.06, 2.46},
        {models::ModelId::kResNet101, 15.32, 13.32, 8.86},
        {models::ModelId::kMobileNetV2, 8.28, 1.40, 0.48},
        {models::ModelId::kInceptionV4, 13.84, 8.87, 5.51},
    };

    harness::Table t({"Model", "PyTorch (s)", "paper",
                      "TensorFlow (s)", "paper", "TFLite (s)",
                      "paper"});
    std::vector<double> vs_tf, vs_pt;
    for (const auto& r : rows) {
        const auto pt = bench::latencyMs(
            frameworks::FrameworkId::kPyTorch, r.id,
            hw::DeviceId::kRpi3);
        const auto tf = bench::latencyMs(
            frameworks::FrameworkId::kTensorFlow, r.id,
            hw::DeviceId::kRpi3);
        const auto tfl = bench::latencyMs(
            frameworks::FrameworkId::kTfLite, r.id,
            hw::DeviceId::kRpi3);
        if (tf && tfl)
            vs_tf.push_back(*tf / *tfl);
        if (pt && tfl)
            vs_pt.push_back(*pt / *tfl);
        auto sec = [](std::optional<double> ms) {
            return ms ? harness::Table::num(*ms / 1e3, 2)
                      : std::string("n/a");
        };
        t.addRow({models::modelInfo(r.id).name, sec(pt),
                  harness::Table::num(r.paper_pt, 2), sec(tf),
                  harness::Table::num(r.paper_tf, 2), sec(tfl),
                  harness::Table::num(r.paper_tfl, 2)});
    }
    t.print(std::cout);
    std::cout << "\nTFLite speedup over TensorFlow: "
              << harness::Table::num(harness::geomean(vs_tf), 2)
              << "x (paper avg: 1.58x)\n"
              << "TFLite speedup over PyTorch:    "
              << harness::Table::num(harness::geomean(vs_pt), 2)
              << "x (paper avg: 4.53x)\n";
    return 0;
}
