/**
 * @file
 * Regenerates Fig. 13: bare-metal vs Docker time per inference on the
 * Raspberry Pi (TensorFlow) with the relative slowdown.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/sysmodel/virtualization.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig13");

    struct Row
    {
        models::ModelId id;
        double paper_bare_s;
        double paper_docker_s;
    };
    const Row rows[] = {
        {models::ModelId::kResNet18, 1.01, 1.06},
        {models::ModelId::kResNet50, 3.15, 3.18},
        {models::ModelId::kMobileNetV2, 1.07, 1.10},
        {models::ModelId::kInceptionV4, 9.31, 9.54},
        {models::ModelId::kTinyYolo, 0.96, 0.96},
    };

    harness::Table t({"Model", "Bare Metal (s)", "Docker (s)",
                      "Slowdown (%)", "paper slowdown (%)"});
    for (const auto& r : rows) {
        auto dep = frameworks::tryDeploy(
            frameworks::FrameworkId::kTensorFlow,
            models::buildModel(r.id), hw::DeviceId::kRpi3);
        if (!dep) {
            t.addRow({models::modelInfo(r.id).name, "n/a", "n/a",
                      "n/a", ""});
            continue;
        }
        const double bare = sysmodel::environmentLatencyMs(
            dep->model, sysmodel::ExecEnvironment::kBareMetal);
        const double docker = sysmodel::environmentLatencyMs(
            dep->model, sysmodel::ExecEnvironment::kDocker);
        const double paper_slow =
            (r.paper_docker_s / r.paper_bare_s - 1.0) * 100.0;
        t.addRow({models::modelInfo(r.id).name,
                  harness::Table::num(bare / 1e3, 2),
                  harness::Table::num(docker / 1e3, 2),
                  harness::Table::num((docker / bare - 1.0) * 100.0,
                                      2),
                  harness::Table::num(paper_slow, 2)});
    }
    t.print(std::cout);
    std::cout << "\nPaper conclusion: virtualization overhead is "
                 "within 5% in all cases.\n";
    return 0;
}
