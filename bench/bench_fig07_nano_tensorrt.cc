/**
 * @file
 * Regenerates Fig. 7: Jetson Nano with PyTorch vs TensorRT, with the
 * per-model speedup and the average (paper: 4.1x).
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/harness/stats.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig7");

    struct Row
    {
        models::ModelId id;
        double paper_pt;
        double paper_trt;
    };
    const Row rows[] = {
        {models::ModelId::kResNet18, 141.3, 23},
        {models::ModelId::kResNet50, 215.0, 32},
        {models::ModelId::kMobileNetV2, 118.4, 18},
        {models::ModelId::kInceptionV4, 292.5, 95},
        {models::ModelId::kAlexNet, 132.1, 46},
        {models::ModelId::kVgg16, 290.7, 92},
        {models::ModelId::kTinyYolo, 123.8, 42},
        {models::ModelId::kC3d, 555.4, 229},
    };

    harness::Table t({"Model", "PyTorch (ms)", "paper", "TensorRT (ms)",
                      "paper", "Speedup", "paper"});
    std::vector<double> speedups;
    for (const auto& r : rows) {
        const auto pt = bench::latencyMs(
            frameworks::FrameworkId::kPyTorch, r.id,
            hw::DeviceId::kJetsonNano);
        const auto trt = bench::latencyMs(
            frameworks::FrameworkId::kTensorRt, r.id,
            hw::DeviceId::kJetsonNano);
        double speedup = 0.0;
        if (pt && trt) {
            speedup = *pt / *trt;
            speedups.push_back(speedup);
        }
        t.addRow({models::modelInfo(r.id).name, bench::cell(pt),
                  harness::Table::num(r.paper_pt, 1),
                  bench::cell(trt),
                  harness::Table::num(r.paper_trt, 1),
                  harness::Table::num(speedup, 2),
                  harness::Table::num(r.paper_pt / r.paper_trt, 2)});
    }
    t.print(std::cout);
    std::cout << "\nAverage TensorRT speedup over PyTorch: "
              << harness::Table::num(harness::geomean(speedups), 2)
              << "x (paper: 4.1x)\n";
    return 0;
}
