/**
 * @file
 * Regenerates Fig. 5: software-stack profiling of PyTorch and
 * TensorFlow on the Raspberry Pi (30 inferences) and Jetson TX2
 * (1000 inferences), printed as per-label percentage breakdowns.
 *
 * The breakdown is derived from the recorded trace (the same spans
 * `edgebench predict --trace-out` writes), folded back into a table
 * by harness::traceBreakdown. The legacy ProfileReport totals stay
 * equal by construction; the obs integration test asserts it.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/frameworks/runtime.hh"
#include "edgebench/obs/trace.hh"

using namespace edgebench;

namespace
{

void
printBreakdown(const char* tag, frameworks::FrameworkId fw,
               hw::DeviceId device, std::int64_t inferences)
{
    auto dep = frameworks::tryDeploy(
        fw, models::buildModel(models::ModelId::kResNet18), device);
    if (!dep) {
        std::cout << tag << ": undeployable\n";
        return;
    }
    frameworks::InferenceSession session(std::move(dep->model));
    obs::Tracer tracer("fig5");
    const auto rep = session.profileRun(inferences, &tracer);

    std::cout << "\n(" << tag << ") "
              << frameworks::frameworkName(fw) << " on "
              << hw::deviceName(device) << ", " << inferences
              << " inferences of ResNet-18, "
              << harness::Table::num(rep.totalMs(), 1)
              << " ms total:\n";
    harness::traceBreakdown(tracer).print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("fig5");
    printBreakdown("a", frameworks::FrameworkId::kPyTorch,
                   hw::DeviceId::kRpi3, 30);
    printBreakdown("b", frameworks::FrameworkId::kTensorFlow,
                   hw::DeviceId::kRpi3, 30);
    printBreakdown("c", frameworks::FrameworkId::kPyTorch,
                   hw::DeviceId::kJetsonTx2, 1000);
    printBreakdown("d", frameworks::FrameworkId::kTensorFlow,
                   hw::DeviceId::kJetsonTx2, 1000);
    std::cout << "\nPaper anchors: (a) conv2d 81.0%; (b) base_layer "
                 "50.7%, library 13.7%; (c) _C._TensorBase.to() "
                 "39.4%, conv2d 22.8%; (d) base_layer 38.2%, "
                 "TF_SessionRunCallable 34.3%.\n";
    return 0;
}
