/**
 * @file
 * Regenerates Fig. 5: software-stack profiling of PyTorch and
 * TensorFlow on the Raspberry Pi (30 inferences) and Jetson TX2
 * (1000 inferences), printed as per-label percentage breakdowns.
 */

#include <iostream>

#include "bench_util.hh"
#include "edgebench/frameworks/runtime.hh"

using namespace edgebench;

namespace
{

void
printBreakdown(const char* tag, frameworks::FrameworkId fw,
               hw::DeviceId device, std::int64_t inferences)
{
    auto dep = frameworks::tryDeploy(
        fw, models::buildModel(models::ModelId::kResNet18), device);
    if (!dep) {
        std::cout << tag << ": undeployable\n";
        return;
    }
    frameworks::InferenceSession session(std::move(dep->model));
    const auto rep = session.profileRun(inferences);
    const double total = rep.totalMs();

    std::cout << "\n(" << tag << ") "
              << frameworks::frameworkName(fw) << " on "
              << hw::deviceName(device) << ", " << inferences
              << " inferences of ResNet-18:\n";
    harness::Table t({"Label", "Phase", "Time (ms)", "Share (%)"});
    for (const auto& s : rep.samples) {
        if (s.ms <= 0.0)
            continue;
        t.addRow({s.label, frameworks::phaseName(s.phase),
                  harness::Table::num(s.ms, 1),
                  harness::Table::num(100.0 * s.ms / total, 1)});
    }
    t.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("fig5");
    printBreakdown("a", frameworks::FrameworkId::kPyTorch,
                   hw::DeviceId::kRpi3, 30);
    printBreakdown("b", frameworks::FrameworkId::kTensorFlow,
                   hw::DeviceId::kRpi3, 30);
    printBreakdown("c", frameworks::FrameworkId::kPyTorch,
                   hw::DeviceId::kJetsonTx2, 1000);
    printBreakdown("d", frameworks::FrameworkId::kTensorFlow,
                   hw::DeviceId::kJetsonTx2, 1000);
    std::cout << "\nPaper anchors: (a) conv2d 81.0%; (b) base_layer "
                 "50.7%, library 13.7%; (c) _C._TensorBase.to() "
                 "39.4%, conv2d 22.8%; (d) base_layer 38.2%, "
                 "TF_SessionRunCallable 34.3%.\n";
    return 0;
}
