/**
 * @file
 * Regenerates Fig. 9: single-batch time per inference on the Jetson
 * TX2 vs HPC platforms (Xeon and three GPUs), all under PyTorch with
 * no edge-specific optimizations.
 */

#include <iostream>

#include "bench_util.hh"

using namespace edgebench;

int
main()
{
    bench::banner("fig9");

    const models::ModelId rows[] = {
        models::ModelId::kResNet18,  models::ModelId::kResNet50,
        models::ModelId::kResNet101, models::ModelId::kMobileNetV2,
        models::ModelId::kInceptionV4, models::ModelId::kAlexNet,
        models::ModelId::kVgg16,     models::ModelId::kVgg19,
        models::ModelId::kVggS224,   models::ModelId::kVggS32,
        models::ModelId::kYoloV3,    models::ModelId::kTinyYolo,
        models::ModelId::kC3d,
    };
    const hw::DeviceId cols[] = {
        hw::DeviceId::kJetsonTx2, hw::DeviceId::kXeon,
        hw::DeviceId::kGtxTitanX, hw::DeviceId::kTitanXp,
        hw::DeviceId::kRtx2080,
    };

    std::vector<std::string> headers{"Model"};
    for (auto d : cols)
        headers.push_back(hw::deviceName(d) + " (ms)");
    harness::Table t(std::move(headers));
    for (auto m : rows) {
        std::vector<std::string> cells{models::modelInfo(m).name};
        for (auto d : cols)
            cells.push_back(bench::cell(bench::latencyMs(
                frameworks::FrameworkId::kPyTorch, m, d)));
        t.addRow(std::move(cells));
    }
    t.print(std::cout);
    std::cout << "\nPaper shape: HPC platforms win but not by much; "
                 "Xeon trails on compute-bound models and matches TX2 "
                 "only on VGG-class memory-bound models.\n";
    return 0;
}
