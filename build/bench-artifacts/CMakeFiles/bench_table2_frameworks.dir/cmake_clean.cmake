file(REMOVE_RECURSE
  "../bench/bench_table2_frameworks"
  "../bench/bench_table2_frameworks.pdb"
  "CMakeFiles/bench_table2_frameworks.dir/bench_table2_frameworks.cc.o"
  "CMakeFiles/bench_table2_frameworks.dir/bench_table2_frameworks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
