file(REMOVE_RECURSE
  "../bench/bench_ext_layer_hotspots"
  "../bench/bench_ext_layer_hotspots.pdb"
  "CMakeFiles/bench_ext_layer_hotspots.dir/bench_ext_layer_hotspots.cc.o"
  "CMakeFiles/bench_ext_layer_hotspots.dir/bench_ext_layer_hotspots.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_layer_hotspots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
