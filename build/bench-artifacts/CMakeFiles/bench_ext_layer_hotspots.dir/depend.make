# Empty dependencies file for bench_ext_layer_hotspots.
# This may be replaced when dependencies are built.
