file(REMOVE_RECURSE
  "../bench/bench_table5_compat"
  "../bench/bench_table5_compat.pdb"
  "CMakeFiles/bench_table5_compat.dir/bench_table5_compat.cc.o"
  "CMakeFiles/bench_table5_compat.dir/bench_table5_compat.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_compat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
