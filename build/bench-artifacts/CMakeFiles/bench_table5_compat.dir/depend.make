# Empty dependencies file for bench_table5_compat.
# This may be replaced when dependencies are built.
