file(REMOVE_RECURSE
  "../bench/bench_fig07_nano_tensorrt"
  "../bench/bench_fig07_nano_tensorrt.pdb"
  "CMakeFiles/bench_fig07_nano_tensorrt.dir/bench_fig07_nano_tensorrt.cc.o"
  "CMakeFiles/bench_fig07_nano_tensorrt.dir/bench_fig07_nano_tensorrt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_nano_tensorrt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
