# Empty compiler generated dependencies file for bench_fig07_nano_tensorrt.
# This may be replaced when dependencies are built.
