file(REMOVE_RECURSE
  "../bench/bench_ablation_costmodel"
  "../bench/bench_ablation_costmodel.pdb"
  "CMakeFiles/bench_ablation_costmodel.dir/bench_ablation_costmodel.cc.o"
  "CMakeFiles/bench_ablation_costmodel.dir/bench_ablation_costmodel.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
