file(REMOVE_RECURSE
  "../bench/bench_table3_devices"
  "../bench/bench_table3_devices.pdb"
  "CMakeFiles/bench_table3_devices.dir/bench_table3_devices.cc.o"
  "CMakeFiles/bench_table3_devices.dir/bench_table3_devices.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_devices.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
