file(REMOVE_RECURSE
  "../bench/bench_fig08_rpi_tflite"
  "../bench/bench_fig08_rpi_tflite.pdb"
  "CMakeFiles/bench_fig08_rpi_tflite.dir/bench_fig08_rpi_tflite.cc.o"
  "CMakeFiles/bench_fig08_rpi_tflite.dir/bench_fig08_rpi_tflite.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_rpi_tflite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
