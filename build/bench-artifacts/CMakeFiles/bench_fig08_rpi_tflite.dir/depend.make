# Empty dependencies file for bench_fig08_rpi_tflite.
# This may be replaced when dependencies are built.
