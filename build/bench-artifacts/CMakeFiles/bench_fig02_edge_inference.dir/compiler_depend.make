# Empty compiler generated dependencies file for bench_fig02_edge_inference.
# This may be replaced when dependencies are built.
