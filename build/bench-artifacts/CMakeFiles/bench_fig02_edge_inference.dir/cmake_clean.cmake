file(REMOVE_RECURSE
  "../bench/bench_fig02_edge_inference"
  "../bench/bench_fig02_edge_inference.pdb"
  "CMakeFiles/bench_fig02_edge_inference.dir/bench_fig02_edge_inference.cc.o"
  "CMakeFiles/bench_fig02_edge_inference.dir/bench_fig02_edge_inference.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_edge_inference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
