# Empty compiler generated dependencies file for bench_fig06_gtx_tf_vs_pt.
# This may be replaced when dependencies are built.
