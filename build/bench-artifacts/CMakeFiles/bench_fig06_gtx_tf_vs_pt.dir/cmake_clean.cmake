file(REMOVE_RECURSE
  "../bench/bench_fig06_gtx_tf_vs_pt"
  "../bench/bench_fig06_gtx_tf_vs_pt.pdb"
  "CMakeFiles/bench_fig06_gtx_tf_vs_pt.dir/bench_fig06_gtx_tf_vs_pt.cc.o"
  "CMakeFiles/bench_fig06_gtx_tf_vs_pt.dir/bench_fig06_gtx_tf_vs_pt.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_gtx_tf_vs_pt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
