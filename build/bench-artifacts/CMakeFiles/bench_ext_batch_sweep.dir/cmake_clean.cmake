file(REMOVE_RECURSE
  "../bench/bench_ext_batch_sweep"
  "../bench/bench_ext_batch_sweep.pdb"
  "CMakeFiles/bench_ext_batch_sweep.dir/bench_ext_batch_sweep.cc.o"
  "CMakeFiles/bench_ext_batch_sweep.dir/bench_ext_batch_sweep.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_batch_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
