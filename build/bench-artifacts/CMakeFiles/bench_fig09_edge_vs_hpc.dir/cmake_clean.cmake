file(REMOVE_RECURSE
  "../bench/bench_fig09_edge_vs_hpc"
  "../bench/bench_fig09_edge_vs_hpc.pdb"
  "CMakeFiles/bench_fig09_edge_vs_hpc.dir/bench_fig09_edge_vs_hpc.cc.o"
  "CMakeFiles/bench_fig09_edge_vs_hpc.dir/bench_fig09_edge_vs_hpc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_edge_vs_hpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
