# Empty dependencies file for bench_fig09_edge_vs_hpc.
# This may be replaced when dependencies are built.
