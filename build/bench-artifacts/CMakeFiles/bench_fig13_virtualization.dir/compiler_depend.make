# Empty compiler generated dependencies file for bench_fig13_virtualization.
# This may be replaced when dependencies are built.
