file(REMOVE_RECURSE
  "../bench/bench_fig13_virtualization"
  "../bench/bench_fig13_virtualization.pdb"
  "CMakeFiles/bench_fig13_virtualization.dir/bench_fig13_virtualization.cc.o"
  "CMakeFiles/bench_fig13_virtualization.dir/bench_fig13_virtualization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_virtualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
