file(REMOVE_RECURSE
  "../bench/bench_ext_mobile"
  "../bench/bench_ext_mobile.pdb"
  "CMakeFiles/bench_ext_mobile.dir/bench_ext_mobile.cc.o"
  "CMakeFiles/bench_ext_mobile.dir/bench_ext_mobile.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_mobile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
