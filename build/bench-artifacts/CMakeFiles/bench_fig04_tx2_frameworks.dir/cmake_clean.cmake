file(REMOVE_RECURSE
  "../bench/bench_fig04_tx2_frameworks"
  "../bench/bench_fig04_tx2_frameworks.pdb"
  "CMakeFiles/bench_fig04_tx2_frameworks.dir/bench_fig04_tx2_frameworks.cc.o"
  "CMakeFiles/bench_fig04_tx2_frameworks.dir/bench_fig04_tx2_frameworks.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_tx2_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
