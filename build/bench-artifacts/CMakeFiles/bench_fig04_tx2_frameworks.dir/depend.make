# Empty dependencies file for bench_fig04_tx2_frameworks.
# This may be replaced when dependencies are built.
