# Empty compiler generated dependencies file for bench_ext_recurrent.
# This may be replaced when dependencies are built.
