file(REMOVE_RECURSE
  "../bench/bench_ext_recurrent"
  "../bench/bench_ext_recurrent.pdb"
  "CMakeFiles/bench_ext_recurrent.dir/bench_ext_recurrent.cc.o"
  "CMakeFiles/bench_ext_recurrent.dir/bench_ext_recurrent.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_recurrent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
