# Empty dependencies file for bench_ext_quantization.
# This may be replaced when dependencies are built.
