file(REMOVE_RECURSE
  "../bench/bench_ext_quantization"
  "../bench/bench_ext_quantization.pdb"
  "CMakeFiles/bench_ext_quantization.dir/bench_ext_quantization.cc.o"
  "CMakeFiles/bench_ext_quantization.dir/bench_ext_quantization.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
