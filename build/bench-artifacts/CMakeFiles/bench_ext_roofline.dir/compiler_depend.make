# Empty compiler generated dependencies file for bench_ext_roofline.
# This may be replaced when dependencies are built.
