file(REMOVE_RECURSE
  "../bench/bench_fig14_temperature"
  "../bench/bench_fig14_temperature.pdb"
  "CMakeFiles/bench_fig14_temperature.dir/bench_fig14_temperature.cc.o"
  "CMakeFiles/bench_fig14_temperature.dir/bench_fig14_temperature.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
