file(REMOVE_RECURSE
  "../bench/bench_table6_cooling"
  "../bench/bench_table6_cooling.pdb"
  "CMakeFiles/bench_table6_cooling.dir/bench_table6_cooling.cc.o"
  "CMakeFiles/bench_table6_cooling.dir/bench_table6_cooling.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
