# Empty compiler generated dependencies file for bench_fig03_rpi_frameworks.
# This may be replaced when dependencies are built.
