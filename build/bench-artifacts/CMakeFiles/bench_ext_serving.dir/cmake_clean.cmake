file(REMOVE_RECURSE
  "../bench/bench_ext_serving"
  "../bench/bench_ext_serving.pdb"
  "CMakeFiles/bench_ext_serving.dir/bench_ext_serving.cc.o"
  "CMakeFiles/bench_ext_serving.dir/bench_ext_serving.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
