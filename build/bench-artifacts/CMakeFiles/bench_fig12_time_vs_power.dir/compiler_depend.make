# Empty compiler generated dependencies file for bench_fig12_time_vs_power.
# This may be replaced when dependencies are built.
