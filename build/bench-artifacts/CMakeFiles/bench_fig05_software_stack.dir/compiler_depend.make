# Empty compiler generated dependencies file for bench_fig05_software_stack.
# This may be replaced when dependencies are built.
