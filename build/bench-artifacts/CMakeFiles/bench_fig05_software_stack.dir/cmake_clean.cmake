file(REMOVE_RECURSE
  "../bench/bench_fig05_software_stack"
  "../bench/bench_fig05_software_stack.pdb"
  "CMakeFiles/bench_fig05_software_stack.dir/bench_fig05_software_stack.cc.o"
  "CMakeFiles/bench_fig05_software_stack.dir/bench_fig05_software_stack.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_software_stack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
