# Empty compiler generated dependencies file for bench_fig10_speedup_tx2.
# This may be replaced when dependencies are built.
