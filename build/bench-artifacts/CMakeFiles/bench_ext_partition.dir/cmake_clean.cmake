file(REMOVE_RECURSE
  "../bench/bench_ext_partition"
  "../bench/bench_ext_partition.pdb"
  "CMakeFiles/bench_ext_partition.dir/bench_ext_partition.cc.o"
  "CMakeFiles/bench_ext_partition.dir/bench_ext_partition.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
