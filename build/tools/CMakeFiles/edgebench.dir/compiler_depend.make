# Empty compiler generated dependencies file for edgebench.
# This may be replaced when dependencies are built.
