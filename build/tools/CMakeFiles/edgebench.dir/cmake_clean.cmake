file(REMOVE_RECURSE
  "CMakeFiles/edgebench.dir/edgebench_cli.cc.o"
  "CMakeFiles/edgebench.dir/edgebench_cli.cc.o.d"
  "edgebench"
  "edgebench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
