
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/export.cc" "src/graph/CMakeFiles/edgebench_graph.dir/export.cc.o" "gcc" "src/graph/CMakeFiles/edgebench_graph.dir/export.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/edgebench_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/edgebench_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/interpreter.cc" "src/graph/CMakeFiles/edgebench_graph.dir/interpreter.cc.o" "gcc" "src/graph/CMakeFiles/edgebench_graph.dir/interpreter.cc.o.d"
  "/root/repo/src/graph/op.cc" "src/graph/CMakeFiles/edgebench_graph.dir/op.cc.o" "gcc" "src/graph/CMakeFiles/edgebench_graph.dir/op.cc.o.d"
  "/root/repo/src/graph/passes.cc" "src/graph/CMakeFiles/edgebench_graph.dir/passes.cc.o" "gcc" "src/graph/CMakeFiles/edgebench_graph.dir/passes.cc.o.d"
  "/root/repo/src/graph/serialize.cc" "src/graph/CMakeFiles/edgebench_graph.dir/serialize.cc.o" "gcc" "src/graph/CMakeFiles/edgebench_graph.dir/serialize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/edgebench_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
