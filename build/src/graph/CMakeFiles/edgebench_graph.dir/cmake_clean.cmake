file(REMOVE_RECURSE
  "CMakeFiles/edgebench_graph.dir/export.cc.o"
  "CMakeFiles/edgebench_graph.dir/export.cc.o.d"
  "CMakeFiles/edgebench_graph.dir/graph.cc.o"
  "CMakeFiles/edgebench_graph.dir/graph.cc.o.d"
  "CMakeFiles/edgebench_graph.dir/interpreter.cc.o"
  "CMakeFiles/edgebench_graph.dir/interpreter.cc.o.d"
  "CMakeFiles/edgebench_graph.dir/op.cc.o"
  "CMakeFiles/edgebench_graph.dir/op.cc.o.d"
  "CMakeFiles/edgebench_graph.dir/passes.cc.o"
  "CMakeFiles/edgebench_graph.dir/passes.cc.o.d"
  "CMakeFiles/edgebench_graph.dir/serialize.cc.o"
  "CMakeFiles/edgebench_graph.dir/serialize.cc.o.d"
  "libedgebench_graph.a"
  "libedgebench_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
