file(REMOVE_RECURSE
  "libedgebench_graph.a"
)
