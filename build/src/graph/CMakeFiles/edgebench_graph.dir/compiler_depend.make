# Empty compiler generated dependencies file for edgebench_graph.
# This may be replaced when dependencies are built.
