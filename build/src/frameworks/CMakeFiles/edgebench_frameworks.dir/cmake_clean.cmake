file(REMOVE_RECURSE
  "CMakeFiles/edgebench_frameworks.dir/calibration.cc.o"
  "CMakeFiles/edgebench_frameworks.dir/calibration.cc.o.d"
  "CMakeFiles/edgebench_frameworks.dir/deploy.cc.o"
  "CMakeFiles/edgebench_frameworks.dir/deploy.cc.o.d"
  "CMakeFiles/edgebench_frameworks.dir/framework.cc.o"
  "CMakeFiles/edgebench_frameworks.dir/framework.cc.o.d"
  "CMakeFiles/edgebench_frameworks.dir/runtime.cc.o"
  "CMakeFiles/edgebench_frameworks.dir/runtime.cc.o.d"
  "libedgebench_frameworks.a"
  "libedgebench_frameworks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_frameworks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
