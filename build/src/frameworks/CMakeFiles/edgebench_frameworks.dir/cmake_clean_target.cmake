file(REMOVE_RECURSE
  "libedgebench_frameworks.a"
)
