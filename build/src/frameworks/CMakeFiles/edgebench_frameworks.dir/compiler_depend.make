# Empty compiler generated dependencies file for edgebench_frameworks.
# This may be replaced when dependencies are built.
