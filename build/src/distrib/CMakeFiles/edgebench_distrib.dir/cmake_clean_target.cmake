file(REMOVE_RECURSE
  "libedgebench_distrib.a"
)
