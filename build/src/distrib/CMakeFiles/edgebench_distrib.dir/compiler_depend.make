# Empty compiler generated dependencies file for edgebench_distrib.
# This may be replaced when dependencies are built.
