file(REMOVE_RECURSE
  "CMakeFiles/edgebench_distrib.dir/partition.cc.o"
  "CMakeFiles/edgebench_distrib.dir/partition.cc.o.d"
  "libedgebench_distrib.a"
  "libedgebench_distrib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_distrib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
