# Empty compiler generated dependencies file for edgebench_sysmodel.
# This may be replaced when dependencies are built.
