file(REMOVE_RECURSE
  "CMakeFiles/edgebench_sysmodel.dir/virtualization.cc.o"
  "CMakeFiles/edgebench_sysmodel.dir/virtualization.cc.o.d"
  "libedgebench_sysmodel.a"
  "libedgebench_sysmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_sysmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
