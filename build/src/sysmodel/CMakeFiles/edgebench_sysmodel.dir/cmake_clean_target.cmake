file(REMOVE_RECURSE
  "libedgebench_sysmodel.a"
)
