
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/common.cc" "src/core/CMakeFiles/edgebench_core.dir/common.cc.o" "gcc" "src/core/CMakeFiles/edgebench_core.dir/common.cc.o.d"
  "/root/repo/src/core/geometry.cc" "src/core/CMakeFiles/edgebench_core.dir/geometry.cc.o" "gcc" "src/core/CMakeFiles/edgebench_core.dir/geometry.cc.o.d"
  "/root/repo/src/core/kernels.cc" "src/core/CMakeFiles/edgebench_core.dir/kernels.cc.o" "gcc" "src/core/CMakeFiles/edgebench_core.dir/kernels.cc.o.d"
  "/root/repo/src/core/kernels_int8.cc" "src/core/CMakeFiles/edgebench_core.dir/kernels_int8.cc.o" "gcc" "src/core/CMakeFiles/edgebench_core.dir/kernels_int8.cc.o.d"
  "/root/repo/src/core/kernels_rnn.cc" "src/core/CMakeFiles/edgebench_core.dir/kernels_rnn.cc.o" "gcc" "src/core/CMakeFiles/edgebench_core.dir/kernels_rnn.cc.o.d"
  "/root/repo/src/core/parallel.cc" "src/core/CMakeFiles/edgebench_core.dir/parallel.cc.o" "gcc" "src/core/CMakeFiles/edgebench_core.dir/parallel.cc.o.d"
  "/root/repo/src/core/quant.cc" "src/core/CMakeFiles/edgebench_core.dir/quant.cc.o" "gcc" "src/core/CMakeFiles/edgebench_core.dir/quant.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/core/CMakeFiles/edgebench_core.dir/rng.cc.o" "gcc" "src/core/CMakeFiles/edgebench_core.dir/rng.cc.o.d"
  "/root/repo/src/core/tensor.cc" "src/core/CMakeFiles/edgebench_core.dir/tensor.cc.o" "gcc" "src/core/CMakeFiles/edgebench_core.dir/tensor.cc.o.d"
  "/root/repo/src/core/types.cc" "src/core/CMakeFiles/edgebench_core.dir/types.cc.o" "gcc" "src/core/CMakeFiles/edgebench_core.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
