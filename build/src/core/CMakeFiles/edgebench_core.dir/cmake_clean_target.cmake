file(REMOVE_RECURSE
  "libedgebench_core.a"
)
