file(REMOVE_RECURSE
  "CMakeFiles/edgebench_core.dir/common.cc.o"
  "CMakeFiles/edgebench_core.dir/common.cc.o.d"
  "CMakeFiles/edgebench_core.dir/geometry.cc.o"
  "CMakeFiles/edgebench_core.dir/geometry.cc.o.d"
  "CMakeFiles/edgebench_core.dir/kernels.cc.o"
  "CMakeFiles/edgebench_core.dir/kernels.cc.o.d"
  "CMakeFiles/edgebench_core.dir/kernels_int8.cc.o"
  "CMakeFiles/edgebench_core.dir/kernels_int8.cc.o.d"
  "CMakeFiles/edgebench_core.dir/kernels_rnn.cc.o"
  "CMakeFiles/edgebench_core.dir/kernels_rnn.cc.o.d"
  "CMakeFiles/edgebench_core.dir/parallel.cc.o"
  "CMakeFiles/edgebench_core.dir/parallel.cc.o.d"
  "CMakeFiles/edgebench_core.dir/quant.cc.o"
  "CMakeFiles/edgebench_core.dir/quant.cc.o.d"
  "CMakeFiles/edgebench_core.dir/rng.cc.o"
  "CMakeFiles/edgebench_core.dir/rng.cc.o.d"
  "CMakeFiles/edgebench_core.dir/tensor.cc.o"
  "CMakeFiles/edgebench_core.dir/tensor.cc.o.d"
  "CMakeFiles/edgebench_core.dir/types.cc.o"
  "CMakeFiles/edgebench_core.dir/types.cc.o.d"
  "libedgebench_core.a"
  "libedgebench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
