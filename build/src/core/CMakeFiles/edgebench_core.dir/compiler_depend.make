# Empty compiler generated dependencies file for edgebench_core.
# This may be replaced when dependencies are built.
