file(REMOVE_RECURSE
  "libedgebench_serving.a"
)
