file(REMOVE_RECURSE
  "CMakeFiles/edgebench_serving.dir/simulator.cc.o"
  "CMakeFiles/edgebench_serving.dir/simulator.cc.o.d"
  "libedgebench_serving.a"
  "libedgebench_serving.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_serving.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
