# Empty dependencies file for edgebench_serving.
# This may be replaced when dependencies are built.
