# Empty compiler generated dependencies file for edgebench_thermal.
# This may be replaced when dependencies are built.
