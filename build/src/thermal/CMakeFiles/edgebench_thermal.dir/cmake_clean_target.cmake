file(REMOVE_RECURSE
  "libedgebench_thermal.a"
)
