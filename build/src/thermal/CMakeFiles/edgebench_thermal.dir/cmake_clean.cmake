file(REMOVE_RECURSE
  "CMakeFiles/edgebench_thermal.dir/thermal.cc.o"
  "CMakeFiles/edgebench_thermal.dir/thermal.cc.o.d"
  "libedgebench_thermal.a"
  "libedgebench_thermal.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_thermal.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
