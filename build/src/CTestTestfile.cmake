# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("core")
subdirs("graph")
subdirs("models")
subdirs("hw")
subdirs("frameworks")
subdirs("power")
subdirs("thermal")
subdirs("sysmodel")
subdirs("distrib")
subdirs("serving")
subdirs("harness")
