# Empty compiler generated dependencies file for edgebench_models.
# This may be replaced when dependencies are built.
