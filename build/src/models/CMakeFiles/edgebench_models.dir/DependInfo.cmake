
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/classification.cc" "src/models/CMakeFiles/edgebench_models.dir/classification.cc.o" "gcc" "src/models/CMakeFiles/edgebench_models.dir/classification.cc.o.d"
  "/root/repo/src/models/detection.cc" "src/models/CMakeFiles/edgebench_models.dir/detection.cc.o" "gcc" "src/models/CMakeFiles/edgebench_models.dir/detection.cc.o.d"
  "/root/repo/src/models/inception.cc" "src/models/CMakeFiles/edgebench_models.dir/inception.cc.o" "gcc" "src/models/CMakeFiles/edgebench_models.dir/inception.cc.o.d"
  "/root/repo/src/models/mobile_ext.cc" "src/models/CMakeFiles/edgebench_models.dir/mobile_ext.cc.o" "gcc" "src/models/CMakeFiles/edgebench_models.dir/mobile_ext.cc.o.d"
  "/root/repo/src/models/mobilenet.cc" "src/models/CMakeFiles/edgebench_models.dir/mobilenet.cc.o" "gcc" "src/models/CMakeFiles/edgebench_models.dir/mobilenet.cc.o.d"
  "/root/repo/src/models/recurrent.cc" "src/models/CMakeFiles/edgebench_models.dir/recurrent.cc.o" "gcc" "src/models/CMakeFiles/edgebench_models.dir/recurrent.cc.o.d"
  "/root/repo/src/models/video.cc" "src/models/CMakeFiles/edgebench_models.dir/video.cc.o" "gcc" "src/models/CMakeFiles/edgebench_models.dir/video.cc.o.d"
  "/root/repo/src/models/zoo.cc" "src/models/CMakeFiles/edgebench_models.dir/zoo.cc.o" "gcc" "src/models/CMakeFiles/edgebench_models.dir/zoo.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/edgebench_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/edgebench_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
