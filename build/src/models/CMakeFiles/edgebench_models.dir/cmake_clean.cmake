file(REMOVE_RECURSE
  "CMakeFiles/edgebench_models.dir/classification.cc.o"
  "CMakeFiles/edgebench_models.dir/classification.cc.o.d"
  "CMakeFiles/edgebench_models.dir/detection.cc.o"
  "CMakeFiles/edgebench_models.dir/detection.cc.o.d"
  "CMakeFiles/edgebench_models.dir/inception.cc.o"
  "CMakeFiles/edgebench_models.dir/inception.cc.o.d"
  "CMakeFiles/edgebench_models.dir/mobile_ext.cc.o"
  "CMakeFiles/edgebench_models.dir/mobile_ext.cc.o.d"
  "CMakeFiles/edgebench_models.dir/mobilenet.cc.o"
  "CMakeFiles/edgebench_models.dir/mobilenet.cc.o.d"
  "CMakeFiles/edgebench_models.dir/recurrent.cc.o"
  "CMakeFiles/edgebench_models.dir/recurrent.cc.o.d"
  "CMakeFiles/edgebench_models.dir/video.cc.o"
  "CMakeFiles/edgebench_models.dir/video.cc.o.d"
  "CMakeFiles/edgebench_models.dir/zoo.cc.o"
  "CMakeFiles/edgebench_models.dir/zoo.cc.o.d"
  "libedgebench_models.a"
  "libedgebench_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
