file(REMOVE_RECURSE
  "libedgebench_models.a"
)
