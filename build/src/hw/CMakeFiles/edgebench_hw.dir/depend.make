# Empty dependencies file for edgebench_hw.
# This may be replaced when dependencies are built.
