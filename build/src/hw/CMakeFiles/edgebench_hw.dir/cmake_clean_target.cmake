file(REMOVE_RECURSE
  "libedgebench_hw.a"
)
