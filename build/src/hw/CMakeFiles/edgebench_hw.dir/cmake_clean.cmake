file(REMOVE_RECURSE
  "CMakeFiles/edgebench_hw.dir/device.cc.o"
  "CMakeFiles/edgebench_hw.dir/device.cc.o.d"
  "CMakeFiles/edgebench_hw.dir/roofline.cc.o"
  "CMakeFiles/edgebench_hw.dir/roofline.cc.o.d"
  "libedgebench_hw.a"
  "libedgebench_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
