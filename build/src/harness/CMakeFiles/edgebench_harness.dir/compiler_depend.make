# Empty compiler generated dependencies file for edgebench_harness.
# This may be replaced when dependencies are built.
