file(REMOVE_RECURSE
  "CMakeFiles/edgebench_harness.dir/experiment.cc.o"
  "CMakeFiles/edgebench_harness.dir/experiment.cc.o.d"
  "CMakeFiles/edgebench_harness.dir/report.cc.o"
  "CMakeFiles/edgebench_harness.dir/report.cc.o.d"
  "CMakeFiles/edgebench_harness.dir/stats.cc.o"
  "CMakeFiles/edgebench_harness.dir/stats.cc.o.d"
  "libedgebench_harness.a"
  "libedgebench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
