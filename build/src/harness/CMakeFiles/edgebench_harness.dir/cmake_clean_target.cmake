file(REMOVE_RECURSE
  "libedgebench_harness.a"
)
