# Empty dependencies file for edgebench_power.
# This may be replaced when dependencies are built.
