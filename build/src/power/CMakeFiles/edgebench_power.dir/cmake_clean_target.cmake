file(REMOVE_RECURSE
  "libedgebench_power.a"
)
