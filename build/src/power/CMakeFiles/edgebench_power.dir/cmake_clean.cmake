file(REMOVE_RECURSE
  "CMakeFiles/edgebench_power.dir/energy.cc.o"
  "CMakeFiles/edgebench_power.dir/energy.cc.o.d"
  "CMakeFiles/edgebench_power.dir/meter.cc.o"
  "CMakeFiles/edgebench_power.dir/meter.cc.o.d"
  "libedgebench_power.a"
  "libedgebench_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgebench_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
