file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_int8.dir/core/test_kernels_int8.cc.o"
  "CMakeFiles/test_kernels_int8.dir/core/test_kernels_int8.cc.o.d"
  "test_kernels_int8"
  "test_kernels_int8.pdb"
  "test_kernels_int8[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_int8.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
