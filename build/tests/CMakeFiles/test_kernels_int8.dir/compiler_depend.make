# Empty compiler generated dependencies file for test_kernels_int8.
# This may be replaced when dependencies are built.
