file(REMOVE_RECURSE
  "CMakeFiles/test_calibration_anchors.dir/frameworks/test_calibration_anchors.cc.o"
  "CMakeFiles/test_calibration_anchors.dir/frameworks/test_calibration_anchors.cc.o.d"
  "test_calibration_anchors"
  "test_calibration_anchors.pdb"
  "test_calibration_anchors[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_calibration_anchors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
