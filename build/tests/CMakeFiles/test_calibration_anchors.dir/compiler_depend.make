# Empty compiler generated dependencies file for test_calibration_anchors.
# This may be replaced when dependencies are built.
