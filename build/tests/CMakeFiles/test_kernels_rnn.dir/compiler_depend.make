# Empty compiler generated dependencies file for test_kernels_rnn.
# This may be replaced when dependencies are built.
