file(REMOVE_RECURSE
  "CMakeFiles/test_kernels_rnn.dir/core/test_kernels_rnn.cc.o"
  "CMakeFiles/test_kernels_rnn.dir/core/test_kernels_rnn.cc.o.d"
  "test_kernels_rnn"
  "test_kernels_rnn.pdb"
  "test_kernels_rnn[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_kernels_rnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
