file(REMOVE_RECURSE
  "CMakeFiles/test_deploy.dir/frameworks/test_deploy.cc.o"
  "CMakeFiles/test_deploy.dir/frameworks/test_deploy.cc.o.d"
  "test_deploy"
  "test_deploy.pdb"
  "test_deploy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_deploy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
