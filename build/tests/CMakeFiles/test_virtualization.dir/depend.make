# Empty dependencies file for test_virtualization.
# This may be replaced when dependencies are built.
