file(REMOVE_RECURSE
  "CMakeFiles/test_virtualization.dir/sysmodel/test_virtualization.cc.o"
  "CMakeFiles/test_virtualization.dir/sysmodel/test_virtualization.cc.o.d"
  "test_virtualization"
  "test_virtualization.pdb"
  "test_virtualization[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_virtualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
