# Empty compiler generated dependencies file for test_op_coverage.
# This may be replaced when dependencies are built.
