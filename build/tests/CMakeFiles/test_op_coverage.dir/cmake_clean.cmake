file(REMOVE_RECURSE
  "CMakeFiles/test_op_coverage.dir/graph/test_op_coverage.cc.o"
  "CMakeFiles/test_op_coverage.dir/graph/test_op_coverage.cc.o.d"
  "test_op_coverage"
  "test_op_coverage.pdb"
  "test_op_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_op_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
