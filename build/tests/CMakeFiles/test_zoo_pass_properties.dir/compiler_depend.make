# Empty compiler generated dependencies file for test_zoo_pass_properties.
# This may be replaced when dependencies are built.
