file(REMOVE_RECURSE
  "CMakeFiles/test_zoo_pass_properties.dir/integration/test_zoo_pass_properties.cc.o"
  "CMakeFiles/test_zoo_pass_properties.dir/integration/test_zoo_pass_properties.cc.o.d"
  "test_zoo_pass_properties"
  "test_zoo_pass_properties.pdb"
  "test_zoo_pass_properties[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_zoo_pass_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
