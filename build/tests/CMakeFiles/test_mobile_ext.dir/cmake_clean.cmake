file(REMOVE_RECURSE
  "CMakeFiles/test_mobile_ext.dir/models/test_mobile_ext.cc.o"
  "CMakeFiles/test_mobile_ext.dir/models/test_mobile_ext.cc.o.d"
  "test_mobile_ext"
  "test_mobile_ext.pdb"
  "test_mobile_ext[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mobile_ext.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
