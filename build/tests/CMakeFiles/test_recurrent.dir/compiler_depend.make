# Empty compiler generated dependencies file for test_recurrent.
# This may be replaced when dependencies are built.
