
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/thermal/test_thermal.cc" "tests/CMakeFiles/test_thermal.dir/thermal/test_thermal.cc.o" "gcc" "tests/CMakeFiles/test_thermal.dir/thermal/test_thermal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/thermal/CMakeFiles/edgebench_thermal.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/edgebench_power.dir/DependInfo.cmake"
  "/root/repo/build/src/frameworks/CMakeFiles/edgebench_frameworks.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/edgebench_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/edgebench_models.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/edgebench_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/edgebench_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
