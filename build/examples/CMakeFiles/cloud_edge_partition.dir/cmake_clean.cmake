file(REMOVE_RECURSE
  "CMakeFiles/cloud_edge_partition.dir/cloud_edge_partition.cpp.o"
  "CMakeFiles/cloud_edge_partition.dir/cloud_edge_partition.cpp.o.d"
  "cloud_edge_partition"
  "cloud_edge_partition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cloud_edge_partition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
