# Empty dependencies file for cloud_edge_partition.
# This may be replaced when dependencies are built.
