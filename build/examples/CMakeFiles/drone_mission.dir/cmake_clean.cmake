file(REMOVE_RECURSE
  "CMakeFiles/drone_mission.dir/drone_mission.cpp.o"
  "CMakeFiles/drone_mission.dir/drone_mission.cpp.o.d"
  "drone_mission"
  "drone_mission.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/drone_mission.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
