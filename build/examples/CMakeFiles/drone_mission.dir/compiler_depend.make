# Empty compiler generated dependencies file for drone_mission.
# This may be replaced when dependencies are built.
