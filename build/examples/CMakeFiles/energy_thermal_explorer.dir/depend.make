# Empty dependencies file for energy_thermal_explorer.
# This may be replaced when dependencies are built.
