file(REMOVE_RECURSE
  "CMakeFiles/energy_thermal_explorer.dir/energy_thermal_explorer.cpp.o"
  "CMakeFiles/energy_thermal_explorer.dir/energy_thermal_explorer.cpp.o.d"
  "energy_thermal_explorer"
  "energy_thermal_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/energy_thermal_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
