file(REMOVE_RECURSE
  "CMakeFiles/framework_shootout.dir/framework_shootout.cpp.o"
  "CMakeFiles/framework_shootout.dir/framework_shootout.cpp.o.d"
  "framework_shootout"
  "framework_shootout.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/framework_shootout.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
