# Empty dependencies file for framework_shootout.
# This may be replaced when dependencies are built.
