# Empty dependencies file for custom_device.
# This may be replaced when dependencies are built.
