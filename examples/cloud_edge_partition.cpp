/**
 * @file
 * Cloud-edge partitioning walkthrough: split one model between an
 * edge device and a cloud GPU over a chosen link, and print every
 * candidate cut so the latency/energy tradeoff is visible.
 *
 * Usage: cloud_edge_partition [model] [edge-device] [link]
 *   link in {lan, wifi, lte};  defaults: ResNet-18 RPi3 wifi.
 */

#include <iostream>

#include "edgebench/core/common.hh"
#include "edgebench/distrib/partition.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/harness/report.hh"

using namespace edgebench;

int
main(int argc, char** argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "ResNet-18";
    const std::string device_name = argc > 2 ? argv[2] : "RPi3";
    const std::string link_name = argc > 3 ? argv[3] : "wifi";

    distrib::LinkModel link = distrib::wifiLink();
    if (link_name == "lan")
        link = distrib::lanLink();
    else if (link_name == "lte")
        link = distrib::lteLink();
    else if (link_name != "wifi") {
        std::cerr << "unknown link '" << link_name
                  << "' (lan|wifi|lte)\n";
        return 1;
    }

    try {
        const auto model =
            models::buildModel(models::modelByName(model_name));
        const auto edge_dev = hw::deviceByName(device_name);
        auto edge = frameworks::bestDeployment(model, edge_dev);
        auto cloud = frameworks::tryDeploy(
            frameworks::FrameworkId::kPyTorch, model,
            hw::DeviceId::kTitanXp);
        EB_CHECK(edge && cloud, "model not deployable on " <<
                 device_name << " or the cloud GPU");

        const auto r =
            distrib::partition(edge->model, cloud->model, link);

        std::cout << "== " << model.name() << ": " << device_name
                  << " <-> Titan Xp over " << link_name << " ==\n"
                  << "edge only:  " << r.edgeOnlyMs << " ms\n"
                  << "cloud only: " << r.cloudOnlyMs << " ms\n"
                  << "best split: after '" << r.best.boundaryName
                  << "' -> " << r.best.totalMs << " ms\n"
                  << "min-edge-energy split: after '"
                  << r.bestEnergy.boundaryName << "' ("
                  << r.bestEnergy.edgeEnergyMJ << " mJ on-device)\n\n";

        harness::Table t({"Cut after", "Edge (ms)", "Upload (ms)",
                          "Cloud (ms)", "Total (ms)",
                          "Edge energy (mJ)"});
        for (const auto& c : r.candidates) {
            t.addRow({c.cutAfter < 0 ? "(cloud only)"
                                     : c.boundaryName,
                      harness::Table::num(c.edgeMs, 1),
                      harness::Table::num(c.uploadMs, 1),
                      harness::Table::num(c.cloudMs, 1),
                      harness::Table::num(c.totalMs, 1),
                      harness::Table::num(c.edgeEnergyMJ, 1)});
        }
        t.print(std::cout);
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    return 0;
}
