/**
 * @file
 * Framework shootout: compare every framework that can drive a chosen
 * device on a chosen model — latency, energy, one-time setup cost and
 * software-stack breakdown. This is the interactive counterpart of
 * the paper's Figs. 3, 4, 7 and 8.
 *
 * Usage: framework_shootout [model] [device]
 *   e.g. framework_shootout "ResNet-50" "Jetson TX2"
 * Defaults: ResNet-50 on Jetson TX2.
 */

#include <iostream>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/frameworks/runtime.hh"
#include "edgebench/harness/report.hh"
#include "edgebench/power/energy.hh"

using namespace edgebench;

int
main(int argc, char** argv)
{
    const std::string model_name = argc > 1 ? argv[1] : "ResNet-50";
    const std::string device_name = argc > 2 ? argv[2] : "Jetson TX2";

    models::ModelId model;
    hw::DeviceId device;
    try {
        model = models::modelByName(model_name);
        device = hw::deviceByName(device_name);
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n"
                  << "models: ";
        for (auto id : models::allModels())
            std::cerr << "'" << models::modelInfo(id).name << "' ";
        std::cerr << "\ndevices: ";
        for (auto id : hw::allDevices())
            std::cerr << "'" << hw::deviceName(id) << "' ";
        std::cerr << "\n";
        return 1;
    }

    const auto g = models::buildModel(model);
    std::cout << "== " << g.name() << " on " << device_name
              << " ==\n\n";

    harness::Table t({"Framework", "Status", "Latency (ms)",
                      "Energy (mJ)", "Setup (ms)", "Notes"});
    for (auto fw : frameworks::frameworksFor(device)) {
        std::string status = "ok", latency = "-", energy = "-",
                    setup = "-", notes;
        try {
            auto m = frameworks::framework(fw).compile(g, device);
            frameworks::InferenceSession session(m);
            const auto timing = session.run(200);
            latency = harness::Table::num(timing.perInferenceMs, 2);
            setup = harness::Table::num(timing.initializationMs, 0);
            energy = harness::Table::num(
                power::energyPerInference(session.model())
                    .energyPerInferenceMJ,
                1);
            if (session.model().usedDynamicGraphFallback)
                notes = "dynamic-graph swap";
        } catch (const MemoryCapacityError&) {
            status = "MemErr";
        } catch (const CompatibilityError& e) {
            status = "incompatible";
            notes = e.what();
        }
        t.addRow({frameworks::frameworkName(fw), status, latency,
                  energy, setup, notes.substr(0, 48)});
    }
    t.print(std::cout);

    // Software-stack breakdown of the winner.
    auto best = frameworks::bestDeployment(g, device);
    if (best) {
        std::cout << "\nsoftware-stack breakdown for "
                  << frameworks::frameworkName(best->framework)
                  << " (1000 inferences):\n";
        frameworks::InferenceSession session(best->model);
        const auto rep = session.profileRun(1000);
        harness::Table bt({"Label", "Share (%)"});
        for (const auto& s : rep.samples) {
            if (s.ms <= 0.0)
                continue;
            bt.addRow({s.label,
                       harness::Table::num(
                           100.0 * s.ms / rep.totalMs(), 1)});
        }
        bt.print(std::cout);
    }
    return 0;
}
