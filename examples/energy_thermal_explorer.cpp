/**
 * @file
 * Energy/thermal exploration: for one model, sweep the edge devices
 * and report latency, energy per inference, and what happens
 * thermally when the device sustains the load — including fan
 * activation and thermal shutdown. Combines the machinery behind
 * Figs. 11, 12 and 14.
 *
 * Usage: energy_thermal_explorer [model]     (default Inception-v4)
 */

#include <algorithm>
#include <iostream>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/harness/report.hh"
#include "edgebench/power/energy.hh"
#include "edgebench/thermal/thermal.hh"

using namespace edgebench;

int
main(int argc, char** argv)
{
    const std::string model_name =
        argc > 1 ? argv[1] : "Inception-v4";
    models::ModelId model;
    try {
        model = models::modelByName(model_name);
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
    const auto g = models::buildModel(model);
    std::cout << "== energy & thermal profile: " << g.name()
              << " ==\n\n";

    harness::Table t({"Device", "Latency (ms)", "Power (W)",
                      "Energy (mJ)", "Steady temp (C)", "Fan",
                      "Shutdown"});
    for (auto d : hw::edgeDevices()) {
        auto dep = frameworks::bestDeployment(g, d);
        if (!dep) {
            t.addRow({hw::deviceName(d), "n/a", "-", "-", "-", "-",
                      "-"});
            continue;
        }
        const auto e = power::energyPerInference(dep->model);
        std::string temp = "-", fan = "-", shutdown = "-";
        try {
            thermal::ThermalSimulator sim(d);
            auto trace = sim.runToSteadyState(e.activePowerW);
            double peak = 0.0;
            for (double c : trace.surfaceC)
                peak = std::max(peak, c);
            temp = harness::Table::num(
                sim.shutDown() ? peak : trace.finalSurfaceC(), 1);
            fan = trace.sawEvent(thermal::ThermalEvent::kFanOn)
                ? "on" : "off";
            shutdown =
                trace.sawEvent(thermal::ThermalEvent::kShutdown)
                ? "YES" : "no";
        } catch (const InvalidArgumentError&) {
            // No thermal instrumentation for this platform.
        }
        t.addRow({hw::deviceName(d),
                  harness::Table::num(dep->model.latencyMs(), 1),
                  harness::Table::num(e.activePowerW, 2),
                  harness::Table::num(e.energyPerInferenceMJ, 1),
                  temp, fan, shutdown});
    }
    t.print(std::cout);

    std::cout << "\nThe energy/latency tradeoff (paper conclusion): "
                 "pick Movidius for power budgets,\nEdgeTPU or the "
                 "Jetsons for latency budgets; the RPi pays both "
                 "costs.\n";
    return 0;
}
