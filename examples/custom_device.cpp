/**
 * @file
 * Extending edgebench-sim to a new platform: define a hypothetical
 * next-generation edge board (an "RPi 4B-class" device, which the
 * paper's footnote predicts "is expected to perform better") and a
 * tuned software profile, then price the full model zoo on it against
 * the measured RPi 3B.
 *
 * This is the workflow a downstream user follows to evaluate hardware
 * that the paper never saw: no library changes needed, just a
 * ComputeUnit and an EngineProfile.
 */

#include <iostream>

#include "edgebench/core/common.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/harness/report.hh"
#include "edgebench/hw/roofline.hh"
#include "edgebench/models/zoo.hh"

using namespace edgebench;

int
main()
{
    // Raspberry Pi 4B-class hardware: 4x Cortex-A72 @ 1.5 GHz
    // (out-of-order, 2x NEON issue) and LPDDR4.
    hw::ComputeUnit rpi4;
    rpi4.kind = hw::UnitKind::kCpu;
    rpi4.name = "Cortex-A72 x4 @1.5GHz";
    rpi4.peakGflopsF32 = 24.0;
    rpi4.peakGflopsF16 = 24.0;
    rpi4.memBandwidthGBs = 6.0;
    rpi4.memCapacityBytes = 3.2 * 1024.0 * 1024.0 * 1024.0;

    // Same TFLite software stack as the RPi 3B, but the out-of-order
    // core sustains a higher fraction of peak.
    hw::EngineProfile tflite;
    tflite.computeEfficiency = 0.30;
    tflite.memoryEfficiency = 0.6;
    tflite.perOpOverheadMs = 0.6;
    tflite.perInferenceOverheadMs = 15.0;
    tflite.groupedConvFactor = 0.15;

    // The measured RPi 3B as the baseline.
    const auto& rpi3 = hw::deviceSpec(hw::DeviceId::kRpi3).cpu;
    hw::EngineProfile tflite3;
    tflite3.computeEfficiency = 0.22;
    tflite3.memoryEfficiency = 0.6;
    tflite3.perOpOverheadMs = 0.8;
    tflite3.perInferenceOverheadMs = 20.0;
    tflite3.groupedConvFactor = 0.1;

    std::cout << "== hypothetical RPi 4B-class board vs measured "
                 "RPi 3B (TFLite, INT8) ==\n\n";
    harness::Table t({"Model", "RPi3B (ms)", "RPi4B-class (ms)",
                      "Speedup"});
    for (auto id : models::allModels()) {
        const auto g = models::buildModel(id);
        // TFLite pipeline: fuse + quantize.
        const auto deployed = graph::quantizeInt8(
            graph::fuseConvBnAct(g).graph).graph;
        double t3 = 0.0, t4 = 0.0;
        try {
            t3 = hw::graphLatency(deployed, rpi3, tflite3).totalMs;
            t4 = hw::graphLatency(deployed, rpi4, tflite).totalMs;
        } catch (const MemoryCapacityError&) {
            t.addRow({g.name(), "MemErr", "-", "-"});
            continue;
        }
        t.addRow({g.name(), harness::Table::num(t3, 0),
                  harness::Table::num(t4, 0),
                  harness::Table::num(t3 / t4, 2)});
    }
    t.print(std::cout);
    std::cout << "\nThe paper's prediction holds in the model: "
                 "better memory technology and out-of-order "
                 "execution buy a consistent speedup.\n";
    return 0;
}
