/**
 * @file
 * Quickstart: the end-to-end edgebench-sim workflow in one page.
 *
 *  1. Build a zoo model (MobileNet-v2) and inspect its cost stats.
 *  2. Actually execute it with the functional interpreter (real
 *     conv/GEMM kernels) to classify a random image.
 *  3. Compile it for an edge accelerator (EdgeTPU via TFLite) and
 *     report the modeled single-batch latency and energy.
 */

#include <iostream>

#include "edgebench/frameworks/deploy.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/models/zoo.hh"
#include "edgebench/power/energy.hh"

using namespace edgebench;

int
main()
{
    // 1. Build the model (deferred weights: metadata only).
    graph::Graph model = models::buildMobileNetV2();
    const auto st = model.stats();
    std::cout << "model: " << model.name() << "\n"
              << "  layers: " << st.numNodes << "\n"
              << "  params: " << st.params / 1e6 << " M\n"
              << "  FLOP:   " << st.macs / 1e9 << " G (1 MAC = 1 FLOP)\n"
              << "  FLOP/param: " << st.flopPerParam << "\n\n";

    // 2. Run a real inference. Materialize deterministic weights and
    //    feed a random 224x224 image through the interpreter.
    core::Rng rng(2024);
    model.materializeParams(rng);
    graph::Interpreter interp(model);
    core::Rng input_rng(7);
    const auto image =
        core::Tensor::randomNormal({1, 3, 224, 224}, input_rng);
    const auto probs = interp.run({image})[0];
    std::int64_t best = 0;
    for (std::int64_t i = 1; i < probs.numel(); ++i)
        if (probs.at(i) > probs.at(best))
            best = i;
    std::cout << "functional inference: class " << best
              << " with probability " << probs.at(best) << "\n"
              << "peak activation memory: "
              << interp.lastStats().peakActivationBytes / 1e6
              << " MB\n\n";
    model.dropParams();

    // 3. Deploy on the EdgeTPU (TFLite, forced INT8) and on the
    //    Raspberry Pi (best framework), and compare.
    for (auto device : {hw::DeviceId::kEdgeTpu, hw::DeviceId::kRpi3}) {
        auto dep = frameworks::bestDeployment(model, device);
        if (!dep) {
            std::cout << hw::deviceName(device) << ": not deployable\n";
            continue;
        }
        const auto energy = power::energyPerInference(dep->model);
        std::cout << hw::deviceName(device) << " via "
                  << frameworks::frameworkName(dep->framework) << ":\n"
                  << "  latency: " << dep->model.latencyMs() << " ms\n"
                  << "  energy:  " << energy.energyPerInferenceMJ
                  << " mJ at " << energy.activePowerW << " W\n";
    }
    return 0;
}
