/**
 * @file
 * Application-specific device selection — the paper's concluding
 * point that the energy/latency tradeoff "could be utilized to design
 * efficient and application-specific devices".
 *
 * Scenario: a battery-powered drone must run object detection or
 * recognition continuously. Given a frame rate and a power budget,
 * search every (model, edge device) pair, simulate 10 minutes of
 * serving (including thermal behaviour), and rank the feasible
 * configurations by energy per frame.
 *
 * Usage: drone_mission [fps] [power-budget-W]    (defaults: 5 3.0)
 */

#include <algorithm>
#include <iostream>
#include <string>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/harness/report.hh"
#include "edgebench/power/energy.hh"
#include "edgebench/serving/simulator.hh"

using namespace edgebench;

int
main(int argc, char** argv)
{
    const double fps = argc > 1 ? std::stod(argv[1]) : 5.0;
    const double budget_w = argc > 2 ? std::stod(argv[2]) : 3.0;

    std::cout << "== drone mission: " << fps << " fps, power budget "
              << budget_w << " W ==\n\n";

    struct Candidate
    {
        std::string model;
        std::string device;
        std::string framework;
        double p99Ms;
        double powerW;
        double energyPerFrameJ;
        std::string verdict;
    };
    std::vector<Candidate> all;

    const models::ModelId vision_models[] = {
        models::ModelId::kMobileNetV2, models::ModelId::kResNet18,
        models::ModelId::kSsdMobileNetV1, models::ModelId::kTinyYolo,
    };
    for (auto m : vision_models) {
        for (auto d : hw::edgeDevices()) {
            auto dep = frameworks::bestDeployment(
                models::buildModel(m), d);
            if (!dep)
                continue;
            frameworks::InferenceSession session(dep->model);
            serving::ServingConfig cfg{.durationS = 600.0,
                                       .arrivalRateHz = fps,
                                       .seed = 31};
            const auto rep = serving::simulateServing(session, cfg);
            Candidate c;
            c.model = models::modelInfo(m).name;
            c.device = hw::deviceName(d);
            c.framework = frameworks::frameworkName(dep->framework);
            c.p99Ms = rep.p99Ms;
            c.powerW =
                power::energyPerInference(dep->model).activePowerW;
            c.energyPerFrameJ = rep.energyPerRequestJ;
            const double deadline_ms = 1e3 / fps;
            if (rep.thermalShutdown)
                c.verdict = "thermal shutdown";
            else if (rep.utilization > 0.95 ||
                     rep.p99Ms > deadline_ms)
                c.verdict = "misses deadline";
            else if (c.powerW > budget_w)
                c.verdict = "over power budget";
            else if (rep.thermalThrottled)
                c.verdict = "OK (throttles)";
            else
                c.verdict = "OK";
            all.push_back(std::move(c));
        }
    }

    std::sort(all.begin(), all.end(),
              [](const Candidate& a, const Candidate& b) {
                  const bool fa = a.verdict.rfind("OK", 0) == 0;
                  const bool fb = b.verdict.rfind("OK", 0) == 0;
                  if (fa != fb)
                      return fa;
                  return a.energyPerFrameJ < b.energyPerFrameJ;
              });

    harness::Table t({"Model", "Device", "Framework", "p99 (ms)",
                      "Power (W)", "J/frame", "Verdict"});
    for (const auto& c : all) {
        t.addRow({c.model, c.device, c.framework,
                  harness::Table::num(c.p99Ms, 1),
                  harness::Table::num(c.powerW, 2),
                  harness::Table::num(c.energyPerFrameJ, 3),
                  c.verdict});
    }
    t.print(std::cout);

    for (const auto& c : all) {
        if (c.verdict.rfind("OK", 0) == 0) {
            std::cout << "\nrecommended package: " << c.model
                      << " on " << c.device << " via " << c.framework
                      << " (" << harness::Table::num(
                             c.energyPerFrameJ, 3)
                      << " J/frame)\n";
            break;
        }
    }
    return 0;
}
