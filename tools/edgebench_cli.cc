/**
 * @file
 * edgebench — the command-line front end of edgebench-sim.
 *
 *   edgebench models                         list the model zoo
 *   edgebench devices                        list platforms
 *   edgebench frameworks <device>            frameworks for a device
 *   edgebench summary <model>                layer table
 *   edgebench dot <model>                    Graphviz rendering
 *   edgebench save <model> <file.ebg>        serialize a zoo model
 *   edgebench show <file.ebg>                summary of a saved graph
 *   edgebench predict <model> <device> [fw]  latency + energy
 *   edgebench compat                         Table V matrix
 *   edgebench partition <model> <device> <lan|wifi|lte>
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/distrib/partition.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/graph/export.hh"
#include "edgebench/graph/serialize.hh"
#include "edgebench/harness/report.hh"
#include "edgebench/power/energy.hh"

using namespace edgebench;

namespace
{

int
usage()
{
    std::cerr
        << "usage: edgebench <command> [args]\n"
        << "  models | devices | frameworks <device> | compat\n"
        << "  summary <model> | dot <model>\n"
        << "  save <model> <file.ebg> | show <file.ebg>\n"
        << "  predict <model> <device> [framework]\n"
        << "  partition <model> <edge-device> <lan|wifi|lte>\n";
    return 2;
}

int
cmdModels()
{
    harness::Table t({"Model", "Input", "GFLOP", "MParams",
                      "FLOP/Param"});
    for (auto id : models::allModels()) {
        const auto g = models::buildModel(id);
        const auto st = g.stats();
        t.addRow({g.name(), g.inputDescription(),
                  harness::Table::num(st.macs / 1e9, 2),
                  harness::Table::num(st.params / 1e6, 2),
                  harness::Table::num(st.flopPerParam, 1)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdDevices()
{
    harness::Table t({"Device", "Category", "Unit", "Idle W",
                      "Avg W"});
    for (auto id : hw::allDevices()) {
        const auto& d = hw::deviceSpec(id);
        t.addRow({d.name, hw::categoryName(d.category),
                  d.preferredUnit().name,
                  harness::Table::num(d.idlePowerW, 2),
                  harness::Table::num(d.averagePowerW, 2)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdFrameworks(const std::string& device)
{
    const auto id = hw::deviceByName(device);
    for (auto fw : frameworks::frameworksFor(id))
        std::cout << frameworks::frameworkName(fw) << "\n";
    return 0;
}

int
cmdSummary(const std::string& model)
{
    const auto g = models::buildModel(models::modelByName(model));
    graph::printSummary(g, std::cout);
    return 0;
}

int
cmdDot(const std::string& model)
{
    const auto g = models::buildModel(models::modelByName(model));
    graph::writeDot(g, std::cout);
    return 0;
}

int
cmdSave(const std::string& model, const std::string& path)
{
    const auto g = models::buildModel(models::modelByName(model));
    std::ofstream out(path);
    EB_CHECK(out.good(), "cannot open '" << path << "' for writing");
    graph::writeGraphText(g, out);
    std::cout << "wrote " << g.numNodes() << " nodes to " << path
              << "\n";
    return 0;
}

int
cmdShow(const std::string& path)
{
    std::ifstream in(path);
    EB_CHECK(in.good(), "cannot open '" << path << "'");
    const auto g = graph::readGraphText(in);
    graph::printSummary(g, std::cout);
    return 0;
}

int
cmdPredict(const std::string& model, const std::string& device,
           const std::string& fw_name)
{
    const auto g = models::buildModel(models::modelByName(model));
    const auto dev = hw::deviceByName(device);

    std::optional<frameworks::Deployment> dep;
    if (fw_name.empty()) {
        dep = frameworks::bestDeployment(g, dev);
    } else {
        dep = frameworks::tryDeploy(
            frameworks::frameworkByName(fw_name), g, dev);
    }
    if (!dep) {
        std::cout << model << " is not deployable on " << device
                  << (fw_name.empty() ? ""
                                      : " with " + fw_name)
                  << "\n";
        return 1;
    }
    const auto e = power::energyPerInference(dep->model);
    const auto cost = dep->model.latency();
    std::cout << model << " on " << device << " via "
              << frameworks::frameworkName(dep->framework) << ":\n"
              << "  latency:        "
              << harness::Table::num(cost.totalMs, 2) << " ms\n"
              << "  compute time:   "
              << harness::Table::num(cost.computeMs, 2) << " ms\n"
              << "  memory time:    "
              << harness::Table::num(cost.memoryMs, 2) << " ms\n"
              << "  dispatch/other: "
              << harness::Table::num(cost.overheadMs, 2) << " ms\n"
              << "  active power:   "
              << harness::Table::num(e.activePowerW, 2) << " W\n"
              << "  energy:         "
              << harness::Table::num(e.energyPerInferenceMJ, 1)
              << " mJ/inference\n";
    if (dep->model.usedDynamicGraphFallback)
        std::cout << "  note: dynamic-graph swap fallback engaged\n";
    return 0;
}

int
cmdCompat()
{
    std::vector<std::string> headers{"Model"};
    for (auto d : hw::edgeDevices())
        headers.push_back(hw::deviceName(d));
    harness::Table t(std::move(headers));
    for (auto m : models::allModels()) {
        std::vector<std::string> cells{models::modelInfo(m).name};
        for (auto d : hw::edgeDevices())
            cells.push_back(frameworks::markSymbol(
                frameworks::deploymentMark(m, d)));
        t.addRow(std::move(cells));
    }
    t.print(std::cout);
    return 0;
}

int
cmdPartition(const std::string& model, const std::string& device,
             const std::string& link_name)
{
    distrib::LinkModel link;
    if (link_name == "lan")
        link = distrib::lanLink();
    else if (link_name == "wifi")
        link = distrib::wifiLink();
    else if (link_name == "lte")
        link = distrib::lteLink();
    else
        return usage();

    const auto g = models::buildModel(models::modelByName(model));
    auto edge =
        frameworks::bestDeployment(g, hw::deviceByName(device));
    auto cloud = frameworks::tryDeploy(
        frameworks::FrameworkId::kPyTorch, g,
        hw::DeviceId::kTitanXp);
    EB_CHECK(edge && cloud, "model undeployable on an endpoint");
    const auto r = distrib::partition(edge->model, cloud->model, link);
    std::cout << "edge only:  "
              << harness::Table::num(r.edgeOnlyMs, 1) << " ms\n"
              << "cloud only: "
              << harness::Table::num(r.cloudOnlyMs, 1) << " ms\n"
              << "best:       "
              << harness::Table::num(r.best.totalMs, 1)
              << " ms (cut: "
              << (r.best.cutAfter < 0 ? "(cloud only)"
                                      : r.best.boundaryName)
              << ")\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    const std::vector<std::string> args(argv + 1, argv + argc);
    try {
        if (args.empty())
            return usage();
        const auto& cmd = args[0];
        if (cmd == "models")
            return cmdModels();
        if (cmd == "devices")
            return cmdDevices();
        if (cmd == "frameworks" && args.size() == 2)
            return cmdFrameworks(args[1]);
        if (cmd == "summary" && args.size() == 2)
            return cmdSummary(args[1]);
        if (cmd == "dot" && args.size() == 2)
            return cmdDot(args[1]);
        if (cmd == "save" && args.size() == 3)
            return cmdSave(args[1], args[2]);
        if (cmd == "show" && args.size() == 2)
            return cmdShow(args[1]);
        if (cmd == "predict" &&
            (args.size() == 3 || args.size() == 4))
            return cmdPredict(args[1], args[2],
                              args.size() == 4 ? args[3] : "");
        if (cmd == "compat")
            return cmdCompat();
        if (cmd == "partition" && args.size() == 4)
            return cmdPartition(args[1], args[2], args[3]);
        return usage();
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
