/**
 * @file
 * edgebench — the command-line front end of edgebench-sim.
 *
 *   edgebench models                         list the model zoo
 *   edgebench devices                        list platforms
 *   edgebench frameworks <device>            frameworks for a device
 *   edgebench summary <model>                layer table
 *   edgebench dot <model>                    Graphviz rendering
 *   edgebench save <model> <file.ebg>        serialize a zoo model
 *   edgebench show <file.ebg>                summary of a saved graph
 *   edgebench predict <model> <device> [fw]  latency + energy
 *   edgebench compat                         Table V matrix
 *   edgebench partition <model> <device> <lan|wifi|lte>
 *
 * Global options (consumed anywhere on the command line):
 *   --trace-out <file>    record a profiled run of `predict` as
 *                         Chrome trace-event JSON (chrome://tracing,
 *                         https://ui.perfetto.dev)
 *   --metrics-out <file>  distill the same run into a metrics CSV
 *   --inferences <n>      inferences in the profiled run (default 30)
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/distrib/partition.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/frameworks/runtime.hh"
#include "edgebench/graph/export.hh"
#include "edgebench/graph/serialize.hh"
#include "edgebench/harness/report.hh"
#include "edgebench/obs/export.hh"
#include "edgebench/power/energy.hh"
#include "edgebench/thermal/thermal.hh"

using namespace edgebench;

namespace
{

/** Profiling options lifted from the command line before dispatch. */
struct ObsOptions
{
    std::string traceOut;
    std::string metricsOut;
    std::int64_t inferences = 30;

    bool enabled() const
    {
        return !traceOut.empty() || !metricsOut.empty();
    }
};

int
usage()
{
    std::cerr
        << "usage: edgebench [options] <command> [args]\n"
        << "  models | devices | frameworks <device> | compat\n"
        << "  summary <model> | dot <model>\n"
        << "  save <model> <file.ebg> | show <file.ebg>\n"
        << "  predict <model> <device> [framework]\n"
        << "  partition <model> <edge-device> <lan|wifi|lte>\n"
        << "options (apply to predict):\n"
        << "  --trace-out <file>    Chrome trace JSON of a profiled "
           "run\n"
        << "  --metrics-out <file>  metrics CSV of the same run\n"
        << "  --inferences <n>      run length to profile "
           "(default 30)\n";
    return 2;
}

int
cmdModels()
{
    harness::Table t({"Model", "Input", "GFLOP", "MParams",
                      "FLOP/Param"});
    for (auto id : models::allModels()) {
        const auto g = models::buildModel(id);
        const auto st = g.stats();
        t.addRow({g.name(), g.inputDescription(),
                  harness::Table::num(st.macs / 1e9, 2),
                  harness::Table::num(st.params / 1e6, 2),
                  harness::Table::num(st.flopPerParam, 1)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdDevices()
{
    harness::Table t({"Device", "Category", "Unit", "Idle W",
                      "Avg W"});
    for (auto id : hw::allDevices()) {
        const auto& d = hw::deviceSpec(id);
        t.addRow({d.name, hw::categoryName(d.category),
                  d.preferredUnit().name,
                  harness::Table::num(d.idlePowerW, 2),
                  harness::Table::num(d.averagePowerW, 2)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdFrameworks(const std::string& device)
{
    const auto id = hw::deviceByName(device);
    for (auto fw : frameworks::frameworksFor(id))
        std::cout << frameworks::frameworkName(fw) << "\n";
    return 0;
}

int
cmdSummary(const std::string& model)
{
    const auto g = models::buildModel(models::modelByName(model));
    graph::printSummary(g, std::cout);
    return 0;
}

int
cmdDot(const std::string& model)
{
    const auto g = models::buildModel(models::modelByName(model));
    graph::writeDot(g, std::cout);
    return 0;
}

int
cmdSave(const std::string& model, const std::string& path)
{
    const auto g = models::buildModel(models::modelByName(model));
    std::ofstream out(path);
    EB_CHECK(out.good(), "cannot open '" << path << "' for writing");
    graph::writeGraphText(g, out);
    std::cout << "wrote " << g.numNodes() << " nodes to " << path
              << "\n";
    return 0;
}

int
cmdShow(const std::string& path)
{
    std::ifstream in(path);
    EB_CHECK(in.good(), "cannot open '" << path << "'");
    const auto g = graph::readGraphText(in);
    graph::printSummary(g, std::cout);
    return 0;
}

/**
 * Record a profiled run of @p session, annotate the spans with the
 * power/thermal models, and write the requested exports.
 */
void
profileToFiles(const frameworks::InferenceSession& session,
               const ObsOptions& opts)
{
    obs::Tracer tracer("edgebench predict");
    session.profileRun(opts.inferences, &tracer);
    const double active_w =
        power::annotateTraceEnergy(tracer, session.model());
    try {
        thermal::annotateTraceTemperature(
            tracer, session.model().device, active_w);
    } catch (const InvalidArgumentError&) {
        // HPC platform: no Table VI cooling data, skip surface_C.
    }

    if (!opts.traceOut.empty()) {
        std::ofstream out(opts.traceOut);
        EB_CHECK(out.good(),
                 "cannot open '" << opts.traceOut << "' for writing");
        obs::writeChromeTrace(tracer, out);
        std::cout << "  trace:          " << tracer.events().size()
                  << " events -> " << opts.traceOut
                  << " (load in chrome://tracing or Perfetto)\n";
    }
    if (!opts.metricsOut.empty()) {
        const auto metrics = obs::metricsFromTrace(tracer);
        std::ofstream out(opts.metricsOut);
        EB_CHECK(out.good(),
                 "cannot open '" << opts.metricsOut
                                 << "' for writing");
        obs::writeMetricsCsv(metrics, out);
        std::cout << "  metrics:        -> " << opts.metricsOut
                  << "\n";
    }

    std::cout << "\nProfiled software stack (" << opts.inferences
              << " inferences):\n";
    harness::traceBreakdown(tracer).print(std::cout);
}

int
cmdPredict(const std::string& model, const std::string& device,
           const std::string& fw_name, const ObsOptions& opts)
{
    const auto g = models::buildModel(models::modelByName(model));
    const auto dev = hw::deviceByName(device);

    std::optional<frameworks::Deployment> dep;
    if (fw_name.empty()) {
        dep = frameworks::bestDeployment(g, dev);
    } else {
        dep = frameworks::tryDeploy(
            frameworks::frameworkByName(fw_name), g, dev);
    }
    if (!dep) {
        std::cout << model << " is not deployable on " << device
                  << (fw_name.empty() ? ""
                                      : " with " + fw_name)
                  << "\n";
        return 1;
    }
    const auto e = power::energyPerInference(dep->model);
    const auto cost = dep->model.latency();
    std::cout << model << " on " << device << " via "
              << frameworks::frameworkName(dep->framework) << ":\n"
              << "  latency:        "
              << harness::Table::num(cost.totalMs, 2) << " ms\n"
              << "  compute time:   "
              << harness::Table::num(cost.computeMs, 2) << " ms\n"
              << "  memory time:    "
              << harness::Table::num(cost.memoryMs, 2) << " ms\n"
              << "  dispatch/other: "
              << harness::Table::num(cost.overheadMs, 2) << " ms\n"
              << "  active power:   "
              << harness::Table::num(e.activePowerW, 2) << " W\n"
              << "  energy:         "
              << harness::Table::num(e.energyPerInferenceMJ, 1)
              << " mJ/inference\n";
    const bool fallback = dep->model.usedDynamicGraphFallback;
    if (fallback)
        std::cout << "  note: dynamic-graph swap fallback engaged\n";
    if (opts.enabled()) {
        frameworks::InferenceSession session(std::move(dep->model));
        profileToFiles(session, opts);
    }
    return 0;
}

int
cmdCompat()
{
    std::vector<std::string> headers{"Model"};
    for (auto d : hw::edgeDevices())
        headers.push_back(hw::deviceName(d));
    harness::Table t(std::move(headers));
    for (auto m : models::allModels()) {
        std::vector<std::string> cells{models::modelInfo(m).name};
        for (auto d : hw::edgeDevices())
            cells.push_back(frameworks::markSymbol(
                frameworks::deploymentMark(m, d)));
        t.addRow(std::move(cells));
    }
    t.print(std::cout);
    return 0;
}

int
cmdPartition(const std::string& model, const std::string& device,
             const std::string& link_name)
{
    distrib::LinkModel link;
    if (link_name == "lan")
        link = distrib::lanLink();
    else if (link_name == "wifi")
        link = distrib::wifiLink();
    else if (link_name == "lte")
        link = distrib::lteLink();
    else
        return usage();

    const auto g = models::buildModel(models::modelByName(model));
    auto edge =
        frameworks::bestDeployment(g, hw::deviceByName(device));
    auto cloud = frameworks::tryDeploy(
        frameworks::FrameworkId::kPyTorch, g,
        hw::DeviceId::kTitanXp);
    EB_CHECK(edge && cloud, "model undeployable on an endpoint");
    const auto r = distrib::partition(edge->model, cloud->model, link);
    std::cout << "edge only:  "
              << harness::Table::num(r.edgeOnlyMs, 1) << " ms\n"
              << "cloud only: "
              << harness::Table::num(r.cloudOnlyMs, 1) << " ms\n"
              << "best:       "
              << harness::Table::num(r.best.totalMs, 1)
              << " ms (cut: "
              << (r.best.cutAfter < 0 ? "(cloud only)"
                                      : r.best.boundaryName)
              << ")\n";
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args;
    ObsOptions obs_opts;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            const bool has_value = i + 1 < argc;
            if (a == "--trace-out" && has_value)
                obs_opts.traceOut = argv[++i];
            else if (a == "--metrics-out" && has_value)
                obs_opts.metricsOut = argv[++i];
            else if (a == "--inferences" && has_value) {
                try {
                    obs_opts.inferences = std::stoll(argv[++i]);
                } catch (const std::exception&) {
                    obs_opts.inferences = 0; // fails the check below
                }
                EB_CHECK(obs_opts.inferences > 0,
                         "--inferences: need a positive count");
            } else if (a.rfind("--", 0) == 0) {
                return usage();
            } else {
                args.push_back(a);
            }
        }
        if (args.empty())
            return usage();
        const auto& cmd = args[0];
        if (cmd == "models")
            return cmdModels();
        if (cmd == "devices")
            return cmdDevices();
        if (cmd == "frameworks" && args.size() == 2)
            return cmdFrameworks(args[1]);
        if (cmd == "summary" && args.size() == 2)
            return cmdSummary(args[1]);
        if (cmd == "dot" && args.size() == 2)
            return cmdDot(args[1]);
        if (cmd == "save" && args.size() == 3)
            return cmdSave(args[1], args[2]);
        if (cmd == "show" && args.size() == 2)
            return cmdShow(args[1]);
        if (cmd == "predict" &&
            (args.size() == 3 || args.size() == 4))
            return cmdPredict(args[1], args[2],
                              args.size() == 4 ? args[3] : "",
                              obs_opts);
        if (cmd == "compat")
            return cmdCompat();
        if (cmd == "partition" && args.size() == 4)
            return cmdPartition(args[1], args[2], args[3]);
        return usage();
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
