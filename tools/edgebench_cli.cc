/**
 * @file
 * edgebench — the command-line front end of edgebench-sim.
 *
 *   edgebench models                         list the model zoo
 *   edgebench devices                        list platforms
 *   edgebench frameworks <device>            frameworks for a device
 *   edgebench summary <model>                layer table
 *   edgebench verify <model|all> [--json]    static graph verification
 *   edgebench memplan                        activation-memory table
 *   edgebench dot <model>                    Graphviz rendering
 *   edgebench save <model> <file.ebg>        serialize a zoo model
 *   edgebench show <file.ebg>                summary of a saved graph
 *   edgebench predict <model> <device> [fw]  latency + energy
 *   edgebench serve <model> <device> [fw]    fleet serving simulation
 *   edgebench compat                         Table V matrix
 *   edgebench partition <model> <device> <lan|wifi|lte>
 *   edgebench distrib <model> [--devices ...] [--link ...]
 *                                            pipeline simulation
 *
 * Global options (consumed anywhere on the command line):
 *   --trace-out <file>    record a profiled run of `predict` (or the
 *                         serving timeline of `serve`) as Chrome
 *                         trace-event JSON (chrome://tracing,
 *                         https://ui.perfetto.dev)
 *   --metrics-out <file>  distill the same run into a metrics CSV
 *   --inferences <n>      inferences in the profiled run (default 30)
 *
 * Serve options (apply to `serve`):
 *   --replicas <n>        fleet size (default 1)
 *   --queue-cap <n>       per-replica queue capacity (0 = unbounded)
 *   --balancer <name>     round_robin | least_loaded | power_of_two
 *   --batch <n>           max micro-batch per service interval
 *   --duration <s>        simulated window, seconds (default 600)
 *   --rate <hz>           mean arrival rate (default 1)
 *   --seed <n>            RNG seed (default 1)
 *   --retries <n>         retry attempts for rejected requests
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/distrib/pipeline_sim.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/frameworks/runtime.hh"
#include "edgebench/graph/export.hh"
#include "edgebench/graph/memplan.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/graph/serialize.hh"
#include "edgebench/graph/verify.hh"
#include "edgebench/harness/report.hh"
#include "edgebench/obs/export.hh"
#include "edgebench/power/energy.hh"
#include "edgebench/serving/fleet.hh"
#include "edgebench/thermal/thermal.hh"

using namespace edgebench;

namespace
{

/** Profiling options lifted from the command line before dispatch. */
struct ObsOptions
{
    std::string traceOut;
    std::string metricsOut;
    std::int64_t inferences = 30;

    bool enabled() const
    {
        return !traceOut.empty() || !metricsOut.empty();
    }
};

/** Pipeline options lifted from the command line before dispatch. */
struct DistribOptions
{
    std::string devices = "RPi3,RPi3"; ///< comma-separated, in order
    std::string link = "lan";
    double loss = 0.0;
    double jitter = 0.0;
    std::int64_t frames = 500;
    std::size_t queueCap = 8;
    bool shared = false;
    std::uint64_t seed = 1;
};

/** Fleet options lifted from the command line before dispatch. */
struct ServeOptions
{
    int replicas = 1;
    std::size_t queueCap = 0;
    std::string balancer = "round_robin";
    int batch = 1;
    double durationS = 600.0;
    double rateHz = 1.0;
    std::uint64_t seed = 1;
    int retries = 0;
};

int
usage()
{
    std::cerr
        << "usage: edgebench [options] <command> [args]\n"
        << "  models | devices | frameworks <device> | compat\n"
        << "  summary <model> | dot <model> | memplan\n"
        << "  verify <model|all> [--json]\n"
        << "  save <model> <file.ebg> | show <file.ebg>\n"
        << "  predict <model> <device> [framework]\n"
        << "  serve <model> <device> [framework]\n"
        << "  partition <model> <edge-device> <lan|wifi|lte>\n"
        << "  distrib <model> [--devices d1,d2,...] [--link "
           "lan|wifi|lte]\n"
        << "          [--loss p] [--jitter f] [--shared] "
           "[--frames n]\n"
        << "          [--queue-cap n] [--seed n]\n"
        << "options (apply to predict; --trace-out also to serve "
           "and distrib):\n"
        << "  --trace-out <file>    Chrome trace JSON of a profiled "
           "run\n"
        << "  --metrics-out <file>  metrics CSV of the same run\n"
        << "  --inferences <n>      run length to profile "
           "(default 30)\n"
        << "options (apply to serve):\n"
        << "  --replicas <n> --queue-cap <n> --balancer <name>\n"
        << "  --batch <n> --duration <s> --rate <hz> --seed <n>\n"
        << "  --retries <n>\n"
        << "global options:\n"
        << "  --threads <n>         worker threads for the compute\n"
        << "                        kernels (0 = all cores; results\n"
        << "                        are identical for any value)\n";
    return 2;
}

int
cmdModels()
{
    harness::Table t({"Model", "Input", "GFLOP", "MParams",
                      "FLOP/Param"});
    for (auto id : models::allModels()) {
        const auto g = models::buildModel(id);
        const auto st = g.stats();
        t.addRow({g.name(), g.inputDescription(),
                  harness::Table::num(st.macs / 1e9, 2),
                  harness::Table::num(st.params / 1e6, 2),
                  harness::Table::num(st.flopPerParam, 1)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdDevices()
{
    harness::Table t({"Device", "Category", "Unit", "Idle W",
                      "Avg W"});
    for (auto id : hw::allDevices()) {
        const auto& d = hw::deviceSpec(id);
        t.addRow({d.name, hw::categoryName(d.category),
                  d.preferredUnit().name,
                  harness::Table::num(d.idlePowerW, 2),
                  harness::Table::num(d.averagePowerW, 2)});
    }
    t.print(std::cout);
    return 0;
}

int
cmdFrameworks(const std::string& device)
{
    const auto id = hw::deviceByName(device);
    for (auto fw : frameworks::frameworksFor(id))
        std::cout << frameworks::frameworkName(fw) << "\n";
    return 0;
}

int
cmdSummary(const std::string& model)
{
    const auto g = models::buildModel(models::modelByName(model));
    graph::printSummary(g, std::cout);
    return 0;
}

/**
 * Activation-memory table: what the static planner's arena needs per
 * zoo model, against the legacy refcount executor's peak and the naive
 * sum of every activation (the gap the paper's memory characterization
 * is about).
 */
int
cmdMemplan()
{
    harness::Table t({"Model", "Arena KiB", "Refcount peak KiB",
                      "Sum activations KiB", "Arena/Sum"});
    for (auto id : models::allModels()) {
        const auto g = models::buildModel(id);
        const auto plan = graph::planMemory(g, /*force_f32=*/false);
        t.addRow({g.name(),
                  harness::Table::num(
                      static_cast<double>(plan.arenaBytes) / 1024.0, 1),
                  harness::Table::num(
                      static_cast<double>(plan.refcountPeakBytes) /
                          1024.0, 1),
                  harness::Table::num(
                      static_cast<double>(plan.sumAllocBytes) / 1024.0,
                      1),
                  harness::Table::num(
                      plan.sumAllocBytes > 0
                          ? static_cast<double>(plan.arenaBytes) /
                              static_cast<double>(plan.sumAllocBytes)
                          : 0.0,
                      3)});
    }
    t.print(std::cout);
    return 0;
}

/** Escape a string for embedding inside a JSON string literal. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (unsigned char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += static_cast<char>(c);
            }
        }
    }
    return out;
}

/**
 * Run the static verifier over zoo models in fp32 and int8 modes and
 * render a table (or JSON with --json). Exit status 1 when any graph
 * produces an error-severity diagnostic.
 */
int
cmdVerify(const std::string& model, bool json)
{
    std::vector<models::ModelId> ids;
    if (model == "all")
        ids = models::allModels();
    else
        ids.push_back(models::modelByName(model));

    struct Entry
    {
        std::string model;
        std::string mode;
        graph::VerifyReport report;
    };
    std::vector<Entry> entries;
    for (auto id : ids) {
        const auto g = models::buildModel(id);
        entries.push_back({g.name(), "fp32", graph::verifyGraph(g)});
        const auto q = graph::quantizeInt8(g);
        entries.push_back(
            {g.name(), "int8", graph::verifyGraph(q.graph)});
    }

    std::int64_t total_errors = 0;
    for (const auto& e : entries)
        total_errors += e.report.errors();

    if (json) {
        std::cout << "[";
        for (std::size_t i = 0; i < entries.size(); ++i) {
            const auto& e = entries[i];
            std::cout << (i ? ",\n " : "\n ") << "{\"model\": \""
                      << jsonEscape(e.model) << "\", \"mode\": \""
                      << e.mode << "\", \"errors\": "
                      << e.report.errors() << ", \"warnings\": "
                      << e.report.warnings() << ", \"diagnostics\": [";
            const auto& ds = e.report.diagnostics;
            for (std::size_t d = 0; d < ds.size(); ++d) {
                std::cout
                    << (d ? ", " : "") << "{\"severity\": \""
                    << graph::severityName(ds[d].severity)
                    << "\", \"pass\": \"" << jsonEscape(ds[d].pass)
                    << "\", \"node\": " << ds[d].node
                    << ", \"message\": \"" << jsonEscape(ds[d].message)
                    << "\", \"hint\": \"" << jsonEscape(ds[d].hint)
                    << "\"}";
            }
            std::cout << "]}";
        }
        std::cout << "\n]\n";
        return total_errors > 0 ? 1 : 0;
    }

    harness::Table t({"Model", "Mode", "Errors", "Warnings", "Info",
                      "Status"});
    for (const auto& e : entries)
        t.addRow({e.model, e.mode, std::to_string(e.report.errors()),
                  std::to_string(e.report.warnings()),
                  std::to_string(
                      e.report.count(graph::Severity::kInfo)),
                  e.report.ok() ? "ok" : "FAIL"});
    t.print(std::cout);
    for (const auto& e : entries)
        for (const auto& d : e.report.diagnostics)
            if (d.severity != graph::Severity::kInfo)
                std::cout << e.model << " [" << e.mode << "] "
                          << d.format() << "\n";
    return total_errors > 0 ? 1 : 0;
}

int
cmdDot(const std::string& model)
{
    const auto g = models::buildModel(models::modelByName(model));
    graph::writeDot(g, std::cout);
    return 0;
}

int
cmdSave(const std::string& model, const std::string& path)
{
    const auto g = models::buildModel(models::modelByName(model));
    std::ofstream out(path);
    EB_CHECK(out.good(), "cannot open '" << path << "' for writing");
    graph::writeGraphText(g, out);
    std::cout << "wrote " << g.numNodes() << " nodes to " << path
              << "\n";
    return 0;
}

int
cmdShow(const std::string& path)
{
    std::ifstream in(path);
    EB_CHECK(in.good(), "cannot open '" << path << "'");
    const auto g = graph::readGraphText(in);
    graph::printSummary(g, std::cout);
    return 0;
}

/**
 * Record a profiled run of @p session, annotate the spans with the
 * power/thermal models, and write the requested exports.
 */
void
profileToFiles(const frameworks::InferenceSession& session,
               const ObsOptions& opts)
{
    obs::Tracer tracer("edgebench predict");
    session.profileRun(opts.inferences, &tracer);
    const double active_w =
        power::annotateTraceEnergy(tracer, session.model());
    try {
        thermal::annotateTraceTemperature(
            tracer, session.model().device, active_w);
    } catch (const InvalidArgumentError&) {
        // HPC platform: no Table VI cooling data, skip surface_C.
    }

    if (!opts.traceOut.empty()) {
        std::ofstream out(opts.traceOut);
        EB_CHECK(out.good(),
                 "cannot open '" << opts.traceOut << "' for writing");
        obs::writeChromeTrace(tracer, out);
        std::cout << "  trace:          " << tracer.events().size()
                  << " events -> " << opts.traceOut
                  << " (load in chrome://tracing or Perfetto)\n";
    }
    if (!opts.metricsOut.empty()) {
        const auto metrics = obs::metricsFromTrace(tracer);
        std::ofstream out(opts.metricsOut);
        EB_CHECK(out.good(),
                 "cannot open '" << opts.metricsOut
                                 << "' for writing");
        obs::writeMetricsCsv(metrics, out);
        std::cout << "  metrics:        -> " << opts.metricsOut
                  << "\n";
    }

    std::cout << "\nProfiled software stack (" << opts.inferences
              << " inferences):\n";
    harness::traceBreakdown(tracer).print(std::cout);
}

int
cmdPredict(const std::string& model, const std::string& device,
           const std::string& fw_name, const ObsOptions& opts)
{
    const auto g = models::buildModel(models::modelByName(model));
    const auto dev = hw::deviceByName(device);

    std::optional<frameworks::Deployment> dep;
    if (fw_name.empty()) {
        dep = frameworks::bestDeployment(g, dev);
    } else {
        dep = frameworks::tryDeploy(
            frameworks::frameworkByName(fw_name), g, dev);
    }
    if (!dep) {
        std::cout << model << " is not deployable on " << device
                  << (fw_name.empty() ? ""
                                      : " with " + fw_name)
                  << "\n";
        return 1;
    }
    const auto e = power::energyPerInference(dep->model);
    const auto cost = dep->model.latency();
    std::cout << model << " on " << device << " via "
              << frameworks::frameworkName(dep->framework) << ":\n"
              << "  latency:        "
              << harness::Table::num(cost.totalMs, 2) << " ms\n"
              << "  compute time:   "
              << harness::Table::num(cost.computeMs, 2) << " ms\n"
              << "  memory time:    "
              << harness::Table::num(cost.memoryMs, 2) << " ms\n"
              << "  dispatch/other: "
              << harness::Table::num(cost.overheadMs, 2) << " ms\n"
              << "  active power:   "
              << harness::Table::num(e.activePowerW, 2) << " W\n"
              << "  energy:         "
              << harness::Table::num(e.energyPerInferenceMJ, 1)
              << " mJ/inference\n";
    const bool fallback = dep->model.usedDynamicGraphFallback;
    if (fallback)
        std::cout << "  note: dynamic-graph swap fallback engaged\n";
    if (opts.enabled()) {
        frameworks::InferenceSession session(std::move(dep->model));
        profileToFiles(session, opts);
    }
    return 0;
}

int
cmdServe(const std::string& model, const std::string& device,
         const std::string& fw_name, const ServeOptions& serve,
         const ObsOptions& opts)
{
    const auto g = models::buildModel(models::modelByName(model));
    const auto dev = hw::deviceByName(device);

    std::optional<frameworks::Deployment> dep;
    if (fw_name.empty())
        dep = frameworks::bestDeployment(g, dev);
    else
        dep = frameworks::tryDeploy(
            frameworks::frameworkByName(fw_name), g, dev);
    if (!dep) {
        std::cout << model << " is not deployable on " << device
                  << (fw_name.empty() ? "" : " with " + fw_name)
                  << "\n";
        return 1;
    }
    frameworks::InferenceSession session(std::move(dep->model));

    serving::FleetConfig fc;
    fc.durationS = serve.durationS;
    fc.arrivalRateHz = serve.rateHz;
    fc.seed = serve.seed;
    fc.queueCapacity = serve.queueCap;
    fc.balancer = serving::balancerByName(serve.balancer);
    fc.maxBatch = serve.batch;
    fc.retry.maxAttempts = serve.retries;

    obs::Tracer tracer("edgebench serve");
    if (!opts.traceOut.empty())
        fc.tracer = &tracer;

    const auto rep =
        serving::simulateFleet(session, serve.replicas, fc);

    std::cout << model << " on " << serve.replicas << "x " << device
              << " (" << serving::balancerName(fc.balancer)
              << ", queue " << (fc.queueCapacity == 0
                                    ? std::string("unbounded")
                                    : std::to_string(fc.queueCapacity))
              << ", batch " << fc.maxBatch << "), "
              << harness::Table::num(fc.arrivalRateHz, 2) << " Hz for "
              << harness::Table::num(fc.durationS, 0) << " s:\n"
              << "  offered:    " << rep.offered << "\n"
              << "  served:     " << rep.served << "\n"
              << "  dropped:    " << rep.dropped
              << "  (rejections: " << rep.rejected
              << ", retries: " << rep.retries << ")\n"
              << "  in flight:  " << rep.inFlight << "\n"
              << "  latency:    p50 "
              << harness::Table::num(rep.p50Ms, 1) << " / p95 "
              << harness::Table::num(rep.p95Ms, 1) << " / p99 "
              << harness::Table::num(rep.p99Ms, 1) << " ms\n"
              << "  throughput: "
              << harness::Table::num(rep.throughputHz, 3) << " Hz\n"
              << "  energy:     "
              << harness::Table::num(rep.energyJ, 1) << " J ("
              << harness::Table::num(rep.energyPerRequestJ, 2)
              << " J/request)\n"
              << "  alive:      " << rep.aliveReplicas << "/"
              << serve.replicas << " replicas\n";
    for (std::size_t r = 0; r < rep.replicas.size(); ++r) {
        const auto& rr = rep.replicas[r];
        std::cout << "  replica " << r << ": served " << rr.served
                  << ", util "
                  << harness::Table::num(rr.utilization * 100.0, 1)
                  << "%, peak "
                  << harness::Table::num(rr.peakSurfaceC, 1) << " C";
        if (rr.thermalShutdown)
            std::cout << ", SHUTDOWN at "
                      << harness::Table::num(rr.shutdownAtS, 0)
                      << " s";
        else if (rr.thermalThrottled)
            std::cout << ", throttled";
        std::cout << "\n";
    }

    if (!opts.traceOut.empty()) {
        std::ofstream out(opts.traceOut);
        EB_CHECK(out.good(),
                 "cannot open '" << opts.traceOut << "' for writing");
        obs::writeChromeTrace(tracer, out);
        std::cout << "  trace:      " << tracer.events().size()
                  << " events -> " << opts.traceOut << "\n";
    }
    return 0;
}

int
cmdCompat()
{
    std::vector<std::string> headers{"Model"};
    for (auto d : hw::edgeDevices())
        headers.push_back(hw::deviceName(d));
    harness::Table t(std::move(headers));
    for (auto m : models::allModels()) {
        std::vector<std::string> cells{models::modelInfo(m).name};
        for (auto d : hw::edgeDevices())
            cells.push_back(frameworks::markSymbol(
                frameworks::deploymentMark(m, d)));
        t.addRow(std::move(cells));
    }
    t.print(std::cout);
    return 0;
}

int
cmdPartition(const std::string& model, const std::string& device,
             const std::string& link_name)
{
    distrib::LinkModel link;
    if (link_name == "lan")
        link = distrib::lanLink();
    else if (link_name == "wifi")
        link = distrib::wifiLink();
    else if (link_name == "lte")
        link = distrib::lteLink();
    else
        return usage();

    const auto g = models::buildModel(models::modelByName(model));
    auto edge =
        frameworks::bestDeployment(g, hw::deviceByName(device));
    auto cloud = frameworks::tryDeploy(
        frameworks::FrameworkId::kPyTorch, g,
        hw::DeviceId::kTitanXp);
    EB_CHECK(edge && cloud, "model undeployable on an endpoint");
    const auto r = distrib::partition(edge->model, cloud->model, link);
    std::cout << "edge only:  "
              << harness::Table::num(r.edgeOnlyMs, 1) << " ms\n"
              << "cloud only: "
              << harness::Table::num(r.cloudOnlyMs, 1) << " ms\n"
              << "best:       "
              << harness::Table::num(r.best.totalMs, 1)
              << " ms (cut: "
              << (r.best.cutAfter < 0 ? "(cloud only)"
                                      : r.best.boundaryName)
              << ")\n";
    return 0;
}

distrib::LinkModel
linkByName(const std::string& name)
{
    if (name == "lan")
        return distrib::lanLink();
    if (name == "wifi")
        return distrib::wifiLink();
    if (name == "lte")
        return distrib::lteLink();
    EB_CHECK(false, "unknown link '" << name << "' (lan|wifi|lte)");
    return {};
}

int
cmdDistrib(const std::string& model, const DistribOptions& opts,
           const ObsOptions& obs_opts)
{
    const auto link = linkByName(opts.link);
    const auto g = models::buildModel(models::modelByName(model));

    // Resolve the ordered device list into deployments.
    std::vector<frameworks::CompiledModel> deployments;
    std::vector<std::string> names;
    for (std::size_t pos = 0; pos < opts.devices.size();) {
        auto comma = opts.devices.find(',', pos);
        if (comma == std::string::npos)
            comma = opts.devices.size();
        const auto name = opts.devices.substr(pos, comma - pos);
        EB_CHECK(!name.empty(), "--devices: empty device name");
        auto dep =
            frameworks::bestDeployment(g, hw::deviceByName(name));
        EB_CHECK(dep, "model undeployable on '" << name << "'");
        deployments.push_back(std::move(dep->model));
        names.push_back(name);
        pos = comma + 1;
    }
    std::vector<const frameworks::CompiledModel*> devs;
    for (const auto& d : deployments)
        devs.push_back(&d);

    const auto plan = distrib::pipelinePartition(devs, link);
    harness::Table stages({"Stage", "Device", "Compute ms",
                           "Transfer ms", "Boundary"});
    for (std::size_t s = 0; s < plan.stageMs.size(); ++s)
        stages.addRow(
            {std::to_string(s), hw::deviceName(plan.stageDevices[s]),
             harness::Table::num(plan.stageMs[s], 2),
             s < plan.transferMs.size()
                 ? harness::Table::num(plan.transferMs[s], 2)
                 : "-",
             s < plan.boundaries.size() ? plan.boundaries[s] : "-"});
    stages.print(std::cout);
    std::cout << "analytic: " << harness::Table::num(plan.throughputHz, 3)
              << " Hz (bottleneck "
              << harness::Table::num(plan.bottleneckMs, 2)
              << " ms, single-frame "
              << harness::Table::num(plan.latencyMs, 2) << " ms)\n";

    distrib::NetworkConfig net;
    net.link = distrib::linkSpec(link);
    net.link.lossRate = opts.loss;
    net.link.jitter = opts.jitter;
    if (opts.shared)
        net.medium = distrib::MediumMode::kShared;

    distrib::PipelineSimConfig cfg;
    cfg.frames = opts.frames;
    cfg.queueCapacity = opts.queueCap;
    cfg.seed = opts.seed;
    obs::Tracer tracer("edgebench distrib");
    if (!obs_opts.traceOut.empty())
        cfg.tracer = &tracer;

    const auto rep = distrib::simulatePipeline(plan, devs, net, cfg);
    std::cout << "simulated: "
              << harness::Table::num(rep.throughputHz, 3) << " Hz ("
              << harness::Table::num(
                     plan.throughputHz > 0.0
                         ? 100.0 * (rep.throughputHz - plan.throughputHz) /
                             plan.throughputHz
                         : 0.0,
                     2)
              << "% vs analytic)\n"
              << "frames: " << rep.completed << "/" << rep.offered
              << " completed, " << rep.dropped << " dropped\n"
              << "latency: p50 " << harness::Table::num(rep.p50Ms, 1)
              << "  p95 " << harness::Table::num(rep.p95Ms, 1)
              << "  p99 " << harness::Table::num(rep.p99Ms, 1)
              << " ms\n";
    for (std::size_t l = 0; l < rep.links.size(); ++l) {
        const auto& lr = rep.links[l];
        std::cout << "link " << l << "->" << l + 1 << ": "
                  << lr.transfers << " transfers, "
                  << lr.retransmits << " retransmits, "
                  << lr.lostFrames << " lost, util "
                  << harness::Table::num(100.0 * lr.utilization, 1)
                  << "%\n";
    }

    if (!obs_opts.traceOut.empty()) {
        std::ofstream out(obs_opts.traceOut);
        EB_CHECK(out.good(), "cannot open '" << obs_opts.traceOut
                                             << "' for writing");
        obs::writeChromeTrace(tracer, out);
        std::cout << "trace: " << tracer.events().size()
                  << " events -> " << obs_opts.traceOut << "\n";
    }
    return 0;
}

} // namespace

int
main(int argc, char** argv)
{
    std::vector<std::string> args;
    ObsOptions obs_opts;
    ServeOptions serve_opts;
    DistribOptions distrib_opts;
    bool json_out = false;
    try {
        auto int_flag = [](const char* flag, const char* v) {
            std::int64_t n = -1;
            try {
                n = std::stoll(v);
            } catch (const std::exception&) {
            }
            EB_CHECK(n >= 0, flag << ": need a non-negative integer");
            return n;
        };
        auto double_flag = [](const char* flag, const char* v) {
            double x = 0.0;
            try {
                x = std::stod(v);
            } catch (const std::exception&) {
            }
            EB_CHECK(x > 0.0, flag << ": need a positive number");
            return x;
        };
        auto unit_flag = [](const char* flag, const char* v) {
            double x = -1.0;
            try {
                x = std::stod(v);
            } catch (const std::exception&) {
            }
            EB_CHECK(x >= 0.0,
                     flag << ": need a non-negative number");
            return x;
        };
        for (int i = 1; i < argc; ++i) {
            const std::string a = argv[i];
            const bool has_value = i + 1 < argc;
            if (a == "--trace-out" && has_value)
                obs_opts.traceOut = argv[++i];
            else if (a == "--metrics-out" && has_value)
                obs_opts.metricsOut = argv[++i];
            else if (a == "--inferences" && has_value) {
                obs_opts.inferences =
                    int_flag("--inferences", argv[++i]);
                EB_CHECK(obs_opts.inferences > 0,
                         "--inferences: need a positive count");
            } else if (a == "--replicas" && has_value) {
                serve_opts.replicas = static_cast<int>(
                    int_flag("--replicas", argv[++i]));
                EB_CHECK(serve_opts.replicas > 0,
                         "--replicas: need a positive count");
            } else if (a == "--queue-cap" && has_value) {
                serve_opts.queueCap = static_cast<std::size_t>(
                    int_flag("--queue-cap", argv[++i]));
                distrib_opts.queueCap = serve_opts.queueCap;
            } else if (a == "--balancer" && has_value) {
                serve_opts.balancer = argv[++i];
            } else if (a == "--batch" && has_value) {
                serve_opts.batch =
                    static_cast<int>(int_flag("--batch", argv[++i]));
                EB_CHECK(serve_opts.batch > 0,
                         "--batch: need a positive count");
            } else if (a == "--duration" && has_value) {
                serve_opts.durationS =
                    double_flag("--duration", argv[++i]);
            } else if (a == "--rate" && has_value) {
                serve_opts.rateHz = double_flag("--rate", argv[++i]);
            } else if (a == "--seed" && has_value) {
                serve_opts.seed = static_cast<std::uint64_t>(
                    int_flag("--seed", argv[++i]));
                distrib_opts.seed = serve_opts.seed;
            } else if (a == "--devices" && has_value) {
                distrib_opts.devices = argv[++i];
            } else if (a == "--link" && has_value) {
                distrib_opts.link = argv[++i];
            } else if (a == "--loss" && has_value) {
                distrib_opts.loss = unit_flag("--loss", argv[++i]);
            } else if (a == "--jitter" && has_value) {
                distrib_opts.jitter =
                    unit_flag("--jitter", argv[++i]);
            } else if (a == "--frames" && has_value) {
                distrib_opts.frames = int_flag("--frames", argv[++i]);
            } else if (a == "--shared") {
                distrib_opts.shared = true;
            } else if (a == "--json") {
                json_out = true;
            } else if (a == "--retries" && has_value) {
                serve_opts.retries = static_cast<int>(
                    int_flag("--retries", argv[++i]));
            } else if (a == "--threads" && has_value) {
                core::setParallelism(static_cast<int>(
                    int_flag("--threads", argv[++i])));
            } else if (a.rfind("--", 0) == 0) {
                return usage();
            } else {
                args.push_back(a);
            }
        }
        if (args.empty())
            return usage();
        const auto& cmd = args[0];
        if (cmd == "models")
            return cmdModels();
        if (cmd == "devices")
            return cmdDevices();
        if (cmd == "frameworks" && args.size() == 2)
            return cmdFrameworks(args[1]);
        if (cmd == "summary" && args.size() == 2)
            return cmdSummary(args[1]);
        if (cmd == "verify" && args.size() == 2)
            return cmdVerify(args[1], json_out);
        if (cmd == "memplan" && args.size() == 1)
            return cmdMemplan();
        if (cmd == "dot" && args.size() == 2)
            return cmdDot(args[1]);
        if (cmd == "save" && args.size() == 3)
            return cmdSave(args[1], args[2]);
        if (cmd == "show" && args.size() == 2)
            return cmdShow(args[1]);
        if (cmd == "predict" &&
            (args.size() == 3 || args.size() == 4))
            return cmdPredict(args[1], args[2],
                              args.size() == 4 ? args[3] : "",
                              obs_opts);
        if (cmd == "serve" &&
            (args.size() == 3 || args.size() == 4))
            return cmdServe(args[1], args[2],
                            args.size() == 4 ? args[3] : "",
                            serve_opts, obs_opts);
        if (cmd == "compat")
            return cmdCompat();
        if (cmd == "partition" && args.size() == 4)
            return cmdPartition(args[1], args[2], args[3]);
        if (cmd == "distrib" && args.size() == 2)
            return cmdDistrib(args[1], distrib_opts, obs_opts);
        return usage();
    } catch (const Error& e) {
        std::cerr << "error: " << e.what() << "\n";
        return 1;
    }
}
