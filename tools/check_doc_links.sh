#!/usr/bin/env bash
#
# Documentation link check (bash + grep only, no dependencies).
#
# Verifies that the prose stays tied to the tree it describes:
#   1. every repo-relative file path mentioned in README.md or
#      docs/*.md (e.g. `docs/QUANTIZATION.md`, src/core/quant.hh,
#      tests/core/test_gemm_int8.cc) names a file that exists;
#   2. every relative markdown link target [text](path) resolves;
#   3. every docs/*.md page is reachable from README.md or from
#      another docs page (no orphaned documentation);
#   4. every `edgebench` CLI subcommand dispatched in
#      tools/edgebench_cli.cc (models, verify, predict, ...) is
#      documented — "edgebench <cmd>" must appear in README.md or a
#      docs page.
#
# Run from anywhere; exits non-zero listing each broken reference.
# CI runs this as the `docs` job on every push.

set -u
cd "$(dirname "$0")/.." || exit 1

fail=0

# 1. Repo-relative file references in prose and code spans.
for doc in README.md docs/*.md; do
    while IFS= read -r ref; do
        if [ ! -e "$ref" ]; then
            echo "BROKEN PATH: $doc mentions $ref (no such file)"
            fail=1
        fi
    done < <(grep -oE \
        '\b(docs|src|tests|tools|bench|examples)/[A-Za-z0-9_./-]+\.(md|hh|cc|sh|yml|json)\b' \
        "$doc" | sort -u)
done

# 2. Relative markdown link targets (skip absolute URLs and anchors).
for doc in README.md docs/*.md; do
    dir=$(dirname "$doc")
    while IFS= read -r target; do
        case "$target" in
        http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path=${target%%#*}
        [ -z "$path" ] && continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$path" ]; then
            echo "BROKEN LINK: $doc -> ($target)"
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" |
        sed 's/^](//; s/)$//' | sort -u)
done

# 3. No orphaned docs pages.
for page in docs/*.md; do
    name=$(basename "$page")
    if ! grep -l "$name" README.md docs/*.md |
        grep -qv "^$page\$"; then
        echo "ORPHAN: $page is referenced by no other page"
        fail=1
    fi
done

# 4. Every CLI subcommand is documented. The dispatcher in main() is
#    the source of truth: each `cmd == "<name>"` comparison names a
#    subcommand users can invoke, so each must show up as
#    "edgebench <name>" somewhere in the prose.
while IFS= read -r cmd; do
    if ! grep -q "edgebench $cmd" README.md docs/*.md; then
        echo "UNDOCUMENTED CLI SUBCOMMAND: 'edgebench $cmd'" \
            "(dispatched in tools/edgebench_cli.cc but mentioned in" \
            "neither README.md nor docs/*.md)"
        fail=1
    fi
done < <(grep -oE 'cmd == "[a-z]+"' tools/edgebench_cli.cc |
    sed 's/cmd == "//; s/"$//' | sort -u)

if [ "$fail" -ne 0 ]; then
    echo "doc link check FAILED"
    exit 1
fi
echo "doc link check OK ($(ls docs/*.md | wc -l | tr -d ' ') docs pages)"
