/**
 * @file
 * Virtualization-overhead tests (Fig. 13).
 */

#include <gtest/gtest.h>

#include "edgebench/frameworks/deploy.hh"
#include "edgebench/sysmodel/virtualization.hh"

namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;
namespace es = edgebench::sysmodel;

namespace
{

ef::CompiledModel
deployOnRpi(em::ModelId m)
{
    auto d = ef::tryDeploy(ef::FrameworkId::kTensorFlow,
                           em::buildModel(m), eh::DeviceId::kRpi3);
    EXPECT_TRUE(d.has_value());
    return d->model;
}

} // namespace

TEST(VirtualizationTest, EnvironmentNames)
{
    EXPECT_EQ(es::environmentName(es::ExecEnvironment::kBareMetal),
              "Bare Metal");
    EXPECT_EQ(es::environmentName(es::ExecEnvironment::kDocker),
              "Docker");
}

TEST(VirtualizationTest, BareMetalMatchesRoofline)
{
    auto m = deployOnRpi(em::ModelId::kResNet18);
    EXPECT_DOUBLE_EQ(
        es::environmentLatencyMs(m, es::ExecEnvironment::kBareMetal),
        m.latencyMs());
}

TEST(VirtualizationTest, DockerIsSlowerButWithinFivePercent)
{
    // Fig. 13: "the overhead is almost negligible, within 5%, in all
    // cases" on the RPi.
    for (auto model : {em::ModelId::kResNet18, em::ModelId::kResNet50,
                       em::ModelId::kMobileNetV2,
                       em::ModelId::kInceptionV4,
                       em::ModelId::kTinyYolo}) {
        auto m = deployOnRpi(model);
        const double slowdown = es::dockerSlowdown(m);
        EXPECT_GT(slowdown, 0.0) << em::modelInfo(model).name;
        EXPECT_LT(slowdown, 0.05) << em::modelInfo(model).name;
    }
}

TEST(VirtualizationTest, OverheadHitsDispatchHeavyModelsHarder)
{
    // MobileNet-v2 has far more ops per FLOP than ResNet-18, so its
    // relative Docker penalty is larger.
    const double mnv2 =
        es::dockerSlowdown(deployOnRpi(em::ModelId::kMobileNetV2));
    const double vgg = es::dockerSlowdown(
        deployOnRpi(em::ModelId::kResNet18));
    EXPECT_GT(mnv2, vgg);
}

TEST(VirtualizationTest, ModelCoefficientsAreSane)
{
    const auto& v = es::dockerModel();
    EXPECT_GT(v.overheadOnOverheadTime, 1.0);
    EXPECT_GE(v.overheadOnComputeTime, 1.0);
    EXPECT_LT(v.overheadOnComputeTime, 1.05);
}
