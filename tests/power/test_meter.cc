/**
 * @file
 * Tests for the emulated measurement instruments.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/power/meter.hh"

namespace ep = edgebench::power;
namespace ec = edgebench::core;

TEST(UsbMultimeterTest, VoltageWithinRatedAccuracy)
{
    ec::Rng rng(1);
    ep::UsbMultimeter meter(rng);
    for (double v : {0.5, 1.0, 5.1, 12.0, 20.0}) {
        const double m = meter.measureVoltage(v);
        const double bound =
            v * ep::UsbMultimeter::voltageErrorBound(v) + 1e-12;
        EXPECT_NEAR(m, v, bound) << "v=" << v;
    }
}

TEST(UsbMultimeterTest, CurrentWithinRatedAccuracy)
{
    ec::Rng rng(2);
    ep::UsbMultimeter meter(rng);
    for (double a : {0.01, 0.1, 0.5, 1.0, 3.0}) {
        const double m = meter.measureCurrent(a);
        const double bound =
            a * ep::UsbMultimeter::currentErrorBound(a) + 1e-12;
        EXPECT_NEAR(m, a, bound) << "a=" << a;
    }
}

TEST(UsbMultimeterTest, MeasurementIsDeterministicPerSeed)
{
    ec::Rng r1(3), r2(3);
    ep::UsbMultimeter a(r1), b(r2);
    EXPECT_DOUBLE_EQ(a.measureVoltage(5.1), b.measureVoltage(5.1));
    EXPECT_DOUBLE_EQ(a.measureCurrent(0.5), b.measureCurrent(0.5));
}

TEST(UsbMultimeterTest, RejectsNegativeInputs)
{
    ec::Rng rng(4);
    ep::UsbMultimeter meter(rng);
    EXPECT_THROW(meter.measureVoltage(-1.0),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(meter.measureCurrent(-0.1),
                 edgebench::InvalidArgumentError);
}

TEST(UsbMultimeterTest, RecordsAtOneHertz)
{
    ec::Rng rng(5);
    ep::UsbMultimeter meter(rng);
    const auto trace =
        meter.record([](double) { return 2.5; }, 10.0);
    EXPECT_EQ(trace.samples.size(), 11u);
    for (std::size_t i = 1; i < trace.samples.size(); ++i)
        EXPECT_DOUBLE_EQ(trace.samples[i].timeS -
                             trace.samples[i - 1].timeS,
                         1.0);
}

TEST(UsbMultimeterTest, TraceEnergyTracksTruth)
{
    ec::Rng rng(6);
    ep::UsbMultimeter meter(rng);
    // 2.5 W for 100 s = 250 J.
    const auto trace =
        meter.record([](double) { return 2.5; }, 100.0);
    EXPECT_NEAR(trace.energyJ(), 250.0, 250.0 * 0.01);
    EXPECT_NEAR(trace.averageW(), 2.5, 2.5 * 0.01);
}

TEST(PowerAnalyzerTest, WithinFiveMilliwatts)
{
    ec::Rng rng(7);
    ep::PowerAnalyzer analyzer(rng);
    for (double w : {0.1, 1.0, 9.65, 100.0}) {
        EXPECT_NEAR(analyzer.measurePower(w), w,
                    ep::PowerAnalyzer::kAccuracyW + 1e-12);
    }
}

TEST(PowerAnalyzerTest, NeverReturnsNegativePower)
{
    for (std::uint64_t seed = 0; seed < 20; ++seed) {
        ec::Rng rng(seed);
        ep::PowerAnalyzer analyzer(rng);
        EXPECT_GE(analyzer.measurePower(0.0), 0.0);
    }
}

TEST(PowerTraceTest, TimeVaryingLoadIntegration)
{
    ec::Rng rng(8);
    ep::PowerAnalyzer analyzer(rng);
    // Square wave: 10 W for t<50, 2 W after; total = 500+100 = 600 J.
    const auto trace = analyzer.record(
        [](double t) { return t < 50.0 ? 10.0 : 2.0; }, 100.0);
    EXPECT_NEAR(trace.energyJ(), 600.0, 15.0);
}

TEST(PowerTraceTest, EmptyTraceIsZero)
{
    ep::PowerTrace t;
    EXPECT_DOUBLE_EQ(t.energyJ(), 0.0);
    EXPECT_DOUBLE_EQ(t.averageW(), 0.0);
}
