/**
 * @file
 * Energy-model tests (Fig. 11 / Fig. 12 machinery).
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/power/energy.hh"

namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;
namespace ep = edgebench::power;

namespace
{

ep::EnergyResult
energy(em::ModelId m, eh::DeviceId d)
{
    auto dep = ef::bestDeployment(em::buildModel(m), d);
    EXPECT_TRUE(dep.has_value());
    return ep::energyPerInference(dep->model);
}

} // namespace

TEST(EnergyTest, ActivePowerBoundedByTableIII)
{
    for (auto d : {eh::DeviceId::kRpi3, eh::DeviceId::kJetsonTx2,
                   eh::DeviceId::kJetsonNano}) {
        const auto e = energy(em::ModelId::kResNet50, d);
        const auto& spec = eh::deviceSpec(d);
        EXPECT_GE(e.activePowerW, spec.idlePowerW);
        EXPECT_LE(e.activePowerW, spec.averagePowerW + 1e-9);
        EXPECT_GT(e.energyPerInferenceMJ, 0.0);
    }
}

TEST(EnergyTest, EnergyEqualsPowerTimesTime)
{
    const auto e = energy(em::ModelId::kResNet18,
                          eh::DeviceId::kJetsonNano);
    EXPECT_NEAR(e.energyPerInferenceMJ,
                e.activePowerW * e.inferenceTimeMs, 1e-9);
}

TEST(EnergyTest, Fig11RpiHasHighestEnergyPerInference)
{
    // Fig. 11: RPi tops every model it runs; edge accelerators are
    // orders of magnitude lower.
    for (auto m : {em::ModelId::kResNet18, em::ModelId::kResNet50,
                   em::ModelId::kMobileNetV2,
                   em::ModelId::kInceptionV4}) {
        const double rpi =
            energy(m, eh::DeviceId::kRpi3).energyPerInferenceMJ;
        for (auto d : {eh::DeviceId::kJetsonTx2,
                       eh::DeviceId::kJetsonNano,
                       eh::DeviceId::kMovidius}) {
            EXPECT_GT(rpi, energy(m, d).energyPerInferenceMJ)
                << em::modelInfo(m).name << " vs "
                << eh::deviceName(d);
        }
    }
}

TEST(EnergyTest, Fig11EdgeTpuMobileNetIsLowest)
{
    // Paper: "as low as 11 mJ per inference (MobileNet-v2 on
    // EdgeTPU)".
    const double etpu = energy(em::ModelId::kMobileNetV2,
                               eh::DeviceId::kEdgeTpu)
                            .energyPerInferenceMJ;
    EXPECT_LT(etpu, 60.0);
    for (auto d : {eh::DeviceId::kRpi3, eh::DeviceId::kJetsonTx2,
                   eh::DeviceId::kJetsonNano, eh::DeviceId::kMovidius,
                   eh::DeviceId::kGtxTitanX}) {
        EXPECT_GT(energy(em::ModelId::kMobileNetV2, d)
                      .energyPerInferenceMJ,
                  etpu)
            << eh::deviceName(d);
    }
}

TEST(EnergyTest, Fig11Tx2SavesEnergyOverGtxTitanX)
{
    // Paper: TX2 averages ~5x energy savings vs GTX Titan X.
    std::vector<double> ratios;
    for (auto m : {em::ModelId::kResNet18, em::ModelId::kResNet50,
                   em::ModelId::kMobileNetV2,
                   em::ModelId::kInceptionV4}) {
        const double gtx =
            energy(m, eh::DeviceId::kGtxTitanX).energyPerInferenceMJ;
        const double tx2 =
            energy(m, eh::DeviceId::kJetsonTx2).energyPerInferenceMJ;
        ratios.push_back(gtx / tx2);
    }
    double min_ratio = 1e300;
    for (double r : ratios)
        min_ratio = std::min(min_ratio, r);
    EXPECT_GT(min_ratio, 1.5);
}

TEST(EnergyTest, Fig12MovidiusHasLowestActivePower)
{
    // Fig. 12: Movidius Stick draws the least active power.
    const double mov = energy(em::ModelId::kMobileNetV2,
                              eh::DeviceId::kMovidius)
                           .activePowerW;
    for (auto d : {eh::DeviceId::kRpi3, eh::DeviceId::kJetsonTx2,
                   eh::DeviceId::kJetsonNano, eh::DeviceId::kEdgeTpu,
                   eh::DeviceId::kGtxTitanX}) {
        EXPECT_LT(mov,
                  energy(em::ModelId::kMobileNetV2, d).activePowerW)
            << eh::deviceName(d);
    }
}

TEST(EnergyTest, Fig12EdgeTpuHasLowestInferenceTime)
{
    // Fig. 12: EdgeTPU is the fastest platform (on models it runs).
    const double etpu = energy(em::ModelId::kMobileNetV2,
                               eh::DeviceId::kEdgeTpu)
                            .inferenceTimeMs;
    for (auto d : {eh::DeviceId::kRpi3, eh::DeviceId::kJetsonTx2,
                   eh::DeviceId::kJetsonNano,
                   eh::DeviceId::kMovidius}) {
        EXPECT_LT(etpu,
                  energy(em::ModelId::kMobileNetV2, d).inferenceTimeMs)
            << eh::deviceName(d);
    }
}

TEST(BatteryTest, IdleRateGivesIdleLife)
{
    auto dep = ef::bestDeployment(
        em::buildModel(em::ModelId::kMobileNetV2),
        eh::DeviceId::kRpi3);
    ASSERT_TRUE(dep.has_value());
    const auto& spec = eh::deviceSpec(eh::DeviceId::kRpi3);
    // Rate 0: pure idle draw.
    EXPECT_NEAR(ep::batteryLifeHours(dep->model, 10.0, 0.0),
                10.0 / spec.idlePowerW, 1e-9);
}

TEST(BatteryTest, HigherRateDrainsFaster)
{
    auto dep = ef::bestDeployment(
        em::buildModel(em::ModelId::kMobileNetV2),
        eh::DeviceId::kJetsonNano);
    ASSERT_TRUE(dep.has_value());
    const double slow = ep::batteryLifeHours(dep->model, 20.0, 0.5);
    const double fast = ep::batteryLifeHours(dep->model, 20.0, 10.0);
    EXPECT_GT(slow, fast);
    // Saturated duty cycle bounds life from below.
    const double floor = 20.0 /
        eh::deviceSpec(eh::DeviceId::kJetsonNano).averagePowerW;
    EXPECT_GE(fast, floor * 0.99);
}

TEST(BatteryTest, RejectsBadArguments)
{
    auto dep = ef::bestDeployment(
        em::buildModel(em::ModelId::kMobileNetV2),
        eh::DeviceId::kJetsonNano);
    ASSERT_TRUE(dep.has_value());
    EXPECT_THROW(ep::batteryLifeHours(dep->model, 0.0, 1.0),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(ep::batteryLifeHours(dep->model, 5.0, -1.0),
                 edgebench::InvalidArgumentError);
}
