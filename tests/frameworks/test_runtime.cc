/**
 * @file
 * Tests for the simulated runtime: timing protocol and the Fig. 5
 * software-stack phase model.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/frameworks/runtime.hh"

namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;

namespace
{

ef::InferenceSession
session(ef::FrameworkId fw, em::ModelId model, eh::DeviceId device)
{
    auto d = ef::tryDeploy(fw, em::buildModel(model), device);
    EB_CHECK(d.has_value(), "deployment failed in test setup");
    return ef::InferenceSession(std::move(d->model));
}

} // namespace

TEST(RuntimeTest, PerInferenceTimeExcludesInitialization)
{
    auto s = session(ef::FrameworkId::kTensorFlow,
                     em::ModelId::kResNet18, eh::DeviceId::kRpi3);
    const auto r1 = s.run(1);
    const auto r100 = s.run(100);
    EXPECT_DOUBLE_EQ(r1.perInferenceMs, r100.perInferenceMs);
    EXPECT_DOUBLE_EQ(r1.initializationMs, r100.initializationMs);
    EXPECT_GT(r1.initializationMs, 0.0);
    EXPECT_NEAR(r100.totalMs(),
                r100.initializationMs + 100 * r100.perInferenceMs,
                1e-9);
}

TEST(RuntimeTest, RunRequiresPositiveCount)
{
    auto s = session(ef::FrameworkId::kPyTorch,
                     em::ModelId::kCifarNet, eh::DeviceId::kXeon);
    EXPECT_THROW(s.run(0), edgebench::InvalidArgumentError);
}

TEST(RuntimeTest, StaticGraphSetupDwarfsDynamic)
{
    auto tf = session(ef::FrameworkId::kTensorFlow,
                      em::ModelId::kResNet18, eh::DeviceId::kRpi3);
    auto pt = session(ef::FrameworkId::kPyTorch,
                      em::ModelId::kResNet18, eh::DeviceId::kRpi3);
    // TF's base_layer machinery is orders of magnitude above
    // PyTorch's dynamic construction (Fig. 5a vs 5b).
    EXPECT_GT(tf.graphConstructionMs(),
              20.0 * pt.graphConstructionMs());
}

TEST(RuntimeTest, WeightUploadOnlyOnGpuLikeUnits)
{
    auto cpu = session(ef::FrameworkId::kTensorFlow,
                       em::ModelId::kResNet18, eh::DeviceId::kRpi3);
    EXPECT_DOUBLE_EQ(cpu.weightUploadMs(), 0.0);
    auto gpu = session(ef::FrameworkId::kPyTorch,
                       em::ModelId::kResNet18,
                       eh::DeviceId::kJetsonTx2);
    EXPECT_GT(gpu.weightUploadMs(), 0.0);
}

TEST(RuntimeTest, ProfileFractionsSumToOne)
{
    auto s = session(ef::FrameworkId::kPyTorch,
                     em::ModelId::kResNet18, eh::DeviceId::kJetsonTx2);
    const auto rep = s.profileRun(1000);
    double total_fraction = 0.0;
    for (auto p : {ef::Phase::kLibraryLoading,
                   ef::Phase::kGraphConstruction,
                   ef::Phase::kWeightInit, ef::Phase::kDataTransfer,
                   ef::Phase::kCompute,
                   ef::Phase::kSessionManagement})
        total_fraction += rep.fraction(p);
    EXPECT_NEAR(total_fraction, 1.0, 1e-9);
    EXPECT_GT(rep.totalMs(), 0.0);
}

TEST(RuntimeTest, Fig5aRpiPyTorchIsComputeDominated)
{
    // Fig. 5a: PyTorch on RPi spends ~96% in compute-related
    // functions, with conv2d ~81% of the program.
    auto s = session(ef::FrameworkId::kPyTorch,
                     em::ModelId::kResNet18, eh::DeviceId::kRpi3);
    const auto rep = s.profileRun(30);
    EXPECT_GT(rep.fraction(ef::Phase::kCompute), 0.75);
    EXPECT_LT(rep.fraction(ef::Phase::kGraphConstruction), 0.10);
    EXPECT_DOUBLE_EQ(rep.fraction(ef::Phase::kDataTransfer), 0.0);
}

TEST(RuntimeTest, Fig5bRpiTensorFlowGraphSetupDominates)
{
    // Fig. 5b: base_layer = 50.7%, RunCallable = 12.8% over 30
    // inferences.
    auto s = session(ef::FrameworkId::kTensorFlow,
                     em::ModelId::kResNet18, eh::DeviceId::kRpi3);
    const auto rep = s.profileRun(30);
    EXPECT_GT(rep.fraction(ef::Phase::kGraphConstruction), 0.30);
    EXPECT_GT(rep.fraction(ef::Phase::kLibraryLoading), 0.05);
    // Graph setup exceeds the compute share at this loop count.
    EXPECT_GT(rep.fraction(ef::Phase::kGraphConstruction),
              rep.fraction(ef::Phase::kCompute));
}

TEST(RuntimeTest, Fig5cTx2PyTorchTransferBecomesVisible)
{
    // Fig. 5c: on the GPU the tensor-transfer phase
    // (_C._TensorBase.to()) is a major share.
    auto s = session(ef::FrameworkId::kPyTorch,
                     em::ModelId::kResNet18, eh::DeviceId::kJetsonTx2);
    const auto rep = s.profileRun(1000);
    EXPECT_GT(rep.fraction(ef::Phase::kDataTransfer), 0.15);
    // And compute share drops vs. the RPi (GPU is fast).
    auto rpi = session(ef::FrameworkId::kPyTorch,
                       em::ModelId::kResNet18, eh::DeviceId::kRpi3);
    EXPECT_LT(rep.fraction(ef::Phase::kCompute),
              rpi.profileRun(1000).fraction(ef::Phase::kCompute));
}

TEST(RuntimeTest, Fig5dTx2TensorFlowSplitsSetupAndSession)
{
    // Fig. 5d: base_layer 38.2% and RunCallable 34.3%.
    auto s = session(ef::FrameworkId::kTensorFlow,
                     em::ModelId::kResNet18, eh::DeviceId::kJetsonTx2);
    const auto rep = s.profileRun(1000);
    EXPECT_GT(rep.fraction(ef::Phase::kGraphConstruction), 0.15);
    EXPECT_GT(rep.fraction(ef::Phase::kSessionManagement), 0.10);
}

TEST(RuntimeTest, PhaseLabelsMatchPaperVocabulary)
{
    auto s = session(ef::FrameworkId::kPyTorch,
                     em::ModelId::kResNet18, eh::DeviceId::kJetsonTx2);
    const auto rep = s.profileRun(10);
    bool saw_to = false, saw_conv = false, saw_import = false;
    for (const auto& sample : rep.samples) {
        saw_to |= (sample.label == "_C._TensorBase.to()");
        saw_conv |= (sample.label == "conv2d");
        saw_import |= (sample.label == "<built-in import>");
    }
    EXPECT_TRUE(saw_to);
    EXPECT_TRUE(saw_conv);
    EXPECT_TRUE(saw_import);
}

TEST(RuntimeTest, PhaseNamesAreStable)
{
    EXPECT_EQ(ef::phaseName(ef::Phase::kCompute), "compute");
    EXPECT_EQ(ef::phaseName(ef::Phase::kLibraryLoading),
              "library_loading");
}
