/**
 * @file
 * Deployment tests: the Table V compatibility matrix must reproduce
 * the paper exactly, and best-framework selection must follow the
 * Fig. 2 methodology.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "edgebench/frameworks/deploy.hh"

namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;

namespace
{

using ef::DeployMark;
using MarkCase = std::tuple<em::ModelId, eh::DeviceId, DeployMark>;

/** Table V of the paper, transcribed. */
const MarkCase kTableV[] = {
    // ResNet-18: OK everywhere except the EdgeTPU conversion barrier.
    {em::ModelId::kResNet18, eh::DeviceId::kRpi3, DeployMark::kOk},
    {em::ModelId::kResNet18, eh::DeviceId::kJetsonTx2, DeployMark::kOk},
    {em::ModelId::kResNet18, eh::DeviceId::kJetsonNano,
     DeployMark::kOk},
    {em::ModelId::kResNet18, eh::DeviceId::kEdgeTpu,
     DeployMark::kConversionBarrier},
    {em::ModelId::kResNet18, eh::DeviceId::kMovidius, DeployMark::kOk},
    {em::ModelId::kResNet18, eh::DeviceId::kPynqZ1, DeployMark::kOk},
    // ResNet-50.
    {em::ModelId::kResNet50, eh::DeviceId::kRpi3, DeployMark::kOk},
    {em::ModelId::kResNet50, eh::DeviceId::kEdgeTpu, DeployMark::kOk},
    {em::ModelId::kResNet50, eh::DeviceId::kPynqZ1,
     DeployMark::kBramSpill},
    // MobileNet-v2.
    {em::ModelId::kMobileNetV2, eh::DeviceId::kRpi3, DeployMark::kOk},
    {em::ModelId::kMobileNetV2, eh::DeviceId::kEdgeTpu,
     DeployMark::kOk},
    {em::ModelId::kMobileNetV2, eh::DeviceId::kMovidius,
     DeployMark::kOk},
    {em::ModelId::kMobileNetV2, eh::DeviceId::kPynqZ1,
     DeployMark::kBramSpill},
    // Inception-v4.
    {em::ModelId::kInceptionV4, eh::DeviceId::kRpi3, DeployMark::kOk},
    {em::ModelId::kInceptionV4, eh::DeviceId::kEdgeTpu,
     DeployMark::kOk},
    // AlexNet: RPi dynamic-graph fallback; EdgeTPU barrier.
    {em::ModelId::kAlexNet, eh::DeviceId::kRpi3,
     DeployMark::kDynamicSwap},
    {em::ModelId::kAlexNet, eh::DeviceId::kJetsonTx2, DeployMark::kOk},
    {em::ModelId::kAlexNet, eh::DeviceId::kEdgeTpu,
     DeployMark::kConversionBarrier},
    {em::ModelId::kAlexNet, eh::DeviceId::kMovidius, DeployMark::kOk},
    // VGG16.
    {em::ModelId::kVgg16, eh::DeviceId::kRpi3,
     DeployMark::kDynamicSwap},
    {em::ModelId::kVgg16, eh::DeviceId::kJetsonTx2, DeployMark::kOk},
    {em::ModelId::kVgg16, eh::DeviceId::kEdgeTpu, DeployMark::kOk},
    {em::ModelId::kVgg16, eh::DeviceId::kMovidius, DeployMark::kOk},
    // SSD MobileNet-v1: code incompatibility on the RPi.
    {em::ModelId::kSsdMobileNetV1, eh::DeviceId::kRpi3,
     DeployMark::kCodeIncompat},
    {em::ModelId::kSsdMobileNetV1, eh::DeviceId::kJetsonTx2,
     DeployMark::kOk},
    {em::ModelId::kSsdMobileNetV1, eh::DeviceId::kEdgeTpu,
     DeployMark::kOk},
    {em::ModelId::kSsdMobileNetV1, eh::DeviceId::kMovidius,
     DeployMark::kOk},
    // TinyYolo.
    {em::ModelId::kTinyYolo, eh::DeviceId::kRpi3, DeployMark::kOk},
    {em::ModelId::kTinyYolo, eh::DeviceId::kEdgeTpu,
     DeployMark::kConversionBarrier},
    {em::ModelId::kTinyYolo, eh::DeviceId::kMovidius, DeployMark::kOk},
    // C3D: RPi swap, EdgeTPU barrier, Movidius code incompatibility
    // (paper Section VI-A: "C3D on Movidius, marked with O").
    {em::ModelId::kC3d, eh::DeviceId::kRpi3,
     DeployMark::kDynamicSwap},
    {em::ModelId::kC3d, eh::DeviceId::kJetsonTx2, DeployMark::kOk},
    {em::ModelId::kC3d, eh::DeviceId::kJetsonNano, DeployMark::kOk},
    {em::ModelId::kC3d, eh::DeviceId::kEdgeTpu,
     DeployMark::kConversionBarrier},
    {em::ModelId::kC3d, eh::DeviceId::kMovidius,
     DeployMark::kCodeIncompat},
    {em::ModelId::kC3d, eh::DeviceId::kPynqZ1, DeployMark::kBramSpill},
};

} // namespace

class TableVMatrix : public ::testing::TestWithParam<MarkCase>
{
};

TEST_P(TableVMatrix, MarkMatchesPaper)
{
    const auto [model, device, expected] = GetParam();
    EXPECT_EQ(ef::deploymentMark(model, device), expected)
        << em::modelInfo(model).name << " on "
        << eh::deviceName(device);
}

INSTANTIATE_TEST_SUITE_P(
    Paper, TableVMatrix, ::testing::ValuesIn(kTableV),
    [](const ::testing::TestParamInfo<MarkCase>& pi) {
        std::string n =
            em::modelInfo(std::get<0>(pi.param)).name + "_on_" +
            eh::deviceName(std::get<1>(pi.param));
        for (auto& c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(MarkSymbolTest, SymbolsAreStable)
{
    EXPECT_EQ(ef::markSymbol(DeployMark::kOk), "OK");
    EXPECT_EQ(ef::markSymbol(DeployMark::kDynamicSwap), "^");
    EXPECT_EQ(ef::markSymbol(DeployMark::kCodeIncompat), "O");
    EXPECT_EQ(ef::markSymbol(DeployMark::kConversionBarrier), "4");
    EXPECT_EQ(ef::markSymbol(DeployMark::kBramSpill), "^^");
}

TEST(BestDeploymentTest, PicksFastestRunnableFramework)
{
    // On the Jetson Nano, TensorRT beats PyTorch (Fig. 7).
    const auto g = em::buildResNet(50);
    auto best = ef::bestDeployment(g, eh::DeviceId::kJetsonNano);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->framework, ef::FrameworkId::kTensorRt);
}

TEST(BestDeploymentTest, SkipsIncompatibleFrameworks)
{
    // SSD cannot run on the RPi with any framework.
    const auto g = em::buildSsdMobileNetV1();
    EXPECT_FALSE(
        ef::bestDeployment(g, eh::DeviceId::kRpi3).has_value());
}

TEST(BestDeploymentTest, EveryEdgeDeviceRunsMobileNetV2)
{
    const auto g = em::buildMobileNetV2();
    for (auto d : eh::edgeDevices()) {
        if (d == eh::DeviceId::kPynqZ1)
            continue; // outside the VTA/FINN compilable subset
        auto best = ef::bestDeployment(g, d);
        EXPECT_TRUE(best.has_value()) << eh::deviceName(d);
        if (best)
            EXPECT_GT(best->model.latencyMs(), 0.0);
    }
}

TEST(TryDeployTest, ReportsSwapMark)
{
    const auto g = em::buildVgg(16);
    auto d = ef::tryDeploy(ef::FrameworkId::kPyTorch, g,
                           eh::DeviceId::kRpi3);
    ASSERT_TRUE(d.has_value());
    EXPECT_EQ(d->mark, DeployMark::kDynamicSwap);
}

TEST(TryDeployTest, ReturnsNulloptOnFailure)
{
    const auto g = em::buildVgg(16);
    EXPECT_FALSE(ef::tryDeploy(ef::FrameworkId::kTensorFlow, g,
                               eh::DeviceId::kRpi3)
                     .has_value());
    EXPECT_FALSE(ef::tryDeploy(ef::FrameworkId::kTensorRt, g,
                               eh::DeviceId::kRpi3)
                     .has_value());
}
