/**
 * @file
 * Calibration-anchor regression tests: every latency point the paper
 * publishes that we calibrate against must stay within a bounded
 * factor of the paper's value. This pins the cost model against
 * accidental drift when profiles or device specs change.
 *
 * Bands are deliberately wide (the substrate is a simulator, and a
 * few of the paper's own numbers are self-inconsistent — see
 * EXPERIMENTS.md); the *orderings* are tested tightly in
 * test_paper_claims.cc.
 */

#include <tuple>

#include <gtest/gtest.h>

#include "edgebench/frameworks/deploy.hh"

namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;

namespace
{

struct Anchor
{
    const char* what;
    ef::FrameworkId fw;
    em::ModelId model;
    eh::DeviceId device;
    double paperMs;
    double band; // measured/paper must lie in [1/band, band]
};

const Anchor kAnchors[] = {
    // Fig. 8 (RPi, seconds -> ms).
    {"rpi_pt_resnet18", ef::FrameworkId::kPyTorch,
     em::ModelId::kResNet18, eh::DeviceId::kRpi3, 6570, 2.0},
    {"rpi_pt_resnet50", ef::FrameworkId::kPyTorch,
     em::ModelId::kResNet50, eh::DeviceId::kRpi3, 8300, 2.0},
    {"rpi_pt_mobilenetv2", ef::FrameworkId::kPyTorch,
     em::ModelId::kMobileNetV2, eh::DeviceId::kRpi3, 8280, 3.0},
    {"rpi_pt_inceptionv4", ef::FrameworkId::kPyTorch,
     em::ModelId::kInceptionV4, eh::DeviceId::kRpi3, 13840, 3.0},
    {"rpi_tf_resnet18", ef::FrameworkId::kTensorFlow,
     em::ModelId::kResNet18, eh::DeviceId::kRpi3, 990, 1.5},
    {"rpi_tf_resnet50", ef::FrameworkId::kTensorFlow,
     em::ModelId::kResNet50, eh::DeviceId::kRpi3, 3060, 1.5},
    {"rpi_tf_mobilenetv2", ef::FrameworkId::kTensorFlow,
     em::ModelId::kMobileNetV2, eh::DeviceId::kRpi3, 1400, 2.5},
    {"rpi_tf_inceptionv4", ef::FrameworkId::kTensorFlow,
     em::ModelId::kInceptionV4, eh::DeviceId::kRpi3, 8870, 1.5},
    {"rpi_tflite_resnet18", ef::FrameworkId::kTfLite,
     em::ModelId::kResNet18, eh::DeviceId::kRpi3, 870, 1.5},
    {"rpi_tflite_resnet50", ef::FrameworkId::kTfLite,
     em::ModelId::kResNet50, eh::DeviceId::kRpi3, 2460, 1.5},
    {"rpi_tflite_inceptionv4", ef::FrameworkId::kTfLite,
     em::ModelId::kInceptionV4, eh::DeviceId::kRpi3, 5510, 1.5},
    // Fig. 2 (Jetson TX2, PyTorch).
    {"tx2_pt_resnet18", ef::FrameworkId::kPyTorch,
     em::ModelId::kResNet18, eh::DeviceId::kJetsonTx2, 26.5, 1.6},
    {"tx2_pt_resnet50", ef::FrameworkId::kPyTorch,
     em::ModelId::kResNet50, eh::DeviceId::kJetsonTx2, 54.3, 1.6},
    {"tx2_pt_mobilenetv2", ef::FrameworkId::kPyTorch,
     em::ModelId::kMobileNetV2, eh::DeviceId::kJetsonTx2, 40.1, 2.0},
    {"tx2_pt_inceptionv4", ef::FrameworkId::kPyTorch,
     em::ModelId::kInceptionV4, eh::DeviceId::kJetsonTx2, 106.2, 2.0},
    {"tx2_pt_vgg16", ef::FrameworkId::kPyTorch, em::ModelId::kVgg16,
     eh::DeviceId::kJetsonTx2, 87.7, 1.6},
    {"tx2_pt_c3d", ef::FrameworkId::kPyTorch, em::ModelId::kC3d,
     eh::DeviceId::kJetsonTx2, 196.8, 1.6},
    // Fig. 7 (Jetson Nano).
    {"nano_trt_resnet18", ef::FrameworkId::kTensorRt,
     em::ModelId::kResNet18, eh::DeviceId::kJetsonNano, 23, 1.5},
    {"nano_trt_resnet50", ef::FrameworkId::kTensorRt,
     em::ModelId::kResNet50, eh::DeviceId::kJetsonNano, 32, 1.6},
    {"nano_trt_inceptionv4", ef::FrameworkId::kTensorRt,
     em::ModelId::kInceptionV4, eh::DeviceId::kJetsonNano, 95, 1.5},
    {"nano_trt_vgg16", ef::FrameworkId::kTensorRt,
     em::ModelId::kVgg16, eh::DeviceId::kJetsonNano, 92, 2.0},
    {"nano_trt_c3d", ef::FrameworkId::kTensorRt, em::ModelId::kC3d,
     eh::DeviceId::kJetsonNano, 229, 1.5},
    {"nano_pt_resnet18", ef::FrameworkId::kPyTorch,
     em::ModelId::kResNet18, eh::DeviceId::kJetsonNano, 141.3, 2.0},
    {"nano_pt_resnet50", ef::FrameworkId::kPyTorch,
     em::ModelId::kResNet50, eh::DeviceId::kJetsonNano, 215.0, 1.6},
    {"nano_pt_mobilenetv2", ef::FrameworkId::kPyTorch,
     em::ModelId::kMobileNetV2, eh::DeviceId::kJetsonNano, 118.4,
     1.6},
    {"nano_pt_c3d", ef::FrameworkId::kPyTorch, em::ModelId::kC3d,
     eh::DeviceId::kJetsonNano, 555.4, 1.6},
    // Fig. 2 accelerators.
    {"edgetpu_tflite_mobilenetv2", ef::FrameworkId::kTfLite,
     em::ModelId::kMobileNetV2, eh::DeviceId::kEdgeTpu, 2.9, 2.0},
    {"movidius_mobilenetv2", ef::FrameworkId::kMovidiusNcsdk,
     em::ModelId::kMobileNetV2, eh::DeviceId::kMovidius, 51, 1.6},
    {"movidius_resnet50", ef::FrameworkId::kMovidiusNcsdk,
     em::ModelId::kResNet50, eh::DeviceId::kMovidius, 101.9, 2.0},
    {"movidius_inceptionv4", ef::FrameworkId::kMovidiusNcsdk,
     em::ModelId::kInceptionV4, eh::DeviceId::kMovidius, 632.6, 1.8},
    {"pynq_tvm_resnet18", ef::FrameworkId::kTvmVta,
     em::ModelId::kResNet18, eh::DeviceId::kPynqZ1, 600, 2.0},
    // Fig. 9 (HPC, PyTorch).
    {"xeon_pt_resnet50", ef::FrameworkId::kPyTorch,
     em::ModelId::kResNet50, eh::DeviceId::kXeon, 110, 2.2},
    {"xeon_pt_vgg16", ef::FrameworkId::kPyTorch, em::ModelId::kVgg16,
     eh::DeviceId::kXeon, 90, 1.6},
    {"gtx_pt_resnet50", ef::FrameworkId::kPyTorch,
     em::ModelId::kResNet50, eh::DeviceId::kGtxTitanX, 20, 2.2},
    {"gtx_pt_vgg16", ef::FrameworkId::kPyTorch, em::ModelId::kVgg16,
     eh::DeviceId::kGtxTitanX, 12, 1.6},
};

} // namespace

class CalibrationAnchors : public ::testing::TestWithParam<Anchor>
{
};

TEST_P(CalibrationAnchors, WithinBandOfPaperValue)
{
    const auto& a = GetParam();
    auto dep = ef::tryDeploy(a.fw, em::buildModel(a.model), a.device);
    ASSERT_TRUE(dep.has_value()) << a.what;
    const double ratio = dep->model.latencyMs() / a.paperMs;
    EXPECT_GE(ratio, 1.0 / a.band) << a.what;
    EXPECT_LE(ratio, a.band) << a.what;
}

INSTANTIATE_TEST_SUITE_P(
    Paper, CalibrationAnchors, ::testing::ValuesIn(kAnchors),
    [](const ::testing::TestParamInfo<Anchor>& pi) {
        return std::string(pi.param.what);
    });
