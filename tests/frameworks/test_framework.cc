/**
 * @file
 * Tests for the framework registry (Table II) and the compile
 * pipeline policies.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/framework.hh"
#include "edgebench/models/zoo.hh"

namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;
namespace eg = edgebench::graph;
using edgebench::CompatibilityError;
using edgebench::InvalidArgumentError;
using edgebench::MemoryCapacityError;

TEST(FrameworkRegistryTest, TenFrameworksRegistered)
{
    EXPECT_EQ(ef::allFrameworks().size(), 10u);
    for (auto id : ef::allFrameworks())
        EXPECT_EQ(ef::frameworkByName(ef::frameworkName(id)), id);
    EXPECT_THROW(ef::frameworkByName("Theano"), InvalidArgumentError);
}

TEST(FrameworkRegistryTest, TableIITraitRows)
{
    // Spot-check Table II entries.
    const auto& tf = ef::framework(ef::FrameworkId::kTensorFlow);
    EXPECT_TRUE(tf.traits().industryBacked);
    EXPECT_TRUE(tf.traits().trainingFramework);
    EXPECT_FALSE(tf.traits().dynamicGraph);
    EXPECT_TRUE(tf.traits().quantization);
    EXPECT_FALSE(tf.traits().autoTuning);

    const auto& pt = ef::framework(ef::FrameworkId::kPyTorch);
    EXPECT_TRUE(pt.traits().dynamicGraph);
    EXPECT_FALSE(pt.traits().fusion);
    EXPECT_FALSE(pt.traits().pruningExploit);

    const auto& trt = ef::framework(ef::FrameworkId::kTensorRt);
    EXPECT_TRUE(trt.traits().mixedPrecision);
    EXPECT_TRUE(trt.traits().autoTuning);
    EXPECT_TRUE(trt.traits().fusion);
    EXPECT_TRUE(trt.traits().dynamicGraph);

    const auto& dn = ef::framework(ef::FrameworkId::kDarkNet);
    EXPECT_EQ(dn.traits().language, "C");
    EXPECT_FALSE(dn.traits().industryBacked);
    EXPECT_FALSE(dn.traits().quantization);
    EXPECT_FALSE(dn.traits().halfPrecision);

    const auto& tflite = ef::framework(ef::FrameworkId::kTfLite);
    EXPECT_TRUE(tflite.traits().mobileDeployment);
    EXPECT_FALSE(tflite.traits().noExtraSteps);
    EXPECT_TRUE(tflite.traits().fusion);
}

TEST(FrameworkSupportTest, AcceleratorsAreCaptive)
{
    using ef::FrameworkId;
    using eh::DeviceId;
    // EdgeTPU: TFLite only.
    auto on_edgetpu = ef::frameworksFor(DeviceId::kEdgeTpu);
    ASSERT_EQ(on_edgetpu.size(), 1u);
    EXPECT_EQ(on_edgetpu[0], FrameworkId::kTfLite);
    // Movidius: NCSDK only.
    auto on_ncs = ef::frameworksFor(DeviceId::kMovidius);
    ASSERT_EQ(on_ncs.size(), 1u);
    EXPECT_EQ(on_ncs[0], FrameworkId::kMovidiusNcsdk);
    // PYNQ: the two FPGA stacks.
    auto on_pynq = ef::frameworksFor(DeviceId::kPynqZ1);
    EXPECT_EQ(on_pynq.size(), 2u);
    // TensorRT only targets Nvidia GPUs.
    const auto& trt = ef::framework(FrameworkId::kTensorRt);
    EXPECT_TRUE(trt.supportsDevice(DeviceId::kJetsonNano));
    EXPECT_TRUE(trt.supportsDevice(DeviceId::kGtxTitanX));
    EXPECT_FALSE(trt.supportsDevice(DeviceId::kRpi3));
    EXPECT_FALSE(trt.supportsDevice(DeviceId::kXeon));
    // General-purpose frameworks run on CPU/GPU platforms.
    const auto& pt = ef::framework(FrameworkId::kPyTorch);
    for (auto d : {DeviceId::kRpi3, DeviceId::kJetsonTx2,
                   DeviceId::kXeon, DeviceId::kTitanXp})
        EXPECT_TRUE(pt.supportsDevice(d));
    EXPECT_FALSE(pt.supportsDevice(DeviceId::kEdgeTpu));
}

TEST(CompileTest, UnsupportedDeviceThrows)
{
    const auto g = em::buildCifarNet();
    EXPECT_THROW(ef::framework(ef::FrameworkId::kPyTorch)
                     .compile(g, eh::DeviceId::kEdgeTpu),
                 CompatibilityError);
}

TEST(CompileTest, EdgeTpuForcesInt8Quantization)
{
    const auto g = em::buildMobileNetV2();
    auto m = ef::framework(ef::FrameworkId::kTfLite)
                 .compile(g, eh::DeviceId::kEdgeTpu);
    bool saw_int8_conv = false;
    for (const auto& n : m.graph.nodes()) {
        if (n.kind == eg::OpKind::kFusedConvBnAct)
            saw_int8_conv |=
                (n.dtype == edgebench::core::DType::kI8);
    }
    EXPECT_TRUE(saw_int8_conv);
    EXPECT_EQ(m.unit, eh::UnitKind::kAccelerator);
}

TEST(CompileTest, TensorRtDefaultsToFp16WithFusion)
{
    const auto g = em::buildResNet(18);
    auto m = ef::framework(ef::FrameworkId::kTensorRt)
                 .compile(g, eh::DeviceId::kJetsonNano);
    std::int64_t fused = 0;
    for (const auto& n : m.graph.nodes()) {
        if (n.kind == eg::OpKind::kFusedConvBnAct) {
            ++fused;
            EXPECT_EQ(n.dtype, edgebench::core::DType::kF16);
        }
        EXPECT_NE(n.kind, eg::OpKind::kBatchNorm)
            << "fusion must remove standalone batch norms";
    }
    EXPECT_GT(fused, 15);
}

TEST(CompileTest, PyTorchDoesNotFuse)
{
    const auto g = em::buildResNet(18);
    auto m = ef::framework(ef::FrameworkId::kPyTorch)
                 .compile(g, eh::DeviceId::kJetsonTx2);
    for (const auto& n : m.graph.nodes())
        EXPECT_NE(n.kind, eg::OpKind::kFusedConvBnAct);
}

TEST(CompileTest, DarkNetRejectsFp16Request)
{
    const auto g = em::buildTinyYolo();
    ef::CompileOptions opts;
    opts.useFp16 = true;
    EXPECT_THROW(ef::framework(ef::FrameworkId::kDarkNet)
                     .compile(g, eh::DeviceId::kJetsonTx2, opts),
                 InvalidArgumentError);
}

TEST(CompileTest, QuantizationRequestRespectsTraits)
{
    const auto g = em::buildCifarNet();
    ef::CompileOptions opts;
    opts.quantizeInt8 = true;
    // TensorFlow implements quantization.
    auto m = ef::framework(ef::FrameworkId::kTensorFlow)
                 .compile(g, eh::DeviceId::kXeon, opts);
    bool saw = false;
    for (const auto& n : m.graph.nodes())
        saw |= (n.dtype == edgebench::core::DType::kI8);
    EXPECT_TRUE(saw);
    // DarkNet does not.
    EXPECT_THROW(ef::framework(ef::FrameworkId::kDarkNet)
                     .compile(g, eh::DeviceId::kXeon, opts),
                 InvalidArgumentError);
}

TEST(CompileTest, PruneOptionAnnotatesSparsity)
{
    const auto g = em::buildCifarNet();
    ef::CompileOptions opts;
    opts.pruneFraction = 0.6;
    auto m = ef::framework(ef::FrameworkId::kTensorFlow)
                 .compile(g, eh::DeviceId::kXeon, opts);
    bool saw = false;
    for (const auto& n : m.graph.nodes())
        if (n.kind == eg::OpKind::kFusedConvBnAct ||
            n.kind == eg::OpKind::kConv2d ||
            n.kind == eg::OpKind::kDense)
            saw |= (n.weightSparsity == 0.6);
    EXPECT_TRUE(saw);
    EXPECT_TRUE(m.profile.exploitsSparsity);
}

TEST(CompileTest, StaticGraphOutOfMemoryThrows)
{
    // VGG16 (553 MB fp32) x TF's 2.2x overhead >> RPi's usable RAM.
    const auto g = em::buildVgg(16);
    EXPECT_THROW(ef::framework(ef::FrameworkId::kTensorFlow)
                     .compile(g, eh::DeviceId::kRpi3),
                 MemoryCapacityError);
}

TEST(CompileTest, DynamicGraphFallsBackToSwap)
{
    const auto g = em::buildVgg(16);
    auto m = ef::framework(ef::FrameworkId::kPyTorch)
                 .compile(g, eh::DeviceId::kRpi3);
    EXPECT_TRUE(m.usedDynamicGraphFallback);
    EXPECT_GT(m.swapFactor, 5.0);
    // The paper reports an order-of-magnitude hit for these cases.
    auto small = ef::framework(ef::FrameworkId::kPyTorch)
                     .compile(em::buildResNet(18), eh::DeviceId::kRpi3);
    EXPECT_DOUBLE_EQ(small.swapFactor, 1.0);
    EXPECT_GT(m.latencyMs() / g.stats().macs * 1e9,
              small.latencyMs() / em::buildResNet(18).stats().macs *
                  1e9 * 3.0);
}

TEST(CompileTest, SsdOnRpiIsCodeIncompatible)
{
    const auto g = em::buildSsdMobileNetV1();
    EXPECT_THROW(ef::framework(ef::FrameworkId::kTensorFlow)
                     .compile(g, eh::DeviceId::kRpi3),
                 CompatibilityError);
}

TEST(CompileTest, NcsdkRejectsConv3d)
{
    const auto g = em::buildC3d();
    EXPECT_THROW(ef::framework(ef::FrameworkId::kMovidiusNcsdk)
                     .compile(g, eh::DeviceId::kMovidius),
                 CompatibilityError);
}

TEST(CompileTest, EdgeTpuConversionBarriers)
{
    using ef::FrameworkId;
    const auto& tflite = ef::framework(FrameworkId::kTfLite);
    // TinyYolo: YOLO head has no quantized support.
    EXPECT_THROW(tflite.compile(em::buildTinyYolo(),
                                eh::DeviceId::kEdgeTpu),
                 CompatibilityError);
    // AlexNet: partially grouped convolutions.
    EXPECT_THROW(tflite.compile(em::buildAlexNet(),
                                eh::DeviceId::kEdgeTpu),
                 CompatibilityError);
    // C3D: conv3d.
    EXPECT_THROW(tflite.compile(em::buildC3d(),
                                eh::DeviceId::kEdgeTpu),
                 CompatibilityError);
    // ResNet-18: the paper's QAT-checkpoint barrier.
    EXPECT_THROW(tflite.compile(em::buildResNet(18),
                                eh::DeviceId::kEdgeTpu),
                 CompatibilityError);
    // ResNet-50 converts fine.
    EXPECT_NO_THROW(tflite.compile(em::buildResNet(50),
                                   eh::DeviceId::kEdgeTpu));
}

TEST(CompileTest, PynqOnlyCompilesSmallModels)
{
    const auto& tvm = ef::framework(ef::FrameworkId::kTvmVta);
    EXPECT_NO_THROW(tvm.compile(em::buildResNet(18),
                                eh::DeviceId::kPynqZ1));
    EXPECT_NO_THROW(tvm.compile(em::buildCifarNet(),
                                eh::DeviceId::kPynqZ1));
    EXPECT_THROW(tvm.compile(em::buildResNet(50),
                             eh::DeviceId::kPynqZ1),
                 CompatibilityError);
}

TEST(CompileTest, UnitSelectionFollowsDeviceClass)
{
    const auto g = em::buildCifarNet();
    EXPECT_EQ(ef::framework(ef::FrameworkId::kPyTorch)
                  .compile(g, eh::DeviceId::kRpi3).unit,
              eh::UnitKind::kCpu);
    EXPECT_EQ(ef::framework(ef::FrameworkId::kPyTorch)
                  .compile(g, eh::DeviceId::kJetsonTx2).unit,
              eh::UnitKind::kGpu);
    EXPECT_EQ(ef::framework(ef::FrameworkId::kMovidiusNcsdk)
                  .compile(g, eh::DeviceId::kMovidius).unit,
              eh::UnitKind::kAccelerator);
    EXPECT_EQ(ef::framework(ef::FrameworkId::kPyTorch)
                  .compile(g, eh::DeviceId::kXeon).unit,
              eh::UnitKind::kCpu);
}

TEST(KerasTest, InterchangeableWithTensorFlow)
{
    // Paper Section III-A: "we use Keras and TensorFlow
    // implementations interchangeably" — Keras drives the TF engine
    // through a thin API layer, so latency tracks TF within a small
    // constant overhead.
    const auto g = em::buildResNet(50);
    for (auto d : {eh::DeviceId::kRpi3, eh::DeviceId::kJetsonTx2,
                   eh::DeviceId::kXeon}) {
        const auto keras = ef::framework(ef::FrameworkId::kKeras)
                               .compile(g, d).latencyMs();
        const auto tf = ef::framework(ef::FrameworkId::kTensorFlow)
                            .compile(g, d).latencyMs();
        EXPECT_GE(keras, tf) << eh::deviceName(d);
        EXPECT_LE(keras, tf * 1.3) << eh::deviceName(d);
    }
    // Same device support surface as TensorFlow.
    for (auto d : eh::allDevices())
        EXPECT_EQ(ef::framework(ef::FrameworkId::kKeras)
                      .supportsDevice(d),
                  ef::framework(ef::FrameworkId::kTensorFlow)
                      .supportsDevice(d))
            << eh::deviceName(d);
}

TEST(EngineProfileTest, UnsupportedPairThrows)
{
    EXPECT_THROW(ef::engineProfile(ef::FrameworkId::kTensorRt,
                                   eh::DeviceId::kRpi3),
                 InvalidArgumentError);
}

TEST(EngineProfileTest, AllSupportedPairsHaveValidProfiles)
{
    for (auto d : eh::allDevices()) {
        for (auto fw : ef::frameworksFor(d)) {
            const auto p = ef::engineProfile(fw, d);
            EXPECT_GT(p.computeEfficiency, 0.0);
            EXPECT_LE(p.computeEfficiency, 1.0);
            EXPECT_GT(p.memoryEfficiency, 0.0);
            EXPECT_LE(p.memoryEfficiency, 1.0);
            EXPECT_GE(p.perOpOverheadMs, 0.0);
            EXPECT_GE(p.perInferenceOverheadMs, 0.0);
        }
    }
}
