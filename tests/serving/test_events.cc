/**
 * @file
 * Tests for the discrete-event core: time ordering, deterministic
 * FIFO tie-breaking, and input validation.
 */

#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/serving/events.hh"

namespace es = edgebench::serving;

TEST(EventQueueTest, PopsInTimeOrder)
{
    es::EventQueue q;
    for (double t : {5.0, 1.0, 3.0, 2.0, 4.0})
        q.push({t, es::EventKind::kArrival, -1, -1});
    ASSERT_EQ(q.size(), 5u);
    double prev = -1.0;
    while (!q.empty()) {
        const auto e = q.pop();
        EXPECT_GT(e.timeS, prev);
        prev = e.timeS;
    }
}

TEST(EventQueueTest, SimultaneousEventsPopInInsertionOrder)
{
    // Equal timestamps must be FIFO: the secondary sequence key is
    // what makes fleet runs bit-reproducible.
    es::EventQueue q;
    for (std::int64_t id = 0; id < 32; ++id)
        q.push({1.0, es::EventKind::kRetry, -1, id});
    // Interleave an earlier and later event to exercise the heap.
    q.push({0.5, es::EventKind::kArrival, -1, 100});
    q.push({2.0, es::EventKind::kServiceDone, 3, 101});

    EXPECT_EQ(q.pop().requestId, 100);
    for (std::int64_t id = 0; id < 32; ++id) {
        const auto e = q.pop();
        EXPECT_EQ(e.timeS, 1.0);
        EXPECT_EQ(e.requestId, id);
    }
    const auto last = q.pop();
    EXPECT_EQ(last.requestId, 101);
    EXPECT_EQ(last.replica, 3);
    EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, TopPeeksWithoutRemoving)
{
    es::EventQueue q;
    q.push({2.0, es::EventKind::kArrival, -1, 1});
    q.push({1.0, es::EventKind::kArrival, -1, 2});
    EXPECT_EQ(q.top().requestId, 2);
    EXPECT_EQ(q.size(), 2u);
    q.pop();
    EXPECT_EQ(q.top().requestId, 1);
}

TEST(EventQueueTest, RejectsInvalidTimes)
{
    es::EventQueue q;
    EXPECT_THROW(q.push({-1.0, es::EventKind::kArrival, -1, -1}),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(
        q.push({std::numeric_limits<double>::quiet_NaN(),
                es::EventKind::kArrival, -1, -1}),
        edgebench::InvalidArgumentError);
    EXPECT_THROW(
        q.push({std::numeric_limits<double>::infinity(),
                es::EventKind::kArrival, -1, -1}),
        edgebench::InvalidArgumentError);
    EXPECT_TRUE(q.empty());
}
