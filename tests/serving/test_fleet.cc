/**
 * @file
 * Tests for the multi-replica fleet simulator: throughput scaling,
 * bounded-queue admission, drop/retry policies, balancers,
 * micro-batching, heterogeneous fleets with replica death, and the
 * accounting invariant `offered == served + dropped + inFlight` on
 * every report.
 */

#include <gtest/gtest.h>

#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/serving/fleet.hh"

namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;
namespace es = edgebench::serving;

namespace
{

ef::InferenceSession
deploy(em::ModelId m, eh::DeviceId d,
       ef::FrameworkId fw = ef::FrameworkId::kPyTorch)
{
    auto dep = ef::tryDeploy(fw, em::buildModel(m), d);
    EB_CHECK(dep.has_value(), "test deployment failed");
    return ef::InferenceSession(std::move(dep->model));
}

void
expectAccounting(const es::FleetReport& rep)
{
    EXPECT_TRUE(rep.accountingConsistent())
        << "offered " << rep.offered << " != served " << rep.served
        << " + dropped " << rep.dropped << " + inFlight "
        << rep.inFlight;
}

/** Open-loop overload of Jetson Nano MobileNet-v2 (~11 ms service). */
es::FleetConfig
overload()
{
    es::FleetConfig cfg;
    cfg.durationS = 120.0;
    cfg.arrivalRateHz = 300.0; // ~3.3x one replica's capacity
    cfg.seed = 41;
    cfg.queueCapacity = 16;
    cfg.enableThermal = false;
    return cfg;
}

} // namespace

TEST(FleetTest, TwoReplicasNearlyDoubleThroughput)
{
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kJetsonNano);
    const auto one = es::simulateFleet(s, 1, overload());
    const auto two = es::simulateFleet(s, 2, overload());
    expectAccounting(one);
    expectAccounting(two);
    // Both saturated: the second replica buys its full share.
    EXPECT_GT(one.dropped, 0);
    EXPECT_GE(two.throughputHz, 1.9 * one.throughputHz);
    EXPECT_GT(one.utilization, 0.99);
    EXPECT_GT(two.utilization, 0.99);
}

TEST(FleetTest, QueueSaturationRejectsButNeverLeaks)
{
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kJetsonNano);
    auto cfg = overload();
    cfg.queueCapacity = 4;
    const auto rep = es::simulateFleet(s, 1, cfg);
    expectAccounting(rep);
    EXPECT_GT(rep.rejected, 0);
    EXPECT_GT(rep.dropped, 0);
    // A bounded queue bounds the tail: at most ~capacity+1 service
    // times of waiting (throttling off, jitter is small).
    const double service_ms = s.run(1).perInferenceMs;
    EXPECT_LT(rep.maxMs, service_ms * (4 + 2) * 1.25);
}

TEST(FleetTest, DropOldestServesFresherRequests)
{
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kJetsonNano);
    auto reject_cfg = overload();
    reject_cfg.queueCapacity = 8;
    auto evict_cfg = reject_cfg;
    evict_cfg.dropPolicy = es::DropPolicy::kDropOldest;
    const auto reject = es::simulateFleet(s, 1, reject_cfg);
    const auto evict = es::simulateFleet(s, 1, evict_cfg);
    expectAccounting(reject);
    expectAccounting(evict);
    EXPECT_GT(evict.rejected, 0);
    // Eviction trades old queued work for fresh arrivals; both
    // policies serve at the same (saturated) rate.
    EXPECT_NEAR(static_cast<double>(evict.served),
                static_cast<double>(reject.served),
                0.02 * static_cast<double>(reject.served));
    EXPECT_GT(evict.dropped, 0);
}

TEST(FleetTest, RetryRecoversBurstRejections)
{
    // Near-capacity Poisson load with a tiny queue: bursts bounce off
    // the full queue, and retry-with-backoff wins those requests back
    // once the burst drains.
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kJetsonNano);
    const double service_s = s.run(1).perInferenceMs / 1e3;
    es::FleetConfig cfg;
    cfg.durationS = 120.0;
    cfg.arrivalRateHz = 0.8 / service_s; // bursty but under capacity
    cfg.seed = 43;
    cfg.queueCapacity = 1;
    cfg.enableThermal = false;
    const auto no_retry = es::simulateFleet(s, 1, cfg);
    cfg.retry.maxAttempts = 3;
    cfg.retry.backoffS = 0.05;
    const auto with_retry = es::simulateFleet(s, 1, cfg);
    expectAccounting(no_retry);
    expectAccounting(with_retry);
    EXPECT_GT(no_retry.dropped, 0);
    EXPECT_GT(with_retry.retries, 0);
    EXPECT_GT(with_retry.served, no_retry.served);
    EXPECT_LT(with_retry.dropped, no_retry.dropped);
}

TEST(FleetTest, LeastLoadedBeatsRoundRobinOnHeterogeneousFleet)
{
    // A fast Nano paired with a slow RPi: round-robin keeps feeding
    // the RPi half the stream, least-loaded routes around it.
    auto nano = deploy(em::ModelId::kMobileNetV2,
                       eh::DeviceId::kJetsonNano);
    auto rpi = deploy(em::ModelId::kMobileNetV2, eh::DeviceId::kRpi3,
                      ef::FrameworkId::kTfLite);
    es::FleetConfig cfg;
    cfg.durationS = 120.0;
    cfg.arrivalRateHz = 40.0;
    cfg.seed = 44;
    cfg.queueCapacity = 8;
    cfg.enableThermal = false;
    std::vector<const ef::InferenceSession*> fleet{&nano, &rpi};

    const auto rr = es::simulateFleet(fleet, cfg);
    cfg.balancer = es::BalancerPolicy::kLeastLoaded;
    const auto ll = es::simulateFleet(fleet, cfg);
    expectAccounting(rr);
    expectAccounting(ll);
    EXPECT_GT(ll.served, rr.served);
    // Least-loaded shifts work onto the fast replica.
    EXPECT_GT(ll.replicas[0].served, ll.replicas[1].served);
}

TEST(FleetTest, PowerOfTwoChoicesHoldsUpUnderOverload)
{
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kJetsonNano);
    auto cfg = overload();
    cfg.balancer = es::BalancerPolicy::kPowerOfTwo;
    const auto rep = es::simulateFleet(s, 4, cfg);
    expectAccounting(rep);
    // All four replicas get meaningful work.
    for (const auto& r : rep.replicas)
        EXPECT_GT(r.served, rep.served / 8);
}

TEST(FleetTest, MicroBatchingRaisesSaturatedThroughput)
{
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kJetsonNano);
    const auto single = es::simulateFleet(s, 1, overload());
    auto cfg = overload();
    cfg.maxBatch = 8;
    const auto batched = es::simulateFleet(s, 1, cfg);
    expectAccounting(single);
    expectAccounting(batched);
    // Batch-8 service comes from the roofline of the rebatched
    // graph — materially cheaper per request than 8 single runs.
    EXPECT_GT(batched.throughputHz, 1.5 * single.throughputHz);
    EXPECT_GT(batched.replicas[0].batches, 0);
    EXPECT_LT(batched.replicas[0].batches, batched.served);
}

TEST(FleetTest, FleetDegradesGracefullyWhenOneReplicaDies)
{
    // Fig. 14 as a fleet event: the RPi3 thermally shuts down under
    // Inception-class load while the Nano keeps the service alive.
    auto rpi = deploy(em::ModelId::kInceptionV4, eh::DeviceId::kRpi3,
                      ef::FrameworkId::kTensorFlow);
    auto nano = deploy(em::ModelId::kInceptionV4,
                       eh::DeviceId::kJetsonNano);
    es::FleetConfig cfg;
    cfg.durationS = 3600.0;
    cfg.arrivalRateHz = 2.0;
    cfg.seed = 32;
    cfg.queueCapacity = 32;
    cfg.retry.maxAttempts = 2;
    const auto rep = es::simulateFleet(
        std::vector<const ef::InferenceSession*>{&rpi, &nano}, cfg);
    expectAccounting(rep);
    EXPECT_TRUE(rep.replicas[0].thermalShutdown);
    EXPECT_GT(rep.replicas[0].shutdownAtS, 0.0);
    EXPECT_FALSE(rep.replicas[1].thermalShutdown);
    EXPECT_EQ(rep.aliveReplicas, 1);
    // The surviving Nano carries the fleet: far more served than the
    // RPi managed, and the fleet keeps serving after the shutdown.
    EXPECT_GT(rep.replicas[1].served, 10 * rep.replicas[0].served);
    EXPECT_GT(rep.served, rep.replicas[0].served * 5);
    // Dead replicas charge no energy after shutdown (the aborted
    // request's busy interval is truncated), so the RPi's share is
    // bounded by its live window at full power.
    const auto& d = eh::deviceSpec(eh::DeviceId::kRpi3);
    EXPECT_LT(rep.replicas[0].energyJ,
              d.averagePowerW * rep.replicas[0].shutdownAtS * 1.05);
}

TEST(FleetTest, UnservedWorkIsInFlightNotLost)
{
    // Unbounded queue + overload: nothing is dropped, the backlog is
    // in flight at window end.
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kJetsonNano);
    auto cfg = overload();
    cfg.queueCapacity = 0;
    const auto rep = es::simulateFleet(s, 1, cfg);
    expectAccounting(rep);
    EXPECT_EQ(rep.dropped, 0);
    EXPECT_GT(rep.inFlight, 0);
    EXPECT_EQ(rep.inFlight, rep.offered - rep.served);
}

TEST(FleetTest, DeterministicFleetRunsAreReproducible)
{
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kJetsonNano);
    es::FleetConfig cfg;
    cfg.durationS = 60.0;
    cfg.arrivalRateHz = 120.0;
    cfg.deterministicArrivals = true;
    cfg.serviceJitter = 0.0;
    cfg.seed = 47;
    cfg.queueCapacity = 8;
    cfg.enableThermal = false;
    cfg.balancer = es::BalancerPolicy::kPowerOfTwo;
    const auto a = es::simulateFleet(s, 3, cfg);
    const auto b = es::simulateFleet(s, 3, cfg);
    expectAccounting(a);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_DOUBLE_EQ(a.p99Ms, b.p99Ms);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    for (std::size_t r = 0; r < 3; ++r)
        EXPECT_EQ(a.replicas[r].served, b.replicas[r].served);
}

TEST(FleetTest, BalancerNamesRoundTrip)
{
    using es::BalancerPolicy;
    for (auto p : {BalancerPolicy::kRoundRobin,
                   BalancerPolicy::kLeastLoaded,
                   BalancerPolicy::kPowerOfTwo})
        EXPECT_EQ(es::balancerByName(es::balancerName(p)), p);
    EXPECT_EQ(es::balancerByName("rr"), BalancerPolicy::kRoundRobin);
    EXPECT_EQ(es::balancerByName("least"),
              BalancerPolicy::kLeastLoaded);
    EXPECT_EQ(es::balancerByName("p2c"), BalancerPolicy::kPowerOfTwo);
    EXPECT_THROW(es::balancerByName("random"),
                 edgebench::InvalidArgumentError);
}

TEST(FleetTest, InvalidConfigsThrow)
{
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kJetsonNano);
    es::FleetConfig cfg;
    cfg.durationS = 30.0;
    cfg.arrivalRateHz = 1.0;

    EXPECT_THROW(es::simulateFleet(s, 0, cfg),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(
        es::simulateFleet(
            std::vector<const ef::InferenceSession*>{}, cfg),
        edgebench::InvalidArgumentError);
    EXPECT_THROW(
        es::simulateFleet(
            std::vector<const ef::InferenceSession*>{nullptr}, cfg),
        edgebench::InvalidArgumentError);

    auto bad = cfg;
    bad.maxBatch = 0;
    EXPECT_THROW(es::simulateFleet(s, 1, bad),
                 edgebench::InvalidArgumentError);
    bad = cfg;
    bad.retry.maxAttempts = -1;
    EXPECT_THROW(es::simulateFleet(s, 1, bad),
                 edgebench::InvalidArgumentError);
    bad = cfg;
    bad.retry.backoffMult = 0.5;
    EXPECT_THROW(es::simulateFleet(s, 1, bad),
                 edgebench::InvalidArgumentError);
}
