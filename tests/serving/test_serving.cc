/**
 * @file
 * Tests for the request-serving simulator: queueing behaviour, energy
 * accounting, and the thermal coupling that reproduces Fig. 14's RPi
 * shutdown as a serving-availability event.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/serving/simulator.hh"

namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;
namespace es = edgebench::serving;

namespace
{

ef::InferenceSession
deploy(em::ModelId m, eh::DeviceId d,
       ef::FrameworkId fw = ef::FrameworkId::kPyTorch)
{
    auto dep = ef::tryDeploy(fw, em::buildModel(m), d);
    EB_CHECK(dep.has_value(), "test deployment failed");
    return ef::InferenceSession(std::move(dep->model));
}

/**
 * The serving accounting invariant: every offered request lands in
 * exactly one of served / dropped / inFlight. Asserted on every
 * report this suite produces.
 */
void
expectAccounting(const es::ServingReport& rep)
{
    EXPECT_EQ(rep.offered, rep.served + rep.dropped + rep.inFlight)
        << "offered " << rep.offered << " != served " << rep.served
        << " + dropped " << rep.dropped << " + inFlight "
        << rep.inFlight;
    EXPECT_GE(rep.inFlight, 0);
}

} // namespace

TEST(ServingTest, LightLoadHasNoQueueing)
{
    // TensorRT ResNet-18 on the Nano at 1 req/s: service ~19 ms, so
    // p99 ~ service time.
    auto s = deploy(em::ModelId::kResNet18, eh::DeviceId::kJetsonNano,
                    ef::FrameworkId::kTensorRt);
    es::ServingConfig cfg{.durationS = 600.0, .arrivalRateHz = 1.0,
                          .seed = 3};
    const auto rep = es::simulateServing(s, cfg);
    expectAccounting(rep);
    EXPECT_FALSE(rep.thermalShutdown);
    EXPECT_EQ(rep.dropped, 0);
    const double service = s.run(1).perInferenceMs;
    EXPECT_NEAR(rep.p50Ms, service, service * 0.15);
    EXPECT_LT(rep.p99Ms, service * 1.5);
    EXPECT_LT(rep.utilization, 0.1);
}

TEST(ServingTest, OverloadGrowsTailLatency)
{
    // Offered load ~4x capacity: the queue builds without bound and
    // the tail explodes while throughput caps at the service rate.
    auto s = deploy(em::ModelId::kResNet50, eh::DeviceId::kJetsonNano);
    const double service_s = s.run(1).perInferenceMs / 1e3;
    es::ServingConfig cfg{.durationS = 120.0, .seed = 4,
                          .enableThermal = false};
    cfg.arrivalRateHz = 4.0 / service_s; // 4x capacity
    const auto rep = es::simulateServing(s, cfg);
    expectAccounting(rep);
    EXPECT_GT(rep.utilization, 0.95);
    EXPECT_GT(rep.p99Ms, 1.5 * rep.p50Ms);
    EXPECT_GT(rep.p99Ms, s.run(1).perInferenceMs * 10.0);
    // Throughput is bounded by the service rate.
    EXPECT_LT(rep.throughputHz, 1.05 / service_s);
}

TEST(ServingTest, DeterministicArrivalsAreReproducible)
{
    auto s = deploy(em::ModelId::kCifarNet, eh::DeviceId::kXeon);
    es::ServingConfig cfg{.durationS = 100.0, .arrivalRateHz = 5.0,
                          .deterministicArrivals = true, .seed = 7,
                          .serviceJitter = 0.0,
                          .enableThermal = false};
    const auto a = es::simulateServing(s, cfg);
    const auto b = es::simulateServing(s, cfg);
    expectAccounting(a);
    expectAccounting(b);
    EXPECT_EQ(a.offered, b.offered);
    EXPECT_EQ(a.served, b.served);
    EXPECT_EQ(a.inFlight, b.inFlight);
    EXPECT_DOUBLE_EQ(a.p99Ms, b.p99Ms);
    EXPECT_DOUBLE_EQ(a.energyJ, b.energyJ);
    // 5 Hz for 100 s ~ 500 arrivals.
    EXPECT_NEAR(static_cast<double>(a.offered), 500.0, 2.0);
}

TEST(ServingTest, EnergyIsBetweenIdleAndActiveEnvelope)
{
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kJetsonTx2);
    es::ServingConfig cfg{.durationS = 300.0, .arrivalRateHz = 2.0,
                          .seed = 9, .enableThermal = false};
    const auto rep = es::simulateServing(s, cfg);
    expectAccounting(rep);
    const auto& d = eh::deviceSpec(eh::DeviceId::kJetsonTx2);
    EXPECT_GT(rep.energyJ, d.idlePowerW * 300.0 * 0.95);
    EXPECT_LT(rep.energyJ, d.averagePowerW * 300.0 * 1.05);
    EXPECT_GT(rep.energyPerRequestJ, 0.0);
}

TEST(ServingTest, SustainedLoadShutsDownTheRpi)
{
    // Saturating the RPi with Inception-class work trips the Fig. 14
    // thermal limit, and later requests are dropped.
    auto s = deploy(em::ModelId::kInceptionV4, eh::DeviceId::kRpi3,
                    ef::FrameworkId::kTensorFlow);
    es::ServingConfig cfg{.durationS = 3600.0,
                          .arrivalRateHz = 1.0, // far above capacity
                          .seed = 11};
    const auto rep = es::simulateServing(s, cfg);
    expectAccounting(rep);
    EXPECT_TRUE(rep.thermalShutdown);
    EXPECT_GT(rep.shutdownAtS, 0.0);
    EXPECT_GT(rep.dropped, 0);
    EXPECT_GT(rep.peakSurfaceC, 55.0);
    // A dead device draws nothing, and the request it aborted is not
    // charged: total energy fits inside the live window's active
    // envelope (regression for the busy-interval truncation fix).
    const auto& d = eh::deviceSpec(eh::DeviceId::kRpi3);
    EXPECT_LT(rep.energyJ,
              d.averagePowerW * rep.shutdownAtS * 1.05);
}

TEST(ServingTest, BacklogAtWindowEndIsInFlight)
{
    // Overload with an unbounded queue: the backlog is neither served
    // nor lost — it is in flight, and the invariant balances.
    auto s = deploy(em::ModelId::kResNet50,
                    eh::DeviceId::kJetsonNano);
    const double service_s = s.run(1).perInferenceMs / 1e3;
    es::ServingConfig cfg{.durationS = 60.0, .seed = 19,
                          .enableThermal = false};
    cfg.arrivalRateHz = 3.0 / service_s;
    const auto rep = es::simulateServing(s, cfg);
    expectAccounting(rep);
    EXPECT_EQ(rep.dropped, 0);
    EXPECT_GT(rep.inFlight, 0);
    // ~2/3 of the offered load cannot be served in the window.
    EXPECT_GT(rep.inFlight, rep.offered / 2);
}

TEST(ServingTest, ModerateRpiLoadThrottlesWithoutDying)
{
    // ~50% unthrottled utilization heats the RPi past the 60 degC
    // throttle point; the stretched service times then raise
    // utilization further, but hysteresis keeps it oscillating below
    // the 70 degC shutdown trip.
    auto s = deploy(em::ModelId::kMobileNetV2, eh::DeviceId::kRpi3,
                    ef::FrameworkId::kTfLite);
    const double service_s = s.run(1).perInferenceMs / 1e3;
    es::ServingConfig cfg{.durationS = 5400.0, .seed = 17};
    cfg.arrivalRateHz = 0.5 / service_s;
    const auto rep = es::simulateServing(s, cfg);
    expectAccounting(rep);
    EXPECT_TRUE(rep.thermalThrottled);
    EXPECT_FALSE(rep.thermalShutdown);
    // Throttled service shows up in the tail.
    EXPECT_GT(rep.p99Ms, s.run(1).perInferenceMs * 1.3);
}

TEST(ServingTest, MovidiusNeverOverheats)
{
    auto s = deploy(em::ModelId::kMobileNetV2,
                    eh::DeviceId::kMovidius,
                    ef::FrameworkId::kMovidiusNcsdk);
    es::ServingConfig cfg{.durationS = 3600.0,
                          .arrivalRateHz = 50.0, // saturate
                          .seed = 13};
    const auto rep = es::simulateServing(s, cfg);
    expectAccounting(rep);
    EXPECT_FALSE(rep.thermalShutdown);
    EXPECT_LT(rep.peakSurfaceC, 35.0);
    EXPECT_GT(rep.utilization, 0.9);
}

TEST(ServingTest, HpcPlatformsRunWithoutThermalModel)
{
    auto s = deploy(em::ModelId::kResNet50, eh::DeviceId::kTitanXp);
    es::ServingConfig cfg{.durationS = 60.0, .arrivalRateHz = 10.0,
                          .seed = 15};
    const auto rep = es::simulateServing(s, cfg);
    expectAccounting(rep);
    EXPECT_FALSE(rep.thermalShutdown);
    EXPECT_DOUBLE_EQ(rep.peakSurfaceC, 0.0);
    EXPECT_GT(rep.served, 0);
}

TEST(ServingTest, InvalidConfigsThrow)
{
    auto s = deploy(em::ModelId::kCifarNet, eh::DeviceId::kXeon);
    es::ServingConfig cfg;
    cfg.durationS = 0.0;
    EXPECT_THROW(es::simulateServing(s, cfg),
                 edgebench::InvalidArgumentError);
    cfg.durationS = 10.0;
    cfg.arrivalRateHz = 0.0;
    EXPECT_THROW(es::simulateServing(s, cfg),
                 edgebench::InvalidArgumentError);
}
