/**
 * @file
 * Tests for the recurrent extension models (paper future work) and
 * the rebatch pass that backs the multi-batch study.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/models/zoo.hh"

namespace em = edgebench::models;
namespace eg = edgebench::graph;
namespace ec = edgebench::core;
namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;

TEST(RecurrentModelsTest, CharRnnStats)
{
    const auto g = em::buildCharRnn();
    const auto st = g.stats();
    // 2 LSTM layers: 4*512*(128+512) + 4*512*(512+512) weights
    // (+ biases) + decoder.
    const std::int64_t lstm1 = 4 * 512 * (128 + 512) + 4 * 512;
    const std::int64_t lstm2 = 4 * 512 * (512 + 512) + 4 * 512;
    const std::int64_t decoder = 512 * 128 + 128;
    EXPECT_EQ(st.params, lstm1 + lstm2 + decoder);
    // Sequence MACs dominate: 64 steps of both layers.
    EXPECT_GT(st.macs, 64 * (lstm1 + lstm2 - 8 * 512) * 9 / 10);
}

TEST(RecurrentModelsTest, AllExtensionsBuild)
{
    const auto models = em::buildRecurrentExtensions();
    ASSERT_EQ(models.size(), 3u);
    for (const auto& g : models) {
        EXPECT_FALSE(g.outputIds().empty()) << g.name();
        EXPECT_GT(g.stats().macs, 0) << g.name();
        EXPECT_GT(g.stats().params, 0) << g.name();
    }
}

TEST(RecurrentModelsTest, CharRnnRunsOnInterpreter)
{
    auto g = em::buildCharRnn(32, 8, 16); // tiny config
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    ec::Rng irng(2);
    auto x = ec::Tensor::randomNormal({1, 8, 32}, irng);
    auto out = interp.run({x})[0];
    ASSERT_EQ(out.shape(), (ec::Shape{1, 32}));
    double sum = 0.0;
    for (std::int64_t i = 0; i < out.numel(); ++i)
        sum += out.at(i);
    EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(RecurrentModelsTest, GruClassifierRunsOnInterpreter)
{
    auto g = em::buildGruClassifier(8, 6, 12, 4);
    ec::Rng rng(3);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    ec::Rng irng(4);
    auto out = interp.run(
        {ec::Tensor::randomNormal({1, 6, 8}, irng)})[0];
    ASSERT_EQ(out.shape(), (ec::Shape{1, 4}));
}

TEST(RecurrentModelsTest, DeepSpeechMixesConvAndLstm)
{
    const auto g = em::buildDeepSpeech2Lite();
    bool conv = false, lstm = false;
    for (const auto& n : g.nodes()) {
        conv |= (n.kind == eg::OpKind::kConv2d);
        lstm |= (n.kind == eg::OpKind::kLstm);
    }
    EXPECT_TRUE(conv);
    EXPECT_TRUE(lstm);
}

TEST(RecurrentDeployTest, RunsOnGeneralFrameworksOnly)
{
    const auto g = em::buildCharRnn();
    // PyTorch / TF on CPU+GPU platforms: fine.
    EXPECT_TRUE(ef::tryDeploy(ef::FrameworkId::kPyTorch, g,
                              eh::DeviceId::kJetsonTx2)
                    .has_value());
    EXPECT_TRUE(ef::tryDeploy(ef::FrameworkId::kTensorFlow, g,
                              eh::DeviceId::kXeon)
                    .has_value());
    // 2019-era TFLite, EdgeTPU and NCSDK cannot take RNNs.
    EXPECT_FALSE(ef::tryDeploy(ef::FrameworkId::kTfLite, g,
                               eh::DeviceId::kRpi3)
                     .has_value());
    EXPECT_FALSE(ef::tryDeploy(ef::FrameworkId::kTfLite, g,
                               eh::DeviceId::kEdgeTpu)
                     .has_value());
    EXPECT_FALSE(ef::tryDeploy(ef::FrameworkId::kMovidiusNcsdk, g,
                               eh::DeviceId::kMovidius)
                     .has_value());
}

TEST(RecurrentGraphTest, SelectTimestepSemantics)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 2});
    auto last = g.addSelectTimestep(in, -1);
    g.markOutput(last);
    ec::Rng rng(5);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    ec::Tensor x({1, 3, 2}, {1, 2, 3, 4, 5, 6});
    auto out = interp.run({x})[0];
    EXPECT_EQ(out.shape(), (ec::Shape{1, 2}));
    EXPECT_FLOAT_EQ(out.at(0), 5);
    EXPECT_FLOAT_EQ(out.at(1), 6);
    EXPECT_THROW(g.addSelectTimestep(in, 3),
                 edgebench::InvalidArgumentError);
}

TEST(RebatchTest, ScalesShapesAndMacsLinearly)
{
    const auto g = em::buildResNet(18);
    const auto b8 = eg::rebatch(g, 8).graph;
    EXPECT_EQ(b8.stats().macs, g.stats().macs * 8);
    EXPECT_EQ(b8.stats().params, g.stats().params);
    for (const auto& n : b8.nodes())
        EXPECT_EQ(n.outShape[0], 8) << n.name;
}

TEST(RebatchTest, BatchOneIsIdentityOnStats)
{
    const auto g = em::buildMobileNetV2();
    const auto b1 = eg::rebatch(g, 1).graph;
    EXPECT_EQ(b1.stats().macs, g.stats().macs);
    EXPECT_EQ(b1.stats().activationBytes, g.stats().activationBytes);
}

TEST(RebatchTest, RejectsBadInputs)
{
    auto g = em::buildCifarNet();
    EXPECT_THROW(eg::rebatch(g, 0), edgebench::InvalidArgumentError);
    ec::Rng rng(1);
    g.materializeParams(rng);
    EXPECT_THROW(eg::rebatch(g, 2), edgebench::InvalidArgumentError);
}

TEST(RebatchTest, RebatchedLstmExecutes)
{
    auto g = em::buildCharRnn(16, 4, 8);
    auto b2 = eg::rebatch(g, 2).graph;
    ec::Rng rng(6);
    b2.materializeParams(rng);
    eg::Interpreter interp(b2);
    ec::Rng irng(7);
    auto out = interp.run(
        {ec::Tensor::randomNormal({2, 4, 16}, irng)})[0];
    EXPECT_EQ(out.shape(), (ec::Shape{2, 16}));
}

TEST(RebatchTest, MultiBatchAmortizesHpcGpuOverheads)
{
    // The Section VI-C mechanism: throughput (img/s) on an HPC GPU
    // grows superlinearly with batch until the ramp saturates.
    const auto g = em::buildResNet(50);
    const auto& unit = *eh::deviceSpec(eh::DeviceId::kTitanXp).gpu;
    const auto profile = ef::engineProfile(
        ef::FrameworkId::kPyTorch, eh::DeviceId::kTitanXp);
    const double t1 =
        eh::graphLatencyUnchecked(g, unit, profile).totalMs;
    const auto g16 = eg::rebatch(g, 16).graph;
    const double t16 =
        eh::graphLatencyUnchecked(g16, unit, profile).totalMs;
    const double throughput1 = 1.0 / t1;
    const double throughput16 = 16.0 / t16;
    EXPECT_GT(throughput16, 4.0 * throughput1);
}
