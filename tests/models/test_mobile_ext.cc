/**
 * @file
 * Tests for the mobile/efficient extension models: SqueezeNet,
 * ShuffleNet (channel shuffle included) and DenseNet-121.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/models/zoo.hh"

namespace em = edgebench::models;
namespace eg = edgebench::graph;
namespace ec = edgebench::core;

TEST(MobileExtTest, SqueezeNetMatchesCanonicalStats)
{
    const auto st = em::buildSqueezeNet().stats();
    // SqueezeNet v1.1: ~1.24 M params, ~0.35 GMACs.
    EXPECT_NEAR(st.params / 1e6, 1.24, 0.05);
    EXPECT_NEAR(st.macs / 1e9, 0.35, 0.02);
}

TEST(MobileExtTest, ShuffleNetMatchesCanonicalStats)
{
    const auto st = em::buildShuffleNet().stats();
    // ShuffleNet v1 1x (g=3): ~1.9 M params, ~0.137 GMACs.
    EXPECT_NEAR(st.params / 1e6, 1.88, 0.15);
    EXPECT_NEAR(st.macs / 1e9, 0.137, 0.015);
    EXPECT_THROW(em::buildShuffleNet(1000, 224, 5),
                 edgebench::InvalidArgumentError);
}

TEST(MobileExtTest, DenseNetMatchesCanonicalStats)
{
    const auto st = em::buildDenseNet121().stats();
    // DenseNet-121: ~7.98 M params, ~2.88 GMACs.
    EXPECT_NEAR(st.params / 1e6, 7.98, 0.25);
    EXPECT_NEAR(st.macs / 1e9, 2.88, 0.10);
}

TEST(MobileExtTest, ChannelShuffleIsAPermutation)
{
    eg::Graph g;
    auto in = g.addInput({1, 6, 1, 1});
    auto sh = g.addChannelShuffle(in, 3);
    g.markOutput(sh);
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    // Channels 0..5 grouped as (0,1)(2,3)(4,5); shuffle interleaves
    // them to 0,2,4,1,3,5.
    ec::Tensor x({1, 6, 1, 1}, {0, 1, 2, 3, 4, 5});
    const auto out = interp.run({x})[0];
    EXPECT_FLOAT_EQ(out.at(0), 0);
    EXPECT_FLOAT_EQ(out.at(1), 2);
    EXPECT_FLOAT_EQ(out.at(2), 4);
    EXPECT_FLOAT_EQ(out.at(3), 1);
    EXPECT_FLOAT_EQ(out.at(4), 3);
    EXPECT_FLOAT_EQ(out.at(5), 5);
}

TEST(MobileExtTest, ChannelShuffleValidatesGroups)
{
    eg::Graph g;
    auto in = g.addInput({1, 6, 2, 2});
    EXPECT_THROW(g.addChannelShuffle(in, 4),
                 edgebench::InvalidArgumentError);
}

TEST(MobileExtTest, ShuffleNetRunsOnInterpreter)
{
    // Tiny ShuffleNet config to keep the functional run fast.
    auto g = em::buildShuffleNet(10, 32, 3);
    ec::Rng rng(2);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    ec::Rng irng(3);
    const auto out = interp.run(
        {ec::Tensor::randomNormal({1, 3, 32, 32}, irng)})[0];
    EXPECT_EQ(out.shape(), (ec::Shape{1, 10}));
}

TEST(MobileExtTest, ExtensionsSurvivePassPipeline)
{
    for (auto g : {em::buildSqueezeNet(), em::buildShuffleNet(),
                   em::buildDenseNet121()}) {
        const auto fused = eg::fuseConvBnAct(g).graph;
        EXPECT_LE(fused.numNodes(), g.numNodes()) << g.name();
        const auto q = eg::quantizeInt8(fused).graph;
        EXPECT_LT(q.stats().paramBytes, g.stats().paramBytes)
            << g.name();
        EXPECT_EQ(eg::eliminateDeadNodes(g).rewrites, 0) << g.name();
    }
}
