/**
 * @file
 * Model-zoo tests: every Table I model must reproduce the paper's FLOP
 * and parameter counts within its documented tolerance, and the graphs
 * must be structurally sound.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/models/zoo.hh"

namespace em = edgebench::models;
namespace eg = edgebench::graph;
namespace ec = edgebench::core;

class ZooTableI : public ::testing::TestWithParam<em::ModelId>
{
};

TEST_P(ZooTableI, FlopAndParamCountsMatchPaper)
{
    const auto& info = em::modelInfo(GetParam());
    const auto g = em::buildModel(GetParam());
    const auto st = g.stats();
    const double gflop = static_cast<double>(st.macs) / 1e9;
    const double mparam = static_cast<double>(st.params) / 1e6;
    EXPECT_NEAR(gflop, info.paperGFlop,
                info.paperGFlop * info.flopTolerance)
        << g.name() << ": GFLOP";
    EXPECT_NEAR(mparam, info.paperMParams,
                info.paperMParams * info.paramTolerance)
        << g.name() << ": MParams";
}

TEST_P(ZooTableI, GraphIsWellFormed)
{
    const auto g = em::buildModel(GetParam());
    EXPECT_FALSE(g.outputIds().empty());
    EXPECT_FALSE(g.inputIds().empty());
    EXPECT_FALSE(g.materialized()) << "zoo graphs must be deferred";
    // Topological well-formedness: inputs precede consumers.
    for (const auto& n : g.nodes())
        for (auto in : n.inputs)
            EXPECT_LT(in, n.id);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooTableI, ::testing::ValuesIn(em::allModels()),
    [](const ::testing::TestParamInfo<em::ModelId>& pi) {
        std::string n = em::modelInfo(pi.param).name + "_" +
            em::modelInfo(pi.param).inputSize;
        for (auto& c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(ZooTest, AllModelsEnumeratesSixteen)
{
    EXPECT_EQ(em::allModels().size(), 16u);
}

TEST(ZooTest, ModelByNameRoundTrips)
{
    EXPECT_EQ(em::modelByName("ResNet-50"), em::ModelId::kResNet50);
    EXPECT_THROW(em::modelByName("NotAModel"),
                 edgebench::InvalidArgumentError);
}

TEST(ZooTest, FlopPerParamOrderingMatchesFig1Extremes)
{
    // Fig. 1: VGG-S 32x32 and AlexNet are the most memory-bound;
    // C3D and YOLOv3 the most compute-intense.
    const auto fpp = [](em::ModelId id) {
        return em::buildModel(id).stats().flopPerParam;
    };
    const double vggs32 = fpp(em::ModelId::kVggS32);
    const double alexnet = fpp(em::ModelId::kAlexNet);
    const double c3d = fpp(em::ModelId::kC3d);
    const double yolo = fpp(em::ModelId::kYoloV3);
    const double resnet18 = fpp(em::ModelId::kResNet18);
    EXPECT_LT(vggs32, alexnet + 5.0);
    EXPECT_LT(alexnet, resnet18);
    EXPECT_LT(resnet18, yolo);
    EXPECT_LT(resnet18, c3d);
}

TEST(ZooTest, ResNetDepthsScaleParameters)
{
    const auto p18 = em::buildResNet(18).stats().params;
    const auto p50 = em::buildResNet(50).stats().params;
    const auto p101 = em::buildResNet(101).stats().params;
    EXPECT_LT(p18, p50);
    EXPECT_LT(p50, p101);
    EXPECT_THROW(em::buildResNet(34), edgebench::InvalidArgumentError);
}

TEST(ZooTest, AlexNetCanonicalIsSmaller)
{
    const auto paper = em::buildAlexNet().stats().params;
    const auto canonical = em::buildAlexNetCanonical().stats().params;
    // Canonical AlexNet is ~61 M; the paper variant ~102 M.
    EXPECT_NEAR(static_cast<double>(canonical) / 1e6, 61.0, 3.0);
    EXPECT_GT(paper, canonical);
}

TEST(ZooTest, YoloV3HasThreeDetectionScales)
{
    const auto g = em::buildYoloV3();
    EXPECT_EQ(g.outputIds().size(), 3u);
    for (auto id : g.outputIds())
        EXPECT_EQ(g.node(id).kind, eg::OpKind::kYoloDetect);
}

TEST(ZooTest, YoloRejectsNonMultipleOf32)
{
    EXPECT_THROW(em::buildYoloV3(80, 200),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(em::buildTinyYolo(80, 100),
                 edgebench::InvalidArgumentError);
}

TEST(ZooTest, SsdEndsInDetectionPostprocess)
{
    const auto g = em::buildSsdMobileNetV1();
    ASSERT_EQ(g.outputIds().size(), 1u);
    const auto& out = g.node(g.outputIds()[0]);
    EXPECT_EQ(out.kind, eg::OpKind::kDetectPostprocess);
    EXPECT_EQ(out.outShape[2], 6);
}

TEST(ZooTest, C3dUsesThreeDConvolutions)
{
    const auto g = em::buildC3d();
    std::int64_t n3d = 0;
    for (const auto& n : g.nodes())
        n3d += (n.kind == eg::OpKind::kConv3d);
    EXPECT_EQ(n3d, 8);
}

TEST(ZooTest, CifarNetRunsEndToEndOnInterpreter)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    ec::Rng irng(2);
    auto x = ec::Tensor::randomNormal({1, 3, 32, 32}, irng);
    auto out = interp.run({x})[0];
    ASSERT_EQ(out.shape(), (ec::Shape{1, 10}));
    double sum = 0.0;
    for (std::int64_t i = 0; i < 10; ++i)
        sum += out.at(i);
    EXPECT_NEAR(sum, 1.0, 1e-5);
}

TEST(ZooTest, MobileNetV2RunsEndToEndOnInterpreter)
{
    auto g = em::buildMobileNetV2(10, 32); // tiny config for speed
    ec::Rng rng(3);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    ec::Rng irng(4);
    auto x = ec::Tensor::randomNormal({1, 3, 32, 32}, irng);
    auto out = interp.run({x})[0];
    ASSERT_EQ(out.shape(), (ec::Shape{1, 10}));
}

TEST(ZooTest, InputDescriptionsMatchTableI)
{
    for (auto id : em::allModels()) {
        const auto g = em::buildModel(id);
        EXPECT_EQ(g.inputDescription(), em::modelInfo(id).inputSize)
            << g.name();
    }
}
