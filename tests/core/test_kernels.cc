/**
 * @file
 * Unit + property tests for the fp32 compute kernels. The im2col+GEMM
 * convolution is cross-checked against the direct loop-nest oracle over
 * a parameter sweep (stride/pad/dilation/groups).
 */

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/kernels.hh"
#include "edgebench/core/scratch.hh"

namespace ec = edgebench::core;
using edgebench::InvalidArgumentError;

namespace
{

ec::Tensor
randomTensor(const ec::Shape& s, std::uint64_t seed)
{
    ec::Rng rng(seed);
    return ec::Tensor::randomNormal(s, rng);
}

} // namespace

TEST(GemmTest, MatchesHandComputedProduct)
{
    // A = [[1,2],[3,4]], B = [[5,6],[7,8]] -> C = [[19,22],[43,50]].
    std::vector<float> a = {1, 2, 3, 4};
    std::vector<float> b = {5, 6, 7, 8};
    std::vector<float> c(4);
    ec::gemm(2, 2, 2, a, b, c);
    EXPECT_FLOAT_EQ(c[0], 19);
    EXPECT_FLOAT_EQ(c[1], 22);
    EXPECT_FLOAT_EQ(c[2], 43);
    EXPECT_FLOAT_EQ(c[3], 50);
}

TEST(GemmTest, MatchesNaiveTripleLoopOnRandomMatrices)
{
    const std::int64_t m = 17, n = 23, k = 131;
    auto ta = randomTensor({m, k}, 1);
    auto tb = randomTensor({k, n}, 2);
    std::vector<float> c(static_cast<std::size_t>(m * n));
    ec::gemm(m, n, k, ta.data(), tb.data(), c);
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p < k; ++p)
                acc += static_cast<double>(ta.at(i * k + p)) *
                    tb.at(p * n + j);
            ASSERT_NEAR(c[static_cast<std::size_t>(i * n + j)], acc,
                        1e-3);
        }
}

TEST(GemmTest, SizeMismatchThrows)
{
    std::vector<float> a(4), b(4), c(3);
    EXPECT_THROW(ec::gemm(2, 2, 2, a, b, c), InvalidArgumentError);
}

/**
 * Conv2d property sweep: (kernel, stride, pad, dilation, groups).
 */
using ConvCase = std::tuple<int, int, int, int, int>;

class ConvEquivalence : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(ConvEquivalence, Im2colMatchesNaive)
{
    const auto [k, stride, pad, dil, groups] = GetParam();
    ec::Conv2dGeom g;
    g.n = 2;
    g.inC = 4 * groups;
    g.inH = 11;
    g.inW = 13;
    g.outC = 6 * groups;
    g.kH = k;
    g.kW = k;
    g.strideH = stride;
    g.strideW = stride;
    g.padH = pad;
    g.padW = pad;
    g.dilH = dil;
    g.dilW = dil;
    g.groups = groups;
    g.validate();

    auto input = randomTensor({g.n, g.inC, g.inH, g.inW}, 10 + k);
    auto weights = randomTensor(
        {g.outC, g.inC / g.groups, g.kH, g.kW}, 20 + stride);
    auto bias = randomTensor({g.outC}, 30 + pad);

    auto fast = ec::conv2d(input, weights, bias, g);
    auto slow = ec::conv2dNaive(input, weights, bias, g);
    EXPECT_EQ(fast.shape(), slow.shape());
    EXPECT_LT(fast.maxAbsDiff(slow), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ConvEquivalence,
    ::testing::Values(
        ConvCase{1, 1, 0, 1, 1}, ConvCase{3, 1, 1, 1, 1},
        ConvCase{3, 2, 1, 1, 1}, ConvCase{5, 1, 2, 1, 1},
        ConvCase{3, 1, 2, 2, 1}, ConvCase{3, 1, 1, 1, 2},
        ConvCase{3, 2, 1, 1, 4}, ConvCase{1, 2, 0, 1, 2},
        ConvCase{7, 2, 3, 1, 1}, ConvCase{3, 3, 1, 1, 1}));

TEST(Conv2dTest, DepthwiseMatchesPerChannelConvolution)
{
    // groups == inC == outC: each channel is convolved independently.
    ec::Conv2dGeom g{.n = 1, .inC = 3, .inH = 8, .inW = 8, .outC = 3,
                     .kH = 3, .kW = 3, .padH = 1, .padW = 1,
                     .groups = 3};
    auto input = randomTensor({1, 3, 8, 8}, 42);
    auto weights = randomTensor({3, 1, 3, 3}, 43);
    auto out = ec::conv2d(input, weights, ec::Tensor::zeros({3}), g);

    for (std::int64_t c = 0; c < 3; ++c) {
        // Single-channel convolution of channel c.
        ec::Conv2dGeom g1{.n = 1, .inC = 1, .inH = 8, .inW = 8,
                          .outC = 1, .kH = 3, .kW = 3, .padH = 1,
                          .padW = 1};
        ec::Tensor ic({1, 1, 8, 8});
        for (std::int64_t i = 0; i < 64; ++i)
            ic.set(i, input.at(c * 64 + i));
        ec::Tensor wc({1, 1, 3, 3});
        for (std::int64_t i = 0; i < 9; ++i)
            wc.set(i, weights.at(c * 9 + i));
        auto oc = ec::conv2dNaive(ic, wc, ec::Tensor::zeros({1}), g1);
        for (std::int64_t i = 0; i < 64; ++i)
            ASSERT_NEAR(out.at(c * 64 + i), oc.at(i), 1e-4);
    }
}

TEST(Conv2dTest, IdentityKernelReproducesInput)
{
    ec::Conv2dGeom g{.n = 1, .inC = 1, .inH = 5, .inW = 5, .outC = 1,
                     .kH = 1, .kW = 1};
    auto input = randomTensor({1, 1, 5, 5}, 7);
    ec::Tensor w({1, 1, 1, 1}, {1.0f});
    auto out = ec::conv2d(input, w, ec::Tensor::zeros({1}), g);
    EXPECT_LT(out.maxAbsDiff(input), 1e-6);
}

TEST(Conv3dTest, ReducesToConv2dWhenDepthIsOne)
{
    ec::Conv3dGeom g3{.n = 1, .inC = 2, .inD = 1, .inH = 6, .inW = 6,
                      .outC = 3, .kD = 1, .kH = 3, .kW = 3, .padH = 1,
                      .padW = 1};
    ec::Conv2dGeom g2{.n = 1, .inC = 2, .inH = 6, .inW = 6, .outC = 3,
                      .kH = 3, .kW = 3, .padH = 1, .padW = 1};
    auto in2 = randomTensor({1, 2, 6, 6}, 77);
    ec::Tensor in3({1, 2, 1, 6, 6});
    for (std::int64_t i = 0; i < in2.numel(); ++i)
        in3.set(i, in2.at(i));
    auto w2 = randomTensor({3, 2, 3, 3}, 78);
    ec::Tensor w3({3, 2, 1, 3, 3});
    for (std::int64_t i = 0; i < w2.numel(); ++i)
        w3.set(i, w2.at(i));
    auto bias = randomTensor({3}, 79);

    auto o3 = ec::conv3d(in3, w3, bias, g3);
    auto o2 = ec::conv2d(in2, w2, bias, g2);
    ASSERT_EQ(o3.numel(), o2.numel());
    for (std::int64_t i = 0; i < o2.numel(); ++i)
        ASSERT_NEAR(o3.at(i), o2.at(i), 1e-4);
}

TEST(DenseTest, MatchesManualDotProduct)
{
    ec::DenseGeom g{.batch = 2, .inFeatures = 3, .outFeatures = 2};
    ec::Tensor in({2, 3}, {1, 2, 3, 4, 5, 6});
    ec::Tensor w({2, 3}, {1, 0, -1, 0.5f, 0.5f, 0.5f});
    ec::Tensor b({2}, {10, 20});
    auto out = ec::dense(in, w, b, g);
    EXPECT_FLOAT_EQ(out.at(0), 1 - 3 + 10);
    EXPECT_FLOAT_EQ(out.at(1), 0.5f * 6 + 20);
    EXPECT_FLOAT_EQ(out.at(2), 4 - 6 + 10);
    EXPECT_FLOAT_EQ(out.at(3), 0.5f * 15 + 20);
}

TEST(PoolTest, MaxPoolPicksWindowMaximum)
{
    ec::Pool2dGeom g{.n = 1, .c = 1, .inH = 4, .inW = 4, .kH = 2,
                     .kW = 2, .strideH = 2, .strideW = 2};
    ec::Tensor in({1, 1, 4, 4},
                  {1, 2, 3, 4,
                   5, 6, 7, 8,
                   9, 10, 11, 12,
                   13, 14, 15, 16});
    auto out = ec::maxPool2d(in, g);
    EXPECT_EQ(out.shape(), (ec::Shape{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(out.at(0), 6);
    EXPECT_FLOAT_EQ(out.at(1), 8);
    EXPECT_FLOAT_EQ(out.at(2), 14);
    EXPECT_FLOAT_EQ(out.at(3), 16);
}

TEST(PoolTest, AvgPoolAveragesOnlyInBoundsElements)
{
    ec::Pool2dGeom g{.n = 1, .c = 1, .inH = 2, .inW = 2, .kH = 2,
                     .kW = 2, .strideH = 2, .strideW = 2, .padH = 1,
                     .padW = 1};
    ec::Tensor in({1, 1, 2, 2}, {4, 8, 12, 16});
    auto out = ec::avgPool2d(in, g);
    // Each 2x2 window sees exactly one in-bounds element.
    EXPECT_EQ(out.shape(), (ec::Shape{1, 1, 2, 2}));
    EXPECT_FLOAT_EQ(out.at(0), 4);
    EXPECT_FLOAT_EQ(out.at(3), 16);
}

TEST(PoolTest, MaxPool3dReducesTemporalDim)
{
    ec::Pool3dGeom g{.n = 1, .c = 1, .inD = 2, .inH = 2, .inW = 2,
                     .kD = 2, .kH = 2, .kW = 2, .strideD = 2,
                     .strideH = 2, .strideW = 2};
    ec::Tensor in({1, 1, 2, 2, 2}, {1, 2, 3, 4, 5, 6, 7, 8});
    auto out = ec::maxPool3d(in, g);
    EXPECT_EQ(out.numel(), 1);
    EXPECT_FLOAT_EQ(out.at(0), 8);
}

TEST(PoolTest, GlobalAvgPoolMatchesMean)
{
    ec::Tensor in({1, 2, 2, 2}, {1, 2, 3, 4, 10, 20, 30, 40});
    auto out = ec::globalAvgPool(in);
    EXPECT_EQ(out.shape(), (ec::Shape{1, 2}));
    EXPECT_FLOAT_EQ(out.at(0), 2.5f);
    EXPECT_FLOAT_EQ(out.at(1), 25.0f);
}

TEST(BatchNormTest, NormalizesToGammaBetaAffine)
{
    ec::Tensor in({1, 1, 1, 4}, {2, 4, 6, 8});
    ec::Tensor gamma({1}, {2.0f});
    ec::Tensor beta({1}, {1.0f});
    ec::Tensor mean({1}, {5.0f});
    ec::Tensor var({1}, {4.0f});
    auto out = ec::batchNorm(in, gamma, beta, mean, var, 0.0);
    // (x - 5) / 2 * 2 + 1 = x - 4.
    EXPECT_FLOAT_EQ(out.at(0), -2.0f);
    EXPECT_FLOAT_EQ(out.at(3), 4.0f);
}

TEST(ActivationTest, ReluFamilyClampsCorrectly)
{
    ec::Tensor in({5}, {-2, -0.5f, 0, 3, 10});
    auto r = ec::relu(in);
    EXPECT_FLOAT_EQ(r.at(0), 0);
    EXPECT_FLOAT_EQ(r.at(3), 3);
    auto r6 = ec::relu6(in);
    EXPECT_FLOAT_EQ(r6.at(4), 6);
    auto lr = ec::leakyRelu(in, 0.1f);
    EXPECT_FLOAT_EQ(lr.at(0), -0.2f);
    EXPECT_FLOAT_EQ(lr.at(4), 10);
}

TEST(ActivationTest, SigmoidAndTanhMatchStdFunctions)
{
    ec::Tensor in({3}, {-1, 0, 2});
    auto s = ec::sigmoid(in);
    EXPECT_NEAR(s.at(1), 0.5f, 1e-6);
    EXPECT_NEAR(s.at(2), 1.0f / (1.0f + std::exp(-2.0f)), 1e-6);
    auto t = ec::tanhAct(in);
    EXPECT_NEAR(t.at(0), std::tanh(-1.0f), 1e-6);
}

TEST(SoftmaxTest, RowsSumToOneAndOrderIsPreserved)
{
    ec::Tensor in({2, 3}, {1, 2, 3, -1, 0, 1});
    auto out = ec::softmax(in);
    for (int r = 0; r < 2; ++r) {
        double sum = 0.0;
        for (int c = 0; c < 3; ++c)
            sum += out.at(r * 3 + c);
        EXPECT_NEAR(sum, 1.0, 1e-6);
        EXPECT_LT(out.at(r * 3), out.at(r * 3 + 2));
    }
}

TEST(SoftmaxTest, IsShiftInvariantAndOverflowSafe)
{
    ec::Tensor a({1, 3}, {1000, 1001, 1002});
    ec::Tensor b({1, 3}, {0, 1, 2});
    auto oa = ec::softmax(a);
    auto ob = ec::softmax(b);
    EXPECT_LT(oa.maxAbsDiff(ob), 1e-6);
}

TEST(CombineTest, AddAndConcat)
{
    ec::Tensor a({1, 1, 1, 2}, {1, 2});
    ec::Tensor b({1, 1, 1, 2}, {10, 20});
    auto sum = ec::addElementwise(a, b);
    EXPECT_FLOAT_EQ(sum.at(0), 11);
    auto cat = ec::concatChannels({a, b});
    EXPECT_EQ(cat.shape(), (ec::Shape{1, 2, 1, 2}));
    EXPECT_FLOAT_EQ(cat.at(2), 10);
}

TEST(CombineTest, ConcatRejectsMismatchedSpatialDims)
{
    auto a = ec::Tensor::zeros({1, 1, 2, 2});
    auto b = ec::Tensor::zeros({1, 1, 3, 3});
    EXPECT_THROW(ec::concatChannels({a, b}), InvalidArgumentError);
}

TEST(ShapeOpsTest, PadUpsampleFlatten)
{
    ec::Tensor in({1, 1, 1, 2}, {3, 4});
    auto padded = ec::padSpatial(in, 1, 0, 0, 1);
    EXPECT_EQ(padded.shape(), (ec::Shape{1, 1, 2, 3}));
    EXPECT_FLOAT_EQ(padded.at(0), 0);
    EXPECT_FLOAT_EQ(padded.at(3), 3);
    EXPECT_FLOAT_EQ(padded.at(5), 0);

    auto up = ec::upsampleNearest(in, 2);
    EXPECT_EQ(up.shape(), (ec::Shape{1, 1, 2, 4}));
    EXPECT_FLOAT_EQ(up.at(0), 3);
    EXPECT_FLOAT_EQ(up.at(1), 3);
    EXPECT_FLOAT_EQ(up.at(7), 4);

    auto flat = ec::flatten(up);
    EXPECT_EQ(flat.shape(), (ec::Shape{1, 8}));
}

TEST(Conv2dBiasTest, BothConvPathsRejectMalformedBias)
{
    // Regression: conv2d used to silently ignore any bias whose shape
    // was not exactly [outC] while conv2dNaive accepted near-misses.
    // Both now share one strict check: empty shape means no bias,
    // anything else must be [outC].
    ec::Conv2dGeom g{.n = 1, .inC = 2, .inH = 6, .inW = 6, .outC = 4,
                     .kH = 3, .kW = 3, .padH = 1, .padW = 1};
    auto input = randomTensor({1, 2, 6, 6}, 201);
    auto weights = randomTensor({4, 2, 3, 3}, 202);

    for (const ec::Shape& bad :
         {ec::Shape{4, 1}, ec::Shape{3}, ec::Shape{1, 4}}) {
        auto bias = ec::Tensor::zeros(bad);
        EXPECT_THROW(ec::conv2d(input, weights, bias, g),
                     InvalidArgumentError)
            << "conv2d accepted bias shape rank " << bad.size();
        EXPECT_THROW(ec::conv2dNaive(input, weights, bias, g),
                     InvalidArgumentError)
            << "conv2dNaive accepted bias shape rank " << bad.size();
    }

    // No-bias (default tensor) and well-formed [outC] both work and
    // agree between the paths.
    auto no_bias_fast = ec::conv2d(input, weights, ec::Tensor(), g);
    auto no_bias_slow =
        ec::conv2dNaive(input, weights, ec::Tensor(), g);
    EXPECT_LT(no_bias_fast.maxAbsDiff(no_bias_slow), 1e-3);
    auto bias = randomTensor({4}, 203);
    auto fast = ec::conv2d(input, weights, bias, g);
    auto slow = ec::conv2dNaive(input, weights, bias, g);
    EXPECT_LT(fast.maxAbsDiff(slow), 1e-3);
}

TEST(Conv2dScratchTest, ArenaSizeStaysFlatAcrossBatchCounts)
{
    // The im2col matrix and packed panels are borrowed once per call
    // and reused for every (batch, group) iteration, so running a
    // bigger batch must not grow the scratch arenas.
    ec::Conv2dGeom g{.n = 1, .inC = 6, .inH = 10, .inW = 10, .outC = 8,
                     .kH = 3, .kW = 3, .padH = 1, .padW = 1,
                     .groups = 2};
    auto weights = randomTensor({8, 3, 3, 3}, 301);
    auto bias = randomTensor({8}, 302);
    ec::scratchRelease();
    ec::conv2d(randomTensor({1, 6, 10, 10}, 303), weights, bias, g);
    const std::size_t after_one = ec::scratchBytesReserved();
    EXPECT_GT(after_one, 0u);
    for (std::int64_t batch : {2, 4, 8}) {
        g.n = batch;
        ec::conv2d(randomTensor({batch, 6, 10, 10},
                                static_cast<std::uint64_t>(310 + batch)),
                   weights, bias, g);
        EXPECT_EQ(ec::scratchBytesReserved(), after_one)
            << "batch=" << batch;
    }
}

TEST(ConvPruningTest, PrunedWeightsProduceSameResultAsExplicitZeros)
{
    // Sanity for the GEMM pruned-weight fast path: numerically a
    // weight==0 skip must be exact.
    ec::Conv2dGeom g{.n = 1, .inC = 3, .inH = 8, .inW = 8, .outC = 4,
                     .kH = 3, .kW = 3, .padH = 1, .padW = 1};
    auto input = randomTensor({1, 3, 8, 8}, 101);
    auto weights = randomTensor({4, 3, 3, 3}, 102).prunedByMagnitude(0.5);
    auto bias = ec::Tensor::zeros({4});
    auto fast = ec::conv2d(input, weights, bias, g);
    auto slow = ec::conv2dNaive(input, weights, bias, g);
    EXPECT_LT(fast.maxAbsDiff(slow), 1e-4);
}
