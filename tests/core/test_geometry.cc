/**
 * @file
 * Unit tests for kernel geometry: output dims and MAC arithmetic.
 *
 * Several cases check well-known layers of the paper's models so the
 * cost model is anchored to published numbers.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/geometry.hh"

namespace ec = edgebench::core;
using edgebench::InvalidArgumentError;

TEST(Conv2dGeomTest, ResNetStemDims)
{
    // ResNet conv1: 3x224x224, 64 filters 7x7, stride 2, pad 3.
    ec::Conv2dGeom g{.n = 1, .inC = 3, .inH = 224, .inW = 224,
                     .outC = 64, .kH = 7, .kW = 7, .strideH = 2,
                     .strideW = 2, .padH = 3, .padW = 3};
    g.validate();
    EXPECT_EQ(g.outH(), 112);
    EXPECT_EQ(g.outW(), 112);
    // 112*112*64*3*7*7 = 118,013,952 MACs.
    EXPECT_EQ(g.macs(), 118013952);
    EXPECT_EQ(g.weightCount(), 64 * 3 * 7 * 7);
}

TEST(Conv2dGeomTest, SameConvolutionKeepsSpatialDims)
{
    ec::Conv2dGeom g{.n = 1, .inC = 16, .inH = 56, .inW = 56,
                     .outC = 16, .kH = 3, .kW = 3, .padH = 1, .padW = 1};
    g.validate();
    EXPECT_EQ(g.outH(), 56);
    EXPECT_EQ(g.outW(), 56);
}

TEST(Conv2dGeomTest, DilationExpandsReceptiveField)
{
    ec::Conv2dGeom g{.n = 1, .inC = 1, .inH = 9, .inW = 9, .outC = 1,
                     .kH = 3, .kW = 3, .dilH = 2, .dilW = 2};
    g.validate();
    // Effective kernel = 5 -> out = 9 - 5 + 1 = 5.
    EXPECT_EQ(g.outH(), 5);
}

TEST(Conv2dGeomTest, DepthwiseGroupsDivideMacs)
{
    // MobileNet depthwise: groups == channels.
    ec::Conv2dGeom dw{.n = 1, .inC = 32, .inH = 112, .inW = 112,
                      .outC = 32, .kH = 3, .kW = 3, .padH = 1,
                      .padW = 1, .groups = 32};
    dw.validate();
    EXPECT_EQ(dw.macs(), 112 * 112 * 32 * 3 * 3);
    EXPECT_EQ(dw.weightCount(), 32 * 3 * 3);
}

TEST(Conv2dGeomTest, InvalidGeometriesThrow)
{
    ec::Conv2dGeom g{.n = 1, .inC = 3, .inH = 8, .inW = 8, .outC = 8,
                     .kH = 3, .kW = 3};
    g.groups = 2; // inC % groups != 0
    EXPECT_THROW(g.validate(), InvalidArgumentError);
    g.groups = 1;
    g.strideH = 0;
    EXPECT_THROW(g.validate(), InvalidArgumentError);
    g.strideH = 1;
    g.kH = 20; // window larger than padded input
    EXPECT_THROW(g.validate(), InvalidArgumentError);
}

TEST(Conv3dGeomTest, C3dFirstLayerDims)
{
    // C3D conv1a on 3x16x112x112 (paper uses 12 frames; this checks
    // the canonical 16-frame variant's arithmetic).
    ec::Conv3dGeom g{.n = 1, .inC = 3, .inD = 16, .inH = 112,
                     .inW = 112, .outC = 64, .kD = 3, .kH = 3, .kW = 3,
                     .padD = 1, .padH = 1, .padW = 1};
    g.validate();
    EXPECT_EQ(g.outD(), 16);
    EXPECT_EQ(g.outH(), 112);
    EXPECT_EQ(g.outW(), 112);
    EXPECT_EQ(g.weightCount(), 64 * 3 * 27);
}

TEST(Pool2dGeomTest, FloorAndCeilModes)
{
    ec::Pool2dGeom g{.n = 1, .c = 1, .inH = 7, .inW = 7, .kH = 2,
                     .kW = 2, .strideH = 2, .strideW = 2};
    g.validate();
    EXPECT_EQ(g.outH(), 3);
    g.ceilMode = true;
    EXPECT_EQ(g.outH(), 4);
}

TEST(Pool3dGeomTest, C3dPool1Dims)
{
    ec::Pool3dGeom g{.n = 1, .c = 64, .inD = 16, .inH = 112,
                     .inW = 112, .kD = 1, .kH = 2, .kW = 2,
                     .strideD = 1, .strideH = 2, .strideW = 2};
    g.validate();
    EXPECT_EQ(g.outD(), 16);
    EXPECT_EQ(g.outH(), 56);
}

TEST(DenseGeomTest, MacsAndWeights)
{
    ec::DenseGeom g{.batch = 1, .inFeatures = 4096,
                    .outFeatures = 1000};
    g.validate();
    EXPECT_EQ(g.macs(), 4096 * 1000);
    EXPECT_EQ(g.weightCount(), 4096 * 1000);
}

TEST(DenseGeomTest, ZeroDimsThrow)
{
    ec::DenseGeom g{.batch = 1, .inFeatures = 0, .outFeatures = 10};
    EXPECT_THROW(g.validate(), InvalidArgumentError);
}
