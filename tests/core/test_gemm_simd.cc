/**
 * @file
 * SIMD-vs-scalar bit-identity oracle sweep: every vectorized path
 * (fp32/int8 GEMM microkernels with all fused-epilogue variants,
 * depthwise conv, elementwise activations/add, quantize/dequantize)
 * must produce byte-identical output with the vector paths on and
 * off, at 1/2/4 threads, over ragged shapes and pruned panels.
 *
 * In scalar-only builds (EDGEBENCH_SIMD=OFF) both runs take the same
 * path, so the sweep degenerates to a cheap self-check and the suite
 * still passes — the `simd` ctest label is valid in every build.
 */

#include <cstring>
#include <functional>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/core/gemm_packed.hh"
#include "edgebench/core/gemm_packed_int8.hh"
#include "edgebench/core/kernels.hh"
#include "edgebench/core/kernels_int8.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/quant.hh"
#include "edgebench/core/scratch.hh"
#include "edgebench/core/simd.hh"

namespace ec = edgebench::core;

namespace
{

ec::Tensor
randomTensor(const ec::Shape& s, std::uint64_t seed)
{
    ec::Rng rng(seed);
    return ec::Tensor::randomNormal(s, rng);
}

std::vector<std::int8_t>
randomInt8(std::size_t n, std::uint64_t seed)
{
    ec::Rng rng(seed);
    std::vector<std::int8_t> v(n);
    for (auto& x : v)
        x = static_cast<std::int8_t>(
            std::lround(rng.uniform(-128.0, 127.0)));
    return v;
}

class Restore
{
  public:
    Restore() : simd_(ec::simdActive()) {}
    ~Restore()
    {
        ec::setSimdActive(simd_);
        ec::setParallelism(1);
    }

  private:
    bool simd_;
};

/**
 * Run @p fill with the vector paths off then on, at 1/2/4 threads
 * each, and require every byte of the result to match the scalar
 * single-thread reference. @p fill writes `bytes` bytes at `dst`.
 */
void
expectBitIdentical(std::size_t bytes,
                   const std::function<void(void*)>& fill,
                   const char* what)
{
    std::vector<unsigned char> ref(bytes);
    std::vector<unsigned char> got(bytes);
    ec::setSimdActive(false);
    ec::setParallelism(1);
    fill(ref.data());
    for (const bool simd : {false, true}) {
        ec::setSimdActive(simd);
        for (const int threads : {1, 2, 4}) {
            ec::setParallelism(threads);
            std::memset(got.data(), 0xa5, bytes);
            fill(got.data());
            ASSERT_EQ(std::memcmp(ref.data(), got.data(), bytes), 0)
                << what << ": simd=" << simd
                << " threads=" << threads;
        }
    }
}

} // namespace

TEST(GemmSimdOracleTest, Fp32GemmAllEpiloguesRaggedShapes)
{
    Restore restore;
    for (const auto& [m, n, k] :
         {std::tuple<std::int64_t, std::int64_t, std::int64_t>{6, 8,
                                                               64},
          {17, 23, 131},
          {5, 7, 300},
          {1, 1, 1},
          {13, 40, 513},
          {64, 200, 96}}) {
        auto a = randomTensor({m, k}, 100 + static_cast<unsigned>(m));
        auto b = randomTensor({k, n}, 200 + static_cast<unsigned>(n));
        auto bias = randomTensor({m}, 300 + static_cast<unsigned>(k));
        const ec::PackedA pa = ec::packA(m, k, a.data());
        for (const bool with_bias : {false, true}) {
            for (const ec::EpilogueAct act :
                 {ec::EpilogueAct::kNone, ec::EpilogueAct::kRelu,
                  ec::EpilogueAct::kRelu6}) {
                ec::GemmEpilogue ep;
                if (with_bias)
                    ep.bias = bias.data();
                ep.act = act;
                expectBitIdentical(
                    static_cast<std::size_t>(m * n) * sizeof(float),
                    [&](void* dst) {
                        ec::gemmPackB(
                            pa.view(), n, b.data(),
                            {static_cast<float*>(dst),
                             static_cast<std::size_t>(m * n)},
                            ep);
                    },
                    "fp32 gemm");
            }
        }
    }
}

TEST(GemmSimdOracleTest, Fp32GemmPrunedPanels)
{
    Restore restore;
    const std::int64_t m = 24, n = 33, k = 520;
    auto a = randomTensor({m, k}, 11);
    // Zero complete register panels and one partial chunk so both the
    // chunk-skip flags and ragged panel tails are exercised.
    {
        auto ad = a.data();
        std::fill(ad.begin(),
                  ad.begin() + static_cast<std::size_t>(12 * k), 0.0f);
        std::fill(ad.begin() + static_cast<std::size_t>(18 * k),
                  ad.begin() + static_cast<std::size_t>(18 * k + 256),
                  0.0f);
    }
    auto b = randomTensor({k, n}, 12);
    auto bias = randomTensor({m}, 13);
    const ec::PackedA pa = ec::packA(m, k, a.data());
    ec::GemmEpilogue ep;
    ep.bias = bias.data();
    ep.act = ec::EpilogueAct::kRelu;
    expectBitIdentical(
        static_cast<std::size_t>(m * n) * sizeof(float),
        [&](void* dst) {
            ec::gemmPackB(pa.view(), n, b.data(),
                          {static_cast<float*>(dst),
                           static_cast<std::size_t>(m * n)},
                          ep);
        },
        "fp32 pruned gemm");
}

TEST(GemmSimdOracleTest, Int8GemmAllActsRaggedShapes)
{
    Restore restore;
    const ec::QuantParams qa{0.0213, 7};
    const ec::QuantParams qb{0.0471, -19};
    const ec::QuantParams qo{0.037, 3};
    const ec::Int8GemmQuant quant{qa, qb, qo};
    for (const auto& [m, n, k] :
         {std::tuple<std::int64_t, std::int64_t, std::int64_t>{4, 8,
                                                               16},
          {17, 23, 131},
          {13, 40, 300},
          {1, 1, 1}}) {
        const auto ia = randomInt8(
            static_cast<std::size_t>(m * k), 400 + static_cast<unsigned>(m));
        const auto ib = randomInt8(
            static_cast<std::size_t>(k * n), 500 + static_cast<unsigned>(n));
        auto bias = randomTensor({m}, 600 + static_cast<unsigned>(k));
        const ec::PackedAI8 pa = ec::packAInt8(m, k, ia);
        for (const bool with_bias : {false, true}) {
            for (const ec::EpilogueAct act :
                 {ec::EpilogueAct::kNone, ec::EpilogueAct::kRelu,
                  ec::EpilogueAct::kRelu6}) {
                expectBitIdentical(
                    static_cast<std::size_t>(m * n),
                    [&](void* dst) {
                        auto pb = ec::scratchI8(
                            ec::ScratchSlot::kGemmPackBI8,
                            static_cast<std::size_t>(
                                ec::packedBI8ValueCount(n, k)));
                        auto pbs = ec::scratchI32(
                            ec::ScratchSlot::kGemmPackBI8,
                            static_cast<std::size_t>(
                                ec::packedBI8SumCount(n)));
                        ec::packBInt8Into(n, k, ib, pb, pbs);
                        ec::gemmPackedInt8(
                            pa.view(), n, pb, pbs,
                            with_bias ? bias.data()
                                      : std::span<const float>{},
                            quant,
                            {static_cast<std::int8_t*>(dst),
                             static_cast<std::size_t>(m * n)},
                            act);
                    },
                    "int8 gemm");
            }
        }
    }
}

TEST(GemmSimdOracleTest, ConvAndDepthwiseFusedEpilogues)
{
    Restore restore;
    // Regular grouped conv (im2col + GEMM path).
    ec::Conv2dGeom g{.n = 2, .inC = 8, .inH = 11, .inW = 13,
                     .outC = 12, .kH = 3, .kW = 3, .strideH = 2,
                     .strideW = 2, .padH = 1, .padW = 1, .groups = 2};
    auto input = randomTensor({2, 8, 11, 13}, 21);
    auto weights = randomTensor({12, 4, 3, 3}, 22);
    auto bias = randomTensor({12}, 23);
    // Depthwise (direct path), stride 1 so the vector interior runs,
    // and a second geometry whose strided path must stay scalar.
    ec::Conv2dGeom gdw{.n = 1, .inC = 6, .inH = 17, .inW = 29,
                       .outC = 6, .kH = 3, .kW = 3, .padH = 1,
                       .padW = 1, .groups = 6};
    auto input_dw = randomTensor({1, 6, 17, 29}, 24);
    auto weights_dw = randomTensor({6, 1, 3, 3}, 25);
    auto bias_dw = randomTensor({6}, 26);
    ec::Conv2dGeom gdw2 = gdw;
    gdw2.strideH = 2;
    gdw2.strideW = 2;
    for (const ec::EpilogueAct act :
         {ec::EpilogueAct::kNone, ec::EpilogueAct::kRelu,
          ec::EpilogueAct::kRelu6}) {
        for (const auto& [geom, in, w, bv] :
             {std::tuple<const ec::Conv2dGeom&, const ec::Tensor&,
                         const ec::Tensor&, const ec::Tensor&>{
                  g, input, weights, bias},
              {gdw, input_dw, weights_dw, bias_dw},
              {gdw2, input_dw, weights_dw, bias_dw}}) {
            const std::size_t bytes = static_cast<std::size_t>(
                geom.n * geom.outC * geom.outH() * geom.outW() *
                static_cast<std::int64_t>(sizeof(float)));
            expectBitIdentical(
                bytes,
                [&, act](void* dst) {
                    const ec::Tensor out =
                        ec::conv2d(in, w, bv, geom, act);
                    std::memcpy(dst, out.data().data(), bytes);
                },
                "conv2d fused epilogue");
        }
    }
}

TEST(GemmSimdOracleTest, Int8ConvFusedActs)
{
    Restore restore;
    const ec::QuantParams in_qp{0.031, -3};
    const ec::QuantParams w_qp{0.017, 2};
    const ec::QuantParams out_qp{0.043, 5};
    // Regular and depthwise int8 convs.
    ec::Conv2dGeom g{.n = 1, .inC = 6, .inH = 9, .inW = 11, .outC = 8,
                     .kH = 3, .kW = 3, .padH = 1, .padW = 1};
    ec::Conv2dGeom gdw{.n = 1, .inC = 6, .inH = 9, .inW = 11,
                       .outC = 6, .kH = 3, .kW = 3, .padH = 1,
                       .padW = 1, .groups = 6};
    auto bias = randomTensor({8}, 33);
    auto bias_dw = randomTensor({6}, 34);
    const auto iv = randomInt8(1 * 6 * 9 * 11, 35);
    const auto wv = randomInt8(8 * 6 * 3 * 3, 36);
    const auto wv_dw = randomInt8(6 * 1 * 3 * 3, 37);
    ec::Tensor input = ec::Tensor::fromInt8({1, 6, 9, 11}, iv, in_qp);
    ec::Tensor w = ec::Tensor::fromInt8({8, 6, 3, 3}, wv, w_qp);
    ec::Tensor w_dw = ec::Tensor::fromInt8({6, 1, 3, 3}, wv_dw, w_qp);
    for (const ec::EpilogueAct act :
         {ec::EpilogueAct::kNone, ec::EpilogueAct::kRelu,
          ec::EpilogueAct::kRelu6}) {
        for (const bool depthwise : {false, true}) {
            const ec::Conv2dGeom& geom = depthwise ? gdw : g;
            const std::size_t bytes = static_cast<std::size_t>(
                geom.n * geom.outC * geom.outH() * geom.outW());
            expectBitIdentical(
                bytes,
                [&, act, depthwise](void* dst) {
                    const ec::Tensor out = ec::conv2dInt8(
                        input, depthwise ? w_dw : w,
                        depthwise ? bias_dw : bias, geom, out_qp,
                        act);
                    std::memcpy(dst, out.qdata().data(), bytes);
                },
                "int8 conv fused act");
        }
    }
}

TEST(GemmSimdOracleTest, FusedActMatchesStandaloneActivation)
{
    // The fused epilogue must equal conv-then-activation exactly —
    // in the same build, vector paths on (the fusion bit-identity
    // claim, independent of the simd-vs-scalar sweep).
    Restore restore;
    ec::Conv2dGeom g{.n = 1, .inC = 5, .inH = 9, .inW = 9, .outC = 7,
                     .kH = 3, .kW = 3, .padH = 1, .padW = 1};
    auto input = randomTensor({1, 5, 9, 9}, 41);
    auto weights = randomTensor({7, 5, 3, 3}, 42);
    auto bias = randomTensor({7}, 43);
    const ec::Tensor fused =
        ec::conv2d(input, weights, bias, g, ec::EpilogueAct::kRelu6);
    ec::Tensor unfused = ec::conv2d(input, weights, bias, g);
    ec::relu6InPlace(unfused);
    ASSERT_EQ(fused.numel(), unfused.numel());
    EXPECT_EQ(std::memcmp(fused.data().data(), unfused.data().data(),
                          static_cast<std::size_t>(fused.numel()) *
                              sizeof(float)),
              0);
}

TEST(GemmSimdOracleTest, ElementwiseKernelsBitIdentical)
{
    Restore restore;
    // Ragged length so the vector loop leaves a scalar tail.
    auto x = randomTensor({3, 7, 13, 11}, 51);
    auto y = randomTensor({3, 7, 13, 11}, 52);
    const std::size_t bytes =
        static_cast<std::size_t>(x.numel()) * sizeof(float);
    const auto copy_out = [&](const ec::Tensor& t, void* dst) {
        std::memcpy(dst, t.data().data(), bytes);
    };
    expectBitIdentical(
        bytes, [&](void* dst) { copy_out(ec::relu(x), dst); },
        "relu");
    expectBitIdentical(
        bytes, [&](void* dst) { copy_out(ec::relu6(x), dst); },
        "relu6");
    expectBitIdentical(
        bytes,
        [&](void* dst) { copy_out(ec::leakyRelu(x, 0.1f), dst); },
        "leakyRelu");
    expectBitIdentical(
        bytes,
        [&](void* dst) { copy_out(ec::addElementwise(x, y), dst); },
        "addElementwise");
    expectBitIdentical(
        bytes,
        [&](void* dst) {
            ec::Tensor t = x;
            ec::addElementwiseInPlace(t, y, /*dst_is_lhs=*/false);
            copy_out(t, dst);
        },
        "addElementwiseInPlace");
    expectBitIdentical(
        bytes,
        [&](void* dst) {
            ec::Tensor t = x;
            ec::reluInPlace(t);
            copy_out(t, dst);
        },
        "reluInPlace");
}
