/**
 * @file
 * Tests for the LSTM/GRU reference kernels.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/kernels_rnn.hh"

namespace ec = edgebench::core;
using edgebench::InvalidArgumentError;

namespace
{

ec::RnnGeom
lstmGeom(std::int64_t n, std::int64_t t, std::int64_t i,
         std::int64_t h)
{
    return {.batch = n, .seqLen = t, .inputSize = i, .hiddenSize = h,
            .gates = 4};
}

ec::RnnGeom
gruGeom(std::int64_t n, std::int64_t t, std::int64_t i, std::int64_t h)
{
    return {.batch = n, .seqLen = t, .inputSize = i, .hiddenSize = h,
            .gates = 3};
}

} // namespace

TEST(RnnGeomTest, MacsAndWeights)
{
    const auto g = lstmGeom(2, 10, 16, 32);
    EXPECT_EQ(g.macs(), 2 * 10 * 4 * 32 * (16 + 32));
    EXPECT_EQ(g.weightCount(), 4 * 32 * (16 + 32));
    EXPECT_THROW((ec::RnnGeom{.batch = 1, .seqLen = 1, .inputSize = 1,
                              .hiddenSize = 1, .gates = 2})
                     .validate(),
                 InvalidArgumentError);
}

TEST(LstmTest, ZeroInputZeroWeightsGivesZeroOutput)
{
    const auto g = lstmGeom(1, 3, 4, 5);
    auto out = ec::lstmForward(
        ec::Tensor::zeros({1, 3, 4}), ec::Tensor::zeros({20, 4}),
        ec::Tensor::zeros({20, 5}), ec::Tensor::zeros({20}), g);
    EXPECT_EQ(out.shape(), (ec::Shape{1, 3, 5}));
    // Gates: i=f=o=sigmoid(0)=0.5, g=tanh(0)=0 -> c=0, h=0.
    for (std::int64_t i = 0; i < out.numel(); ++i)
        ASSERT_FLOAT_EQ(out.at(i), 0.0f);
}

TEST(LstmTest, SingleStepMatchesHandComputation)
{
    // 1 batch, 1 step, 1 input, 1 hidden; set every weight to w and
    // bias to 0: all four gate pre-activations equal w*x.
    const auto g = lstmGeom(1, 1, 1, 1);
    const float w = 0.7f, x = 1.3f;
    auto out = ec::lstmForward(
        ec::Tensor({1, 1, 1}, {x}), ec::Tensor({4, 1}, {w, w, w, w}),
        ec::Tensor::zeros({4, 1}), ec::Tensor::zeros({4}), g);
    const double a = w * x;
    const double sig = 1.0 / (1.0 + std::exp(-a));
    const double c = sig * std::tanh(a);
    const double h = sig * std::tanh(c);
    EXPECT_NEAR(out.at(0), h, 1e-6);
}

TEST(LstmTest, HiddenStateCarriesAcrossTimesteps)
{
    // Same input at both steps: with recurrence, outputs must differ.
    const auto g = lstmGeom(1, 2, 3, 4);
    ec::Rng rng(5);
    auto in = ec::Tensor::zeros({1, 2, 3});
    auto one_step = ec::Tensor::randomNormal({1, 3}, rng);
    for (std::int64_t t = 0; t < 2; ++t)
        for (std::int64_t i = 0; i < 3; ++i)
            in.set(t * 3 + i, one_step.at(i));
    auto w_ih = ec::Tensor::randomNormal({16, 3}, rng);
    auto w_hh = ec::Tensor::randomNormal({16, 4}, rng);
    auto bias = ec::Tensor::randomNormal({16}, rng, 0.1);
    auto out = ec::lstmForward(in, w_ih, w_hh, bias, g);
    double diff = 0.0;
    for (std::int64_t j = 0; j < 4; ++j)
        diff += std::fabs(out.at(j) - out.at(4 + j));
    EXPECT_GT(diff, 1e-4);
}

TEST(LstmTest, OutputsAreBoundedByTanh)
{
    const auto g = lstmGeom(2, 8, 6, 10);
    ec::Rng rng(6);
    auto out = ec::lstmForward(
        ec::Tensor::randomNormal({2, 8, 6}, rng, 3.0),
        ec::Tensor::randomNormal({40, 6}, rng),
        ec::Tensor::randomNormal({40, 10}, rng),
        ec::Tensor::randomNormal({40}, rng), g);
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        ASSERT_LT(out.at(i), 1.0f);
        ASSERT_GT(out.at(i), -1.0f);
    }
}

TEST(LstmTest, BatchRowsAreIndependent)
{
    const auto g1 = lstmGeom(1, 4, 3, 5);
    const auto g2 = lstmGeom(2, 4, 3, 5);
    ec::Rng rng(7);
    auto w_ih = ec::Tensor::randomNormal({20, 3}, rng);
    auto w_hh = ec::Tensor::randomNormal({20, 5}, rng);
    auto bias = ec::Tensor::randomNormal({20}, rng, 0.1);
    auto a = ec::Tensor::randomNormal({1, 4, 3}, rng);
    auto b = ec::Tensor::randomNormal({1, 4, 3}, rng);
    // Stack a and b into one batch.
    ec::Tensor ab({2, 4, 3});
    for (std::int64_t i = 0; i < 12; ++i) {
        ab.set(i, a.at(i));
        ab.set(12 + i, b.at(i));
    }
    auto oa = ec::lstmForward(a, w_ih, w_hh, bias, g1);
    auto ob = ec::lstmForward(b, w_ih, w_hh, bias, g1);
    auto oab = ec::lstmForward(ab, w_ih, w_hh, bias, g2);
    for (std::int64_t i = 0; i < 20; ++i) {
        ASSERT_NEAR(oab.at(i), oa.at(i), 1e-6);
        ASSERT_NEAR(oab.at(20 + i), ob.at(i), 1e-6);
    }
}

TEST(LstmTest, ShapeMismatchesThrow)
{
    const auto g = lstmGeom(1, 2, 3, 4);
    EXPECT_THROW(
        ec::lstmForward(ec::Tensor::zeros({1, 2, 3}),
                        ec::Tensor::zeros({15, 3}), // 16 expected
                        ec::Tensor::zeros({16, 4}),
                        ec::Tensor::zeros({16}), g),
        InvalidArgumentError);
    EXPECT_THROW(
        ec::lstmForward(ec::Tensor::zeros({1, 3, 3}), // wrong T
                        ec::Tensor::zeros({16, 3}),
                        ec::Tensor::zeros({16, 4}),
                        ec::Tensor::zeros({16}), g),
        InvalidArgumentError);
    // GRU geometry passed to LSTM kernel.
    EXPECT_THROW(
        ec::lstmForward(ec::Tensor::zeros({1, 2, 3}),
                        ec::Tensor::zeros({12, 3}),
                        ec::Tensor::zeros({12, 4}),
                        ec::Tensor::zeros({12}), gruGeom(1, 2, 3, 4)),
        InvalidArgumentError);
}

TEST(GruTest, ZeroEverythingStaysZero)
{
    const auto g = gruGeom(1, 3, 2, 4);
    auto out = ec::gruForward(
        ec::Tensor::zeros({1, 3, 2}), ec::Tensor::zeros({12, 2}),
        ec::Tensor::zeros({12, 4}), ec::Tensor::zeros({12}), g);
    // z = 0.5, n = tanh(0) = 0, h' = 0.5*0 + 0.5*0 = 0.
    for (std::int64_t i = 0; i < out.numel(); ++i)
        ASSERT_FLOAT_EQ(out.at(i), 0.0f);
}

TEST(GruTest, UpdateGateInterpolates)
{
    // With a huge positive update-gate bias, z ~= 1 and the hidden
    // state barely moves from 0 regardless of input.
    const auto g = gruGeom(1, 1, 1, 1);
    ec::Tensor bias({3}, {50.0f, 0.0f, 0.0f}); // z, r, n
    ec::Rng rng(8);
    auto out = ec::gruForward(ec::Tensor({1, 1, 1}, {2.0f}),
                              ec::Tensor::randomNormal({3, 1}, rng),
                              ec::Tensor::randomNormal({3, 1}, rng),
                              bias, g);
    EXPECT_NEAR(out.at(0), 0.0, 1e-6);
}

TEST(GruTest, OutputsAreBounded)
{
    const auto g = gruGeom(2, 6, 5, 7);
    ec::Rng rng(9);
    auto out = ec::gruForward(
        ec::Tensor::randomNormal({2, 6, 5}, rng, 2.0),
        ec::Tensor::randomNormal({21, 5}, rng),
        ec::Tensor::randomNormal({21, 7}, rng),
        ec::Tensor::randomNormal({21}, rng), g);
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        ASSERT_LE(out.at(i), 1.0f);
        ASSERT_GE(out.at(i), -1.0f);
    }
}

TEST(GruTest, DeterministicAcrossCalls)
{
    const auto g = gruGeom(1, 5, 4, 6);
    ec::Rng rng(10);
    auto in = ec::Tensor::randomNormal({1, 5, 4}, rng);
    auto w_ih = ec::Tensor::randomNormal({18, 4}, rng);
    auto w_hh = ec::Tensor::randomNormal({18, 6}, rng);
    auto bias = ec::Tensor::randomNormal({18}, rng);
    auto a = ec::gruForward(in, w_ih, w_hh, bias, g);
    auto b = ec::gruForward(in, w_ih, w_hh, bias, g);
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 0.0);
}
