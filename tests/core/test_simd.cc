/**
 * @file
 * Tests for the portable SIMD layer (simd.hh): runtime dispatch
 * plumbing, per-lane helper semantics against their scalar
 * definitions, and the 64-byte alignment contract (align.hh) on
 * scratch-arena borrows and packed-weight storage.
 */

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/core/align.hh"
#include "edgebench/core/gemm_packed.hh"
#include "edgebench/core/gemm_packed_int8.hh"
#include "edgebench/core/quant.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/core/scratch.hh"
#include "edgebench/core/simd.hh"
#include "edgebench/core/tensor.hh"

namespace ec = edgebench::core;

namespace
{

/** Restore the default SIMD state whatever a test does to it. */
class SimdRestore
{
  public:
    SimdRestore() : was_(ec::simdActive()) {}
    ~SimdRestore() { ec::setSimdActive(was_); }

  private:
    bool was_;
};

} // namespace

TEST(SimdTest, RuntimeToggleMatchesBuildConfiguration)
{
    SimdRestore restore;
    if (!ec::kSimdCompiled) {
        // Scalar-only build: the toggle must be a constant-false no-op.
        EXPECT_FALSE(ec::simdActive());
        EXPECT_FALSE(ec::setSimdActive(true));
        EXPECT_FALSE(ec::simdActive());
        EXPECT_EQ(ec::simdLaneWidth(), 1);
        return;
    }
    EXPECT_TRUE(ec::setSimdActive(true));
    EXPECT_TRUE(ec::simdActive());
    EXPECT_EQ(ec::simdLaneWidth(), ec::kSimdLanes);
    EXPECT_FALSE(ec::setSimdActive(false));
    EXPECT_FALSE(ec::simdActive());
    EXPECT_EQ(ec::simdLaneWidth(), 1);
}

TEST(SimdTest, AlignedVecIsSimdAligned)
{
    // Many small allocations so an unaligned allocator would be
    // caught with overwhelming probability.
    for (int rep = 0; rep < 32; ++rep) {
        ec::AlignedVec<float> f(static_cast<std::size_t>(1 + rep));
        ec::AlignedVec<std::int8_t> b(static_cast<std::size_t>(1 + rep));
        EXPECT_TRUE(ec::isSimdAligned(f.data()));
        EXPECT_TRUE(ec::isSimdAligned(b.data()));
    }
}

TEST(SimdTest, ScratchBorrowsAreSimdAligned)
{
    ec::scratchRelease();
    EXPECT_TRUE(ec::isSimdAligned(
        ec::scratchF32(ec::ScratchSlot::kGemmPackB, 1000).data()));
    EXPECT_TRUE(ec::isSimdAligned(
        ec::scratchF64(ec::ScratchSlot::kDenseAcc, 333).data()));
    EXPECT_TRUE(ec::isSimdAligned(
        ec::scratchI8(ec::ScratchSlot::kGemmPackBI8, 77).data()));
    EXPECT_TRUE(ec::isSimdAligned(
        ec::scratchI32(ec::ScratchSlot::kGemmPackBI8, 41).data()));
    EXPECT_TRUE(ec::isSimdAligned(
        ec::scratchI64(ec::ScratchSlot::kDenseAcc, 13).data()));
    ec::scratchRelease();
}

TEST(SimdTest, PackedWeightStorageIsSimdAligned)
{
    ec::Rng rng(7);
    auto a = ec::Tensor::randomNormal({13, 37}, rng);
    const ec::PackedA pa = ec::packA(13, 37, a.data());
    EXPECT_TRUE(ec::isSimdAligned(pa.data.data()));

    std::vector<std::int8_t> ia(13 * 37);
    for (std::size_t i = 0; i < ia.size(); ++i)
        ia[i] = static_cast<std::int8_t>(i * 7 % 255 - 127);
    const ec::PackedAI8 pai = ec::packAInt8(13, 37, ia);
    EXPECT_TRUE(ec::isSimdAligned(pai.values.data()));
    EXPECT_TRUE(ec::isSimdAligned(pai.rowSums.data()));
}

#if EDGEBENCH_SIMD_COMPILED

TEST(SimdTest, LoadStoreRoundTripsUnaligned)
{
    float buf[ec::kSimdLanes + 1];
    for (int i = 0; i <= ec::kSimdLanes; ++i)
        buf[i] = static_cast<float>(i) * 0.25f - 1.0f;
    // Deliberately misaligned source/destination.
    const ec::f32x8 v = ec::loadF32x8(buf + 1);
    float out[ec::kSimdLanes];
    ec::storeF32x8(out, v);
    for (int i = 0; i < ec::kSimdLanes; ++i)
        EXPECT_EQ(out[i], buf[i + 1]);
}

TEST(SimdTest, ReluAndClampLanesMatchScalarSemantics)
{
    const float inputs[ec::kSimdLanes] = {
        -1.5f, -0.0f, 0.0f, 0.5f, 6.0f, 6.5f,
        std::numeric_limits<float>::infinity(),
        -std::numeric_limits<float>::infinity()};
    const ec::f32x8 v = ec::loadF32x8(inputs);
    float relu[ec::kSimdLanes];
    float clamped[ec::kSimdLanes];
    ec::storeF32x8(relu, ec::reluF32x8(v));
    ec::storeF32x8(clamped, ec::clampF32x8(v, 0.0f, 6.0f));
    for (int i = 0; i < ec::kSimdLanes; ++i) {
        const float x = inputs[i];
        EXPECT_EQ(relu[i], x > 0.0f ? x : 0.0f) << "lane " << i;
        EXPECT_EQ(clamped[i],
                  x < 0.0f ? 0.0f : (6.0f < x ? 6.0f : x))
            << "lane " << i;
    }
    // relu(-0.0) must be +0.0, like the scalar ternary.
    EXPECT_FALSE(std::signbit(relu[1]));
}

TEST(SimdTest, WidenInt8MatchesScalarCast)
{
    const std::int8_t src[ec::kSimdLanes] = {-128, -1, 0, 1,
                                             17,   42, 127, -77};
    std::int32_t out[ec::kSimdLanes];
    ec::storeI32x8(out, ec::widenI8ToI32x8(src));
    for (int i = 0; i < ec::kSimdLanes; ++i)
        EXPECT_EQ(out[i], static_cast<std::int32_t>(src[i]));
}

TEST(SimdTest, QuantizeDequantizeMatchScalarBitwise)
{
    SimdRestore restore;
    const ec::QuantParams qp{0.0173, -11};
    // Cover ragged tails, halfway ties, and out-of-range saturation.
    std::vector<float> src;
    ec::Rng rng(31);
    for (int i = 0; i < 1000; ++i)
        src.push_back(static_cast<float>(rng.uniform(-4.0, 4.0)));
    src.push_back(1e30f);
    src.push_back(-1e30f);
    for (int q = -140; q <= 140; ++q) {
        src.push_back(static_cast<float>((q + 0.5) * qp.scale));
        src.push_back(static_cast<float>(q * qp.scale));
    }
    ec::setSimdActive(false);
    const auto q_scalar = ec::quantize(src, qp);
    ec::setSimdActive(true);
    const auto q_simd = ec::quantize(src, qp);
    ASSERT_EQ(q_scalar.size(), q_simd.size());
    for (std::size_t i = 0; i < q_scalar.size(); ++i)
        ASSERT_EQ(q_scalar[i], q_simd[i]) << "element " << i;

    ec::setSimdActive(false);
    const auto d_scalar = ec::dequantize(q_scalar, qp);
    ec::setSimdActive(true);
    const auto d_simd = ec::dequantize(q_scalar, qp);
    ASSERT_EQ(d_scalar.size(), d_simd.size());
    for (std::size_t i = 0; i < d_scalar.size(); ++i)
        ASSERT_EQ(d_scalar[i], d_simd[i]) << "element " << i;
}

#endif // EDGEBENCH_SIMD_COMPILED
