/**
 * @file
 * Unit tests for core element types and shapes.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/types.hh"

namespace ec = edgebench::core;

TEST(DTypeTest, SizesMatchSpecification)
{
    EXPECT_DOUBLE_EQ(ec::dtypeBytes(ec::DType::kF32), 4.0);
    EXPECT_DOUBLE_EQ(ec::dtypeBytes(ec::DType::kF16), 2.0);
    EXPECT_DOUBLE_EQ(ec::dtypeBytes(ec::DType::kI8), 1.0);
    EXPECT_DOUBLE_EQ(ec::dtypeBytes(ec::DType::kI32), 4.0);
    EXPECT_DOUBLE_EQ(ec::dtypeBytes(ec::DType::kBin1), 0.125);
}

TEST(DTypeTest, NamesAreStable)
{
    EXPECT_EQ(ec::dtypeName(ec::DType::kF32), "fp32");
    EXPECT_EQ(ec::dtypeName(ec::DType::kF16), "fp16");
    EXPECT_EQ(ec::dtypeName(ec::DType::kI8), "int8");
    EXPECT_EQ(ec::dtypeName(ec::DType::kI32), "int32");
    EXPECT_EQ(ec::dtypeName(ec::DType::kBin1), "bin1");
}

TEST(ShapeTest, NumElementsOfScalarShapeIsOne)
{
    EXPECT_EQ(ec::numElements({}), 1);
}

TEST(ShapeTest, NumElementsMultipliesExtents)
{
    EXPECT_EQ(ec::numElements({1, 3, 224, 224}), 150528);
    EXPECT_EQ(ec::numElements({2, 0, 5}), 0);
}

TEST(ShapeTest, NegativeExtentThrows)
{
    EXPECT_THROW(ec::numElements({1, -2}),
                 edgebench::InvalidArgumentError);
}

TEST(ShapeTest, ToStringFormatsLikeAList)
{
    EXPECT_EQ(ec::shapeToString({1, 3, 224, 224}), "[1, 3, 224, 224]");
    EXPECT_EQ(ec::shapeToString({}), "[]");
}

TEST(ShapeTest, SameShapeComparesElementwise)
{
    EXPECT_TRUE(ec::sameShape({1, 2}, {1, 2}));
    EXPECT_FALSE(ec::sameShape({1, 2}, {2, 1}));
    EXPECT_FALSE(ec::sameShape({1, 2}, {1, 2, 1}));
}
