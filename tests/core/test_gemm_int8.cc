/**
 * @file
 * Tests for the integer pack-and-tile GEMM engine and the INT8
 * kernels routed through it. The load-bearing property is
 * bit-exactness: the packed engine must agree with the naive
 * per-element oracles on every byte (integer accumulation is exact,
 * so there is no tolerance to hide behind), and every kernel must be
 * byte-identical across thread counts. Suite names start with
 * "GemmPackedInt8" so the tsan preset's test filter picks them up.
 */

#include <algorithm>
#include <cmath>
#include <cstring>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/kernels_int8.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/rng.hh"

namespace ec = edgebench::core;
using edgebench::InvalidArgumentError;

namespace
{

/** Random int8 tensor with explicit QuantParams, full [-128,127]. */
ec::Tensor
randomInt8(const ec::Shape& s, std::uint64_t seed,
           const ec::QuantParams& qp)
{
    ec::Rng rng(seed);
    std::vector<std::int8_t> data(
        static_cast<std::size_t>(ec::numElements(s)));
    for (auto& v : data)
        v = static_cast<std::int8_t>(
            std::lround(rng.uniform(-128.0, 127.0)));
    return ec::Tensor::fromInt8(s, std::move(data), qp);
}

ec::Tensor
randomBias(std::int64_t n, std::uint64_t seed)
{
    ec::Rng rng(seed);
    return ec::Tensor::randomNormal({n}, rng, /*stddev=*/0.5);
}

void
expectSameInt8(const ec::Tensor& a, const ec::Tensor& b)
{
    ASSERT_TRUE(ec::sameShape(a.shape(), b.shape()));
    ASSERT_EQ(a.dtype(), ec::DType::kI8);
    ASSERT_EQ(b.dtype(), ec::DType::kI8);
    auto qa = a.qdata();
    auto qb = b.qdata();
    ASSERT_EQ(0, std::memcmp(qa.data(), qb.data(), qa.size()));
}

} // namespace

TEST(GemmPackedInt8Test, RequantScaleReproducesDoubleRounding)
{
    // The fixed-point multiplier/shift pair must reproduce
    // round(acc * M) for realistic requantization ratios across the
    // whole accumulator range the kernels produce. (Scales below are
    // non-dyadic, as calibration produces in practice, so no value
    // lands on an exact rounding tie where half-up and half-even
    // could legitimately differ.)
    for (double mult :
         {3.0471e-4, 7.1333e-3, 0.0419137, 0.237171, 1.70031,
          23.9033}) {
        const ec::RequantScale rs = ec::makeRequantScale(mult);
        for (std::int64_t acc = -99991; acc <= 100000; acc += 37) {
            const double real = static_cast<double>(acc) * mult;
            const double ref = std::clamp(
                std::nearbyint(real) + 3.0, -128.0, 127.0);
            EXPECT_EQ(static_cast<double>(
                          ec::requantizeFixedPoint(acc, rs, 3)),
                      ref)
                << "mult=" << mult << " acc=" << acc;
        }
    }
}

TEST(GemmPackedInt8Test, PackedALayoutRecordsRowSums)
{
    // 7 rows, MR = 6: second panel is ragged. Padding rows must be
    // zero-valued with zero row sums.
    const std::int64_t m = 7, k = 5;
    std::vector<std::int8_t> a(static_cast<std::size_t>(m * k));
    for (std::size_t i = 0; i < a.size(); ++i)
        a[i] = static_cast<std::int8_t>(
            static_cast<int>(i * 7 % 255) - 127);
    const ec::PackedAI8 packed = ec::packAInt8(m, k, a);
    ASSERT_EQ(packed.view().mPanels(), 2);
    for (std::int64_t row = 0; row < m; ++row) {
        std::int32_t want = 0;
        for (std::int64_t p = 0; p < k; ++p)
            want += a[static_cast<std::size_t>(row * k + p)];
        EXPECT_EQ(packed.rowSums[static_cast<std::size_t>(row)], want);
    }
    const ec::PackedAI8View v = packed.view();
    const std::int8_t* panel1 = v.panelValues(1);
    for (std::int64_t p = 0; p < k; ++p)
        for (std::int64_t i = m - ec::kGemmInt8MR; i < ec::kGemmInt8MR;
             ++i)
            EXPECT_EQ(panel1[p * ec::kGemmInt8MR + i], 0);
    for (std::int64_t row = m; row < 2 * ec::kGemmInt8MR; ++row)
        EXPECT_EQ(packed.rowSums[static_cast<std::size_t>(row)], 0);
}

TEST(GemmPackedInt8Test, ConvPackedMatchesNaiveOracleSweep)
{
    // Geometry sweep covering the engine's branchy paths: strided,
    // dilated, padded, grouped, depthwise (incl. depth multiplier),
    // pointwise pack-from-image, and ragged M/N tile edges. Zero
    // points are deliberately asymmetric on every operand.
    struct Case
    {
        std::int64_t n, inC, inH, inW, outC, kH, kW;
        std::int64_t stride, pad, dil, groups;
    };
    const Case cases[] = {
        {1, 3, 9, 9, 7, 3, 3, 1, 1, 1, 1},    // ragged outC
        {2, 4, 8, 8, 6, 3, 3, 2, 1, 1, 1},    // strided, batch 2
        {1, 2, 11, 11, 5, 3, 3, 1, 2, 2, 1},  // dilated
        {1, 4, 7, 7, 6, 3, 3, 1, 1, 1, 2},    // grouped
        {1, 6, 8, 8, 6, 3, 3, 1, 1, 1, 6},    // depthwise
        {1, 4, 6, 6, 8, 3, 3, 1, 1, 1, 4},    // depth multiplier 2
        {1, 8, 5, 5, 13, 1, 1, 1, 0, 1, 1},   // pointwise
        {1, 1, 12, 12, 1, 5, 5, 3, 2, 1, 1},  // single channel
    };
    const ec::QuantParams iq{0.0471, -19};
    const ec::QuantParams wq{0.00823, 5};
    const ec::QuantParams oq{0.0913, 7};
    std::uint64_t seed = 40;
    for (const Case& c : cases) {
        ec::Conv2dGeom g;
        g.n = c.n;
        g.inC = c.inC;
        g.inH = c.inH;
        g.inW = c.inW;
        g.outC = c.outC;
        g.kH = c.kH;
        g.kW = c.kW;
        g.strideH = g.strideW = c.stride;
        g.padH = g.padW = c.pad;
        g.dilH = g.dilW = c.dil;
        g.groups = c.groups;
        auto input = randomInt8({g.n, g.inC, g.inH, g.inW}, ++seed, iq);
        auto weights = randomInt8(
            {g.outC, g.inC / g.groups, g.kH, g.kW}, ++seed, wq);
        auto bias = randomBias(g.outC, ++seed);
        auto ref = ec::conv2dInt8Naive(input, weights, bias, g, oq);
        auto got = ec::conv2dInt8(input, weights, bias, g, oq);
        expectSameInt8(ref, got);
        auto packed = ec::packConv2dWeightsInt8(weights, g);
        auto cached =
            ec::conv2dInt8Packed(input, weights, packed, bias, g, oq);
        expectSameInt8(ref, cached);
        // And without bias.
        auto ref_nb = ec::conv2dInt8Naive(input, weights, ec::Tensor(),
                                          g, oq);
        auto got_nb =
            ec::conv2dInt8(input, weights, ec::Tensor(), g, oq);
        expectSameInt8(ref_nb, got_nb);
    }
}

TEST(GemmPackedInt8Test, ConvSaturatingEdgesMatchNaive)
{
    // A tiny output scale forces most accumulators past the int8
    // rails, so the clamp to -128/127 is exercised on both paths.
    ec::Conv2dGeom g;
    g.n = 1;
    g.inC = 3;
    g.inH = 8;
    g.inW = 8;
    g.outC = 9;
    g.kH = 3;
    g.kW = 3;
    g.padH = g.padW = 1;
    const ec::QuantParams iq{0.1, 23};
    const ec::QuantParams wq{0.05, -11};
    const ec::QuantParams oq{0.001, -3};
    auto input = randomInt8({1, 3, 8, 8}, 91, iq);
    auto weights = randomInt8({9, 3, 3, 3}, 92, wq);
    auto bias = randomBias(9, 93);
    auto ref = ec::conv2dInt8Naive(input, weights, bias, g, oq);
    auto got = ec::conv2dInt8(input, weights, bias, g, oq);
    expectSameInt8(ref, got);
    // Sanity: saturation actually happened on both rails.
    int lo = 0, hi = 0;
    for (auto q : ref.qdata()) {
        lo += q == -128;
        hi += q == 127;
    }
    EXPECT_GT(lo, 0);
    EXPECT_GT(hi, 0);
}

TEST(GemmPackedInt8Test, DensePackedMatchesNaiveOracle)
{
    const ec::QuantParams iq{0.031, 14};
    const ec::QuantParams wq{0.0117, -8};
    const ec::QuantParams oq{0.057, -25};
    for (auto [batch, in_f, out_f] :
         {std::tuple<std::int64_t, std::int64_t, std::int64_t>{1, 37,
                                                               13},
          {3, 64, 7}, {2, 129, 31}}) {
        ec::DenseGeom g;
        g.batch = batch;
        g.inFeatures = in_f;
        g.outFeatures = out_f;
        auto input = randomInt8({batch, in_f}, 60 + out_f, iq);
        auto weights = randomInt8({out_f, in_f}, 61 + out_f, wq);
        auto bias = randomBias(out_f, 62 + out_f);
        auto ref = ec::denseInt8Naive(input, weights, bias, g, oq);
        auto got = ec::denseInt8(input, weights, bias, g, oq);
        expectSameInt8(ref, got);
        auto packed = ec::packDenseWeightsInt8(weights, g);
        auto cached =
            ec::denseInt8Packed(input, weights, packed, bias, g, oq);
        expectSameInt8(ref, cached);
    }
}

TEST(GemmPackedInt8Test, MalformedBiasThrows)
{
    // Regression for the strict bias contract: the retired kernels
    // silently dropped any bias whose shape was not exactly [outC].
    ec::Conv2dGeom g;
    g.n = 1;
    g.inC = 2;
    g.inH = 6;
    g.inW = 6;
    g.outC = 4;
    g.kH = 3;
    g.kW = 3;
    const ec::QuantParams qp{0.05, 0};
    auto input = randomInt8({1, 2, 6, 6}, 70, qp);
    auto weights = randomInt8({4, 2, 3, 3}, 71, qp);
    for (const ec::Shape& bad :
         {ec::Shape{4, 1}, ec::Shape{3}, ec::Shape{1, 4}}) {
        auto bias = ec::Tensor::zeros(bad);
        EXPECT_THROW(ec::conv2dInt8(input, weights, bias, g, qp),
                     InvalidArgumentError)
            << "conv2dInt8 accepted bias rank " << bad.size();
        EXPECT_THROW(ec::conv2dInt8Naive(input, weights, bias, g, qp),
                     InvalidArgumentError);
    }
    ec::DenseGeom dg;
    dg.batch = 1;
    dg.inFeatures = 72;
    dg.outFeatures = 4;
    auto din = randomInt8({1, 72}, 72, qp);
    auto dw = randomInt8({4, 72}, 73, qp);
    auto dbias = ec::Tensor::zeros({5});
    EXPECT_THROW(ec::denseInt8(din, dw, dbias, dg, qp),
                 InvalidArgumentError);
    EXPECT_THROW(ec::denseInt8Naive(din, dw, dbias, dg, qp),
                 InvalidArgumentError);
    // Empty-shape default tensor still means "no bias".
    auto out = ec::denseInt8(din, dw, ec::Tensor(), dg, qp);
    EXPECT_EQ(out.dtype(), ec::DType::kI8);
}

TEST(GemmPackedInt8Test, KernelsAreThreadCountInvariant)
{
    // Byte-identical kernel outputs at 1/2/4 workers — the int8 leg
    // of the repo-wide determinism contract (tiles only partition
    // outputs, never the k loop).
    ec::Conv2dGeom g;
    g.n = 1;
    g.inC = 8;
    g.inH = 14;
    g.inW = 14;
    g.outC = 19;
    g.kH = 3;
    g.kW = 3;
    g.padH = g.padW = 1;
    const ec::QuantParams iq{0.042, -30};
    const ec::QuantParams wq{0.009, 12};
    const ec::QuantParams oq{0.08, 4};
    auto input = randomInt8({1, 8, 14, 14}, 80, iq);
    auto weights = randomInt8({19, 8, 3, 3}, 81, wq);
    auto bias = randomBias(19, 82);
    ec::DenseGeom dg;
    dg.batch = 2;
    dg.inFeatures = 100;
    dg.outFeatures = 27;
    auto din = randomInt8({2, 100}, 83, iq);
    auto dw = randomInt8({27, 100}, 84, wq);

    std::vector<ec::Tensor> convs, denses;
    for (int threads : {1, 2, 4}) {
        ec::setParallelism(threads);
        convs.push_back(ec::conv2dInt8(input, weights, bias, g, oq));
        denses.push_back(
            ec::denseInt8(din, dw, ec::Tensor(), dg, oq));
    }
    ec::setParallelism(0);
    for (std::size_t i = 1; i < convs.size(); ++i) {
        expectSameInt8(convs[0], convs[i]);
        expectSameInt8(denses[0], denses[i]);
    }
}

TEST(GemmPackedInt8Test, AddInt8MatchesRealDomainWithinStep)
{
    // The shared-shift dual-multiplier add must land within one
    // output quantization step of the exact real-domain sum.
    const ec::QuantParams aq{0.043, -7};
    const ec::QuantParams bq{0.029, 18};
    const ec::QuantParams oq{0.061, -2};
    auto a = randomInt8({2, 3, 5, 5}, 95, aq);
    auto b = randomInt8({2, 3, 5, 5}, 96, bq);
    auto out = ec::addInt8(a, b, oq);
    auto qa = a.qdata();
    auto qb = b.qdata();
    auto qo = out.qdata();
    const double rep_lo = oq.scale * (-128 - oq.zeroPoint);
    const double rep_hi = oq.scale * (127 - oq.zeroPoint);
    for (std::size_t i = 0; i < qo.size(); ++i) {
        const double real = std::clamp(
            ec::dequantizeValue(qa[i], aq) +
                ec::dequantizeValue(qb[i], bq),
            rep_lo, rep_hi);
        const double got = ec::dequantizeValue(qo[i], oq);
        EXPECT_NEAR(got, real, oq.scale * 0.501 + 1e-12);
    }
}
