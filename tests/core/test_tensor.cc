/**
 * @file
 * Unit tests for Tensor: construction, conversions, pruning.
 */

#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/tensor.hh"

namespace ec = edgebench::core;
using edgebench::InvalidArgumentError;

TEST(TensorTest, DefaultIsScalarZero)
{
    ec::Tensor t;
    EXPECT_EQ(t.numel(), 1);
    EXPECT_FLOAT_EQ(t.at(0), 0.0f);
}

TEST(TensorTest, ZerosHasRequestedShape)
{
    auto t = ec::Tensor::zeros({2, 3, 4});
    EXPECT_EQ(t.shape(), (ec::Shape{2, 3, 4}));
    EXPECT_EQ(t.numel(), 24);
    for (std::int64_t i = 0; i < t.numel(); ++i)
        ASSERT_FLOAT_EQ(t.at(i), 0.0f);
}

TEST(TensorTest, FullFillsValue)
{
    auto t = ec::Tensor::full({5}, 2.5f);
    for (std::int64_t i = 0; i < 5; ++i)
        ASSERT_FLOAT_EQ(t.at(i), 2.5f);
}

TEST(TensorTest, DataSizeMismatchThrows)
{
    EXPECT_THROW(ec::Tensor({2, 2}, {1.0f, 2.0f, 3.0f}),
                 InvalidArgumentError);
}

TEST(TensorTest, OutOfRangeAccessThrows)
{
    auto t = ec::Tensor::zeros({2});
    EXPECT_THROW(t.at(2), InvalidArgumentError);
    EXPECT_THROW(t.at(-1), InvalidArgumentError);
    EXPECT_THROW(t.set(5, 1.0f), InvalidArgumentError);
}

TEST(TensorTest, RandomNormalIsDeterministicPerSeed)
{
    ec::Rng r1(5), r2(5);
    auto a = ec::Tensor::randomNormal({100}, r1);
    auto b = ec::Tensor::randomNormal({100}, r2);
    EXPECT_DOUBLE_EQ(a.maxAbsDiff(b), 0.0);
}

TEST(TensorTest, ByteSizeScalesWithDtype)
{
    ec::Rng rng(1);
    auto t = ec::Tensor::randomNormal({10, 10}, rng);
    EXPECT_EQ(t.byteSize(), std::int64_t{400});
    EXPECT_EQ(t.toF16().byteSize(), std::int64_t{200});
    EXPECT_EQ(t.toInt8().byteSize(), std::int64_t{100});
}

TEST(TensorTest, ByteSizeIsExactBeyondFloatMantissa)
{
    // 2^24 + 1 elements: 4x that byte count is not representable in a
    // float (the old double/float accounting rounded it); the integer
    // accounting must be exact.
    const std::int64_t n = (std::int64_t{1} << 24) + 1;
    ec::Tensor t = ec::Tensor::zeros({n});
    EXPECT_EQ(t.byteSize(), n * 4);
}

TEST(TensorTest, BorrowedStorageIsViewedNotCopied)
{
    std::vector<float> slab(12, 7.0f);
    auto t = ec::Tensor::borrowF32({3, 4}, slab);
    EXPECT_TRUE(t.borrowed());
    EXPECT_EQ(t.storageAddress(), slab.data());
    EXPECT_FLOAT_EQ(t.at(5), 7.0f);
    t.set(5, 1.5f);
    EXPECT_FLOAT_EQ(slab[5], 1.5f); // writes land in the slab
}

TEST(TensorTest, CopyingBorrowedTensorDetachesAndCounts)
{
    std::vector<float> slab(4, 2.0f);
    auto t = ec::Tensor::borrowF32({4}, slab);
    const auto before = ec::Tensor::copyCount();
    ec::Tensor c = t;
    EXPECT_EQ(ec::Tensor::copyCount(), before + 1);
    EXPECT_FALSE(c.borrowed());
    EXPECT_NE(c.storageAddress(), slab.data());
    slab[0] = 9.0f; // the copy no longer aliases the slab
    EXPECT_FLOAT_EQ(c.at(0), 2.0f);
}

TEST(TensorTest, MovePreservesBorrowedStorageIdentity)
{
    std::vector<float> slab(4, 0.0f);
    auto t = ec::Tensor::borrowF32({4}, slab);
    const auto before = ec::Tensor::copyCount();
    ec::Tensor m = std::move(t);
    EXPECT_EQ(ec::Tensor::copyCount(), before); // moves never copy
    EXPECT_TRUE(m.borrowed());
    EXPECT_EQ(m.storageAddress(), slab.data());
}

TEST(TensorTest, OutputSinkHandsSlotToFirstMatchingConstruction)
{
    std::vector<float> slab(6, 3.0f);
    ec::OutputSink::armF32({2, 3}, slab, /*clear=*/true);
    ec::Tensor wrong = ec::Tensor::zeros({5}); // shape mismatch: owned
    EXPECT_FALSE(wrong.borrowed());
    ec::Tensor hit = ec::Tensor::zeros({2, 3});
    EXPECT_TRUE(hit.borrowed());
    EXPECT_EQ(hit.storageAddress(), slab.data());
    EXPECT_FLOAT_EQ(slab[0], 0.0f); // clear=true zeroed the slab
    EXPECT_TRUE(ec::OutputSink::consumed());
    ec::Tensor second = ec::Tensor::zeros({2, 3}); // one-shot
    EXPECT_FALSE(second.borrowed());
    ec::OutputSink::disarm();
}

TEST(TensorTest, OutputSinkInt8SlotBacksQuantizedTensor)
{
    std::vector<std::int8_t> slab(4, 41);
    const ec::QuantParams qp{0.5, 1};
    ec::OutputSink::armI8({4}, slab, /*clear=*/false);
    ec::Tensor t = ec::Tensor::forOutputI8({4}, qp);
    EXPECT_TRUE(t.borrowed());
    EXPECT_EQ(t.storageAddress(), slab.data());
    EXPECT_EQ(t.qdata()[0], 41); // clear=false leaves bytes alone
    ec::OutputSink::disarm();
    ec::Tensor owned = ec::Tensor::forOutputI8({4}, qp);
    EXPECT_FALSE(owned.borrowed());
    EXPECT_EQ(owned.qdata()[0], 0);
}

TEST(TensorTest, Int8RoundTripWithinStepError)
{
    ec::Rng rng(2);
    auto t = ec::Tensor::randomUniform({1000}, rng, -3.0, 3.0);
    auto q = t.toInt8();
    ASSERT_EQ(q.dtype(), ec::DType::kI8);
    const double bound =
        ec::quantizationStepError(q.quantParams()) + 1e-9;
    EXPECT_LE(t.maxAbsDiff(q.toF32()), bound);
}

TEST(TensorTest, F16RoundTripIsCloseForModerateValues)
{
    ec::Rng rng(3);
    auto t = ec::Tensor::randomUniform({1000}, rng, -8.0, 8.0);
    auto h = t.toF16();
    ASSERT_EQ(h.dtype(), ec::DType::kF16);
    // binary16 has ~3 decimal digits; relative error < 2^-11.
    auto ha = h.data();
    auto ta = t.data();
    for (std::size_t i = 0; i < ta.size(); ++i) {
        ASSERT_NEAR(ha[i], ta[i],
                    std::fabs(ta[i]) * 0x1.0p-10 + 1e-6);
    }
}

TEST(TensorTest, F16IsIdempotent)
{
    ec::Rng rng(4);
    auto t = ec::Tensor::randomNormal({256}, rng);
    auto once = t.toF16();
    auto twice = once.toF16();
    EXPECT_DOUBLE_EQ(once.maxAbsDiff(twice), 0.0);
}

TEST(TensorTest, F16HandlesSpecialValues)
{
    EXPECT_FLOAT_EQ(ec::roundThroughF16(0.0f), 0.0f);
    EXPECT_FLOAT_EQ(ec::roundThroughF16(-0.0f), 0.0f);
    EXPECT_FLOAT_EQ(ec::roundThroughF16(1.0f), 1.0f);
    EXPECT_FLOAT_EQ(ec::roundThroughF16(-2.0f), -2.0f);
    EXPECT_FLOAT_EQ(ec::roundThroughF16(65504.0f), 65504.0f);
    // Overflow saturates to infinity.
    EXPECT_TRUE(std::isinf(ec::roundThroughF16(1e6f)));
    EXPECT_TRUE(std::isnan(ec::roundThroughF16(NAN)));
    // Subnormal half range round-trips approximately.
    EXPECT_NEAR(ec::roundThroughF16(1e-5f), 1e-5f, 1e-7f);
}

TEST(TensorTest, QuantizedAccessorsGuardDtype)
{
    auto t = ec::Tensor::zeros({4});
    EXPECT_THROW(t.qdata(), InvalidArgumentError);
    EXPECT_THROW(t.quantParams(), InvalidArgumentError);
    auto q = t.toInt8();
    EXPECT_THROW(q.data(), InvalidArgumentError);
}

TEST(TensorTest, SparsityCountsZeros)
{
    ec::Tensor t({4}, {0.0f, 1.0f, 0.0f, 2.0f});
    EXPECT_DOUBLE_EQ(t.sparsity(), 0.5);
}

TEST(TensorTest, PruneZeroesSmallestMagnitudes)
{
    ec::Tensor t({5}, {0.1f, -5.0f, 0.2f, 3.0f, -0.05f});
    auto p = t.prunedByMagnitude(0.6);
    EXPECT_DOUBLE_EQ(p.sparsity(), 0.6);
    // The two largest magnitudes must survive.
    EXPECT_FLOAT_EQ(p.at(1), -5.0f);
    EXPECT_FLOAT_EQ(p.at(3), 3.0f);
}

TEST(TensorTest, PruneFractionBoundsAreChecked)
{
    auto t = ec::Tensor::zeros({4});
    EXPECT_THROW(t.prunedByMagnitude(-0.1), InvalidArgumentError);
    EXPECT_THROW(t.prunedByMagnitude(1.5), InvalidArgumentError);
}

TEST(TensorTest, PruneZeroFractionIsIdentity)
{
    ec::Rng rng(6);
    auto t = ec::Tensor::randomNormal({64}, rng);
    EXPECT_DOUBLE_EQ(t.maxAbsDiff(t.prunedByMagnitude(0.0)), 0.0);
}

TEST(TensorTest, MaxAbsDiffRequiresSameShape)
{
    auto a = ec::Tensor::zeros({2});
    auto b = ec::Tensor::zeros({3});
    EXPECT_THROW(a.maxAbsDiff(b), InvalidArgumentError);
}

TEST(TensorTest, MaxAbsDiffComparesAcrossDtypes)
{
    ec::Tensor t({2}, {1.0f, -1.0f});
    auto q = t.toInt8();
    // Zero-point rounding can push the worst case to a full step.
    EXPECT_LE(t.maxAbsDiff(q),
              2.0 * ec::quantizationStepError(q.quantParams()) + 1e-9);
}
