/**
 * @file
 * Unit tests for the deterministic RNG.
 */

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/rng.hh"

namespace ec = edgebench::core;

TEST(RngTest, SameSeedSameStream)
{
    ec::Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge)
{
    ec::Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 2);
}

TEST(RngTest, UniformStaysInUnitInterval)
{
    ec::Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(RngTest, UniformRangeRespectsBounds)
{
    ec::Rng rng(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        ASSERT_GE(u, -3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(RngTest, UniformIntCoversInclusiveRange)
{
    ec::Rng rng(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 10000; ++i) {
        const auto v = rng.uniformInt(0, 7);
        ASSERT_GE(v, 0);
        ASSERT_LE(v, 7);
        saw_lo |= (v == 0);
        saw_hi |= (v == 7);
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformIntIsUnbiasedOnNonPowerOfTwoSpan)
{
    // Span 3 over a 64-bit word is the classic modulo-bias case; the
    // rejection sampler must keep each bucket within chi-square
    // bounds. With n=300000, sigma per bucket ~ 258; allow 4 sigma.
    ec::Rng rng(17);
    const int n = 300000;
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(0, 2)];
    for (const int c : counts)
        EXPECT_NEAR(static_cast<double>(c), n / 3.0, 4.0 * 258.0);
}

TEST(RngTest, UniformIntHandlesExtremeBounds)
{
    ec::Rng rng(19);
    // Degenerate span.
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(rng.uniformInt(5, 5), 5);
    // Negative ranges.
    for (int i = 0; i < 1000; ++i) {
        const auto v = rng.uniformInt(-7, -1);
        ASSERT_GE(v, -7);
        ASSERT_LE(v, -1);
    }
    // Full 64-bit span (span wraps to 0 internally).
    const auto lo = std::numeric_limits<std::int64_t>::min();
    const auto hi = std::numeric_limits<std::int64_t>::max();
    bool saw_negative = false, saw_positive = false;
    for (int i = 0; i < 100; ++i) {
        const auto v = rng.uniformInt(lo, hi);
        saw_negative |= (v < 0);
        saw_positive |= (v > 0);
    }
    EXPECT_TRUE(saw_negative);
    EXPECT_TRUE(saw_positive);
    // Inverted bounds throw.
    EXPECT_THROW(rng.uniformInt(1, 0),
                 edgebench::InvalidArgumentError);
}

TEST(RngTest, NormalHasApproximatelyUnitMoments)
{
    ec::Rng rng(11);
    const int n = 200000;
    double sum = 0.0, sumsq = 0.0;
    for (int i = 0; i < n; ++i) {
        const double v = rng.normal();
        sum += v;
        sumsq += v * v;
    }
    const double mean = sum / n;
    const double var = sumsq / n - mean * mean;
    EXPECT_NEAR(mean, 0.0, 0.02);
    EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(RngTest, ScaledNormalAppliesMeanAndStddev)
{
    ec::Rng rng(13);
    const int n = 100000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 0.5);
    EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, ForkProducesIndependentStream)
{
    ec::Rng parent(21);
    ec::Rng child = parent.fork();
    // The fork must not replay the parent stream.
    ec::Rng parent2(21);
    parent2.fork();
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (child.next() == parent2.next());
    EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsDeterministic)
{
    ec::Rng a(33), b(33);
    ec::Rng ca = a.fork(), cb = b.fork();
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(ca.next(), cb.next());
}
