/**
 * @file
 * Unit tests for the affine INT8 quantization primitives.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/quant.hh"

namespace ec = edgebench::core;

TEST(QuantParamsTest, ZeroIsExactlyRepresentable)
{
    const auto qp = ec::chooseQuantParams(-1.7, 3.2);
    const auto q0 = ec::quantizeValue(0.0, qp);
    EXPECT_DOUBLE_EQ(ec::dequantizeValue(q0, qp), 0.0);
}

TEST(QuantParamsTest, RangeNotContainingZeroIsWidened)
{
    const auto qp = ec::chooseQuantParams(2.0, 6.0);
    // Widened range is [0, 6]; zero must map inside [-128, 127].
    EXPECT_GE(qp.zeroPoint, -128);
    EXPECT_LE(qp.zeroPoint, 127);
    EXPECT_DOUBLE_EQ(
        ec::dequantizeValue(ec::quantizeValue(0.0, qp), qp), 0.0);
}

TEST(QuantParamsTest, DegenerateRangeGetsUnitScale)
{
    const auto qp = ec::chooseQuantParams(0.0, 0.0);
    EXPECT_DOUBLE_EQ(qp.scale, 1.0);
    EXPECT_EQ(qp.zeroPoint, 0);
}

TEST(QuantParamsTest, InvertedRangeThrows)
{
    EXPECT_THROW(ec::chooseQuantParams(1.0, -1.0),
                 edgebench::InvalidArgumentError);
}

TEST(QuantParamsTest, SymmetricHasZeroZeroPoint)
{
    const auto qp = ec::chooseSymmetricQuantParams(4.0);
    EXPECT_EQ(qp.zeroPoint, 0);
    EXPECT_DOUBLE_EQ(qp.scale, 4.0 / 127.0);
}

TEST(QuantizeTest, SaturatesOutOfRangeValues)
{
    const auto qp = ec::chooseQuantParams(-1.0, 1.0);
    EXPECT_EQ(ec::quantizeValue(100.0, qp), 127);
    EXPECT_EQ(ec::quantizeValue(-100.0, qp), -128);
}

TEST(QuantizeTest, RoundTripErrorBoundedByHalfStep)
{
    const auto qp = ec::chooseQuantParams(-2.0, 2.0);
    const double bound = ec::quantizationStepError(qp) + 1e-12;
    for (double v = -2.0; v <= 2.0; v += 0.01) {
        const double r = ec::dequantizeValue(ec::quantizeValue(v, qp), qp);
        ASSERT_LE(std::fabs(r - v), bound) << "v=" << v;
    }
}

TEST(QuantizeTest, BufferRoundTripMatchesScalarPath)
{
    const auto qp = ec::chooseQuantParams(-1.0, 1.0);
    const std::vector<float> src = {-1.0f, -0.5f, 0.0f, 0.33f, 0.99f};
    const auto q = ec::quantize(src, qp);
    const auto back = ec::dequantize(q, qp);
    ASSERT_EQ(back.size(), src.size());
    for (std::size_t i = 0; i < src.size(); ++i) {
        EXPECT_FLOAT_EQ(
            back[i],
            static_cast<float>(ec::dequantizeValue(
                ec::quantizeValue(src[i], qp), qp)));
    }
}

TEST(QuantizeTest, ObserveMinMaxTracksExtremes)
{
    double mn = 1e300, mx = -1e300;
    const std::vector<float> src = {0.5f, -3.0f, 2.0f};
    ec::observeMinMax(src, mn, mx);
    EXPECT_DOUBLE_EQ(mn, -3.0);
    EXPECT_DOUBLE_EQ(mx, 2.0);
}

TEST(QuantizeTest, ObserveMinMaxInt8MatchesDequantizeThenObserve)
{
    // The streaming path must see exactly the values a materialized
    // dequantize() + observeMinMax() pass would — including the f32
    // rounding of each dequantized value.
    const auto qp = ec::chooseQuantParams(-1.7, 2.3);
    std::vector<std::int8_t> q;
    for (int v = -128; v <= 127; ++v)
        q.push_back(static_cast<std::int8_t>(v));

    double mn_ref = 1e300, mx_ref = -1e300;
    ec::observeMinMax(ec::dequantize(q, qp), mn_ref, mx_ref);

    double mn = 1e300, mx = -1e300;
    ec::observeMinMaxInt8(q, qp, mn, mx);
    EXPECT_DOUBLE_EQ(mn, mn_ref);
    EXPECT_DOUBLE_EQ(mx, mx_ref);

    // Streaming accumulates: a second batch only widens the range.
    const std::vector<std::int8_t> narrow = {0, 1};
    ec::observeMinMaxInt8(narrow, qp, mn, mx);
    EXPECT_DOUBLE_EQ(mn, mn_ref);
    EXPECT_DOUBLE_EQ(mx, mx_ref);
}
