/**
 * @file
 * Tests for the pack-and-tile GEMM engine: packed-layout round trips,
 * oracle cross-checks against naive triple loops and conv2dNaive over
 * ragged/strided/dilated/grouped/depthwise shapes, pack-time zero-chunk
 * pruning, and byte-identical results across 1/2/4 threads.
 */

#include <cstring>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/gemm_packed.hh"
#include "edgebench/core/kernels.hh"
#include "edgebench/core/parallel.hh"

namespace ec = edgebench::core;
using edgebench::InvalidArgumentError;

namespace
{

ec::Tensor
randomTensor(const ec::Shape& s, std::uint64_t seed)
{
    ec::Rng rng(seed);
    return ec::Tensor::randomNormal(s, rng);
}

std::vector<float>
naiveGemm(std::int64_t m, std::int64_t n, std::int64_t k,
          std::span<const float> a, std::span<const float> b)
{
    std::vector<float> c(static_cast<std::size_t>(m * n));
    for (std::int64_t i = 0; i < m; ++i)
        for (std::int64_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (std::int64_t p = 0; p < k; ++p)
                acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
            c[static_cast<std::size_t>(i * n + j)] =
                static_cast<float>(acc);
        }
    return c;
}

class ThreadRestore
{
  public:
    ~ThreadRestore() { ec::setParallelism(1); }
};

} // namespace

TEST(GemmPackedTest, PackedLayoutRoundTripsRaggedTiles)
{
    // m, k deliberately not multiples of MR / KChunk.
    const std::int64_t m = 13, k = 300;
    auto a = randomTensor({m, k}, 1);
    const ec::PackedA pa = ec::packA(m, k, a.data());
    const ec::PackedAView v = pa.view();
    ASSERT_EQ(v.mPanels(), (m + ec::kGemmMR - 1) / ec::kGemmMR);
    ASSERT_EQ(v.kChunks(), 2);
    for (std::int64_t ip = 0; ip < v.mPanels(); ++ip) {
        const float* vals = v.panelValues(ip);
        for (std::int64_t p = 0; p < k; ++p)
            for (std::int64_t i = 0; i < ec::kGemmMR; ++i) {
                const std::int64_t row = ip * ec::kGemmMR + i;
                const float expected =
                    row < m ? a.at(row * k + p) : 0.0f;
                ASSERT_EQ(vals[p * ec::kGemmMR + i], expected)
                    << "panel " << ip << " p " << p << " i " << i;
            }
    }
}

TEST(GemmPackedTest, MatchesNaiveTripleLoopOnRaggedShapes)
{
    // Cover ragged edges in every dimension and a multi-chunk k.
    for (const auto& [m, n, k] :
         {std::tuple<std::int64_t, std::int64_t, std::int64_t>{6, 8,
                                                               256},
          {17, 23, 131},
          {5, 7, 300},
          {1, 1, 1},
          {13, 40, 513}}) {
        auto a = randomTensor({m, k}, 10 + static_cast<unsigned>(m));
        auto b = randomTensor({k, n}, 20 + static_cast<unsigned>(n));
        std::vector<float> c(static_cast<std::size_t>(m * n));
        ec::gemm(m, n, k, a.data(), b.data(), c);
        const auto ref = naiveGemm(m, n, k, a.data(), b.data());
        for (std::size_t i = 0; i < c.size(); ++i)
            ASSERT_NEAR(c[i], ref[i], 1e-3)
                << m << "x" << n << "x" << k << " element " << i;
    }
}

TEST(GemmPackedTest, PrepackedAMatchesAdHocGemm)
{
    const std::int64_t m = 19, n = 31, k = 67;
    auto a = randomTensor({m, k}, 3);
    auto b = randomTensor({k, n}, 4);
    std::vector<float> c1(static_cast<std::size_t>(m * n));
    std::vector<float> c2(c1.size());
    ec::gemm(m, n, k, a.data(), b.data(), c1);
    const ec::PackedA pa = ec::packA(m, k, a.data());
    ec::gemmPackB(pa.view(), n, b.data(), c2);
    EXPECT_EQ(std::memcmp(c1.data(), c2.data(),
                          c1.size() * sizeof(float)),
              0);
}

TEST(GemmPackedTest, ZeroChunkFlagsDetectPrunedPanels)
{
    // k = 513 -> 3 chunks. Zero rows 0..5 (one whole panel) in chunk 0
    // only; panel 0 must flag chunk 0 and nothing else.
    const std::int64_t m = 12, k = 513;
    auto a = randomTensor({m, k}, 5);
    for (std::int64_t i = 0; i < ec::kGemmMR; ++i)
        for (std::int64_t p = 0; p < ec::kGemmKChunk; ++p)
            a.set(i * k + p, 0.0f);
    const ec::PackedA pa = ec::packA(m, k, a.data());
    const ec::PackedAView v = pa.view();
    ASSERT_EQ(v.kChunks(), 3);
    EXPECT_EQ(v.panelFlags(0)[0], 1.0f);
    EXPECT_EQ(v.panelFlags(0)[1], 0.0f);
    EXPECT_EQ(v.panelFlags(0)[2], 0.0f);
    EXPECT_EQ(v.panelFlags(1)[0], 0.0f);
}

TEST(GemmPackedTest, PrunedChunkSkipIsExact)
{
    const std::int64_t m = 24, n = 40, k = 520;
    auto a = randomTensor({m, k}, 6);
    // Zero the first three whole row panels (rows 0..17): their chunk
    // flags make the microkernel skip them entirely.
    for (std::int64_t i = 0; i < 18 * k; ++i)
        a.set(i, 0.0f);
    auto b = randomTensor({k, n}, 7);
    std::vector<float> c(static_cast<std::size_t>(m * n));
    ec::gemm(m, n, k, a.data(), b.data(), c);
    for (std::int64_t i = 0; i < 18 * n; ++i)
        ASSERT_EQ(c[static_cast<std::size_t>(i)], 0.0f);
    const auto ref = naiveGemm(m, n, k, a.data(), b.data());
    for (std::size_t i = 0; i < c.size(); ++i)
        ASSERT_NEAR(c[i], ref[i], 1e-3);
}

TEST(GemmPackedTest, GemvAccumulatesBitExactDotProducts)
{
    const std::int64_t m = 20, k = 300;
    auto a = randomTensor({m, k}, 8);
    auto x = randomTensor({k}, 9);
    auto bias = randomTensor({m}, 10);
    const ec::PackedA pa = ec::packA(m, k, a.data());
    std::vector<double> y(static_cast<std::size_t>(m));
    for (std::int64_t i = 0; i < m; ++i)
        y[static_cast<std::size_t>(i)] = bias.at(i);
    ec::gemvPackedAcc(pa.view(), x.data(), y);
    for (std::int64_t i = 0; i < m; ++i) {
        double acc = bias.at(i);
        for (std::int64_t p = 0; p < k; ++p)
            acc += static_cast<double>(a.at(i * k + p)) * x.at(p);
        ASSERT_EQ(y[static_cast<std::size_t>(i)], acc) << "row " << i;
    }
}

TEST(GemmPackedTest, RejectsMismatchedSizes)
{
    std::vector<float> a(12), b(12), c(9), small(2);
    EXPECT_THROW(ec::packA(4, 4, a), InvalidArgumentError);
    EXPECT_THROW(ec::packBInto(3, 4, a, small), InvalidArgumentError);
    const ec::PackedA pa = ec::packA(3, 4, a);
    EXPECT_THROW(ec::gemmPackB(pa.view(), 4, b, c),
                 InvalidArgumentError);
}

/**
 * Conv oracle sweep through the packed entry point: pre-packed
 * weights vs conv2dNaive, and bit-identical to the ad-hoc-packing
 * conv2d (same engine, same panels).
 * Cases: pointwise, dense 3x3, strided, dilated, grouped, depthwise,
 * depthwise with multiplier, ragged output-channel tiles.
 * Tuple: (kernel, stride, pad, dilation, groups, inC/group, outC/group).
 */
using ConvCase = std::tuple<int, int, int, int, int, int, int>;

class GemmPackedConvTest : public ::testing::TestWithParam<ConvCase>
{
};

TEST_P(GemmPackedConvTest, PackedConvMatchesNaiveOracle)
{
    const auto [k, stride, pad, dil, groups, cpg, ocg] = GetParam();
    ec::Conv2dGeom g;
    g.n = 2;
    g.inC = cpg * groups;
    g.inH = 11;
    g.inW = 9;
    g.outC = ocg * groups;
    g.kH = k;
    g.kW = k;
    g.strideH = stride;
    g.strideW = stride;
    g.padH = pad;
    g.padW = pad;
    g.dilH = dil;
    g.dilW = dil;
    g.groups = groups;
    g.validate();

    auto input = randomTensor({g.n, g.inC, g.inH, g.inW}, 50 + k);
    auto weights = randomTensor(
        {g.outC, g.inC / g.groups, g.kH, g.kW}, 60 + stride);
    auto bias = randomTensor({g.outC}, 70 + pad);

    const ec::PackedConvWeights packed =
        ec::packConv2dWeights(weights, g);
    auto via_cache =
        ec::conv2dPacked(input, weights, packed, bias, g);
    auto via_adhoc = ec::conv2d(input, weights, bias, g);
    auto oracle = ec::conv2dNaive(input, weights, bias, g);

    ASSERT_EQ(via_cache.shape(), oracle.shape());
    EXPECT_LT(via_cache.maxAbsDiff(oracle), 1e-3);
    // Cached and ad-hoc packing build identical panels, so the two
    // production entry points must agree to the bit.
    EXPECT_EQ(via_cache.maxAbsDiff(via_adhoc), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GemmPackedConvTest,
    ::testing::Values(
        ConvCase{1, 1, 0, 1, 1, 5, 7},  // pointwise (B from input)
        ConvCase{3, 1, 1, 1, 1, 5, 6},  // dense 3x3
        ConvCase{3, 2, 1, 1, 1, 5, 6},  // strided
        ConvCase{3, 1, 2, 2, 1, 5, 6},  // dilated
        ConvCase{3, 1, 1, 1, 1, 5, 13}, // ragged outC (13 % 6 != 0)
        ConvCase{3, 2, 1, 1, 4, 2, 6},  // grouped (4 groups x 2 ch)
        ConvCase{3, 1, 1, 1, 8, 1, 1},  // depthwise
        ConvCase{3, 2, 1, 1, 8, 1, 1},  // depthwise strided
        ConvCase{3, 1, 2, 2, 8, 1, 1},  // depthwise dilated
        ConvCase{3, 1, 1, 1, 8, 1, 2},  // depthwise, multiplier 2
        ConvCase{5, 2, 2, 1, 8, 1, 1}));// depthwise 5x5 strided

TEST(GemmPackedDeterminismTest, GemmByteIdenticalAcrossThreadCounts)
{
    ThreadRestore restore;
    const std::int64_t m = 61, n = 77, k = 300;
    auto a = randomTensor({m, k}, 11);
    auto b = randomTensor({k, n}, 12);
    std::vector<float> ref(static_cast<std::size_t>(m * n));
    ec::setParallelism(1);
    ec::gemm(m, n, k, a.data(), b.data(), ref);
    for (int threads : {2, 4}) {
        ec::setParallelism(threads);
        std::vector<float> c(ref.size());
        ec::gemm(m, n, k, a.data(), b.data(), c);
        EXPECT_EQ(std::memcmp(c.data(), ref.data(),
                              ref.size() * sizeof(float)),
                  0)
            << "threads=" << threads;
    }
}

TEST(GemmPackedDeterminismTest, ConvAndDenseByteIdenticalAcrossThreads)
{
    ThreadRestore restore;
    ec::Conv2dGeom cg{.n = 1, .inC = 8, .inH = 14, .inW = 14,
                      .outC = 16, .kH = 3, .kW = 3, .padH = 1,
                      .padW = 1};
    ec::Conv2dGeom dwg{.n = 1, .inC = 16, .inH = 14, .inW = 14,
                       .outC = 16, .kH = 3, .kW = 3, .padH = 1,
                       .padW = 1, .groups = 16};
    ec::DenseGeom dg{.batch = 2, .inFeatures = 100,
                     .outFeatures = 37};
    auto cin = randomTensor({1, 8, 14, 14}, 13);
    auto cw = randomTensor({16, 8, 3, 3}, 14);
    auto cb = randomTensor({16}, 15);
    auto dwin = randomTensor({1, 16, 14, 14}, 16);
    auto dww = randomTensor({16, 1, 3, 3}, 17);
    auto din = randomTensor({2, 100}, 18);
    auto dw = randomTensor({37, 100}, 19);
    auto db = randomTensor({37}, 20);

    ec::setParallelism(1);
    auto conv_ref = ec::conv2d(cin, cw, cb, cg);
    auto dw_ref = ec::conv2d(dwin, dww, ec::Tensor(), dwg);
    auto dense_ref = ec::dense(din, dw, db, dg);
    for (int threads : {2, 4}) {
        ec::setParallelism(threads);
        EXPECT_EQ(ec::conv2d(cin, cw, cb, cg).maxAbsDiff(conv_ref),
                  0.0)
            << "conv threads=" << threads;
        EXPECT_EQ(
            ec::conv2d(dwin, dww, ec::Tensor(), dwg).maxAbsDiff(dw_ref),
            0.0)
            << "depthwise threads=" << threads;
        EXPECT_EQ(ec::dense(din, dw, db, dg).maxAbsDiff(dense_ref),
                  0.0)
            << "dense threads=" << threads;
    }
}
