/**
 * @file
 * Tests for the manually-advanced simulated-time clock.
 */

#include <limits>

#include <gtest/gtest.h>

#include "edgebench/core/clock.hh"
#include "edgebench/core/common.hh"

namespace ecore = edgebench::core;

TEST(VirtualClockTest, StartsAtZero)
{
    ecore::VirtualClock c;
    EXPECT_EQ(c.nowUs(), 0.0);
    EXPECT_EQ(c.nowMs(), 0.0);
}

TEST(VirtualClockTest, AdvancesInBothUnits)
{
    ecore::VirtualClock c;
    c.advanceUs(1500.0);
    EXPECT_DOUBLE_EQ(c.nowUs(), 1500.0);
    EXPECT_DOUBLE_EQ(c.nowMs(), 1.5);
    c.advanceMs(2.0);
    EXPECT_DOUBLE_EQ(c.nowUs(), 3500.0);
}

TEST(VirtualClockTest, ZeroAdvanceIsAllowed)
{
    ecore::VirtualClock c;
    c.advanceUs(0.0);
    EXPECT_EQ(c.nowUs(), 0.0);
}

TEST(VirtualClockTest, RejectsNegativeAndNonFinite)
{
    ecore::VirtualClock c;
    EXPECT_THROW(c.advanceUs(-1.0),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(c.advanceMs(
                     std::numeric_limits<double>::infinity()),
                 edgebench::InvalidArgumentError);
}

TEST(VirtualClockTest, ResetReturnsToZero)
{
    ecore::VirtualClock c;
    c.advanceMs(10.0);
    c.reset();
    EXPECT_EQ(c.nowUs(), 0.0);
}
