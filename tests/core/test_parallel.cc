/**
 * @file
 * Tests for the deterministic parallel-for layer and its integration
 * with the compute kernels.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/kernels.hh"
#include "edgebench/core/parallel.hh"

namespace ec = edgebench::core;

TEST(ParallelTest, CoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    ec::parallelFor(1000, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
            hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ParallelTest, EmptyRangeIsNoop)
{
    bool called = false;
    ec::parallelFor(0, [&](std::int64_t, std::int64_t) {
        called = true;
    });
    EXPECT_FALSE(called);
}

TEST(ParallelTest, SmallRangeRunsOnCaller)
{
    // min_grain keeps tiny ranges serial; verify single contiguous
    // invocation.
    int calls = 0;
    std::int64_t total = 0;
    ec::parallelFor(
        3,
        [&](std::int64_t b, std::int64_t e) {
            ++calls;
            total += e - b;
        },
        /*min_grain=*/100);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(total, 3);
}

TEST(ParallelTest, NegativeRangeThrows)
{
    EXPECT_THROW(
        ec::parallelFor(-1, [](std::int64_t, std::int64_t) {}),
        edgebench::InvalidArgumentError);
}

TEST(ParallelTest, ParallelismIsAtLeastOne)
{
    EXPECT_GE(ec::parallelism(), 1);
}

TEST(ParallelTest, GemmIsBitIdenticalAcrossRuns)
{
    // Row partitioning must not change any row's accumulation order;
    // repeated runs (potentially with different chunk interleaving)
    // are bit-identical.
    ec::Rng rng(1);
    const std::int64_t m = 67, n = 41, k = 53;
    auto a = ec::Tensor::randomNormal({m, k}, rng);
    auto b = ec::Tensor::randomNormal({k, n}, rng);
    std::vector<float> c1(static_cast<std::size_t>(m * n));
    std::vector<float> c2(static_cast<std::size_t>(m * n));
    ec::gemm(m, n, k, a.data(), b.data(), c1);
    ec::gemm(m, n, k, a.data(), b.data(), c2);
    for (std::size_t i = 0; i < c1.size(); ++i)
        ASSERT_EQ(c1[i], c2[i]) << i;
}

TEST(ParallelTest, NestedParallelForFallsBackToSerial)
{
    // A kernel calling parallelFor from inside a parallelFor worker
    // must not deadlock or double-partition: the inner loop runs
    // serially on its caller, and every element is still covered
    // exactly once.
    const std::int64_t outer = 64, inner = 512;
    std::vector<std::atomic<int>> hits(
        static_cast<std::size_t>(outer * inner));
    ec::parallelFor(outer, [&](std::int64_t ob, std::int64_t oe) {
        for (std::int64_t o = ob; o < oe; ++o) {
            ec::parallelFor(
                inner,
                [&, o](std::int64_t ib, std::int64_t ie) {
                    for (std::int64_t i = ib; i < ie; ++i)
                        hits[static_cast<std::size_t>(o * inner + i)]
                            .fetch_add(1);
                },
                /*min_grain=*/1);
        }
    });
    for (const auto& h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ParallelTest, ConcurrentExternalCallersAreSerialized)
{
    // Pool::run from several plain threads at once: the run mutex
    // serializes jobs, so each covers its range exactly once.
    const int threads = 4;
    const std::int64_t n = 10000;
    std::vector<std::int64_t> sums(static_cast<std::size_t>(threads));
    std::vector<std::thread> callers;
    for (int c = 0; c < threads; ++c)
        callers.emplace_back([&, c] {
            for (int round = 0; round < 20; ++round) {
                std::atomic<std::int64_t> sum{0};
                ec::parallelFor(
                    n, [&](std::int64_t b, std::int64_t e) {
                        std::int64_t local = 0;
                        for (std::int64_t i = b; i < e; ++i)
                            local += i;
                        sum.fetch_add(local);
                    });
                sums[static_cast<std::size_t>(c)] = sum.load();
            }
        });
    for (auto& t : callers)
        t.join();
    for (const auto s : sums)
        ASSERT_EQ(s, n * (n - 1) / 2);
}

TEST(ParallelTest, RepeatedStressCoversConcurrentJobs)
{
    // Hammer the pool with many back-to-back jobs to shake out
    // generation/wakeup bugs.
    for (int round = 0; round < 200; ++round) {
        std::atomic<std::int64_t> sum{0};
        ec::parallelFor(257, [&](std::int64_t b, std::int64_t e) {
            std::int64_t local = 0;
            for (std::int64_t i = b; i < e; ++i)
                local += i;
            sum.fetch_add(local);
        });
        ASSERT_EQ(sum.load(), 257 * 256 / 2);
    }
}
