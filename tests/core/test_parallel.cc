/**
 * @file
 * Tests for the deterministic parallel-for layer and its integration
 * with the compute kernels.
 */

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/kernels.hh"
#include "edgebench/core/kernels_int8.hh"
#include "edgebench/core/kernels_rnn.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/core/scratch.hh"

namespace ec = edgebench::core;

TEST(ParallelTest, CoversRangeExactlyOnce)
{
    std::vector<std::atomic<int>> hits(1000);
    ec::parallelFor(1000, [&](std::int64_t b, std::int64_t e) {
        for (std::int64_t i = b; i < e; ++i)
            hits[static_cast<std::size_t>(i)].fetch_add(1);
    });
    for (const auto& h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ParallelTest, EmptyRangeIsNoop)
{
    bool called = false;
    ec::parallelFor(0, [&](std::int64_t, std::int64_t) {
        called = true;
    });
    EXPECT_FALSE(called);
}

TEST(ParallelTest, SmallRangeRunsOnCaller)
{
    // min_grain keeps tiny ranges serial; verify single contiguous
    // invocation.
    int calls = 0;
    std::int64_t total = 0;
    ec::parallelFor(
        3,
        [&](std::int64_t b, std::int64_t e) {
            ++calls;
            total += e - b;
        },
        /*min_grain=*/100);
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(total, 3);
}

TEST(ParallelTest, NegativeRangeThrows)
{
    EXPECT_THROW(
        ec::parallelFor(-1, [](std::int64_t, std::int64_t) {}),
        edgebench::InvalidArgumentError);
}

TEST(ParallelTest, ParallelismIsAtLeastOne)
{
    EXPECT_GE(ec::parallelism(), 1);
}

TEST(ParallelTest, GemmIsBitIdenticalAcrossRuns)
{
    // Row partitioning must not change any row's accumulation order;
    // repeated runs (potentially with different chunk interleaving)
    // are bit-identical.
    ec::Rng rng(1);
    const std::int64_t m = 67, n = 41, k = 53;
    auto a = ec::Tensor::randomNormal({m, k}, rng);
    auto b = ec::Tensor::randomNormal({k, n}, rng);
    std::vector<float> c1(static_cast<std::size_t>(m * n));
    std::vector<float> c2(static_cast<std::size_t>(m * n));
    ec::gemm(m, n, k, a.data(), b.data(), c1);
    ec::gemm(m, n, k, a.data(), b.data(), c2);
    for (std::size_t i = 0; i < c1.size(); ++i)
        ASSERT_EQ(c1[i], c2[i]) << i;
}

TEST(ParallelTest, NestedParallelForFallsBackToSerial)
{
    // A kernel calling parallelFor from inside a parallelFor worker
    // must not deadlock or double-partition: the inner loop runs
    // serially on its caller, and every element is still covered
    // exactly once.
    const std::int64_t outer = 64, inner = 512;
    std::vector<std::atomic<int>> hits(
        static_cast<std::size_t>(outer * inner));
    ec::parallelFor(outer, [&](std::int64_t ob, std::int64_t oe) {
        for (std::int64_t o = ob; o < oe; ++o) {
            ec::parallelFor(
                inner,
                [&, o](std::int64_t ib, std::int64_t ie) {
                    for (std::int64_t i = ib; i < ie; ++i)
                        hits[static_cast<std::size_t>(o * inner + i)]
                            .fetch_add(1);
                },
                /*min_grain=*/1);
        }
    });
    for (const auto& h : hits)
        ASSERT_EQ(h.load(), 1);
}

TEST(ParallelTest, ConcurrentExternalCallersAreSerialized)
{
    // Pool::run from several plain threads at once: the run mutex
    // serializes jobs, so each covers its range exactly once.
    const int threads = 4;
    const std::int64_t n = 10000;
    std::vector<std::int64_t> sums(static_cast<std::size_t>(threads));
    std::vector<std::thread> callers;
    for (int c = 0; c < threads; ++c)
        callers.emplace_back([&, c] {
            for (int round = 0; round < 20; ++round) {
                std::atomic<std::int64_t> sum{0};
                ec::parallelFor(
                    n, [&](std::int64_t b, std::int64_t e) {
                        std::int64_t local = 0;
                        for (std::int64_t i = b; i < e; ++i)
                            local += i;
                        sum.fetch_add(local);
                    });
                sums[static_cast<std::size_t>(c)] = sum.load();
            }
        });
    for (auto& t : callers)
        t.join();
    for (const auto s : sums)
        ASSERT_EQ(s, n * (n - 1) / 2);
}

TEST(ParallelTest, RepeatedStressCoversConcurrentJobs)
{
    // Hammer the pool with many back-to-back jobs to shake out
    // generation/wakeup bugs.
    for (int round = 0; round < 200; ++round) {
        std::atomic<std::int64_t> sum{0};
        ec::parallelFor(257, [&](std::int64_t b, std::int64_t e) {
            std::int64_t local = 0;
            for (std::int64_t i = b; i < e; ++i)
                local += i;
            sum.fetch_add(local);
        });
        ASSERT_EQ(sum.load(), 257 * 256 / 2);
    }
}

TEST(ParallelTest, SetParallelismReconfiguresPool)
{
    // The pool used to be immutable once built; now every
    // setParallelism tears it down and the next parallelFor rebuilds
    // it at the requested width.
    ec::setParallelism(2);
    ec::parallelFor(16, [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(ec::parallelism(), 2);
    ec::setParallelism(5);
    ec::parallelFor(16, [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(ec::parallelism(), 5);
    ec::setParallelism(1);
    ec::parallelFor(16, [](std::int64_t, std::int64_t) {});
    EXPECT_EQ(ec::parallelism(), 1);
    ec::setParallelism(0); // back to auto for the rest of the binary
}

TEST(ParallelTest, Conv2dInt8BitIdenticalAcrossThreadCounts)
{
    ec::Conv2dGeom g{.n = 2, .inC = 8, .inH = 9, .inW = 9,
                     .outC = 6, .kH = 3, .kW = 3, .padH = 1,
                     .padW = 1};
    ec::Rng rng(41);
    auto input = ec::Tensor::randomNormal({2, 8, 9, 9}, rng).toInt8();
    auto w = ec::Tensor::randomNormal({6, 8, 3, 3}, rng).toInt8();
    auto bias = ec::Tensor::randomNormal({6}, rng);
    const auto qp = ec::chooseQuantParams(-8.0, 8.0);

    ec::setParallelism(1);
    auto ref = ec::conv2dInt8(input, w, bias, g, qp);
    ec::setParallelism(4);
    auto par = ec::conv2dInt8(input, w, bias, g, qp);
    ec::setParallelism(0);

    auto a = ref.qdata();
    auto b = par.qdata();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]);
}

TEST(ParallelTest, LstmForwardBitIdenticalAcrossThreadCounts)
{
    ec::RnnGeom g{.batch = 2, .seqLen = 5, .inputSize = 12,
                  .hiddenSize = 16, .gates = 4};
    ec::Rng rng(42);
    auto input = ec::Tensor::randomNormal({2, 5, 12}, rng);
    auto w_ih = ec::Tensor::randomNormal({64, 12}, rng);
    auto w_hh = ec::Tensor::randomNormal({64, 16}, rng);
    auto bias = ec::Tensor::randomNormal({64}, rng);

    ec::setParallelism(1);
    auto ref = ec::lstmForward(input, w_ih, w_hh, bias, g);
    ec::setParallelism(4);
    auto par = ec::lstmForward(input, w_ih, w_hh, bias, g);
    ec::setParallelism(0);

    auto a = ref.data();
    auto b = par.data();
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        ASSERT_EQ(a[i], b[i]) << "element " << i;
}

TEST(ParallelTest, ScratchArenaGrowsAndReuses)
{
    ec::scratchRelease();
    auto s1 = ec::scratchF32(ec::ScratchSlot::kIm2Col, 128);
    ASSERT_EQ(s1.size(), 128u);
    s1[0] = 7.0f;
    s1[127] = 9.0f;
    // Re-borrowing the slot at a smaller size reuses the same block.
    auto s2 = ec::scratchF32(ec::ScratchSlot::kIm2Col, 64);
    EXPECT_EQ(s2.data(), s1.data());
    EXPECT_EQ(s2.size(), 64u);
    const auto before = ec::scratchBytesReserved();
    EXPECT_GE(before, 128 * sizeof(float));
    // Growing may reallocate but never shrinks the reservation.
    auto s3 = ec::scratchF32(ec::ScratchSlot::kIm2Col, 4096);
    EXPECT_EQ(s3.size(), 4096u);
    EXPECT_GE(ec::scratchBytesReserved(), 4096 * sizeof(float));
    // Distinct slots are distinct buffers.
    auto g1 = ec::scratchF64(ec::ScratchSlot::kRnnGates, 32);
    auto g2 = ec::scratchF64(ec::ScratchSlot::kRnnGatesHidden, 32);
    EXPECT_NE(static_cast<void*>(g1.data()),
              static_cast<void*>(g2.data()));
    ec::scratchRelease();
    EXPECT_EQ(ec::scratchBytesReserved(), 0u);
}
