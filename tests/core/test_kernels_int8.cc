/**
 * @file
 * Tests for the quantized INT8 kernels: the quantized result must track
 * the fp32 result within an analytically derived error bound.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/kernels.hh"
#include "edgebench/core/kernels_int8.hh"

namespace ec = edgebench::core;
using edgebench::InvalidArgumentError;

namespace
{

ec::Tensor
randomTensor(const ec::Shape& s, std::uint64_t seed, double scale = 1.0)
{
    ec::Rng rng(seed);
    return ec::Tensor::randomNormal(s, rng, scale);
}

/** Observe fp32 output range and build output quant params. */
ec::QuantParams
outputParams(const ec::Tensor& fp_out)
{
    double mn = 1e300, mx = -1e300;
    ec::observeMinMax(fp_out.data(), mn, mx);
    return ec::chooseQuantParams(mn, mx);
}

} // namespace

TEST(Conv2dInt8Test, TracksFp32WithinQuantizationNoise)
{
    ec::Conv2dGeom g{.n = 1, .inC = 3, .inH = 10, .inW = 10, .outC = 8,
                     .kH = 3, .kW = 3, .strideH = 1, .strideW = 1,
                     .padH = 1, .padW = 1};
    auto input = randomTensor({1, 3, 10, 10}, 1);
    auto weights = randomTensor({8, 3, 3, 3}, 2, 0.2);
    auto bias = randomTensor({8}, 3, 0.1);

    auto fp = ec::conv2d(input, weights, bias, g);
    const auto out_qp = outputParams(fp);

    auto q = ec::conv2dInt8(input.toInt8(), weights.toInt8(), bias, g,
                            out_qp);
    ASSERT_EQ(q.dtype(), ec::DType::kI8);
    ASSERT_EQ(q.shape(), fp.shape());

    // Error bound: per-MAC input/weight step errors accumulate plus the
    // final output step. Use a generous multiple to stay robust.
    const double per_mac =
        input.toInt8().quantParams().scale +
        weights.toInt8().quantParams().scale;
    const double macs_per_out = 3 * 3 * 3;
    const double bound =
        macs_per_out * per_mac * 3.0 + out_qp.scale;
    EXPECT_LT(fp.maxAbsDiff(q.toF32()), bound);
    // And it must be a *good* approximation in aggregate.
    double sum_err = 0.0;
    auto fpd = fp.data();
    auto qd = q.toF32();
    for (std::int64_t i = 0; i < fp.numel(); ++i)
        sum_err += std::fabs(fpd[i] - qd.at(i));
    EXPECT_LT(sum_err / fp.numel(), 0.1);
}

TEST(Conv2dInt8Test, DepthwiseGroupsSupported)
{
    ec::Conv2dGeom g{.n = 1, .inC = 4, .inH = 6, .inW = 6, .outC = 4,
                     .kH = 3, .kW = 3, .padH = 1, .padW = 1,
                     .groups = 4};
    auto input = randomTensor({1, 4, 6, 6}, 4);
    auto weights = randomTensor({4, 1, 3, 3}, 5, 0.3);
    auto bias = ec::Tensor::zeros({4});
    auto fp = ec::conv2d(input, weights, bias, g);
    auto q = ec::conv2dInt8(input.toInt8(), weights.toInt8(), bias, g,
                            outputParams(fp));
    EXPECT_LT(fp.maxAbsDiff(q.toF32()), 0.5);
}

TEST(Conv2dInt8Test, RequiresInt8Inputs)
{
    ec::Conv2dGeom g{.n = 1, .inC = 1, .inH = 4, .inW = 4, .outC = 1,
                     .kH = 1, .kW = 1};
    auto input = randomTensor({1, 1, 4, 4}, 6);
    auto weights = randomTensor({1, 1, 1, 1}, 7);
    EXPECT_THROW(ec::conv2dInt8(input, weights.toInt8(),
                                ec::Tensor::zeros({1}), g, {1.0, 0}),
                 InvalidArgumentError);
}

TEST(DenseInt8Test, TracksFp32WithinQuantizationNoise)
{
    ec::DenseGeom g{.batch = 2, .inFeatures = 64, .outFeatures = 16};
    auto input = randomTensor({2, 64}, 8);
    auto weights = randomTensor({16, 64}, 9, 0.1);
    auto bias = randomTensor({16}, 10, 0.05);
    auto fp = ec::dense(input, weights, bias, g);
    auto q = ec::denseInt8(input.toInt8(), weights.toInt8(), bias, g,
                           outputParams(fp));
    double sum_err = 0.0;
    auto fpd = fp.data();
    auto qd = q.toF32();
    for (std::int64_t i = 0; i < fp.numel(); ++i)
        sum_err += std::fabs(fpd[i] - qd.at(i));
    EXPECT_LT(sum_err / fp.numel(), 0.15);
}

TEST(ReluInt8Test, ClampsNegativeRealValues)
{
    ec::Tensor t({4}, {-2.0f, -0.5f, 0.5f, 2.0f});
    auto q = t.toInt8();
    auto r = ec::reluInt8(q).toF32();
    // Zero-point rounding can push the worst case to a full step.
    const double step =
        2.0 * ec::quantizationStepError(q.quantParams()) + 1e-9;
    EXPECT_NEAR(r.at(0), 0.0, step);
    EXPECT_NEAR(r.at(1), 0.0, step);
    EXPECT_NEAR(r.at(2), 0.5, step);
    EXPECT_NEAR(r.at(3), 2.0, step);
}

TEST(Relu6Int8Test, ClampsAboveSix)
{
    ec::Tensor t({3}, {-1.0f, 3.0f, 9.0f});
    auto q = t.toInt8();
    auto r = ec::relu6Int8(q).toF32();
    const double step =
        2.0 * ec::quantizationStepError(q.quantParams()) + 1e-9;
    EXPECT_NEAR(r.at(0), 0.0, step);
    EXPECT_NEAR(r.at(1), 3.0, step);
    EXPECT_NEAR(r.at(2), 6.0, step);
}

TEST(AddInt8Test, MatchesRealDomainAddition)
{
    ec::Tensor a({4}, {-1.0f, 0.0f, 0.5f, 1.0f});
    ec::Tensor b({4}, {0.5f, 0.5f, 0.5f, 0.5f});
    const auto out_qp = ec::chooseQuantParams(-2.0, 2.0);
    auto sum = ec::addInt8(a.toInt8(), b.toInt8(), out_qp).toF32();
    for (std::int64_t i = 0; i < 4; ++i)
        ASSERT_NEAR(sum.at(i), a.at(i) + b.at(i), 3 * out_qp.scale);
}

TEST(AddInt8Test, ShapeMismatchThrows)
{
    auto a = ec::Tensor::zeros({2}).toInt8();
    auto b = ec::Tensor::zeros({3}).toInt8();
    EXPECT_THROW(ec::addInt8(a, b, {1.0, 0}), InvalidArgumentError);
}
