/**
 * @file
 * Tests for the device registry: Table III invariants.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/hw/device.hh"

namespace eh = edgebench::hw;
namespace ec = edgebench::core;

TEST(DeviceRegistryTest, TenPlatformsSixEdgeFourHpc)
{
    EXPECT_EQ(eh::allDevices().size(), 10u);
    EXPECT_EQ(eh::edgeDevices().size(), 6u);
    EXPECT_EQ(eh::hpcDevices().size(), 4u);
}

TEST(DeviceRegistryTest, NamesRoundTrip)
{
    for (auto id : eh::allDevices())
        EXPECT_EQ(eh::deviceByName(eh::deviceName(id)), id);
    EXPECT_THROW(eh::deviceByName("TPUv4"),
                 edgebench::InvalidArgumentError);
}

TEST(DeviceRegistryTest, IdleAndAveragePowerMatchTableIII)
{
    // Spot-check the paper's measured power numbers.
    EXPECT_DOUBLE_EQ(eh::deviceSpec(eh::DeviceId::kRpi3).idlePowerW,
                     1.33);
    EXPECT_DOUBLE_EQ(eh::deviceSpec(eh::DeviceId::kRpi3).averagePowerW,
                     2.73);
    EXPECT_DOUBLE_EQ(
        eh::deviceSpec(eh::DeviceId::kJetsonTx2).idlePowerW, 1.90);
    EXPECT_DOUBLE_EQ(
        eh::deviceSpec(eh::DeviceId::kJetsonNano).averagePowerW, 4.58);
    EXPECT_DOUBLE_EQ(
        eh::deviceSpec(eh::DeviceId::kMovidius).idlePowerW, 0.36);
    EXPECT_DOUBLE_EQ(
        eh::deviceSpec(eh::DeviceId::kEdgeTpu).idlePowerW, 3.24);
    EXPECT_DOUBLE_EQ(
        eh::deviceSpec(eh::DeviceId::kPynqZ1).averagePowerW, 5.24);
}

TEST(DeviceRegistryTest, IdlePowerBelowAveragePower)
{
    for (auto id : eh::allDevices()) {
        const auto& d = eh::deviceSpec(id);
        EXPECT_LT(d.idlePowerW, d.averagePowerW) << d.name;
    }
}

TEST(DeviceRegistryTest, PreferredUnitPrefersAccelerators)
{
    EXPECT_EQ(eh::deviceSpec(eh::DeviceId::kEdgeTpu)
                  .preferredUnit().kind,
              eh::UnitKind::kAccelerator);
    EXPECT_EQ(eh::deviceSpec(eh::DeviceId::kJetsonTx2)
                  .preferredUnit().kind,
              eh::UnitKind::kGpu);
    EXPECT_EQ(eh::deviceSpec(eh::DeviceId::kRpi3)
                  .preferredUnit().kind,
              eh::UnitKind::kCpu);
}

TEST(DeviceRegistryTest, EdgeTpuIsInt8Only)
{
    const auto& acc =
        *eh::deviceSpec(eh::DeviceId::kEdgeTpu).accelerator;
    EXPECT_DOUBLE_EQ(acc.peakGflopsF32, 0.0);
    EXPECT_GT(acc.peakGopsI8, 1000.0);
}

TEST(DeviceRegistryTest, PeakForFallsBackSensibly)
{
    const auto& rpi_cpu = eh::deviceSpec(eh::DeviceId::kRpi3).cpu;
    // RPi has no INT8 speedup: int8 runs at the fp32 rate.
    EXPECT_DOUBLE_EQ(rpi_cpu.peakFor(ec::DType::kI8),
                     rpi_cpu.peakFor(ec::DType::kF32));
    const auto& tx2_gpu = *eh::deviceSpec(eh::DeviceId::kJetsonTx2).gpu;
    EXPECT_GT(tx2_gpu.peakFor(ec::DType::kF16),
              tx2_gpu.peakFor(ec::DType::kF32));
}

TEST(DeviceRegistryTest, HpcPlatformsDwarfEdgeCompute)
{
    double best_edge = 0.0;
    for (auto id : eh::edgeDevices()) {
        const auto& u = eh::deviceSpec(id).preferredUnit();
        best_edge = std::max(best_edge, u.peakGflopsF32);
    }
    for (auto id : eh::hpcDevices()) {
        const auto& u = eh::deviceSpec(id).preferredUnit();
        EXPECT_GT(u.peakGflopsF32, best_edge) << eh::deviceName(id);
    }
}

TEST(DeviceRegistryTest, PynqHasTinyOnChipMemoryWithBigPenalty)
{
    const auto& acc = *eh::deviceSpec(eh::DeviceId::kPynqZ1).accelerator;
    EXPECT_LT(acc.onChipBytes, 1024.0 * 1024.0);
    EXPECT_GT(acc.offChipPenalty, 4.0);
}

TEST(DeviceRegistryTest, CategoriesMatchTableIII)
{
    using eh::DeviceCategory;
    EXPECT_EQ(eh::deviceSpec(eh::DeviceId::kRpi3).category,
              DeviceCategory::kIoTEdge);
    EXPECT_EQ(eh::deviceSpec(eh::DeviceId::kJetsonNano).category,
              DeviceCategory::kGpuEdge);
    EXPECT_EQ(eh::deviceSpec(eh::DeviceId::kEdgeTpu).category,
              DeviceCategory::kAsicEdge);
    EXPECT_EQ(eh::deviceSpec(eh::DeviceId::kPynqZ1).category,
              DeviceCategory::kFpgaEdge);
    EXPECT_EQ(eh::deviceSpec(eh::DeviceId::kXeon).category,
              DeviceCategory::kHpcCpu);
    EXPECT_EQ(eh::deviceSpec(eh::DeviceId::kTitanXp).category,
              DeviceCategory::kHpcGpu);
    EXPECT_FALSE(eh::categoryName(DeviceCategory::kIoTEdge).empty());
}
