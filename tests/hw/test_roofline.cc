/**
 * @file
 * Tests for the roofline latency engine: monotonicity properties,
 * compute- vs memory-bound classification, precision effects, and
 * memory capacity enforcement.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/hw/roofline.hh"
#include "edgebench/models/zoo.hh"

namespace eh = edgebench::hw;
namespace eg = edgebench::graph;
namespace ec = edgebench::core;
namespace em = edgebench::models;

namespace
{

eh::ComputeUnit
testUnit(double gflops, double bw_gbs, double cap_gib = 8.0)
{
    eh::ComputeUnit u;
    u.name = "test";
    u.peakGflopsF32 = gflops;
    u.peakGflopsF16 = gflops * 2;
    u.peakGopsI8 = gflops * 4;
    u.memBandwidthGBs = bw_gbs;
    u.memCapacityBytes = cap_gib * 1024.0 * 1024.0 * 1024.0;
    return u;
}

eg::Graph
convGraph()
{
    eg::Graph g("conv");
    auto in = g.addInput({1, 64, 56, 56});
    auto c = g.addConv2d(in, 64, 3, 3, 1, 1);
    g.markOutput(c);
    return g;
}

} // namespace

TEST(RooflineTest, ComputeTimeMatchesAnalyticalFormula)
{
    auto g = convGraph();
    const auto& node = g.node(1);
    eh::EngineProfile p{.computeEfficiency = 0.5,
                        .memoryEfficiency = 1.0};
    auto unit = testUnit(100.0, 1000.0);
    const auto cost = eh::nodeLatency(node, unit, p);
    const double expected_ms =
        static_cast<double>(node.macs()) / (100.0 * 0.5 * 1e9) * 1e3;
    EXPECT_NEAR(cost.computeMs, expected_ms, expected_ms * 1e-9);
}

TEST(RooflineTest, FasterUnitIsNeverSlower)
{
    auto g = em::buildResNet(18);
    eh::EngineProfile p;
    const auto slow =
        eh::graphLatency(g, testUnit(10.0, 5.0), p).totalMs;
    const auto fast =
        eh::graphLatency(g, testUnit(100.0, 50.0), p).totalMs;
    EXPECT_GT(slow, fast);
    const auto faster =
        eh::graphLatency(g, testUnit(1000.0, 500.0), p).totalMs;
    EXPECT_GT(fast, faster);
}

TEST(RooflineTest, BiggerModelTakesLonger)
{
    eh::EngineProfile p;
    auto unit = testUnit(100.0, 20.0);
    const auto t18 =
        eh::graphLatency(em::buildResNet(18), unit, p).totalMs;
    const auto t50 =
        eh::graphLatency(em::buildResNet(50), unit, p).totalMs;
    const auto t101 =
        eh::graphLatency(em::buildResNet(101), unit, p).totalMs;
    EXPECT_LT(t18, t50);
    EXPECT_LT(t50, t101);
}

TEST(RooflineTest, LowBandwidthMakesVggMemoryBound)
{
    // VGG16's fc layers stream 400+ MB of weights: on a low-bandwidth
    // unit they must classify as memory bound.
    auto g = em::buildVgg(16);
    eh::EngineProfile p;
    auto unit = testUnit(500.0, 2.0);
    const auto cost = eh::graphLatency(g, unit, p);
    EXPECT_GT(cost.memoryBoundNodes, 0);
    EXPECT_GT(cost.memoryMs, 0.0);
}

TEST(RooflineTest, HighComputeIntensityModelIsComputeBound)
{
    // On a balanced unit, conv-heavy layers are compute bound.
    auto g = convGraph();
    eh::EngineProfile p;
    auto unit = testUnit(10.0, 50.0);
    const auto cost = eh::graphLatency(g, unit, p);
    EXPECT_EQ(cost.memoryBoundNodes, 0);
}

TEST(RooflineTest, Int8QuantizationSpeedsUpInferenceOnInt8Hardware)
{
    auto g = em::buildMobileNetV2();
    auto q = eg::quantizeInt8(g).graph;
    eh::EngineProfile p;
    auto unit = testUnit(100.0, 10.0);
    const auto fp = eh::graphLatency(g, unit, p).totalMs;
    const auto i8 = eh::graphLatency(q, unit, p).totalMs;
    EXPECT_LT(i8, fp);
}

TEST(RooflineTest, F16HalvesWeightTrafficOnF16Hardware)
{
    auto g = em::buildVgg(16);
    auto h = eg::convertToF16(g).graph;
    eh::EngineProfile p;
    auto unit = testUnit(100.0, 5.0);
    const auto fp = eh::graphLatency(g, unit, p);
    const auto f16 = eh::graphLatency(h, unit, p);
    EXPECT_LT(f16.totalMs, fp.totalMs);
    EXPECT_LT(f16.memoryMs, fp.memoryMs * 0.6);
}

TEST(RooflineTest, SparsityExploitationReducesComputeOnly)
{
    auto g = convGraph();
    auto pruned = eg::pruneWeights(g, 0.8).graph;
    auto unit = testUnit(10.0, 1000.0);
    eh::EngineProfile no_sparse{.computeEfficiency = 0.5,
                                .memoryEfficiency = 0.5,
                                .exploitsSparsity = false};
    eh::EngineProfile sparse = no_sparse;
    sparse.exploitsSparsity = true;
    const auto dense_t = eh::graphLatency(pruned, unit, no_sparse);
    const auto sparse_t = eh::graphLatency(pruned, unit, sparse);
    EXPECT_LT(sparse_t.computeMs, dense_t.computeMs * 0.35);
    EXPECT_DOUBLE_EQ(sparse_t.memoryMs, dense_t.memoryMs);
}

TEST(RooflineTest, PerOpOverheadScalesWithNodeCount)
{
    auto g = em::buildResNet(18);
    auto unit = testUnit(1000.0, 1000.0);
    eh::EngineProfile p0{.perOpOverheadMs = 0.0};
    eh::EngineProfile p1{.perOpOverheadMs = 0.1};
    const auto t0 = eh::graphLatency(g, unit, p0);
    const auto t1 = eh::graphLatency(g, unit, p1);
    // 69 non-input nodes, 0.1 ms each.
    EXPECT_NEAR(t1.totalMs - t0.totalMs, 0.1 * (g.numNodes() - 1),
                1e-6);
}

TEST(RooflineTest, MemoryCapacityIsEnforced)
{
    auto g = em::buildVgg(16); // ~550 MB fp32 weights
    eh::EngineProfile p;
    auto small = testUnit(100.0, 10.0, /*cap_gib=*/0.25);
    EXPECT_THROW(eh::graphLatency(g, small, p),
                 edgebench::MemoryCapacityError);
    // The unchecked variant still prices it (dynamic-graph path).
    EXPECT_GT(eh::graphLatencyUnchecked(g, small, p).totalMs, 0.0);
}

TEST(RooflineTest, OnChipSpillPenaltySlowsLargeLayers)
{
    auto g = em::buildResNet(50);
    eh::EngineProfile p;
    auto fits = testUnit(100.0, 10.0);
    auto spills = fits;
    spills.onChipBytes = 1024.0; // everything spills
    spills.offChipPenalty = 10.0;
    const auto fast = eh::graphLatency(g, fits, p).totalMs;
    const auto slow = eh::graphLatency(g, spills, p).totalMs;
    EXPECT_GT(slow, fast);
}

TEST(RooflineTest, InvalidEfficienciesAreRejected)
{
    auto g = convGraph();
    auto unit = testUnit(10.0, 10.0);
    eh::EngineProfile bad{.computeEfficiency = 0.0};
    EXPECT_THROW(eh::graphLatency(g, unit, bad),
                 edgebench::InvalidArgumentError);
    eh::EngineProfile bad2{.computeEfficiency = 0.5,
                           .memoryEfficiency = 1.5};
    EXPECT_THROW(eh::graphLatency(g, unit, bad2),
                 edgebench::InvalidArgumentError);
}

TEST(RooflineTest, InputNodesAreFree)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 224, 224});
    g.markOutput(in);
    auto unit = testUnit(10.0, 10.0);
    eh::EngineProfile p;
    const auto cost = eh::graphLatency(g, unit, p);
    EXPECT_DOUBLE_EQ(cost.totalMs, p.perInferenceOverheadMs);
}
