/**
 * @file
 * Op-coverage completeness test: every OpKind in the vocabulary must
 * be constructible through the builder API, executable by the
 * interpreter, priceable by the cost model, and serializable. This
 * catches future ops that are added to the enum but not wired
 * everywhere.
 */

#include <set>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/graph/serialize.hh"
#include "edgebench/hw/roofline.hh"

namespace eg = edgebench::graph;
namespace ec = edgebench::core;
namespace eh = edgebench::hw;

namespace
{

/**
 * Build one graph touching every op kind: a small CNN body with a
 * residual, concat, shuffle, pads, upsample, detection heads, an RNN
 * tail and a fused node (via the fusion pass on a sub-pattern).
 */
eg::Graph
buildOpZoo()
{
    eg::Graph g("opzoo");
    auto img = g.addInput({1, 4, 8, 8});

    auto c1 = g.addConv2d(img, 4, 3, 3, 1, 1, 1, 1, false, "c1");
    auto bn = g.addBatchNorm(c1);
    auto act = g.addActivation(bn, eg::ActKind::kRelu);
    auto res = g.addAdd(act, img);
    auto cat = g.addConcat({res, img});           // 8 channels
    auto shuf = g.addChannelShuffle(cat, 2);
    auto pad = g.addPadSpatial(shuf, 1, 1, 1, 1); // 10x10
    auto mp = g.addMaxPool2d(pad, 2, 2);          // 5x5
    auto ap = g.addAvgPool2d(mp, 3, 1, 1);        // 5x5
    auto up = g.addUpsample(ap, 2);               // 10x10
    auto gap = g.addGlobalAvgPool(up);            // [1, 8]
    auto fc = g.addDense(gap, 6);
    auto sm = g.addSoftmax(fc);
    g.markOutput(sm);

    // YOLO head branch.
    auto yconv = g.addConv2d(mp, 7, 1, 1, 1, 0, 1, 1, true, "yhead");
    auto yolo = g.addYoloDetect(yconv, 2, 1);
    g.markOutput(yolo);

    // SSD-style detect branch.
    auto flat = g.addFlatten(mp);                 // [1, 200]
    auto det_in = g.addReshape(flat, {1, 40, 5});
    auto det = g.addDetectPostprocess(det_in, 1);
    g.markOutput(det);

    // Sequence branch: reshape spatial into a sequence.
    auto seq = g.addReshape(flat, {1, 40, 5});
    auto lstm = g.addLstm(seq, 3);
    auto gru = g.addGru(lstm, 2);
    auto last = g.addSelectTimestep(gru, -1);
    auto cl = g.addConcatLast({last, last});
    g.markOutput(cl);

    // 3D branch.
    auto vol = g.addInput({1, 2, 3, 6, 6}, "clip");
    auto c3 = g.addConv3d(vol, 3, 3, 3, 3, 1, 1, 1, 1);
    auto p3 = g.addMaxPool3d(c3, 1, 2, 1, 2);
    auto f3 = g.addFlatten(p3);
    auto fc3 = g.addDense(f3, 2);
    g.markOutput(fc3);
    return g;
}

} // namespace

TEST(OpCoverageTest, GraphTouchesEveryOpKindExceptFused)
{
    const auto g = buildOpZoo();
    std::set<eg::OpKind> seen;
    for (const auto& n : g.nodes())
        seen.insert(n.kind);
    // Fused nodes only come from the pass; everything else must be
    // present.
    for (auto k :
         {eg::OpKind::kInput, eg::OpKind::kConv2d,
          eg::OpKind::kConv3d, eg::OpKind::kDense,
          eg::OpKind::kBatchNorm, eg::OpKind::kActivation,
          eg::OpKind::kSoftmax, eg::OpKind::kMaxPool2d,
          eg::OpKind::kAvgPool2d, eg::OpKind::kMaxPool3d,
          eg::OpKind::kGlobalAvgPool, eg::OpKind::kAdd,
          eg::OpKind::kConcat, eg::OpKind::kFlatten,
          eg::OpKind::kReshape, eg::OpKind::kConcatLast,
          eg::OpKind::kPadSpatial, eg::OpKind::kUpsample,
          eg::OpKind::kLstm, eg::OpKind::kGru,
          eg::OpKind::kSelectTimestep, eg::OpKind::kChannelShuffle,
          eg::OpKind::kDetectPostprocess, eg::OpKind::kYoloDetect}) {
        EXPECT_TRUE(seen.count(k)) << eg::opKindName(k);
    }
}

TEST(OpCoverageTest, InterpreterExecutesEveryOp)
{
    auto g = buildOpZoo();
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    ec::Rng irng(2);
    const auto outs = interp.run(
        {ec::Tensor::randomNormal({1, 4, 8, 8}, irng),
         ec::Tensor::randomNormal({1, 2, 3, 6, 6}, irng)});
    ASSERT_EQ(outs.size(), 5u);
    EXPECT_EQ(interp.lastStats().nodesExecuted, g.numNodes());
}

TEST(OpCoverageTest, FusedNodeExecutesToo)
{
    auto g = buildOpZoo();
    auto fused = eg::fuseConvBnAct(g).graph;
    bool has_fused = false;
    for (const auto& n : fused.nodes())
        has_fused |= (n.kind == eg::OpKind::kFusedConvBnAct);
    ASSERT_TRUE(has_fused);
    ec::Rng rng(3);
    fused.materializeParams(rng);
    eg::Interpreter interp(fused);
    ec::Rng irng(4);
    EXPECT_NO_THROW(interp.run(
        {ec::Tensor::randomNormal({1, 4, 8, 8}, irng),
         ec::Tensor::randomNormal({1, 2, 3, 6, 6}, irng)}));
}

TEST(OpCoverageTest, CostModelPricesEveryOp)
{
    const auto g = buildOpZoo();
    eh::ComputeUnit unit;
    unit.name = "t";
    unit.peakGflopsF32 = 10.0;
    unit.memBandwidthGBs = 10.0;
    unit.memCapacityBytes = 1e12;
    eh::EngineProfile p;
    const auto per_node = eh::perNodeTotalMs(g, unit, p);
    for (const auto& n : g.nodes()) {
        if (n.kind == eg::OpKind::kInput)
            continue;
        EXPECT_GT(per_node[static_cast<std::size_t>(n.id)], 0.0)
            << n.name;
    }
}

TEST(OpCoverageTest, SerializationRoundTripsEveryOp)
{
    const auto g = buildOpZoo();
    const auto back =
        eg::graphFromString(eg::graphToString(g));
    ASSERT_EQ(back.numNodes(), g.numNodes());
    for (eg::NodeId i = 0; i < g.numNodes(); ++i) {
        EXPECT_EQ(back.node(i).kind, g.node(i).kind) << i;
        EXPECT_EQ(back.node(i).outShape, g.node(i).outShape) << i;
    }
    EXPECT_EQ(back.stats().macs, g.stats().macs);
}
