/**
 * @file
 * Round-trip tests for the EBG text serialization: every zoo model
 * (Table I + extensions) must survive save/load with identical
 * cost-model behaviour.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/graph/serialize.hh"
#include "edgebench/models/zoo.hh"

namespace eg = edgebench::graph;
namespace em = edgebench::models;
namespace ec = edgebench::core;
using edgebench::InvalidArgumentError;

namespace
{

void
expectEquivalent(const eg::Graph& a, const eg::Graph& b)
{
    ASSERT_EQ(a.numNodes(), b.numNodes());
    const auto sa = a.stats();
    const auto sb = b.stats();
    EXPECT_EQ(sa.macs, sb.macs);
    EXPECT_EQ(sa.params, sb.params);
    EXPECT_DOUBLE_EQ(sa.paramBytes, sb.paramBytes);
    EXPECT_DOUBLE_EQ(sa.activationBytes, sb.activationBytes);
    EXPECT_EQ(a.inputIds(), b.inputIds());
    EXPECT_EQ(a.outputIds(), b.outputIds());
    EXPECT_EQ(a.name(), b.name());
    EXPECT_EQ(a.inputDescription(), b.inputDescription());
    for (eg::NodeId i = 0; i < a.numNodes(); ++i) {
        const auto& na = a.node(i);
        const auto& nb = b.node(i);
        ASSERT_EQ(na.kind, nb.kind) << i;
        EXPECT_EQ(na.outShape, nb.outShape) << i;
        EXPECT_EQ(na.inputs, nb.inputs) << i;
        EXPECT_EQ(na.dtype, nb.dtype) << i;
        EXPECT_EQ(na.paramShapes, nb.paramShapes) << i;
        EXPECT_DOUBLE_EQ(na.weightSparsity, nb.weightSparsity) << i;
    }
}

} // namespace

class SerializeZoo : public ::testing::TestWithParam<em::ModelId>
{
};

TEST_P(SerializeZoo, RoundTripPreservesCostModel)
{
    const auto g = em::buildModel(GetParam());
    const auto back = eg::graphFromString(eg::graphToString(g));
    expectEquivalent(g, back);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, SerializeZoo, ::testing::ValuesIn(em::allModels()),
    [](const ::testing::TestParamInfo<em::ModelId>& pi) {
        std::string n = em::modelInfo(pi.param).name + "_" +
            em::modelInfo(pi.param).inputSize;
        for (auto& c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

TEST(SerializeTest, RecurrentAndMobileExtensionsRoundTrip)
{
    for (auto g : em::buildRecurrentExtensions())
        expectEquivalent(g,
                         eg::graphFromString(eg::graphToString(g)));
    const auto sq = em::buildSqueezeNet();
    expectEquivalent(sq,
                     eg::graphFromString(eg::graphToString(sq)));
    const auto sh = em::buildShuffleNet();
    expectEquivalent(sh,
                     eg::graphFromString(eg::graphToString(sh)));
}

TEST(SerializeTest, QuantizedAnnotationsSurvive)
{
    const auto g = em::buildCifarNet();
    const auto q = eg::quantizeInt8(g).graph;
    const auto back = eg::graphFromString(eg::graphToString(q));
    expectEquivalent(q, back);
    bool saw_int8 = false;
    for (const auto& n : back.nodes())
        saw_int8 |= (n.dtype == ec::DType::kI8);
    EXPECT_TRUE(saw_int8);
}

TEST(SerializeTest, PrunedSparsitySurvives)
{
    const auto g = eg::pruneWeights(em::buildCifarNet(), 0.5).graph;
    const auto back = eg::graphFromString(eg::graphToString(g));
    for (eg::NodeId i = 0; i < g.numNodes(); ++i)
        EXPECT_DOUBLE_EQ(back.node(i).weightSparsity,
                         g.node(i).weightSparsity);
}

TEST(SerializeTest, ReloadedGraphExecutes)
{
    auto back = eg::graphFromString(
        eg::graphToString(em::buildCifarNet()));
    ec::Rng rng(1);
    back.materializeParams(rng);
    eg::Interpreter interp(back);
    ec::Rng irng(2);
    const auto out = interp.run(
        {ec::Tensor::randomNormal({1, 3, 32, 32}, irng)})[0];
    EXPECT_EQ(out.numel(), 10);
}

TEST(SerializeTest, SameSeedSameWeightsAfterRoundTrip)
{
    // Weight reproducibility: the serialized skeleton plus the seed
    // regenerates identical parameters.
    auto a = em::buildCifarNet();
    auto b = eg::graphFromString(eg::graphToString(a));
    ec::Rng ra(7), rb(7);
    a.materializeParams(ra);
    b.materializeParams(rb);
    for (eg::NodeId i = 0; i < a.numNodes(); ++i) {
        const auto& pa = a.node(i).params;
        const auto& pb = b.node(i).params;
        ASSERT_EQ(pa.size(), pb.size());
        for (std::size_t p = 0; p < pa.size(); ++p)
            EXPECT_DOUBLE_EQ(pa[p].maxAbsDiff(pb[p]), 0.0);
    }
}

TEST(SerializeTest, MalformedInputsThrow)
{
    EXPECT_THROW(eg::graphFromString("not a graph"),
                 InvalidArgumentError);
    EXPECT_THROW(eg::graphFromString("EBG v1\n"),
                 InvalidArgumentError); // empty graph
    EXPECT_THROW(
        eg::graphFromString("EBG v1\nnode 0 bogus_kind name=x\n"),
        InvalidArgumentError);
    EXPECT_THROW(
        eg::graphFromString(
            "EBG v1\nattr conv2d 1 1 1 1 1 1 1 1 1 0 0 1 1 1\n"),
        InvalidArgumentError); // attr before node
}

TEST(SerializeTest, OutputIsStableAcrossCalls)
{
    const auto g = em::buildResNet(18);
    EXPECT_EQ(eg::graphToString(g), eg::graphToString(g));
}
