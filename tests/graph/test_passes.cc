/**
 * @file
 * Property tests for the optimization passes: every pass must preserve
 * graph semantics (up to the precision change it introduces), verified
 * by executing the graph before and after with the interpreter.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/graph/graph.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/passes.hh"

namespace eg = edgebench::graph;
namespace ec = edgebench::core;

namespace
{

/** Small conv-bn-relu x2 + residual + head graph for pass testing. */
eg::Graph
makeTestNet(bool with_bn = true)
{
    eg::Graph g("testnet");
    auto in = g.addInput({1, 3, 16, 16});
    auto x = g.addConv2d(in, 8, 3, 3, 1, 1, 1, 1, !with_bn, "c1");
    if (with_bn)
        x = g.addBatchNorm(x);
    x = g.addActivation(x, eg::ActKind::kRelu);
    auto y = g.addConv2d(x, 8, 3, 3, 1, 1, 1, 1, !with_bn, "c2");
    if (with_bn)
        y = g.addBatchNorm(y);
    y = g.addActivation(y, eg::ActKind::kRelu);
    auto sum = g.addAdd(x, y);
    auto p = g.addGlobalAvgPool(sum);
    auto fc = g.addDense(p, 10);
    auto sm = g.addSoftmax(fc);
    g.markOutput(sm);
    return g;
}

ec::Tensor
testInput(std::uint64_t seed = 42)
{
    ec::Rng rng(seed);
    return ec::Tensor::randomNormal({1, 3, 16, 16}, rng);
}

} // namespace

TEST(FusionPassTest, FusesConvBnReluChains)
{
    auto g = makeTestNet();
    auto [fused, rewrites] = eg::fuseConvBnAct(g);
    EXPECT_EQ(rewrites, 2);
    // 2 conv + 2 bn + 2 relu collapse into 2 fused nodes.
    EXPECT_EQ(fused.numNodes(), g.numNodes() - 4);
    std::int64_t n_fused = 0;
    for (const auto& n : fused.nodes())
        n_fused += (n.kind == eg::OpKind::kFusedConvBnAct);
    EXPECT_EQ(n_fused, 2);
}

TEST(FusionPassTest, PreservesSemanticsWithBnFolding)
{
    auto g = makeTestNet();
    ec::Rng rng(1);
    g.materializeParams(rng);
    auto x = testInput();

    eg::Interpreter before(g);
    auto ref = before.run({x})[0];

    auto [fused, rewrites] = eg::fuseConvBnAct(g);
    ASSERT_EQ(rewrites, 2);
    eg::Interpreter after(fused);
    auto got = after.run({x})[0];
    EXPECT_LT(ref.maxAbsDiff(got), 1e-4);
}

TEST(FusionPassTest, ConvActWithoutBnAlsoFuses)
{
    auto g = makeTestNet(/*with_bn=*/false);
    ec::Rng rng(2);
    g.materializeParams(rng);
    auto x = testInput(3);
    eg::Interpreter before(g);
    auto ref = before.run({x})[0];

    auto [fused, rewrites] = eg::fuseConvBnAct(g);
    EXPECT_EQ(rewrites, 2);
    eg::Interpreter after(fused);
    EXPECT_LT(ref.maxAbsDiff(after.run({x})[0]), 1e-5);
}

TEST(FusionPassTest, ConvFeedingTwoConsumersIsNotFusedWithBn)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 3, 3, 3, 1, 1);
    auto bn = g.addBatchNorm(c);
    auto other = g.addActivation(c, eg::ActKind::kSigmoid);
    auto sum = g.addAdd(bn, other);
    g.markOutput(sum);
    auto [fused, rewrites] = eg::fuseConvBnAct(g);
    EXPECT_EQ(rewrites, 0);
    EXPECT_EQ(fused.numNodes(), g.numNodes());
}

TEST(FusionPassTest, DeferredGraphGainsBiasShape)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, 1, 1, 1, 1, /*bias=*/false);
    auto bn = g.addBatchNorm(c);
    g.markOutput(bn);
    auto [fused, rewrites] = eg::fuseConvBnAct(g);
    ASSERT_EQ(rewrites, 1);
    // Folding introduces the bias parameter shape.
    const auto& fn = fused.node(fused.outputIds()[0]);
    ASSERT_EQ(fn.kind, eg::OpKind::kFusedConvBnAct);
    ASSERT_EQ(fn.paramShapes.size(), 2u);
    EXPECT_EQ(fn.paramShapes[1], (ec::Shape{4}));
}

TEST(QuantizePassTest, AnnotatesAndTracksAccuracy)
{
    auto g = makeTestNet();
    ec::Rng rng(5);
    g.materializeParams(rng);
    auto x = testInput(7);

    eg::Interpreter before(g);
    auto ref = before.run({x})[0];

    std::vector<ec::Tensor> calib = {x};
    auto [q, rewrites] = eg::quantizeInt8(g, &calib);
    EXPECT_GT(rewrites, 0);

    eg::Interpreter after(q);
    auto got = after.run({x})[0];
    // Softmax amplifies logit-level quantization noise when logits are
    // close (random weights), so bound the max loosely and the mean
    // tightly.
    EXPECT_LT(ref.maxAbsDiff(got.toF32()), 0.25);
    double mean_err = 0.0;
    auto gf = got.toF32();
    for (std::int64_t i = 0; i < ref.numel(); ++i)
        mean_err += std::fabs(ref.at(i) - gf.at(i));
    EXPECT_LT(mean_err / ref.numel(), 0.06);
}

TEST(QuantizePassTest, QuantizedWeightsAreInt8)
{
    auto g = makeTestNet();
    ec::Rng rng(5);
    g.materializeParams(rng);
    std::vector<ec::Tensor> calib = {testInput(8)};
    auto [q, rewrites] = eg::quantizeInt8(g, &calib);
    bool saw_conv = false;
    for (const auto& n : q.nodes()) {
        if (n.kind == eg::OpKind::kConv2d) {
            saw_conv = true;
            EXPECT_EQ(n.params[0].dtype(), ec::DType::kI8);
            EXPECT_TRUE(n.outQuant.has_value());
        }
    }
    EXPECT_TRUE(saw_conv);
}

TEST(QuantizePassTest, DeferredGraphGetsAnnotationsOnly)
{
    auto g = makeTestNet();
    auto [q, rewrites] = eg::quantizeInt8(g);
    EXPECT_GT(rewrites, 0);
    // Storage cost drops ~4x for quantized params.
    EXPECT_LT(q.stats().paramBytes, g.stats().paramBytes / 2);
    // Softmax stays fp32 (no int8 kernel).
    for (const auto& n : q.nodes()) {
        if (n.kind == eg::OpKind::kSoftmax) {
            EXPECT_EQ(n.dtype, ec::DType::kF32);
        }
    }
}

TEST(QuantizePassTest, MaterializedWithoutCalibrationThrows)
{
    auto g = makeTestNet();
    ec::Rng rng(5);
    g.materializeParams(rng);
    EXPECT_THROW(eg::quantizeInt8(g),
                 edgebench::InvalidArgumentError);
}

TEST(F16PassTest, HalvesParamBytesAndPreservesSemantics)
{
    auto g = makeTestNet();
    ec::Rng rng(9);
    g.materializeParams(rng);
    auto x = testInput(10);
    eg::Interpreter before(g);
    auto ref = before.run({x})[0];

    auto [h, rewrites] = eg::convertToF16(g);
    EXPECT_EQ(rewrites, g.numNodes());
    EXPECT_DOUBLE_EQ(h.stats().paramBytes, g.stats().paramBytes / 2);
    eg::Interpreter after(h);
    auto got = after.run({x})[0];
    EXPECT_LT(ref.maxAbsDiff(got), 0.02);
}

TEST(PrunePassTest, SetsSparsityAndKeepsLargeWeights)
{
    auto g = makeTestNet();
    ec::Rng rng(11);
    g.materializeParams(rng);
    auto [p, rewrites] = eg::pruneWeights(g, 0.5);
    EXPECT_GT(rewrites, 0);
    for (const auto& n : p.nodes()) {
        if (n.kind == eg::OpKind::kConv2d ||
            n.kind == eg::OpKind::kDense) {
            EXPECT_DOUBLE_EQ(n.weightSparsity, 0.5);
            EXPECT_NEAR(n.params[0].sparsity(), 0.5, 0.02);
        }
    }
    // Pruned graph still executes.
    eg::Interpreter interp(p);
    auto out = interp.run({testInput(12)})[0];
    EXPECT_EQ(out.numel(), 10);
}

TEST(PrunePassTest, InvalidFractionThrows)
{
    auto g = makeTestNet();
    EXPECT_THROW(eg::pruneWeights(g, 1.0),
                 edgebench::InvalidArgumentError);
}

TEST(DeadNodePassTest, RemovesUnreachableBranch)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto live = g.addConv2d(in, 4, 3, 3, 1, 1);
    auto dead = g.addConv2d(in, 16, 3, 3, 1, 1);
    (void)dead;
    auto dead2 = g.addActivation(dead, eg::ActKind::kRelu);
    (void)dead2;
    g.markOutput(live);

    auto [frozen, removed] = eg::eliminateDeadNodes(g);
    EXPECT_EQ(removed, 2);
    EXPECT_EQ(frozen.numNodes(), 2);
    EXPECT_LT(frozen.stats().params, g.stats().params);
}

TEST(DeadNodePassTest, PreservesSemantics)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto live = g.addConv2d(in, 4, 3, 3, 1, 1);
    g.addConv2d(in, 16, 3, 3, 1, 1); // dead
    g.markOutput(live);
    ec::Rng rng(13);
    g.materializeParams(rng);
    auto x = testInput(14);
    // Same seed materialization order differs, so compare through the
    // pass (which copies params) instead of re-materializing.
    eg::Interpreter before(g);
    ec::Rng rng_in(15);
    auto input = ec::Tensor::randomNormal({1, 3, 8, 8}, rng_in);
    auto ref = before.run({input})[0];
    auto [frozen, removed] = eg::eliminateDeadNodes(g);
    ASSERT_EQ(removed, 1);
    eg::Interpreter after(frozen);
    EXPECT_LT(ref.maxAbsDiff(after.run({input})[0]), 1e-6);
    (void)x;
}

TEST(PassCompositionTest, FuseThenQuantizeStillAccurate)
{
    auto g = makeTestNet();
    ec::Rng rng(17);
    g.materializeParams(rng);
    auto x = testInput(18);
    eg::Interpreter base(g);
    auto ref = base.run({x})[0];

    auto fused = eg::fuseConvBnAct(g).graph;
    std::vector<ec::Tensor> calib = {x};
    auto q = eg::quantizeInt8(fused, &calib).graph;
    eg::Interpreter interp(q);
    auto got = interp.run({x})[0];
    EXPECT_LT(ref.maxAbsDiff(got.toF32()), 0.35);
    // The fused int8 pipeline must actually use fused int8 nodes.
    bool saw = false;
    for (const auto& n : q.nodes())
        if (n.kind == eg::OpKind::kFusedConvBnAct &&
            n.dtype == ec::DType::kI8)
            saw = true;
    EXPECT_TRUE(saw);
}
