/**
 * @file
 * Tests for the graph export facilities (summary table, Graphviz).
 */

#include <sstream>

#include <gtest/gtest.h>

#include "edgebench/graph/export.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/models/zoo.hh"

namespace eg = edgebench::graph;
namespace em = edgebench::models;

TEST(SummaryTest, ContainsEveryNodeAndTotals)
{
    const auto g = em::buildCifarNet();
    std::ostringstream oss;
    eg::printSummary(g, oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("Model: CifarNet"), std::string::npos);
    for (const auto& n : g.nodes())
        EXPECT_NE(out.find(n.name.substr(0, 25)), std::string::npos)
            << n.name;
    EXPECT_NE(out.find("total: "), std::string::npos);
    EXPECT_NE(out.find("FLOP/param"), std::string::npos);
}

TEST(SummaryTest, ShowsPrecisionAnnotations)
{
    auto g = em::buildCifarNet();
    auto q = eg::quantizeInt8(g).graph;
    std::ostringstream oss;
    eg::printSummary(q, oss);
    EXPECT_NE(oss.str().find("int8"), std::string::npos);
}

TEST(DotTest, ValidStructure)
{
    const auto g = em::buildCifarNet();
    std::ostringstream oss;
    eg::writeDot(g, oss);
    const std::string out = oss.str();
    EXPECT_EQ(out.rfind("digraph", 0), 0u);
    EXPECT_NE(out.find("n0 ["), std::string::npos);
    EXPECT_NE(out.find("lightblue"), std::string::npos);   // input
    EXPECT_NE(out.find("lightsalmon"), std::string::npos); // output
    EXPECT_EQ(out.back(), '\n');
    // One edge line per node input.
    std::size_t edges = 0, pos = 0;
    while ((pos = out.find(" -> ", pos)) != std::string::npos) {
        ++edges;
        pos += 4;
    }
    std::size_t expected = 0;
    for (const auto& n : g.nodes())
        expected += n.inputs.size();
    EXPECT_EQ(edges, expected);
}

TEST(DotTest, ResidualGraphHasBranchEdges)
{
    const auto g = em::buildResNet(18);
    std::ostringstream oss;
    eg::writeDot(g, oss);
    std::size_t edges = 0, pos = 0;
    const std::string out = oss.str();
    while ((pos = out.find(" -> ", pos)) != std::string::npos) {
        ++edges;
        pos += 4;
    }
    // More edges than nodes: residual fan-out.
    EXPECT_GT(edges, static_cast<std::size_t>(g.numNodes()));
}
