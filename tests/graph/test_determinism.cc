/**
 * @file
 * End-to-end determinism across thread counts: a whole-model
 * inference must produce byte-identical outputs whether the kernel
 * layer runs on 1, 2, or 4 workers. This is the contract that makes
 * the thread count a pure performance knob (parallel.hh) — any kernel
 * that reorders accumulation or races on an output element shows up
 * here as a bit difference.
 *
 * The suite name matches the tsan preset's test filter, so these
 * whole-model parallel paths also run under ThreadSanitizer.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "edgebench/core/parallel.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/core/tensor.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/models/zoo.hh"

namespace ec = edgebench::core;
namespace eg = edgebench::graph;
namespace em = edgebench::models;

namespace
{

void
expectBitIdentical(const ec::Tensor& a, const ec::Tensor& b)
{
    ASSERT_EQ(a.dtype(), b.dtype());
    ASSERT_TRUE(ec::sameShape(a.shape(), b.shape()));
    if (a.dtype() == ec::DType::kI8) {
        auto qa = a.qdata();
        auto qb = b.qdata();
        ASSERT_EQ(0, std::memcmp(qa.data(), qb.data(), qa.size()));
    } else {
        auto da = a.data();
        auto db = b.data();
        ASSERT_EQ(0, std::memcmp(da.data(), db.data(),
                                 da.size() * sizeof(float)));
    }
}

/** Run @p g on @p inputs at 1/2/4 threads; all runs must match. */
void
expectThreadCountInvariant(const eg::Graph& g,
                           const std::vector<ec::Tensor>& inputs)
{
    std::vector<std::vector<ec::Tensor>> runs;
    for (int threads : {1, 2, 4}) {
        ec::setParallelism(threads);
        eg::Interpreter interp(g);
        runs.push_back(interp.run(inputs));
    }
    ec::setParallelism(0);
    for (std::size_t r = 1; r < runs.size(); ++r) {
        ASSERT_EQ(runs[0].size(), runs[r].size());
        for (std::size_t i = 0; i < runs[0].size(); ++i)
            expectBitIdentical(runs[0][i], runs[r][i]);
    }
}

} // namespace

TEST(ParallelDeterminismTest, CifarNetF32)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(21);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 32, 32}, rng);
    expectThreadCountInvariant(g, {x});
}

TEST(ParallelDeterminismTest, MobileNetV1F32PackedPaths)
{
    // fp32 MobileNet-v1 drives the pack-and-tile engine's two conv
    // paths back to back: the direct depthwise kernel and the
    // im2col + packed-GEMM pointwise layers, plus the packed dense
    // classifier — all must be byte-identical across thread counts.
    auto g = em::buildMobileNetV1(/*classes=*/10, /*image=*/64);
    ec::Rng rng(26);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 64, 64}, rng);
    expectThreadCountInvariant(g, {x});
}

TEST(ParallelDeterminismTest, MobileNetV1Int8Quantized)
{
    // Small image/class count keeps the run fast; the graph still
    // exercises int8 conv, depthwise conv, dense and the dequant
    // fallback ops.
    auto g = em::buildMobileNetV1(/*classes=*/10, /*image=*/64);
    ec::Rng rng(22);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 64, 64}, rng);
    std::vector<ec::Tensor> calib = {x};
    auto [q, rewrites] = eg::quantizeInt8(g, &calib);
    ASSERT_GT(rewrites, 0);
    expectThreadCountInvariant(q, {x});
}

TEST(ParallelDeterminismTest, CharRnnLstm)
{
    auto g = em::buildCharRnn(/*vocab=*/32, /*seq_len=*/8,
                              /*hidden=*/64);
    ec::Rng rng(23);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 8, 32}, rng);
    expectThreadCountInvariant(g, {x});
}

TEST(ParallelDeterminismTest, GruClassifier)
{
    auto g = em::buildGruClassifier(/*features=*/16, /*seq_len=*/10,
                                    /*hidden=*/32, /*classes=*/4);
    ec::Rng rng(24);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 10, 16}, rng);
    expectThreadCountInvariant(g, {x});
}

TEST(ParallelDeterminismTest, RepeatedRunsAtFixedThreadCountMatch)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(25);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 32, 32}, rng);
    ec::setParallelism(4);
    eg::Interpreter interp(g);
    auto a = interp.run({x});
    auto b = interp.run({x});
    ec::setParallelism(0);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        expectBitIdentical(a[i], b[i]);
}
