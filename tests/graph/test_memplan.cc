/**
 * @file
 * Tests for the static activation-memory planner (memplan.hh) and the
 * interpreter's arena execution path.
 *
 * Three layers:
 *  - differential: planner-on vs planner-off runs must be bit-identical
 *    (fp32, int8 and f16 graphs, at 1/2/4 threads) with equal peak
 *    accounting;
 *  - plan invariants: on every zoo model (deferred graphs, both dtype
 *    modes) and on randomized DAGs, no two time-overlapping blocks may
 *    overlap in the arena, offsets stay aligned, and the bound
 *    peakLive <= arena <= sum-of-allocations holds;
 *  - accounting: refcountPeakBytes is an exact analytic oracle of a
 *    legacy run's RunStats::peakActivationBytes.
 *
 * Suite names start with "MemPlan" to match the tsan preset's filter,
 * so the arena path also runs under ThreadSanitizer.
 */

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/core/parallel.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/core/tensor.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/memplan.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/models/zoo.hh"

namespace ec = edgebench::core;
namespace eg = edgebench::graph;
namespace em = edgebench::models;

namespace
{

void
expectBitIdentical(const ec::Tensor& a, const ec::Tensor& b)
{
    ASSERT_EQ(a.dtype(), b.dtype());
    ASSERT_TRUE(ec::sameShape(a.shape(), b.shape()));
    if (a.dtype() == ec::DType::kI8) {
        auto qa = a.qdata();
        auto qb = b.qdata();
        ASSERT_EQ(0, std::memcmp(qa.data(), qb.data(), qa.size()));
    } else {
        auto da = a.data();
        auto db = b.data();
        ASSERT_EQ(0, std::memcmp(da.data(), db.data(),
                                 da.size() * sizeof(float)));
    }
}

/**
 * Run @p g with and without the planner at 1/2/4 threads: outputs must
 * be byte-identical and the live-byte accounting must agree exactly
 * (including with the plan's analytic refcount replay).
 */
void
expectPlannerMatchesLegacy(const eg::Graph& g,
                           const std::vector<ec::Tensor>& inputs)
{
    for (int threads : {1, 2, 4}) {
        ec::setParallelism(threads);

        eg::Interpreter legacy(g);
        legacy.setUseMemoryPlan(false);
        const auto ref = legacy.run(inputs);
        const auto legacy_peak = legacy.lastStats().peakActivationBytes;
        ASSERT_FALSE(legacy.lastStats().usedMemoryPlan);
        ASSERT_EQ(legacy.lastStats().arenaBytes, 0);

        eg::Interpreter planned(g);
        planned.setUseMemoryPlan(true);
        const auto out = planned.run(inputs);
        ASSERT_TRUE(planned.lastStats().usedMemoryPlan);
        EXPECT_EQ(planned.lastStats().peakActivationBytes, legacy_peak)
            << g.name() << " threads=" << threads;
        EXPECT_EQ(planned.memoryPlan().refcountPeakBytes, legacy_peak)
            << g.name();

        ASSERT_EQ(ref.size(), out.size());
        for (std::size_t i = 0; i < ref.size(); ++i)
            expectBitIdentical(ref[i], out[i]);
    }
    ec::setParallelism(0);
}

/** Structural invariants every plan must satisfy, both dtype modes. */
void
expectPlanInvariants(const eg::Graph& g)
{
    for (bool force_f32 : {false, true}) {
        const auto plan = eg::planMemory(g, force_f32);
        ASSERT_EQ(plan.slots.size(),
                  static_cast<std::size_t>(g.numNodes()));

        std::int64_t aligned_sum = 0;
        for (std::size_t i = 0; i < plan.slots.size(); ++i) {
            const auto& s = plan.slots[i];
            EXPECT_EQ(s.offset % eg::kArenaAlign, 0) << g.name();
            EXPECT_LE(s.defStep, s.endStep);
            EXPECT_LE(s.offset + s.physicalBytes, plan.arenaBytes)
                << g.name() << " node " << i;
            if (s.root == static_cast<eg::NodeId>(i)) {
                aligned_sum += (s.physicalBytes + eg::kArenaAlign - 1) /
                    eg::kArenaAlign * eg::kArenaAlign;
            } else {
                // Chain members live in their root's block.
                const auto& r =
                    plan.slots[static_cast<std::size_t>(s.root)];
                EXPECT_EQ(s.offset, r.offset);
                EXPECT_EQ(s.physicalBytes, r.physicalBytes);
                EXPECT_GE(s.inplaceSrc, 0);
            }
        }
        EXPECT_GT(plan.arenaBytes, 0) << g.name();
        EXPECT_LE(plan.peakLiveBytes, plan.arenaBytes) << g.name();
        EXPECT_LE(plan.arenaBytes, aligned_sum) << g.name();
        EXPECT_LE(plan.refcountPeakBytes, plan.sumAllocBytes)
            << g.name();

        // The core guarantee: blocks whose lifetimes overlap in time
        // never overlap in the arena.
        for (std::size_t a = 0; a < plan.slots.size(); ++a) {
            const auto& sa = plan.slots[a];
            if (sa.root != static_cast<eg::NodeId>(a))
                continue;
            for (std::size_t b = a + 1; b < plan.slots.size(); ++b) {
                const auto& sb = plan.slots[b];
                if (sb.root != static_cast<eg::NodeId>(b))
                    continue;
                const bool time_overlap = !(sb.endStep < sa.defStep ||
                                            sb.defStep > sa.endStep);
                if (!time_overlap)
                    continue;
                const bool byte_overlap =
                    sa.offset < sb.offset + sb.physicalBytes &&
                    sb.offset < sa.offset + sa.physicalBytes;
                EXPECT_FALSE(byte_overlap)
                    << g.name() << ": blocks " << a << " and " << b
                    << " overlap in both time and bytes";
            }
        }
    }
}

} // namespace

// ---- Differential: planner vs legacy, bit-identical. ----

TEST(MemPlanDifferentialTest, CifarNetF32)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(41);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 32, 32}, rng);
    expectPlannerMatchesLegacy(g, {x});
}

TEST(MemPlanDifferentialTest, MobileNetV1F32)
{
    auto g = em::buildMobileNetV1(/*classes=*/10, /*image=*/64);
    ec::Rng rng(42);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 64, 64}, rng);
    expectPlannerMatchesLegacy(g, {x});
}

TEST(MemPlanDifferentialTest, MobileNetV2ResidualAddsF32)
{
    // Inverted residuals: kAdd nodes are in-place candidates whose
    // operands must keep IEEE order.
    auto g = em::buildMobileNetV2(/*classes=*/10, /*image=*/64);
    ec::Rng rng(43);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 64, 64}, rng);
    expectPlannerMatchesLegacy(g, {x});
}

TEST(MemPlanDifferentialTest, ResNet18F32)
{
    auto g = em::buildResNet(18, /*classes=*/10, /*image=*/64);
    ec::Rng rng(44);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 64, 64}, rng);
    expectPlannerMatchesLegacy(g, {x});
}

TEST(MemPlanDifferentialTest, SqueezeNetConcatF32)
{
    auto g = em::buildSqueezeNet(/*classes=*/10, /*image=*/64);
    ec::Rng rng(45);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 64, 64}, rng);
    expectPlannerMatchesLegacy(g, {x});
}

TEST(MemPlanDifferentialTest, ShuffleNetChannelShuffleF32)
{
    auto g = em::buildShuffleNet(/*classes=*/10, /*image=*/64);
    ec::Rng rng(46);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 64, 64}, rng);
    expectPlannerMatchesLegacy(g, {x});
}

TEST(MemPlanDifferentialTest, TinyYoloDetectionHeadF32)
{
    auto g = em::buildTinyYolo(/*classes=*/4, /*image=*/96);
    ec::Rng rng(47);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 96, 96}, rng);
    expectPlannerMatchesLegacy(g, {x});
}

TEST(MemPlanDifferentialTest, CharRnnLstmDeferredCommit)
{
    // LSTM/GRU are excluded from in-place sharing (deferred-commit
    // constraint); the planner must still match the legacy path.
    auto g = em::buildCharRnn(/*vocab=*/32, /*seq_len=*/8,
                              /*hidden=*/64);
    ec::Rng rng(48);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 8, 32}, rng);
    expectPlannerMatchesLegacy(g, {x});
}

TEST(MemPlanDifferentialTest, GruClassifierDeferredCommit)
{
    auto g = em::buildGruClassifier(/*features=*/16, /*seq_len=*/10,
                                    /*hidden=*/32, /*classes=*/4);
    ec::Rng rng(49);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 10, 16}, rng);
    expectPlannerMatchesLegacy(g, {x});
}

TEST(MemPlanDifferentialTest, CifarNetInt8)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(50);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 32, 32}, rng);
    std::vector<ec::Tensor> calib = {x};
    auto [q, rewrites] = eg::quantizeInt8(g, &calib);
    ASSERT_GT(rewrites, 0);
    expectPlannerMatchesLegacy(q, {x});
}

TEST(MemPlanDifferentialTest, MobileNetV1Int8)
{
    auto g = em::buildMobileNetV1(/*classes=*/10, /*image=*/64);
    ec::Rng rng(51);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 64, 64}, rng);
    std::vector<ec::Tensor> calib = {x};
    auto [q, rewrites] = eg::quantizeInt8(g, &calib);
    ASSERT_GT(rewrites, 0);
    expectPlannerMatchesLegacy(q, {x});
}

TEST(MemPlanDifferentialTest, CifarNetF16)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(52);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 32, 32}, rng);
    auto h = eg::convertToF16(g).graph;
    expectPlannerMatchesLegacy(h, {x});
}

TEST(MemPlanDifferentialTest, FusedConvBnActF32)
{
    auto g = em::buildMobileNetV1(/*classes=*/10, /*image=*/64);
    ec::Rng rng(53);
    g.materializeParams(rng);
    auto fused = eg::fuseConvBnAct(g).graph;
    auto x = ec::Tensor::randomNormal({1, 3, 64, 64}, rng);
    expectPlannerMatchesLegacy(fused, {x});
}

TEST(MemPlanDifferentialTest, CalibrationRangesIdenticalBothPaths)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(54);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 32, 32}, rng);

    eg::Interpreter legacy(g);
    legacy.setUseMemoryPlan(false);
    const auto ref = legacy.calibrate({x});

    eg::Interpreter planned(g);
    planned.setUseMemoryPlan(true);
    const auto got = planned.calibrate({x});

    ASSERT_EQ(ref.size(), got.size());
    for (std::size_t i = 0; i < ref.size(); ++i) {
        EXPECT_DOUBLE_EQ(ref[i].first, got[i].first) << "node " << i;
        EXPECT_DOUBLE_EQ(ref[i].second, got[i].second) << "node " << i;
    }
}

// ---- Plan invariants on the full-size zoo (deferred graphs). ----

class MemPlanZooInvariants
    : public ::testing::TestWithParam<em::ModelId>
{
};

TEST_P(MemPlanZooInvariants, PlanIsConsistent)
{
    expectPlanInvariants(em::buildModel(GetParam()));
}

TEST_P(MemPlanZooInvariants, ArenaNeverExceedsRefcountPeak)
{
    // The headline claim of the planner: its arena fits inside what
    // the refcount executor keeps resident at peak.
    const auto g = em::buildModel(GetParam());
    const auto plan = eg::planMemory(g, /*force_f32=*/false);
    EXPECT_LE(plan.arenaBytes,
              plan.refcountPeakBytes + eg::kArenaAlign * g.numNodes())
        << g.name();
    EXPECT_LT(plan.arenaBytes, plan.sumAllocBytes) << g.name();
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, MemPlanZooInvariants,
    ::testing::ValuesIn(em::allModels()),
    [](const ::testing::TestParamInfo<em::ModelId>& pi) {
        std::string n = em::modelInfo(pi.param).name + "_" +
            em::modelInfo(pi.param).inputSize;
        for (auto& c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });

// ---- Plan invariants on randomized DAGs. ----

TEST(MemPlanRandomDagTest, InvariantsHoldOnRandomizedTopologies)
{
    // Random same-shape DAGs of elementwise ops: every node picks one
    // or two uniformly random predecessors, giving skip connections,
    // fan-out, diamond shapes, and long in-place chains — the
    // placement stress the fixed zoo topologies don't provide.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        ec::Rng rng(seed);
        eg::Graph g("random_dag_" + std::to_string(seed));
        const std::int64_t c = 2 + static_cast<std::int64_t>(
            rng.uniform(0.0, 3.0));
        std::vector<eg::NodeId> ids;
        ids.push_back(g.addInput({1, c, 8, 8}));
        const int n_nodes = 12 + static_cast<int>(
            rng.uniform(0.0, 20.0));
        for (int i = 0; i < n_nodes; ++i) {
            const auto pick = [&] {
                return ids[static_cast<std::size_t>(rng.uniform(
                    0.0, static_cast<double>(ids.size()) - 1e-9))];
            };
            const double kind = rng.uniform(0.0, 1.0);
            if (kind < 0.4) {
                ids.push_back(g.addActivation(
                    pick(), kind < 0.2 ? eg::ActKind::kRelu
                                       : eg::ActKind::kSigmoid));
            } else if (kind < 0.7) {
                ids.push_back(g.addAdd(pick(), pick()));
            } else {
                ids.push_back(g.addBatchNorm(pick()));
            }
        }
        g.markOutput(ids.back());
        expectPlanInvariants(g);

        // And the executed path agrees with the plan's replay.
        ec::Rng prng(seed + 1000);
        g.materializeParams(prng);
        auto x = ec::Tensor::randomNormal({1, c, 8, 8}, prng);
        expectPlannerMatchesLegacy(g, {x});
    }
}

// ---- Accounting and the runtime toggle. ----

TEST(MemPlanStatsTest, RefcountReplayMatchesLegacyRunExactly)
{
    auto g = em::buildMobileNetV2(/*classes=*/10, /*image=*/64);
    ec::Rng rng(61);
    g.materializeParams(rng);
    const auto plan = eg::planMemory(g, /*force_f32=*/false);

    eg::Interpreter interp(g);
    interp.setUseMemoryPlan(false);
    auto x = ec::Tensor::randomNormal({1, 3, 64, 64}, rng);
    interp.run({x});
    EXPECT_EQ(interp.lastStats().peakActivationBytes,
              plan.refcountPeakBytes);
}

TEST(MemPlanStatsTest, PlanIsCachedPerMode)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(62);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    const auto* native = &interp.memoryPlan(/*force_f32=*/false);
    const auto* f32 = &interp.memoryPlan(/*force_f32=*/true);
    EXPECT_EQ(native, &interp.memoryPlan(false));
    EXPECT_EQ(f32, &interp.memoryPlan(true));
}

TEST(MemPlanStatsTest, ToggleFallsBackToRefcountPath)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(63);
    g.materializeParams(rng);
    auto x = ec::Tensor::randomNormal({1, 3, 32, 32}, rng);
    eg::Interpreter interp(g);
    // Default follows EDGEBENCH_MEMPLAN (on unless the env disables
    // it) — assert only the explicit toggle so the test passes under
    // either environment.
    interp.setUseMemoryPlan(false);
    interp.run({x});
    EXPECT_FALSE(interp.lastStats().usedMemoryPlan);
    interp.setUseMemoryPlan(true);
    interp.run({x});
    EXPECT_TRUE(interp.lastStats().usedMemoryPlan);
    EXPECT_GT(interp.lastStats().arenaBytes, 0);
}
