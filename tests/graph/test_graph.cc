/**
 * @file
 * Unit tests for the Graph IR: builders, shape inference, stats.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/graph/graph.hh"

namespace eg = edgebench::graph;
namespace ec = edgebench::core;
using edgebench::InvalidArgumentError;

TEST(GraphBuildTest, ConvShapeInference)
{
    eg::Graph g("t");
    auto in = g.addInput({1, 3, 224, 224});
    auto c = g.addConv2d(in, 64, 7, 7, 2, 3);
    EXPECT_EQ(g.node(c).outShape, (ec::Shape{1, 64, 112, 112}));
    EXPECT_EQ(g.node(c).paramShapes[0], (ec::Shape{64, 3, 7, 7}));
    EXPECT_EQ(g.node(c).paramShapes[1], (ec::Shape{64}));
}

TEST(GraphBuildTest, ConvWithoutBiasHasSingleParam)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, 1, 1, 1, 1, /*bias=*/false);
    EXPECT_EQ(g.node(c).paramShapes.size(), 1u);
}

TEST(GraphBuildTest, RectangularConvShapes)
{
    eg::Graph g;
    auto in = g.addInput({1, 16, 17, 17});
    auto c = g.addConv2dRect(in, 32, 1, 7, 1, 1, 0, 3);
    EXPECT_EQ(g.node(c).outShape, (ec::Shape{1, 32, 17, 17}));
    EXPECT_EQ(g.node(c).paramShapes[0], (ec::Shape{32, 16, 1, 7}));
}

TEST(GraphBuildTest, DenseRequiresRank2)
{
    eg::Graph g;
    auto in = g.addInput({1, 8, 4, 4});
    EXPECT_THROW(g.addDense(in, 10), InvalidArgumentError);
    auto flat = g.addFlatten(in);
    auto fc = g.addDense(flat, 10);
    EXPECT_EQ(g.node(fc).outShape, (ec::Shape{1, 10}));
}

TEST(GraphBuildTest, AddRequiresSameShape)
{
    eg::Graph g;
    auto a = g.addInput({1, 3, 4, 4});
    auto b = g.addInput({1, 4, 4, 4});
    EXPECT_THROW(g.addAdd(a, b), InvalidArgumentError);
}

TEST(GraphBuildTest, ConcatSumsChannels)
{
    eg::Graph g;
    auto a = g.addInput({1, 3, 4, 4});
    auto b = g.addInput({1, 5, 4, 4});
    auto c = g.addConcat({a, b});
    EXPECT_EQ(g.node(c).outShape, (ec::Shape{1, 8, 4, 4}));
}

TEST(GraphBuildTest, ConcatLastValidatesLeadingDims)
{
    eg::Graph g;
    auto a = g.addInput({1, 6});
    auto b = g.addInput({1, 4});
    auto c = g.addConcatLast({a, b});
    EXPECT_EQ(g.node(c).outShape, (ec::Shape{1, 10}));
    auto d = g.addInput({2, 4});
    EXPECT_THROW(g.addConcatLast({a, d}), InvalidArgumentError);
}

TEST(GraphBuildTest, ReshapePreservesNumel)
{
    eg::Graph g;
    auto in = g.addInput({1, 12});
    auto r = g.addReshape(in, {1, 3, 4});
    EXPECT_EQ(g.node(r).outShape, (ec::Shape{1, 3, 4}));
    EXPECT_THROW(g.addReshape(in, {1, 5}), InvalidArgumentError);
}

TEST(GraphBuildTest, YoloDetectValidatesChannels)
{
    eg::Graph g;
    auto in = g.addInput({1, 425, 13, 13});
    auto y = g.addYoloDetect(in, 80, 5);
    EXPECT_EQ(g.node(y).outShape, (ec::Shape{1, 425, 13, 13}));
    auto bad = g.addInput({1, 424, 13, 13});
    EXPECT_THROW(g.addYoloDetect(bad, 80, 5), InvalidArgumentError);
}

TEST(GraphBuildTest, DetectPostprocessValidatesLastDim)
{
    eg::Graph g;
    auto in = g.addInput({1, 100, 95});
    auto d = g.addDetectPostprocess(in, 91);
    EXPECT_EQ(g.node(d).outShape[2], 6);
    auto bad = g.addInput({1, 100, 90});
    EXPECT_THROW(g.addDetectPostprocess(bad, 91),
                 InvalidArgumentError);
}

TEST(GraphStatsTest, MacsAndParamsAggregate)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, 1, 1); // macs = 64*4*27 = 6912
    auto f = g.addFlatten(c);
    auto fc = g.addDense(f, 10); // macs = 256*10 = 2560
    g.markOutput(fc);
    const auto st = g.stats();
    EXPECT_EQ(st.macs, 6912 + 2560);
    // conv: 4*3*9 + 4 = 112; dense: 256*10 + 10 = 2570.
    EXPECT_EQ(st.params, 112 + 2570);
    EXPECT_GT(st.flopPerParam, 0.0);
}

TEST(GraphStatsTest, BatchNormCountsOneMacPerElement)
{
    eg::Graph g;
    auto in = g.addInput({1, 4, 8, 8});
    auto bn = g.addBatchNorm(in);
    EXPECT_EQ(g.node(bn).macs(), 4 * 64);
    EXPECT_EQ(g.node(bn).paramElems(), 16);
}

TEST(GraphStatsTest, DtypeScalesByteCosts)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, 1, 1);
    auto& n = g.node(c);
    const double f32_bytes = n.paramBytes();
    n.dtype = ec::DType::kI8;
    EXPECT_DOUBLE_EQ(n.paramBytes(), f32_bytes / 4.0);
}

TEST(GraphTest, ConsumerCountsMatchFanOut)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto a = g.addConv2d(in, 3, 1, 1);
    auto b = g.addConv2d(in, 3, 1, 1);
    auto sum = g.addAdd(a, b);
    g.markOutput(sum);
    const auto counts = g.consumerCounts();
    EXPECT_EQ(counts[static_cast<std::size_t>(in)], 2);
    EXPECT_EQ(counts[static_cast<std::size_t>(a)], 1);
    EXPECT_EQ(counts[static_cast<std::size_t>(sum)], 0);
}

TEST(GraphTest, MaterializeAllocatesDeclaredShapes)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, 1, 1);
    auto bn = g.addBatchNorm(c);
    g.markOutput(bn);
    EXPECT_FALSE(g.materialized());
    ec::Rng rng(1);
    g.materializeParams(rng);
    EXPECT_TRUE(g.materialized());
    EXPECT_EQ(g.node(c).params.size(), 2u);
    EXPECT_EQ(g.node(c).params[0].shape(), (ec::Shape{4, 3, 3, 3}));
    EXPECT_EQ(g.node(bn).params.size(), 4u);
    g.dropParams();
    EXPECT_FALSE(g.materialized());
    EXPECT_TRUE(g.node(c).params.empty());
}

TEST(GraphTest, InputDescriptionDerivedFromShape)
{
    eg::Graph g;
    g.addInput({1, 3, 224, 224});
    EXPECT_EQ(g.inputDescription(), "224x224");
    eg::Graph g3;
    g3.addInput({1, 3, 12, 112, 112});
    EXPECT_EQ(g3.inputDescription(), "12x112x112");
}

TEST(GraphTest, NodeNamesAutoGenerated)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, 1, 1);
    EXPECT_EQ(g.node(c).name, "conv2d_1");
}
