/**
 * @file
 * Tests for the static model-graph verifier (verify.hh).
 *
 * Three layers:
 *  - zoo-clean: every zoo model (plus the recurrent and mobile
 *    extension builders) verifies with zero errors in fp32 and int8
 *    modes, deferred and materialized+calibrated;
 *  - negative fixtures: for each of the six passes, at least one
 *    deliberately malformed graph (or corrupted memory plan) that the
 *    pass must flag with an error-severity diagnostic;
 *  - wiring: the Interpreter runs the verifier at construction by
 *    default, EDGEBENCH_VERIFY=off bypasses it, and EB_CHECK failures
 *    inside interpreter/memplan carry the shared "node N (op 'name')"
 *    diagnostic id.
 */

#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/core/tensor.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/memplan.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/graph/verify.hh"
#include "edgebench/models/zoo.hh"

namespace ec = edgebench::core;
namespace eg = edgebench::graph;
namespace em = edgebench::models;

namespace
{

/** Count error diagnostics emitted by pass @p pass. */
std::int64_t
errorsFromPass(const eg::VerifyReport& report, const std::string& pass)
{
    std::int64_t n = 0;
    for (const auto& d : report.diagnostics)
        if (d.pass == pass && d.severity == eg::Severity::kError)
            ++n;
    return n;
}

/** Dump every diagnostic (attached to assertion failures). */
std::string
dump(const eg::VerifyReport& report)
{
    std::string out;
    for (const auto& d : report.diagnostics)
        out += d.format() + "\n";
    return out;
}

/** A minimal valid conv chain: input -> conv -> relu -> output. */
eg::Graph
tinyConvGraph()
{
    eg::Graph g("tiny");
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, /*stride=*/1, /*pad=*/1);
    auto r = g.addActivation(c, eg::ActKind::kRelu);
    g.markOutput(r);
    return g;
}

} // namespace

// ---------------------------------------------------------------------
// Zoo-clean: the verifier must pass the entire model zoo.
// ---------------------------------------------------------------------

class VerifyZooClean : public ::testing::TestWithParam<em::ModelId>
{};

TEST_P(VerifyZooClean, Fp32DeferredHasNoDiagnostics)
{
    const auto g = em::buildModel(GetParam());
    const auto report = eg::verifyGraph(g);
    EXPECT_EQ(report.errors(), 0) << dump(report);
    EXPECT_EQ(report.warnings(), 0) << dump(report);
}

TEST_P(VerifyZooClean, Int8DeferredHasNoErrors)
{
    const auto g = em::buildModel(GetParam());
    const auto q = eg::quantizeInt8(g);
    const auto report = eg::verifyGraph(q.graph);
    EXPECT_EQ(report.errors(), 0) << dump(report);
}

TEST_P(VerifyZooClean, FusedFp32HasNoErrors)
{
    const auto g = em::buildModel(GetParam());
    const auto f = eg::fuseConvBnAct(g);
    const auto report = eg::verifyGraph(f.graph);
    EXPECT_EQ(report.errors(), 0) << dump(report);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, VerifyZooClean, ::testing::ValuesIn(em::allModels()),
    [](const ::testing::TestParamInfo<em::ModelId>& info) {
        // Index suffix disambiguates models sharing a display name
        // (VGG-S at 32x32 and 224x224).
        std::string name = em::modelInfo(info.param).name;
        for (char& c : name)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return name + "_" + std::to_string(info.index);
    });

TEST(VerifyExtensions, RecurrentAndMobileModelsAreClean)
{
    std::vector<eg::Graph> graphs = em::buildRecurrentExtensions();
    graphs.push_back(em::buildSqueezeNet());
    graphs.push_back(em::buildShuffleNet());
    graphs.push_back(em::buildDenseNet121());
    for (const auto& g : graphs) {
        const auto report = eg::verifyGraph(g);
        EXPECT_EQ(report.errors(), 0) << g.name() << ":\n"
                                      << dump(report);
    }
}

TEST(VerifyExtensions, CalibratedInt8GraphIsClean)
{
    // The strongest int8 fixture: materialized weights, fused chains,
    // real calibration-derived activation scales. Every quant-pass
    // invariant (bias contract, requant representability, symmetric
    // weights) must hold on the graph the interpreter actually runs.
    auto g = em::buildModel(em::ModelId::kCifarNet);
    ec::Rng rng(7);
    g.materializeParams(rng);
    const auto fused = eg::fuseConvBnAct(g);
    ec::Rng in_rng(11);
    std::vector<ec::Tensor> calib;
    calib.push_back(ec::Tensor::randomNormal({1, 3, 32, 32}, in_rng));
    const auto q = eg::quantizeInt8(fused.graph, &calib);
    const auto report = eg::verifyGraph(q.graph);
    EXPECT_EQ(report.errors(), 0) << dump(report);
}

// ---------------------------------------------------------------------
// Pass registry.
// ---------------------------------------------------------------------

TEST(VerifierRegistry, HasTheSixDocumentedPasses)
{
    const auto& passes = eg::Verifier::passes();
    ASSERT_EQ(passes.size(), 6u);
    const std::vector<std::string> expect{"wellformed", "shapes",
                                          "quant",      "memplan",
                                          "parallel",   "inplace"};
    for (std::size_t i = 0; i < expect.size(); ++i)
        EXPECT_EQ(passes[i].name, expect[i]);
}

TEST(VerifierRegistry, PassesAreIndependentlyToggleable)
{
    // Corrupt a conv's declared output shape: both "shapes" and
    // "parallel" flag it. Disabling "shapes" must leave exactly the
    // "parallel" findings.
    auto g = tinyConvGraph();
    g.nodes()[1].outShape = {1, 4, 8, 9};

    eg::Verifier v;
    EXPECT_TRUE(v.enabled("shapes"));
    v.setEnabled("shapes", false);
    EXPECT_FALSE(v.enabled("shapes"));
    const auto report = v.run(g);
    EXPECT_EQ(errorsFromPass(report, "shapes"), 0) << dump(report);
    EXPECT_GE(errorsFromPass(report, "parallel"), 1) << dump(report);

    EXPECT_THROW(v.setEnabled("no_such_pass", true),
                 edgebench::InvalidArgumentError);
}

TEST(VerifierRegistry, DiagnosticFormatIsStable)
{
    auto g = tinyConvGraph();
    g.nodes()[1].outShape = {1, 4, 8, 9};
    const auto report = eg::verifyGraph(g);
    ASSERT_GT(report.errors(), 0);
    // The corruption is flagged on the conv itself; the downstream
    // relu also fails its (now-inconsistent) producer check.
    bool found = false;
    for (const auto& d : report.diagnostics) {
        if (d.severity != eg::Severity::kError || d.pass != "shapes" ||
            d.node != 1)
            continue;
        found = true;
        EXPECT_NE(d.format().find("error[shapes] node 1 (conv2d "),
                  std::string::npos)
            << d.format();
    }
    EXPECT_TRUE(found) << dump(report);
}

// ---------------------------------------------------------------------
// Negative fixtures, one (or more) per pass.
// ---------------------------------------------------------------------

TEST(VerifyNegative, ShapesFlagsCorruptedOutputShape)
{
    auto g = tinyConvGraph();
    g.nodes()[1].outShape = {1, 4, 4, 4}; // conv really yields 8x8
    const auto report = eg::verifyGraph(g);
    EXPECT_GE(errorsFromPass(report, "shapes"), 1) << dump(report);
}

TEST(VerifyNegative, ShapesFlagsWrongBiasShape)
{
    auto g = tinyConvGraph();
    g.nodes()[1].paramShapes[1] = {5}; // conv has outC == 4
    const auto report = eg::verifyGraph(g);
    EXPECT_GE(errorsFromPass(report, "shapes"), 1) << dump(report);
}

TEST(VerifyNegative, ShapesFlagsAddOperandMismatch)
{
    eg::Graph g("bad_add");
    auto a = g.addInput({1, 8}, "a");
    auto b = g.addInput({1, 8}, "b");
    auto s = g.addAdd(a, b);
    g.markOutput(s);
    g.nodes()[1].outShape = {1, 9}; // operand shapes now differ
    const auto report = eg::verifyGraph(g);
    EXPECT_GE(errorsFromPass(report, "shapes"), 1) << dump(report);
}

TEST(VerifyNegative, QuantFlagsZeroScale)
{
    auto g = tinyConvGraph();
    auto& relu = g.nodes()[2];
    relu.dtype = ec::DType::kI8;
    relu.outQuant = ec::QuantParams{0.0, 0};
    const auto report = eg::verifyGraph(g);
    EXPECT_GE(errorsFromPass(report, "quant"), 1) << dump(report);
}

TEST(VerifyNegative, QuantFlagsOutOfRangeZeroPoint)
{
    auto g = tinyConvGraph();
    auto& relu = g.nodes()[2];
    relu.dtype = ec::DType::kI8;
    relu.outQuant = ec::QuantParams{0.5, 300};
    const auto report = eg::verifyGraph(g);
    EXPECT_GE(errorsFromPass(report, "quant"), 1) << dump(report);
}

TEST(VerifyNegative, QuantFlagsBrokenInt8BiasContract)
{
    auto g = tinyConvGraph();
    auto& conv = g.nodes()[1];
    conv.dtype = ec::DType::kI8;
    conv.outQuant = ec::QuantParams{0.1, 0};
    conv.paramShapes[1] = {4, 1}; // contract is {outC} == {4}
    const auto report = eg::verifyGraph(g);
    EXPECT_GE(errorsFromPass(report, "quant"), 1) << dump(report);
}

TEST(VerifyNegative, WellformedFlagsDanglingEdge)
{
    auto g = tinyConvGraph();
    g.nodes()[2].inputs[0] = 99;
    const auto report = eg::verifyGraph(g);
    EXPECT_GE(errorsFromPass(report, "wellformed"), 1) << dump(report);
}

TEST(VerifyNegative, WellformedFlagsInputlessNonInputNode)
{
    // A non-input node with an empty input list must produce a
    // wellformed diagnostic, and the shapes pass must skip it rather
    // than dereference a null producer.
    auto g = tinyConvGraph();
    g.nodes()[2].inputs.clear();
    const auto report = eg::verifyGraph(g);
    EXPECT_GE(errorsFromPass(report, "wellformed"), 1) << dump(report);
}

TEST(VerifyNegative, WellformedSurvivesOutOfRangeNodeId)
{
    // An id past the append positions must be reported, not used to
    // index the liveness/consumer vectors out of bounds.
    auto g = tinyConvGraph();
    g.nodes()[2].id = 7;
    const auto report = eg::verifyGraph(g);
    EXPECT_GE(errorsFromPass(report, "wellformed"), 1) << dump(report);
}

TEST(VerifyNegative, WellformedFlagsMissingOutputs)
{
    eg::Graph g("no_out");
    auto in = g.addInput({1, 4});
    g.addActivation(in, eg::ActKind::kRelu);
    const auto report = eg::verifyGraph(g);
    EXPECT_GE(errorsFromPass(report, "wellformed"), 1) << dump(report);
}

TEST(VerifyNegative, WellformedWarnsOnDeadTensor)
{
    eg::Graph g("dead");
    auto in = g.addInput({1, 4});
    auto live = g.addActivation(in, eg::ActKind::kRelu);
    g.addActivation(in, eg::ActKind::kTanh, "dead_branch");
    g.markOutput(live);
    const auto report = eg::verifyGraph(g);
    EXPECT_EQ(report.errors(), 0) << dump(report);
    EXPECT_GE(report.warnings(), 1) << dump(report);
}

TEST(VerifyNegative, MemplanAuditFlagsAliasedLiveBlocks)
{
    // conv1's block is live until conv2 reads it, so placing conv2 at
    // conv1's offset aliases two simultaneously-live blocks.
    eg::Graph g("alias");
    auto in = g.addInput({1, 3, 8, 8});
    auto c1 = g.addConv2d(in, 4, 3, 3, 1, 1);
    auto c2 = g.addConv2d(c1, 4, 3, 3, 1, 1);
    g.markOutput(c2);
    auto plan = eg::planMemory(g, /*force_f32=*/false);
    ASSERT_NE(plan.slots[1].offset, plan.slots[2].offset);
    plan.slots[2].offset = plan.slots[1].offset;

    eg::VerifyReport report;
    eg::auditMemoryPlan(g, plan, /*force_f32=*/false, report);
    EXPECT_GE(errorsFromPass(report, "memplan"), 1) << dump(report);
}

TEST(VerifyNegative, MemplanAuditFlagsBlockOutsideArena)
{
    auto g = tinyConvGraph();
    auto plan = eg::planMemory(g, /*force_f32=*/false);
    plan.slots[0].offset = plan.arenaBytes + 64;
    eg::VerifyReport report;
    eg::auditMemoryPlan(g, plan, /*force_f32=*/false, report);
    EXPECT_GE(errorsFromPass(report, "memplan"), 1) << dump(report);
}

TEST(VerifyNegative, MemplanAuditFlagsMisalignedOffset)
{
    auto g = tinyConvGraph();
    auto plan = eg::planMemory(g, /*force_f32=*/false);
    plan.slots[0].offset += 4; // breaks the 64-byte alignment
    eg::VerifyReport report;
    eg::auditMemoryPlan(g, plan, /*force_f32=*/false, report);
    EXPECT_GE(errorsFromPass(report, "memplan"), 1) << dump(report);
}

TEST(VerifyNegative, ParallelFlagsUncoveredOutputElements)
{
    // Shrink the conv's declared output: the kernel's partitioning
    // writes more elements than the buffer holds (an OOB parallel
    // write). Caught by "parallel" independently of "shapes".
    auto g = tinyConvGraph();
    g.nodes()[1].outShape = {1, 4, 8, 7};
    eg::Verifier v;
    v.setEnabled("shapes", false);
    const auto report = v.run(g);
    EXPECT_GE(errorsFromPass(report, "parallel"), 1) << dump(report);
}

TEST(VerifyNegative, InplaceAuditFlagsIllegalReuse)
{
    auto g = tinyConvGraph();
    auto plan = eg::planMemory(g, /*force_f32=*/false);
    // The relu legally reuses the conv's block. Repoint its in-place
    // source at the graph input (not even one of its inputs).
    ASSERT_EQ(plan.slots[2].inplaceSrc, 1);
    plan.slots[2].inplaceSrc = 0;
    eg::VerifyReport report;
    eg::auditInplaceReuse(g, plan, /*force_f32=*/false, report);
    EXPECT_GE(errorsFromPass(report, "inplace"), 1) << dump(report);
}

TEST(VerifyNegative, InplaceAuditFlagsMultiConsumerDonor)
{
    // conv feeds both the relu and an add: donating its block to the
    // relu would corrupt the add's other operand.
    eg::Graph g("fanout");
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, 1, 1);
    auto r = g.addActivation(c, eg::ActKind::kRelu);
    auto s = g.addAdd(c, r);
    g.markOutput(s);
    auto plan = eg::planMemory(g, /*force_f32=*/false);
    ASSERT_EQ(plan.slots[2].inplaceSrc, -1); // planner refuses it
    plan.slots[2].inplaceSrc = 1;            // force the illegal reuse
    eg::VerifyReport report;
    eg::auditInplaceReuse(g, plan, /*force_f32=*/false, report);
    EXPECT_GE(errorsFromPass(report, "inplace"), 1) << dump(report);
}

TEST(VerifyNegative, InplaceAuditFlagsRecurrentReuse)
{
    eg::Graph g("rnn_inplace");
    auto in = g.addInput({1, 4, 8});
    auto l = g.addLstm(in, 8);
    g.markOutput(l);
    auto plan = eg::planMemory(g, /*force_f32=*/false);
    ASSERT_EQ(plan.slots[1].inplaceSrc, -1);
    plan.slots[1].inplaceSrc = 0;
    plan.slots[1].root = 0;
    eg::VerifyReport report;
    eg::auditInplaceReuse(g, plan, /*force_f32=*/false, report);
    EXPECT_GE(errorsFromPass(report, "inplace"), 1) << dump(report);
}

// ---------------------------------------------------------------------
// Interpreter wiring + diagnostic-id format.
// ---------------------------------------------------------------------

TEST(VerifyWiring, InterpreterRejectsCorruptGraphAtConstruction)
{
    auto g = tinyConvGraph();
    g.nodes()[1].outShape = {1, 4, 4, 4};
    ec::Rng rng(1);
    g.materializeParams(rng);
    try {
        eg::Interpreter interp(g);
        FAIL() << "construction must throw";
    } catch (const edgebench::InvalidArgumentError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("failed verification"), std::string::npos)
            << msg;
        EXPECT_NE(msg.find("EDGEBENCH_VERIFY=off"), std::string::npos)
            << msg;
    }
}

TEST(VerifyWiring, EnvToggleBypassesVerification)
{
    auto g = tinyConvGraph();
    g.nodes()[2].outShape = {1, 4, 8, 9}; // relu shape corrupted
    ec::Rng rng(1);
    g.materializeParams(rng);
    setenv("EDGEBENCH_VERIFY", "off", 1);
    EXPECT_NO_THROW(eg::Interpreter interp(g));
    unsetenv("EDGEBENCH_VERIFY");
    EXPECT_THROW(eg::Interpreter interp(g),
                 edgebench::InvalidArgumentError);
}

TEST(VerifyWiring, VerifyEnvEnabledParsesDisableSpellings)
{
    unsetenv("EDGEBENCH_VERIFY");
    EXPECT_TRUE(eg::verifyEnvEnabled());
    for (const char* off : {"0", "off", "OFF", "false", "False"}) {
        setenv("EDGEBENCH_VERIFY", off, 1);
        EXPECT_FALSE(eg::verifyEnvEnabled()) << off;
    }
    setenv("EDGEBENCH_VERIFY", "on", 1);
    EXPECT_TRUE(eg::verifyEnvEnabled());
    unsetenv("EDGEBENCH_VERIFY");
}

TEST(VerifyWiring, InterpreterCheckFailuresNameTheNode)
{
    // Feeding a wrong-shaped input must identify the input node with
    // the shared "node N (op 'name')" diagnostic id.
    auto g = tinyConvGraph();
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    try {
        interp.run({ec::Tensor::full({1, 3, 4, 4}, 0.0f)});
        FAIL() << "run must throw";
    } catch (const edgebench::InvalidArgumentError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("node 0 (input 'input')"),
                  std::string::npos)
            << msg;
    }
}

TEST(VerifyWiring, MemplanCheckFailuresNameTheNode)
{
    auto g = tinyConvGraph();
    g.nodes()[2].id = 7; // break the append-order invariant
    try {
        eg::planMemory(g, /*force_f32=*/false);
        FAIL() << "planMemory must throw";
    } catch (const edgebench::InvalidArgumentError& e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("node 7 (activation "), std::string::npos)
            << msg;
    }
}

TEST(VerifyWiring, NodeDescFormat)
{
    const auto g = tinyConvGraph();
    const std::string d = eg::nodeDesc(g.node(1));
    EXPECT_EQ(d.rfind("node 1 (conv2d '", 0), 0u) << d;
    EXPECT_EQ(d.back(), ')');
}

TEST(VerifyWiring, VerifyOrThrowIsANoOpOnCleanGraphs)
{
    const auto g = tinyConvGraph();
    EXPECT_NO_THROW(eg::verifyOrThrow(g, "test"));
    const auto report = eg::verifyGraph(g);
    EXPECT_TRUE(report.ok());
    EXPECT_EQ(report.summary(), "0 errors, 0 warnings, 0 info");
}
