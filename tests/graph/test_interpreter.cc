/**
 * @file
 * Tests for the graph interpreter: numeric correctness against
 * hand-built expectations, memory accounting, and detection heads.
 */

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/kernels.hh"
#include "edgebench/graph/graph.hh"
#include "edgebench/graph/interpreter.hh"

namespace eg = edgebench::graph;
namespace ec = edgebench::core;

namespace
{

ec::Tensor
randomInput(const ec::Shape& s, std::uint64_t seed)
{
    ec::Rng rng(seed);
    return ec::Tensor::randomNormal(s, rng);
}

} // namespace

TEST(InterpreterTest, RequiresMaterializedGraph)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 4, 4});
    auto c = g.addConv2d(in, 2, 1, 1);
    g.markOutput(c);
    EXPECT_THROW(eg::Interpreter interp(g),
                 edgebench::InvalidArgumentError);
}

TEST(InterpreterTest, LinearChainMatchesDirectKernelCalls)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, 1, 1);
    auto r = g.addActivation(c, eg::ActKind::kRelu);
    g.markOutput(r);
    ec::Rng rng(7);
    g.materializeParams(rng);

    auto x = randomInput({1, 3, 8, 8}, 9);
    eg::Interpreter interp(g);
    auto out = interp.run({x});
    ASSERT_EQ(out.size(), 1u);

    const auto& conv_node = g.node(c);
    auto expect = ec::relu(ec::conv2d(x, conv_node.params[0],
                                      conv_node.params[1],
                                      conv_node.attrs.conv2d));
    EXPECT_LT(out[0].maxAbsDiff(expect), 1e-5);
}

TEST(InterpreterTest, ResidualTopologyExecutes)
{
    eg::Graph g;
    auto in = g.addInput({1, 4, 6, 6});
    auto a = g.addConv2d(in, 4, 3, 3, 1, 1, 1, 1, false);
    auto bn = g.addBatchNorm(a);
    auto r = g.addActivation(bn, eg::ActKind::kRelu);
    auto sum = g.addAdd(r, in);
    g.markOutput(sum);
    ec::Rng rng(3);
    g.materializeParams(rng);

    auto x = randomInput({1, 4, 6, 6}, 4);
    eg::Interpreter interp(g);
    auto out = interp.run({x});
    // sum = relu(bn(conv(x))) + x; verify additivity on one element.
    auto partial = interp.lastStats();
    EXPECT_EQ(partial.nodesExecuted, g.numNodes());
    EXPECT_EQ(out[0].shape(), (ec::Shape{1, 4, 6, 6}));
}

TEST(InterpreterTest, TracksPeakActivationMemory)
{
    eg::Graph g;
    auto in = g.addInput({1, 8, 16, 16}); // 8 KiB fp32
    auto c1 = g.addConv2d(in, 8, 3, 3, 1, 1);
    auto c2 = g.addConv2d(c1, 8, 3, 3, 1, 1);
    g.markOutput(c2);
    ec::Rng rng(5);
    g.materializeParams(rng);

    eg::Interpreter interp(g);
    interp.run({randomInput({1, 8, 16, 16}, 6)});
    const auto& st = interp.lastStats();
    const double one = 8 * 16 * 16 * 4.0;
    // At most two tensors are live at once (producer + consumer).
    EXPECT_GE(st.peakActivationBytes, 2 * one - 1);
    EXPECT_LT(st.peakActivationBytes, 3 * one);
}

TEST(InterpreterTest, InputShapeMismatchThrows)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 4, 4});
    g.markOutput(in);
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    EXPECT_THROW(interp.run({randomInput({1, 3, 5, 5}, 2)}),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(interp.run({}), edgebench::InvalidArgumentError);
}

TEST(InterpreterTest, MultipleOutputsReturnedInOrder)
{
    eg::Graph g;
    auto in = g.addInput({1, 2, 4, 4});
    auto a = g.addActivation(in, eg::ActKind::kRelu);
    auto b = g.addActivation(in, eg::ActKind::kSigmoid);
    g.markOutput(a);
    g.markOutput(b);
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    auto outs = interp.run({randomInput({1, 2, 4, 4}, 3)});
    ASSERT_EQ(outs.size(), 2u);
    // Sigmoid output lies in (0, 1).
    for (std::int64_t i = 0; i < outs[1].numel(); ++i) {
        ASSERT_GT(outs[1].at(i), 0.0f);
        ASSERT_LT(outs[1].at(i), 1.0f);
    }
}

TEST(InterpreterTest, CalibrationRecordsRanges)
{
    eg::Graph g;
    auto in = g.addInput({1, 2, 4, 4});
    auto r = g.addActivation(in, eg::ActKind::kRelu);
    g.markOutput(r);
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    auto ranges = interp.calibrate({randomInput({1, 2, 4, 4}, 8)});
    ASSERT_EQ(ranges.size(), static_cast<std::size_t>(g.numNodes()));
    // ReLU output range is non-negative.
    EXPECT_GE(ranges[static_cast<std::size_t>(r)].first, 0.0);
    EXPECT_GT(ranges[static_cast<std::size_t>(r)].second, 0.0);
    // Input range spans negative values.
    EXPECT_LT(ranges[static_cast<std::size_t>(in)].first, 0.0);
}

TEST(InterpreterTest, YoloDetectAppliesSigmoidSelectively)
{
    eg::Graph g;
    auto in = g.addInput({1, 7, 2, 2}); // 1 anchor, 2 classes: 5+2=7
    auto y = g.addYoloDetect(in, 2, 1);
    g.markOutput(y);
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);

    ec::Tensor x = ec::Tensor::full({1, 7, 2, 2}, 0.0f);
    auto out = interp.run({x})[0];
    // Channels 0,1 (xy), 4 (obj), 5,6 (classes): sigmoid(0) = 0.5;
    // channels 2,3 (wh): raw 0.
    EXPECT_FLOAT_EQ(out.at(0), 0.5f);              // x
    EXPECT_FLOAT_EQ(out.at(2 * 4), 0.0f);          // w raw
    EXPECT_FLOAT_EQ(out.at(4 * 4), 0.5f);          // objectness
    EXPECT_FLOAT_EQ(out.at(6 * 4), 0.5f);          // class 2
}

TEST(InterpreterTest, DetectPostprocessSuppressesOverlaps)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 5}); // 3 boxes, 1 class
    auto d = g.addDetectPostprocess(in, 1, 0.5, 0.4);
    g.markOutput(d);
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);

    // Boxes: two heavily overlapping, one disjoint, one below
    // threshold (score 0.1 on the disjoint slot is replaced by 0.9).
    ec::Tensor x({1, 3, 5},
                 {0, 0, 10, 10, 0.9f,     // keep (best)
                  1, 1, 10, 10, 0.8f,     // suppressed (IoU high)
                  20, 20, 30, 30, 0.7f}); // keep (disjoint)
    auto out = interp.run({x})[0];
    // Slot 0: best box.
    EXPECT_FLOAT_EQ(out.at(1), 0.9f);
    // Slot 1: the disjoint box, not the overlapped one.
    EXPECT_FLOAT_EQ(out.at(6 + 1), 0.7f);
    // Slot 2: empty.
    EXPECT_FLOAT_EQ(out.at(12 + 1), 0.0f);
}

TEST(InterpreterTest, DetectPostprocessKeepsDistinctClasses)
{
    eg::Graph g;
    auto in = g.addInput({1, 2, 6}); // 2 boxes, 2 classes
    auto d = g.addDetectPostprocess(in, 2, 0.5, 0.4);
    g.markOutput(d);
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    // Same box, different classes: NMS is per-class, both survive.
    ec::Tensor x({1, 2, 6},
                 {0, 0, 10, 10, 0.9f, 0.0f,
                  0, 0, 10, 10, 0.0f, 0.8f});
    auto out = interp.run({x})[0];
    EXPECT_FLOAT_EQ(out.at(1), 0.9f);
    EXPECT_FLOAT_EQ(out.at(0), 0.0f); // class id 0
    EXPECT_FLOAT_EQ(out.at(6 + 1), 0.8f);
    EXPECT_FLOAT_EQ(out.at(6 + 0), 1.0f); // class id 1
}

TEST(InterpreterTest, F16GraphTracksF32WithinHalfPrecision)
{
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, 1, 1);
    g.markOutput(c);
    ec::Rng rng(11);
    g.materializeParams(rng);

    eg::Interpreter interp(g);
    auto x = randomInput({1, 3, 8, 8}, 12);
    auto f32_out = interp.run({x})[0];

    for (auto& n : g.nodes())
        n.dtype = ec::DType::kF16;
    auto f16_out = interp.run({x})[0];
    EXPECT_EQ(f16_out.dtype(), ec::DType::kF16);
    EXPECT_LT(f32_out.maxAbsDiff(f16_out), 0.05);
}

TEST(InterpreterTest, DetectPostprocessHonorsOutputStride)
{
    // A detection head whose output rows carry an extra per-detection
    // field (stride 7, not the default 6). The writer must derive the
    // row pitch from outShape, not assume 6.
    eg::Graph g;
    auto in = g.addInput({1, 2, 5}); // 2 boxes, 1 class
    eg::Node n;
    n.kind = eg::OpKind::kDetectPostprocess;
    n.name = "detect_wide";
    n.inputs = {in};
    n.attrs.numClasses = 1;
    n.attrs.scoreThreshold = 0.5;
    n.attrs.iouThreshold = 0.4;
    n.outShape = {1, 2, 7};
    auto d = g.appendRaw(std::move(n));
    g.markOutput(d);
    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);

    // Two disjoint boxes above threshold: both kept, in score order.
    ec::Tensor x({1, 2, 5},
                 {0, 0, 10, 10, 0.9f,
                  20, 20, 30, 30, 0.7f});
    auto out = interp.run({x})[0];
    EXPECT_FLOAT_EQ(out.at(1), 0.9f);      // row 0 score
    EXPECT_FLOAT_EQ(out.at(7 + 1), 0.7f);  // row 1 starts at 7, not 6
    EXPECT_FLOAT_EQ(out.at(6), 0.0f);      // extra field untouched
    EXPECT_FLOAT_EQ(out.at(7 + 2), 20.0f); // row 1 box x1
}

TEST(InterpreterTest, YoloDetectRejectsMismatchedChannels)
{
    // 1 anchor x (5 + 2 classes) needs 7 channels; feed 8. The static
    // verifier rejects the graph at Interpreter construction, before
    // the decode could silently read the wrong planes; with the
    // verifier off, the kernel's own check still fails at run time.
    eg::Graph g;
    auto in = g.addInput({1, 8, 2, 2});
    eg::Node n;
    n.kind = eg::OpKind::kYoloDetect;
    n.name = "yolo_bad";
    n.inputs = {in};
    n.attrs.numClasses = 2;
    n.attrs.numAnchors = 1;
    n.outShape = {1, 8, 2, 2};
    auto y = g.appendRaw(std::move(n));
    g.markOutput(y);
    ec::Rng rng(1);
    g.materializeParams(rng);
    EXPECT_THROW(eg::Interpreter interp(g),
                 edgebench::InvalidArgumentError);

    setenv("EDGEBENCH_VERIFY", "off", 1);
    eg::Interpreter interp(g);
    unsetenv("EDGEBENCH_VERIFY");
    ec::Tensor x = ec::Tensor::full({1, 8, 2, 2}, 0.0f);
    EXPECT_THROW(interp.run({x}), edgebench::InvalidArgumentError);
}

TEST(InterpreterTest, OutputEmissionMovesInsteadOfDeepCopying)
{
    // Regression: the old emitter did `outputs.push_back(*slot)`,
    // deep-copying every output tensor even when emission exhausted
    // its refcount. On the refcount path the only permitted copy of
    // the whole run is the input's toF32() materialization.
    eg::Graph g;
    auto in = g.addInput({1, 4, 8, 8});
    auto r = g.addActivation(in, eg::ActKind::kRelu);
    g.markOutput(r);
    ec::Rng rng(71);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    interp.setUseMemoryPlan(false);
    const std::vector<ec::Tensor> inputs = {randomInput({1, 4, 8, 8},
                                                        72)};
    const auto copies_before = ec::Tensor::copyCount();
    auto out = interp.run(inputs);
    EXPECT_EQ(ec::Tensor::copyCount(), copies_before + 1);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].borrowed()); // escaped values own storage
}

TEST(InterpreterTest, PlannerOutputsEscapeTheArenaByCopy)
{
    // On the arena path the output lives in plan storage, so emission
    // must deep-copy it; the returned tensor must not alias the arena
    // (which is reused by the next run).
    eg::Graph g;
    auto in = g.addInput({1, 2, 4, 4});
    auto r = g.addActivation(in, eg::ActKind::kSigmoid);
    g.markOutput(r);
    ec::Rng rng(73);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    interp.setUseMemoryPlan(true);
    auto a = interp.run({randomInput({1, 2, 4, 4}, 74)})[0];
    ASSERT_FALSE(a.borrowed());
    auto first = a.data()[0];
    interp.run({randomInput({1, 2, 4, 4}, 75)});
    EXPECT_FLOAT_EQ(a.data()[0], first); // next run didn't clobber it
}

TEST(InterpreterTest, PeakBytesAreExactBeyondFloatPrecision)
{
    // A single activation over 2^24 bytes: the old double-based
    // accounting could not represent odd byte totals at this scale;
    // the int64 accounting must be exact to the byte.
    const std::int64_t n = (std::int64_t{1} << 22) + 3;
    eg::Graph g;
    auto in = g.addInput({1, n});
    auto r = g.addActivation(in, eg::ActKind::kRelu);
    g.markOutput(r);
    ec::Rng rng(76);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    interp.setUseMemoryPlan(false);
    interp.run({ec::Tensor::zeros({1, n})});
    // Input and result both live at the relu step, then the input is
    // released: peak is exactly two buffers.
    EXPECT_EQ(interp.lastStats().peakActivationBytes, 2 * n * 4);
}

TEST(InterpreterTest, AddWithDuplicateInputReleasesOncePerEdge)
{
    // Add(x, x): the producer feeds the same consumer twice. The
    // refcount must count edge occurrences (2), so the value survives
    // the first release and the run neither frees early nor leaks.
    eg::Graph g;
    auto in = g.addInput({1, 2, 2, 2});
    auto a = g.addAdd(in, in);
    auto r = g.addActivation(a, eg::ActKind::kRelu);
    g.markOutput(r);
    const auto counts = g.consumerCounts();
    EXPECT_EQ(counts[static_cast<std::size_t>(in)], 2);

    ec::Rng rng(1);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    auto x = randomInput({1, 2, 2, 2}, 31);
    auto out = interp.run({x})[0];
    auto xd = x.data();
    auto od = out.data();
    for (std::size_t i = 0; i < od.size(); ++i)
        EXPECT_FLOAT_EQ(od[i], std::max(0.0f, 2.0f * xd[i]));
    // Peak: input + add result + relu result all coexist briefly; at
    // minimum the duplicated input is accounted once, not twice.
    const double elem_bytes = 8 * sizeof(float);
    EXPECT_GE(interp.lastStats().peakActivationBytes, 2 * elem_bytes);
    EXPECT_LE(interp.lastStats().peakActivationBytes, 3 * elem_bytes);
}
