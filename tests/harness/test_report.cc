/**
 * @file
 * Tests for the table/figure emitters.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/harness/report.hh"

namespace ehar = edgebench::harness;

TEST(TableTest, RendersAlignedColumns)
{
    ehar::Table t({"Model", "Time (ms)"});
    t.addRow({"ResNet-18", "26.5"});
    t.addRow({"VGG16", "87.7"});
    std::ostringstream oss;
    t.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("| Model"), std::string::npos);
    EXPECT_NE(out.find("ResNet-18"), std::string::npos);
    EXPECT_NE(out.find("|----"), std::string::npos);
    EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, RowWidthMismatchThrows)
{
    ehar::Table t({"A", "B"});
    EXPECT_THROW(t.addRow({"only one"}),
                 edgebench::InvalidArgumentError);
}

TEST(TableTest, EmptyHeadersThrow)
{
    EXPECT_THROW(ehar::Table({}), edgebench::InvalidArgumentError);
}

TEST(TableTest, NumFormatsFixedPrecision)
{
    EXPECT_EQ(ehar::Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(ehar::Table::num(1.0, 0), "1");
}

TEST(FigureTest, PrintsSeriesWithValues)
{
    ehar::Figure f("fig2", "time per inference");
    f.addSeries("RPi3", {"ResNet-18", "VGG16"}, {870.0, 16485.0});
    std::ostringstream oss;
    f.print(oss);
    const std::string out = oss.str();
    EXPECT_NE(out.find("fig2"), std::string::npos);
    EXPECT_NE(out.find("series: RPi3"), std::string::npos);
    EXPECT_NE(out.find("870.000"), std::string::npos);
}

TEST(FigureTest, MismatchedSeriesThrows)
{
    ehar::Figure f("x", "y");
    EXPECT_THROW(f.addSeries("s", {"a"}, {1.0, 2.0}),
                 edgebench::InvalidArgumentError);
}

TEST(BannerTest, ContainsIdAndTitle)
{
    std::ostringstream oss;
    ehar::printBanner(oss, "fig7", "Nano TensorRT");
    EXPECT_NE(oss.str().find("== fig7: Nano TensorRT =="),
              std::string::npos);
}
