/**
 * @file
 * Tests for the experiment registry and the measured-loop protocol.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/harness/experiment.hh"

namespace ehar = edgebench::harness;
namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;
namespace ec = edgebench::core;

TEST(ExperimentRegistryTest, CoversEveryPaperTableAndFigure)
{
    // 5 tables (I, II, III, V, VI) + 14 figures.
    EXPECT_EQ(ehar::experimentRegistry().size(), 19u);
    for (const char* id :
         {"table1", "table2", "table3", "table5", "table6", "fig1",
          "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
          "fig9", "fig10", "fig11", "fig12", "fig13", "fig14"}) {
        EXPECT_NO_THROW(ehar::experiment(id)) << id;
        EXPECT_FALSE(ehar::experiment(id).benchTarget.empty());
    }
    EXPECT_THROW(ehar::experiment("fig99"),
                 edgebench::InvalidArgumentError);
}

TEST(ExperimentRegistryTest, BenchTargetsAreUnique)
{
    // Each figure/table maps to a concrete bench binary; fig1 shares
    // table1's binary by design.
    std::vector<std::string> targets;
    for (const auto& e : ehar::experimentRegistry())
        targets.push_back(e.benchTarget);
    std::sort(targets.begin(), targets.end());
    const auto dupes =
        std::unique(targets.begin(), targets.end()) - targets.begin();
    EXPECT_EQ(targets.size() - static_cast<std::size_t>(dupes), 1u)
        << "only fig1/table1 may share a bench target";
}

TEST(TimeLoopTest, StatsCenterOnModelLatency)
{
    auto d = ef::tryDeploy(ef::FrameworkId::kPyTorch,
                           em::buildModel(em::ModelId::kCifarNet),
                           eh::DeviceId::kXeon);
    ASSERT_TRUE(d.has_value());
    ef::InferenceSession s(std::move(d->model));
    const double base = s.run(1).perInferenceMs;

    ec::Rng rng(42);
    const auto stats = ehar::timeInferenceLoop(s, 500, rng, 0.02);
    EXPECT_EQ(stats.count, 500u);
    EXPECT_NEAR(stats.mean, base, base * 0.01);
    EXPECT_NEAR(stats.stddev, base * 0.02, base * 0.008);
    EXPECT_LT(stats.min, stats.median);
    EXPECT_LT(stats.median, stats.max);
}

TEST(TimeLoopTest, ZeroJitterIsExact)
{
    auto d = ef::tryDeploy(ef::FrameworkId::kPyTorch,
                           em::buildModel(em::ModelId::kCifarNet),
                           eh::DeviceId::kXeon);
    ASSERT_TRUE(d.has_value());
    ef::InferenceSession s(std::move(d->model));
    ec::Rng rng(1);
    const auto stats = ehar::timeInferenceLoop(s, 10, rng, 0.0);
    EXPECT_DOUBLE_EQ(stats.stddev, 0.0);
    EXPECT_DOUBLE_EQ(stats.mean, s.run(1).perInferenceMs);
}

TEST(TimeLoopTest, InvalidArgumentsThrow)
{
    auto d = ef::tryDeploy(ef::FrameworkId::kPyTorch,
                           em::buildModel(em::ModelId::kCifarNet),
                           eh::DeviceId::kXeon);
    ASSERT_TRUE(d.has_value());
    ef::InferenceSession s(std::move(d->model));
    ec::Rng rng(1);
    EXPECT_THROW(ehar::timeInferenceLoop(s, 0, rng),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(ehar::timeInferenceLoop(s, 10, rng, 0.9),
                 edgebench::InvalidArgumentError);
}
