/**
 * @file
 * Tests for summary statistics.
 */

#include <cmath>
#include <sstream>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/harness/stats.hh"

namespace ehar = edgebench::harness;

TEST(StatsTest, SingleSample)
{
    const auto s = ehar::Stats::of({5.0});
    EXPECT_EQ(s.count, 1u);
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 5.0);
    EXPECT_DOUBLE_EQ(s.stddev, 0.0);
    EXPECT_DOUBLE_EQ(s.min, 5.0);
    EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(StatsTest, KnownDistribution)
{
    const auto s = ehar::Stats::of({2.0, 4.0, 4.0, 4.0, 5.0, 5.0,
                                    7.0, 9.0});
    EXPECT_DOUBLE_EQ(s.mean, 5.0);
    EXPECT_DOUBLE_EQ(s.median, 4.5);
    EXPECT_DOUBLE_EQ(s.min, 2.0);
    EXPECT_DOUBLE_EQ(s.max, 9.0);
    // Sample stddev of this classic set is sqrt(32/7).
    EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(StatsTest, MedianOfOddCount)
{
    const auto s = ehar::Stats::of({3.0, 1.0, 2.0});
    EXPECT_DOUBLE_EQ(s.median, 2.0);
}

TEST(StatsTest, EmptyThrows)
{
    EXPECT_THROW(ehar::Stats::of({}),
                 edgebench::InvalidArgumentError);
}

TEST(GeomeanTest, MatchesClosedForm)
{
    EXPECT_DOUBLE_EQ(ehar::geomean({4.0, 1.0}), 2.0);
    EXPECT_NEAR(ehar::geomean({1.0, 10.0, 100.0}), 10.0, 1e-9);
}

TEST(GeomeanTest, RejectsNonPositive)
{
    EXPECT_THROW(ehar::geomean({1.0, 0.0}),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(ehar::geomean({}), edgebench::InvalidArgumentError);
}

TEST(HistogramTest, BucketsValuesCorrectly)
{
    ehar::Histogram h(0.0, 10.0, 5);
    for (double v : {0.5, 1.5, 2.5, 2.9, 9.9})
        h.add(v);
    EXPECT_EQ(h.total(), 5u);
    EXPECT_EQ(h.bucketCount(0), 2u); // [0,2)
    EXPECT_EQ(h.bucketCount(1), 2u); // [2,4)
    EXPECT_EQ(h.bucketCount(4), 1u); // [8,10)
    EXPECT_EQ(h.underflow(), 0u);
    EXPECT_EQ(h.overflow(), 0u);
}

TEST(HistogramTest, TracksOutOfRangeSeparately)
{
    ehar::Histogram h(0.0, 1.0, 4);
    h.add(-1.0);
    h.add(2.0);
    h.add(1.0); // hi edge is exclusive -> overflow
    EXPECT_EQ(h.underflow(), 1u);
    EXPECT_EQ(h.overflow(), 2u);
    EXPECT_EQ(h.total(), 3u);
}

TEST(HistogramTest, BucketEdgesAreUniform)
{
    ehar::Histogram h(10.0, 20.0, 4);
    EXPECT_DOUBLE_EQ(h.bucketLow(0), 10.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(2), 15.0);
    EXPECT_DOUBLE_EQ(h.bucketLow(4), 20.0);
    EXPECT_THROW(h.bucketCount(4), edgebench::InvalidArgumentError);
}

TEST(HistogramTest, PrintsBars)
{
    ehar::Histogram h(0.0, 2.0, 2);
    h.add(0.5);
    h.add(0.6);
    h.add(1.5);
    std::ostringstream oss;
    h.print(oss, 10);
    const std::string out = oss.str();
    EXPECT_NE(out.find("##########"), std::string::npos);
    EXPECT_NE(out.find("#####"), std::string::npos);
}

TEST(HistogramTest, InvalidConstructionThrows)
{
    EXPECT_THROW(ehar::Histogram(1.0, 1.0, 4),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(ehar::Histogram(0.0, 1.0, 0),
                 edgebench::InvalidArgumentError);
}

TEST(StatsTest, PercentileInterpolatesLinearly)
{
    const std::vector<double> s = {10.0, 20.0, 30.0, 40.0};
    EXPECT_DOUBLE_EQ(ehar::Stats::percentile(s, 0.5), 25.0);
    EXPECT_DOUBLE_EQ(ehar::Stats::percentile(s, 1.0 / 3.0), 20.0);
    // p=0.95 over 4 samples: idx 2.85 -> 30 + 0.85 * 10.
    EXPECT_NEAR(ehar::Stats::percentile(s, 0.95), 38.5, 1e-12);
}

TEST(StatsTest, PercentileEdgeCases)
{
    // n=1: every percentile is the single sample.
    const std::vector<double> one = {42.0};
    EXPECT_DOUBLE_EQ(ehar::Stats::percentile(one, 0.0), 42.0);
    EXPECT_DOUBLE_EQ(ehar::Stats::percentile(one, 0.5), 42.0);
    EXPECT_DOUBLE_EQ(ehar::Stats::percentile(one, 1.0), 42.0);
    // p=0 is the minimum, p=1 the maximum.
    const std::vector<double> s = {1.0, 2.0, 3.0};
    EXPECT_DOUBLE_EQ(ehar::Stats::percentile(s, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(ehar::Stats::percentile(s, 1.0), 3.0);
    // Empty sample set reports 0 (no-traffic serving rows).
    EXPECT_DOUBLE_EQ(ehar::Stats::percentile({}, 0.5), 0.0);
}

TEST(StatsTest, PercentileValidatesInput)
{
    const std::vector<double> s = {1.0, 2.0};
    EXPECT_THROW(ehar::Stats::percentile(s, -0.1),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(ehar::Stats::percentile(s, 1.1),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(ehar::Stats::percentile({2.0, 1.0}, 0.5),
                 edgebench::InvalidArgumentError);
}
