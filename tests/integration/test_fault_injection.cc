/**
 * @file
 * Failure-injection tests: malformed graphs, corrupted deployments
 * and pathological numeric inputs must fail loudly (typed exceptions)
 * or degrade gracefully (NaN propagation) — never crash or silently
 * mis-account.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/hw/roofline.hh"
#include "edgebench/models/zoo.hh"

namespace eg = edgebench::graph;
namespace ec = edgebench::core;
namespace eh = edgebench::hw;
namespace ef = edgebench::frameworks;
namespace em = edgebench::models;
using edgebench::InvalidArgumentError;

TEST(FaultInjectionTest, DanglingInputInRawNodeIsRejected)
{
    eg::Graph g;
    g.addInput({1, 3, 4, 4});
    eg::Node bad;
    bad.kind = eg::OpKind::kActivation;
    bad.attrs.activation = eg::ActKind::kRelu;
    bad.inputs = {7}; // does not exist
    bad.outShape = {1, 3, 4, 4};
    EXPECT_THROW(g.appendRaw(std::move(bad)), InvalidArgumentError);
}

TEST(FaultInjectionTest, ForwardReferenceIsRejected)
{
    eg::Graph g;
    g.addInput({1, 3, 4, 4});
    eg::Node bad;
    bad.kind = eg::OpKind::kActivation;
    bad.attrs.activation = eg::ActKind::kRelu;
    bad.inputs = {1}; // would be its own id
    bad.outShape = {1, 3, 4, 4};
    EXPECT_THROW(g.appendRaw(std::move(bad)), InvalidArgumentError);
}

TEST(FaultInjectionTest, MarkInputOnNonInputNodeThrows)
{
    eg::Graph g;
    auto in = g.addInput({1, 2});
    auto fc = g.addDense(in, 4);
    EXPECT_THROW(g.markInput(fc), InvalidArgumentError);
    EXPECT_THROW(g.markOutput(99), InvalidArgumentError);
}

TEST(FaultInjectionTest, InterpreterRefusesGraphWithoutOutputs)
{
    eg::Graph g;
    g.addInput({1, 2});
    ec::Rng rng(1);
    g.materializeParams(rng);
    EXPECT_THROW(eg::Interpreter interp(g), InvalidArgumentError);
}

TEST(FaultInjectionTest, DroppedParamsAreDetected)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(1);
    g.materializeParams(rng);
    g.dropParams();
    EXPECT_THROW(eg::Interpreter interp(g), InvalidArgumentError);
}

TEST(FaultInjectionTest, NanInputsPropagateWithoutCrashing)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(2);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    auto x = ec::Tensor::full({1, 3, 32, 32}, NAN);
    const auto out = interp.run({x})[0];
    // The pipeline must not abort. Max-pooling legitimately absorbs
    // NaN (max(-inf, NaN) keeps the accumulator), so each output is
    // either NaN or a valid probability.
    for (std::int64_t i = 0; i < out.numel(); ++i) {
        const float v = out.at(i);
        EXPECT_TRUE(std::isnan(v) || (v >= 0.0f && v <= 1.0f))
            << "i=" << i << " v=" << v;
    }
}

TEST(FaultInjectionTest, InfiniteInputsSaturateSoftmax)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(3);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    auto x = ec::Tensor::full({1, 3, 32, 32}, 1e30f);
    const auto out = interp.run({x})[0];
    // Shift-invariant softmax keeps the result finite or NaN-free
    // unless upstream kernels produced inf-inf.
    for (std::int64_t i = 0; i < out.numel(); ++i)
        EXPECT_FALSE(out.at(i) < 0.0f) << i;
}

TEST(FaultInjectionTest, ZeroBandwidthUnitIsRejectedUpstream)
{
    eh::ComputeUnit unit;
    unit.peakGflopsF32 = 10.0;
    unit.memBandwidthGBs = 10.0;
    unit.memCapacityBytes = 1e12;
    eh::EngineProfile p;
    p.memoryEfficiency = 0.0; // degenerate
    const auto g = em::buildCifarNet();
    EXPECT_THROW(eh::graphLatency(g, unit, p),
                 InvalidArgumentError);
}

TEST(FaultInjectionTest, RebatchAfterFusionStillConsistent)
{
    // Pass-order robustness: fuse -> rebatch -> quantize on a graph
    // with residuals must keep stats self-consistent.
    const auto g = em::buildResNet(18);
    const auto fused = eg::fuseConvBnAct(g).graph;
    const auto b4 = eg::rebatch(fused, 4).graph;
    const auto q = eg::quantizeInt8(b4).graph;
    EXPECT_EQ(b4.stats().macs, fused.stats().macs * 4);
    EXPECT_EQ(q.stats().macs, b4.stats().macs);
    EXPECT_LT(q.stats().paramBytes, b4.stats().paramBytes);
    // And it still prices on a device.
    const auto& unit = *eh::deviceSpec(eh::DeviceId::kJetsonTx2).gpu;
    const auto profile = ef::engineProfile(
        ef::FrameworkId::kPyTorch, eh::DeviceId::kJetsonTx2);
    EXPECT_GT(eh::graphLatencyUnchecked(q, unit, profile).totalMs,
              0.0);
}

TEST(FaultInjectionTest, EmptyShapeEdgeCases)
{
    eg::Graph g;
    // Zero-extent input: legal shape, zero elements.
    auto in = g.addInput({1, 0, 4, 4});
    EXPECT_EQ(g.node(in).outputElems(), 0);
    // Convolution over it must be rejected by geometry validation.
    EXPECT_THROW(g.addConv2d(in, 4, 3, 3, 1, 1),
                 InvalidArgumentError);
}

TEST(FaultInjectionTest, InterpreterRejectsWrongInputCount)
{
    auto g = em::buildCifarNet();
    ec::Rng rng(4);
    g.materializeParams(rng);
    eg::Interpreter interp(g);
    auto x = ec::Tensor::zeros({1, 3, 32, 32});
    EXPECT_THROW(interp.run({x, x}), InvalidArgumentError);
}

TEST(FaultInjectionTest, HugeBatchOverflowsNoSilently)
{
    // A pathologically large batch must not wrap MAC counters.
    const auto g = em::buildCifarNet();
    const auto big = eg::rebatch(g, 1 << 20).graph;
    EXPECT_GT(big.stats().macs, g.stats().macs);
    EXPECT_EQ(big.stats().macs, g.stats().macs * (1 << 20));
}
