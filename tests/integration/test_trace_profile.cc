/**
 * @file
 * End-to-end observability tests: the recorded trace must agree with
 * the legacy aggregate numbers it was derived from.
 *
 *  - profileRun: per-category span totals == ProfileReport per-phase
 *    totals (within 1%, the fig05 acceptance bound);
 *  - per-node "op" spans carry op/flops/bytes/bound attributes and
 *    their FLOPs sum to the graph total;
 *  - power/thermal annotators attach energy_mJ / surface_C to spans;
 *  - the interpreter emits one "exec" span per executed node;
 *  - the serving simulator emits one "request" span per served
 *    request;
 *  - harness::traceBreakdown folds the trace back into a table whose
 *    shares sum to 100%.
 *
 * Everything degrades to "the tracer stays empty" when the tree is
 * built with -DEDGEBENCH_OBS=OFF; the suite passes either way.
 */

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/frameworks/deploy.hh"
#include "edgebench/frameworks/runtime.hh"
#include "edgebench/graph/interpreter.hh"
#include "edgebench/harness/report.hh"
#include "edgebench/hw/roofline.hh"
#include "edgebench/obs/export.hh"
#include "edgebench/power/energy.hh"
#include "edgebench/serving/simulator.hh"
#include "edgebench/thermal/thermal.hh"

using namespace edgebench;

namespace
{

frameworks::InferenceSession
deploy(frameworks::FrameworkId fw, hw::DeviceId device)
{
    auto dep = frameworks::tryDeploy(
        fw, models::buildModel(models::ModelId::kResNet18), device);
    EB_CHECK(dep.has_value(), "test fixture: undeployable combo");
    return frameworks::InferenceSession(std::move(dep->model));
}

/** Legacy per-phase totals from a ProfileReport. */
std::map<std::string, double>
reportPhaseTotals(const frameworks::ProfileReport& rep)
{
    std::map<std::string, double> totals;
    for (const auto& s : rep.samples)
        totals[frameworks::phaseName(s.phase)] += s.ms;
    return totals;
}

const double* findNum(const obs::TraceEvent& e, const std::string& key)
{
    for (const auto& a : e.args)
        if (a.numeric && a.key == key)
            return &a.number;
    return nullptr;
}

const std::string* findText(const obs::TraceEvent& e,
                            const std::string& key)
{
    for (const auto& a : e.args)
        if (!a.numeric && a.key == key)
            return &a.text;
    return nullptr;
}

} // namespace

class TraceProfileTest
    : public ::testing::TestWithParam<
          std::pair<frameworks::FrameworkId, hw::DeviceId>>
{
};

TEST_P(TraceProfileTest, TracePhaseTotalsMatchLegacyReport)
{
    const auto [fw, device] = GetParam();
    auto session = deploy(fw, device);
    obs::Tracer tracer;
    const auto rep = session.profileRun(30, &tracer);

    if (!obs::kEnabledAtBuild) {
        EXPECT_TRUE(tracer.empty());
        return;
    }
    const auto trace_totals = obs::categoryTotalsMs(tracer);
    for (const auto& [phase, legacy_ms] : reportPhaseTotals(rep)) {
        if (legacy_ms <= 0.0)
            continue;
        ASSERT_TRUE(trace_totals.count(phase))
            << "phase " << phase << " missing from trace";
        EXPECT_NEAR(trace_totals.at(phase), legacy_ms,
                    0.01 * legacy_ms)
            << "phase " << phase;
    }
    // And nothing in the trace invents phase time the report lacks.
    EXPECT_EQ(trace_totals.size(), reportPhaseTotals(rep).size() + 2)
        << "expected exactly the phase categories plus the "
           "structural 'inference' and 'op' categories";
    EXPECT_EQ(tracer.openSpans(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Fig05Combos, TraceProfileTest,
    ::testing::Values(
        std::make_pair(frameworks::FrameworkId::kPyTorch,
                       hw::DeviceId::kRpi3),
        std::make_pair(frameworks::FrameworkId::kTensorFlow,
                       hw::DeviceId::kRpi3),
        std::make_pair(frameworks::FrameworkId::kPyTorch,
                       hw::DeviceId::kJetsonTx2),
        std::make_pair(frameworks::FrameworkId::kTensorFlow,
                       hw::DeviceId::kJetsonTx2)));

TEST(TraceProfileDetailTest, OpSpansCarryNodeAttributes)
{
    auto session = deploy(frameworks::FrameworkId::kPyTorch,
                          hw::DeviceId::kRpi3);
    obs::Tracer tracer;
    session.profileRun(30, &tracer);
    if (!obs::kEnabledAtBuild)
        GTEST_SKIP() << "tracing compiled out";

    double flops_sum = 0.0;
    std::size_t op_spans = 0;
    for (const auto& e : tracer.events()) {
        if (e.category != "op")
            continue;
        ++op_spans;
        ASSERT_NE(findText(e, "op"), nullptr) << e.name;
        ASSERT_NE(findNum(e, "flops"), nullptr) << e.name;
        ASSERT_NE(findNum(e, "bytes"), nullptr) << e.name;
        EXPECT_GT(*findNum(e, "bytes"), 0.0) << e.name;
        const auto* bound = findText(e, "bound");
        ASSERT_NE(bound, nullptr) << e.name;
        EXPECT_TRUE(*bound == "compute" || *bound == "memory")
            << *bound;
        flops_sum += *findNum(e, "flops");
    }
    EXPECT_GT(op_spans, 20u); // ResNet-18 has ~50 graph nodes
    const auto stats = session.model().graph.stats();
    EXPECT_NEAR(flops_sum, 2.0 * static_cast<double>(stats.macs),
                0.01 * 2.0 * static_cast<double>(stats.macs));
}

TEST(TraceAnnotateTest, EnergyAttachesToEverySpan)
{
    auto session = deploy(frameworks::FrameworkId::kTensorFlow,
                          hw::DeviceId::kRpi3);
    obs::Tracer tracer;
    session.profileRun(5, &tracer);
    const double active_w =
        power::annotateTraceEnergy(tracer, session.model());
    EXPECT_GT(active_w, 0.0);
    if (!obs::kEnabledAtBuild)
        GTEST_SKIP() << "tracing compiled out";
    for (const auto& e : tracer.events()) {
        if (e.kind != obs::EventKind::kSpan)
            continue;
        const auto* mj = findNum(e, "energy_mJ");
        ASSERT_NE(mj, nullptr) << e.name;
        EXPECT_NEAR(*mj, active_w * e.durMs(),
                    1e-9 + 1e-12 * *mj);
    }
}

TEST(TraceAnnotateTest, TemperatureAttachesAndStartsAtIdle)
{
    auto session = deploy(frameworks::FrameworkId::kTensorFlow,
                          hw::DeviceId::kRpi3);
    obs::Tracer tracer;
    session.profileRun(5, &tracer);
    const double active_w =
        power::annotateTraceEnergy(tracer, session.model());
    thermal::annotateTraceTemperature(tracer, hw::DeviceId::kRpi3,
                                      active_w);
    if (!obs::kEnabledAtBuild)
        GTEST_SKIP() << "tracing compiled out";
    const double idle_c =
        thermal::coolingSpec(hw::DeviceId::kRpi3).idleTempC;
    double peak_c = 0.0;
    for (const auto& e : tracer.events()) {
        const auto* c = findNum(e, "surface_C");
        ASSERT_NE(c, nullptr) << e.name;
        EXPECT_GE(*c, idle_c - 0.5) << e.name;
        peak_c = std::max(peak_c, *c);
    }
    // Sustained active power must have warmed the surface.
    EXPECT_GT(peak_c, idle_c);
}

TEST(TraceAnnotateTest, TemperatureRejectsHpcPlatforms)
{
    obs::Tracer tracer;
    tracer.recordSpan("x", "compute", 1.0);
    EXPECT_THROW(thermal::annotateTraceTemperature(
                     tracer, hw::DeviceId::kTitanXp, 50.0),
                 InvalidArgumentError);
}

TEST(InterpreterTraceTest, OneExecSpanPerNode)
{
    graph::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c = g.addConv2d(in, 4, 3, 3, 1, 1);
    auto r = g.addActivation(c, graph::ActKind::kRelu);
    g.markOutput(r);
    core::Rng rng(7);
    g.materializeParams(rng);

    graph::Interpreter interp(g);
    obs::Tracer tracer;
    const std::vector<double> node_ms = {0.0, 1.5, 0.5};
    interp.setTracer(&tracer, &node_ms);
    interp.run({core::Tensor::randomNormal({1, 3, 8, 8}, rng)});

    if (!obs::kEnabledAtBuild) {
        EXPECT_TRUE(tracer.empty());
        return;
    }
    std::size_t exec_spans = 0;
    double exec_ms = 0.0;
    for (const auto& e : tracer.events()) {
        if (e.category != "exec")
            continue;
        ++exec_spans;
        exec_ms += e.durMs();
        EXPECT_NE(findText(e, "op"), nullptr);
        EXPECT_NE(findNum(e, "flops"), nullptr);
        EXPECT_NE(findNum(e, "bytes"), nullptr);
    }
    EXPECT_EQ(exec_spans,
              static_cast<std::size_t>(g.numNodes()));
    EXPECT_DOUBLE_EQ(exec_ms, 2.0);
    // The surrounding "run" span covers the whole execution.
    const auto totals = obs::categoryTotalsMs(tracer);
    EXPECT_DOUBLE_EQ(totals.at("run"), 2.0);
    EXPECT_EQ(tracer.openSpans(), 0u);

    // Re-running without a tracer must not record more events.
    const auto before = tracer.events().size();
    interp.setTracer(nullptr);
    interp.run({core::Tensor::randomNormal({1, 3, 8, 8}, rng)});
    EXPECT_EQ(tracer.events().size(), before);
}

TEST(ServingTraceTest, OneRequestSpanPerServedRequest)
{
    auto session = deploy(frameworks::FrameworkId::kTensorFlow,
                          hw::DeviceId::kJetsonTx2);
    serving::ServingConfig cfg;
    cfg.durationS = 10.0;
    cfg.arrivalRateHz = 2.0;
    cfg.deterministicArrivals = true;
    cfg.enableThermal = false;
    obs::Tracer tracer;
    cfg.tracer = &tracer;
    const auto rep = serving::simulateServing(session, cfg);

    if (!obs::kEnabledAtBuild) {
        EXPECT_TRUE(tracer.empty());
        return;
    }
    std::size_t request_spans = 0;
    for (const auto& e : tracer.events()) {
        if (e.kind != obs::EventKind::kSpan ||
            e.category != "serving")
            continue;
        ++request_spans;
        const auto* queue_ms = findNum(e, "queue_ms");
        const auto* service_ms = findNum(e, "service_ms");
        ASSERT_NE(queue_ms, nullptr);
        ASSERT_NE(service_ms, nullptr);
        EXPECT_GE(*queue_ms, 0.0);
        EXPECT_GT(*service_ms, 0.0);
        // Latency = queueing + service.
        EXPECT_NEAR(e.durMs(), *queue_ms + *service_ms,
                    1e-6 * e.durMs());
    }
    EXPECT_EQ(request_spans,
              static_cast<std::size_t>(rep.served));
}

TEST(TraceBreakdownTest, SharesSumToOneHundredPercent)
{
    auto session = deploy(frameworks::FrameworkId::kPyTorch,
                          hw::DeviceId::kJetsonTx2);
    obs::Tracer tracer;
    session.profileRun(100, &tracer);
    if (!obs::kEnabledAtBuild)
        GTEST_SKIP() << "tracing compiled out";
    const auto table = harness::traceBreakdown(tracer);
    EXPECT_GE(table.rows(), 6u);
    std::ostringstream os;
    table.print(os);
    // Re-parse the Share column and sum it.
    std::istringstream lines(os.str());
    std::string line;
    double share_sum = 0.0;
    while (std::getline(lines, line)) {
        const auto last = line.find_last_of('|');
        const auto prev = line.find_last_of('|', last - 1);
        if (last == std::string::npos || prev == std::string::npos)
            continue;
        const auto cell = line.substr(prev + 1, last - prev - 1);
        try {
            share_sum += std::stod(cell);
        } catch (const std::invalid_argument&) {
            // header / rule rows
        }
    }
    // Each row rounds to 0.1%, so the sum can drift by a few tenths.
    EXPECT_NEAR(share_sum, 100.0, 0.6);
}
