/**
 * @file
 * Zoo-wide property tests: every optimization pass must preserve the
 * structural invariants of every Table I model (plus the recurrent
 * extensions). These are the repo's broadest invariance sweeps.
 */

#include <gtest/gtest.h>

#include "edgebench/graph/passes.hh"
#include "edgebench/models/zoo.hh"

namespace eg = edgebench::graph;
namespace em = edgebench::models;
namespace ec = edgebench::core;

class ZooPassProperties : public ::testing::TestWithParam<em::ModelId>
{
  protected:
    eg::Graph graph_ = em::buildModel(GetParam());
};

TEST_P(ZooPassProperties, FusionPreservesConvMacs)
{
    const auto before = graph_.stats();
    const auto fused = eg::fuseConvBnAct(graph_).graph;
    const auto after = fused.stats();
    // Fusion removes standalone-BN MAC accounting but never touches
    // conv/dense work: macs may only shrink by the BN share.
    EXPECT_LE(after.macs, before.macs);
    double bn_macs = 0.0;
    for (const auto& n : graph_.nodes())
        if (n.kind == eg::OpKind::kBatchNorm)
            bn_macs += static_cast<double>(n.macs());
    EXPECT_GE(after.macs, before.macs - bn_macs - 1);
    // Node count shrinks whenever the model has BN/activations.
    EXPECT_LE(after.numNodes, before.numNodes);
}

TEST_P(ZooPassProperties, FusionPreservesOutputShapes)
{
    const auto fused = eg::fuseConvBnAct(graph_).graph;
    ASSERT_EQ(fused.outputIds().size(), graph_.outputIds().size());
    for (std::size_t i = 0; i < fused.outputIds().size(); ++i) {
        EXPECT_EQ(fused.node(fused.outputIds()[i]).outShape,
                  graph_.node(graph_.outputIds()[i]).outShape);
    }
}

TEST_P(ZooPassProperties, QuantizationShrinksParamBytes)
{
    const auto q = eg::quantizeInt8(graph_).graph;
    EXPECT_EQ(q.stats().params, graph_.stats().params);
    EXPECT_LT(q.stats().paramBytes, graph_.stats().paramBytes);
    // Conv-dominated models approach the 4x ceiling.
    EXPECT_GT(graph_.stats().paramBytes / q.stats().paramBytes, 1.5);
}

TEST_P(ZooPassProperties, F16ExactlyHalvesParamBytes)
{
    const auto h = eg::convertToF16(graph_).graph;
    EXPECT_DOUBLE_EQ(h.stats().paramBytes,
                     graph_.stats().paramBytes / 2.0);
    EXPECT_EQ(h.stats().macs, graph_.stats().macs);
}

TEST_P(ZooPassProperties, DeadNodeEliminationIsIdentityOnZooModels)
{
    // The builders never create dead nodes.
    const auto [frozen, removed] = eg::eliminateDeadNodes(graph_);
    EXPECT_EQ(removed, 0) << graph_.name();
    EXPECT_EQ(frozen.numNodes(), graph_.numNodes());
}

TEST_P(ZooPassProperties, PeakActivationIsPositiveAndBounded)
{
    const double peak = eg::estimatePeakActivationBytes(graph_);
    EXPECT_GT(peak, 0.0);
    // Liveness-based peak never exceeds the sum of all activations.
    EXPECT_LE(peak, graph_.stats().activationBytes);
}

TEST_P(ZooPassProperties, RebatchTimesFourScalesActivations)
{
    const auto b = eg::rebatch(graph_, 4).graph;
    EXPECT_EQ(b.stats().macs, graph_.stats().macs * 4);
    EXPECT_DOUBLE_EQ(b.stats().activationBytes,
                     graph_.stats().activationBytes * 4.0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ZooPassProperties,
    ::testing::ValuesIn(em::allModels()),
    [](const ::testing::TestParamInfo<em::ModelId>& pi) {
        std::string n = em::modelInfo(pi.param).name + "_" +
            em::modelInfo(pi.param).inputSize;
        for (auto& c : n)
            if (!std::isalnum(static_cast<unsigned char>(c)))
                c = '_';
        return n;
    });
