/**
 * @file
 * Integration tests for the paper's headline claims: each test states
 * a conclusion from the paper and verifies our full pipeline (model
 * zoo -> framework compile -> device roofline -> energy) reproduces
 * it.
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "edgebench/frameworks/deploy.hh"
#include "edgebench/harness/stats.hh"
#include "edgebench/power/energy.hh"

namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;
namespace ehar = edgebench::harness;

namespace
{

double
latency(ef::FrameworkId fw, em::ModelId m, eh::DeviceId d)
{
    auto dep = ef::tryDeploy(fw, em::buildModel(m), d);
    EXPECT_TRUE(dep.has_value())
        << ef::frameworkName(fw) << "/" << em::modelInfo(m).name
        << "/" << eh::deviceName(d);
    return dep ? dep->model.latencyMs() : -1.0;
}

const std::vector<em::ModelId> kFig8Models = {
    em::ModelId::kResNet18, em::ModelId::kResNet50,
    em::ModelId::kResNet101, em::ModelId::kMobileNetV2,
    em::ModelId::kInceptionV4};

} // namespace

TEST(PaperClaims, SectionVIA_GpuOrAsicDevicesWinOnEdge)
{
    // Fig. 2: "In most cases, either GPU-based devices or EdgeTPU
    // provides the best performance."
    for (auto m : {em::ModelId::kResNet50, em::ModelId::kMobileNetV2,
                   em::ModelId::kInceptionV4}) {
        const auto g = em::buildModel(m);
        double best_ms = 1e300;
        eh::DeviceId best_dev{};
        for (auto d : eh::edgeDevices()) {
            auto dep = ef::bestDeployment(g, d);
            if (dep && dep->model.latencyMs() < best_ms) {
                best_ms = dep->model.latencyMs();
                best_dev = d;
            }
        }
        const auto cat = eh::deviceSpec(best_dev).category;
        EXPECT_TRUE(cat == eh::DeviceCategory::kGpuEdge ||
                    cat == eh::DeviceCategory::kAsicEdge)
            << em::modelInfo(m).name << " won by "
            << eh::deviceName(best_dev);
    }
}

TEST(PaperClaims, SectionVIB1_TensorFlowBeatsPyTorchOnRpi)
{
    // Fig. 3: TensorFlow is the fastest full framework on the RPi.
    for (auto m : kFig8Models) {
        EXPECT_LT(latency(ef::FrameworkId::kTensorFlow, m,
                          eh::DeviceId::kRpi3),
                  latency(ef::FrameworkId::kPyTorch, m,
                          eh::DeviceId::kRpi3))
            << em::modelInfo(m).name;
    }
}

TEST(PaperClaims, SectionVIB1_PyTorchBeatsTensorFlowOnTx2Gpu)
{
    // Fig. 4 / Section VI-B3: on the GPU the static-graph feeding
    // overhead flips the ranking.
    for (auto m : {em::ModelId::kResNet50, em::ModelId::kMobileNetV2,
                   em::ModelId::kInceptionV4}) {
        EXPECT_LT(latency(ef::FrameworkId::kPyTorch, m,
                          eh::DeviceId::kJetsonTx2),
                  latency(ef::FrameworkId::kTensorFlow, m,
                          eh::DeviceId::kJetsonTx2))
            << em::modelInfo(m).name;
    }
}

TEST(PaperClaims, SectionVIB1_PyTorchBeatsTensorFlowOnGtxTitanX)
{
    // Fig. 6.
    for (auto m : {em::ModelId::kResNet50, em::ModelId::kMobileNetV2,
                   em::ModelId::kVgg16, em::ModelId::kVgg19}) {
        EXPECT_LT(latency(ef::FrameworkId::kPyTorch, m,
                          eh::DeviceId::kGtxTitanX),
                  latency(ef::FrameworkId::kTensorFlow, m,
                          eh::DeviceId::kGtxTitanX))
            << em::modelInfo(m).name;
    }
}

TEST(PaperClaims, SectionVIB2_TensorRtSpeedsUpNanoAbout4x)
{
    // Fig. 7: average 4.1x TensorRT speedup over PyTorch on Nano.
    std::vector<double> speedups;
    for (auto m : {em::ModelId::kResNet18, em::ModelId::kResNet50,
                   em::ModelId::kMobileNetV2,
                   em::ModelId::kInceptionV4, em::ModelId::kAlexNet,
                   em::ModelId::kVgg16, em::ModelId::kTinyYolo,
                   em::ModelId::kC3d}) {
        speedups.push_back(
            latency(ef::FrameworkId::kPyTorch, m,
                    eh::DeviceId::kJetsonNano) /
            latency(ef::FrameworkId::kTensorRt, m,
                    eh::DeviceId::kJetsonNano));
    }
    const double avg = ehar::geomean(speedups);
    EXPECT_GT(avg, 2.0);
    EXPECT_LT(avg, 8.0);
    for (double s : speedups)
        EXPECT_GT(s, 1.0) << "TensorRT must never lose to PyTorch";
}

TEST(PaperClaims, SectionVIB2_LargeModelsGainLessFromTensorRt)
{
    // Fig. 7: "models with large memory footprints (AlexNet, VGG16)
    // ... achieve smaller speedups compared to other models."
    const double rn18 =
        latency(ef::FrameworkId::kPyTorch, em::ModelId::kResNet18,
                eh::DeviceId::kJetsonNano) /
        latency(ef::FrameworkId::kTensorRt, em::ModelId::kResNet18,
                eh::DeviceId::kJetsonNano);
    const double vgg =
        latency(ef::FrameworkId::kPyTorch, em::ModelId::kVgg16,
                eh::DeviceId::kJetsonNano) /
        latency(ef::FrameworkId::kTensorRt, em::ModelId::kVgg16,
                eh::DeviceId::kJetsonNano);
    EXPECT_LT(vgg, rn18);
}

TEST(PaperClaims, SectionVIB2_TfLiteSpeedsUpRpi)
{
    // Fig. 8: TFLite averages 1.58x over TF and 4.53x over PyTorch.
    std::vector<double> vs_tf, vs_pt;
    for (auto m : kFig8Models) {
        const double tfl = latency(ef::FrameworkId::kTfLite, m,
                                   eh::DeviceId::kRpi3);
        vs_tf.push_back(latency(ef::FrameworkId::kTensorFlow, m,
                                eh::DeviceId::kRpi3) /
                        tfl);
        vs_pt.push_back(latency(ef::FrameworkId::kPyTorch, m,
                                eh::DeviceId::kRpi3) /
                        tfl);
    }
    const double avg_tf = ehar::geomean(vs_tf);
    const double avg_pt = ehar::geomean(vs_pt);
    EXPECT_GT(avg_tf, 1.1);
    EXPECT_LT(avg_tf, 2.6);
    EXPECT_GT(avg_pt, 3.0);
    EXPECT_LT(avg_pt, 16.0);
    // TFLite's gain over TF is smaller than over PyTorch (TF already
    // optimizes its static graph).
    EXPECT_LT(avg_tf, avg_pt);
}

TEST(PaperClaims, SectionVIC_HpcSpeedupOverTx2IsOnlyAFewX)
{
    // Figs. 9-10: "the average speedup over Jetson TX2 on all
    // benchmarks is only 3x."
    std::vector<double> speedups;
    for (auto m : {em::ModelId::kResNet18, em::ModelId::kResNet50,
                   em::ModelId::kResNet101, em::ModelId::kMobileNetV2,
                   em::ModelId::kInceptionV4, em::ModelId::kAlexNet,
                   em::ModelId::kVgg16, em::ModelId::kVgg19,
                   em::ModelId::kC3d}) {
        const double tx2 = latency(ef::FrameworkId::kPyTorch, m,
                                   eh::DeviceId::kJetsonTx2);
        for (auto d : eh::hpcDevices()) {
            speedups.push_back(
                tx2 / latency(ef::FrameworkId::kPyTorch, m, d));
        }
    }
    const double gm = ehar::geomean(speedups);
    EXPECT_GT(gm, 1.2);
    EXPECT_LT(gm, 6.0);
}

TEST(PaperClaims, SectionVIC_XeonTrailsGpusOnCompactModels)
{
    // "on several benchmarks, the Xeon CPU performance is lower than
    // that of all platforms" (compute-bound models).
    for (auto m : {em::ModelId::kResNet18, em::ModelId::kResNet50}) {
        const double xeon = latency(ef::FrameworkId::kPyTorch, m,
                                    eh::DeviceId::kXeon);
        EXPECT_GT(xeon, latency(ef::FrameworkId::kPyTorch, m,
                                eh::DeviceId::kJetsonTx2))
            << em::modelInfo(m).name;
        EXPECT_GT(xeon, latency(ef::FrameworkId::kPyTorch, m,
                                eh::DeviceId::kTitanXp));
    }
}

TEST(PaperClaims, SectionVIC_XeonMatchesTx2OnVggClassModels)
{
    // "only for memory-bounded benchmarks (e.g., VGG16 and VGG19)
    // does Xeon CPU perform similarly to TX2."
    for (auto m : {em::ModelId::kVgg16, em::ModelId::kVgg19}) {
        const double ratio =
            latency(ef::FrameworkId::kPyTorch, m,
                    eh::DeviceId::kXeon) /
            latency(ef::FrameworkId::kPyTorch, m,
                    eh::DeviceId::kJetsonTx2);
        EXPECT_GT(ratio, 0.5) << em::modelInfo(m).name;
        EXPECT_LT(ratio, 2.0) << em::modelInfo(m).name;
    }
}

TEST(PaperClaims, SectionVIC_VggGainsMoreThanResNetOnHpcGpus)
{
    // "benchmarks with large memory footprint such as VGG models and
    // C3D generally achieve higher speedups [on HPC GPUs] ... ResNet
    // models benefit less."
    auto speedup = [&](em::ModelId m) {
        return latency(ef::FrameworkId::kPyTorch, m,
                       eh::DeviceId::kJetsonTx2) /
            latency(ef::FrameworkId::kPyTorch, m,
                    eh::DeviceId::kTitanXp);
    };
    EXPECT_GT(speedup(em::ModelId::kVgg16),
              speedup(em::ModelId::kResNet50));
    EXPECT_GT(speedup(em::ModelId::kC3d),
              speedup(em::ModelId::kResNet18));
}

TEST(PaperClaims, SectionVIF_EnergyDelayTradeoffExists)
{
    // Conclusion: "a tradeoff between energy consumption and
    // inference time on edge devices (e.g., Movidius vs Jetson
    // Nano)": Movidius draws less power but is slower.
    auto nano = ef::bestDeployment(
        em::buildModel(em::ModelId::kInceptionV4),
        eh::DeviceId::kJetsonNano);
    auto mov = ef::bestDeployment(
        em::buildModel(em::ModelId::kInceptionV4),
        eh::DeviceId::kMovidius);
    ASSERT_TRUE(nano && mov);
    const auto e_nano = edgebench::power::energyPerInference(
        nano->model);
    const auto e_mov = edgebench::power::energyPerInference(
        mov->model);
    EXPECT_LT(e_mov.activePowerW, e_nano.activePowerW);
    EXPECT_GT(e_mov.inferenceTimeMs, e_nano.inferenceTimeMs);
}

TEST(PaperClaims, SingleBatchKeepsHpcGpusUnderutilized)
{
    // Sanity on the mechanism: the achieved fraction of peak on a
    // Titan Xp running ResNet-50 single-batch is a few percent.
    auto dep = ef::tryDeploy(ef::FrameworkId::kPyTorch,
                             em::buildModel(em::ModelId::kResNet50),
                             eh::DeviceId::kTitanXp);
    ASSERT_TRUE(dep.has_value());
    const double gflops = 4.1 / (dep->model.latencyMs() / 1e3);
    const double peak =
        eh::deviceSpec(eh::DeviceId::kTitanXp).gpu->peakGflopsF32;
    EXPECT_LT(gflops / peak, 0.10);
    EXPECT_GT(gflops / peak, 0.001);
}
