/**
 * @file
 * Exporter tests: Chrome trace-event JSON well-formedness (checked
 * with an in-test RFC 8259 recursive-descent validator, no external
 * JSON dependency), CSV shape, and the trace aggregation helpers.
 */

#include <cctype>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "edgebench/obs/export.hh"
#include "edgebench/obs/metrics.hh"
#include "edgebench/obs/trace.hh"

namespace obs = edgebench::obs;

namespace
{

/**
 * Minimal JSON syntax checker: accepts exactly the RFC 8259 grammar
 * (in particular it rejects NaN/Infinity literals, trailing commas,
 * and unescaped control characters) and throws std::runtime_error at
 * the first violation.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string& s) : s_(s) {}

    void check()
    {
        ws();
        value();
        ws();
        if (p_ != s_.size())
            fail("trailing data");
    }

  private:
    [[noreturn]] void fail(const std::string& why) const
    {
        throw std::runtime_error("JSON error at byte " +
                                 std::to_string(p_) + ": " + why);
    }

    char peek() const { return p_ < s_.size() ? s_[p_] : '\0'; }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++p_;
    }

    void ws()
    {
        while (p_ < s_.size() &&
               (s_[p_] == ' ' || s_[p_] == '\t' || s_[p_] == '\n' ||
                s_[p_] == '\r'))
            ++p_;
    }

    void value()
    {
        switch (peek()) {
          case '{': object(); break;
          case '[': array(); break;
          case '"': string(); break;
          case 't': literal("true"); break;
          case 'f': literal("false"); break;
          case 'n': literal("null"); break;
          default: number();
        }
    }

    void literal(const std::string& lit)
    {
        if (s_.compare(p_, lit.size(), lit) != 0)
            fail("bad literal");
        p_ += lit.size();
    }

    void object()
    {
        expect('{');
        ws();
        if (peek() == '}') {
            ++p_;
            return;
        }
        while (true) {
            string();
            ws();
            expect(':');
            ws();
            value();
            ws();
            if (peek() == ',') {
                ++p_;
                ws();
                continue;
            }
            expect('}');
            return;
        }
    }

    void array()
    {
        expect('[');
        ws();
        if (peek() == ']') {
            ++p_;
            return;
        }
        while (true) {
            value();
            ws();
            if (peek() == ',') {
                ++p_;
                ws();
                continue;
            }
            expect(']');
            return;
        }
    }

    void string()
    {
        expect('"');
        while (true) {
            if (p_ >= s_.size())
                fail("unterminated string");
            const unsigned char c =
                static_cast<unsigned char>(s_[p_]);
            if (c == '"') {
                ++p_;
                return;
            }
            if (c < 0x20)
                fail("unescaped control character");
            if (c == '\\') {
                ++p_;
                const char e = peek();
                if (e == 'u') {
                    ++p_;
                    for (int i = 0; i < 4; ++i, ++p_)
                        if (!std::isxdigit(
                                static_cast<unsigned char>(peek())))
                            fail("bad \\u escape");
                    continue;
                }
                if (std::string("\"\\/bfnrt").find(e) ==
                    std::string::npos)
                    fail("bad escape");
                ++p_;
                continue;
            }
            ++p_;
        }
    }

    void number()
    {
        if (peek() == '-')
            ++p_;
        if (!std::isdigit(static_cast<unsigned char>(peek())))
            fail("bad number");
        while (std::isdigit(static_cast<unsigned char>(peek())))
            ++p_;
        if (peek() == '.') {
            ++p_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("bad fraction");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++p_;
        }
        if (peek() == 'e' || peek() == 'E') {
            ++p_;
            if (peek() == '+' || peek() == '-')
                ++p_;
            if (!std::isdigit(static_cast<unsigned char>(peek())))
                fail("bad exponent");
            while (std::isdigit(static_cast<unsigned char>(peek())))
                ++p_;
        }
    }

    const std::string& s_;
    std::size_t p_ = 0;
};

std::size_t
countOccurrences(const std::string& hay, const std::string& needle)
{
    std::size_t n = 0;
    for (auto p = hay.find(needle); p != std::string::npos;
         p = hay.find(needle, p + needle.size()))
        ++n;
    return n;
}

/** A small trace with nesting, args, and an instant event. */
obs::Tracer
sampleTrace()
{
    obs::Tracer t("unit \"test\"\\process");
    const auto run = t.beginSpan("interpreter.run", "run");
    const auto a = t.recordSpan("conv2d", "compute", 2.0);
    t.argNum(a, "flops", 3.6e9);
    t.argText(a, "bound", "compute");
    const auto b = t.recordSpan("line\nbreak, comma", "compute", 1.0);
    t.argNum(b, "bytes", 4096.0);
    t.endSpan(run);
    t.recordSpan("forward", "session_management", 0.5);
    t.instant("shutdown", "serving");
    return t;
}

} // namespace

TEST(ChromeTraceTest, OutputIsWellFormedJson)
{
    const auto t = sampleTrace();
    std::ostringstream os;
    obs::writeChromeTrace(t, os);
    const std::string json = os.str();
    EXPECT_NO_THROW(JsonChecker(json).check()) << json;
    EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\":\"ms\""),
              std::string::npos);
    // One metadata record, one complete event per span, one instant.
    EXPECT_EQ(countOccurrences(json, "\"ph\":\"M\""), 1u);
    if (obs::kEnabledAtBuild) {
        EXPECT_EQ(countOccurrences(json, "\"ph\":\"X\""), 4u);
        EXPECT_EQ(countOccurrences(json, "\"ph\":\"i\""), 1u);
        EXPECT_NE(json.find("\"flops\":3600000000"),
                  std::string::npos);
    }
}

TEST(ChromeTraceTest, EmptyTracerStillProducesValidJson)
{
    obs::Tracer t;
    std::ostringstream os;
    obs::writeChromeTrace(t, os);
    EXPECT_NO_THROW(JsonChecker(os.str()).check()) << os.str();
}

TEST(ChromeTraceTest, HostileStringsAreEscaped)
{
    obs::Tracer t("p");
    const auto s =
        t.recordSpan("quote\" slash\\ tab\t", "cat\n", 1.0);
    t.argText(s, "k\"ey", std::string("nul\x01 char"));
    std::ostringstream os;
    obs::writeChromeTrace(t, os);
    EXPECT_NO_THROW(JsonChecker(os.str()).check()) << os.str();
}

TEST(TraceCsvTest, OneRowPerEventPlusHeader)
{
    const auto t = sampleTrace();
    std::ostringstream os;
    obs::writeTraceCsv(t, os);
    const std::string csv = os.str();
    const std::size_t rows = countOccurrences(csv, "\n");
    EXPECT_EQ(rows, 1u + t.events().size());
    EXPECT_EQ(csv.rfind("name,category,kind,start_us,dur_us,depth,"
                        "lane,args\n", 0),
              0u);
    if (obs::kEnabledAtBuild) {
        // Commas and newlines in fields are neutralized.
        EXPECT_NE(csv.find("line break; comma"), std::string::npos);
        EXPECT_NE(csv.find("bytes=4096"), std::string::npos);
        EXPECT_NE(csv.find(",instant,"), std::string::npos);
    }
}

TEST(CategoryTotalsTest, SumsSpansPerCategoryOnly)
{
    const auto t = sampleTrace();
    const auto totals = obs::categoryTotalsMs(t);
    if (!obs::kEnabledAtBuild) {
        EXPECT_TRUE(totals.empty());
        return;
    }
    // The "run" parent wraps 3 ms of children; instants contribute
    // nothing.
    EXPECT_DOUBLE_EQ(totals.at("compute"), 3.0);
    EXPECT_DOUBLE_EQ(totals.at("run"), 3.0);
    EXPECT_DOUBLE_EQ(totals.at("session_management"), 0.5);
    EXPECT_EQ(totals.count("serving"), 0u);
}

TEST(MetricsFromTraceTest, DistillsCountsDurationsAndArgs)
{
    const auto t = sampleTrace();
    const auto m = obs::metricsFromTrace(t);
    if (!obs::kEnabledAtBuild) {
        EXPECT_TRUE(m.empty());
        return;
    }
    EXPECT_EQ(m.counters().at("spans.compute").value(), 2);
    EXPECT_EQ(m.counters().at("spans.run").value(), 1);
    EXPECT_DOUBLE_EQ(m.histograms().at("span_ms.compute").sum(), 3.0);
    EXPECT_EQ(m.histograms().at("arg.flops").count(), 1u);
    EXPECT_DOUBLE_EQ(m.histograms().at("arg.bytes").max(), 4096.0);
}

TEST(MetricsCsvTest, DeterministicHeaderAndRows)
{
    obs::MetricsRegistry m;
    m.counter("zeta").add(7);
    m.counter("alpha").add(1);
    m.histogram("lat_ms").record(2.0);
    m.histogram("lat_ms").record(4.0);
    std::ostringstream os;
    obs::writeMetricsCsv(m, os);
    const std::string csv = os.str();
    EXPECT_EQ(csv.rfind("name,type,count,value,min,max,mean,stddev\n",
                        0),
              0u);
    // Counters first (map order), then histograms.
    EXPECT_LT(csv.find("alpha,counter,,1"), csv.find("zeta,counter"));
    EXPECT_NE(csv.find("lat_ms,histogram,2,,2,4,3,1"),
              std::string::npos);
}
