/**
 * @file
 * Tracer tests: span nesting/ordering, the LIFO discipline, clock
 * coupling, attributes, and the build-time kill switch. The suite is
 * written to pass under both -DEDGEBENCH_OBS=ON and OFF: when tracing
 * is compiled out, every recording call must be an observable no-op.
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/obs/trace.hh"

namespace obs = edgebench::obs;

TEST(TracerTest, StartsEmpty)
{
    obs::Tracer t;
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.openSpans(), 0u);
    EXPECT_EQ(t.processName(), "edgebench");
}

TEST(TracerTest, RecordSpanAdvancesClockAndStoresDuration)
{
    obs::Tracer t;
    const auto id = t.recordSpan("conv2d", "compute", 2.5);
    if (!obs::kEnabledAtBuild) {
        EXPECT_EQ(id, obs::kNoSpan);
        EXPECT_TRUE(t.empty());
        EXPECT_EQ(t.clock().nowUs(), 0.0);
        return;
    }
    ASSERT_EQ(t.events().size(), 1u);
    const auto& e = t.events().front();
    EXPECT_EQ(e.name, "conv2d");
    EXPECT_EQ(e.category, "compute");
    EXPECT_EQ(e.kind, obs::EventKind::kSpan);
    EXPECT_DOUBLE_EQ(e.startUs, 0.0);
    EXPECT_DOUBLE_EQ(e.durMs(), 2.5);
    EXPECT_DOUBLE_EQ(t.clock().nowMs(), 2.5);
}

TEST(TracerTest, SpansNestAndTimeIsContained)
{
    obs::Tracer t;
    const auto outer = t.beginSpan("inference[0]", "inference");
    const auto a = t.recordSpan("conv2d", "op", 1.0);
    const auto b = t.recordSpan("dense", "op", 0.5);
    t.endSpan(outer);
    if (!obs::kEnabledAtBuild) {
        EXPECT_TRUE(t.empty());
        return;
    }
    (void)a;
    (void)b;
    ASSERT_EQ(t.events().size(), 3u);
    const auto& out_e = t.events()[static_cast<std::size_t>(outer)];
    EXPECT_EQ(out_e.depth, 0);
    EXPECT_DOUBLE_EQ(out_e.durMs(), 1.5); // children advance the clock
    for (const auto id : {a, b}) {
        const auto& c = t.events()[static_cast<std::size_t>(id)];
        EXPECT_EQ(c.depth, 1);
        EXPECT_GE(c.startUs, out_e.startUs);
        EXPECT_LE(c.endUs(), out_e.endUs());
    }
}

TEST(TracerTest, EndSpanEnforcesLifoOrder)
{
    if (!obs::kEnabledAtBuild)
        GTEST_SKIP() << "tracing compiled out";
    obs::Tracer t;
    const auto outer = t.beginSpan("outer", "run");
    const auto inner = t.beginSpan("inner", "run");
    EXPECT_THROW(t.endSpan(outer), edgebench::InvalidArgumentError);
    t.endSpan(inner);
    t.endSpan(outer);
    EXPECT_EQ(t.openSpans(), 0u);
}

TEST(TracerTest, EventsAreInEmissionOrder)
{
    if (!obs::kEnabledAtBuild)
        GTEST_SKIP() << "tracing compiled out";
    obs::Tracer t;
    t.recordSpan("first", "a", 1.0);
    t.recordSpan("second", "b", 1.0);
    t.recordSpan("third", "c", 1.0);
    ASSERT_EQ(t.events().size(), 3u);
    EXPECT_EQ(t.events()[0].name, "first");
    EXPECT_EQ(t.events()[2].name, "third");
    EXPECT_LT(t.events()[0].startUs, t.events()[1].startUs);
    EXPECT_LT(t.events()[1].startUs, t.events()[2].startUs);
}

TEST(TracerTest, RecordSpanAtDoesNotTouchTheClock)
{
    obs::Tracer t;
    t.recordSpanAt("request[0]", "serving", 100.0, 5.0);
    EXPECT_DOUBLE_EQ(t.clock().nowUs(), 0.0);
    if (!obs::kEnabledAtBuild)
        return;
    ASSERT_EQ(t.events().size(), 1u);
    EXPECT_DOUBLE_EQ(t.events()[0].startUs, 100.0 * 1e3);
    EXPECT_DOUBLE_EQ(t.events()[0].durMs(), 5.0);
}

TEST(TracerTest, InstantEventsHaveZeroDuration)
{
    obs::Tracer t;
    t.instantAt("thermal_shutdown", "serving", 42.0);
    if (!obs::kEnabledAtBuild) {
        EXPECT_TRUE(t.empty());
        return;
    }
    ASSERT_EQ(t.events().size(), 1u);
    EXPECT_EQ(t.events()[0].kind, obs::EventKind::kInstant);
    EXPECT_DOUBLE_EQ(t.events()[0].durUs, 0.0);
}

TEST(TracerTest, ArgsAttachToTheRightSpan)
{
    obs::Tracer t;
    const auto a = t.recordSpan("conv2d", "op", 1.0);
    const auto b = t.recordSpan("dense", "op", 1.0);
    t.argNum(a, "flops", 1e9);
    t.argText(b, "bound", "memory");
    t.argNum(obs::kNoSpan, "ignored", 0.0); // must be a no-op
    if (!obs::kEnabledAtBuild)
        return;
    const auto& ea = t.events()[static_cast<std::size_t>(a)];
    ASSERT_EQ(ea.args.size(), 1u);
    EXPECT_EQ(ea.args[0].key, "flops");
    EXPECT_TRUE(ea.args[0].numeric);
    EXPECT_DOUBLE_EQ(ea.args[0].number, 1e9);
    const auto& eb = t.events()[static_cast<std::size_t>(b)];
    ASSERT_EQ(eb.args.size(), 1u);
    EXPECT_FALSE(eb.args[0].numeric);
    EXPECT_EQ(eb.args[0].text, "memory");
}

TEST(TracerTest, ScopedSpanClosesOnDestructionAndToleratesNull)
{
    obs::Tracer t;
    {
        obs::ScopedSpan outer(&t, "run", "run");
        t.recordSpan("child", "op", 1.0);
        EXPECT_EQ(t.openSpans(), obs::kEnabledAtBuild ? 1u : 0u);
    }
    EXPECT_EQ(t.openSpans(), 0u);
    {
        obs::ScopedSpan null_span(nullptr, "x", "y");
        EXPECT_EQ(null_span.id(), obs::kNoSpan);
    }
}

TEST(TracerTest, DisabledBuildRecordsNothing)
{
    // Meaningful under -DEDGEBENCH_OBS=OFF; trivially true otherwise.
    if (obs::kEnabledAtBuild)
        GTEST_SKIP() << "tracing compiled in";
    obs::Tracer t;
    const auto id = t.beginSpan("a", "b");
    EXPECT_EQ(id, obs::kNoSpan);
    t.endSpan(id);
    t.instant("i", "c");
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(t.openSpans(), 0u);
}
