/**
 * @file
 * Metrics registry tests: counter monotonicity, streaming histogram
 * moments, and get-or-create registry semantics.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/obs/metrics.hh"

namespace obs = edgebench::obs;

TEST(CounterTest, AccumulatesDeltas)
{
    obs::Counter c;
    EXPECT_EQ(c.value(), 0);
    c.add();
    c.add(41);
    EXPECT_EQ(c.value(), 42);
}

TEST(CounterTest, RejectsNegativeDelta)
{
    obs::Counter c;
    EXPECT_THROW(c.add(-1), edgebench::InvalidArgumentError);
}

TEST(HistogramTest, EmptyIsAllZeros)
{
    obs::Histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.sum(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.stddev(), 0.0);
}

TEST(HistogramTest, StreamingMomentsMatchClosedForm)
{
    obs::Histogram h;
    for (const double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        h.record(v);
    EXPECT_EQ(h.count(), 8u);
    EXPECT_DOUBLE_EQ(h.sum(), 40.0);
    EXPECT_DOUBLE_EQ(h.min(), 2.0);
    EXPECT_DOUBLE_EQ(h.max(), 9.0);
    EXPECT_DOUBLE_EQ(h.mean(), 5.0);
    // Textbook population-stddev example: exactly 2.
    EXPECT_NEAR(h.stddev(), 2.0, 1e-12);
}

TEST(HistogramTest, SingleSampleHasZeroSpread)
{
    obs::Histogram h;
    h.record(3.5);
    EXPECT_DOUBLE_EQ(h.mean(), 3.5);
    EXPECT_EQ(h.stddev(), 0.0);
    EXPECT_DOUBLE_EQ(h.min(), 3.5);
    EXPECT_DOUBLE_EQ(h.max(), 3.5);
}

TEST(HistogramTest, RejectsNonFiniteSamples)
{
    obs::Histogram h;
    EXPECT_THROW(h.record(std::nan("")),
                 edgebench::InvalidArgumentError);
}

TEST(RegistryTest, GetOrCreateReturnsSameMetric)
{
    obs::MetricsRegistry r;
    EXPECT_TRUE(r.empty());
    r.counter("nodes").add(3);
    r.counter("nodes").add(2);
    EXPECT_EQ(r.counter("nodes").value(), 5);
    r.histogram("span_ms").record(1.0);
    r.histogram("span_ms").record(3.0);
    EXPECT_DOUBLE_EQ(r.histogram("span_ms").mean(), 2.0);
    EXPECT_FALSE(r.empty());
    EXPECT_EQ(r.counters().size(), 1u);
    EXPECT_EQ(r.histograms().size(), 1u);
}

TEST(RegistryTest, IterationIsLexicographic)
{
    obs::MetricsRegistry r;
    r.counter("zeta");
    r.counter("alpha");
    auto it = r.counters().begin();
    EXPECT_EQ(it->first, "alpha");
    EXPECT_EQ((++it)->first, "zeta");
}
