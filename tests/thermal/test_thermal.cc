/**
 * @file
 * Thermal simulator tests (Fig. 14 / Table VI).
 */

#include <algorithm>

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/thermal/thermal.hh"

namespace et = edgebench::thermal;
namespace eh = edgebench::hw;

TEST(CoolingSpecTest, TableVIEntries)
{
    const auto& rpi = et::coolingSpec(eh::DeviceId::kRpi3);
    EXPECT_TRUE(rpi.heatsink);
    EXPECT_FALSE(rpi.fan);
    EXPECT_DOUBLE_EQ(rpi.idleTempC, 43.3);

    const auto& tx2 = et::coolingSpec(eh::DeviceId::kJetsonTx2);
    EXPECT_TRUE(tx2.fan);
    EXPECT_TRUE(tx2.fanActivates);
    EXPECT_DOUBLE_EQ(tx2.idleTempC, 32.4);

    const auto& mov = et::coolingSpec(eh::DeviceId::kMovidius);
    EXPECT_FALSE(mov.fan);
    EXPECT_DOUBLE_EQ(mov.idleTempC, 25.8);
}

TEST(CoolingSpecTest, HpcPlatformsAreNotInstrumented)
{
    EXPECT_THROW(et::coolingSpec(eh::DeviceId::kXeon),
                 edgebench::InvalidArgumentError);
    EXPECT_THROW(et::thermalParams(eh::DeviceId::kGtxTitanX),
                 edgebench::InvalidArgumentError);
}

TEST(ThermalSimTest, StartsAtCalibratedIdleTemperature)
{
    // The RC parameters are calibrated so that idle power produces
    // Table VI's idle surface temperatures at 25 degC ambient.
    for (auto d : {eh::DeviceId::kRpi3, eh::DeviceId::kJetsonTx2,
                   eh::DeviceId::kJetsonNano, eh::DeviceId::kEdgeTpu,
                   eh::DeviceId::kMovidius}) {
        et::ThermalSimulator sim(d);
        EXPECT_NEAR(sim.surfaceC(), et::coolingSpec(d).idleTempC, 1.0)
            << eh::deviceName(d);
    }
}

TEST(ThermalSimTest, JunctionRunsHotterThanSurface)
{
    et::ThermalSimulator sim(eh::DeviceId::kRpi3);
    sim.step(2.73, 60.0);
    EXPECT_GT(sim.junctionC(), sim.surfaceC());
}

TEST(ThermalSimTest, TemperatureRisesUntilFanActivates)
{
    // Heating is monotonic while the fan is off; once the Nano's fan
    // trips, the surface is allowed to dip toward the new (cooler)
    // steady state.
    et::ThermalSimulator sim(eh::DeviceId::kJetsonNano);
    double prev = sim.surfaceC();
    bool fan_seen = false;
    for (int i = 0; i < 60; ++i) {
        sim.step(4.58, 10.0);
        fan_seen |= sim.fanOn();
        if (!fan_seen)
            EXPECT_GE(sim.surfaceC(), prev - 1e-9) << "step " << i;
        prev = sim.surfaceC();
    }
    EXPECT_TRUE(fan_seen);
}

TEST(ThermalSimTest, SteadyStateIsLoadIndependentOfPath)
{
    // Same power, different step sizes -> same steady state.
    et::ThermalSimulator a(eh::DeviceId::kMovidius);
    et::ThermalSimulator b(eh::DeviceId::kMovidius);
    auto ta = a.runToSteadyState(1.52);
    for (int i = 0; i < 4000; ++i)
        b.step(1.52, 1.0);
    EXPECT_NEAR(ta.finalSurfaceC(), b.surfaceC(), 0.2);
}

TEST(ThermalSimTest, Tx2FanActivatesUnderLoad)
{
    et::ThermalSimulator sim(eh::DeviceId::kJetsonTx2);
    auto trace = sim.runToSteadyState(9.65);
    EXPECT_TRUE(trace.sawEvent(et::ThermalEvent::kFanOn));
    EXPECT_TRUE(sim.fanOn());
    // With the fan, the surface stays well below the no-fan value.
    const auto& p = et::thermalParams(eh::DeviceId::kJetsonTx2);
    EXPECT_LT(trace.finalSurfaceC(),
              25.0 + 9.65 * p.rHeatsinkAmbient);
}

TEST(ThermalSimTest, NanoFanAlsoActivates)
{
    et::ThermalSimulator sim(eh::DeviceId::kJetsonNano);
    auto trace = sim.runToSteadyState(4.58);
    EXPECT_TRUE(trace.sawEvent(et::ThermalEvent::kFanOn));
}

TEST(ThermalSimTest, RpiThrottlesBeforeShutdown)
{
    et::ThermalSimulator sim(eh::DeviceId::kRpi3);
    auto trace = sim.runToSteadyState(2.73);
    ASSERT_TRUE(trace.sawEvent(et::ThermalEvent::kThrottleOn));
    ASSERT_TRUE(trace.sawEvent(et::ThermalEvent::kShutdown));
    double throttle_at = -1.0, shutdown_at = -1.0;
    for (const auto& e : trace.events) {
        if (e.event == et::ThermalEvent::kThrottleOn &&
            throttle_at < 0.0)
            throttle_at = e.timeS;
        if (e.event == et::ThermalEvent::kShutdown)
            shutdown_at = e.timeS;
    }
    EXPECT_LT(throttle_at, shutdown_at);
    EXPECT_DOUBLE_EQ(sim.slowdownFactor(), 1.0) << "off after death";
}

TEST(ThermalSimTest, ThrottleHysteresisReleases)
{
    et::ThermalSimulator sim(eh::DeviceId::kRpi3);
    // Heat just past the throttle point, then idle down.
    while (!sim.throttled() && !sim.shutDown())
        sim.step(2.73, 5.0);
    ASSERT_TRUE(sim.throttled());
    EXPECT_GT(sim.slowdownFactor(), 1.0);
    auto trace = sim.simulate([](double) { return 0.5; }, 3600.0,
                              5.0);
    EXPECT_TRUE(trace.sawEvent(et::ThermalEvent::kThrottleOff));
    EXPECT_FALSE(sim.throttled());
}

TEST(ThermalSimTest, FannedDevicesNeverThrottle)
{
    for (auto d : {eh::DeviceId::kJetsonTx2,
                   eh::DeviceId::kJetsonNano}) {
        et::ThermalSimulator sim(d);
        auto trace = sim.runToSteadyState(
            eh::deviceSpec(d).averagePowerW);
        EXPECT_FALSE(trace.sawEvent(et::ThermalEvent::kThrottleOn))
            << eh::deviceName(d);
    }
}

TEST(ThermalSimTest, RpiShutsDownUnderSustainedLoad)
{
    // Fig. 14's "Device Shutdown" annotation on the RPi.
    et::ThermalSimulator sim(eh::DeviceId::kRpi3);
    auto trace = sim.runToSteadyState(2.73);
    EXPECT_TRUE(trace.sawEvent(et::ThermalEvent::kShutdown));
    EXPECT_TRUE(sim.shutDown());
    // After shutdown the device cools back toward ambient.
    const double at_shutdown = trace.events.front().timeS;
    EXPECT_GT(at_shutdown, 0.0);
}

TEST(ThermalSimTest, MovidiusShowsSmallestTemperatureRise)
{
    // Fig. 14: Movidius has the lowest variation despite no fan.
    double movidius_rise = 0.0;
    double max_other_rise = 0.0;
    for (auto d : {eh::DeviceId::kRpi3, eh::DeviceId::kJetsonTx2,
                   eh::DeviceId::kJetsonNano, eh::DeviceId::kEdgeTpu,
                   eh::DeviceId::kMovidius}) {
        et::ThermalSimulator sim(d);
        const double idle = sim.surfaceC();
        const double load = eh::deviceSpec(d).averagePowerW;
        // Compare pre-shutdown peaks.
        auto trace = sim.simulate([load](double) { return load; },
                                  600.0, 5.0);
        double peak = idle;
        for (double t : trace.surfaceC)
            peak = std::max(peak, t);
        const double rise = peak - idle;
        if (d == eh::DeviceId::kMovidius)
            movidius_rise = rise;
        else
            max_other_rise = std::max(max_other_rise, rise);
    }
    EXPECT_LT(movidius_rise, max_other_rise);
    EXPECT_LT(movidius_rise, 3.0);
}

TEST(ThermalSimTest, ShutdownCutsPower)
{
    et::ThermalSimulator sim(eh::DeviceId::kRpi3);
    auto trace = sim.simulate([](double) { return 2.73; }, 3600.0,
                              10.0);
    ASSERT_TRUE(trace.sawEvent(et::ThermalEvent::kShutdown));
    // Final temperature must be below the peak (device cooled off).
    double peak = 0.0;
    for (double t : trace.surfaceC)
        peak = std::max(peak, t);
    EXPECT_LT(trace.finalSurfaceC(), peak - 1.0);
}

TEST(ThermalSimTest, FanHysteresisEmitsOffEvent)
{
    et::ThermalSimulator sim(eh::DeviceId::kJetsonTx2);
    // Heat up under load, then idle down.
    auto heat = sim.simulate([](double) { return 9.65; }, 1200.0, 5.0);
    ASSERT_TRUE(heat.sawEvent(et::ThermalEvent::kFanOn));
    auto cool = sim.simulate([](double) { return 1.9; }, 3600.0, 5.0);
    EXPECT_TRUE(cool.sawEvent(et::ThermalEvent::kFanOff));
}

TEST(ThermalSimTest, InvalidStepArgumentsThrow)
{
    et::ThermalSimulator sim(eh::DeviceId::kJetsonNano);
    EXPECT_THROW(sim.step(1.0, 0.0), edgebench::InvalidArgumentError);
    EXPECT_THROW(sim.step(-1.0, 1.0), edgebench::InvalidArgumentError);
}
