/**
 * @file
 * Tests for the event-driven pipeline simulator: analytic agreement
 * under an ideal network, measurable degradation under loss and
 * contention, determinism, and frame accounting.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <string>

#include "edgebench/core/common.hh"
#include "edgebench/distrib/pipeline_sim.hh"
#include "edgebench/models/zoo.hh"
#include "edgebench/obs/trace.hh"

namespace ed = edgebench::distrib;
namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;
namespace eo = edgebench::obs;

namespace
{

ef::CompiledModel
mobilenetOn(eh::DeviceId dev)
{
    return ef::framework(ef::FrameworkId::kTensorFlow)
        .compile(em::buildMobileNetV1(), dev);
}

ed::NetworkConfig
idealNet(const ed::LinkModel& link)
{
    ed::NetworkConfig net;
    net.link = ed::linkSpec(link);
    return net;
}

ed::PipelineSimConfig
closedLoop(std::int64_t frames = 400)
{
    ed::PipelineSimConfig cfg;
    cfg.frames = frames;
    cfg.queueCapacity = 8;
    return cfg;
}

/** Byte-comparable rendering of a trace (events + lane names). */
std::string
renderTrace(const eo::Tracer& t)
{
    std::ostringstream os;
    os.precision(17);
    for (const auto& [lane, label] : t.laneNames())
        os << "lane " << lane << '=' << label << '\n';
    for (const auto& e : t.events()) {
        os << e.name << '|' << e.category << '|'
           << static_cast<int>(e.kind) << '|' << e.startUs << '|'
           << e.durUs << '|' << e.lane << '|' << e.depth;
        for (const auto& a : e.args)
            os << '|' << a.key << '='
               << (a.numeric ? std::to_string(a.number) : a.text);
        os << '\n';
    }
    return os.str();
}

} // namespace

TEST(PipelineSimTest, ReproducesAnalyticThroughputOnIdealNetwork)
{
    // The acceptance bar for the simulator: over a lossless,
    // jitterless switched LAN with backpressure, the measured
    // steady-state rate matches the plan's closed form within 1%.
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    for (int k : {1, 2, 4}) {
        const auto plan =
            ed::pipelinePartition(m, ed::lanLink(), k);
        const auto rep = ed::simulatePipeline(
            plan, m, idealNet(ed::lanLink()), closedLoop());
        ASSERT_GT(plan.throughputHz, 0.0);
        EXPECT_NEAR(rep.throughputHz, plan.throughputHz,
                    0.01 * plan.throughputHz)
            << "k=" << k;
        EXPECT_EQ(rep.completed, rep.offered);
        EXPECT_EQ(rep.dropped, 0);
    }
}

TEST(PipelineSimTest, BackpressureNeverOverflowsAQueue)
{
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::wifiLink(), 4);
    ed::PipelineSimConfig cfg = closedLoop();
    cfg.queueCapacity = 2; // tight queues stress the reservations
    const auto rep = ed::simulatePipeline(
        plan, m, idealNet(ed::wifiLink()), cfg);
    EXPECT_EQ(rep.dropped, 0);
    EXPECT_EQ(rep.completed, rep.offered);
    for (const auto& s : rep.stages) {
        EXPECT_EQ(s.queueDrops, 0);
        EXPECT_LE(s.peakQueueDepth, 2.0);
    }
}

TEST(PipelineSimTest, LossDegradesThroughputOnATransferBoundLink)
{
    // Over WiFi the k=4 plan's transfers are a large share of the
    // period, so 5% per-attempt loss (retransmits included) costs
    // real throughput — the gap the closed form cannot see.
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::wifiLink(), 4);
    ASSERT_GE(plan.stageMs.size(), 2u);

    const auto clean = ed::simulatePipeline(
        plan, m, idealNet(ed::wifiLink()), closedLoop());
    auto lossy = idealNet(ed::wifiLink());
    lossy.link.lossRate = 0.05;
    const auto rep = ed::simulatePipeline(plan, m, lossy,
                                          closedLoop());
    EXPECT_LT(rep.throughputHz, 0.98 * clean.throughputHz);
    std::int64_t retransmits = 0;
    for (const auto& l : rep.links)
        retransmits += l.retransmits;
    EXPECT_GT(retransmits, 0);
    EXPECT_TRUE(rep.accountingConsistent());
}

TEST(PipelineSimTest, ExhaustedRetransmitsDropFrames)
{
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::wifiLink(), 4);
    auto lossy = idealNet(ed::wifiLink());
    lossy.link.lossRate = 0.05;
    lossy.retransmit.maxAttempts = 0;
    const auto rep = ed::simulatePipeline(plan, m, lossy,
                                          closedLoop());
    EXPECT_GT(rep.dropped, 0);
    EXPECT_LT(rep.completed, rep.offered);
    EXPECT_TRUE(rep.accountingConsistent());
    std::int64_t lost = 0;
    for (const auto& l : rep.links)
        lost += l.lostFrames;
    EXPECT_EQ(lost, rep.dropped);
}

TEST(PipelineSimTest, SharedMediumContentionDegradesThroughput)
{
    // One broadcast domain for all inter-stage hops: concurrent
    // transfers split the bandwidth and the pipeline slows down.
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::wifiLink(), 4);
    const auto clean = ed::simulatePipeline(
        plan, m, idealNet(ed::wifiLink()), closedLoop());
    auto shared = idealNet(ed::wifiLink());
    shared.medium = ed::MediumMode::kShared;
    const auto rep = ed::simulatePipeline(plan, m, shared,
                                          closedLoop());
    EXPECT_LT(rep.throughputHz, 0.95 * clean.throughputHz);
    EXPECT_EQ(rep.dropped, 0);
    EXPECT_EQ(rep.completed, rep.offered);
}

TEST(PipelineSimTest, TracesAreByteIdenticalForAFixedSeed)
{
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::wifiLink(), 3);
    auto noisy = idealNet(ed::wifiLink());
    noisy.link.lossRate = 0.05;
    noisy.link.jitter = 0.2;

    auto run = [&](std::uint64_t seed, eo::Tracer* tracer) {
        ed::PipelineSimConfig cfg = closedLoop(120);
        cfg.serviceJitter = 0.1;
        cfg.seed = seed;
        cfg.tracer = tracer;
        return ed::simulatePipeline(plan, m, noisy, cfg);
    };

    eo::Tracer ta, tb;
    const auto ra = run(17, &ta);
    const auto rb = run(17, &tb);
    EXPECT_DOUBLE_EQ(ra.throughputHz, rb.throughputHz);
    EXPECT_DOUBLE_EQ(ra.p99Ms, rb.p99Ms);
    EXPECT_EQ(ra.completed, rb.completed);
    EXPECT_EQ(renderTrace(ta), renderTrace(tb));

    // A different seed must actually change the stochastic run.
    eo::Tracer tc;
    const auto rc = run(18, &tc);
    EXPECT_NE(renderTrace(ta), renderTrace(tc));
    (void)rc;
}

TEST(PipelineSimTest, TracerClaimsPerStageAndPerLinkLanes)
{
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::lanLink(), 2);
    ASSERT_EQ(plan.stageMs.size(), 2u);
    eo::Tracer tracer;
    ed::PipelineSimConfig cfg = closedLoop(20);
    cfg.tracer = &tracer;
    (void)ed::simulatePipeline(plan, m, idealNet(ed::lanLink()),
                               cfg);
    if (!eo::kEnabledAtBuild)
        GTEST_SKIP() << "tracing compiled out";
    // Lane 0 plus one lane per stage and per link, all labeled.
    ASSERT_EQ(tracer.laneNames().size(), 4u);
    EXPECT_EQ(tracer.laneNames().at(0), "pipeline");
    EXPECT_NE(tracer.laneNames().at(1).find("stage 0"),
              std::string::npos);
    EXPECT_NE(tracer.laneNames().at(3).find("link 0->1"),
              std::string::npos);
    EXPECT_FALSE(tracer.empty());
}

TEST(PipelineSimTest, OpenLoopOverrunFollowsDropPolicy)
{
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::lanLink(), 2);
    ed::PipelineSimConfig cfg = closedLoop(200);
    cfg.sourceHz = 3.0 * plan.throughputHz; // camera outruns the line
    cfg.dropOnFull = true;
    cfg.dropPolicy = edgebench::serving::DropPolicy::kRejectNew;
    const auto rej = ed::simulatePipeline(
        plan, m, idealNet(ed::lanLink()), cfg);
    EXPECT_EQ(rej.offered, 200);
    EXPECT_GT(rej.dropped, 0);
    EXPECT_TRUE(rej.accountingConsistent());

    cfg.dropPolicy = edgebench::serving::DropPolicy::kDropOldest;
    const auto old = ed::simulatePipeline(
        plan, m, idealNet(ed::lanLink()), cfg);
    EXPECT_GT(old.dropped, 0);
    EXPECT_GT(old.completed, 0);
    EXPECT_TRUE(old.accountingConsistent());
}

TEST(PipelineSimTest, HeterogeneousStagesRunOnTheirDevices)
{
    const auto rpi = mobilenetOn(eh::DeviceId::kRpi3);
    const auto tx2 = mobilenetOn(eh::DeviceId::kJetsonTx2);
    const std::vector<const ef::CompiledModel*> devs{&tx2, &rpi};
    const auto plan = ed::pipelinePartition(devs, ed::lanLink());
    ASSERT_EQ(plan.stageDevices.size(), plan.stageMs.size());
    const auto rep = ed::simulatePipeline(
        plan, devs, idealNet(ed::lanLink()), closedLoop(200));
    ASSERT_EQ(rep.stages.size(), plan.stageMs.size());
    for (std::size_t s = 0; s < rep.stages.size(); ++s)
        EXPECT_EQ(rep.stages[s].device, plan.stageDevices[s]);
    EXPECT_EQ(rep.completed, rep.offered);
    EXPECT_NEAR(rep.throughputHz, plan.throughputHz,
                0.01 * plan.throughputHz);
}

TEST(PipelineSimTest, ThermalWalkersKeepTheEnergyIntegral)
{
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::lanLink(), 2);
    ed::PipelineSimConfig cfg = closedLoop(100);
    cfg.enableThermal = true;
    const auto rep = ed::simulatePipeline(
        plan, m, idealNet(ed::lanLink()), cfg);
    EXPECT_EQ(rep.completed, 100);
    for (const auto& s : rep.stages) {
        EXPECT_GT(s.energyJ, 0.0);
        EXPECT_GT(s.utilization, 0.0);
        EXPECT_LE(s.utilization, 1.0 + 1e-9);
    }
}

TEST(PipelineSimTest, LatencyPercentilesAreOrdered)
{
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::lanLink(), 4);
    const auto rep = ed::simulatePipeline(
        plan, m, idealNet(ed::lanLink()), closedLoop(200));
    EXPECT_GT(rep.p50Ms, 0.0);
    EXPECT_LE(rep.p50Ms, rep.p95Ms);
    EXPECT_LE(rep.p95Ms, rep.p99Ms);
    EXPECT_LE(rep.p99Ms, rep.maxMs);
    // A frame can never beat the plan's single-frame latency.
    EXPECT_GE(rep.p50Ms, plan.latencyMs * 0.999);
}

TEST(PipelineSimTest, ZeroFramesIsAWellFormedNoOp)
{
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::lanLink(), 2);
    const auto rep = ed::simulatePipeline(
        plan, m, idealNet(ed::lanLink()), closedLoop(0));
    EXPECT_EQ(rep.offered, 0);
    EXPECT_EQ(rep.completed, 0);
    EXPECT_EQ(rep.dropped, 0);
    EXPECT_EQ(rep.throughputHz, 0.0);
}

TEST(PipelineSimTest, RejectsMalformedPlansAndConfigs)
{
    using edgebench::InvalidArgumentError;
    const auto m = mobilenetOn(eh::DeviceId::kRpi3);
    const auto plan = ed::pipelinePartition(m, ed::lanLink(), 2);

    ed::PipelineResult broken = plan;
    broken.transferMs.clear(); // no longer pairs the stages
    EXPECT_THROW(ed::simulatePipeline(broken, m,
                                      idealNet(ed::lanLink()),
                                      closedLoop()),
                 InvalidArgumentError);

    ed::PipelineSimConfig bad = closedLoop();
    bad.queueCapacity = 0;
    EXPECT_THROW(ed::simulatePipeline(plan, m,
                                      idealNet(ed::lanLink()), bad),
                 InvalidArgumentError);

    const std::vector<const ef::CompiledModel*> too_few{&m};
    EXPECT_THROW(ed::simulatePipeline(plan, too_few,
                                      idealNet(ed::lanLink()),
                                      closedLoop()),
                 InvalidArgumentError);
}
