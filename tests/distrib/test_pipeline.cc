/**
 * @file
 * Tests for pipelined model parallelism across identical edge
 * devices (the paper authors' collaborative-IoT distribution line).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/distrib/partition.hh"
#include "edgebench/graph/graph.hh"
#include "edgebench/models/zoo.hh"

namespace ed = edgebench::distrib;
namespace eg = edgebench::graph;
namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;

namespace
{

ef::CompiledModel
onRpi(em::ModelId m)
{
    return ef::framework(ef::FrameworkId::kTensorFlow)
        .compile(em::buildModel(m), eh::DeviceId::kRpi3);
}

} // namespace

TEST(PipelineTest, SingleDeviceMatchesMonolithicWork)
{
    const auto m = onRpi(em::ModelId::kResNet18);
    const auto r = ed::pipelinePartition(m, ed::lanLink(), 1);
    EXPECT_EQ(r.devices, 1);
    ASSERT_EQ(r.stageMs.size(), 1u);
    EXPECT_TRUE(r.transferMs.empty());
    // One stage == total per-node work (per-inference overhead is
    // added to latency).
    EXPECT_NEAR(r.latencyMs,
                r.stageMs[0] + m.profile.perInferenceOverheadMs,
                1e-9);
}

TEST(PipelineTest, ThroughputScalesWithDevices)
{
    const auto m = onRpi(em::ModelId::kResNet18);
    double prev = 0.0;
    for (int k : {1, 2, 4}) {
        const auto r = ed::pipelinePartition(m, ed::lanLink(), k);
        EXPECT_GE(r.throughputHz, prev * 0.999) << k;
        EXPECT_LE(static_cast<int>(r.stageMs.size()), k);
        prev = r.throughputHz;
    }
    // Four RPis over a LAN should get meaningful speedup.
    const auto r1 = ed::pipelinePartition(m, ed::lanLink(), 1);
    const auto r4 = ed::pipelinePartition(m, ed::lanLink(), 4);
    EXPECT_GT(r4.throughputHz, 2.0 * r1.throughputHz);
}

TEST(PipelineTest, BottleneckIsMaxOfStagesAndTransfers)
{
    const auto m = onRpi(em::ModelId::kResNet50);
    const auto r = ed::pipelinePartition(m, ed::wifiLink(), 3);
    double expected = 0.0;
    for (double s : r.stageMs)
        expected = std::max(expected, s);
    for (double t : r.transferMs)
        expected = std::max(expected, t);
    EXPECT_DOUBLE_EQ(r.bottleneckMs, expected);
    EXPECT_NEAR(r.throughputHz, 1e3 / r.bottleneckMs, 1e-9);
}

TEST(PipelineTest, StagesAreBalanced)
{
    const auto m = onRpi(em::ModelId::kResNet18);
    const auto r = ed::pipelinePartition(m, ed::lanLink(), 4);
    if (r.stageMs.size() >= 2) {
        double total = 0.0;
        for (double s : r.stageMs)
            total += s;
        // No stage exceeds the bound the search settled on, and the
        // bottleneck stage is within 3x of the ideal equal split.
        EXPECT_LT(r.bottleneckMs,
                  3.0 * total /
                      static_cast<double>(r.stageMs.size()));
    }
}

TEST(PipelineTest, SlowLinkLimitsParallelismGains)
{
    const auto m = onRpi(em::ModelId::kResNet18);
    const auto lan = ed::pipelinePartition(m, ed::lanLink(), 4);
    ed::LinkModel crawl{0.05, 50.0, 0.5};
    const auto slow = ed::pipelinePartition(m, crawl, 4);
    EXPECT_LE(slow.throughputHz, lan.throughputHz);
    // With a crawling link the partitioner concentrates work instead
    // of paying transfers it cannot afford.
    EXPECT_LE(slow.transferMs.size(), lan.transferMs.size());
}

TEST(PipelineTest, LatencyNeverBelowMonolithic)
{
    // Pipelining buys throughput, not single-frame latency.
    const auto m = onRpi(em::ModelId::kResNet50);
    const auto r1 = ed::pipelinePartition(m, ed::lanLink(), 1);
    const auto r4 = ed::pipelinePartition(m, ed::lanLink(), 4);
    EXPECT_GE(r4.latencyMs, r1.latencyMs * 0.999);
}

TEST(PipelineTest, RejectsZeroDevices)
{
    const auto m = onRpi(em::ModelId::kCifarNet);
    EXPECT_THROW(ed::pipelinePartition(m, ed::lanLink(), 0),
                 edgebench::InvalidArgumentError);
}

TEST(PipelineTest, ZeroWorkPlanReportsZeroHzNotInfinity)
{
    // Regression: a plan whose bottleneck is 0 ms (a free graph over
    // a zero-latency link) used to divide to +inf Hz. The contract is
    // a defined 0 Hz with finite fields throughout.
    eg::Graph g;
    auto in = g.addInput({1, 4});
    g.markOutput(in);
    const auto m = ef::framework(ef::FrameworkId::kTensorFlow)
                       .compile(g, eh::DeviceId::kRpi3);
    ed::LinkModel free_link{1.0, 0.0, 0.0};
    const auto r = ed::pipelinePartition(m, free_link, 1);
    EXPECT_TRUE(std::isfinite(r.throughputHz));
    EXPECT_EQ(r.bottleneckMs, 0.0);
    EXPECT_EQ(r.throughputHz, 0.0);
}

TEST(PipelineTest, SingleDeviceIgnoresTheLinkEntirely)
{
    // Regression: the binary search used to floor its lower bound at
    // link.uploadMs(0) even for one device, although a single-device
    // pipeline has no transfers. A link with absurd latency must
    // produce exactly the LAN result.
    const auto m = onRpi(em::ModelId::kResNet18);
    ed::LinkModel stratospheric{1.0, 1e9, 0.8};
    const auto slow = ed::pipelinePartition(m, stratospheric, 1);
    const auto lan = ed::pipelinePartition(m, ed::lanLink(), 1);
    ASSERT_EQ(slow.stageMs.size(), 1u);
    EXPECT_TRUE(slow.transferMs.empty());
    EXPECT_DOUBLE_EQ(slow.bottleneckMs, lan.bottleneckMs);
    EXPECT_DOUBLE_EQ(slow.throughputHz, lan.throughputHz);
    EXPECT_DOUBLE_EQ(slow.latencyMs, lan.latencyMs);
}

TEST(PipelineTest, SearchBoundsStayOrderedUnderHugeLatency)
{
    // Regression: with several devices and a latency floor above the
    // total work the search interval used to invert (hi < lo). The
    // well-formed search concentrates everything on one device and
    // still reports a consistent bottleneck.
    const auto m = onRpi(em::ModelId::kCifarNet);
    ed::LinkModel stratospheric{1.0, 1e9, 0.8};
    const auto r = ed::pipelinePartition(m, stratospheric, 4);
    ASSERT_EQ(r.stageMs.size(), 1u); // transfers are unaffordable
    EXPECT_TRUE(std::isfinite(r.bottleneckMs));
    EXPECT_DOUBLE_EQ(r.bottleneckMs, r.stageMs[0]);
    EXPECT_NEAR(r.throughputHz, 1e3 / r.bottleneckMs, 1e-9);
}

TEST(PipelineTest, HeterogeneousListPricesStagesPerDevice)
{
    const auto rpi = onRpi(em::ModelId::kResNet18);
    const auto tx2 =
        ef::framework(ef::FrameworkId::kTensorFlow)
            .compile(em::buildModel(em::ModelId::kResNet18),
                     eh::DeviceId::kJetsonTx2);
    const std::vector<const ef::CompiledModel*> devs{&tx2, &rpi};
    const auto r = ed::pipelinePartition(devs, ed::lanLink());
    ASSERT_EQ(r.stageDevices.size(), r.stageMs.size());
    EXPECT_EQ(r.stageDevices.front(), eh::DeviceId::kJetsonTx2);
    if (r.stageDevices.size() == 2) {
        EXPECT_EQ(r.stageDevices[1], eh::DeviceId::kRpi3);
    }
    // The recomputed invariant holds for heterogeneous lists too.
    double expected = 0.0;
    for (double s : r.stageMs)
        expected = std::max(expected, s);
    for (double t : r.transferMs)
        expected = std::max(expected, t);
    EXPECT_DOUBLE_EQ(r.bottleneckMs, expected);
    // A TX2 front end beats two RPis: the fast device absorbs more
    // of the network than an RPi could under the same bottleneck.
    const auto homog = ed::pipelinePartition(rpi, ed::lanLink(), 2);
    EXPECT_GE(r.throughputHz, homog.throughputHz * 0.999);
}

TEST(PipelineTest, HeterogeneousValidatesItsInputs)
{
    const auto a = onRpi(em::ModelId::kResNet18);
    const auto b = onRpi(em::ModelId::kCifarNet);
    EXPECT_THROW(
        ed::pipelinePartition(
            std::vector<const ef::CompiledModel*>{}, ed::lanLink()),
        edgebench::InvalidArgumentError);
    EXPECT_THROW(ed::pipelinePartition(
                     std::vector<const ef::CompiledModel*>{&a,
                                                           nullptr},
                     ed::lanLink()),
                 edgebench::InvalidArgumentError);
    // Different topologies cannot share one pipeline.
    EXPECT_THROW(ed::pipelinePartition(
                     std::vector<const ef::CompiledModel*>{&a, &b},
                     ed::lanLink()),
                 edgebench::InvalidArgumentError);
}

TEST(PipelineTest, PlanCarriesTransferBytesForTheSimulator)
{
    const auto m = onRpi(em::ModelId::kResNet18);
    const auto r = ed::pipelinePartition(m, ed::lanLink(), 4);
    ASSERT_EQ(r.transferBytes.size(), r.transferMs.size());
    ASSERT_EQ(r.boundaries.size(), r.transferMs.size());
    ASSERT_EQ(r.stageDevices.size(), r.stageMs.size());
    ed::LinkModel link = ed::lanLink();
    for (std::size_t i = 0; i < r.transferBytes.size(); ++i) {
        EXPECT_GT(r.transferBytes[i], 0.0);
        EXPECT_NEAR(r.transferMs[i],
                    link.uploadMs(r.transferBytes[i]), 1e-9);
    }
}
