/**
 * @file
 * Tests for pipelined model parallelism across identical edge
 * devices (the paper authors' collaborative-IoT distribution line).
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/distrib/partition.hh"
#include "edgebench/models/zoo.hh"

namespace ed = edgebench::distrib;
namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;

namespace
{

ef::CompiledModel
onRpi(em::ModelId m)
{
    return ef::framework(ef::FrameworkId::kTensorFlow)
        .compile(em::buildModel(m), eh::DeviceId::kRpi3);
}

} // namespace

TEST(PipelineTest, SingleDeviceMatchesMonolithicWork)
{
    const auto m = onRpi(em::ModelId::kResNet18);
    const auto r = ed::pipelinePartition(m, ed::lanLink(), 1);
    EXPECT_EQ(r.devices, 1);
    ASSERT_EQ(r.stageMs.size(), 1u);
    EXPECT_TRUE(r.transferMs.empty());
    // One stage == total per-node work (per-inference overhead is
    // added to latency).
    EXPECT_NEAR(r.latencyMs,
                r.stageMs[0] + m.profile.perInferenceOverheadMs,
                1e-9);
}

TEST(PipelineTest, ThroughputScalesWithDevices)
{
    const auto m = onRpi(em::ModelId::kResNet18);
    double prev = 0.0;
    for (int k : {1, 2, 4}) {
        const auto r = ed::pipelinePartition(m, ed::lanLink(), k);
        EXPECT_GE(r.throughputHz, prev * 0.999) << k;
        EXPECT_LE(static_cast<int>(r.stageMs.size()), k);
        prev = r.throughputHz;
    }
    // Four RPis over a LAN should get meaningful speedup.
    const auto r1 = ed::pipelinePartition(m, ed::lanLink(), 1);
    const auto r4 = ed::pipelinePartition(m, ed::lanLink(), 4);
    EXPECT_GT(r4.throughputHz, 2.0 * r1.throughputHz);
}

TEST(PipelineTest, BottleneckIsMaxOfStagesAndTransfers)
{
    const auto m = onRpi(em::ModelId::kResNet50);
    const auto r = ed::pipelinePartition(m, ed::wifiLink(), 3);
    double expected = 0.0;
    for (double s : r.stageMs)
        expected = std::max(expected, s);
    for (double t : r.transferMs)
        expected = std::max(expected, t);
    EXPECT_DOUBLE_EQ(r.bottleneckMs, expected);
    EXPECT_NEAR(r.throughputHz, 1e3 / r.bottleneckMs, 1e-9);
}

TEST(PipelineTest, StagesAreBalanced)
{
    const auto m = onRpi(em::ModelId::kResNet18);
    const auto r = ed::pipelinePartition(m, ed::lanLink(), 4);
    if (r.stageMs.size() >= 2) {
        double total = 0.0;
        for (double s : r.stageMs)
            total += s;
        // No stage exceeds the bound the search settled on, and the
        // bottleneck stage is within 3x of the ideal equal split.
        EXPECT_LT(r.bottleneckMs,
                  3.0 * total /
                      static_cast<double>(r.stageMs.size()));
    }
}

TEST(PipelineTest, SlowLinkLimitsParallelismGains)
{
    const auto m = onRpi(em::ModelId::kResNet18);
    const auto lan = ed::pipelinePartition(m, ed::lanLink(), 4);
    ed::LinkModel crawl{0.05, 50.0, 0.5};
    const auto slow = ed::pipelinePartition(m, crawl, 4);
    EXPECT_LE(slow.throughputHz, lan.throughputHz);
    // With a crawling link the partitioner concentrates work instead
    // of paying transfers it cannot afford.
    EXPECT_LE(slow.transferMs.size(), lan.transferMs.size());
}

TEST(PipelineTest, LatencyNeverBelowMonolithic)
{
    // Pipelining buys throughput, not single-frame latency.
    const auto m = onRpi(em::ModelId::kResNet50);
    const auto r1 = ed::pipelinePartition(m, ed::lanLink(), 1);
    const auto r4 = ed::pipelinePartition(m, ed::lanLink(), 4);
    EXPECT_GE(r4.latencyMs, r1.latencyMs * 0.999);
}

TEST(PipelineTest, RejectsZeroDevices)
{
    const auto m = onRpi(em::ModelId::kCifarNet);
    EXPECT_THROW(ed::pipelinePartition(m, ed::lanLink(), 0),
                 edgebench::InvalidArgumentError);
}
