/**
 * @file
 * Tests for the stochastic network model behind the pipeline
 * simulator: switched/shared media, loss with bounded retransmit,
 * jitter, and determinism.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/distrib/network.hh"

namespace ed = edgebench::distrib;

namespace
{

/** Drain everything: advance far past any plausible completion. */
std::vector<ed::Delivery>
drain(ed::NetworkModel& net, double until_ms = 1e9)
{
    return net.advanceTo(until_ms);
}

} // namespace

TEST(NetworkModelTest, SingleTransferMatchesAnalyticUpload)
{
    // 2 MB/s, 10 ms: shipping 2 MB costs 1000 + 10 ms — exactly the
    // closed-form LinkModel::uploadMs the partitioner prices with.
    ed::NetworkConfig cfg;
    cfg.link.bandwidthMBs = 2.0;
    cfg.link.latencyMs = 10.0;
    ed::NetworkModel net(cfg, 1, 42);
    net.submit(0, 2e6, 0.0);
    const auto out = drain(net);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_TRUE(out[0].delivered);
    EXPECT_EQ(out[0].attempts, 1);
    EXPECT_NEAR(out[0].doneMs, 1010.0, 1e-6);

    ed::LinkModel analytic{2.0, 10.0, 0.8};
    EXPECT_NEAR(out[0].doneMs, analytic.uploadMs(2e6), 1e-6);
}

TEST(NetworkModelTest, SwitchedLinkSerializesFifo)
{
    // Store-and-forward: the second frame waits for the first to
    // clear its cable, so back-to-back frames repeat at the analytic
    // period serialize + latency.
    ed::NetworkConfig cfg;
    cfg.link.bandwidthMBs = 10.0; // 1 MB = 100 ms serialize
    cfg.link.latencyMs = 5.0;
    ed::NetworkModel net(cfg, 1, 1);
    const auto a = net.submit(0, 1e6, 0.0);
    const auto b = net.submit(0, 1e6, 0.0);
    const auto out = drain(net);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].id, a);
    EXPECT_EQ(out[1].id, b);
    EXPECT_NEAR(out[0].doneMs, 105.0, 1e-6);
    EXPECT_NEAR(out[1].doneMs, 210.0, 1e-6);
}

TEST(NetworkModelTest, LinksAreIndependentWhenSwitched)
{
    ed::NetworkConfig cfg;
    cfg.link.bandwidthMBs = 10.0;
    cfg.link.latencyMs = 5.0;
    ed::NetworkModel net(cfg, 2, 1);
    net.submit(0, 1e6, 0.0);
    net.submit(1, 1e6, 0.0);
    const auto out = drain(net);
    ASSERT_EQ(out.size(), 2u);
    // Different cables: both frames land at the single-frame time.
    EXPECT_NEAR(out[0].doneMs, 105.0, 1e-6);
    EXPECT_NEAR(out[1].doneMs, 105.0, 1e-6);
}

TEST(NetworkModelTest, SharedMediumHalvesConcurrentRate)
{
    // Processor sharing: two equal frames on one broadcast domain
    // each drain at bandwidth/2, so both clear the medium at twice
    // the solo serialization time, then pay the latency off-medium.
    ed::NetworkConfig cfg;
    cfg.medium = ed::MediumMode::kShared;
    cfg.link.bandwidthMBs = 10.0; // 1 MB = 100 ms solo
    cfg.link.latencyMs = 5.0;
    ed::NetworkModel net(cfg, 2, 1);
    net.submit(0, 1e6, 0.0);
    net.submit(1, 1e6, 0.0);
    const auto out = drain(net);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NEAR(out[0].doneMs, 205.0, 1e-6);
    EXPECT_NEAR(out[1].doneMs, 205.0, 1e-6);
}

TEST(NetworkModelTest, SharedMediumSoloTransferPaysNoPenalty)
{
    ed::NetworkConfig cfg;
    cfg.medium = ed::MediumMode::kShared;
    cfg.link.bandwidthMBs = 10.0;
    cfg.link.latencyMs = 5.0;
    ed::NetworkModel net(cfg, 1, 1);
    net.submit(0, 1e6, 0.0);
    const auto out = drain(net);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_NEAR(out[0].doneMs, 105.0, 1e-6);
}

TEST(NetworkModelTest, LossExhaustsBoundedRetransmits)
{
    // Near-certain loss: the frame burns its first try plus every
    // allowed re-send and is finally reported as dropped.
    ed::NetworkConfig cfg;
    cfg.link.lossRate = 0.999999;
    cfg.retransmit.maxAttempts = 3;
    cfg.retransmit.backoffMs = 10.0;
    ed::NetworkModel net(cfg, 1, 7);
    net.submit(0, 1e6, 0.0);
    const auto out = drain(net);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].delivered);
    EXPECT_EQ(out[0].attempts, 4); // first try + 3 re-sends
    EXPECT_EQ(net.stats()[0].retransmits, 3);
    EXPECT_EQ(net.stats()[0].drops, 1);
    // Each re-send pays serialization again plus its backoff.
    ed::LinkModel solo{50.0, 1.0, 0.8};
    EXPECT_GT(out[0].doneMs, 4.0 * solo.uploadMs(1e6));
}

TEST(NetworkModelTest, ZeroMaxAttemptsDropsOnFirstLoss)
{
    ed::NetworkConfig cfg;
    cfg.link.lossRate = 0.999999;
    cfg.retransmit.maxAttempts = 0;
    ed::NetworkModel net(cfg, 1, 7);
    net.submit(0, 1e6, 0.0);
    const auto out = drain(net);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_FALSE(out[0].delivered);
    EXPECT_EQ(out[0].attempts, 1);
    EXPECT_EQ(net.stats()[0].retransmits, 0);
}

TEST(NetworkModelTest, ModerateLossUsuallyDeliversWithRetries)
{
    ed::NetworkConfig cfg;
    cfg.link.lossRate = 0.3;
    cfg.retransmit.maxAttempts = 8;
    ed::NetworkModel net(cfg, 1, 11);
    for (int i = 0; i < 50; ++i)
        net.submit(0, 1e5, static_cast<double>(i));
    const auto out = drain(net);
    ASSERT_EQ(out.size(), 50u);
    std::int64_t delivered = 0;
    bool retried = false;
    for (const auto& d : out) {
        delivered += d.delivered ? 1 : 0;
        retried |= d.attempts > 1;
    }
    // P(drop) = 0.3^9 ~ 2e-5: all 50 land, several after retries.
    EXPECT_EQ(delivered, 50);
    EXPECT_TRUE(retried);
    EXPECT_GT(net.stats()[0].retransmits, 0);
}

TEST(NetworkModelTest, DeterministicForAFixedSeed)
{
    auto run = [](std::uint64_t seed) {
        ed::NetworkConfig cfg;
        cfg.link.lossRate = 0.2;
        cfg.link.jitter = 0.3;
        ed::NetworkModel net(cfg, 2, seed);
        for (int i = 0; i < 20; ++i)
            net.submit(i % 2, 2e5, 3.0 * i);
        return drain(net);
    };
    const auto a = run(99);
    const auto b = run(99);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].id, b[i].id);
        EXPECT_EQ(a[i].delivered, b[i].delivered);
        EXPECT_EQ(a[i].attempts, b[i].attempts);
        EXPECT_DOUBLE_EQ(a[i].doneMs, b[i].doneMs);
    }
    // A different seed perturbs the jittered timeline.
    const auto c = run(100);
    bool differs = c.size() != a.size();
    for (std::size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].doneMs != c[i].doneMs ||
            a[i].attempts != c[i].attempts;
    EXPECT_TRUE(differs);
}

TEST(NetworkModelTest, JitterPerturbsLatencyOnly)
{
    ed::NetworkConfig cfg;
    cfg.link.bandwidthMBs = 10.0;
    cfg.link.latencyMs = 5.0;
    cfg.link.jitter = 0.5;
    ed::NetworkModel net(cfg, 1, 3);
    for (int i = 0; i < 20; ++i)
        net.submit(0, 1e6, 1e3 * i); // well separated
    const auto out = drain(net);
    ASSERT_EQ(out.size(), 20u);
    bool varied = false;
    double prev = -1.0;
    for (const auto& d : out) {
        const double elapsed = d.doneMs - d.submittedMs;
        // Serialization is deterministic; latency is jittered but
        // clamped non-negative.
        EXPECT_GE(elapsed, 100.0 - 1e-9);
        if (prev >= 0.0 && std::abs(elapsed - prev) > 1e-9)
            varied = true;
        prev = elapsed;
    }
    EXPECT_TRUE(varied);
}

TEST(NetworkModelTest, InFlightTracksQueuedAndActive)
{
    ed::NetworkConfig cfg;
    cfg.link.bandwidthMBs = 10.0;
    ed::NetworkModel net(cfg, 1, 1);
    net.submit(0, 1e6, 0.0);
    net.submit(0, 1e6, 0.0);
    EXPECT_EQ(net.inFlight(0), 2);
    (void)drain(net);
    EXPECT_EQ(net.inFlight(0), 0);
}

TEST(NetworkModelTest, PerLinkOverridesApply)
{
    ed::NetworkConfig cfg;
    cfg.perLink.resize(2);
    cfg.perLink[0] = {10.0, 5.0, 0.0, 0.0, 0.8};
    cfg.perLink[1] = {1.0, 50.0, 0.0, 0.0, 0.8};
    ed::NetworkModel net(cfg, 2, 1);
    net.submit(0, 1e6, 0.0);
    net.submit(1, 1e6, 0.0);
    const auto out = drain(net);
    ASSERT_EQ(out.size(), 2u);
    EXPECT_NEAR(out[0].doneMs, 105.0, 1e-6);
    EXPECT_NEAR(out[1].doneMs, 1050.0, 1e-6);
}

TEST(NetworkModelTest, ValidatesConfiguration)
{
    using edgebench::InvalidArgumentError;
    {
        ed::NetworkConfig cfg;
        cfg.link.bandwidthMBs = 0.0;
        EXPECT_THROW(ed::NetworkModel(cfg, 1, 1),
                     InvalidArgumentError);
    }
    {
        ed::NetworkConfig cfg;
        cfg.link.lossRate = 1.0; // certain loss never terminates
        EXPECT_THROW(ed::NetworkModel(cfg, 1, 1),
                     InvalidArgumentError);
    }
    {
        ed::NetworkConfig cfg;
        cfg.perLink.resize(3); // 3 specs for 2 links
        EXPECT_THROW(ed::NetworkModel(cfg, 2, 1),
                     InvalidArgumentError);
    }
    {
        ed::NetworkConfig cfg;
        ed::NetworkModel net(cfg, 1, 1);
        EXPECT_THROW(net.submit(5, 1.0, 0.0), InvalidArgumentError);
        net.advanceTo(10.0);
        EXPECT_THROW(net.advanceTo(5.0), InvalidArgumentError);
        EXPECT_THROW(net.submit(0, 1.0, 5.0), InvalidArgumentError);
    }
}

TEST(NetworkModelTest, LinkSpecAdaptsAnalyticLinkModel)
{
    const auto s = ed::linkSpec(ed::wifiLink());
    EXPECT_DOUBLE_EQ(s.bandwidthMBs, ed::wifiLink().uplinkMBs);
    EXPECT_DOUBLE_EQ(s.latencyMs, ed::wifiLink().oneWayLatencyMs);
    EXPECT_DOUBLE_EQ(s.txPowerW, ed::wifiLink().txPowerW);
    EXPECT_EQ(s.lossRate, 0.0);
    EXPECT_EQ(s.jitter, 0.0);
}

TEST(NetworkModelTest, BusyTimeAndEnergyAccumulate)
{
    ed::NetworkConfig cfg;
    cfg.link.bandwidthMBs = 10.0;
    cfg.link.latencyMs = 0.0;
    cfg.link.txPowerW = 2.0;
    ed::NetworkModel net(cfg, 1, 1);
    net.submit(0, 1e6, 0.0);
    (void)drain(net);
    EXPECT_NEAR(net.stats()[0].busyMs, 100.0, 1e-6);
    EXPECT_NEAR(net.stats()[0].txEnergyMJ, 200.0, 1e-6);
}
