/**
 * @file
 * Tests for the cloud-edge partitioner (Neurosurgeon-style, paper
 * reference [88]).
 */

#include <gtest/gtest.h>

#include "edgebench/core/common.hh"
#include "edgebench/distrib/partition.hh"
#include "edgebench/models/zoo.hh"

namespace ed = edgebench::distrib;
namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;

namespace
{

ef::CompiledModel
compileOn(em::ModelId m, ef::FrameworkId fw, eh::DeviceId d)
{
    return ef::framework(fw).compile(em::buildModel(m), d);
}

ed::PartitionResult
run(em::ModelId m, const ed::LinkModel& link,
    eh::DeviceId edge_dev = eh::DeviceId::kRpi3)
{
    auto edge = compileOn(m, ef::FrameworkId::kPyTorch, edge_dev);
    auto cloud =
        compileOn(m, ef::FrameworkId::kPyTorch, eh::DeviceId::kTitanXp);
    return ed::partition(edge, cloud, link);
}

} // namespace

TEST(LinkModelTest, UploadTimeIsBandwidthPlusLatency)
{
    ed::LinkModel link{2.0, 10.0, 1.0}; // 2 MB/s, 10 ms
    EXPECT_NEAR(link.uploadMs(2e6), 1000.0 + 10.0, 1e-9);
    ed::LinkModel bad{0.0, 0.0, 0.0};
    EXPECT_THROW(bad.uploadMs(1.0),
                 edgebench::InvalidArgumentError);
}

TEST(LinkModelTest, PresetsAreOrdered)
{
    EXPECT_GT(ed::lanLink().uplinkMBs, ed::wifiLink().uplinkMBs);
    EXPECT_GT(ed::wifiLink().uplinkMBs, ed::lteLink().uplinkMBs);
}

TEST(PartitionTest, CandidatesIncludeBothExtremes)
{
    const auto r = run(em::ModelId::kResNet18, ed::wifiLink());
    ASSERT_GE(r.candidates.size(), 2u);
    // Cloud-only first, edge-only last.
    EXPECT_EQ(r.candidates.front().cutAfter, -1);
    EXPECT_EQ(r.candidates.back().boundaryName, "(edge only)");
    EXPECT_NEAR(r.candidates.back().totalMs, r.edgeOnlyMs, 1e-9);
    EXPECT_NEAR(r.candidates.front().totalMs, r.cloudOnlyMs, 1e-9);
}

TEST(PartitionTest, BestIsNoWorseThanExtremes)
{
    for (auto m : {em::ModelId::kResNet18, em::ModelId::kVggS224,
                   em::ModelId::kCifarNet}) {
        const auto r = run(m, ed::wifiLink());
        EXPECT_LE(r.best.totalMs, r.edgeOnlyMs + 1e-9);
        EXPECT_LE(r.best.totalMs, r.cloudOnlyMs + 1e-9);
    }
}

TEST(PartitionTest, FastLinkFavorsCloud)
{
    // With a very fast link and a slow edge device, offloading wins.
    ed::LinkModel fast{500.0, 0.2, 0.5};
    const auto r = run(em::ModelId::kResNet50, fast);
    EXPECT_LT(r.best.totalMs, r.edgeOnlyMs * 0.5);
    // Most of the work should sit on the cloud side.
    EXPECT_GT(r.best.cloudMs, r.best.edgeMs);
}

TEST(PartitionTest, SlowLinkFavorsEdge)
{
    // A dribbling link makes any transfer prohibitive for a compact
    // model on a capable edge device.
    ed::LinkModel slow{0.01, 200.0, 1.0};
    auto edge = compileOn(em::ModelId::kResNet18,
                          ef::FrameworkId::kTensorRt,
                          eh::DeviceId::kJetsonNano);
    auto cloud = compileOn(em::ModelId::kResNet18,
                           ef::FrameworkId::kPyTorch,
                           eh::DeviceId::kTitanXp);
    const auto r = ed::partition(edge, cloud, slow);
    EXPECT_NEAR(r.best.totalMs, r.edgeOnlyMs, 1e-9);
    EXPECT_EQ(r.best.boundaryName, "(edge only)");
}

TEST(PartitionTest, InteriorSplitCanBeatBothExtremes)
{
    // The Neurosurgeon result: a mid-network split can win when
    // activations shrink below the input size while the edge is too
    // slow to finish the job. VGG-S pools aggressively early.
    ed::LinkModel link{3.0, 5.0, 0.8};
    const auto r = run(em::ModelId::kVgg16, link);
    if (r.best.boundaryName != "(edge only)" &&
        r.best.cutAfter >= 0) {
        // Found an interior split: it must be strictly better.
        EXPECT_LT(r.best.totalMs,
                  std::min(r.edgeOnlyMs, r.cloudOnlyMs));
        EXPECT_GT(r.best.edgeMs, 0.0);
        EXPECT_GT(r.best.cloudMs, 0.0);
    } else {
        // Otherwise an extreme won; both costs must be consistent.
        EXPECT_LE(r.best.totalMs,
                  std::min(r.edgeOnlyMs, r.cloudOnlyMs) + 1e-9);
    }
}

TEST(PartitionTest, CrossingBytesMatchBoundaryTensor)
{
    const auto r = run(em::ModelId::kCifarNet, ed::wifiLink());
    for (const auto& c : r.candidates) {
        if (c.cutAfter < 0 || c.boundaryName == "(edge only)")
            continue;
        EXPECT_GT(c.crossingBytes, 0.0);
        EXPECT_GT(c.uploadMs, 0.0);
    }
}

TEST(PartitionTest, EnergyOptimumPrefersLessEdgeWork)
{
    // Minimizing edge energy never does more edge work than the
    // latency optimum on a fast link.
    ed::LinkModel fast{100.0, 1.0, 0.5};
    const auto r = run(em::ModelId::kResNet50, fast);
    EXPECT_LE(r.bestEnergy.edgeEnergyMJ,
              r.best.edgeEnergyMJ + 1e-9);
}

TEST(PartitionTest, ResidualNetworksStillHaveLinearCuts)
{
    // ResNet skip connections make many positions non-linear cuts,
    // but block boundaries remain valid.
    const auto r = run(em::ModelId::kResNet18, ed::wifiLink());
    std::int64_t interior = 0;
    for (const auto& c : r.candidates)
        if (c.cutAfter >= 0 && c.boundaryName != "(edge only)")
            ++interior;
    EXPECT_GT(interior, 5);
}
