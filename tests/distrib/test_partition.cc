/**
 * @file
 * Tests for the cloud-edge partitioner (Neurosurgeon-style, paper
 * reference [88]).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "edgebench/core/common.hh"
#include "edgebench/distrib/partition.hh"
#include "edgebench/graph/graph.hh"
#include "edgebench/models/zoo.hh"

namespace ed = edgebench::distrib;
namespace eg = edgebench::graph;
namespace ef = edgebench::frameworks;
namespace eh = edgebench::hw;
namespace em = edgebench::models;

namespace
{

ef::CompiledModel
compileOn(em::ModelId m, ef::FrameworkId fw, eh::DeviceId d)
{
    return ef::framework(fw).compile(em::buildModel(m), d);
}

ed::PartitionResult
run(em::ModelId m, const ed::LinkModel& link,
    eh::DeviceId edge_dev = eh::DeviceId::kRpi3)
{
    auto edge = compileOn(m, ef::FrameworkId::kPyTorch, edge_dev);
    auto cloud =
        compileOn(m, ef::FrameworkId::kPyTorch, eh::DeviceId::kTitanXp);
    return ed::partition(edge, cloud, link);
}

} // namespace

TEST(LinkModelTest, UploadTimeIsBandwidthPlusLatency)
{
    ed::LinkModel link{2.0, 10.0, 1.0}; // 2 MB/s, 10 ms
    EXPECT_NEAR(link.uploadMs(2e6), 1000.0 + 10.0, 1e-9);
    ed::LinkModel bad{0.0, 0.0, 0.0};
    EXPECT_THROW(bad.uploadMs(1.0),
                 edgebench::InvalidArgumentError);
}

TEST(LinkModelTest, PresetsAreOrdered)
{
    EXPECT_GT(ed::lanLink().uplinkMBs, ed::wifiLink().uplinkMBs);
    EXPECT_GT(ed::wifiLink().uplinkMBs, ed::lteLink().uplinkMBs);
}

TEST(PartitionTest, CandidatesIncludeBothExtremes)
{
    const auto r = run(em::ModelId::kResNet18, ed::wifiLink());
    ASSERT_GE(r.candidates.size(), 2u);
    // Cloud-only first, edge-only last.
    EXPECT_EQ(r.candidates.front().cutAfter, -1);
    EXPECT_EQ(r.candidates.back().boundaryName, "(edge only)");
    EXPECT_NEAR(r.candidates.back().totalMs, r.edgeOnlyMs, 1e-9);
    EXPECT_NEAR(r.candidates.front().totalMs, r.cloudOnlyMs, 1e-9);
}

TEST(PartitionTest, BestIsNoWorseThanExtremes)
{
    for (auto m : {em::ModelId::kResNet18, em::ModelId::kVggS224,
                   em::ModelId::kCifarNet}) {
        const auto r = run(m, ed::wifiLink());
        EXPECT_LE(r.best.totalMs, r.edgeOnlyMs + 1e-9);
        EXPECT_LE(r.best.totalMs, r.cloudOnlyMs + 1e-9);
    }
}

TEST(PartitionTest, FastLinkFavorsCloud)
{
    // With a very fast link and a slow edge device, offloading wins.
    ed::LinkModel fast{500.0, 0.2, 0.5};
    const auto r = run(em::ModelId::kResNet50, fast);
    EXPECT_LT(r.best.totalMs, r.edgeOnlyMs * 0.5);
    // Most of the work should sit on the cloud side.
    EXPECT_GT(r.best.cloudMs, r.best.edgeMs);
}

TEST(PartitionTest, SlowLinkFavorsEdge)
{
    // A dribbling link makes any transfer prohibitive for a compact
    // model on a capable edge device.
    ed::LinkModel slow{0.01, 200.0, 1.0};
    auto edge = compileOn(em::ModelId::kResNet18,
                          ef::FrameworkId::kTensorRt,
                          eh::DeviceId::kJetsonNano);
    auto cloud = compileOn(em::ModelId::kResNet18,
                           ef::FrameworkId::kPyTorch,
                           eh::DeviceId::kTitanXp);
    const auto r = ed::partition(edge, cloud, slow);
    EXPECT_NEAR(r.best.totalMs, r.edgeOnlyMs, 1e-9);
    EXPECT_EQ(r.best.boundaryName, "(edge only)");
}

TEST(PartitionTest, InteriorSplitCanBeatBothExtremes)
{
    // The Neurosurgeon result: a mid-network split can win when
    // activations shrink below the input size while the edge is too
    // slow to finish the job. VGG-S pools aggressively early.
    ed::LinkModel link{3.0, 5.0, 0.8};
    const auto r = run(em::ModelId::kVgg16, link);
    if (r.best.boundaryName != "(edge only)" &&
        r.best.cutAfter >= 0) {
        // Found an interior split: it must be strictly better.
        EXPECT_LT(r.best.totalMs,
                  std::min(r.edgeOnlyMs, r.cloudOnlyMs));
        EXPECT_GT(r.best.edgeMs, 0.0);
        EXPECT_GT(r.best.cloudMs, 0.0);
    } else {
        // Otherwise an extreme won; both costs must be consistent.
        EXPECT_LE(r.best.totalMs,
                  std::min(r.edgeOnlyMs, r.cloudOnlyMs) + 1e-9);
    }
}

TEST(PartitionTest, CrossingBytesMatchBoundaryTensor)
{
    const auto r = run(em::ModelId::kCifarNet, ed::wifiLink());
    for (const auto& c : r.candidates) {
        if (c.cutAfter < 0 || c.boundaryName == "(edge only)")
            continue;
        EXPECT_GT(c.crossingBytes, 0.0);
        EXPECT_GT(c.uploadMs, 0.0);
    }
}

TEST(PartitionTest, EnergyOptimumPrefersLessEdgeWork)
{
    // Minimizing edge energy never does more edge work than the
    // latency optimum on a fast link.
    ed::LinkModel fast{100.0, 1.0, 0.5};
    const auto r = run(em::ModelId::kResNet50, fast);
    EXPECT_LE(r.bestEnergy.edgeEnergyMJ,
              r.best.edgeEnergyMJ + 1e-9);
}

TEST(CutPointTest, ChainGraphCutsEverywhereButTheEnd)
{
    // in -> conv -> conv -> dense: every interior position is a
    // linear cut, and the node crossing each cut is the cut node
    // itself.
    eg::Graph g;
    auto in = g.addInput({1, 3, 8, 8});
    auto c1 = g.addConv2d(in, 4, 3, 3, 1, 1);
    auto c2 = g.addConv2d(c1, 4, 3, 3, 1, 1);
    auto fl = g.addFlatten(c2);
    auto fc = g.addDense(fl, 10);
    g.markOutput(fc);
    const auto cuts = ed::linearCutPoints(g);
    ASSERT_EQ(cuts.size(), 4u);
    for (std::size_t i = 0; i < cuts.size(); ++i) {
        EXPECT_EQ(cuts[i].cutAfter, static_cast<eg::NodeId>(i));
        EXPECT_EQ(cuts[i].crossing, cuts[i].cutAfter);
    }
}

TEST(CutPointTest, RejectsCutsWhereTwoTensorsCross)
{
    // A residual diamond: after the first branch node, both the trunk
    // tensor and the branch tensor would cross the boundary, so no
    // cut exists inside the diamond.
    eg::Graph g;
    auto in = g.addInput({1, 4, 8, 8});
    auto trunk = g.addConv2d(in, 4, 3, 3, 1, 1);       // node 1
    auto branch = g.addConv2d(trunk, 4, 3, 3, 1, 1);   // node 2
    auto branch2 = g.addConv2d(branch, 4, 3, 3, 1, 1); // node 3
    auto join = g.addAdd(trunk, branch2);              // node 4
    auto head = g.addActivation(join, eg::ActKind::kRelu);
    g.markOutput(head);

    const auto cuts = ed::linearCutPoints(g);
    std::vector<eg::NodeId> positions;
    for (const auto& c : cuts)
        positions.push_back(c.cutAfter);
    // Cuts exist before the diamond (after nodes 0 and 1) and at the
    // join (after node 4); inside it (after 2 or 3) two tensors
    // cross.
    EXPECT_NE(std::find(positions.begin(), positions.end(), 1),
              positions.end());
    EXPECT_EQ(std::find(positions.begin(), positions.end(), 2),
              positions.end());
    EXPECT_EQ(std::find(positions.begin(), positions.end(), 3),
              positions.end());
    EXPECT_NE(std::find(positions.begin(), positions.end(), 4),
              positions.end());
    // The cut after the trunk node reports the trunk as crossing.
    for (const auto& c : cuts) {
        if (c.cutAfter == 1) {
            EXPECT_EQ(c.crossing, trunk);
        }
    }
}

TEST(CutPointTest, NoCutAfterAGraphOutput)
{
    // An early output pins everything after it: positions at or past
    // the first output are rejected.
    eg::Graph g;
    auto in = g.addInput({1, 4, 8, 8});
    auto mid = g.addConv2d(in, 4, 3, 3, 1, 1);
    auto late = g.addConv2d(mid, 4, 3, 3, 1, 1);
    g.markOutput(mid);
    g.markOutput(late);
    for (const auto& c : ed::linearCutPoints(g))
        EXPECT_LT(c.cutAfter, mid);
}

TEST(CutPointTest, PartitionCandidatesComeFromTheSharedScan)
{
    // partition() and pipelinePartition() enumerate cuts through the
    // same helper: the candidate list is exactly the shared cuts plus
    // the two extremes.
    const auto edge = compileOn(em::ModelId::kResNet18,
                                ef::FrameworkId::kPyTorch,
                                eh::DeviceId::kRpi3);
    const auto cuts = ed::linearCutPoints(edge.graph);
    const auto r = run(em::ModelId::kResNet18, ed::wifiLink());
    ASSERT_EQ(r.candidates.size(), cuts.size() + 2);
    for (std::size_t i = 0; i < cuts.size(); ++i) {
        EXPECT_EQ(r.candidates[i + 1].cutAfter, cuts[i].cutAfter);
        EXPECT_EQ(r.candidates[i + 1].boundaryName,
                  edge.graph.node(cuts[i].crossing).name);
    }
}

TEST(PartitionTest, ResidualNetworksStillHaveLinearCuts)
{
    // ResNet skip connections make many positions non-linear cuts,
    // but block boundaries remain valid.
    const auto r = run(em::ModelId::kResNet18, ed::wifiLink());
    std::int64_t interior = 0;
    for (const auto& c : r.candidates)
        if (c.cutAfter >= 0 && c.boundaryName != "(edge only)")
            ++interior;
    EXPECT_GT(interior, 5);
}
