#include "edgebench/sysmodel/virtualization.hh"

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace sysmodel
{

std::string
environmentName(ExecEnvironment e)
{
    switch (e) {
      case ExecEnvironment::kBareMetal: return "Bare Metal";
      case ExecEnvironment::kDocker: return "Docker";
    }
    throw InternalError("environmentName: unknown environment");
}

const VirtualizationModel&
dockerModel()
{
    static const VirtualizationModel m{};
    return m;
}

double
environmentLatencyMs(const frameworks::CompiledModel& m,
                     ExecEnvironment env)
{
    const auto cost = m.latency();
    if (env == ExecEnvironment::kBareMetal)
        return cost.totalMs;

    const auto& v = dockerModel();
    const double kernel_ms = cost.totalMs - cost.overheadMs;
    return kernel_ms * v.overheadOnComputeTime +
        cost.overheadMs * v.overheadOnOverheadTime;
}

double
dockerSlowdown(const frameworks::CompiledModel& m)
{
    const double bare =
        environmentLatencyMs(m, ExecEnvironment::kBareMetal);
    const double docker =
        environmentLatencyMs(m, ExecEnvironment::kDocker);
    return docker / bare - 1.0;
}

} // namespace sysmodel
} // namespace edgebench
