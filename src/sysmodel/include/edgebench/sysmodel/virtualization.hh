/**
 * @file
 * Execution-environment (virtualization) model — paper Section VI-D,
 * Fig. 13.
 *
 * Docker adds overhead to syscall/IO-bound portions of a run (dispatch
 * and session entry) while raw compute runs at native speed; the
 * result is the paper's "almost negligible, within 5%" slowdown.
 */

#ifndef EDGEBENCH_SYSMODEL_VIRTUALIZATION_HH
#define EDGEBENCH_SYSMODEL_VIRTUALIZATION_HH

#include <string>

#include "edgebench/frameworks/framework.hh"

namespace edgebench
{
namespace sysmodel
{

/** Where the framework runs. */
enum class ExecEnvironment
{
    kBareMetal,
    kDocker,
};

/** Display name, "Bare Metal" / "Docker". */
std::string environmentName(ExecEnvironment e);

/** Overhead coefficients of a container runtime. */
struct VirtualizationModel
{
    /** Multiplier on dispatch/session (syscall-heavy) time. */
    double overheadOnOverheadTime = 1.035;
    /** Multiplier on kernel compute/memory time. */
    double overheadOnComputeTime = 1.004;
};

/** The Docker model used for Fig. 13. */
const VirtualizationModel& dockerModel();

/**
 * Latency of @p m in environment @p env, milliseconds. Bare metal
 * returns the roofline latency unchanged.
 */
double environmentLatencyMs(const frameworks::CompiledModel& m,
                            ExecEnvironment env);

/** Fractional slowdown of Docker vs bare metal (0.03 == 3%). */
double dockerSlowdown(const frameworks::CompiledModel& m);

} // namespace sysmodel
} // namespace edgebench

#endif // EDGEBENCH_SYSMODEL_VIRTUALIZATION_HH
