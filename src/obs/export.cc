#include "edgebench/obs/export.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <ostream>

namespace edgebench
{
namespace obs
{

namespace
{

/** JSON string escaping (control chars, quotes, backslash). */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Shortest-round-trip JSON number (JSON forbids NaN/Inf). */
std::string
jsonNumber(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    return buf;
}

void
writeArgsObject(const std::vector<TraceArg>& args, std::ostream& os)
{
    os << "{";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i)
            os << ",";
        os << "\"" << jsonEscape(args[i].key) << "\":";
        if (args[i].numeric)
            os << jsonNumber(args[i].number);
        else
            os << "\"" << jsonEscape(args[i].text) << "\"";
    }
    os << "}";
}

/** Replace CSV-hostile characters in a text field. */
std::string
csvField(std::string s)
{
    std::replace(s.begin(), s.end(), ',', ';');
    std::replace(s.begin(), s.end(), '\n', ' ');
    return s;
}

} // namespace

void
writeChromeTrace(const Tracer& tracer, std::ostream& os)
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    // Process-name metadata record, as chrome://tracing expects.
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"process_name\","
       << "\"args\":{\"name\":\""
       << jsonEscape(tracer.processName()) << "\"}}";
    // Lane labels become thread names (lane n renders as tid n+1).
    for (const auto& [lane, label] : tracer.laneNames())
        os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << (lane + 1)
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(label) << "\"}}";
    for (const auto& e : tracer.events()) {
        os << ",\n{\"name\":\"" << jsonEscape(e.name) << "\","
           << "\"cat\":\"" << jsonEscape(e.category) << "\","
           << "\"pid\":1,\"tid\":" << (e.lane + 1) << ","
           << "\"ts\":" << jsonNumber(e.startUs);
        if (e.kind == EventKind::kSpan) {
            os << ",\"ph\":\"X\",\"dur\":" << jsonNumber(e.durUs);
        } else {
            // Thread-scoped instant event.
            os << ",\"ph\":\"i\",\"s\":\"t\"";
        }
        if (!e.args.empty()) {
            os << ",\"args\":";
            writeArgsObject(e.args, os);
        }
        os << "}";
    }
    os << "\n]}\n";
}

void
writeTraceCsv(const Tracer& tracer, std::ostream& os)
{
    os << "name,category,kind,start_us,dur_us,depth,lane,args\n";
    for (const auto& e : tracer.events()) {
        os << csvField(e.name) << "," << csvField(e.category) << ","
           << (e.kind == EventKind::kSpan ? "span" : "instant") << ","
           << jsonNumber(e.startUs) << "," << jsonNumber(e.durUs)
           << "," << e.depth << "," << e.lane << ",";
        for (std::size_t i = 0; i < e.args.size(); ++i) {
            if (i)
                os << ";";
            const auto& a = e.args[i];
            os << csvField(a.key) << "=";
            if (a.numeric)
                os << jsonNumber(a.number);
            else
                os << csvField(a.text);
        }
        os << "\n";
    }
}

void
writeMetricsCsv(const MetricsRegistry& metrics, std::ostream& os)
{
    os << "name,type,count,value,min,max,mean,stddev\n";
    for (const auto& [name, c] : metrics.counters())
        os << csvField(name) << ",counter,," << c.value()
           << ",,,,\n";
    for (const auto& [name, h] : metrics.histograms())
        os << csvField(name) << ",histogram," << h.count() << ",,"
           << jsonNumber(h.min()) << "," << jsonNumber(h.max()) << ","
           << jsonNumber(h.mean()) << "," << jsonNumber(h.stddev())
           << "\n";
}

std::map<std::string, double>
categoryTotalsMs(const Tracer& tracer)
{
    std::map<std::string, double> totals;
    for (const auto& e : tracer.events())
        if (e.kind == EventKind::kSpan)
            totals[e.category] += e.durMs();
    return totals;
}

MetricsRegistry
metricsFromTrace(const Tracer& tracer)
{
    MetricsRegistry m;
    for (const auto& e : tracer.events()) {
        if (e.kind != EventKind::kSpan)
            continue;
        m.counter("spans." + e.category).add();
        m.histogram("span_ms." + e.category).record(e.durMs());
        for (const auto& a : e.args) {
            if (!a.numeric)
                continue;
            m.histogram("arg." + a.key).record(a.number);
            // Memory high-water marks from interpreter run spans:
            // counters (not histograms) so the distilled CSV carries
            // the arena-vs-naive gap as single scalar values.
            if (e.category == "run" &&
                (a.key == "arena_bytes" ||
                 a.key == "peak_activation_bytes" ||
                 a.key == "sum_alloc_bytes")) {
                auto& c = m.counter("mem." + a.key);
                const auto v = static_cast<std::int64_t>(a.number);
                if (v > c.value())
                    c.add(v - c.value());
            }
        }
    }
    return m;
}

} // namespace obs
} // namespace edgebench
