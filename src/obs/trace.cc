#include "edgebench/obs/trace.hh"

#include <cmath>
#include <utility>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace obs
{

Tracer::Tracer(std::string process_name)
    : process_(std::move(process_name))
{
}

SpanId
Tracer::append(TraceEvent e)
{
    events_.push_back(std::move(e));
    return static_cast<SpanId>(events_.size() - 1);
}

SpanId
Tracer::beginSpan(const std::string& name, const std::string& category)
{
    if (!kEnabledAtBuild)
        return kNoSpan;
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.startUs = clock_.nowUs();
    e.depth = static_cast<int>(open_.size());
    const SpanId id = append(std::move(e));
    open_.push_back(id);
    return id;
}

void
Tracer::endSpan(SpanId id)
{
    if (!kEnabledAtBuild)
        return;
    EB_CHECK(!open_.empty(), "endSpan: no span is open");
    EB_CHECK(open_.back() == id,
             "endSpan: span " << id << " is not the innermost open "
                              << "span (" << open_.back()
                              << "); spans must close in LIFO order");
    open_.pop_back();
    auto& e = events_[static_cast<std::size_t>(id)];
    e.durUs = clock_.nowUs() - e.startUs;
}

SpanId
Tracer::recordSpan(const std::string& name, const std::string& category,
                   double dur_ms)
{
    if (!kEnabledAtBuild)
        return kNoSpan;
    EB_CHECK(std::isfinite(dur_ms) && dur_ms >= 0.0,
             "recordSpan '" << name << "': bad duration " << dur_ms);
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.startUs = clock_.nowUs();
    e.durUs = dur_ms * 1e3;
    e.depth = static_cast<int>(open_.size());
    clock_.advanceMs(dur_ms);
    return append(std::move(e));
}

SpanId
Tracer::recordSpanAt(const std::string& name,
                     const std::string& category, double start_ms,
                     double dur_ms, int lane)
{
    if (!kEnabledAtBuild)
        return kNoSpan;
    EB_CHECK(std::isfinite(start_ms) && start_ms >= 0.0,
             "recordSpanAt '" << name << "': bad start " << start_ms);
    EB_CHECK(std::isfinite(dur_ms) && dur_ms >= 0.0,
             "recordSpanAt '" << name << "': bad duration " << dur_ms);
    EB_CHECK(lane >= 0, "recordSpanAt '" << name << "': bad lane "
                                         << lane);
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.startUs = start_ms * 1e3;
    e.durUs = dur_ms * 1e3;
    e.depth = static_cast<int>(open_.size());
    e.lane = lane;
    return append(std::move(e));
}

void
Tracer::instant(const std::string& name, const std::string& category)
{
    instantAt(name, category, clock_.nowMs());
}

void
Tracer::instantAt(const std::string& name, const std::string& category,
                  double time_ms, int lane)
{
    if (!kEnabledAtBuild)
        return;
    EB_CHECK(std::isfinite(time_ms) && time_ms >= 0.0,
             "instantAt '" << name << "': bad time " << time_ms);
    EB_CHECK(lane >= 0,
             "instantAt '" << name << "': bad lane " << lane);
    TraceEvent e;
    e.name = name;
    e.category = category;
    e.kind = EventKind::kInstant;
    e.startUs = time_ms * 1e3;
    e.depth = static_cast<int>(open_.size());
    e.lane = lane;
    append(std::move(e));
}

void
Tracer::nameLane(int lane, std::string label)
{
    if (!kEnabledAtBuild)
        return;
    EB_CHECK(lane >= 0, "nameLane: bad lane " << lane);
    lane_names_[lane] = std::move(label);
}

int
Tracer::ensureLane(const std::string& label)
{
    if (!kEnabledAtBuild)
        return 0;
    for (const auto& [lane, name] : lane_names_)
        if (name == label)
            return lane;
    // lane_names_ is an ordered map: the next free id is one past the
    // highest registered lane, so ensureLane composes with callers
    // that pre-named low lanes via nameLane.
    const int lane =
        lane_names_.empty() ? 0 : lane_names_.rbegin()->first + 1;
    lane_names_[lane] = label;
    return lane;
}

void
Tracer::argNum(SpanId id, const std::string& key, double value)
{
    if (!kEnabledAtBuild || id == kNoSpan)
        return;
    TraceArg a;
    a.key = key;
    a.number = value;
    a.numeric = true;
    events_[static_cast<std::size_t>(id)].args.push_back(std::move(a));
}

void
Tracer::argText(SpanId id, const std::string& key, std::string value)
{
    if (!kEnabledAtBuild || id == kNoSpan)
        return;
    TraceArg a;
    a.key = key;
    a.text = std::move(value);
    events_[static_cast<std::size_t>(id)].args.push_back(std::move(a));
}

} // namespace obs
} // namespace edgebench
