#include "edgebench/obs/metrics.hh"

#include <algorithm>
#include <cmath>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace obs
{

void
Counter::add(std::int64_t delta)
{
    EB_CHECK(delta >= 0, "Counter: negative increment " << delta);
    value_ += delta;
}

void
Histogram::record(double v)
{
    EB_CHECK(std::isfinite(v), "Histogram: non-finite sample");
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
    sumsq_ += v * v;
}

double
Histogram::mean() const
{
    return count_ ? sum_ / static_cast<double>(count_) : 0.0;
}

double
Histogram::stddev() const
{
    if (count_ < 2)
        return 0.0;
    const double n = static_cast<double>(count_);
    const double var = std::max(0.0, sumsq_ / n - mean() * mean());
    return std::sqrt(var);
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    return counters_[name];
}

Histogram&
MetricsRegistry::histogram(const std::string& name)
{
    return histograms_[name];
}

} // namespace obs
} // namespace edgebench
