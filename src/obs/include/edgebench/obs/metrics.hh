/**
 * @file
 * Counter/histogram metrics registry.
 *
 * Metrics complement spans: where the tracer answers "where did the
 * time go on this one run", the registry answers "how many / how big
 * across the run" (nodes executed, FLOPs issued, span durations per
 * phase). Registries are plain value objects — create one per
 * experiment, fill it (directly or from a trace via
 * metricsFromTrace() in export.hh), dump it with writeMetricsCsv().
 *
 * Histograms keep streaming summaries (count/min/max/mean/stddev)
 * rather than samples, so a million-request serving run costs O(1)
 * memory per metric.
 */

#ifndef EDGEBENCH_OBS_METRICS_HH
#define EDGEBENCH_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

namespace edgebench
{
namespace obs
{

/** A monotonically-increasing integer metric. */
class Counter
{
  public:
    void add(std::int64_t delta = 1);
    std::int64_t value() const { return value_; }

  private:
    std::int64_t value_ = 0;
};

/** Streaming summary of a sample distribution. */
class Histogram
{
  public:
    void record(double v);

    std::size_t count() const { return count_; }
    double sum() const { return sum_; }
    /** Smallest recorded value; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }
    /** Largest recorded value; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const;
    /** Population standard deviation; 0 when count < 2. */
    double stddev() const;

  private:
    std::size_t count_ = 0;
    double sum_ = 0.0;
    double sumsq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Named metrics, get-or-create on first access. Iteration order is
 * lexicographic (std::map), so CSV output is deterministic.
 */
class MetricsRegistry
{
  public:
    Counter& counter(const std::string& name);
    Histogram& histogram(const std::string& name);

    const std::map<std::string, Counter>& counters() const
    {
        return counters_;
    }
    const std::map<std::string, Histogram>& histograms() const
    {
        return histograms_;
    }

    bool empty() const
    {
        return counters_.empty() && histograms_.empty();
    }

  private:
    std::map<std::string, Counter> counters_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace obs
} // namespace edgebench

#endif // EDGEBENCH_OBS_METRICS_HH
