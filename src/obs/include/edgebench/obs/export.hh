/**
 * @file
 * Trace and metrics exporters.
 *
 * Two trace formats: Chrome trace-event JSON (the "JSON Array/Object
 * Format" consumed by chrome://tracing and Perfetto) for interactive
 * inspection, and a flat CSV for the bench harness and spreadsheet
 * post-processing. Plus aggregation helpers: per-category time totals
 * (how the fig05 bench derives its breakdown) and trace-to-metrics
 * distillation for `edgebench --metrics-out`.
 */

#ifndef EDGEBENCH_OBS_EXPORT_HH
#define EDGEBENCH_OBS_EXPORT_HH

#include <iosfwd>
#include <map>
#include <string>

#include "edgebench/obs/metrics.hh"
#include "edgebench/obs/trace.hh"

namespace edgebench
{
namespace obs
{

/**
 * Write @p tracer as Chrome trace-event JSON: a top-level object with
 * a "traceEvents" array of complete ("X") and instant ("i") events,
 * timestamps in microseconds. Open chrome://tracing or
 * https://ui.perfetto.dev and load the file.
 */
void writeChromeTrace(const Tracer& tracer, std::ostream& os);

/**
 * Flat CSV, one row per event:
 * name,category,kind,start_us,dur_us,depth,lane,args — args packed as
 * `key=value` pairs separated by ';'. Commas in text fields are
 * replaced by ';' to keep the format trivially splittable.
 */
void writeTraceCsv(const Tracer& tracer, std::ostream& os);

/**
 * CSV dump of a registry: one row per metric,
 * `name,type,count,value,min,max,mean,stddev` (counters leave the
 * distribution columns empty).
 */
void writeMetricsCsv(const MetricsRegistry& metrics, std::ostream& os);

/**
 * Total span milliseconds per category. Nested spans are counted
 * under their own category only, so with the standard taxonomy
 * (structural parents use "inference"/"op", phase time lives on
 * phase-category spans) a category's total is exactly its Fig. 5
 * phase time.
 */
std::map<std::string, double> categoryTotalsMs(const Tracer& tracer);

/**
 * Distill a trace into metrics: per category a `spans.<cat>` counter
 * and a `span_ms.<cat>` histogram of span durations, plus an
 * `arg.<key>` histogram per numeric span attribute (flops, bytes,
 * energy_mJ, ...).
 */
MetricsRegistry metricsFromTrace(const Tracer& tracer);

} // namespace obs
} // namespace edgebench

#endif // EDGEBENCH_OBS_EXPORT_HH
