/**
 * @file
 * Span-based structured tracer.
 *
 * A Tracer records *simulated-time* spans on a VirtualClock timeline:
 * every layer of edgebench-sim that models a cost can also record
 * where that cost went (which Fig. 5 phase, which graph node, which
 * serving request). The result is exportable as Chrome trace-event
 * JSON (export.hh) and loadable in chrome://tracing or Perfetto.
 *
 * Conventions (see docs/OBSERVABILITY.md for the full taxonomy):
 *  - a span's *category* is its phase bucket ("compute",
 *    "data_transfer", ... — the Fig. 5 vocabulary — plus structural
 *    categories like "inference" and "op");
 *  - a span's *name* is the framework-specific label the paper's
 *    figures use ("base_layer", "conv2d", "_C._TensorBase.to()");
 *  - numeric/text attributes ("flops", "bytes", "bound",
 *    "energy_mJ") hang off spans as args.
 *
 * Instrumentation points live in the lower layers and take a nullable
 * `Tracer*` — the null sink. A null tracer costs one pointer test per
 * site; building with -DEDGEBENCH_OBS=OFF additionally compiles every
 * recording method down to a no-op (kEnabledAtBuild below), so
 * instrumented code is zero-overhead in both senses.
 */

#ifndef EDGEBENCH_OBS_TRACE_HH
#define EDGEBENCH_OBS_TRACE_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "edgebench/core/clock.hh"

#ifndef EDGEBENCH_OBS_ENABLED
#define EDGEBENCH_OBS_ENABLED 1
#endif

namespace edgebench
{
namespace obs
{

/** False when the tree was configured with -DEDGEBENCH_OBS=OFF. */
inline constexpr bool kEnabledAtBuild = EDGEBENCH_OBS_ENABLED != 0;

/** One key/value span attribute (numeric or text). */
struct TraceArg
{
    std::string key;
    std::string text;    ///< used when !numeric
    double number = 0.0; ///< used when numeric
    bool numeric = false;
};

enum class EventKind
{
    kSpan,    ///< an interval [startUs, startUs + durUs)
    kInstant, ///< a point event (thermal shutdown, dropped request)
};

/** One recorded event. */
struct TraceEvent
{
    std::string name;
    std::string category;
    EventKind kind = EventKind::kSpan;
    double startUs = 0.0;
    double durUs = 0.0;
    /** Nesting depth at emission (0 = top level). */
    int depth = 0;
    /**
     * Display lane (Chrome-trace "thread"). 0 is the default
     * timeline; the serving fleet gives each replica its own lane so
     * per-replica queue/service decomposition stays readable.
     */
    int lane = 0;
    std::vector<TraceArg> args;

    double durMs() const { return durUs / 1e3; }
    double endUs() const { return startUs + durUs; }
};

/** Handle to a recorded span; kNoSpan when tracing is disabled. */
using SpanId = std::int32_t;
inline constexpr SpanId kNoSpan = -1;

class Tracer
{
  public:
    explicit Tracer(std::string process_name = "edgebench");

    /** The simulated timeline this tracer records on. */
    core::VirtualClock& clock() { return clock_; }
    const core::VirtualClock& clock() const { return clock_; }

    /**
     * Open a span starting now. Must be closed with endSpan() in LIFO
     * order (enforced). Children recorded before endSpan() nest under
     * it.
     */
    SpanId beginSpan(const std::string& name,
                     const std::string& category);

    /** Close the innermost open span; it ends at clock().nowUs(). */
    void endSpan(SpanId id);

    /**
     * Record a complete span of @p dur_ms starting now, advancing the
     * clock past it. The workhorse for modeled costs.
     */
    SpanId recordSpan(const std::string& name,
                      const std::string& category, double dur_ms);

    /**
     * Record a complete span at an explicit position, without touching
     * the clock. For layers with their own timeline (serving).
     * @p lane selects the display lane (see TraceEvent::lane).
     */
    SpanId recordSpanAt(const std::string& name,
                        const std::string& category, double start_ms,
                        double dur_ms, int lane = 0);

    /** Record a point event at the current clock time. */
    void instant(const std::string& name, const std::string& category);

    /** Record a point event at an explicit position. */
    void instantAt(const std::string& name, const std::string& category,
                   double time_ms, int lane = 0);

    /**
     * Give display lane @p lane a human-readable label ("replica 0:
     * rpi3"). Exported as Chrome-trace thread names.
     */
    void nameLane(int lane, std::string label);

    /**
     * Return the lane already registered under @p label, or allocate
     * the next free lane id and register it. Lets layers that create
     * lanes dynamically (one per pipeline stage, one per network
     * link) claim display lanes without coordinating ids by hand.
     */
    int ensureLane(const std::string& label);

    /** Labels registered via nameLane, keyed by lane. */
    const std::map<int, std::string>& laneNames() const
    {
        return lane_names_;
    }

    /** @name Span attributes (no-ops on kNoSpan) */
    /// @{
    void argNum(SpanId id, const std::string& key, double value);
    void argText(SpanId id, const std::string& key, std::string value);
    /// @}

    /** Number of begun-but-unended spans. */
    std::size_t openSpans() const { return open_.size(); }

    bool empty() const { return events_.empty(); }

    const std::vector<TraceEvent>& events() const { return events_; }
    /**
     * Mutable event access for *annotators* (power/thermal attach
     * per-span attributes after the fact). Instrumentation points
     * must use the recording API instead.
     */
    std::vector<TraceEvent>& events() { return events_; }

    const std::string& processName() const { return process_; }

  private:
    SpanId append(TraceEvent e);

    std::string process_;
    core::VirtualClock clock_;
    std::vector<TraceEvent> events_;
    std::vector<SpanId> open_;
    std::map<int, std::string> lane_names_;
};

/** RAII begin/end pair; tolerates a null tracer. */
class ScopedSpan
{
  public:
    ScopedSpan(Tracer* tracer, const std::string& name,
               const std::string& category)
        : tracer_(tracer),
          id_(tracer ? tracer->beginSpan(name, category) : kNoSpan)
    {
    }

    ~ScopedSpan()
    {
        if (tracer_ && id_ != kNoSpan)
            tracer_->endSpan(id_);
    }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    SpanId id() const { return id_; }

  private:
    Tracer* tracer_;
    SpanId id_;
};

} // namespace obs
} // namespace edgebench

#endif // EDGEBENCH_OBS_TRACE_HH
