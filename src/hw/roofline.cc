#include "edgebench/hw/roofline.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace hw
{

namespace
{

/** Bytes a node moves: inputs + output + weights at node precision. */
double
nodeBytes(const graph::Graph& g, const graph::Node& n)
{
    double bytes = n.outputBytes() + n.paramBytes();
    for (auto in : n.inputs)
        bytes += g.node(in).outputBytes();
    return bytes;
}

/**
 * Elementwise/data-movement work for zero-MAC ops, in operations.
 * Pool/activation/add ops execute ~1 op per output element; this
 * keeps them from being free on compute-starved devices.
 */
std::int64_t
elementOps(const graph::Node& n)
{
    using graph::OpKind;
    switch (n.kind) {
      case OpKind::kActivation:
      case OpKind::kSoftmax:
      case OpKind::kAdd:
      case OpKind::kGlobalAvgPool:
      case OpKind::kUpsample:
      case OpKind::kYoloDetect:
        return n.outputElems();
      case OpKind::kMaxPool2d:
      case OpKind::kAvgPool2d:
        return n.outputElems() * n.attrs.pool2d.kH *
            n.attrs.pool2d.kW;
      case OpKind::kMaxPool3d:
        return n.outputElems() * n.attrs.pool3d.kD *
            n.attrs.pool3d.kH * n.attrs.pool3d.kW;
      case OpKind::kDetectPostprocess:
        // Score scan dominates (boxes x classes comparisons).
        return n.inputs.empty() ? n.outputElems() : n.outputElems();
      default:
        return 0;
    }
}

} // namespace

NodeCost
nodeLatency(const graph::Node& node, const ComputeUnit& unit,
            const EngineProfile& profile)
{
    EB_CHECK(profile.computeEfficiency > 0.0 &&
                 profile.computeEfficiency <= 1.0,
             "bad computeEfficiency " << profile.computeEfficiency);
    EB_CHECK(profile.memoryEfficiency > 0.0 &&
                 profile.memoryEfficiency <= 1.0,
             "bad memoryEfficiency " << profile.memoryEfficiency);

    NodeCost cost;
    if (node.kind == graph::OpKind::kInput)
        return cost;

    double ops = static_cast<double>(node.macs());
    if (profile.exploitsSparsity && node.weightSparsity > 0.0)
        ops *= (1.0 - node.weightSparsity);
    ops += static_cast<double>(elementOps(node));

    // Recurrent layers execute one timestep at a time: only a single
    // step's work is available to fill the machine, and each step is
    // a separate dispatch.
    const bool recurrent = node.kind == graph::OpKind::kLstm ||
        node.kind == graph::OpKind::kGru;
    const double seq_len =
        recurrent ? static_cast<double>(node.attrs.rnn.seqLen) : 1.0;

    // The utilization ramp applies to MAC-bearing kernels only;
    // elementwise ops are bandwidth-bound and priced by the memory
    // term instead.
    double efficiency = profile.computeEfficiency;
    if (profile.saturationMacs > 0.0 && node.macs() > 0) {
        const double ramp = std::min(
            1.0, ops / seq_len / profile.saturationMacs);
        efficiency *= std::pow(ramp, profile.saturationExponent);
    }
    const bool grouped =
        (node.kind == graph::OpKind::kConv2d ||
         node.kind == graph::OpKind::kFusedConvBnAct) &&
        node.attrs.conv2d.groups > 1;
    if (grouped)
        efficiency *= profile.groupedConvFactor;

    const double peak_gops = unit.peakFor(node.dtype) * efficiency;
    if (ops > 0.0)
        cost.computeMs = ops / (peak_gops * 1e9) * 1e3;

    // Memory traffic at node precision (cheap way to model the
    // footprint reduction of INT8/FP16 inference). Producer
    // activation sizes are not visible here; graphLatency() accounts
    // them when the whole graph is available.
    const double bytes = node.outputBytes() + node.paramBytes();
    double bw = unit.memBandwidthGBs * profile.memoryEfficiency;
    if (unit.onChipBytes > 0.0 &&
        node.paramBytes() + node.outputBytes() > unit.onChipBytes)
        bw /= unit.offChipPenalty;
    cost.memoryMs = bytes / (bw * 1e9) * 1e3;
    // One dispatch per timestep for recurrent layers.
    cost.overheadMs = profile.perOpOverheadMs * seq_len;
    return cost;
}

namespace
{

GraphCost
latencyImpl(const graph::Graph& g, const ComputeUnit& unit,
            const EngineProfile& profile)
{
    // Model-level spill decision: when the whole weight set exceeds
    // the unit's on-chip memory, weights restream from off-chip every
    // inference (EdgeTPU SRAM / PYNQ BRAM behaviour).
    double total_param_bytes = 0.0;
    for (const auto& n : g.nodes())
        total_param_bytes += n.paramBytes();
    const bool spills = unit.onChipBytes > 0.0 &&
        total_param_bytes > unit.onChipBytes;

    GraphCost total;
    for (const auto& n : g.nodes()) {
        if (n.kind == graph::OpKind::kInput)
            continue;
        NodeCost c = nodeLatency(n, unit, profile);
        // Full memory traffic including producer activations.
        double bytes = nodeBytes(g, n);
        double bw = unit.memBandwidthGBs * profile.memoryEfficiency;
        if (spills)
            bw /= unit.offChipPenalty;
        c.memoryMs = bytes / (bw * 1e9) * 1e3;

        total.computeMs += c.computeMs;
        total.memoryMs += c.memoryMs;
        total.overheadMs += c.overheadMs;
        total.totalMs += c.totalMs();
        if (c.computeMs >= c.memoryMs)
            ++total.computeBoundNodes;
        else
            ++total.memoryBoundNodes;
    }
    total.overheadMs += profile.perInferenceOverheadMs;
    total.totalMs += profile.perInferenceOverheadMs;
    return total;
}

} // namespace

GraphCost
graphLatency(const graph::Graph& g, const ComputeUnit& unit,
             const EngineProfile& profile)
{
    const double footprint = graph::deploymentFootprintBytes(g);
    if (footprint > unit.memCapacityBytes) {
        std::ostringstream oss;
        oss << "model " << g.name() << " needs "
            << footprint / (1024.0 * 1024.0) << " MiB but unit '"
            << unit.name << "' has "
            << unit.memCapacityBytes / (1024.0 * 1024.0) << " MiB";
        throw MemoryCapacityError(oss.str());
    }
    return latencyImpl(g, unit, profile);
}

GraphCost
graphLatencyUnchecked(const graph::Graph& g, const ComputeUnit& unit,
                      const EngineProfile& profile)
{
    return latencyImpl(g, unit, profile);
}

std::vector<NodeCost>
perNodeCosts(const graph::Graph& g, const ComputeUnit& unit,
             const EngineProfile& profile)
{
    double total_param_bytes = 0.0;
    for (const auto& n : g.nodes())
        total_param_bytes += n.paramBytes();
    const bool spills = unit.onChipBytes > 0.0 &&
        total_param_bytes > unit.onChipBytes;

    std::vector<NodeCost> out(static_cast<std::size_t>(g.numNodes()));
    for (const auto& n : g.nodes()) {
        if (n.kind == graph::OpKind::kInput)
            continue;
        NodeCost c = nodeLatency(n, unit, profile);
        double bw = unit.memBandwidthGBs * profile.memoryEfficiency;
        if (spills)
            bw /= unit.offChipPenalty;
        c.memoryMs = nodeBytes(g, n) / (bw * 1e9) * 1e3;
        out[static_cast<std::size_t>(n.id)] = c;
    }
    return out;
}

std::vector<double>
perNodeTotalMs(const graph::Graph& g, const ComputeUnit& unit,
               const EngineProfile& profile)
{
    const auto costs = perNodeCosts(g, unit, profile);
    std::vector<double> out(costs.size(), 0.0);
    for (std::size_t i = 0; i < costs.size(); ++i)
        out[i] = costs[i].totalMs();
    return out;
}

const char*
boundednessLabel(const NodeCost& cost)
{
    return cost.computeMs >= cost.memoryMs ? "compute" : "memory";
}

} // namespace hw
} // namespace edgebench
