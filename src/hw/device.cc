#include "edgebench/hw/device.hh"

#include <array>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace hw
{

double
ComputeUnit::peakFor(core::DType t) const
{
    switch (t) {
      case core::DType::kF32:
        // Integer-only accelerators (EdgeTPU) emulate residual fp32
        // ops at a fraction of their integer rate.
        if (peakGflopsF32 > 0.0)
            return peakGflopsF32;
        return peakGflopsF16 > 0.0 ? peakGflopsF16 : peakGopsI8 / 4.0;
      case core::DType::kF16:
        return peakGflopsF16 > 0.0 ? peakGflopsF16 : peakFor(
            core::DType::kF32);
      case core::DType::kI8:
      case core::DType::kBin1:
        return peakGopsI8 > 0.0 ? peakGopsI8 : peakGflopsF32;
      case core::DType::kI32:
        return peakGflopsF32;
    }
    throw InternalError("peakFor: unknown dtype");
}

const ComputeUnit&
DeviceSpec::preferredUnit() const
{
    if (accelerator)
        return *accelerator;
    if (gpu)
        return *gpu;
    return cpu;
}

bool
DeviceSpec::isEdge() const
{
    return category != DeviceCategory::kHpcCpu &&
        category != DeviceCategory::kHpcGpu;
}

namespace
{

constexpr double kGiB = 1024.0 * 1024.0 * 1024.0;
constexpr double kMiB = 1024.0 * 1024.0;
constexpr double kKiB = 1024.0;

/**
 * Registry of Table III platforms. Peak numbers are theoretical
 * hardware capabilities derived from the published core counts and
 * clocks in Table III; idle/average power are the paper's measured
 * values. See EXPERIMENTS.md for the derivations.
 */
const std::array<DeviceSpec, 10>
buildRegistry()
{
    std::array<DeviceSpec, 10> r{};

    // (1) Raspberry Pi 3B: 4x Cortex-A53 @ 1.2 GHz, 1 GB LPDDR2,
    // no GPGPU, no accelerator.
    r[0] = DeviceSpec{
        .id = DeviceId::kRpi3,
        .name = "RPi3",
        .category = DeviceCategory::kIoTEdge,
        // Capacity is the ~450 MB usable for a model once the OS and
        // the framework runtime claim their share of the 1 GB board.
        .cpu = {UnitKind::kCpu, "Cortex-A53 x4 @1.2GHz",
                /*f32=*/9.6, /*f16=*/9.6, /*i8=*/0.0,
                /*bw=*/2.6, /*cap=*/0.45 * kGiB, 0.0, 1.0},
        .gpu = std::nullopt,
        .accelerator = std::nullopt,
        .idlePowerW = 1.33,
        .averagePowerW = 2.73,
        .memoryDescription = "1 GB LPDDR2",
    };

    // (2) Jetson TX2: 4x A57 + 2x Denver2 @ 2 GHz, 256-core Pascal
    // GPU, 8 GB shared LPDDR4 (128-bit).
    r[1] = DeviceSpec{
        .id = DeviceId::kJetsonTx2,
        .name = "Jetson TX2",
        .category = DeviceCategory::kGpuEdge,
        .cpu = {UnitKind::kCpu, "A57x4+Denver2x2 @2GHz",
                48.0, 48.0, 0.0, 35.0, 7.5 * kGiB, 0.0, 1.0},
        .gpu = ComputeUnit{UnitKind::kGpu, "Pascal 256-core",
                           665.0, 1330.0, 0.0, 35.0, 7.5 * kGiB, 0.0,
                           1.0},
        .accelerator = std::nullopt,
        .idlePowerW = 1.90,
        .averagePowerW = 9.65,
        .memoryDescription = "8 GB LPDDR4",
    };

    // (3) Jetson Nano: 4x A57 @ 1.43 GHz, 128-core Maxwell GPU,
    // 4 GB shared LPDDR4 (64-bit).
    r[2] = DeviceSpec{
        .id = DeviceId::kJetsonNano,
        .name = "Jetson Nano",
        .category = DeviceCategory::kGpuEdge,
        .cpu = {UnitKind::kCpu, "Cortex-A57 x4 @1.43GHz",
                22.9, 22.9, 0.0, 21.0, 3.6 * kGiB, 0.0, 1.0},
        .gpu = ComputeUnit{UnitKind::kGpu, "Maxwell 128-core",
                           236.0, 472.0, 944.0, 21.0, 3.6 * kGiB, 0.0,
                           1.0},
        .accelerator = std::nullopt,
        .idlePowerW = 1.25,
        .averagePowerW = 4.58,
        .memoryDescription = "4 GB LPDDR4",
    };

    // (4) EdgeTPU dev board: 4x A53 host + EdgeTPU ASIC (4 TOPS
    // INT8, ~8 MB on-chip SRAM), 1 GB LPDDR4.
    r[3] = DeviceSpec{
        .id = DeviceId::kEdgeTpu,
        .name = "EdgeTPU",
        .category = DeviceCategory::kAsicEdge,
        .cpu = {UnitKind::kCpu, "Cortex-A53 x4 @1.5GHz",
                12.0, 12.0, 0.0, 12.8, 0.5 * kGiB, 0.0, 1.0},
        .gpu = std::nullopt,
        .accelerator = ComputeUnit{UnitKind::kAccelerator,
                                   "EdgeTPU ASIC", 0.0, 0.0, 4000.0,
                                   12.8, 0.5 * kGiB, 8.0 * kMiB, 3.0},
        .idlePowerW = 3.24,
        .averagePowerW = 4.14,
        .memoryDescription = "1 GB LPDDR4 (host)",
    };

    // (5) Movidius NCS: Myriad 2 VPU, 12 SHAVE VLIW cores, native
    // FP16, 512 MB on-stick LPDDR. USB-attached.
    r[4] = DeviceSpec{
        .id = DeviceId::kMovidius,
        .name = "Movidius",
        .category = DeviceCategory::kAsicEdge,
        .cpu = {UnitKind::kCpu, "host (USB)", 8.0, 8.0, 0.0, 2.0,
                0.4 * kGiB, 0.0, 1.0},
        .gpu = std::nullopt,
        .accelerator = ComputeUnit{UnitKind::kAccelerator,
                                   "Myriad 2 VPU (12 SHAVE)", 80.0,
                                   160.0, 160.0, 4.0, 0.45 * kGiB,
                                   2.0 * kMiB, 1.5},
        .idlePowerW = 0.36,
        .averagePowerW = 1.52,
        .memoryDescription = "512 MB LPDDR (on stick)",
    };

    // (6) PYNQ-Z1: 2x A9 @ 650 MHz + Artix-7 fabric (220 DSP,
    // 630 KB BRAM), 512 MB DDR3 (16-bit).
    r[5] = DeviceSpec{
        .id = DeviceId::kPynqZ1,
        .name = "PYNQ",
        .category = DeviceCategory::kFpgaEdge,
        .cpu = {UnitKind::kCpu, "Cortex-A9 x2 @650MHz", 2.6, 2.6,
                0.0, 1.0, 0.4 * kGiB, 0.0, 1.0},
        .gpu = std::nullopt,
        .accelerator = ComputeUnit{UnitKind::kAccelerator,
                                   "ZYNQ XC7Z020 fabric", 15.0, 30.0,
                                   62.0, 1.6, 0.4 * kGiB,
                                   630.0 * kKiB, 20.0},
        .idlePowerW = 2.65,
        .averagePowerW = 5.24,
        .memoryDescription = "630 KB BRAM + 512 MB DDR3",
    };

    // (7) Xeon E5-2696 v4 x2: 44 cores @ 2.2 GHz, AVX2.
    r[6] = DeviceSpec{
        .id = DeviceId::kXeon,
        .name = "Xeon CPU",
        .category = DeviceCategory::kHpcCpu,
        .cpu = {UnitKind::kCpu, "E5-2696v4 x2 (44 cores)", 1549.0,
                1549.0, 0.0, 130.0, 250.0 * kGiB, 0.0, 1.0},
        .gpu = std::nullopt,
        .accelerator = std::nullopt,
        .idlePowerW = 70.0,
        .averagePowerW = 145.0,
        .memoryDescription = "264 GB DDR4",
    };

    // (8) RTX 2080: 2944-core Turing, FP16 2x, INT8 tensor cores.
    r[7] = DeviceSpec{
        .id = DeviceId::kRtx2080,
        .name = "RTX 2080",
        .category = DeviceCategory::kHpcGpu,
        .cpu = {UnitKind::kCpu, "host", 200.0, 200.0, 0.0, 50.0,
                32.0 * kGiB, 0.0, 1.0},
        .gpu = ComputeUnit{UnitKind::kGpu, "Turing 2944-core",
                           10100.0, 20200.0, 80000.0, 448.0,
                           7.5 * kGiB, 0.0, 1.0},
        .accelerator = std::nullopt,
        .idlePowerW = 39.0,
        .averagePowerW = 120.0,
        .memoryDescription = "8 GB GDDR6",
    };

    // (9) GTX Titan X: 3072-core Maxwell.
    r[8] = DeviceSpec{
        .id = DeviceId::kGtxTitanX,
        .name = "GTX Titan X",
        .category = DeviceCategory::kHpcGpu,
        .cpu = {UnitKind::kCpu, "host", 200.0, 200.0, 0.0, 50.0,
                32.0 * kGiB, 0.0, 1.0},
        .gpu = ComputeUnit{UnitKind::kGpu, "Maxwell 3072-core",
                           6600.0, 6600.0, 0.0, 336.0, 11.5 * kGiB,
                           0.0, 1.0},
        .accelerator = std::nullopt,
        .idlePowerW = 15.0,
        .averagePowerW = 100.0,
        .memoryDescription = "12 GB GDDR5",
    };

    // (10) Titan Xp: 3840-core Pascal.
    r[9] = DeviceSpec{
        .id = DeviceId::kTitanXp,
        .name = "Titan Xp",
        .category = DeviceCategory::kHpcGpu,
        .cpu = {UnitKind::kCpu, "host", 200.0, 200.0, 0.0, 50.0,
                32.0 * kGiB, 0.0, 1.0},
        .gpu = ComputeUnit{UnitKind::kGpu, "Pascal 3840-core",
                           12150.0, 12150.0, 0.0, 548.0, 11.5 * kGiB,
                           0.0, 1.0},
        .accelerator = std::nullopt,
        .idlePowerW = 55.0,
        .averagePowerW = 130.0,
        .memoryDescription = "12 GB GDDR5X",
    };

    return r;
}

const std::array<DeviceSpec, 10>&
registry()
{
    static const auto r = buildRegistry();
    return r;
}

} // namespace

const DeviceSpec&
deviceSpec(DeviceId id)
{
    for (const auto& d : registry())
        if (d.id == id)
            return d;
    throw InternalError("deviceSpec: unknown device");
}

const std::vector<DeviceId>&
allDevices()
{
    static const std::vector<DeviceId> ids = [] {
        std::vector<DeviceId> v;
        for (const auto& d : registry())
            v.push_back(d.id);
        return v;
    }();
    return ids;
}

const std::vector<DeviceId>&
edgeDevices()
{
    static const std::vector<DeviceId> ids = [] {
        std::vector<DeviceId> v;
        for (const auto& d : registry())
            if (d.isEdge())
                v.push_back(d.id);
        return v;
    }();
    return ids;
}

const std::vector<DeviceId>&
hpcDevices()
{
    static const std::vector<DeviceId> ids = [] {
        std::vector<DeviceId> v;
        for (const auto& d : registry())
            if (!d.isEdge())
                v.push_back(d.id);
        return v;
    }();
    return ids;
}

std::string
deviceName(DeviceId id)
{
    return deviceSpec(id).name;
}

DeviceId
deviceByName(const std::string& name)
{
    for (const auto& d : registry())
        if (d.name == name)
            return d.id;
    throw InvalidArgumentError("deviceByName: unknown device '" + name +
                               "'");
}

std::string
categoryName(DeviceCategory c)
{
    switch (c) {
      case DeviceCategory::kIoTEdge: return "IoT/Edge Device";
      case DeviceCategory::kGpuEdge: return "GPU-Based Edge Device";
      case DeviceCategory::kAsicEdge: return "Custom-ASIC Edge Accelerator";
      case DeviceCategory::kFpgaEdge: return "FPGA-Based";
      case DeviceCategory::kHpcCpu: return "HPC CPU";
      case DeviceCategory::kHpcGpu: return "HPC GPU";
    }
    throw InternalError("categoryName: unknown category");
}

} // namespace hw
} // namespace edgebench
