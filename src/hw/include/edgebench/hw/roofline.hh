/**
 * @file
 * Analytical roofline latency engine.
 *
 * Per-layer latency is max(compute time, memory time) plus a per-op
 * dispatch overhead; compute time uses the executing unit's peak for
 * the node's precision scaled by a framework-dependent efficiency,
 * and memory time streams inputs + outputs + weights at the unit's
 * effective bandwidth. This decomposition is what makes the paper's
 * compute-bound vs memory-bound model distinction (Fig. 1, Section
 * VI-C) fall out of the model naturally.
 */

#ifndef EDGEBENCH_HW_ROOFLINE_HH
#define EDGEBENCH_HW_ROOFLINE_HH

#include <vector>

#include "edgebench/graph/graph.hh"
#include "edgebench/hw/device.hh"

namespace edgebench
{
namespace hw
{

/**
 * How a particular software stack drives a compute unit. Instances
 * are calibrated per (framework, device) pair in the frameworks
 * module, anchored to the paper's measured latencies.
 */
struct EngineProfile
{
    /** Fraction of the unit's peak throughput actually achieved. */
    double computeEfficiency = 0.25;
    /** Fraction of the unit's peak bandwidth actually achieved. */
    double memoryEfficiency = 0.5;
    /** Per-operator dispatch/launch cost, milliseconds. */
    double perOpOverheadMs = 0.0;
    /** Per-inference fixed cost (session entry, transfers), ms. */
    double perInferenceOverheadMs = 0.0;
    /** Whether pruned (sparse) weights skip compute. */
    bool exploitsSparsity = false;
    /**
     * Utilization ramp: a layer only reaches computeEfficiency once
     * its operation count saturates the unit's parallelism. Effective
     * efficiency scales by min(1, ops/saturationMacs). 0 disables the
     * ramp. This is what makes single-batch inference underuse
     * many-core HPC hardware (paper Section VI-C): small ResNet
     * layers cannot fill a 44-core Xeon or a 3840-core GPU, while
     * VGG-sized layers can.
     */
    double saturationMacs = 0.0;
    /**
     * Shape of the utilization ramp: efficiency scales by
     * (ops/saturationMacs)^saturationExponent below saturation.
     * 1.0 = linear; 0.5 = square-root (gentler at the bottom).
     */
    double saturationExponent = 1.0;
    /**
     * Relative efficiency of grouped/depthwise convolutions (most
     * general-purpose stacks run them far below dense-conv rates;
     * mobile-tuned stacks do not).
     */
    double groupedConvFactor = 1.0;
};

/** Cost breakdown for one node. */
struct NodeCost
{
    double computeMs = 0.0;
    double memoryMs = 0.0;
    double overheadMs = 0.0;

    double totalMs() const
    {
        return (computeMs > memoryMs ? computeMs : memoryMs) +
            overheadMs;
    }
};

/** Cost breakdown for a whole graph. */
struct GraphCost
{
    double computeMs = 0.0;    ///< sum of per-node compute times
    double memoryMs = 0.0;     ///< sum of per-node memory times
    double overheadMs = 0.0;   ///< dispatch + per-inference overhead
    double totalMs = 0.0;      ///< end-to-end latency
    std::int64_t computeBoundNodes = 0;
    std::int64_t memoryBoundNodes = 0;
};

/** Latency of a single node on @p unit under @p profile. */
NodeCost nodeLatency(const graph::Node& node, const ComputeUnit& unit,
                     const EngineProfile& profile);

/**
 * End-to-end single-batch inference latency of @p g on @p unit.
 * Throws MemoryCapacityError when the deployment footprint exceeds
 * the unit's memory capacity.
 */
GraphCost graphLatency(const graph::Graph& g, const ComputeUnit& unit,
                       const EngineProfile& profile);

/**
 * As graphLatency, but without the capacity check (used by dynamic-
 * graph frameworks that swap instead of failing; the caller applies
 * the swap penalty).
 */
GraphCost graphLatencyUnchecked(const graph::Graph& g,
                                const ComputeUnit& unit,
                                const EngineProfile& profile);

/**
 * Per-node end-to-end latency (max(compute, memory) + dispatch
 * overhead), indexed by NodeId. The per-inference overhead is NOT
 * included. Used by schedulers/partitioners that price subgraphs.
 */
std::vector<double> perNodeTotalMs(const graph::Graph& g,
                                   const ComputeUnit& unit,
                                   const EngineProfile& profile);

/**
 * Full per-node cost breakdowns, indexed by NodeId (input nodes are
 * all-zero). Memory time includes producer-activation traffic and
 * the model-level on-chip spill decision, matching graphLatency()'s
 * accounting; the per-inference overhead is NOT included. This is
 * what the tracing layer uses to attribute simulated time and
 * compute-vs-memory boundedness to individual spans.
 */
std::vector<NodeCost> perNodeCosts(const graph::Graph& g,
                                   const ComputeUnit& unit,
                                   const EngineProfile& profile);

/**
 * Roofline attribution of a priced node: "compute" when compute time
 * dominates, "memory" otherwise (the Fig. 1 / Section VI-C
 * distinction).
 */
const char* boundednessLabel(const NodeCost& cost);

} // namespace hw
} // namespace edgebench

#endif // EDGEBENCH_HW_ROOFLINE_HH
