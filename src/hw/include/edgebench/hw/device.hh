/**
 * @file
 * Hardware platform models for every device in Table III of the
 * paper: Raspberry Pi 3B, Jetson TX2, Jetson Nano, EdgeTPU, Movidius
 * NCS, PYNQ-Z1, a Xeon server, and three HPC GPUs.
 *
 * Each device is described by one or more ComputeUnits (CPU, GPU,
 * accelerator) with per-precision peak throughput, memory bandwidth
 * and capacity, plus the idle/average power measured by the paper.
 * The analytical latency engine (roofline.hh) prices computation
 * graphs against these units.
 */

#ifndef EDGEBENCH_HW_DEVICE_HH
#define EDGEBENCH_HW_DEVICE_HH

#include <optional>
#include <string>
#include <vector>

#include "edgebench/core/types.hh"

namespace edgebench
{
namespace hw
{

/** Device identifiers, Table III order. */
enum class DeviceId
{
    kRpi3,
    kJetsonTx2,
    kJetsonNano,
    kEdgeTpu,
    kMovidius,
    kPynqZ1,
    kXeon,
    kRtx2080,
    kGtxTitanX,
    kTitanXp,
};

/** Table III device categories. */
enum class DeviceCategory
{
    kIoTEdge,
    kGpuEdge,
    kAsicEdge,
    kFpgaEdge,
    kHpcCpu,
    kHpcGpu,
};

/** Kinds of execution engines inside a device. */
enum class UnitKind
{
    kCpu,
    kGpu,
    kAccelerator,
};

/**
 * One execution engine. Peak numbers are theoretical hardware peaks;
 * achieved fractions come from per-framework EngineProfiles.
 */
struct ComputeUnit
{
    UnitKind kind = UnitKind::kCpu;
    std::string name;
    double peakGflopsF32 = 0.0;
    double peakGflopsF16 = 0.0;
    /** INT8 throughput; 0 means no INT8 speedup over fp32. */
    double peakGopsI8 = 0.0;
    double memBandwidthGBs = 0.0;
    /** Usable memory for weights+activations, bytes. */
    double memCapacityBytes = 0.0;
    /**
     * Fast on-chip memory (EdgeTPU SRAM, PYNQ BRAM), bytes. Models
     * whose working set exceeds it pay offChipPenalty on bandwidth.
     */
    double onChipBytes = 0.0;
    /** Bandwidth divisor when spilling past onChipBytes (>= 1). */
    double offChipPenalty = 1.0;

    /** Peak throughput in GOP/s for the given element precision. */
    double peakFor(core::DType t) const;
};

/** One Table III platform. */
struct DeviceSpec
{
    DeviceId id;
    std::string name;
    DeviceCategory category;
    ComputeUnit cpu;
    std::optional<ComputeUnit> gpu;
    std::optional<ComputeUnit> accelerator;
    /** Measured idle power, Watts (Table III). */
    double idlePowerW = 0.0;
    /** Measured average power while executing DNNs (Table III). */
    double averagePowerW = 0.0;
    /** Human-readable memory description (Table III). */
    std::string memoryDescription;

    /** The fastest unit available for DNN execution. */
    const ComputeUnit& preferredUnit() const;
    bool isEdge() const;
};

/** Immutable registry entry lookup. */
const DeviceSpec& deviceSpec(DeviceId id);

/** All platforms, Table III order. */
const std::vector<DeviceId>& allDevices();

/** The six edge platforms. */
const std::vector<DeviceId>& edgeDevices();

/** The four HPC platforms. */
const std::vector<DeviceId>& hpcDevices();

/** Stable display name, e.g. "Jetson TX2". */
std::string deviceName(DeviceId id);

/** Lookup by display name; throws if unknown. */
DeviceId deviceByName(const std::string& name);

/** Category display string, e.g. "GPU-Based Edge Device". */
std::string categoryName(DeviceCategory c);

} // namespace hw
} // namespace edgebench

#endif // EDGEBENCH_HW_DEVICE_HH
