#include "edgebench/power/meter.hh"

#include <cmath>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace power
{

double
PowerTrace::energyJ() const
{
    double e = 0.0;
    for (std::size_t i = 1; i < samples.size(); ++i) {
        const double dt = samples[i].timeS - samples[i - 1].timeS;
        e += 0.5 * (samples[i].powerW + samples[i - 1].powerW) * dt;
    }
    return e;
}

double
PowerTrace::averageW() const
{
    if (samples.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto& s : samples)
        sum += s.powerW;
    return sum / static_cast<double>(samples.size());
}

namespace
{

constexpr double kUsbRailV = 5.1;
constexpr double kVoltageDigit = 0.01;   // 10 mV display resolution
constexpr double kCurrentDigit = 0.0001; // 0.1 mA display resolution
constexpr double kVoltageGainSpec = 0.0005; // 0.05 %
constexpr double kCurrentGainSpec = 0.001;  // 0.1 %

double
quantize(double v, double digit)
{
    return std::nearbyint(v / digit) * digit;
}

} // namespace

UsbMultimeter::UsbMultimeter(core::Rng rng) : rng_(rng)
{
    // Calibration gain error fixed per instrument, inside spec.
    vGain_ = 1.0 + rng_.uniform(-kVoltageGainSpec, kVoltageGainSpec);
    iGain_ = 1.0 + rng_.uniform(-kCurrentGainSpec, kCurrentGainSpec);
}

double
UsbMultimeter::measureVoltage(double true_v)
{
    EB_CHECK(true_v >= 0.0, "negative voltage");
    return quantize(true_v * vGain_, kVoltageDigit);
}

double
UsbMultimeter::measureCurrent(double true_a)
{
    EB_CHECK(true_a >= 0.0, "negative current");
    return quantize(true_a * iGain_, kCurrentDigit);
}

PowerTrace
UsbMultimeter::record(const PowerFunction& truth, double duration_s)
{
    EB_CHECK(duration_s > 0.0, "record: non-positive duration");
    PowerTrace trace;
    for (double t = 0.0; t <= duration_s; t += 1.0) {
        const double p = truth(t);
        const double i = p / kUsbRailV;
        const double mv = measureVoltage(kUsbRailV);
        const double mi = measureCurrent(i);
        trace.samples.push_back({t, mv * mi});
    }
    return trace;
}

double
UsbMultimeter::voltageErrorBound(double v)
{
    return kVoltageGainSpec + 2.0 * kVoltageDigit / std::max(v, 1e-9);
}

double
UsbMultimeter::currentErrorBound(double a)
{
    return kCurrentGainSpec + 4.0 * kCurrentDigit / std::max(a, 1e-9);
}

PowerAnalyzer::PowerAnalyzer(core::Rng rng) : rng_(rng)
{
    offsetW_ = rng_.uniform(-kAccuracyW, kAccuracyW);
}

double
PowerAnalyzer::measurePower(double true_w)
{
    EB_CHECK(true_w >= 0.0, "negative power");
    return std::max(0.0, true_w + offsetW_);
}

PowerTrace
PowerAnalyzer::record(const PowerFunction& truth, double duration_s)
{
    EB_CHECK(duration_s > 0.0, "record: non-positive duration");
    PowerTrace trace;
    for (double t = 0.0; t <= duration_s; t += 1.0)
        trace.samples.push_back({t, measurePower(truth(t))});
    return trace;
}

} // namespace power
} // namespace edgebench
