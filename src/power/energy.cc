#include "edgebench/power/energy.hh"

#include <algorithm>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace power
{

EnergyResult
energyPerInference(const frameworks::CompiledModel& m)
{
    const auto& spec = hw::deviceSpec(m.device);
    const auto cost = m.latency();

    EnergyResult r;
    r.inferenceTimeMs = cost.totalMs;

    // Utilization: compute-dominated time draws the full average
    // power; memory-stalled or overhead time draws ~60% of the
    // dynamic component.
    const double busy = std::max(cost.computeMs, 1e-9);
    const double stalled = std::max(cost.totalMs - busy, 0.0);
    const double util =
        (busy + 0.6 * stalled) / std::max(cost.totalMs, 1e-9);

    const double dynamic_full = spec.averagePowerW - spec.idlePowerW;
    r.dynamicPowerW = dynamic_full * std::clamp(util, 0.0, 1.0);
    r.activePowerW = spec.idlePowerW + r.dynamicPowerW;
    r.energyPerInferenceMJ = r.activePowerW * r.inferenceTimeMs;
    return r;
}

double
annotateTraceEnergy(obs::Tracer& tracer,
                    const frameworks::CompiledModel& m)
{
    const double active_w = energyPerInference(m).activePowerW;
    for (auto& e : tracer.events()) {
        if (e.kind != obs::EventKind::kSpan)
            continue;
        obs::TraceArg a;
        a.key = "energy_mJ";
        a.number = active_w * e.durMs(); // W * ms = mJ
        a.numeric = true;
        e.args.push_back(std::move(a));
    }
    return active_w;
}

double
batteryLifeHours(const frameworks::CompiledModel& m,
                 double capacity_wh, double request_rate_hz)
{
    EB_CHECK(capacity_wh > 0.0, "battery: non-positive capacity");
    EB_CHECK(request_rate_hz >= 0.0, "battery: negative rate");
    const auto& spec = hw::deviceSpec(m.device);
    const auto e = energyPerInference(m);
    const double duty = std::clamp(
        request_rate_hz * e.inferenceTimeMs / 1e3, 0.0, 1.0);
    const double avg_w = spec.idlePowerW +
        (e.activePowerW - spec.idlePowerW) * duty;
    return capacity_wh / avg_w;
}

} // namespace power
} // namespace edgebench
