/**
 * @file
 * Emulated power-measurement instruments (paper Section V).
 *
 * The paper measures USB-powered devices with a UM25C USB multimeter
 * (voltage accuracy +-(0.05% + 2 digits), current +-(0.1% + 4
 * digits), 1 Hz sampling) and outlet-powered devices with a power
 * analyzer (+-0.005 W). These classes reproduce that measurement
 * chain — quantization to display digits, calibrated gain error, and
 * 1 Hz sampling — so energy numbers inherit realistic instrument
 * error, deterministically via a seeded RNG.
 */

#ifndef EDGEBENCH_POWER_METER_HH
#define EDGEBENCH_POWER_METER_HH

#include <functional>
#include <vector>

#include "edgebench/core/rng.hh"

namespace edgebench
{
namespace power
{

/** One timestamped power sample. */
struct PowerSample
{
    double timeS = 0.0;
    double powerW = 0.0;
};

/** A sampled power trace with integration helpers. */
struct PowerTrace
{
    std::vector<PowerSample> samples;

    /** Trapezoidal energy integral over the trace, Joules. */
    double energyJ() const;
    /** Mean power, Watts. */
    double averageW() const;
};

/** Ground-truth power as a function of time, Watts. */
using PowerFunction = std::function<double(double time_s)>;

/**
 * UM25C-style USB multimeter: quantizes to 0.01 V / 0.0001 A display
 * digits, applies a per-device calibration gain within the rated
 * accuracy, and samples at 1 Hz.
 */
class UsbMultimeter
{
  public:
    explicit UsbMultimeter(core::Rng rng);

    /** Measure a (voltage, current) pair once. */
    double measureVoltage(double true_v);
    double measureCurrent(double true_a);

    /**
     * Record @p truth at 1 Hz for @p duration_s seconds assuming a
     * fixed 5.1 V USB rail (current = power / rail).
     */
    PowerTrace record(const PowerFunction& truth, double duration_s);

    /** Worst-case relative voltage error at @p v volts. */
    static double voltageErrorBound(double v);
    /** Worst-case relative current error at @p a amps. */
    static double currentErrorBound(double a);

  private:
    core::Rng rng_;
    double vGain_;
    double iGain_;
};

/** Outlet power analyzer: +-0.005 W absolute accuracy, 1 Hz. */
class PowerAnalyzer
{
  public:
    explicit PowerAnalyzer(core::Rng rng);

    double measurePower(double true_w);
    PowerTrace record(const PowerFunction& truth, double duration_s);

    static constexpr double kAccuracyW = 0.005;

  private:
    core::Rng rng_;
    double offsetW_;
};

} // namespace power
} // namespace edgebench

#endif // EDGEBENCH_POWER_METER_HH
