/**
 * @file
 * Energy-per-inference model (paper Section VI-E, Figs. 11-12).
 *
 * Energy is average device power while executing DNNs (Table III)
 * integrated over the modeled inference latency. Active power can be
 * scaled by a utilization factor derived from the roofline (a memory-
 * stalled device draws less than its busy average).
 */

#ifndef EDGEBENCH_POWER_ENERGY_HH
#define EDGEBENCH_POWER_ENERGY_HH

#include "edgebench/frameworks/framework.hh"
#include "edgebench/obs/trace.hh"

namespace edgebench
{
namespace power
{

/** Energy estimate for one deployment. */
struct EnergyResult
{
    double inferenceTimeMs = 0.0;
    /** Total device power while inferencing, Watts. */
    double activePowerW = 0.0;
    /** Power above idle attributable to the DNN, Watts. */
    double dynamicPowerW = 0.0;
    /** Energy per single-batch inference, millijoules. */
    double energyPerInferenceMJ = 0.0;
};

/**
 * Estimate energy per inference of a compiled deployment. Power is
 * the device's measured average power (Table III); the dynamic
 * component scales with the fraction of time compute (vs. memory
 * stall) dominates.
 */
EnergyResult energyPerInference(const frameworks::CompiledModel& m);

/**
 * Attach an "energy_mJ" attribute to every span in @p tracer: the
 * deployment's modeled active power (energyPerInference) integrated
 * over the span's simulated duration. Run this *after* the trace is
 * recorded — energy is an annotation pass injected from above, not an
 * instrumentation point (docs/ARCHITECTURE.md). Returns the active
 * power used, Watts.
 */
double annotateTraceEnergy(obs::Tracer& tracer,
                           const frameworks::CompiledModel& m);

/**
 * Battery life (hours) of a @p capacity_wh pack powering @p m while
 * serving @p request_rate_hz single-batch requests: the device idles
 * between requests and draws its active power during them. A rate
 * beyond the device's capacity clamps to 100% duty cycle.
 */
double batteryLifeHours(const frameworks::CompiledModel& m,
                        double capacity_wh, double request_rate_hz);

} // namespace power
} // namespace edgebench

#endif // EDGEBENCH_POWER_ENERGY_HH
