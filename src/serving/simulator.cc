#include "edgebench/serving/simulator.hh"

#include "edgebench/core/common.hh"
#include "edgebench/serving/fleet.hh"

namespace edgebench
{
namespace serving
{

ServingReport
simulateServing(const frameworks::InferenceSession& session,
                const ServingConfig& config)
{
    EB_CHECK(config.durationS > 0.0, "serving: non-positive duration");
    EB_CHECK(config.arrivalRateHz > 0.0,
             "serving: non-positive arrival rate");
    EB_CHECK(config.serviceJitter >= 0.0 &&
                 config.serviceJitter < 0.5,
             "serving: unreasonable jitter");

    // The paper's single-server scenario is a one-replica fleet with
    // an unbounded FIFO queue, no batching and no retry.
    FleetConfig fc;
    fc.durationS = config.durationS;
    fc.arrivalRateHz = config.arrivalRateHz;
    fc.deterministicArrivals = config.deterministicArrivals;
    fc.seed = config.seed;
    fc.serviceJitter = config.serviceJitter;
    fc.enableThermal = config.enableThermal;
    fc.ambientC = config.ambientC;
    fc.queueCapacity = 0;
    fc.balancer = BalancerPolicy::kRoundRobin;
    fc.maxBatch = 1;
    fc.retry = RetryPolicy{};
    fc.tracer = config.tracer;

    const FleetReport fleet = simulateFleet(session, 1, fc);
    const ReplicaReport& replica = fleet.replicas.front();

    ServingReport rep;
    rep.offered = fleet.offered;
    rep.served = fleet.served;
    rep.dropped = fleet.dropped;
    rep.inFlight = fleet.inFlight;
    rep.p50Ms = fleet.p50Ms;
    rep.p95Ms = fleet.p95Ms;
    rep.p99Ms = fleet.p99Ms;
    rep.maxMs = fleet.maxMs;
    // Single-server convention: rates are over the device's live
    // window (shutdown truncates it), matching the paper's framing of
    // "throughput until the device fell over".
    const double window = replica.thermalShutdown
        ? replica.shutdownAtS
        : config.durationS;
    rep.utilization = window > 0.0 ? replica.busyS / window : 0.0;
    rep.throughputHz = window > 0.0
        ? static_cast<double>(fleet.served) / window
        : 0.0;
    rep.energyJ = fleet.energyJ;
    rep.energyPerRequestJ = fleet.energyPerRequestJ;
    rep.thermalThrottled = replica.thermalThrottled;
    rep.thermalShutdown = replica.thermalShutdown;
    rep.shutdownAtS = replica.thermalShutdown ? replica.shutdownAtS
                                              : 0.0;
    rep.peakSurfaceC = replica.peakSurfaceC;
    return rep;
}

} // namespace serving
} // namespace edgebench
