#include "edgebench/serving/simulator.hh"

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/power/energy.hh"
#include "edgebench/thermal/thermal.hh"

namespace edgebench
{
namespace serving
{

namespace
{

double
percentile(const std::vector<double>& sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double idx = p * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(idx);
    const auto hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = idx - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/**
 * Walks the thermal model forward in one-second chunks, fed by the
 * busy intervals the queue produces. Keeps the energy integral as a
 * by-product.
 */
class ThermalWalker
{
  public:
    ThermalWalker(hw::DeviceId device, double ambient_c,
                  double idle_w, double active_w, bool enabled)
        : idleW_(idle_w), activeW_(active_w)
    {
        if (enabled) {
            try {
                sim_.emplace(device, ambient_c);
                peakC_ = sim_->surfaceC();
            } catch (const InvalidArgumentError&) {
                // Platform without thermal instrumentation.
            }
        }
    }

    /** Register a served busy interval [start, end). */
    void
    addBusy(double start, double end)
    {
        busy_.push_back({start, end});
    }

    /** Advance to @p to (seconds); returns false after shutdown. */
    bool
    advance(double to)
    {
        while (cursor_ + 1e-9 < to) {
            const double dt = std::min(1.0, to - cursor_);
            const double frac = busyFraction(cursor_, cursor_ + dt);
            const double p = idleW_ + (activeW_ - idleW_) * frac;
            energyJ_ += p * dt;
            if (sim_ && !sim_->shutDown()) {
                sim_->step(p, dt);
                peakC_ = std::max(peakC_, sim_->surfaceC());
                everThrottled_ |= sim_->throttled();
                if (sim_->shutDown()) {
                    shutdownAt_ = sim_->timeS();
                    return false;
                }
            }
            cursor_ += dt;
        }
        return !shutdownAt_.has_value();
    }

    double slowdown() const
    {
        return sim_ ? sim_->slowdownFactor() : 1.0;
    }
    bool throttledNow() const { return sim_ && sim_->throttled(); }
    bool everThrottled() const { return everThrottled_; }
    std::optional<double> shutdownAt() const { return shutdownAt_; }
    double energyJ() const { return energyJ_; }
    double peakC() const { return sim_ ? peakC_ : 0.0; }
    double cursor() const { return cursor_; }

  private:
    double
    busyFraction(double lo, double hi) const
    {
        double busy = 0.0;
        for (auto it = busy_.rbegin(); it != busy_.rend(); ++it) {
            if (it->second <= lo)
                break; // intervals are time-ordered
            busy += std::max(0.0, std::min(hi, it->second) -
                                      std::max(lo, it->first));
        }
        return std::clamp(busy / std::max(hi - lo, 1e-12), 0.0, 1.0);
    }

    std::optional<thermal::ThermalSimulator> sim_;
    std::vector<std::pair<double, double>> busy_;
    double idleW_;
    double activeW_;
    double cursor_ = 0.0;
    double energyJ_ = 0.0;
    double peakC_ = 0.0;
    bool everThrottled_ = false;
    std::optional<double> shutdownAt_;
};

} // namespace

ServingReport
simulateServing(const frameworks::InferenceSession& session,
                const ServingConfig& config)
{
    EB_CHECK(config.durationS > 0.0, "serving: non-positive duration");
    EB_CHECK(config.arrivalRateHz > 0.0,
             "serving: non-positive arrival rate");
    EB_CHECK(config.serviceJitter >= 0.0 &&
                 config.serviceJitter < 0.5,
             "serving: unreasonable jitter");

    core::Rng rng(config.seed);
    const double base_service_s =
        session.run(1).perInferenceMs / 1e3;
    const auto& device = hw::deviceSpec(session.model().device);
    const auto energy_model =
        power::energyPerInference(session.model());

    ThermalWalker walker(session.model().device, config.ambientC,
                         device.idlePowerW, energy_model.activePowerW,
                         config.enableThermal);

    ServingReport rep;
    std::vector<double> latencies_ms;
    double busy_s = 0.0;
    double server_free = 0.0;
    double t = 0.0;
    bool down = false;
    obs::Tracer* const tracer =
        obs::kEnabledAtBuild ? config.tracer : nullptr;

    while (true) {
        const double gap = config.deterministicArrivals
            ? 1.0 / config.arrivalRateHz
            : -std::log(1.0 - rng.uniform()) / config.arrivalRateHz;
        t += gap;
        if (t > config.durationS)
            break;
        ++rep.offered;
        if (down) {
            ++rep.dropped;
            if (tracer)
                tracer->instantAt("request dropped (device down)",
                                  "serving", t * 1e3);
            continue;
        }
        const double start = std::max(t, server_free);
        // Bring the thermal state up to the service start so the
        // throttle decision sees the current junction temperature.
        if (!walker.advance(std::min(start, config.durationS))) {
            down = true;
            ++rep.dropped;
            continue;
        }
        double service = base_service_s *
            (1.0 + rng.normal(0.0, config.serviceJitter));
        if (service <= 0.0)
            service = base_service_s;
        service *= walker.slowdown();
        const double end = start + service;
        walker.addBusy(start, end);
        if (!walker.advance(std::min(end, config.durationS))) {
            // The device died while serving this request.
            down = true;
            ++rep.dropped;
            continue;
        }
        if (end > config.durationS) {
            // Still in flight at window end: neither served nor
            // thermally dropped.
            server_free = end;
            continue;
        }
        server_free = end;
        ++rep.served;
        latencies_ms.push_back((end - t) * 1e3);
        busy_s += service;
        if (tracer) {
            const obs::SpanId s = tracer->recordSpanAt(
                "request[" + std::to_string(rep.offered - 1) + "]",
                "serving", t * 1e3, (end - t) * 1e3);
            tracer->argNum(s, "queue_ms", (start - t) * 1e3);
            tracer->argNum(s, "service_ms", service * 1e3);
        }
    }
    walker.advance(config.durationS);

    const double window = walker.shutdownAt()
        ? *walker.shutdownAt()
        : config.durationS;
    rep.utilization = window > 0.0 ? busy_s / window : 0.0;
    rep.throughputHz =
        window > 0.0 ? static_cast<double>(rep.served) / window : 0.0;
    rep.energyJ = walker.energyJ();
    rep.energyPerRequestJ =
        rep.served > 0 ? rep.energyJ / static_cast<double>(rep.served)
                       : 0.0;
    rep.thermalThrottled = walker.everThrottled();
    rep.thermalShutdown = walker.shutdownAt().has_value();
    rep.shutdownAtS = walker.shutdownAt().value_or(0.0);
    rep.peakSurfaceC = walker.peakC();

    std::sort(latencies_ms.begin(), latencies_ms.end());
    rep.p50Ms = percentile(latencies_ms, 0.50);
    rep.p95Ms = percentile(latencies_ms, 0.95);
    rep.p99Ms = percentile(latencies_ms, 0.99);
    rep.maxMs = latencies_ms.empty() ? 0.0 : latencies_ms.back();
    return rep;
}

} // namespace serving
} // namespace edgebench
