/**
 * @file
 * Discrete-event core of the serving simulator.
 *
 * A deterministic event heap on simulated time (seconds, the serving
 * timeline; consistent with core::VirtualClock semantics — time only
 * moves forward, nothing observes host clocks). Events at equal
 * timestamps pop in insertion order, so a fleet run is bit-reproducible
 * for a fixed seed regardless of heap internals.
 */

#ifndef EDGEBENCH_SERVING_EVENTS_HH
#define EDGEBENCH_SERVING_EVENTS_HH

#include <cstdint>
#include <vector>

namespace edgebench
{
namespace serving
{

/** What a scheduled event does when it fires. */
enum class EventKind
{
    kArrival,     ///< a new request enters the admission path
    kServiceDone, ///< a replica finishes its in-service batch
    kRetry,       ///< a rejected request re-enters after backoff
};

/** One scheduled event on the serving timeline. */
struct Event
{
    double timeS = 0.0;
    EventKind kind = EventKind::kArrival;
    /** Target replica (kServiceDone), -1 otherwise. */
    int replica = -1;
    /** Request being retried (kRetry), -1 otherwise. */
    std::int64_t requestId = -1;
};

/**
 * Min-heap of events ordered by (timeS, insertion order). The
 * secondary key makes simultaneous events FIFO — deterministic
 * tie-breaking is what keeps fleet runs reproducible.
 */
class EventQueue
{
  public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Schedule @p e; throws on non-finite or negative time. */
    void push(Event e);

    /** Earliest event (undefined when empty — check empty() first). */
    const Event& top() const { return heap_.front().event; }

    /** Remove and return the earliest event. */
    Event pop();

  private:
    struct Entry
    {
        Event event;
        std::uint64_t seq = 0;
    };

    /** std::push_heap comparator: true when a fires *later* than b. */
    static bool later(const Entry& a, const Entry& b);

    std::vector<Entry> heap_;
    std::uint64_t nextSeq_ = 0;
};

} // namespace serving
} // namespace edgebench

#endif // EDGEBENCH_SERVING_EVENTS_HH
