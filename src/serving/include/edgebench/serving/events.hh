/**
 * @file
 * Discrete-event core of the serving simulator.
 *
 * A deterministic event heap on simulated time (seconds, the serving
 * timeline; consistent with core::VirtualClock semantics — time only
 * moves forward, nothing observes host clocks). Events at equal
 * timestamps pop in insertion order, so a fleet run is bit-reproducible
 * for a fixed seed regardless of heap internals.
 *
 * TimelineQueue is the reusable primitive: a (time, insertion-order)
 * min-heap over an arbitrary payload. EventQueue specializes it for
 * the serving fleet; the distrib pipeline simulator reuses it with its
 * own event type (and a millisecond timeline).
 */

#ifndef EDGEBENCH_SERVING_EVENTS_HH
#define EDGEBENCH_SERVING_EVENTS_HH

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace serving
{

/**
 * Min-heap of (time, payload) entries ordered by (time, insertion
 * order). The secondary key makes simultaneous events FIFO —
 * deterministic tie-breaking is what keeps simulation runs
 * reproducible. Time units are whatever the caller's timeline uses.
 */
template <typename Payload>
class TimelineQueue
{
  public:
    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Schedule @p p at @p time; throws on non-finite/negative time. */
    void
    push(double time, Payload p)
    {
        EB_CHECK(std::isfinite(time) && time >= 0.0,
                 "timeline: bad event time " << time);
        heap_.push_back(Entry{time, nextSeq_++, std::move(p)});
        std::push_heap(heap_.begin(), heap_.end(), later);
    }

    /** Earliest time (undefined when empty — check empty() first). */
    double topTime() const { return heap_.front().time; }

    /** Earliest payload (undefined when empty). */
    const Payload& top() const { return heap_.front().payload; }

    /** Remove and return the earliest payload. */
    Payload
    pop()
    {
        EB_CHECK(!heap_.empty(), "timeline: pop on empty queue");
        std::pop_heap(heap_.begin(), heap_.end(), later);
        Payload p = std::move(heap_.back().payload);
        heap_.pop_back();
        return p;
    }

  private:
    struct Entry
    {
        double time = 0.0;
        std::uint64_t seq = 0;
        Payload payload;
    };

    /** std::push_heap comparator: true when a fires *later* than b. */
    static bool
    later(const Entry& a, const Entry& b)
    {
        if (a.time != b.time)
            return a.time > b.time;
        return a.seq > b.seq;
    }

    std::vector<Entry> heap_;
    std::uint64_t nextSeq_ = 0;
};

/** What a scheduled event does when it fires. */
enum class EventKind
{
    kArrival,     ///< a new request enters the admission path
    kServiceDone, ///< a replica finishes its in-service batch
    kRetry,       ///< a rejected request re-enters after backoff
};

/** One scheduled event on the serving timeline. */
struct Event
{
    double timeS = 0.0;
    EventKind kind = EventKind::kArrival;
    /** Target replica (kServiceDone), -1 otherwise. */
    int replica = -1;
    /** Request being retried (kRetry), -1 otherwise. */
    std::int64_t requestId = -1;
};

/**
 * The serving fleet's event heap: a TimelineQueue keyed by
 * Event::timeS (seconds).
 */
class EventQueue
{
  public:
    bool empty() const { return q_.empty(); }
    std::size_t size() const { return q_.size(); }

    /** Schedule @p e; throws on non-finite or negative time. */
    void push(Event e);

    /** Earliest event (undefined when empty — check empty() first). */
    const Event& top() const { return q_.top(); }

    /** Remove and return the earliest event. */
    Event pop();

  private:
    TimelineQueue<Event> q_;
};

} // namespace serving
} // namespace edgebench

#endif // EDGEBENCH_SERVING_EVENTS_HH
