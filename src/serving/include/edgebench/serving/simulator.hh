/**
 * @file
 * Edge request-serving simulator.
 *
 * The paper frames edge inference as serving a limited request stream
 * in real time (single-batch, Section I) and measures the pieces —
 * latency, power, temperature — separately. This module puts them
 * together: a single-server FIFO queue fed by a (deterministic or
 * Poisson) arrival process, with energy integrated over busy/idle
 * intervals and an optional thermal coupling that can take the device
 * down mid-run (the Fig. 14 RPi shutdown, now with consequences).
 *
 * simulateServing is a thin wrapper over the discrete-event fleet
 * simulator (fleet.hh) configured as one replica with an unbounded
 * queue; use simulateFleet directly for multi-replica scenarios,
 * bounded queues, balancer policies, micro-batching and retries.
 */

#ifndef EDGEBENCH_SERVING_SIMULATOR_HH
#define EDGEBENCH_SERVING_SIMULATOR_HH

#include <cstdint>

#include "edgebench/frameworks/runtime.hh"
#include "edgebench/obs/trace.hh"

namespace edgebench
{
namespace serving
{

/** Serving-scenario description. */
struct ServingConfig
{
    /** Wall-clock window to simulate, seconds. */
    double durationS = 600.0;
    /** Mean request arrival rate, Hz. */
    double arrivalRateHz = 1.0;
    /** Deterministic (evenly spaced) instead of Poisson arrivals. */
    bool deterministicArrivals = false;
    /** RNG seed (arrivals + service jitter). */
    std::uint64_t seed = 1;
    /** Relative service-time jitter (sigma). */
    double serviceJitter = 0.02;
    /** Couple the run to the device thermal model when available. */
    bool enableThermal = true;
    double ambientC = 25.0;
    /**
     * Optional trace sink: one "request" span per served request
     * (with queue_ms/service_ms args) on the serving timeline, plus
     * instants for drops and thermal shutdown. Null disables.
     */
    obs::Tracer* tracer = nullptr;
};

/**
 * Outcome of a serving run.
 *
 * Accounting invariant: every offered request lands in exactly one of
 * served / dropped / inFlight, so `offered == served + dropped +
 * inFlight` always holds (requests still queued or mid-service when
 * the window closes are inFlight — they are neither a success nor a
 * loss). The serving test suite asserts this on every report.
 */
struct ServingReport
{
    std::int64_t offered = 0;  ///< requests that arrived
    std::int64_t served = 0;   ///< completed before any shutdown
    std::int64_t dropped = 0;  ///< lost to thermal shutdown
    /** Still queued or in service at window end. */
    std::int64_t inFlight = 0;
    /** End-to-end (queue + service) latency percentiles, ms. */
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
    double throughputHz = 0.0; ///< served / window
    double utilization = 0.0;  ///< busy fraction of the window
    double energyJ = 0.0;      ///< total device energy over the window
    double energyPerRequestJ = 0.0;
    bool thermalThrottled = false; ///< soft throttle engaged at any point
    bool thermalShutdown = false;
    double shutdownAtS = 0.0;
    double peakSurfaceC = 0.0;
};

/** Simulate serving @p config on a deployed model. */
ServingReport simulateServing(
    const frameworks::InferenceSession& session,
    const ServingConfig& config);

} // namespace serving
} // namespace edgebench

#endif // EDGEBENCH_SERVING_SIMULATOR_HH
