/**
 * @file
 * Multi-replica request-serving fleet simulator.
 *
 * Generalizes the single-server loop of simulator.hh to N replicas
 * (possibly heterogeneous devices/frameworks) fed by one open-loop
 * arrival stream, on a discrete-event engine (events.hh):
 *
 *  - a *balancer* routes each arriving request to one alive replica
 *    (round-robin, least-loaded, or power-of-two-choices);
 *  - each replica owns a bounded FIFO admission queue; on overflow the
 *    drop policy either rejects the newcomer or evicts the oldest
 *    queued request;
 *  - rejected requests can retry with exponential backoff (they
 *    re-enter the balancer, so a retry may land on another replica);
 *  - a replica can serve up to maxBatch queued requests per service
 *    interval; the batch-k service time comes from the roofline model
 *    of the rebatched graph, so micro-batching gains are the device's
 *    real utilization-ramp gains, not a tuning knob;
 *  - every replica carries its own thermal/energy walker: one replica
 *    can throttle or thermally shut down while the fleet keeps
 *    serving. A dying replica's queue is re-routed through the
 *    balancer; its aborted in-service batch follows the retry policy.
 *
 * Accounting invariant (asserted by the serving test suite): every
 * offered request ends in exactly one bucket, so
 * `offered == served + dropped + inFlight` where inFlight counts
 * requests still queued, in service, or awaiting a retry when the
 * window closes.
 */

#ifndef EDGEBENCH_SERVING_FLEET_HH
#define EDGEBENCH_SERVING_FLEET_HH

#include <cstdint>
#include <vector>

#include "edgebench/frameworks/runtime.hh"
#include "edgebench/obs/trace.hh"

namespace edgebench
{
namespace serving
{

/** How the fleet routes an arriving request to a replica. */
enum class BalancerPolicy
{
    kRoundRobin,  ///< cyclic over alive replicas
    kLeastLoaded, ///< fewest queued+in-service requests, ties to the
                  ///< lowest replica index
    kPowerOfTwo,  ///< sample two alive replicas, take the less loaded
};

/** @return stable mnemonic, e.g. "round_robin". */
std::string balancerName(BalancerPolicy p);
/** Inverse of balancerName; also accepts "rr", "least", "p2c". */
BalancerPolicy balancerByName(const std::string& name);

/** What happens when a replica's admission queue is full. */
enum class DropPolicy
{
    kRejectNew,  ///< the arriving request is rejected
    kDropOldest, ///< the oldest queued request is evicted to make room
};

/** Backoff-and-retry behaviour for rejected/aborted requests. */
struct RetryPolicy
{
    /** Retry attempts after the first try (0 disables retry). */
    int maxAttempts = 0;
    /** First backoff delay, seconds. */
    double backoffS = 0.5;
    /** Multiplier applied per successive attempt (>= 1). */
    double backoffMult = 2.0;
};

/** Fleet-scenario description. */
struct FleetConfig
{
    /** Wall-clock window to simulate, seconds. */
    double durationS = 600.0;
    /** Mean request arrival rate into the fleet, Hz. */
    double arrivalRateHz = 1.0;
    /** Deterministic (evenly spaced) instead of Poisson arrivals. */
    bool deterministicArrivals = false;
    /** RNG seed (arrivals, service jitter, balancer choices). */
    std::uint64_t seed = 1;
    /** Relative service-time jitter (sigma). */
    double serviceJitter = 0.02;
    /** Couple replicas to their device thermal models if available. */
    bool enableThermal = true;
    double ambientC = 25.0;
    /** Per-replica admission-queue capacity (0 = unbounded). */
    std::size_t queueCapacity = 0;
    BalancerPolicy balancer = BalancerPolicy::kRoundRobin;
    DropPolicy dropPolicy = DropPolicy::kRejectNew;
    /** Max requests a replica serves per service interval (>= 1). */
    int maxBatch = 1;
    RetryPolicy retry;
    /**
     * Optional trace sink. Request spans land on one lane per replica
     * (lane r+1, named "replica r: <device>"); admission events
     * (rejects, fleet-dead drops) land on lane 0 ("fleet").
     */
    obs::Tracer* tracer = nullptr;
};

/** Per-replica outcome. */
struct ReplicaReport
{
    std::int64_t served = 0;  ///< requests completed in the window
    std::int64_t dropped = 0; ///< requests this replica gave up on
    std::int64_t batches = 0; ///< completed service intervals
    double busyS = 0.0;       ///< time spent serving completed work
    double utilization = 0.0; ///< busyS over the replica's live window
    double energyJ = 0.0;
    double peakSurfaceC = 0.0;
    bool thermalThrottled = false;
    bool thermalShutdown = false;
    double shutdownAtS = 0.0;
};

/** Outcome of a fleet run. */
struct FleetReport
{
    std::int64_t offered = 0; ///< requests that arrived
    std::int64_t served = 0;
    std::int64_t dropped = 0;
    /** Queued, in service, or awaiting retry at window end. */
    std::int64_t inFlight = 0;
    /** Queue-full rejections (before any retry succeeded). */
    std::int64_t rejected = 0;
    /** Retry attempts scheduled. */
    std::int64_t retries = 0;
    /** End-to-end (first arrival to completion) latency, ms. */
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double maxMs = 0.0;
    double throughputHz = 0.0; ///< served / durationS
    double utilization = 0.0;  ///< fleet busy fraction of live time
    double energyJ = 0.0;      ///< summed over replicas
    double energyPerRequestJ = 0.0;
    int aliveReplicas = 0; ///< replicas still up at window end
    std::vector<ReplicaReport> replicas;

    /** The accounting invariant every run must satisfy. */
    bool accountingConsistent() const
    {
        return offered == served + dropped + inFlight;
    }
};

/**
 * Simulate @p config against a heterogeneous fleet, one entry per
 * replica. Pointers must be non-null and outlive the call.
 */
FleetReport simulateFleet(
    const std::vector<const frameworks::InferenceSession*>& replicas,
    const FleetConfig& config);

/** Homogeneous fleet: @p replicas copies of one deployment. */
FleetReport simulateFleet(const frameworks::InferenceSession& session,
                          int replicas, const FleetConfig& config);

} // namespace serving
} // namespace edgebench

#endif // EDGEBENCH_SERVING_FLEET_HH
