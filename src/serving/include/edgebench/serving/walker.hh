/**
 * @file
 * Per-replica thermal/energy walker.
 *
 * Walks one device's thermal model forward in one-second chunks, fed
 * by the busy intervals a discrete-event loop produces. Keeps the
 * energy integral as a by-product. After a thermal shutdown the device
 * is off: busy intervals are truncated at the shutdown instant and the
 * remaining window dissipates zero power.
 *
 * Shared by the serving fleet (one walker per replica) and the distrib
 * pipeline simulator (one walker per stage device). The timeline is in
 * seconds — callers on a millisecond timeline convert at the boundary.
 */

#ifndef EDGEBENCH_SERVING_WALKER_HH
#define EDGEBENCH_SERVING_WALKER_HH

#include <optional>
#include <utility>
#include <vector>

#include "edgebench/hw/device.hh"
#include "edgebench/thermal/thermal.hh"

namespace edgebench
{
namespace serving
{

class ThermalWalker
{
  public:
    /**
     * @param enabled couple to the device's thermal model when it has
     *        one; when false (or the platform has no thermal
     *        instrumentation) only the energy integral is kept.
     */
    ThermalWalker(hw::DeviceId device, double ambient_c, double idle_w,
                  double active_w, bool enabled);

    /** Register a busy interval [start, end); starts are monotonic. */
    void addBusy(double start, double end);

    /** Advance to @p to (seconds); returns false after shutdown. */
    bool advance(double to);

    /** Current thermal-throttle service-time multiplier (>= 1). */
    double slowdown() const
    {
        return sim_ ? sim_->slowdownFactor() : 1.0;
    }
    bool everThrottled() const { return everThrottled_; }
    std::optional<double> shutdownAt() const { return shutdownAt_; }
    double energyJ() const { return energyJ_; }
    double peakC() const { return sim_ ? peakC_ : 0.0; }

  private:
    void prune();
    void truncateBusyAt(double t);
    double busyFraction(double lo, double hi) const;

    std::optional<thermal::ThermalSimulator> sim_;
    std::vector<std::pair<double, double>> busy_;
    std::size_t pruned_ = 0;
    double idleW_;
    double activeW_;
    double cursor_ = 0.0;
    double energyJ_ = 0.0;
    double peakC_ = 0.0;
    bool everThrottled_ = false;
    std::optional<double> shutdownAt_;
};

} // namespace serving
} // namespace edgebench

#endif // EDGEBENCH_SERVING_WALKER_HH
