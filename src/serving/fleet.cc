#include "edgebench/serving/fleet.hh"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/graph/passes.hh"
#include "edgebench/harness/stats.hh"
#include "edgebench/hw/roofline.hh"
#include "edgebench/power/energy.hh"
#include "edgebench/serving/events.hh"
#include "edgebench/serving/walker.hh"
#include "edgebench/thermal/thermal.hh"

namespace edgebench
{
namespace serving
{

namespace
{

/**
 * Batch-k service-time multipliers from the roofline of the rebatched
 * graph: scale[k] = latency(batch k) / latency(batch 1). Falls back
 * to linear scaling when the compiled graph cannot be rebatched.
 */
std::vector<double>
batchScales(const frameworks::CompiledModel& model, int max_batch)
{
    std::vector<double> scale(
        static_cast<std::size_t>(max_batch) + 1, 1.0);
    if (max_batch <= 1)
        return scale;
    try {
        const double base =
            hw::graphLatencyUnchecked(model.graph, model.computeUnit(),
                                      model.profile)
                .totalMs;
        for (int k = 2; k <= max_batch; ++k) {
            const auto gb = graph::rebatch(model.graph, k).graph;
            const double ms = hw::graphLatencyUnchecked(
                                  gb, model.computeUnit(), model.profile)
                                  .totalMs;
            scale[static_cast<std::size_t>(k)] =
                std::max(ms / std::max(base, 1e-12), 1.0);
        }
    } catch (const Error&) {
        for (int k = 2; k <= max_batch; ++k)
            scale[static_cast<std::size_t>(k)] = k;
    }
    return scale;
}

struct Request
{
    std::int64_t id = -1;
    double arrivalS = 0.0; ///< first arrival (latency baseline)
    /** Service-time jitter factor, assigned once on admission. */
    double jitter = 0.0;
    int attempts = 0;      ///< retries consumed so far
};

struct Replica
{
    const frameworks::InferenceSession* session = nullptr;
    double baseServiceS = 0.0;
    std::vector<double> batchScale;
    ThermalWalker walker;
    std::deque<Request> queue;
    std::vector<Request> inService;
    double serviceStartS = 0.0;
    bool busy = false;
    bool down = false;
    ReplicaReport stats;

    Replica(const frameworks::InferenceSession* s, double ambient_c,
            bool thermal, int max_batch)
        : session(s),
          baseServiceS(s->run(1).perInferenceMs / 1e3),
          batchScale(batchScales(s->model(), max_batch)),
          walker(s->model().device, ambient_c,
                 hw::deviceSpec(s->model().device).idlePowerW,
                 power::energyPerInference(s->model()).activePowerW,
                 thermal)
    {
    }

    std::size_t load() const { return queue.size() + inService.size(); }
};

class FleetEngine
{
  public:
    FleetEngine(
        const std::vector<const frameworks::InferenceSession*>& fleet,
        const FleetConfig& config)
        : cfg_(config), rng_(config.seed),
          choiceRng_(config.seed ^ 0xD1B54A32D192ED03ull),
          tracer_(obs::kEnabledAtBuild ? config.tracer : nullptr)
    {
        replicas_.reserve(fleet.size());
        for (const auto* s : fleet)
            replicas_.emplace_back(s, cfg_.ambientC, cfg_.enableThermal,
                                   cfg_.maxBatch);
        if (tracer_) {
            tracer_->nameLane(0, "fleet");
            for (std::size_t r = 0; r < replicas_.size(); ++r)
                tracer_->nameLane(
                    static_cast<int>(r) + 1,
                    "replica " + std::to_string(r) + ": " +
                        hw::deviceName(
                            replicas_[r].session->model().device));
        }
    }

    FleetReport
    run()
    {
        const double first = nextGap();
        if (first <= cfg_.durationS)
            events_.push({first, EventKind::kArrival, -1, -1});
        while (!events_.empty() &&
               events_.top().timeS <= cfg_.durationS + 1e-12) {
            const Event e = events_.pop();
            switch (e.kind) {
              case EventKind::kArrival: onArrival(e.timeS); break;
              case EventKind::kServiceDone:
                onServiceDone(e.replica, e.timeS);
                break;
              case EventKind::kRetry: onRetry(e.timeS, e.requestId);
                break;
            }
        }
        return finish();
    }

  private:
    double
    nextGap()
    {
        return cfg_.deterministicArrivals
            ? 1.0 / cfg_.arrivalRateHz
            : -std::log(1.0 - rng_.uniform()) / cfg_.arrivalRateHz;
    }

    bool
    anyAlive() const
    {
        for (const auto& r : replicas_)
            if (!r.down)
                return true;
        return false;
    }

    void
    onArrival(double t)
    {
        Request req;
        req.id = rep_.offered++;
        req.arrivalS = t;
        // RNG discipline: one shared stream, jitter drawn on
        // admission then the next inter-arrival gap — the exact draw
        // order of the legacy single-server loop, so a one-replica
        // fleet replays its scenarios stream-identically. (A dead
        // fleet admits nothing, hence draws no jitter — also as
        // before.)
        if (anyAlive())
            req.jitter = rng_.normal(0.0, cfg_.serviceJitter);
        const double next = t + nextGap();
        if (next <= cfg_.durationS)
            events_.push({next, EventKind::kArrival, -1, -1});
        dispatch(t, req);
    }

    void
    onRetry(double t, std::int64_t id)
    {
        const auto it = pendingRetry_.find(id);
        EB_CHECK(it != pendingRetry_.end(),
                 "fleet: retry event for unknown request " << id);
        const Request req = it->second;
        pendingRetry_.erase(it);
        dispatch(t, req);
    }

    /** Route @p req through the balancer and into a replica queue. */
    void
    dispatch(double t, Request req)
    {
        const int r = pickReplica();
        if (r < 0) {
            ++rep_.dropped;
            if (tracer_)
                tracer_->instantAt("request dropped (all replicas "
                                   "down)",
                                   "serving", t * 1e3, 0);
            return;
        }
        Replica& rep = replicas_[static_cast<std::size_t>(r)];
        if (cfg_.queueCapacity > 0 &&
            rep.queue.size() >= cfg_.queueCapacity) {
            ++rep_.rejected;
            if (cfg_.dropPolicy == DropPolicy::kRejectNew) {
                rejectOrRetry(t, req);
                return;
            }
            // kDropOldest: evict the head to make room.
            const Request evicted = rep.queue.front();
            rep.queue.pop_front();
            rejectOrRetry(t, evicted);
        }
        rep.queue.push_back(req);
        tryStartService(r, t);
    }

    /** Apply the retry policy to a rejected/aborted request. */
    void
    rejectOrRetry(double t, Request req)
    {
        if (req.attempts < cfg_.retry.maxAttempts) {
            const double delay = cfg_.retry.backoffS *
                std::pow(cfg_.retry.backoffMult, req.attempts);
            ++req.attempts;
            ++rep_.retries;
            pendingRetry_.emplace(req.id, req);
            events_.push(
                {t + delay, EventKind::kRetry, -1, req.id});
            return;
        }
        ++rep_.dropped;
        if (tracer_)
            tracer_->instantAt("request rejected (queue full)",
                               "serving", t * 1e3, 0);
    }

    /** Balancer: pick an alive replica, or -1 when none is left. */
    int
    pickReplica()
    {
        const int n = static_cast<int>(replicas_.size());
        int alive = 0;
        for (const auto& r : replicas_)
            alive += !r.down;
        if (alive == 0)
            return -1;
        auto nextAliveFrom = [&](int i) {
            while (replicas_[static_cast<std::size_t>(i % n)].down)
                ++i;
            return i % n;
        };
        switch (cfg_.balancer) {
          case BalancerPolicy::kRoundRobin: {
            const int r = nextAliveFrom(rrNext_);
            rrNext_ = (r + 1) % n;
            return r;
          }
          case BalancerPolicy::kLeastLoaded: {
            int best = -1;
            for (int i = 0; i < n; ++i) {
                const auto& ri = replicas_[static_cast<std::size_t>(i)];
                if (ri.down)
                    continue;
                if (best < 0 ||
                    ri.load() <
                        replicas_[static_cast<std::size_t>(best)]
                            .load())
                    best = i;
            }
            return best;
          }
          case BalancerPolicy::kPowerOfTwo: {
            if (alive == 1)
                return nextAliveFrom(0);
            // Sample two distinct alive replicas; ties go to the
            // first sample (deterministic given the seed).
            const int a = nthAlive(static_cast<int>(
                choiceRng_.uniformInt(0, alive - 1)));
            int b = a;
            while (b == a)
                b = nthAlive(static_cast<int>(
                    choiceRng_.uniformInt(0, alive - 1)));
            return replicas_[static_cast<std::size_t>(b)].load() <
                    replicas_[static_cast<std::size_t>(a)].load()
                ? b
                : a;
          }
        }
        return -1;
    }

    int
    nthAlive(int k) const
    {
        for (std::size_t i = 0; i < replicas_.size(); ++i)
            if (!replicas_[i].down && k-- == 0)
                return static_cast<int>(i);
        EB_CHECK(false, "fleet: alive-replica index out of range");
        return -1;
    }

    /** Begin the next service interval on @p r if it can accept one. */
    void
    tryStartService(int r, double t)
    {
        Replica& rep = replicas_[static_cast<std::size_t>(r)];
        if (rep.down || rep.busy || rep.queue.empty())
            return;
        // Bring the thermal state up to the service start so the
        // throttle decision sees the current junction temperature.
        if (!rep.walker.advance(std::min(t, cfg_.durationS))) {
            onReplicaDeath(r, *rep.walker.shutdownAt(), t, true);
            return;
        }
        const int k = static_cast<int>(
            std::min<std::size_t>(
                static_cast<std::size_t>(cfg_.maxBatch),
                rep.queue.size()));
        rep.inService.assign(rep.queue.begin(), rep.queue.begin() + k);
        rep.queue.erase(rep.queue.begin(), rep.queue.begin() + k);
        const double nominal = rep.baseServiceS *
            rep.batchScale[static_cast<std::size_t>(k)];
        // A batch inherits the jitter of its lead request.
        double service = nominal * (1.0 + rep.inService.front().jitter);
        if (service <= 0.0)
            service = nominal;
        service *= rep.walker.slowdown();
        rep.serviceStartS = t;
        rep.busy = true;
        rep.walker.addBusy(t, t + service);
        events_.push({t + service, EventKind::kServiceDone, r, -1});
    }

    void
    onServiceDone(int r, double t)
    {
        Replica& rep = replicas_[static_cast<std::size_t>(r)];
        if (rep.down)
            return; // stale event from before the replica died
        if (!rep.walker.advance(std::min(t, cfg_.durationS))) {
            // The device died while serving this batch.
            onReplicaDeath(r, *rep.walker.shutdownAt(), t, true);
            return;
        }
        for (const Request& req : rep.inService) {
            ++rep_.served;
            ++rep.stats.served;
            const double latency_ms = (t - req.arrivalS) * 1e3;
            latenciesMs_.push_back(latency_ms);
            if (tracer_) {
                const obs::SpanId s = tracer_->recordSpanAt(
                    "request[" + std::to_string(req.id) + "]",
                    "serving", req.arrivalS * 1e3, latency_ms, r + 1);
                tracer_->argNum(s, "queue_ms",
                                (rep.serviceStartS - req.arrivalS) *
                                    1e3);
                tracer_->argNum(s, "service_ms",
                                (t - rep.serviceStartS) * 1e3);
                if (cfg_.maxBatch > 1)
                    tracer_->argNum(
                        s, "batch",
                        static_cast<double>(rep.inService.size()));
            }
        }
        rep.stats.busyS += t - rep.serviceStartS;
        ++rep.stats.batches;
        rep.inService.clear();
        rep.busy = false;
        tryStartService(r, t);
    }

    /**
     * Take replica @p r out of the fleet. @p at is the physical
     * shutdown instant (reported); @p now is the event time the death
     * is detected at — all rescheduling uses @p now so simulated time
     * never runs backwards. The aborted in-service batch follows the
     * retry policy; queued requests are re-routed through the
     * balancer (when @p redispatch — the window-end sweep leaves them
     * in flight instead).
     */
    void
    onReplicaDeath(int r, double at, double now, bool redispatch)
    {
        Replica& rep = replicas_[static_cast<std::size_t>(r)];
        rep.down = true;
        rep.busy = false;
        rep.stats.thermalShutdown = true;
        rep.stats.shutdownAtS = at;
        if (tracer_)
            tracer_->instantAt("replica thermal shutdown", "serving",
                               at * 1e3, r + 1);
        std::vector<Request> aborted;
        aborted.swap(rep.inService);
        std::deque<Request> queued;
        queued.swap(rep.queue);
        for (const Request& req : aborted)
            rejectOrRetry(now, req);
        if (redispatch) {
            for (const Request& req : queued)
                dispatch(now, req);
        } else {
            // Window-end sweep: the queue stays in flight.
            rep.queue = std::move(queued);
        }
    }

    FleetReport
    finish()
    {
        // Integrate every replica's idle/busy energy (0 W once dead)
        // out to the window end, catching deaths after the last event.
        for (std::size_t r = 0; r < replicas_.size(); ++r) {
            Replica& rep = replicas_[r];
            if (!rep.walker.advance(cfg_.durationS) && !rep.down)
                onReplicaDeath(static_cast<int>(r),
                               *rep.walker.shutdownAt(),
                               cfg_.durationS, false);
        }

        double busy_total = 0.0, window_total = 0.0;
        for (Replica& rep : replicas_) {
            ReplicaReport& s = rep.stats;
            s.energyJ = rep.walker.energyJ();
            s.peakSurfaceC = rep.walker.peakC();
            s.thermalThrottled = rep.walker.everThrottled();
            const double window =
                s.thermalShutdown ? s.shutdownAtS : cfg_.durationS;
            s.utilization = window > 0.0 ? s.busyS / window : 0.0;
            rep_.energyJ += s.energyJ;
            rep_.inFlight +=
                static_cast<std::int64_t>(rep.queue.size()) +
                static_cast<std::int64_t>(rep.inService.size());
            rep_.aliveReplicas += !rep.down;
            busy_total += s.busyS;
            window_total += window;
            rep_.replicas.push_back(s);
        }
        rep_.inFlight +=
            static_cast<std::int64_t>(pendingRetry_.size());
        rep_.throughputHz = cfg_.durationS > 0.0
            ? static_cast<double>(rep_.served) / cfg_.durationS
            : 0.0;
        rep_.utilization =
            window_total > 0.0 ? busy_total / window_total : 0.0;
        rep_.energyPerRequestJ = rep_.served > 0
            ? rep_.energyJ / static_cast<double>(rep_.served)
            : 0.0;

        std::sort(latenciesMs_.begin(), latenciesMs_.end());
        rep_.p50Ms = harness::Stats::percentile(latenciesMs_, 0.50);
        rep_.p95Ms = harness::Stats::percentile(latenciesMs_, 0.95);
        rep_.p99Ms = harness::Stats::percentile(latenciesMs_, 0.99);
        rep_.maxMs = latenciesMs_.empty() ? 0.0 : latenciesMs_.back();

        EB_CHECK(rep_.accountingConsistent(),
                 "fleet: accounting leak — offered "
                     << rep_.offered << " != served " << rep_.served
                     << " + dropped " << rep_.dropped << " + inFlight "
                     << rep_.inFlight);
        return std::move(rep_);
    }

    FleetConfig cfg_;
    /**
     * Main stream. Draw order per arrival is jitter-then-gap, which
     * reproduces the legacy single-server loop's interleaving
     * (gap_1, jitter_1, gap_2, jitter_2, ...) bit for bit.
     */
    core::Rng rng_;
    /** Separate stream so p2c sampling never perturbs rng_. */
    core::Rng choiceRng_;
    obs::Tracer* tracer_;
    std::vector<Replica> replicas_;
    EventQueue events_;
    std::map<std::int64_t, Request> pendingRetry_;
    std::vector<double> latenciesMs_;
    int rrNext_ = 0;
    FleetReport rep_;
};

} // namespace

std::string
balancerName(BalancerPolicy p)
{
    switch (p) {
      case BalancerPolicy::kRoundRobin: return "round_robin";
      case BalancerPolicy::kLeastLoaded: return "least_loaded";
      case BalancerPolicy::kPowerOfTwo: return "power_of_two";
    }
    EB_CHECK(false, "balancerName: bad policy");
    return {};
}

BalancerPolicy
balancerByName(const std::string& name)
{
    if (name == "round_robin" || name == "rr")
        return BalancerPolicy::kRoundRobin;
    if (name == "least_loaded" || name == "least")
        return BalancerPolicy::kLeastLoaded;
    if (name == "power_of_two" || name == "p2c")
        return BalancerPolicy::kPowerOfTwo;
    EB_CHECK(false, "unknown balancer '" << name
                                         << "' (round_robin | "
                                            "least_loaded | "
                                            "power_of_two)");
    return BalancerPolicy::kRoundRobin;
}

FleetReport
simulateFleet(
    const std::vector<const frameworks::InferenceSession*>& replicas,
    const FleetConfig& config)
{
    EB_CHECK(!replicas.empty(), "fleet: no replicas");
    for (const auto* s : replicas)
        EB_CHECK(s != nullptr, "fleet: null replica session");
    EB_CHECK(config.durationS > 0.0, "fleet: non-positive duration");
    EB_CHECK(config.arrivalRateHz > 0.0,
             "fleet: non-positive arrival rate");
    EB_CHECK(config.serviceJitter >= 0.0 &&
                 config.serviceJitter < 0.5,
             "fleet: unreasonable jitter");
    EB_CHECK(config.maxBatch >= 1, "fleet: maxBatch must be >= 1");
    EB_CHECK(config.retry.maxAttempts >= 0,
             "fleet: negative retry attempts");
    EB_CHECK(config.retry.backoffS >= 0.0,
             "fleet: negative retry backoff");
    EB_CHECK(config.retry.backoffMult >= 1.0,
             "fleet: retry backoff multiplier must be >= 1");
    return FleetEngine(replicas, config).run();
}

FleetReport
simulateFleet(const frameworks::InferenceSession& session,
              int replicas, const FleetConfig& config)
{
    EB_CHECK(replicas >= 1, "fleet: need at least one replica");
    const std::vector<const frameworks::InferenceSession*> fleet(
        static_cast<std::size_t>(replicas), &session);
    return simulateFleet(fleet, config);
}

} // namespace serving
} // namespace edgebench
