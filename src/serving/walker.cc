#include "edgebench/serving/walker.hh"

#include <algorithm>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace serving
{

ThermalWalker::ThermalWalker(hw::DeviceId device, double ambient_c,
                             double idle_w, double active_w,
                             bool enabled)
    : idleW_(idle_w), activeW_(active_w)
{
    if (enabled) {
        try {
            sim_.emplace(device, ambient_c);
            peakC_ = sim_->surfaceC();
        } catch (const InvalidArgumentError&) {
            // Platform without thermal instrumentation.
        }
    }
}

void
ThermalWalker::addBusy(double start, double end)
{
    if (shutdownAt_)
        return; // a dead device serves nothing
    busy_.push_back({start, end});
}

bool
ThermalWalker::advance(double to)
{
    while (cursor_ + 1e-9 < to) {
        const double dt = std::min(1.0, to - cursor_);
        if (!shutdownAt_) {
            const double frac = busyFraction(cursor_, cursor_ + dt);
            const double p = idleW_ + (activeW_ - idleW_) * frac;
            energyJ_ += p * dt;
            if (sim_ && !sim_->shutDown()) {
                sim_->step(p, dt);
                peakC_ = std::max(peakC_, sim_->surfaceC());
                everThrottled_ |= sim_->throttled();
                if (sim_->shutDown()) {
                    shutdownAt_ = sim_->timeS();
                    truncateBusyAt(*shutdownAt_);
                }
            }
        }
        cursor_ += dt;
        prune();
    }
    return !shutdownAt_.has_value();
}

/**
 * Drop intervals that end at or before the cursor: busyFraction is
 * only ever asked about [cursor, cursor+dt), so they can never overlap
 * a future chunk. Without this the scan is O(intervals) per one-second
 * chunk — quadratic over a long serving run.
 */
void
ThermalWalker::prune()
{
    while (pruned_ < busy_.size() &&
           busy_[pruned_].second <= cursor_ + 1e-12)
        ++pruned_;
    if (pruned_ > 1024 && pruned_ * 2 > busy_.size()) {
        busy_.erase(busy_.begin(),
                    busy_.begin() +
                        static_cast<std::ptrdiff_t>(pruned_));
        pruned_ = 0;
    }
}

/**
 * A shutdown mid-service must not keep charging the aborted request's
 * busy tail: clip every interval at @p t and drop the ones that had
 * not even started.
 */
void
ThermalWalker::truncateBusyAt(double t)
{
    while (!busy_.empty() && busy_.back().first >= t)
        busy_.pop_back();
    if (!busy_.empty())
        busy_.back().second = std::min(busy_.back().second, t);
    pruned_ = std::min(pruned_, busy_.size());
}

double
ThermalWalker::busyFraction(double lo, double hi) const
{
    double busy = 0.0;
    for (std::size_t i = pruned_; i < busy_.size(); ++i) {
        if (busy_[i].first >= hi)
            break; // intervals are start-ordered
        busy += std::max(0.0, std::min(hi, busy_[i].second) -
                                  std::max(lo, busy_[i].first));
    }
    return std::clamp(busy / std::max(hi - lo, 1e-12), 0.0, 1.0);
}

} // namespace serving
} // namespace edgebench
