#include "edgebench/serving/events.hh"

namespace edgebench
{
namespace serving
{

void
EventQueue::push(Event e)
{
    const double t = e.timeS;
    q_.push(t, std::move(e));
}

Event
EventQueue::pop()
{
    EB_CHECK(!q_.empty(), "EventQueue: pop on empty queue");
    return q_.pop();
}

} // namespace serving
} // namespace edgebench
