#include "edgebench/serving/events.hh"

#include <algorithm>
#include <cmath>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace serving
{

bool
EventQueue::later(const Entry& a, const Entry& b)
{
    if (a.event.timeS != b.event.timeS)
        return a.event.timeS > b.event.timeS;
    return a.seq > b.seq;
}

void
EventQueue::push(Event e)
{
    EB_CHECK(std::isfinite(e.timeS) && e.timeS >= 0.0,
             "EventQueue: bad event time " << e.timeS);
    heap_.push_back(Entry{e, nextSeq_++});
    std::push_heap(heap_.begin(), heap_.end(), later);
}

Event
EventQueue::pop()
{
    EB_CHECK(!heap_.empty(), "EventQueue: pop on empty queue");
    std::pop_heap(heap_.begin(), heap_.end(), later);
    const Event e = heap_.back().event;
    heap_.pop_back();
    return e;
}

} // namespace serving
} // namespace edgebench
