#include "edgebench/core/tensor.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace core
{

float
roundThroughF16(float v)
{
    // Software binary16 round-trip (round-to-nearest-even), portable
    // without relying on compiler __fp16 extensions.
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));

    const std::uint32_t sign = (bits >> 16) & 0x8000u;
    const std::int32_t exponent =
        static_cast<std::int32_t>((bits >> 23) & 0xFFu) - 127 + 15;
    std::uint32_t mantissa = bits & 0x7FFFFFu;

    std::uint16_t half;
    if (((bits >> 23) & 0xFFu) == 0xFFu) {
        // Inf / NaN.
        half = static_cast<std::uint16_t>(
            sign | 0x7C00u | (mantissa ? 0x200u : 0u));
    } else if (exponent >= 0x1F) {
        half = static_cast<std::uint16_t>(sign | 0x7C00u); // overflow->inf
    } else if (exponent <= 0) {
        if (exponent < -10) {
            half = static_cast<std::uint16_t>(sign); // underflow -> 0
        } else {
            // Subnormal half.
            mantissa |= 0x800000u;
            const int shift = 14 - exponent;
            std::uint32_t m = mantissa >> shift;
            const std::uint32_t rem = mantissa & ((1u << shift) - 1);
            const std::uint32_t halfway = 1u << (shift - 1);
            if (rem > halfway || (rem == halfway && (m & 1)))
                ++m;
            half = static_cast<std::uint16_t>(sign | m);
        }
    } else {
        std::uint32_t m = mantissa >> 13;
        const std::uint32_t rem = mantissa & 0x1FFFu;
        if (rem > 0x1000u || (rem == 0x1000u && (m & 1)))
            ++m;
        std::uint32_t h = sign | (static_cast<std::uint32_t>(exponent)
                                  << 10) | m;
        half = static_cast<std::uint16_t>(h); // mantissa carry bumps exp
    }

    // Expand back to fp32.
    const std::uint32_t hsign = (half & 0x8000u) << 16;
    const std::uint32_t hexp = (half >> 10) & 0x1Fu;
    const std::uint32_t hman = half & 0x3FFu;
    std::uint32_t out;
    if (hexp == 0) {
        if (hman == 0) {
            out = hsign;
        } else {
            // Normalize subnormal.
            int e = -1;
            std::uint32_t m = hman;
            do {
                ++e;
                m <<= 1;
            } while ((m & 0x400u) == 0);
            out = hsign | static_cast<std::uint32_t>(127 - 15 - e) << 23
                | ((m & 0x3FFu) << 13);
        }
    } else if (hexp == 0x1Fu) {
        out = hsign | 0x7F800000u | (hman << 13);
    } else {
        out = hsign | ((hexp - 15 + 127) << 23) | (hman << 13);
    }
    float result;
    std::memcpy(&result, &out, sizeof(result));
    return result;
}

namespace
{

/** Per-thread armed destination for the next kernel output tensor. */
struct SinkState
{
    bool armed = false;
    bool isI8 = false;
    bool clear = false;
    bool consumed = false;
    Shape shape;
    float* f32 = nullptr;
    std::int8_t* i8 = nullptr;
    std::int64_t len = 0;
};

SinkState&
sinkState()
{
    thread_local SinkState state;
    return state;
}

std::atomic<std::int64_t> sCopyCount{0};

} // namespace

void
OutputSink::armF32(const Shape& shape, std::span<float> dst, bool clear)
{
    SinkState& s = sinkState();
    EB_CHECK(static_cast<std::int64_t>(dst.size()) == numElements(shape),
             "OutputSink::armF32: slot size " << dst.size()
                 << " does not match shape " << shapeToString(shape));
    s.armed = true;
    s.isI8 = false;
    s.clear = clear;
    s.consumed = false;
    s.shape = shape;
    s.f32 = dst.data();
    s.i8 = nullptr;
    s.len = static_cast<std::int64_t>(dst.size());
}

void
OutputSink::armI8(const Shape& shape, std::span<std::int8_t> dst,
                  bool clear)
{
    SinkState& s = sinkState();
    EB_CHECK(static_cast<std::int64_t>(dst.size()) == numElements(shape),
             "OutputSink::armI8: slot size " << dst.size()
                 << " does not match shape " << shapeToString(shape));
    s.armed = true;
    s.isI8 = true;
    s.clear = clear;
    s.consumed = false;
    s.shape = shape;
    s.f32 = nullptr;
    s.i8 = dst.data();
    s.len = static_cast<std::int64_t>(dst.size());
}

void
OutputSink::disarm()
{
    SinkState& s = sinkState();
    s.armed = false;
    s.f32 = nullptr;
    s.i8 = nullptr;
    s.len = 0;
}

bool
OutputSink::consumed()
{
    return sinkState().consumed;
}

std::span<float>
OutputSink::takeF32(const Shape& shape)
{
    SinkState& s = sinkState();
    if (!s.armed || s.consumed || s.isI8 || !sameShape(shape, s.shape) ||
        s.len == 0)
        return {};
    s.consumed = true;
    if (s.clear)
        std::memset(s.f32, 0, static_cast<std::size_t>(s.len) *
                                  sizeof(float));
    return {s.f32, static_cast<std::size_t>(s.len)};
}

std::span<std::int8_t>
OutputSink::takeI8(const Shape& shape)
{
    SinkState& s = sinkState();
    if (!s.armed || s.consumed || !s.isI8 || !sameShape(shape, s.shape) ||
        s.len == 0)
        return {};
    s.consumed = true;
    if (s.clear)
        std::memset(s.i8, 0, static_cast<std::size_t>(s.len));
    return {s.i8, static_cast<std::size_t>(s.len)};
}

Tensor::Tensor() : shape_{}, f32_(1, 0.0f) {}

Tensor::Tensor(Shape shape) : shape_(std::move(shape))
{
    const std::span<float> slot = OutputSink::takeF32(shape_);
    if (!slot.empty()) {
        ext_f32_ = slot.data();
        ext_len_ = static_cast<std::int64_t>(slot.size());
    } else {
        f32_.assign(static_cast<std::size_t>(numElements(shape_)), 0.0f);
    }
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), f32_(std::move(data))
{
    EB_CHECK(static_cast<std::int64_t>(f32_.size()) == numElements(shape_),
             "data size " << f32_.size() << " does not match shape "
                          << shapeToString(shape_));
}

Tensor::Tensor(const Tensor& other)
    : shape_(other.shape_), dtype_(other.dtype_), f32_(other.f32_),
      i8_(other.i8_), qp_(other.qp_)
{
    // Copies always land in owned storage: a borrowed payload is
    // materialized here, which is how planner outputs escape their
    // arena with plain value semantics.
    if (other.ext_f32_ != nullptr) {
        f32_.assign(other.ext_f32_, other.ext_f32_ + other.ext_len_);
    } else if (other.ext_i8_ != nullptr) {
        i8_.assign(other.ext_i8_, other.ext_i8_ + other.ext_len_);
    }
    sCopyCount.fetch_add(1, std::memory_order_relaxed);
}

Tensor&
Tensor::operator=(const Tensor& other)
{
    if (this == &other)
        return *this;
    Tensor tmp(other); // bumps the copy counter
    *this = std::move(tmp);
    return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)), dtype_(other.dtype_),
      f32_(std::move(other.f32_)), i8_(std::move(other.i8_)),
      ext_f32_(other.ext_f32_), ext_i8_(other.ext_i8_),
      ext_len_(other.ext_len_), qp_(other.qp_)
{
    other.ext_f32_ = nullptr;
    other.ext_i8_ = nullptr;
    other.ext_len_ = 0;
}

Tensor&
Tensor::operator=(Tensor&& other) noexcept
{
    if (this == &other)
        return *this;
    shape_ = std::move(other.shape_);
    dtype_ = other.dtype_;
    f32_ = std::move(other.f32_);
    i8_ = std::move(other.i8_);
    ext_f32_ = other.ext_f32_;
    ext_i8_ = other.ext_i8_;
    ext_len_ = other.ext_len_;
    qp_ = other.qp_;
    other.ext_f32_ = nullptr;
    other.ext_i8_ = nullptr;
    other.ext_len_ = 0;
    return *this;
}

std::int64_t
Tensor::copyCount()
{
    return sCopyCount.load(std::memory_order_relaxed);
}

Tensor
Tensor::zeros(Shape shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::full(Shape shape, float value)
{
    Tensor t(std::move(shape));
    const std::span<float> d = t.f32Span();
    std::fill(d.begin(), d.end(), value);
    return t;
}

Tensor
Tensor::randomNormal(Shape shape, Rng& rng, double stddev)
{
    Tensor t(std::move(shape));
    for (auto& v : t.f32Span())
        v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

Tensor
Tensor::randomUniform(Shape shape, Rng& rng, double lo, double hi)
{
    Tensor t(std::move(shape));
    for (auto& v : t.f32Span())
        v = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor
Tensor::fromInt8(Shape shape, std::vector<std::int8_t> data,
                 const QuantParams& qp)
{
    EB_CHECK(static_cast<std::int64_t>(data.size()) ==
                 numElements(shape),
             "fromInt8: data size " << data.size()
                                    << " does not match shape "
                                    << shapeToString(shape));
    Tensor t;
    t.shape_ = std::move(shape);
    t.dtype_ = DType::kI8;
    t.qp_ = qp;
    t.i8_ = std::move(data);
    t.f32_.clear();
    return t;
}

Tensor
Tensor::forOutputI8(Shape shape, const QuantParams& qp)
{
    Tensor t;
    t.shape_ = std::move(shape);
    t.dtype_ = DType::kI8;
    t.qp_ = qp;
    t.f32_.clear();
    const std::span<std::int8_t> slot = OutputSink::takeI8(t.shape_);
    if (!slot.empty()) {
        t.ext_i8_ = slot.data();
        t.ext_len_ = static_cast<std::int64_t>(slot.size());
    } else {
        t.i8_.assign(static_cast<std::size_t>(numElements(t.shape_)), 0);
    }
    return t;
}

Tensor
Tensor::borrowF32(Shape shape, std::span<float> storage)
{
    EB_CHECK(static_cast<std::int64_t>(storage.size()) ==
                 numElements(shape),
             "borrowF32: storage size " << storage.size()
                                        << " does not match shape "
                                        << shapeToString(shape));
    Tensor t;
    t.shape_ = std::move(shape);
    t.f32_.clear();
    t.ext_f32_ = storage.data();
    t.ext_len_ = static_cast<std::int64_t>(storage.size());
    return t;
}

Tensor
Tensor::borrowI8(Shape shape, std::span<std::int8_t> storage,
                 const QuantParams& qp)
{
    EB_CHECK(static_cast<std::int64_t>(storage.size()) ==
                 numElements(shape),
             "borrowI8: storage size " << storage.size()
                                       << " does not match shape "
                                       << shapeToString(shape));
    Tensor t;
    t.shape_ = std::move(shape);
    t.dtype_ = DType::kI8;
    t.qp_ = qp;
    t.f32_.clear();
    t.ext_i8_ = storage.data();
    t.ext_len_ = static_cast<std::int64_t>(storage.size());
    return t;
}

std::span<float>
Tensor::f32Span()
{
    if (ext_f32_ != nullptr)
        return {ext_f32_, static_cast<std::size_t>(ext_len_)};
    return f32_;
}

std::span<const float>
Tensor::f32Span() const
{
    if (ext_f32_ != nullptr)
        return {ext_f32_, static_cast<std::size_t>(ext_len_)};
    return f32_;
}

std::span<float>
Tensor::data()
{
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "fp access to " << dtypeName(dtype_) << " tensor");
    return f32Span();
}

std::span<const float>
Tensor::data() const
{
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "fp access to " << dtypeName(dtype_) << " tensor");
    return f32Span();
}

float
Tensor::at(std::int64_t i) const
{
    EB_CHECK(i >= 0 && i < numel(), "index " << i << " out of range");
    return f32Span()[static_cast<std::size_t>(i)];
}

void
Tensor::set(std::int64_t i, float v)
{
    EB_CHECK(i >= 0 && i < numel(), "index " << i << " out of range");
    f32Span()[static_cast<std::size_t>(i)] = v;
}

std::span<const std::int8_t>
Tensor::qdata() const
{
    EB_CHECK(dtype_ == DType::kI8,
             "int8 access to " << dtypeName(dtype_) << " tensor");
    if (ext_i8_ != nullptr)
        return {ext_i8_, static_cast<std::size_t>(ext_len_)};
    return i8_;
}

std::span<std::int8_t>
Tensor::qdataMut()
{
    EB_CHECK(dtype_ == DType::kI8,
             "int8 access to " << dtypeName(dtype_) << " tensor");
    if (ext_i8_ != nullptr)
        return {ext_i8_, static_cast<std::size_t>(ext_len_)};
    return i8_;
}

const QuantParams&
Tensor::quantParams() const
{
    EB_CHECK(dtype_ == DType::kI8,
             "quant params of " << dtypeName(dtype_) << " tensor");
    return qp_;
}

const void*
Tensor::storageAddress() const
{
    if (dtype_ == DType::kI8)
        return ext_i8_ != nullptr ? static_cast<const void*>(ext_i8_)
                                  : static_cast<const void*>(i8_.data());
    return ext_f32_ != nullptr ? static_cast<const void*>(ext_f32_)
                               : static_cast<const void*>(f32_.data());
}

double
Tensor::sparsity() const
{
    if (numel() == 0)
        return 0.0;
    std::int64_t zeros = 0;
    if (dtype_ == DType::kI8) {
        for (auto q : qdata())
            if (q == qp_.zeroPoint)
                ++zeros;
    } else {
        for (auto v : f32Span())
            if (v == 0.0f)
                ++zeros;
    }
    return static_cast<double>(zeros) / static_cast<double>(numel());
}

Tensor
Tensor::toInt8() const
{
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    observeMinMax(f32Span(), mn, mx);
    if (!(mn <= mx)) { // empty tensor
        mn = 0.0;
        mx = 0.0;
    }
    return toInt8(chooseQuantParams(mn, mx));
}

Tensor
Tensor::toInt8(const QuantParams& qp) const
{
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "toInt8 from " << dtypeName(dtype_));
    Tensor t;
    t.shape_ = shape_;
    t.dtype_ = DType::kI8;
    t.qp_ = qp;
    t.i8_ = quantize(f32Span(), qp);
    t.f32_.clear();
    return t;
}

Tensor
Tensor::toF32() const
{
    if (dtype_ == DType::kF32)
        return *this;
    Tensor t;
    t.shape_ = shape_;
    t.dtype_ = DType::kF32;
    if (dtype_ == DType::kI8) {
        t.f32_ = dequantize(qdata(), qp_);
    } else {
        const std::span<const float> d = f32Span();
        t.f32_.assign(d.begin(), d.end());
    }
    return t;
}

Tensor
Tensor::toF16() const
{
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "toF16 from " << dtypeName(dtype_));
    Tensor t;
    t.shape_ = shape_;
    t.dtype_ = DType::kF16;
    const std::span<const float> d = f32Span();
    t.f32_.assign(d.begin(), d.end());
    for (auto& v : t.f32_)
        v = roundThroughF16(v);
    return t;
}

void
Tensor::convertToF16InPlace()
{
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "toF16 from " << dtypeName(dtype_));
    for (auto& v : f32Span())
        v = roundThroughF16(v);
    dtype_ = DType::kF16;
}

Tensor
Tensor::prunedByMagnitude(double fraction) const
{
    EB_CHECK(fraction >= 0.0 && fraction <= 1.0,
             "prune fraction " << fraction << " outside [0,1]");
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "prune of " << dtypeName(dtype_));
    Tensor t = *this; // deep copy: writes below land in owned storage
    const std::span<const float> src = f32Span();
    const std::span<float> dst = t.f32Span();
    const auto n = static_cast<std::size_t>(numel());
    const auto k = static_cast<std::size_t>(fraction * n);
    if (k == 0)
        return t;
    std::vector<float> mags(n);
    for (std::size_t i = 0; i < n; ++i)
        mags[i] = std::fabs(src[i]);
    std::vector<float> sorted = mags;
    std::nth_element(sorted.begin(), sorted.begin() + (k - 1),
                     sorted.end());
    const float threshold = sorted[k - 1];
    std::size_t zeroed = 0;
    for (std::size_t i = 0; i < n && zeroed < k; ++i) {
        if (mags[i] <= threshold) {
            dst[i] = 0.0f;
            ++zeroed;
        }
    }
    return t;
}

double
Tensor::maxAbsDiff(const Tensor& other) const
{
    EB_CHECK(sameShape(shape_, other.shape_),
             "shape mismatch " << shapeToString(shape_) << " vs "
                               << shapeToString(other.shape_));
    const Tensor a = toF32();
    const Tensor b = other.toF32();
    double m = 0.0;
    for (std::int64_t i = 0; i < numel(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(a.at(i)) - b.at(i)));
    return m;
}

} // namespace core
} // namespace edgebench
