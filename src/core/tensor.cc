#include "edgebench/core/tensor.hh"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace core
{

float
roundThroughF16(float v)
{
    // Software binary16 round-trip (round-to-nearest-even), portable
    // without relying on compiler __fp16 extensions.
    std::uint32_t bits;
    static_assert(sizeof(bits) == sizeof(v));
    std::memcpy(&bits, &v, sizeof(bits));

    const std::uint32_t sign = (bits >> 16) & 0x8000u;
    const std::int32_t exponent =
        static_cast<std::int32_t>((bits >> 23) & 0xFFu) - 127 + 15;
    std::uint32_t mantissa = bits & 0x7FFFFFu;

    std::uint16_t half;
    if (((bits >> 23) & 0xFFu) == 0xFFu) {
        // Inf / NaN.
        half = static_cast<std::uint16_t>(
            sign | 0x7C00u | (mantissa ? 0x200u : 0u));
    } else if (exponent >= 0x1F) {
        half = static_cast<std::uint16_t>(sign | 0x7C00u); // overflow->inf
    } else if (exponent <= 0) {
        if (exponent < -10) {
            half = static_cast<std::uint16_t>(sign); // underflow -> 0
        } else {
            // Subnormal half.
            mantissa |= 0x800000u;
            const int shift = 14 - exponent;
            std::uint32_t m = mantissa >> shift;
            const std::uint32_t rem = mantissa & ((1u << shift) - 1);
            const std::uint32_t halfway = 1u << (shift - 1);
            if (rem > halfway || (rem == halfway && (m & 1)))
                ++m;
            half = static_cast<std::uint16_t>(sign | m);
        }
    } else {
        std::uint32_t m = mantissa >> 13;
        const std::uint32_t rem = mantissa & 0x1FFFu;
        if (rem > 0x1000u || (rem == 0x1000u && (m & 1)))
            ++m;
        std::uint32_t h = sign | (static_cast<std::uint32_t>(exponent)
                                  << 10) | m;
        half = static_cast<std::uint16_t>(h); // mantissa carry bumps exp
    }

    // Expand back to fp32.
    const std::uint32_t hsign = (half & 0x8000u) << 16;
    const std::uint32_t hexp = (half >> 10) & 0x1Fu;
    const std::uint32_t hman = half & 0x3FFu;
    std::uint32_t out;
    if (hexp == 0) {
        if (hman == 0) {
            out = hsign;
        } else {
            // Normalize subnormal.
            int e = -1;
            std::uint32_t m = hman;
            do {
                ++e;
                m <<= 1;
            } while ((m & 0x400u) == 0);
            out = hsign | static_cast<std::uint32_t>(127 - 15 - e) << 23
                | ((m & 0x3FFu) << 13);
        }
    } else if (hexp == 0x1Fu) {
        out = hsign | 0x7F800000u | (hman << 13);
    } else {
        out = hsign | ((hexp - 15 + 127) << 23) | (hman << 13);
    }
    float result;
    std::memcpy(&result, &out, sizeof(result));
    return result;
}

Tensor::Tensor() : shape_{}, f32_(1, 0.0f) {}

Tensor::Tensor(Shape shape)
    : shape_(std::move(shape)), f32_(numElements(shape_), 0.0f)
{
}

Tensor::Tensor(Shape shape, std::vector<float> data)
    : shape_(std::move(shape)), f32_(std::move(data))
{
    EB_CHECK(static_cast<std::int64_t>(f32_.size()) == numElements(shape_),
             "data size " << f32_.size() << " does not match shape "
                          << shapeToString(shape_));
}

Tensor
Tensor::zeros(Shape shape)
{
    return Tensor(std::move(shape));
}

Tensor
Tensor::full(Shape shape, float value)
{
    Tensor t(std::move(shape));
    std::fill(t.f32_.begin(), t.f32_.end(), value);
    return t;
}

Tensor
Tensor::randomNormal(Shape shape, Rng& rng, double stddev)
{
    Tensor t(std::move(shape));
    for (auto& v : t.f32_)
        v = static_cast<float>(rng.normal(0.0, stddev));
    return t;
}

Tensor
Tensor::randomUniform(Shape shape, Rng& rng, double lo, double hi)
{
    Tensor t(std::move(shape));
    for (auto& v : t.f32_)
        v = static_cast<float>(rng.uniform(lo, hi));
    return t;
}

Tensor
Tensor::fromInt8(Shape shape, std::vector<std::int8_t> data,
                 const QuantParams& qp)
{
    EB_CHECK(static_cast<std::int64_t>(data.size()) ==
                 numElements(shape),
             "fromInt8: data size " << data.size()
                                    << " does not match shape "
                                    << shapeToString(shape));
    Tensor t;
    t.shape_ = std::move(shape);
    t.dtype_ = DType::kI8;
    t.qp_ = qp;
    t.i8_ = std::move(data);
    return t;
}

std::span<float>
Tensor::data()
{
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "fp access to " << dtypeName(dtype_) << " tensor");
    return f32_;
}

std::span<const float>
Tensor::data() const
{
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "fp access to " << dtypeName(dtype_) << " tensor");
    return f32_;
}

float
Tensor::at(std::int64_t i) const
{
    EB_CHECK(i >= 0 && i < numel(), "index " << i << " out of range");
    return f32_[static_cast<std::size_t>(i)];
}

void
Tensor::set(std::int64_t i, float v)
{
    EB_CHECK(i >= 0 && i < numel(), "index " << i << " out of range");
    f32_[static_cast<std::size_t>(i)] = v;
}

std::span<const std::int8_t>
Tensor::qdata() const
{
    EB_CHECK(dtype_ == DType::kI8,
             "int8 access to " << dtypeName(dtype_) << " tensor");
    return i8_;
}

const QuantParams&
Tensor::quantParams() const
{
    EB_CHECK(dtype_ == DType::kI8,
             "quant params of " << dtypeName(dtype_) << " tensor");
    return qp_;
}

double
Tensor::sparsity() const
{
    if (numel() == 0)
        return 0.0;
    std::int64_t zeros = 0;
    if (dtype_ == DType::kI8) {
        for (auto q : i8_)
            if (q == qp_.zeroPoint)
                ++zeros;
    } else {
        for (auto v : f32_)
            if (v == 0.0f)
                ++zeros;
    }
    return static_cast<double>(zeros) / static_cast<double>(numel());
}

Tensor
Tensor::toInt8() const
{
    double mn = std::numeric_limits<double>::infinity();
    double mx = -std::numeric_limits<double>::infinity();
    observeMinMax(f32_, mn, mx);
    if (!(mn <= mx)) { // empty tensor
        mn = 0.0;
        mx = 0.0;
    }
    return toInt8(chooseQuantParams(mn, mx));
}

Tensor
Tensor::toInt8(const QuantParams& qp) const
{
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "toInt8 from " << dtypeName(dtype_));
    Tensor t;
    t.shape_ = shape_;
    t.dtype_ = DType::kI8;
    t.qp_ = qp;
    t.i8_ = quantize(f32_, qp);
    t.f32_.clear();
    return t;
}

Tensor
Tensor::toF32() const
{
    if (dtype_ == DType::kF32)
        return *this;
    Tensor t;
    t.shape_ = shape_;
    t.dtype_ = DType::kF32;
    if (dtype_ == DType::kI8) {
        t.f32_ = dequantize(i8_, qp_);
    } else {
        t.f32_ = f32_;
    }
    return t;
}

Tensor
Tensor::toF16() const
{
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "toF16 from " << dtypeName(dtype_));
    Tensor t;
    t.shape_ = shape_;
    t.dtype_ = DType::kF16;
    t.f32_.resize(f32_.size());
    t.f32_.assign(f32_.begin(), f32_.end());
    for (auto& v : t.f32_)
        v = roundThroughF16(v);
    return t;
}

Tensor
Tensor::prunedByMagnitude(double fraction) const
{
    EB_CHECK(fraction >= 0.0 && fraction <= 1.0,
             "prune fraction " << fraction << " outside [0,1]");
    EB_CHECK(dtype_ == DType::kF32 || dtype_ == DType::kF16,
             "prune of " << dtypeName(dtype_));
    Tensor t = *this;
    const auto n = static_cast<std::size_t>(numel());
    const auto k = static_cast<std::size_t>(fraction * n);
    if (k == 0)
        return t;
    std::vector<float> mags(n);
    for (std::size_t i = 0; i < n; ++i)
        mags[i] = std::fabs(f32_[i]);
    std::vector<float> sorted = mags;
    std::nth_element(sorted.begin(), sorted.begin() + (k - 1),
                     sorted.end());
    const float threshold = sorted[k - 1];
    std::size_t zeroed = 0;
    for (std::size_t i = 0; i < n && zeroed < k; ++i) {
        if (mags[i] <= threshold) {
            t.f32_[i] = 0.0f;
            ++zeroed;
        }
    }
    return t;
}

double
Tensor::maxAbsDiff(const Tensor& other) const
{
    EB_CHECK(sameShape(shape_, other.shape_),
             "shape mismatch " << shapeToString(shape_) << " vs "
                               << shapeToString(other.shape_));
    const Tensor a = toF32();
    const Tensor b = other.toF32();
    double m = 0.0;
    for (std::int64_t i = 0; i < numel(); ++i)
        m = std::max(m, std::fabs(static_cast<double>(a.at(i)) - b.at(i)));
    return m;
}

} // namespace core
} // namespace edgebench
