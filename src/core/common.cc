#include "edgebench/core/common.hh"

namespace edgebench
{
namespace detail
{

void
throwCheckFailure(const char* cond, const char* file, int line,
                  const std::string& msg)
{
    std::ostringstream oss;
    oss << "check failed: (" << cond << ") at " << file << ":" << line
        << ": " << msg;
    throw InvalidArgumentError(oss.str());
}

} // namespace detail
} // namespace edgebench
