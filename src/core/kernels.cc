#include "edgebench/core/kernels.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edgebench/core/common.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/scratch.hh"
#include "edgebench/core/simd.hh"

namespace edgebench
{
namespace core
{

namespace
{

/** Validate an activation tensor against expected rank-4 NCHW dims. */
void
checkInput4d(const Tensor& t, std::int64_t n, std::int64_t c,
             std::int64_t h, std::int64_t w, const char* what)
{
    EB_CHECK(t.shape() == Shape({n, c, h, w}),
             what << ": input shape " << shapeToString(t.shape())
                  << " != expected "
                  << shapeToString(Shape{n, c, h, w}));
}

/**
 * Strict bias validation shared by both conv paths: a default
 * (scalar-shaped, empty-shape) tensor means "no bias"; anything else
 * must be exactly [outC]. A malformed bias is a hard error, never
 * silently ignored.
 */
bool
checkConvBias(const Tensor& bias, std::int64_t out_c, const char* what)
{
    if (bias.shape().empty())
        return false;
    EB_CHECK(bias.shape() == Shape({out_c}),
             what << ": bad bias shape " << shapeToString(bias.shape())
                  << " != expected " << shapeToString(Shape{out_c}));
    return true;
}

} // namespace

void
gemm(std::int64_t m, std::int64_t n, std::int64_t k,
     std::span<const float> a, std::span<const float> b,
     std::span<float> c)
{
    EB_CHECK(static_cast<std::int64_t>(a.size()) == m * k, "gemm: bad A");
    EB_CHECK(static_cast<std::int64_t>(b.size()) == k * n, "gemm: bad B");
    EB_CHECK(static_cast<std::int64_t>(c.size()) == m * n, "gemm: bad C");
    // Pack both operands and run the tiled engine. Pruning is handled
    // by the pack-time all-zero chunk flags, so the dense case pays no
    // per-element branch in the hot loop.
    std::span<float> pa_store = scratchF32(
        ScratchSlot::kGemmPackA,
        static_cast<std::size_t>(packedASize(m, k)));
    const PackedAView pa = packAInto(m, k, a, pa_store);
    gemmPackB(pa, n, b, c);
}

void
im2col(std::span<const float> image, const Conv2dGeom& g,
       std::int64_t group, std::span<float> columns)
{
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    EB_CHECK(static_cast<std::int64_t>(columns.size()) ==
                 cg * g.kH * g.kW * oh * ow,
             "im2col: bad columns size");
    const std::int64_t c0 = group * cg;
    // Each patch row (c, ky, kx) owns one contiguous oh*ow slice of
    // the column matrix; partition the rows across the workers.
    parallelFor(
        cg * g.kH * g.kW,
        [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
                const std::int64_t c = r / (g.kH * g.kW);
                const std::int64_t ky = (r / g.kW) % g.kH;
                const std::int64_t kx = r % g.kW;
                float* row = columns.data() + r * oh * ow;
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                    const std::int64_t iy =
                        oy * g.strideH - g.padH + ky * g.dilH;
                    for (std::int64_t ox = 0; ox < ow; ++ox) {
                        const std::int64_t ix =
                            ox * g.strideW - g.padW + kx * g.dilW;
                        float v = 0.0f;
                        if (iy >= 0 && iy < g.inH && ix >= 0 &&
                            ix < g.inW) {
                            v = image[((c0 + c) * g.inH + iy) * g.inW +
                                      ix];
                        }
                        row[oy * ow + ox] = v;
                    }
                }
            }
        },
        /*min_grain=*/4);
}

Tensor
conv2dNaive(const Tensor& input, const Tensor& weights,
            const Tensor& bias, const Conv2dGeom& g)
{
    g.validate();
    checkInput4d(input, g.n, g.inC, g.inH, g.inW, "conv2dNaive");
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t ocg = g.outC / g.groups;
    EB_CHECK(weights.shape() == Shape({g.outC, cg, g.kH, g.kW}),
             "conv2dNaive: bad weight shape "
                 << shapeToString(weights.shape()));
    const bool has_bias = checkConvBias(bias, g.outC, "conv2dNaive");

    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    Tensor out(Shape{g.n, g.outC, oh, ow});
    auto in = input.data();
    auto w = weights.data();
    auto o = out.data();
    // Each (batch, output-channel) plane is independent; partition the
    // planes across the workers (per-element accumulation order is
    // untouched, so results are bit-identical to serial).
    parallelFor(
        g.n * g.outC,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const std::int64_t b = p / g.outC;
                const std::int64_t oc = p % g.outC;
                const std::int64_t grp = oc / ocg;
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                    for (std::int64_t ox = 0; ox < ow; ++ox) {
                        double acc = has_bias
                            ? static_cast<double>(bias.at(oc))
                            : 0.0;
                        for (std::int64_t c = 0; c < cg; ++c) {
                            const std::int64_t ic = grp * cg + c;
                            for (std::int64_t ky = 0; ky < g.kH; ++ky) {
                                const std::int64_t iy =
                                    oy * g.strideH - g.padH +
                                    ky * g.dilH;
                                if (iy < 0 || iy >= g.inH)
                                    continue;
                                for (std::int64_t kx = 0; kx < g.kW;
                                     ++kx) {
                                    const std::int64_t ix =
                                        ox * g.strideW - g.padW +
                                        kx * g.dilW;
                                    if (ix < 0 || ix >= g.inW)
                                        continue;
                                    const float iv =
                                        in[((b * g.inC + ic) * g.inH +
                                            iy) * g.inW + ix];
                                    const float wv =
                                        w[((oc * cg + c) * g.kH + ky) *
                                              g.kW + kx];
                                    acc += static_cast<double>(iv) * wv;
                                }
                            }
                        }
                        o[((b * g.outC + oc) * oh + oy) * ow + ox] =
                            static_cast<float>(acc);
                    }
                }
            }
        },
        /*min_grain=*/2);
    return out;
}

namespace
{

/** True when the direct depthwise kernel applies (one input channel
 * per group; depth multipliers outC > groups included). */
bool
isDepthwise(const Conv2dGeom& g)
{
    return g.groups > 1 && g.inC == g.groups;
}

/**
 * Direct depthwise convolution: each output plane reads exactly one
 * input plane, so im2col (a full copy of the input per group) and the
 * GEMM dispatch per (batch, group) are pure overhead. One task per
 * (batch, output-channel) plane, accumulation order fixed (ky, kx
 * ascending), so results are bit-identical for any thread count.
 */
Tensor
conv2dDepthwise(const Tensor& input, const Tensor& weights,
                const Tensor& bias, const Conv2dGeom& g, bool has_bias,
                EpilogueAct act)
{
    const std::int64_t ocg = g.outC / g.groups;
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    Tensor out(Shape{g.n, g.outC, oh, ow});
    auto in = input.data();
    auto w = weights.data();
    auto o = out.data();
    // Interior output columns for the vector path (strideW == 1 only):
    // for ox in [ox_lo, ox_hi) every kx tap is in bounds, so eight
    // consecutive outputs read eight consecutive inputs per tap and
    // the per-output (ky, kx) accumulation order — and thus the result
    // — is exactly the scalar loop's.
    const bool vectorizable = simdActive() && g.strideW == 1;
    const std::int64_t ox_lo = std::min(ow, g.padW);
    const std::int64_t ox_hi = std::max(
        ox_lo, std::min(ow, g.inW + g.padW - (g.kW - 1) * g.dilW));
#if !EDGEBENCH_SIMD_COMPILED
    (void)vectorizable;
    (void)ox_lo;
    (void)ox_hi;
#endif
    parallelFor(
        g.n * g.outC,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const std::int64_t b = p / g.outC;
                const std::int64_t oc = p % g.outC;
                const std::int64_t ic = oc / ocg;
                const float* iplane =
                    in.data() + (b * g.inC + ic) * g.inH * g.inW;
                const float* wk = w.data() + oc * g.kH * g.kW;
                const float bv = has_bias ? bias.at(oc) : 0.0f;
                float* oplane = o.data() + p * oh * ow;
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                    std::int64_t ox = 0;
                    auto scalarRun = [&](std::int64_t oe) {
                        for (; ox < oe; ++ox) {
                            float acc = 0.0f;
                            for (std::int64_t ky = 0; ky < g.kH;
                                 ++ky) {
                                const std::int64_t iy = oy * g.strideH -
                                    g.padH + ky * g.dilH;
                                if (iy < 0 || iy >= g.inH)
                                    continue;
                                for (std::int64_t kx = 0; kx < g.kW;
                                     ++kx) {
                                    const std::int64_t ix =
                                        ox * g.strideW - g.padW +
                                        kx * g.dilW;
                                    if (ix < 0 || ix >= g.inW)
                                        continue;
                                    acc += iplane[iy * g.inW + ix] *
                                        wk[ky * g.kW + kx];
                                }
                            }
                            oplane[oy * ow + ox] =
                                applyEpilogueAct(acc + bv, act);
                        }
                    };
#if EDGEBENCH_SIMD_COMPILED
                    if (vectorizable) {
                        scalarRun(ox_lo);
                        for (; ox + kSimdLanes <= ox_hi;
                             ox += kSimdLanes) {
                            f32x8 acc = splatF32x8(0.0f);
                            for (std::int64_t ky = 0; ky < g.kH;
                                 ++ky) {
                                const std::int64_t iy = oy * g.strideH -
                                    g.padH + ky * g.dilH;
                                if (iy < 0 || iy >= g.inH)
                                    continue;
                                const float* irow =
                                    iplane + iy * g.inW + ox - g.padW;
                                for (std::int64_t kx = 0; kx < g.kW;
                                     ++kx)
                                    acc += loadF32x8(irow +
                                                     kx * g.dilW) *
                                        splatF32x8(wk[ky * g.kW + kx]);
                            }
                            f32x8 v = acc + splatF32x8(bv);
                            switch (act) {
                                case EpilogueAct::kRelu:
                                    v = reluF32x8(v);
                                    break;
                                case EpilogueAct::kRelu6:
                                    v = clampF32x8(v, 0.0f, 6.0f);
                                    break;
                                case EpilogueAct::kNone:
                                    break;
                            }
                            storeF32x8(&oplane[oy * ow + ox], v);
                        }
                    }
#endif
                    scalarRun(ow);
                }
            }
        },
        /*min_grain=*/2);
    return out;
}

/**
 * Shared im2col + packed-GEMM body: per-group weight panels come from
 * the caller (packed once per call, or once per model via the
 * interpreter's cache) and are reused across the whole batch loop.
 */
Tensor
conv2dIm2colPacked(const Tensor& input,
                   const std::vector<PackedAView>& wpanels,
                   const Tensor& bias, const Conv2dGeom& g,
                   bool has_bias, EpilogueAct act)
{
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t ocg = g.outC / g.groups;
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    const std::int64_t patch = cg * g.kH * g.kW;
    // 1x1 stride-1 unpadded convolutions read the input verbatim: the
    // column matrix would be a copy of the image, so pack B straight
    // from the input instead of materializing it.
    const bool pointwise = g.kH == 1 && g.kW == 1 && g.strideH == 1 &&
        g.strideW == 1 && g.padH == 0 && g.padW == 0;
    Tensor out(Shape{g.n, g.outC, oh, ow});
    // Scratch borrows are hoisted out of the batch/group loops: one
    // im2col matrix and one packed-B panel set, reused for every
    // (batch, group) iteration, so arena size is flat in g.n.
    std::span<float> columns;
    if (!pointwise)
        columns = scratchF32(ScratchSlot::kIm2Col,
                             static_cast<std::size_t>(patch * oh * ow));
    std::span<float> packed_b = scratchF32(
        ScratchSlot::kGemmPackB,
        static_cast<std::size_t>(packedBSize(oh * ow, patch)));
    auto in = input.data();
    auto o = out.data();
    for (std::int64_t b = 0; b < g.n; ++b) {
        std::span<const float> image =
            in.subspan(static_cast<std::size_t>(b * g.inC * g.inH *
                                                g.inW),
                       static_cast<std::size_t>(g.inC * g.inH * g.inW));
        for (std::int64_t grp = 0; grp < g.groups; ++grp) {
            if (pointwise) {
                packBInto(oh * ow, patch,
                          image.subspan(
                              static_cast<std::size_t>(grp * cg * g.inH *
                                                       g.inW),
                              static_cast<std::size_t>(patch * oh * ow)),
                          packed_b);
            } else {
                im2col(image, g, grp, columns);
                packBInto(oh * ow, patch, columns, packed_b);
            }
            std::span<float> omat(
                o.data() + ((b * g.outC) + grp * ocg) * oh * ow,
                static_cast<std::size_t>(ocg * oh * ow));
            // Bias and activation ride the GEMM epilogue (one fused
            // pass while tiles are register-resident) instead of the
            // former second full sweep over the output tensor. The
            // bias add is the same single float addition, so results
            // are bit-identical to the unfused sequence.
            GemmEpilogue ep;
            if (has_bias)
                ep.bias = bias.data().subspan(
                    static_cast<std::size_t>(grp * ocg),
                    static_cast<std::size_t>(ocg));
            ep.act = act;
            gemmPacked(wpanels[static_cast<std::size_t>(grp)], oh * ow,
                       packed_b, omat, ep);
        }
    }
    return out;
}

void
checkConvWeights(const Tensor& weights, const Conv2dGeom& g,
                 const char* what)
{
    EB_CHECK(weights.shape() ==
                 Shape({g.outC, g.inC / g.groups, g.kH, g.kW}),
             what << ": bad weight shape "
                  << shapeToString(weights.shape()));
}

} // namespace

PackedConvWeights
packConv2dWeights(const Tensor& weights, const Conv2dGeom& g)
{
    g.validate();
    checkConvWeights(weights, g, "packConv2dWeights");
    PackedConvWeights packed;
    if (isDepthwise(g))
        return packed; // direct kernel reads the raw weight tensor
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t ocg = g.outC / g.groups;
    const std::int64_t patch = cg * g.kH * g.kW;
    auto w = weights.data();
    packed.groups.reserve(static_cast<std::size_t>(g.groups));
    for (std::int64_t grp = 0; grp < g.groups; ++grp)
        packed.groups.push_back(packA(
            ocg, patch,
            w.subspan(static_cast<std::size_t>(grp * ocg * patch),
                      static_cast<std::size_t>(ocg * patch))));
    return packed;
}

Tensor
conv2dPacked(const Tensor& input, const Tensor& weights,
             const PackedConvWeights& packed, const Tensor& bias,
             const Conv2dGeom& g, EpilogueAct act)
{
    g.validate();
    checkInput4d(input, g.n, g.inC, g.inH, g.inW, "conv2dPacked");
    checkConvWeights(weights, g, "conv2dPacked");
    const bool has_bias = checkConvBias(bias, g.outC, "conv2dPacked");
    if (isDepthwise(g))
        return conv2dDepthwise(input, weights, bias, g, has_bias, act);
    EB_CHECK(static_cast<std::int64_t>(packed.groups.size()) ==
                 g.groups,
             "conv2dPacked: packed weights for "
                 << packed.groups.size() << " groups, geometry has "
                 << g.groups);
    std::vector<PackedAView> views;
    views.reserve(packed.groups.size());
    for (const PackedA& pa : packed.groups)
        views.push_back(pa.view());
    return conv2dIm2colPacked(input, views, bias, g, has_bias, act);
}

Tensor
conv2d(const Tensor& input, const Tensor& weights, const Tensor& bias,
       const Conv2dGeom& g, EpilogueAct act)
{
    g.validate();
    checkInput4d(input, g.n, g.inC, g.inH, g.inW, "conv2d");
    checkConvWeights(weights, g, "conv2d");
    const bool has_bias = checkConvBias(bias, g.outC, "conv2d");
    if (isDepthwise(g))
        return conv2dDepthwise(input, weights, bias, g, has_bias, act);
    // Weight packing hoisted out of the batch loop: all groups packed
    // once per call into a single scratch borrow, reused for every
    // batch element.
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t ocg = g.outC / g.groups;
    const std::int64_t patch = cg * g.kH * g.kW;
    const std::int64_t per_group = packedASize(ocg, patch);
    std::span<float> pa_store = scratchF32(
        ScratchSlot::kGemmPackA,
        static_cast<std::size_t>(g.groups * per_group));
    auto w = weights.data();
    std::vector<PackedAView> views;
    views.reserve(static_cast<std::size_t>(g.groups));
    for (std::int64_t grp = 0; grp < g.groups; ++grp)
        views.push_back(packAInto(
            ocg, patch,
            w.subspan(static_cast<std::size_t>(grp * ocg * patch),
                      static_cast<std::size_t>(ocg * patch)),
            pa_store.subspan(
                static_cast<std::size_t>(grp * per_group))));
    return conv2dIm2colPacked(input, views, bias, g, has_bias, act);
}

Tensor
conv3d(const Tensor& input, const Tensor& weights, const Tensor& bias,
       const Conv3dGeom& g)
{
    g.validate();
    EB_CHECK(input.shape() == Shape({g.n, g.inC, g.inD, g.inH, g.inW}),
             "conv3d: bad input shape "
                 << shapeToString(input.shape()));
    EB_CHECK(weights.shape() ==
                 Shape({g.outC, g.inC, g.kD, g.kH, g.kW}),
             "conv3d: bad weight shape");
    const bool has_bias = bias.shape() == Shape{g.outC};

    const std::int64_t od = g.outD();
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    Tensor out(Shape{g.n, g.outC, od, oh, ow});
    auto in = input.data();
    auto w = weights.data();
    auto o = out.data();
    // Partition (batch, output-channel, depth) slices across workers.
    parallelFor(
        g.n * g.outC * od,
        [&](std::int64_t s0, std::int64_t s1) {
            for (std::int64_t s = s0; s < s1; ++s) {
                const std::int64_t b = s / (g.outC * od);
                const std::int64_t oc = (s / od) % g.outC;
                const std::int64_t oz = s % od;
                for (std::int64_t oy = 0; oy < oh; ++oy)
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                    double acc = has_bias
                        ? static_cast<double>(bias.at(oc)) : 0.0;
                    for (std::int64_t c = 0; c < g.inC; ++c)
                    for (std::int64_t kz = 0; kz < g.kD; ++kz) {
                        const std::int64_t iz =
                            oz * g.strideD - g.padD + kz;
                        if (iz < 0 || iz >= g.inD)
                            continue;
                        for (std::int64_t ky = 0; ky < g.kH; ++ky) {
                            const std::int64_t iy =
                                oy * g.strideH - g.padH + ky;
                            if (iy < 0 || iy >= g.inH)
                                continue;
                            for (std::int64_t kx = 0; kx < g.kW; ++kx) {
                                const std::int64_t ix =
                                    ox * g.strideW - g.padW + kx;
                                if (ix < 0 || ix >= g.inW)
                                    continue;
                                const float iv =
                                    in[(((b * g.inC + c) * g.inD + iz) *
                                        g.inH + iy) * g.inW + ix];
                                const float wv =
                                    w[(((oc * g.inC + c) * g.kD + kz) *
                                       g.kH + ky) * g.kW + kx];
                                acc += static_cast<double>(iv) * wv;
                            }
                        }
                    }
                    o[(((b * g.outC + oc) * od + oz) * oh + oy) * ow +
                      ox] = static_cast<float>(acc);
                }
            }
        },
        /*min_grain=*/2);
    return out;
}

namespace
{

/**
 * Dense body over packed weights. gemvPackedAcc accumulates in double
 * in ascending-k order — exactly the old per-row dot product — so
 * dense results are bit-identical to the pre-packing implementation.
 */
Tensor
densePackedImpl(const Tensor& input, const PackedAView& pa,
                const Tensor& bias, const DenseGeom& g)
{
    const bool has_bias = bias.shape() == Shape{g.outFeatures};
    Tensor out(Shape{g.batch, g.outFeatures});
    auto in = input.data();
    auto o = out.data();
    std::span<double> acc = scratchF64(
        ScratchSlot::kDenseAcc,
        static_cast<std::size_t>(g.outFeatures));
    for (std::int64_t b = 0; b < g.batch; ++b) {
        const float* irow = in.data() + b * g.inFeatures;
        if (has_bias) {
            auto bv = bias.data();
            for (std::int64_t of = 0; of < g.outFeatures; ++of)
                acc[static_cast<std::size_t>(of)] = bv[of];
        } else {
            std::fill(acc.begin(), acc.end(), 0.0);
        }
        gemvPackedAcc(
            pa, {irow, static_cast<std::size_t>(g.inFeatures)}, acc);
        for (std::int64_t of = 0; of < g.outFeatures; ++of)
            o[b * g.outFeatures + of] =
                static_cast<float>(acc[static_cast<std::size_t>(of)]);
    }
    return out;
}

void
checkDense(const Tensor& input, const Tensor& weights,
           const DenseGeom& g)
{
    g.validate();
    EB_CHECK(input.numel() == g.batch * g.inFeatures,
             "dense: input numel " << input.numel() << " != "
                                   << g.batch * g.inFeatures);
    EB_CHECK(weights.shape() == Shape({g.outFeatures, g.inFeatures}),
             "dense: bad weight shape "
                 << shapeToString(weights.shape()));
}

} // namespace

PackedA
packDenseWeights(const Tensor& weights, const DenseGeom& g)
{
    g.validate();
    EB_CHECK(weights.shape() == Shape({g.outFeatures, g.inFeatures}),
             "packDenseWeights: bad weight shape "
                 << shapeToString(weights.shape()));
    return packA(g.outFeatures, g.inFeatures, weights.data());
}

Tensor
densePacked(const Tensor& input, const PackedA& packed,
            const Tensor& bias, const DenseGeom& g)
{
    g.validate();
    EB_CHECK(input.numel() == g.batch * g.inFeatures,
             "densePacked: input numel " << input.numel() << " != "
                                         << g.batch * g.inFeatures);
    EB_CHECK(packed.m == g.outFeatures && packed.k == g.inFeatures,
             "densePacked: packed weights are " << packed.m << "x"
                 << packed.k << ", geometry wants " << g.outFeatures
                 << "x" << g.inFeatures);
    return densePackedImpl(input, packed.view(), bias, g);
}

Tensor
dense(const Tensor& input, const Tensor& weights, const Tensor& bias,
      const DenseGeom& g)
{
    checkDense(input, weights, g);
    std::span<float> pa_store = scratchF32(
        ScratchSlot::kGemmPackA,
        static_cast<std::size_t>(
            packedASize(g.outFeatures, g.inFeatures)));
    const PackedAView pa =
        packAInto(g.outFeatures, g.inFeatures, weights.data(), pa_store);
    return densePackedImpl(input, pa, bias, g);
}

namespace
{

template <bool IsMax>
Tensor
pool2dImpl(const Tensor& input, const Pool2dGeom& g)
{
    g.validate();
    checkInput4d(input, g.n, g.c, g.inH, g.inW, "pool2d");
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    Tensor out(Shape{g.n, g.c, oh, ow});
    auto in = input.data();
    auto o = out.data();
    // One worker per contiguous run of (batch, channel) planes.
    parallelFor(
        g.n * g.c,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p)
            for (std::int64_t oy = 0; oy < oh; ++oy)
            for (std::int64_t ox = 0; ox < ow; ++ox) {
                double acc = IsMax
                    ? -std::numeric_limits<double>::infinity() : 0.0;
                std::int64_t count = 0;
                for (std::int64_t ky = 0; ky < g.kH; ++ky) {
                    const std::int64_t iy = oy * g.strideH - g.padH + ky;
                    if (iy < 0 || iy >= g.inH)
                        continue;
                    for (std::int64_t kx = 0; kx < g.kW; ++kx) {
                        const std::int64_t ix =
                            ox * g.strideW - g.padW + kx;
                        if (ix < 0 || ix >= g.inW)
                            continue;
                        const double v =
                            in[(p * g.inH + iy) * g.inW + ix];
                        if constexpr (IsMax) {
                            acc = std::max(acc, v);
                        } else {
                            acc += v;
                        }
                        ++count;
                    }
                }
                if constexpr (!IsMax)
                    acc = count > 0 ? acc / count : 0.0;
                o[(p * oh + oy) * ow + ox] = static_cast<float>(acc);
            }
        },
        /*min_grain=*/4);
    return out;
}

} // namespace

Tensor
maxPool2d(const Tensor& input, const Pool2dGeom& g)
{
    return pool2dImpl<true>(input, g);
}

Tensor
avgPool2d(const Tensor& input, const Pool2dGeom& g)
{
    return pool2dImpl<false>(input, g);
}

Tensor
maxPool3d(const Tensor& input, const Pool3dGeom& g)
{
    g.validate();
    EB_CHECK(input.shape() == Shape({g.n, g.c, g.inD, g.inH, g.inW}),
             "maxPool3d: bad input shape");
    const std::int64_t od = g.outD();
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    Tensor out(Shape{g.n, g.c, od, oh, ow});
    auto in = input.data();
    auto o = out.data();
    parallelFor(
        g.n * g.c,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p)
            for (std::int64_t oz = 0; oz < od; ++oz)
            for (std::int64_t oy = 0; oy < oh; ++oy)
            for (std::int64_t ox = 0; ox < ow; ++ox) {
                double acc = -std::numeric_limits<double>::infinity();
                for (std::int64_t kz = 0; kz < g.kD; ++kz) {
                    const std::int64_t iz = oz * g.strideD - g.padD + kz;
                    if (iz < 0 || iz >= g.inD)
                        continue;
                    for (std::int64_t ky = 0; ky < g.kH; ++ky) {
                        const std::int64_t iy =
                            oy * g.strideH - g.padH + ky;
                        if (iy < 0 || iy >= g.inH)
                            continue;
                        for (std::int64_t kx = 0; kx < g.kW; ++kx) {
                            const std::int64_t ix =
                                ox * g.strideW - g.padW + kx;
                            if (ix < 0 || ix >= g.inW)
                                continue;
                            acc = std::max(
                                acc,
                                static_cast<double>(
                                    in[((p * g.inD + iz) * g.inH + iy) *
                                       g.inW + ix]));
                        }
                    }
                }
                o[((p * od + oz) * oh + oy) * ow + ox] =
                    static_cast<float>(acc);
            }
        },
        /*min_grain=*/2);
    return out;
}

Tensor
globalAvgPool(const Tensor& input)
{
    const auto& s = input.shape();
    EB_CHECK(s.size() == 4, "globalAvgPool: expected rank-4 input");
    const std::int64_t n = s[0], c = s[1], hw = s[2] * s[3];
    Tensor out(Shape{n, c});
    auto in = input.data();
    auto o = out.data();
    parallelFor(
        n * c,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                double acc = 0.0;
                const float* base = in.data() + p * hw;
                for (std::int64_t i = 0; i < hw; ++i)
                    acc += base[i];
                o[p] = static_cast<float>(acc / hw);
            }
        },
        /*min_grain=*/8);
    return out;
}

Tensor
batchNorm(const Tensor& input, const Tensor& gamma, const Tensor& beta,
          const Tensor& mean, const Tensor& variance, double epsilon)
{
    const auto& s = input.shape();
    EB_CHECK(s.size() >= 2, "batchNorm: rank must be >= 2");
    const std::int64_t c = s[1];
    EB_CHECK(gamma.shape() == Shape{c} && beta.shape() == Shape{c} &&
                 mean.shape() == Shape{c} && variance.shape() == Shape{c},
             "batchNorm: parameter shapes must be [" << c << "]");
    std::int64_t inner = 1;
    for (std::size_t i = 2; i < s.size(); ++i)
        inner *= s[i];
    const std::int64_t n = s[0];

    Tensor out(input.shape());
    auto in = input.data();
    auto o = out.data();
    parallelFor(
        c,
        [&](std::int64_t c0, std::int64_t c1) {
            for (std::int64_t ch = c0; ch < c1; ++ch) {
                const double inv_std = 1.0 /
                    std::sqrt(static_cast<double>(variance.at(ch)) +
                              epsilon);
                const double scale = gamma.at(ch) * inv_std;
                const double shift =
                    beta.at(ch) - mean.at(ch) * scale;
                for (std::int64_t b = 0; b < n; ++b) {
                    const float* ibase =
                        in.data() + (b * c + ch) * inner;
                    float* obase = o.data() + (b * c + ch) * inner;
                    for (std::int64_t i = 0; i < inner; ++i)
                        obase[i] = static_cast<float>(
                            ibase[i] * scale + shift);
                }
            }
        },
        /*min_grain=*/8);
    return out;
}

namespace
{

/**
 * Elementwise kernels split the flat index range; small tensors stay
 * on the caller (pool dispatch would dominate the map itself).
 */
constexpr std::int64_t kElementwiseGrain = 4096;

template <typename F>
Tensor
elementwise(const Tensor& input, F&& f)
{
    Tensor out(input.shape());
    auto in = input.data();
    auto o = out.data();
    parallelFor(
        static_cast<std::int64_t>(in.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i)
                o[i] = f(in[i]);
        },
        kElementwiseGrain);
    return out;
}

template <typename F>
void
elementwiseInPlace(Tensor& t, F&& f)
{
    auto d = t.data();
    parallelFor(
        static_cast<std::int64_t>(d.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i)
                d[i] = f(d[i]);
        },
        kElementwiseGrain);
}

#if EDGEBENCH_SIMD_COMPILED

/**
 * Vectorized elementwise map: @p vf is the f32x8 twin of @p f with
 * per-lane-identical math, so vector and scalar paths (and any split
 * between them on the ragged tail) produce the same bytes. Work is
 * still partitioned per element, so thread count changes nothing.
 */
template <typename F, typename VF>
Tensor
elementwiseSimd(const Tensor& input, F&& f, VF&& vf)
{
    Tensor out(input.shape());
    auto in = input.data();
    auto o = out.data();
    parallelFor(
        static_cast<std::int64_t>(in.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            std::int64_t i = i0;
            for (; i + kSimdLanes <= i1; i += kSimdLanes)
                storeF32x8(o.data() + i, vf(loadF32x8(in.data() + i)));
            for (; i < i1; ++i)
                o[i] = f(in[i]);
        },
        kElementwiseGrain);
    return out;
}

/** In-place twin of elementwiseSimd. */
template <typename F, typename VF>
void
elementwiseInPlaceSimd(Tensor& t, F&& f, VF&& vf)
{
    auto d = t.data();
    parallelFor(
        static_cast<std::int64_t>(d.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            std::int64_t i = i0;
            for (; i + kSimdLanes <= i1; i += kSimdLanes)
                storeF32x8(d.data() + i, vf(loadF32x8(d.data() + i)));
            for (; i < i1; ++i)
                d[i] = f(d[i]);
        },
        kElementwiseGrain);
}

#endif // EDGEBENCH_SIMD_COMPILED

} // namespace

Tensor
relu(const Tensor& input)
{
#if EDGEBENCH_SIMD_COMPILED
    if (simdActive())
        return elementwiseSimd(
            input, [](float v) { return v > 0.0f ? v : 0.0f; },
            [](f32x8 v) { return reluF32x8(v); });
#endif
    return elementwise(input,
                       [](float v) { return v > 0.0f ? v : 0.0f; });
}

Tensor
relu6(const Tensor& input)
{
#if EDGEBENCH_SIMD_COMPILED
    if (simdActive())
        return elementwiseSimd(
            input, [](float v) { return std::clamp(v, 0.0f, 6.0f); },
            [](f32x8 v) { return clampF32x8(v, 0.0f, 6.0f); });
#endif
    return elementwise(
        input, [](float v) { return std::clamp(v, 0.0f, 6.0f); });
}

Tensor
leakyRelu(const Tensor& input, float slope)
{
#if EDGEBENCH_SIMD_COMPILED
    if (simdActive())
        return elementwiseSimd(
            input,
            [slope](float v) { return v > 0.0f ? v : slope * v; },
            [slope](f32x8 v) {
                return v > 0.0f ? v : splatF32x8(slope) * v;
            });
#endif
    return elementwise(
        input, [slope](float v) { return v > 0.0f ? v : slope * v; });
}

Tensor
sigmoid(const Tensor& input)
{
    return elementwise(
        input, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

Tensor
tanhAct(const Tensor& input)
{
    return elementwise(input, [](float v) { return std::tanh(v); });
}

void
reluInPlace(Tensor& t)
{
#if EDGEBENCH_SIMD_COMPILED
    if (simdActive()) {
        elementwiseInPlaceSimd(
            t, [](float v) { return v > 0.0f ? v : 0.0f; },
            [](f32x8 v) { return reluF32x8(v); });
        return;
    }
#endif
    elementwiseInPlace(t, [](float v) { return v > 0.0f ? v : 0.0f; });
}

void
relu6InPlace(Tensor& t)
{
#if EDGEBENCH_SIMD_COMPILED
    if (simdActive()) {
        elementwiseInPlaceSimd(
            t, [](float v) { return std::clamp(v, 0.0f, 6.0f); },
            [](f32x8 v) { return clampF32x8(v, 0.0f, 6.0f); });
        return;
    }
#endif
    elementwiseInPlace(t,
                       [](float v) { return std::clamp(v, 0.0f, 6.0f); });
}

void
leakyReluInPlace(Tensor& t, float slope)
{
#if EDGEBENCH_SIMD_COMPILED
    if (simdActive()) {
        elementwiseInPlaceSimd(
            t, [slope](float v) { return v > 0.0f ? v : slope * v; },
            [slope](f32x8 v) {
                return v > 0.0f ? v : splatF32x8(slope) * v;
            });
        return;
    }
#endif
    elementwiseInPlace(
        t, [slope](float v) { return v > 0.0f ? v : slope * v; });
}

void
sigmoidInPlace(Tensor& t)
{
    elementwiseInPlace(
        t, [](float v) { return 1.0f / (1.0f + std::exp(-v)); });
}

void
tanhInPlace(Tensor& t)
{
    elementwiseInPlace(t, [](float v) { return std::tanh(v); });
}

void
batchNormInPlace(Tensor& t, const Tensor& gamma, const Tensor& beta,
                 const Tensor& mean, const Tensor& variance,
                 double epsilon)
{
    const auto& s = t.shape();
    EB_CHECK(s.size() >= 2, "batchNorm: rank must be >= 2");
    const std::int64_t c = s[1];
    EB_CHECK(gamma.shape() == Shape{c} && beta.shape() == Shape{c} &&
                 mean.shape() == Shape{c} && variance.shape() == Shape{c},
             "batchNorm: parameter shapes must be [" << c << "]");
    std::int64_t inner = 1;
    for (std::size_t i = 2; i < s.size(); ++i)
        inner *= s[i];
    const std::int64_t n = s[0];

    auto d = t.data();
    parallelFor(
        c,
        [&](std::int64_t c0, std::int64_t c1) {
            for (std::int64_t ch = c0; ch < c1; ++ch) {
                const double inv_std = 1.0 /
                    std::sqrt(static_cast<double>(variance.at(ch)) +
                              epsilon);
                const double scale = gamma.at(ch) * inv_std;
                const double shift =
                    beta.at(ch) - mean.at(ch) * scale;
                for (std::int64_t b = 0; b < n; ++b) {
                    float* base = d.data() + (b * c + ch) * inner;
                    for (std::int64_t i = 0; i < inner; ++i)
                        base[i] = static_cast<float>(
                            base[i] * scale + shift);
                }
            }
        },
        /*min_grain=*/8);
}

Tensor
softmax(const Tensor& input)
{
    const auto& s = input.shape();
    EB_CHECK(!s.empty(), "softmax: scalar input");
    const std::int64_t last = s.back();
    const std::int64_t rows = input.numel() / last;
    Tensor out(input.shape());
    auto in = input.data();
    auto o = out.data();
    parallelFor(
        rows,
        [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
                const float* irow = in.data() + r * last;
                float* orow = o.data() + r * last;
                float mx = -std::numeric_limits<float>::infinity();
                for (std::int64_t i = 0; i < last; ++i)
                    mx = std::max(mx, irow[i]);
                double sum = 0.0;
                for (std::int64_t i = 0; i < last; ++i) {
                    orow[i] = std::exp(irow[i] - mx);
                    sum += orow[i];
                }
                for (std::int64_t i = 0; i < last; ++i)
                    orow[i] = static_cast<float>(orow[i] / sum);
            }
        },
        /*min_grain=*/4);
    return out;
}

Tensor
addElementwise(const Tensor& a, const Tensor& b)
{
    EB_CHECK(sameShape(a.shape(), b.shape()),
             "add: shape mismatch " << shapeToString(a.shape()) << " vs "
                                    << shapeToString(b.shape()));
    Tensor out(a.shape());
    auto pa = a.data();
    auto pb = b.data();
    auto o = out.data();
#if EDGEBENCH_SIMD_COMPILED
    if (simdActive()) {
        parallelFor(
            static_cast<std::int64_t>(pa.size()),
            [&](std::int64_t i0, std::int64_t i1) {
                std::int64_t i = i0;
                for (; i + kSimdLanes <= i1; i += kSimdLanes)
                    storeF32x8(o.data() + i,
                               loadF32x8(pa.data() + i) +
                                   loadF32x8(pb.data() + i));
                for (; i < i1; ++i)
                    o[i] = pa[i] + pb[i];
            },
            kElementwiseGrain);
        return out;
    }
#endif
    parallelFor(
        static_cast<std::int64_t>(pa.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i)
                o[i] = pa[i] + pb[i];
        },
        kElementwiseGrain);
    return out;
}

void
addElementwiseInPlace(Tensor& dst, const Tensor& other, bool dst_is_lhs)
{
    EB_CHECK(sameShape(dst.shape(), other.shape()),
             "add: shape mismatch " << shapeToString(dst.shape())
                                    << " vs "
                                    << shapeToString(other.shape()));
    auto d = dst.data();
    auto p = other.data();
#if EDGEBENCH_SIMD_COMPILED
    if (simdActive()) {
        parallelFor(
            static_cast<std::int64_t>(d.size()),
            [&](std::int64_t i0, std::int64_t i1) {
                std::int64_t i = i0;
                if (dst_is_lhs) {
                    for (; i + kSimdLanes <= i1; i += kSimdLanes)
                        storeF32x8(d.data() + i,
                                   loadF32x8(d.data() + i) +
                                       loadF32x8(p.data() + i));
                    for (; i < i1; ++i)
                        d[i] = d[i] + p[i];
                } else {
                    for (; i + kSimdLanes <= i1; i += kSimdLanes)
                        storeF32x8(d.data() + i,
                                   loadF32x8(p.data() + i) +
                                       loadF32x8(d.data() + i));
                    for (; i < i1; ++i)
                        d[i] = p[i] + d[i];
                }
            },
            kElementwiseGrain);
        return;
    }
#endif
    parallelFor(
        static_cast<std::int64_t>(d.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            if (dst_is_lhs) {
                for (std::int64_t i = i0; i < i1; ++i)
                    d[i] = d[i] + p[i];
            } else {
                for (std::int64_t i = i0; i < i1; ++i)
                    d[i] = p[i] + d[i];
            }
        },
        kElementwiseGrain);
}

Tensor
concatChannels(const std::vector<const Tensor*>& inputs)
{
    EB_CHECK(!inputs.empty(), "concat: no inputs");
    const auto& s0 = inputs.front()->shape();
    EB_CHECK(s0.size() == 4, "concat: expected rank-4 inputs");
    std::int64_t total_c = 0;
    for (const Tensor* t : inputs) {
        const auto& s = t->shape();
        EB_CHECK(s.size() == 4 && s[0] == s0[0] && s[2] == s0[2] &&
                     s[3] == s0[3],
                 "concat: incompatible input "
                     << shapeToString(s) << " vs "
                     << shapeToString(s0));
        total_c += s[1];
    }
    const std::int64_t n = s0[0], hw = s0[2] * s0[3];
    Tensor out(Shape{n, total_c, s0[2], s0[3]});
    auto o = out.data();
    // One copy task per (batch, input) block; blocks are disjoint in
    // the output, so they can run on any worker.
    const auto n_in = static_cast<std::int64_t>(inputs.size());
    std::vector<std::int64_t> c_offs(inputs.size());
    std::int64_t c_off = 0;
    for (std::size_t t = 0; t < inputs.size(); ++t) {
        c_offs[t] = c_off;
        c_off += inputs[t]->shape()[1];
    }
    parallelFor(
        n * n_in,
        [&](std::int64_t j0, std::int64_t j1) {
            for (std::int64_t j = j0; j < j1; ++j) {
                const std::int64_t b = j / n_in;
                const auto t = static_cast<std::size_t>(j % n_in);
                const std::int64_t tc = inputs[t]->shape()[1];
                auto in = inputs[t]->data();
                std::copy_n(in.data() + b * tc * hw, tc * hw,
                            o.data() +
                                (b * total_c + c_offs[t]) * hw);
            }
        },
        /*min_grain=*/2);
    return out;
}

Tensor
concatChannels(const std::vector<Tensor>& inputs)
{
    std::vector<const Tensor*> ptrs;
    ptrs.reserve(inputs.size());
    for (const auto& t : inputs)
        ptrs.push_back(&t);
    return concatChannels(ptrs);
}

Tensor
concatLastDim(const std::vector<const Tensor*>& inputs)
{
    EB_CHECK(!inputs.empty(), "concatLastDim: no inputs");
    const auto& s0 = inputs.front()->shape();
    EB_CHECK(s0.size() >= 1, "concatLastDim: scalar inputs");
    std::int64_t rows = 1;
    for (std::size_t i = 0; i + 1 < s0.size(); ++i)
        rows *= s0[i];
    std::int64_t total_last = 0;
    for (const Tensor* t : inputs) {
        const auto& s = t->shape();
        EB_CHECK(s.size() == s0.size(), "concatLastDim: rank mismatch");
        for (std::size_t i = 0; i + 1 < s.size(); ++i)
            EB_CHECK(s[i] == s0[i],
                     "concatLastDim: leading dim mismatch");
        total_last += s.back();
    }
    Shape out_shape = s0;
    out_shape.back() = total_last;
    Tensor out(out_shape);
    auto o = out.data();
    parallelFor(
        rows,
        [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
                std::int64_t off = 0;
                for (const Tensor* t : inputs) {
                    const std::int64_t last = t->shape().back();
                    auto in = t->data();
                    std::copy_n(in.data() + r * last, last,
                                o.data() + r * total_last + off);
                    off += last;
                }
            }
        },
        /*min_grain=*/16);
    return out;
}

Tensor
concatLastDim(const std::vector<Tensor>& inputs)
{
    std::vector<const Tensor*> ptrs;
    ptrs.reserve(inputs.size());
    for (const auto& t : inputs)
        ptrs.push_back(&t);
    return concatLastDim(ptrs);
}

Tensor
padSpatial(const Tensor& input, std::int64_t pad_top,
           std::int64_t pad_bottom, std::int64_t pad_left,
           std::int64_t pad_right)
{
    const auto& s = input.shape();
    EB_CHECK(s.size() == 4, "padSpatial: expected rank-4 input");
    EB_CHECK(pad_top >= 0 && pad_bottom >= 0 && pad_left >= 0 &&
                 pad_right >= 0,
             "padSpatial: negative pad");
    const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
    const std::int64_t oh = h + pad_top + pad_bottom;
    const std::int64_t ow = w + pad_left + pad_right;
    Tensor out(Shape{n, c, oh, ow});
    auto in = input.data();
    auto o = out.data();
    parallelFor(
        n * c,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p)
                for (std::int64_t y = 0; y < h; ++y) {
                    const float* src = in.data() + (p * h + y) * w;
                    float* dst = o.data() +
                        (p * oh + y + pad_top) * ow + pad_left;
                    std::copy_n(src, w, dst);
                }
        },
        /*min_grain=*/8);
    return out;
}

Tensor
upsampleNearest(const Tensor& input, std::int64_t factor)
{
    const auto& s = input.shape();
    EB_CHECK(s.size() == 4, "upsample: expected rank-4 input");
    EB_CHECK(factor >= 1, "upsample: factor must be >= 1");
    const std::int64_t n = s[0], c = s[1], h = s[2], w = s[3];
    Tensor out(Shape{n, c, h * factor, w * factor});
    auto in = input.data();
    auto o = out.data();
    const std::int64_t oh = h * factor, ow = w * factor;
    parallelFor(
        n * c,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p)
                for (std::int64_t y = 0; y < oh; ++y)
                    for (std::int64_t x = 0; x < ow; ++x)
                        o[(p * oh + y) * ow + x] =
                            in[(p * h + y / factor) * w + x / factor];
        },
        /*min_grain=*/4);
    return out;
}

Tensor
flatten(const Tensor& input)
{
    const auto& s = input.shape();
    EB_CHECK(!s.empty(), "flatten: scalar input");
    const std::int64_t n = s[0];
    const std::int64_t rest = input.numel() / std::max<std::int64_t>(
        n, 1);
    Tensor out = input.toF32();
    return Tensor(Shape{n, rest},
                  std::vector<float>(out.data().begin(),
                                     out.data().end()));
}

} // namespace core
} // namespace edgebench
