#include "edgebench/core/types.hh"

#include <sstream>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace core
{

double
dtypeBytes(DType t)
{
    switch (t) {
      case DType::kF32: return 4.0;
      case DType::kF16: return 2.0;
      case DType::kI8:  return 1.0;
      case DType::kI32: return 4.0;
      case DType::kBin1: return 1.0 / 8.0;
    }
    throw InternalError("dtypeBytes: unknown DType");
}

std::string
dtypeName(DType t)
{
    switch (t) {
      case DType::kF32: return "fp32";
      case DType::kF16: return "fp16";
      case DType::kI8:  return "int8";
      case DType::kI32: return "int32";
      case DType::kBin1: return "bin1";
    }
    throw InternalError("dtypeName: unknown DType");
}

std::int64_t
numElements(const Shape& s)
{
    std::int64_t n = 1;
    for (auto d : s) {
        EB_CHECK(d >= 0, "negative extent in shape " << shapeToString(s));
        n *= d;
    }
    return n;
}

std::string
shapeToString(const Shape& s)
{
    std::ostringstream oss;
    oss << "[";
    for (std::size_t i = 0; i < s.size(); ++i) {
        if (i) oss << ", ";
        oss << s[i];
    }
    oss << "]";
    return oss.str();
}

bool
sameShape(const Shape& a, const Shape& b)
{
    return a == b;
}

} // namespace core
} // namespace edgebench
