#include "edgebench/core/geometry.hh"

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace core
{

namespace
{

std::int64_t
outDim(std::int64_t in, std::int64_t k, std::int64_t stride,
       std::int64_t pad, std::int64_t dil, bool ceil_mode = false)
{
    const std::int64_t eff_k = dil * (k - 1) + 1;
    const std::int64_t span = in + 2 * pad - eff_k;
    EB_CHECK(span >= 0, "window (k=" << k << ", dil=" << dil
                        << ") larger than padded input " << in + 2 * pad);
    if (ceil_mode)
        return (span + stride - 1) / stride + 1;
    return span / stride + 1;
}

} // namespace

void
Conv2dGeom::validate() const
{
    EB_CHECK(n > 0 && inC > 0 && inH > 0 && inW > 0,
             "conv2d: bad input dims");
    EB_CHECK(outC > 0 && kH > 0 && kW > 0, "conv2d: bad filter dims");
    EB_CHECK(strideH > 0 && strideW > 0, "conv2d: bad strides");
    EB_CHECK(padH >= 0 && padW >= 0, "conv2d: negative padding");
    EB_CHECK(dilH > 0 && dilW > 0, "conv2d: bad dilation");
    EB_CHECK(groups > 0, "conv2d: bad groups");
    EB_CHECK(inC % groups == 0,
             "conv2d: inC " << inC << " not divisible by groups "
                            << groups);
    EB_CHECK(outC % groups == 0,
             "conv2d: outC " << outC << " not divisible by groups "
                             << groups);
    (void)outH();
    (void)outW();
}

std::int64_t
Conv2dGeom::outH() const
{
    return outDim(inH, kH, strideH, padH, dilH);
}

std::int64_t
Conv2dGeom::outW() const
{
    return outDim(inW, kW, strideW, padW, dilW);
}

std::int64_t
Conv2dGeom::macs() const
{
    return n * outC * outH() * outW() * (inC / groups) * kH * kW;
}

std::int64_t
Conv2dGeom::weightCount() const
{
    return outC * (inC / groups) * kH * kW;
}

void
Conv3dGeom::validate() const
{
    EB_CHECK(n > 0 && inC > 0 && inD > 0 && inH > 0 && inW > 0,
             "conv3d: bad input dims");
    EB_CHECK(outC > 0 && kD > 0 && kH > 0 && kW > 0,
             "conv3d: bad filter dims");
    EB_CHECK(strideD > 0 && strideH > 0 && strideW > 0,
             "conv3d: bad strides");
    EB_CHECK(padD >= 0 && padH >= 0 && padW >= 0,
             "conv3d: negative padding");
    (void)outD();
    (void)outH();
    (void)outW();
}

std::int64_t
Conv3dGeom::outD() const
{
    return outDim(inD, kD, strideD, padD, 1);
}

std::int64_t
Conv3dGeom::outH() const
{
    return outDim(inH, kH, strideH, padH, 1);
}

std::int64_t
Conv3dGeom::outW() const
{
    return outDim(inW, kW, strideW, padW, 1);
}

std::int64_t
Conv3dGeom::macs() const
{
    return n * outC * outD() * outH() * outW() * inC * kD * kH * kW;
}

std::int64_t
Conv3dGeom::weightCount() const
{
    return outC * inC * kD * kH * kW;
}

void
Pool2dGeom::validate() const
{
    EB_CHECK(n > 0 && c > 0 && inH > 0 && inW > 0, "pool2d: bad dims");
    EB_CHECK(kH > 0 && kW > 0, "pool2d: bad window");
    EB_CHECK(strideH > 0 && strideW > 0, "pool2d: bad strides");
    EB_CHECK(padH >= 0 && padW >= 0, "pool2d: negative padding");
    (void)outH();
    (void)outW();
}

std::int64_t
Pool2dGeom::outH() const
{
    return outDim(inH, kH, strideH, padH, 1, ceilMode);
}

std::int64_t
Pool2dGeom::outW() const
{
    return outDim(inW, kW, strideW, padW, 1, ceilMode);
}

void
Pool3dGeom::validate() const
{
    EB_CHECK(n > 0 && c > 0 && inD > 0 && inH > 0 && inW > 0,
             "pool3d: bad dims");
    EB_CHECK(kD > 0 && kH > 0 && kW > 0, "pool3d: bad window");
    EB_CHECK(strideD > 0 && strideH > 0 && strideW > 0,
             "pool3d: bad strides");
    (void)outD();
    (void)outH();
    (void)outW();
}

std::int64_t
Pool3dGeom::outD() const
{
    return outDim(inD, kD, strideD, padD, 1);
}

std::int64_t
Pool3dGeom::outH() const
{
    return outDim(inH, kH, strideH, padH, 1);
}

std::int64_t
Pool3dGeom::outW() const
{
    return outDim(inW, kW, strideW, padW, 1);
}

void
RnnGeom::validate() const
{
    EB_CHECK(batch > 0 && seqLen > 0 && inputSize > 0 &&
                 hiddenSize > 0,
             "rnn: bad dims");
    EB_CHECK(gates == 3 || gates == 4,
             "rnn: gates must be 3 (GRU) or 4 (LSTM), got " << gates);
}

void
DenseGeom::validate() const
{
    EB_CHECK(batch > 0 && inFeatures > 0 && outFeatures > 0,
             "dense: bad dims");
}

} // namespace core
} // namespace edgebench
