#include "edgebench/core/parallel.hh"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace core
{

namespace
{

/**
 * True on any thread currently inside a parallelFor region (the
 * caller while it runs its chunk, and every pool worker while it runs
 * one). Nested parallelFor calls from such threads must not touch the
 * pool's single job slot — they run serially instead.
 */
thread_local bool t_in_parallel_region = false;

/** RAII setter for t_in_parallel_region (exception safe). */
class ParallelRegionGuard
{
  public:
    ParallelRegionGuard() { t_in_parallel_region = true; }
    ~ParallelRegionGuard() { t_in_parallel_region = false; }
    ParallelRegionGuard(const ParallelRegionGuard&) = delete;
    ParallelRegionGuard& operator=(const ParallelRegionGuard&) = delete;
};

/** A tiny long-lived worker pool executing one range job at a time. */
class Pool
{
  public:
    explicit Pool(int workers)
    {
        for (int i = 0; i < workers; ++i)
            threads_.emplace_back([this, i] { workerLoop(i); });
    }

    ~Pool()
    {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        for (auto& t : threads_)
            t.join();
    }

    int size() const { return static_cast<int>(threads_.size()); }

    void
    run(std::int64_t n,
        const std::function<void(std::int64_t, std::int64_t)>& fn)
    {
        // One job at a time: the job slot (job_/pending_/generation_)
        // is single-occupancy, so concurrent run() calls from
        // independent threads take turns instead of corrupting it.
        std::lock_guard<std::mutex> run_lock(run_mutex_);
        const int workers = size() + 1; // pool + caller
        const std::int64_t chunk = (n + workers - 1) / workers;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_ = &fn;
            jobN_ = n;
            jobChunk_ = chunk;
            pending_ = size();
            ++generation_;
        }
        cv_.notify_all();
        {
            // The caller takes the first chunk.
            ParallelRegionGuard region;
            fn(0, std::min(chunk, n));
        }
        // Wait for the workers to drain theirs.
        std::unique_lock<std::mutex> lock(mutex_);
        done_cv_.wait(lock, [this] { return pending_ == 0; });
        job_ = nullptr;
    }

  private:
    void
    workerLoop(int index)
    {
        std::uint64_t seen = 0;
        while (true) {
            const std::function<void(std::int64_t, std::int64_t)>* fn =
                nullptr;
            std::int64_t n = 0, chunk = 0;
            {
                std::unique_lock<std::mutex> lock(mutex_);
                cv_.wait(lock, [&] {
                    return stop_ || generation_ != seen;
                });
                if (stop_)
                    return;
                seen = generation_;
                fn = job_;
                n = jobN_;
                chunk = jobChunk_;
            }
            // Worker i owns chunk i+1 (the caller took chunk 0).
            const std::int64_t begin =
                std::min<std::int64_t>(n, (index + 1) * chunk);
            const std::int64_t end =
                std::min<std::int64_t>(n, (index + 2) * chunk);
            if (fn && begin < end) {
                ParallelRegionGuard region;
                (*fn)(begin, end);
            }
            {
                std::lock_guard<std::mutex> lock(mutex_);
                if (--pending_ == 0)
                    done_cv_.notify_all();
            }
        }
    }

    std::vector<std::thread> threads_;
    std::mutex run_mutex_; ///< serializes whole run() invocations
    std::mutex mutex_;
    std::condition_variable cv_;
    std::condition_variable done_cv_;
    const std::function<void(std::int64_t, std::int64_t)>* job_ =
        nullptr;
    std::int64_t jobN_ = 0;
    std::int64_t jobChunk_ = 0;
    int pending_ = 0;
    std::uint64_t generation_ = 0;
    bool stop_ = false;
};

// The pool is rebuilt on demand: setParallelism drops the current one
// and the next parallelFor constructs a pool of the requested size.
// The mutex guards construction/teardown only; callers must not change
// the parallelism while parallelFor runs on another thread.
std::mutex g_pool_mutex;
std::unique_ptr<Pool> g_pool;          // guarded by g_pool_mutex
int g_requested_threads = 0;           // 0 = auto

Pool&
pool()
{
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    if (!g_pool) {
        int n = g_requested_threads;
        if (n <= 0)
            n = static_cast<int>(std::thread::hardware_concurrency());
        n = std::clamp(n, 1, 64);
        g_pool = std::make_unique<Pool>(n - 1); // caller participates
    }
    return *g_pool;
}

} // namespace

void
setParallelism(int threads)
{
    EB_CHECK(threads >= 0, "setParallelism: negative thread count");
    EB_CHECK(!t_in_parallel_region,
             "setParallelism: called from inside a parallelFor body");
    std::lock_guard<std::mutex> lock(g_pool_mutex);
    g_requested_threads = threads;
    g_pool.reset(); // next parallelFor rebuilds at the new size
}

int
parallelism()
{
    return pool().size() + 1;
}

void
parallelFor(std::int64_t n,
            const std::function<void(std::int64_t, std::int64_t)>& fn,
            std::int64_t min_grain)
{
    EB_CHECK(n >= 0, "parallelFor: negative range");
    if (n == 0)
        return;
    // Nested parallelFor (called from inside another parallelFor
    // body, on the caller thread or a pool worker): the outer call
    // owns the pool, so run the inner range serially right here. A
    // worker blocking in run() would deadlock the outer job.
    if (t_in_parallel_region || pool().size() == 0 || n < min_grain) {
        fn(0, n);
        return;
    }
    pool().run(n, fn);
}

} // namespace core
} // namespace edgebench
