#include "edgebench/core/kernels_rnn.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/scratch.hh"

namespace edgebench
{
namespace core
{

namespace
{

double
sigmoidScalar(double v)
{
    return 1.0 / (1.0 + std::exp(-v));
}

/** Validate the input/bias shapes for an RNN layer. */
void
checkRnnInput(const Tensor& input, const Tensor& bias, const RnnGeom& g,
              const char* what)
{
    g.validate();
    EB_CHECK(input.shape() ==
                 Shape({g.batch, g.seqLen, g.inputSize}),
             what << ": input must be [N, T, I], got "
                  << shapeToString(input.shape()));
    const std::int64_t gh = g.gates * g.hiddenSize;
    EB_CHECK(bias.shape() == Shape{gh},
             what << ": bias must be [" << gh << "]");
}

/** Validate packed weight dimensions against the geometry. */
void
checkRnnPacked(const PackedAView& ih, const PackedAView& hh,
               const RnnGeom& g, const char* what)
{
    const std::int64_t gh = g.gates * g.hiddenSize;
    EB_CHECK(ih.m == gh && ih.k == g.inputSize,
             what << ": packed W_ih is " << ih.m << "x" << ih.k
                  << ", geometry wants " << gh << "x" << g.inputSize);
    EB_CHECK(hh.m == gh && hh.k == g.hiddenSize,
             what << ": packed W_hh is " << hh.m << "x" << hh.k
                  << ", geometry wants " << gh << "x" << g.hiddenSize);
}

/**
 * gates_b = bias + W_ih * x_t[b] + W_hh * h[b] for one batch row.
 * gemvPackedAcc accumulates in double in ascending-k order with the
 * bias pre-seeded and input terms before hidden terms — exactly the
 * accumulation the old per-row dot products performed, so gate
 * pre-activations (and therefore RNN outputs) are bit-identical to the
 * pre-packing implementation for any thread count.
 */
void
computeGatesPacked(std::span<const float> x_b, std::span<const float> h_b,
                   const PackedAView& ih, const PackedAView& hh,
                   const Tensor& bias, std::span<double> gates_b)
{
    auto bv = bias.data();
    for (std::size_t i = 0; i < gates_b.size(); ++i)
        gates_b[i] = bv[static_cast<std::int64_t>(i)];
    gemvPackedAcc(ih, x_b, gates_b);
    gemvPackedAcc(hh, h_b, gates_b);
}

Tensor
lstmForwardImpl(const Tensor& input, const PackedAView& ih,
                const PackedAView& hh, const Tensor& bias,
                const RnnGeom& g)
{
    const std::int64_t h_size = g.hiddenSize;
    const std::int64_t gh = 4 * h_size;
    Tensor out(Shape{g.batch, g.seqLen, h_size});
    std::vector<float> h(static_cast<std::size_t>(g.batch * h_size),
                         0.0f);
    std::vector<double> c(static_cast<std::size_t>(g.batch * h_size),
                          0.0);
    std::span<double> gates = scratchF64(
        ScratchSlot::kRnnGates,
        static_cast<std::size_t>(g.batch * gh));

    auto in = input.data();
    auto o = out.data();
    for (std::int64_t t = 0; t < g.seqLen; ++t) {
        // The [b, t, :] timestep slice is already contiguous per batch
        // row, so the gate GEMVs read it in place (no gather copy).
        for (std::int64_t b = 0; b < g.batch; ++b)
            computeGatesPacked(
                {in.data() + (b * g.seqLen + t) * g.inputSize,
                 static_cast<std::size_t>(g.inputSize)},
                {h.data() + b * h_size,
                 static_cast<std::size_t>(h_size)},
                ih, hh, bias,
                gates.subspan(static_cast<std::size_t>(b * gh),
                              static_cast<std::size_t>(gh)));

        // Gate application: each (b, j) owns its own c/h/out cell, so
        // the flattened index space partitions cleanly across workers.
        parallelFor(
            g.batch * h_size,
            [&](std::int64_t s0, std::int64_t s1) {
                for (std::int64_t s = s0; s < s1; ++s) {
                    const std::int64_t b = s / h_size;
                    const std::int64_t j = s % h_size;
                    const double* gb = gates.data() + b * gh;
                    const double ig = sigmoidScalar(gb[j]);
                    const double fg = sigmoidScalar(gb[h_size + j]);
                    const double gg = std::tanh(gb[2 * h_size + j]);
                    const double og = sigmoidScalar(gb[3 * h_size + j]);
                    double& cs = c[static_cast<std::size_t>(s)];
                    cs = fg * cs + ig * gg;
                    const float hv =
                        static_cast<float>(og * std::tanh(cs));
                    h[static_cast<std::size_t>(s)] = hv;
                    o[(b * g.seqLen + t) * h_size + j] = hv;
                }
            },
            /*min_grain=*/64);
    }
    return out;
}

Tensor
gruForwardImpl(const Tensor& input, const PackedAView& ih,
               const PackedAView& hh, const Tensor& bias,
               const RnnGeom& g)
{
    const std::int64_t h_size = g.hiddenSize;
    const std::int64_t gh = 3 * h_size;
    Tensor out(Shape{g.batch, g.seqLen, h_size});
    std::vector<float> h(static_cast<std::size_t>(g.batch * h_size),
                         0.0f);
    // Input-side (bias + W_ih x) and hidden-side (W_hh h) gate terms
    // are kept separate: the candidate gate applies the reset gate to
    // the hidden term only, n = tanh(gi + r * gh2).
    std::span<double> gi = scratchF64(
        ScratchSlot::kRnnGates,
        static_cast<std::size_t>(g.batch * gh));
    std::span<double> gh2 = scratchF64(
        ScratchSlot::kRnnGatesHidden,
        static_cast<std::size_t>(g.batch * gh));
    auto in = input.data();
    auto o = out.data();

    for (std::int64_t t = 0; t < g.seqLen; ++t) {
        for (std::int64_t b = 0; b < g.batch; ++b) {
            std::span<double> gi_b = gi.subspan(
                static_cast<std::size_t>(b * gh),
                static_cast<std::size_t>(gh));
            auto bv = bias.data();
            for (std::size_t i = 0; i < gi_b.size(); ++i)
                gi_b[i] = bv[static_cast<std::int64_t>(i)];
            gemvPackedAcc(
                ih,
                {in.data() + (b * g.seqLen + t) * g.inputSize,
                 static_cast<std::size_t>(g.inputSize)},
                gi_b);
            std::span<double> gh_b = gh2.subspan(
                static_cast<std::size_t>(b * gh),
                static_cast<std::size_t>(gh));
            std::fill(gh_b.begin(), gh_b.end(), 0.0);
            gemvPackedAcc(hh,
                          {h.data() + b * h_size,
                           static_cast<std::size_t>(h_size)},
                          gh_b);
        }
        // All (b, j) cells at one timestep read the previous hidden
        // state and write only their own output cell; the new hidden
        // state is committed serially after the whole step, exactly as
        // the serial version deferred its commit past the j loop.
        parallelFor(
            g.batch * h_size,
            [&](std::int64_t s0, std::int64_t s1) {
                for (std::int64_t s = s0; s < s1; ++s) {
                    const std::int64_t b = s / h_size;
                    const std::int64_t j = s % h_size;
                    const double* gib = gi.data() + b * gh;
                    const double* ghb = gh2.data() + b * gh;
                    const float* hb = h.data() + b * h_size;
                    const double z = sigmoidScalar(gib[j] + ghb[j]);
                    const double r = sigmoidScalar(
                        gib[h_size + j] + ghb[h_size + j]);
                    const double n = std::tanh(
                        gib[2 * h_size + j] + r * ghb[2 * h_size + j]);
                    const double h_new = (1.0 - z) * n +
                        z * static_cast<double>(hb[j]);
                    o[(b * g.seqLen + t) * h_size + j] =
                        static_cast<float>(h_new);
                }
            },
            /*min_grain=*/8);
        for (std::int64_t b = 0; b < g.batch; ++b)
            for (std::int64_t j = 0; j < h_size; ++j)
                h[static_cast<std::size_t>(b * h_size + j)] =
                    o[(b * g.seqLen + t) * h_size + j];
    }
    return out;
}

/** Pack both weight matrices into thread-local scratch (ad-hoc calls;
 * the interpreter caches a heap-owning PackedRnnWeights instead). */
std::pair<PackedAView, PackedAView>
packRnnScratch(const Tensor& w_ih, const Tensor& w_hh, const RnnGeom& g,
               const char* what)
{
    const std::int64_t gh = g.gates * g.hiddenSize;
    EB_CHECK(w_ih.shape() == Shape({gh, g.inputSize}),
             what << ": W_ih must be [" << gh << ", " << g.inputSize
                  << "]");
    EB_CHECK(w_hh.shape() == Shape({gh, g.hiddenSize}),
             what << ": W_hh must be [" << gh << ", " << g.hiddenSize
                  << "]");
    std::span<float> ih_store = scratchF32(
        ScratchSlot::kRnnPackIh,
        static_cast<std::size_t>(packedASize(gh, g.inputSize)));
    std::span<float> hh_store = scratchF32(
        ScratchSlot::kRnnPackHh,
        static_cast<std::size_t>(packedASize(gh, g.hiddenSize)));
    return {packAInto(gh, g.inputSize, w_ih.data(), ih_store),
            packAInto(gh, g.hiddenSize, w_hh.data(), hh_store)};
}

} // namespace

PackedRnnWeights
packRnnWeights(const Tensor& w_ih, const Tensor& w_hh, const RnnGeom& g)
{
    g.validate();
    const std::int64_t gh = g.gates * g.hiddenSize;
    EB_CHECK(w_ih.shape() == Shape({gh, g.inputSize}),
             "packRnnWeights: W_ih must be [" << gh << ", "
                                             << g.inputSize << "]");
    EB_CHECK(w_hh.shape() == Shape({gh, g.hiddenSize}),
             "packRnnWeights: W_hh must be [" << gh << ", "
                                             << g.hiddenSize << "]");
    PackedRnnWeights packed;
    packed.ih = packA(gh, g.inputSize, w_ih.data());
    packed.hh = packA(gh, g.hiddenSize, w_hh.data());
    return packed;
}

Tensor
lstmForward(const Tensor& input, const Tensor& w_ih,
            const Tensor& w_hh, const Tensor& bias, const RnnGeom& g)
{
    EB_CHECK(g.gates == 4, "lstmForward: geometry must have 4 gates");
    checkRnnInput(input, bias, g, "lstmForward");
    const auto [ih, hh] = packRnnScratch(w_ih, w_hh, g, "lstmForward");
    return lstmForwardImpl(input, ih, hh, bias, g);
}

Tensor
lstmForward(const Tensor& input, const PackedRnnWeights& packed,
            const Tensor& bias, const RnnGeom& g)
{
    EB_CHECK(g.gates == 4, "lstmForward: geometry must have 4 gates");
    checkRnnInput(input, bias, g, "lstmForward");
    checkRnnPacked(packed.ih.view(), packed.hh.view(), g,
                   "lstmForward");
    return lstmForwardImpl(input, packed.ih.view(), packed.hh.view(),
                           bias, g);
}

Tensor
gruForward(const Tensor& input, const Tensor& w_ih, const Tensor& w_hh,
           const Tensor& bias, const RnnGeom& g)
{
    EB_CHECK(g.gates == 3, "gruForward: geometry must have 3 gates");
    checkRnnInput(input, bias, g, "gruForward");
    const auto [ih, hh] = packRnnScratch(w_ih, w_hh, g, "gruForward");
    return gruForwardImpl(input, ih, hh, bias, g);
}

Tensor
gruForward(const Tensor& input, const PackedRnnWeights& packed,
           const Tensor& bias, const RnnGeom& g)
{
    EB_CHECK(g.gates == 3, "gruForward: geometry must have 3 gates");
    checkRnnInput(input, bias, g, "gruForward");
    checkRnnPacked(packed.ih.view(), packed.hh.view(), g, "gruForward");
    return gruForwardImpl(input, packed.ih.view(), packed.hh.view(),
                          bias, g);
}

} // namespace core
} // namespace edgebench
