#include "edgebench/core/kernels_rnn.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "edgebench/core/common.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/scratch.hh"

namespace edgebench
{
namespace core
{

namespace
{

double
sigmoidScalar(double v)
{
    return 1.0 / (1.0 + std::exp(-v));
}

/** Validate the packed weight/bias shapes for an RNN layer. */
void
checkRnnParams(const Tensor& input, const Tensor& w_ih,
               const Tensor& w_hh, const Tensor& bias,
               const RnnGeom& g, const char* what)
{
    g.validate();
    EB_CHECK(input.shape() ==
                 Shape({g.batch, g.seqLen, g.inputSize}),
             what << ": input must be [N, T, I], got "
                  << shapeToString(input.shape()));
    const std::int64_t gh = g.gates * g.hiddenSize;
    EB_CHECK(w_ih.shape() == Shape({gh, g.inputSize}),
             what << ": W_ih must be [" << gh << ", " << g.inputSize
                  << "]");
    EB_CHECK(w_hh.shape() == Shape({gh, g.hiddenSize}),
             what << ": W_hh must be [" << gh << ", " << g.hiddenSize
                  << "]");
    EB_CHECK(bias.shape() == Shape{gh},
             what << ": bias must be [" << gh << "]");
}

/**
 * gates[b][gh] = W_ih * x_t[b] + W_hh * h[b] + bias, for all batch
 * rows at one timestep. Parallel over (batch, gate-row); each gate
 * pre-activation is one dot product computed start-to-finish by one
 * worker, so accumulation order matches the serial loop exactly.
 */
void
computeGates(std::span<const float> x_t, std::span<const float> h,
             const Tensor& w_ih, const Tensor& w_hh,
             const Tensor& bias, const RnnGeom& g,
             std::span<double> gates)
{
    const std::int64_t gh = g.gates * g.hiddenSize;
    auto wi = w_ih.data();
    auto wh = w_hh.data();
    parallelFor(
        g.batch * gh,
        [&](std::int64_t j0, std::int64_t j1) {
            for (std::int64_t j = j0; j < j1; ++j) {
                const std::int64_t b = j / gh;
                const std::int64_t r = j % gh;
                const float* x = x_t.data() + b * g.inputSize;
                const float* hb = h.data() + b * g.hiddenSize;
                double acc = bias.at(r);
                const float* wirow = wi.data() + r * g.inputSize;
                for (std::int64_t i = 0; i < g.inputSize; ++i)
                    acc += static_cast<double>(x[i]) * wirow[i];
                const float* whrow = wh.data() + r * g.hiddenSize;
                for (std::int64_t i = 0; i < g.hiddenSize; ++i)
                    acc += static_cast<double>(hb[i]) * whrow[i];
                gates[static_cast<std::size_t>(j)] = acc;
            }
        },
        /*min_grain=*/8);
}

} // namespace

Tensor
lstmForward(const Tensor& input, const Tensor& w_ih,
            const Tensor& w_hh, const Tensor& bias, const RnnGeom& g)
{
    EB_CHECK(g.gates == 4, "lstmForward: geometry must have 4 gates");
    checkRnnParams(input, w_ih, w_hh, bias, g, "lstmForward");

    const std::int64_t h_size = g.hiddenSize;
    Tensor out(Shape{g.batch, g.seqLen, h_size});
    std::vector<float> h(static_cast<std::size_t>(g.batch * h_size),
                         0.0f);
    std::vector<double> c(static_cast<std::size_t>(g.batch * h_size),
                          0.0);
    std::span<double> gates = scratchF64(
        ScratchSlot::kRnnGates,
        static_cast<std::size_t>(g.batch * 4 * h_size));
    // For batch > 1 the timestep slice is strided; gather into a
    // contiguous [N, I] scratch block each step.
    std::span<float> x_gathered = scratchF32(
        ScratchSlot::kRnnGather,
        static_cast<std::size_t>(g.batch * g.inputSize));

    auto in = input.data();
    auto o = out.data();
    for (std::int64_t t = 0; t < g.seqLen; ++t) {
        for (std::int64_t b = 0; b < g.batch; ++b)
            std::copy_n(in.data() +
                            (b * g.seqLen + t) * g.inputSize,
                        g.inputSize,
                        x_gathered.data() + b * g.inputSize);
        computeGates(x_gathered, h, w_ih, w_hh, bias, g, gates);

        // Gate application: each (b, j) owns its own c/h/out cell, so
        // the flattened index space partitions cleanly across workers.
        parallelFor(
            g.batch * h_size,
            [&](std::int64_t s0, std::int64_t s1) {
                for (std::int64_t s = s0; s < s1; ++s) {
                    const std::int64_t b = s / h_size;
                    const std::int64_t j = s % h_size;
                    const double* gb = gates.data() + b * 4 * h_size;
                    const double ig = sigmoidScalar(gb[j]);
                    const double fg = sigmoidScalar(gb[h_size + j]);
                    const double gg = std::tanh(gb[2 * h_size + j]);
                    const double og = sigmoidScalar(gb[3 * h_size + j]);
                    double& cs = c[static_cast<std::size_t>(s)];
                    cs = fg * cs + ig * gg;
                    const float hv =
                        static_cast<float>(og * std::tanh(cs));
                    h[static_cast<std::size_t>(s)] = hv;
                    o[(b * g.seqLen + t) * h_size + j] = hv;
                }
            },
            /*min_grain=*/64);
    }
    return out;
}

Tensor
gruForward(const Tensor& input, const Tensor& w_ih, const Tensor& w_hh,
           const Tensor& bias, const RnnGeom& g)
{
    EB_CHECK(g.gates == 3, "gruForward: geometry must have 3 gates");
    checkRnnParams(input, w_ih, w_hh, bias, g, "gruForward");

    const std::int64_t h_size = g.hiddenSize;
    Tensor out(Shape{g.batch, g.seqLen, h_size});
    std::vector<float> h(static_cast<std::size_t>(g.batch * h_size),
                         0.0f);
    auto in = input.data();
    auto o = out.data();
    auto wi = w_ih.data();
    auto wh = w_hh.data();

    for (std::int64_t t = 0; t < g.seqLen; ++t) {
        // All (b, j) cells at one timestep read the previous hidden
        // state and write only their own output cell; the new hidden
        // state is committed serially after the whole step, exactly as
        // the serial version deferred its commit past the j loop.
        parallelFor(
            g.batch * h_size,
            [&](std::int64_t s0, std::int64_t s1) {
                for (std::int64_t s = s0; s < s1; ++s) {
                    const std::int64_t b = s / h_size;
                    const std::int64_t j = s % h_size;
                    const float* x = in.data() +
                        (b * g.seqLen + t) * g.inputSize;
                    const float* hb = h.data() + b * h_size;
                    auto dot = [&](std::int64_t row) {
                        double acc = bias.at(row);
                        const float* wirow = wi.data() +
                            row * g.inputSize;
                        for (std::int64_t i = 0; i < g.inputSize; ++i)
                            acc += static_cast<double>(x[i]) * wirow[i];
                        return acc;
                    };
                    auto dot_h = [&](std::int64_t row) {
                        double acc = 0.0;
                        const float* whrow = wh.data() + row * h_size;
                        for (std::int64_t i = 0; i < h_size; ++i)
                            acc += static_cast<double>(hb[i]) *
                                whrow[i];
                        return acc;
                    };
                    const double z =
                        sigmoidScalar(dot(j) + dot_h(j));
                    const double r =
                        sigmoidScalar(dot(h_size + j) +
                                      dot_h(h_size + j));
                    const double n =
                        std::tanh(dot(2 * h_size + j) +
                                  r * dot_h(2 * h_size + j));
                    const double h_new = (1.0 - z) * n +
                        z * static_cast<double>(hb[j]);
                    o[(b * g.seqLen + t) * h_size + j] =
                        static_cast<float>(h_new);
                }
            },
            /*min_grain=*/8);
        for (std::int64_t b = 0; b < g.batch; ++b)
            for (std::int64_t j = 0; j < h_size; ++j)
                h[static_cast<std::size_t>(b * h_size + j)] =
                    o[(b * g.seqLen + t) * h_size + j];
    }
    return out;
}

} // namespace core
} // namespace edgebench
