#include "edgebench/core/quant.hh"

#include <algorithm>
#include <cmath>

#include "edgebench/core/common.hh"
#include "edgebench/core/parallel.hh"

namespace edgebench
{
namespace core
{

namespace
{
constexpr std::int32_t kQmin = -128;
constexpr std::int32_t kQmax = 127;
} // namespace

QuantParams
chooseQuantParams(double min_val, double max_val)
{
    EB_CHECK(min_val <= max_val,
             "chooseQuantParams: min " << min_val << " > max " << max_val);
    // Widen to include zero so that 0.0 is exactly representable.
    min_val = std::min(min_val, 0.0);
    max_val = std::max(max_val, 0.0);
    if (min_val == max_val) {
        // All-zero tensor: any scale works; pick 1.
        return QuantParams{1.0, 0};
    }
    QuantParams qp;
    qp.scale = (max_val - min_val) / static_cast<double>(kQmax - kQmin);
    const double zp_real = kQmin - min_val / qp.scale;
    qp.zeroPoint = static_cast<std::int32_t>(std::lround(
        std::clamp(zp_real, static_cast<double>(kQmin),
                   static_cast<double>(kQmax))));
    return qp;
}

QuantParams
chooseSymmetricQuantParams(double abs_max)
{
    EB_CHECK(abs_max >= 0.0, "negative abs_max " << abs_max);
    if (abs_max == 0.0)
        return QuantParams{1.0, 0};
    return QuantParams{abs_max / 127.0, 0};
}

std::int8_t
quantizeValue(double v, const QuantParams& qp)
{
    const double q = std::nearbyint(v / qp.scale) + qp.zeroPoint;
    return static_cast<std::int8_t>(std::clamp(
        q, static_cast<double>(kQmin), static_cast<double>(kQmax)));
}

double
dequantizeValue(std::int8_t q, const QuantParams& qp)
{
    return qp.scale * (static_cast<std::int32_t>(q) - qp.zeroPoint);
}

std::vector<std::int8_t>
quantize(std::span<const float> src, const QuantParams& qp)
{
    std::vector<std::int8_t> out(src.size());
    parallelFor(
        static_cast<std::int64_t>(src.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i)
                out[static_cast<std::size_t>(i)] =
                    quantizeValue(src[i], qp);
        },
        /*min_grain=*/4096);
    return out;
}

std::vector<float>
dequantize(std::span<const std::int8_t> src, const QuantParams& qp)
{
    std::vector<float> out(src.size());
    parallelFor(
        static_cast<std::int64_t>(src.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i)
                out[static_cast<std::size_t>(i)] = static_cast<float>(
                    dequantizeValue(src[i], qp));
        },
        /*min_grain=*/4096);
    return out;
}

void
observeMinMax(std::span<const float> src, double& min_val, double& max_val)
{
    for (float v : src) {
        min_val = std::min(min_val, static_cast<double>(v));
        max_val = std::max(max_val, static_cast<double>(v));
    }
}

void
observeMinMaxInt8(std::span<const std::int8_t> src, const QuantParams& qp,
                  double& min_val, double& max_val)
{
    // Stream the dequantized values without materializing the fp32
    // buffer. Each value is rounded through float first so the observed
    // range is bit-identical to observeMinMax(dequantize(src, qp)).
    for (std::int8_t q : src) {
        const double v =
            static_cast<float>(dequantizeValue(q, qp));
        min_val = std::min(min_val, v);
        max_val = std::max(max_val, v);
    }
}

RequantScale
makeRequantScale(double real_multiplier)
{
    EB_CHECK(std::isfinite(real_multiplier) && real_multiplier > 0.0,
             "makeRequantScale: multiplier must be positive and "
             "finite, got "
                 << real_multiplier);
    int exponent = 0;
    const double mant = std::frexp(real_multiplier, &exponent);
    // mant in [0.5, 1) => llround lands in [2^29, 2^30].
    RequantScale rs;
    rs.multiplier = std::llround(std::ldexp(mant, 30));
    rs.shift = 30 - exponent;
    if (rs.multiplier == (std::int64_t{1} << 30)) {
        // mant rounded up to 1.0: renormalize.
        rs.multiplier >>= 1;
        --rs.shift;
    }
    EB_CHECK(rs.shift >= 1 && rs.shift <= 62,
             "makeRequantScale: multiplier " << real_multiplier
                 << " out of fixed-point range (shift " << rs.shift
                 << ")");
    return rs;
}

double
quantizationStepError(const QuantParams& qp)
{
    return qp.scale / 2.0;
}

} // namespace core
} // namespace edgebench
