#include "edgebench/core/quant.hh"

#include <algorithm>
#include <cmath>

#include "edgebench/core/common.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/simd.hh"

namespace edgebench
{
namespace core
{

namespace
{
constexpr std::int32_t kQmin = -128;
constexpr std::int32_t kQmax = 127;

#if EDGEBENCH_SIMD_COMPILED

typedef float f32x4 __attribute__((vector_size(16)));
typedef std::int32_t i32x4 __attribute__((vector_size(16)));

/**
 * Round-half-even magic constant, 1.5 * 2^52. Under the default
 * rounding mode, (d + kRoundMagic) - kRoundMagic rounds d to the
 * nearest integer with ties to even — exactly what nearbyint()
 * returns — for |d| < 2^51. Larger magnitudes come back off by the
 * sum's rounding, but they are far outside [-128, 127] either way, so
 * the saturating clamp makes the scalar and vector paths agree.
 */
constexpr double kRoundMagic = 6755399441055744.0;

inline f64x4
splatF64x4(double x)
{
    return f64x4{x, x, x, x};
}

inline i32x4
splatI32x4(std::int32_t x)
{
    return i32x4{x, x, x, x};
}

/** Four lanes of quantizeValue: same divide/round/clamp per lane. */
inline void
quantize4(const float* src, std::int8_t* dst, const QuantParams& qp)
{
    f32x4 v;
    __builtin_memcpy(&v, src, sizeof(v));
    f64x4 d = __builtin_convertvector(v, f64x4) / splatF64x4(qp.scale);
    d = (d + splatF64x4(kRoundMagic)) - splatF64x4(kRoundMagic);
    d += splatF64x4(static_cast<double>(qp.zeroPoint));
    d = d < static_cast<double>(kQmin) ? splatF64x4(kQmin) : d;
    d = static_cast<double>(kQmax) < d ? splatF64x4(kQmax) : d;
    const i32x4 q = __builtin_convertvector(d, i32x4);
    for (int j = 0; j < 4; ++j)
        dst[j] = static_cast<std::int8_t>(q[j]);
}

/** Four lanes of float(dequantizeValue): same per-lane IEEE ops. */
inline void
dequantize4(const std::int8_t* src, float* dst, const QuantParams& qp)
{
    const i32x4 q{src[0], src[1], src[2], src[3]};
    const f64x4 d = splatF64x4(qp.scale) *
        __builtin_convertvector(q - splatI32x4(qp.zeroPoint), f64x4);
    const f32x4 f = __builtin_convertvector(d, f32x4);
    __builtin_memcpy(dst, &f, sizeof(f));
}

#endif // EDGEBENCH_SIMD_COMPILED
} // namespace

QuantParams
chooseQuantParams(double min_val, double max_val)
{
    EB_CHECK(min_val <= max_val,
             "chooseQuantParams: min " << min_val << " > max " << max_val);
    // Widen to include zero so that 0.0 is exactly representable.
    min_val = std::min(min_val, 0.0);
    max_val = std::max(max_val, 0.0);
    if (min_val == max_val) {
        // All-zero tensor: any scale works; pick 1.
        return QuantParams{1.0, 0};
    }
    QuantParams qp;
    qp.scale = (max_val - min_val) / static_cast<double>(kQmax - kQmin);
    const double zp_real = kQmin - min_val / qp.scale;
    qp.zeroPoint = static_cast<std::int32_t>(std::lround(
        std::clamp(zp_real, static_cast<double>(kQmin),
                   static_cast<double>(kQmax))));
    return qp;
}

QuantParams
chooseSymmetricQuantParams(double abs_max)
{
    EB_CHECK(abs_max >= 0.0, "negative abs_max " << abs_max);
    if (abs_max == 0.0)
        return QuantParams{1.0, 0};
    return QuantParams{abs_max / 127.0, 0};
}

std::int8_t
quantizeValue(double v, const QuantParams& qp)
{
    const double q = std::nearbyint(v / qp.scale) + qp.zeroPoint;
    return static_cast<std::int8_t>(std::clamp(
        q, static_cast<double>(kQmin), static_cast<double>(kQmax)));
}

double
dequantizeValue(std::int8_t q, const QuantParams& qp)
{
    return qp.scale * (static_cast<std::int32_t>(q) - qp.zeroPoint);
}

std::vector<std::int8_t>
quantize(std::span<const float> src, const QuantParams& qp)
{
    std::vector<std::int8_t> out(src.size());
#if EDGEBENCH_SIMD_COMPILED
    if (simdActive()) {
        parallelFor(
            static_cast<std::int64_t>(src.size()),
            [&](std::int64_t i0, std::int64_t i1) {
                std::int64_t i = i0;
                for (; i + 4 <= i1; i += 4)
                    quantize4(src.data() + i,
                              out.data() + static_cast<std::size_t>(i),
                              qp);
                for (; i < i1; ++i)
                    out[static_cast<std::size_t>(i)] =
                        quantizeValue(src[i], qp);
            },
            /*min_grain=*/4096);
        return out;
    }
#endif
    parallelFor(
        static_cast<std::int64_t>(src.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i)
                out[static_cast<std::size_t>(i)] =
                    quantizeValue(src[i], qp);
        },
        /*min_grain=*/4096);
    return out;
}

std::vector<float>
dequantize(std::span<const std::int8_t> src, const QuantParams& qp)
{
    std::vector<float> out(src.size());
#if EDGEBENCH_SIMD_COMPILED
    if (simdActive()) {
        parallelFor(
            static_cast<std::int64_t>(src.size()),
            [&](std::int64_t i0, std::int64_t i1) {
                std::int64_t i = i0;
                for (; i + 4 <= i1; i += 4)
                    dequantize4(src.data() + i,
                                out.data() +
                                    static_cast<std::size_t>(i),
                                qp);
                for (; i < i1; ++i)
                    out[static_cast<std::size_t>(i)] =
                        static_cast<float>(
                            dequantizeValue(src[i], qp));
            },
            /*min_grain=*/4096);
        return out;
    }
#endif
    parallelFor(
        static_cast<std::int64_t>(src.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i)
                out[static_cast<std::size_t>(i)] = static_cast<float>(
                    dequantizeValue(src[i], qp));
        },
        /*min_grain=*/4096);
    return out;
}

void
observeMinMax(std::span<const float> src, double& min_val, double& max_val)
{
    for (float v : src) {
        min_val = std::min(min_val, static_cast<double>(v));
        max_val = std::max(max_val, static_cast<double>(v));
    }
}

void
observeMinMaxInt8(std::span<const std::int8_t> src, const QuantParams& qp,
                  double& min_val, double& max_val)
{
    // Stream the dequantized values without materializing the fp32
    // buffer. Each value is rounded through float first so the observed
    // range is bit-identical to observeMinMax(dequantize(src, qp)).
    for (std::int8_t q : src) {
        const double v =
            static_cast<float>(dequantizeValue(q, qp));
        min_val = std::min(min_val, v);
        max_val = std::max(max_val, v);
    }
}

RequantScale
makeRequantScale(double real_multiplier)
{
    EB_CHECK(std::isfinite(real_multiplier) && real_multiplier > 0.0,
             "makeRequantScale: multiplier must be positive and "
             "finite, got "
                 << real_multiplier);
    int exponent = 0;
    const double mant = std::frexp(real_multiplier, &exponent);
    // mant in [0.5, 1) => llround lands in [2^29, 2^30].
    RequantScale rs;
    rs.multiplier = std::llround(std::ldexp(mant, 30));
    rs.shift = 30 - exponent;
    if (rs.multiplier == (std::int64_t{1} << 30)) {
        // mant rounded up to 1.0: renormalize.
        rs.multiplier >>= 1;
        --rs.shift;
    }
    EB_CHECK(rs.shift >= 1 && rs.shift <= 62,
             "makeRequantScale: multiplier " << real_multiplier
                 << " out of fixed-point range (shift " << rs.shift
                 << ")");
    return rs;
}

void
quantizedClampBounds(const QuantParams& qp, double real_lo,
                     double real_hi, std::int32_t& qlo,
                     std::int32_t& qhi)
{
    qlo = std::max<std::int32_t>(
        -128,
        static_cast<std::int32_t>(
            std::lround(real_lo / qp.scale + qp.zeroPoint)));
    qhi = 127;
    if (std::isfinite(real_hi)) {
        qhi = std::min<std::int32_t>(
            127, static_cast<std::int32_t>(
                     std::lround(real_hi / qp.scale + qp.zeroPoint)));
    }
}

double
quantizationStepError(const QuantParams& qp)
{
    return qp.scale / 2.0;
}

} // namespace core
} // namespace edgebench
