#include "edgebench/core/clock.hh"

#include <cmath>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace core
{

void
VirtualClock::advanceUs(double us)
{
    EB_CHECK(std::isfinite(us) && us >= 0.0,
             "VirtualClock: cannot advance by " << us << " us");
    now_us_ += us;
}

void
VirtualClock::advanceMs(double ms)
{
    advanceUs(ms * 1e3);
}

} // namespace core
} // namespace edgebench
