/**
 * @file
 * Reference fp32 compute kernels.
 *
 * Two convolution paths are provided: a direct ("naive") loop nest and
 * an im2col+GEMM path, which the tests cross-check against each other.
 * The interpreter uses the GEMM path; the naive path is the oracle.
 *
 * Layouts: activations NCHW (NCDHW for 3D); conv weights
 * [outC, inC/groups, kH, kW]; dense weights [outF, inF].
 */

#ifndef EDGEBENCH_CORE_KERNELS_HH
#define EDGEBENCH_CORE_KERNELS_HH

#include <span>

#include "edgebench/core/gemm_packed.hh"
#include "edgebench/core/geometry.hh"
#include "edgebench/core/tensor.hh"

namespace edgebench
{
namespace core
{

/**
 * C[m,n] = A[m,k] * B[k,n] (row-major, C overwritten). Packs both
 * operands into thread-local scratch and runs the tiled engine
 * (gemm_packed.hh); callers that reuse A should pack once and call
 * gemmPacked directly.
 */
void gemm(std::int64_t m, std::int64_t n, std::int64_t k,
          std::span<const float> a, std::span<const float> b,
          std::span<float> c);

/**
 * Expand conv input patches into columns: output is a
 * [inC/groups * kH * kW, outH * outW] matrix for image @p image of one
 * group of one batch element.
 */
void im2col(std::span<const float> image, const Conv2dGeom& g,
            std::int64_t group, std::span<float> columns);

/** Direct convolution (oracle). @p bias may be empty. */
Tensor conv2dNaive(const Tensor& input, const Tensor& weights,
                   const Tensor& bias, const Conv2dGeom& g);

/**
 * im2col + packed GEMM convolution (the production path). Depthwise
 * layers (inC/groups == 1) take a direct per-plane kernel that skips
 * im2col and the GEMM entirely. @p act is fused into the engine
 * epilogue (bias add + activation while the output tile is register
 * resident) — bit-identical to running the standalone activation
 * kernel afterwards, minus a full pass over the output.
 */
Tensor conv2d(const Tensor& input, const Tensor& weights,
              const Tensor& bias, const Conv2dGeom& g,
              EpilogueAct act = EpilogueAct::kNone);

/**
 * Pre-packed conv2d weights: one packed-A panel set per group. Empty
 * for depthwise layers, whose direct kernel reads the raw weight
 * tensor (conv2dPacked then needs @p weights for them).
 */
struct PackedConvWeights
{
    std::vector<PackedA> groups;
};

/** One-time weight packing for conv2dPacked (interpreter cache). */
PackedConvWeights packConv2dWeights(const Tensor& weights,
                                    const Conv2dGeom& g);

/**
 * conv2d consuming pre-packed weights: identical results to conv2d
 * with zero steady-state packing cost. @p weights is the raw weight
 * tensor (shape checks; depthwise direct path).
 */
Tensor conv2dPacked(const Tensor& input, const Tensor& weights,
                    const PackedConvWeights& packed, const Tensor& bias,
                    const Conv2dGeom& g,
                    EpilogueAct act = EpilogueAct::kNone);

/** Direct 3D convolution (C3D). */
Tensor conv3d(const Tensor& input, const Tensor& weights,
              const Tensor& bias, const Conv3dGeom& g);

/** Fully-connected layer: out = in * W^T + b. */
Tensor dense(const Tensor& input, const Tensor& weights,
             const Tensor& bias, const DenseGeom& g);

/** One-time weight packing for densePacked (interpreter cache). */
PackedA packDenseWeights(const Tensor& weights, const DenseGeom& g);

/** dense consuming pre-packed weights; bit-identical to dense. */
Tensor densePacked(const Tensor& input, const PackedA& packed,
                   const Tensor& bias, const DenseGeom& g);

/** Max pooling; padding contributes -inf. */
Tensor maxPool2d(const Tensor& input, const Pool2dGeom& g);

/** Average pooling; divisor counts only in-bounds elements. */
Tensor avgPool2d(const Tensor& input, const Pool2dGeom& g);

/** 3D max pooling (C3D). */
Tensor maxPool3d(const Tensor& input, const Pool3dGeom& g);

/** Global average pool: [N,C,H,W] -> [N,C]. */
Tensor globalAvgPool(const Tensor& input);

/**
 * Inference-mode batch normalization over channel dim (dim 1) of an
 * NC[D]HW tensor; all parameter tensors have shape [C].
 */
Tensor batchNorm(const Tensor& input, const Tensor& gamma,
                 const Tensor& beta, const Tensor& mean,
                 const Tensor& variance, double epsilon);

/** @name Activations (elementwise) */
/// @{
Tensor relu(const Tensor& input);
Tensor relu6(const Tensor& input);
Tensor leakyRelu(const Tensor& input, float slope);
Tensor sigmoid(const Tensor& input);
Tensor tanhAct(const Tensor& input);
/// @}

/**
 * @name In-place activations
 * Same math, same parallel split as the allocating variants (so the
 * results are bit-identical at any thread count), but mutating the
 * tensor instead of allocating a fresh one — the interpreter fuses
 * these into the producing node's output slot.
 */
/// @{
void reluInPlace(Tensor& t);
void relu6InPlace(Tensor& t);
void leakyReluInPlace(Tensor& t, float slope);
void sigmoidInPlace(Tensor& t);
void tanhInPlace(Tensor& t);
/// @}

/**
 * In-place inference batch normalization (same math and parallel
 * split as batchNorm, mutating @p t).
 */
void batchNormInPlace(Tensor& t, const Tensor& gamma, const Tensor& beta,
                      const Tensor& mean, const Tensor& variance,
                      double epsilon);

/** Row-wise softmax over the last dimension. */
Tensor softmax(const Tensor& input);

/** Elementwise sum of two same-shaped tensors (residual add). */
Tensor addElementwise(const Tensor& a, const Tensor& b);

/**
 * In-place residual add: dst[i] = dst[i] + other[i] when @p dst_is_lhs
 * (dst plays the role of `a` in addElementwise), other[i] + dst[i]
 * otherwise — operand order is preserved so results stay bit-identical
 * to the allocating variant.
 */
void addElementwiseInPlace(Tensor& dst, const Tensor& other,
                           bool dst_is_lhs);

/** Concatenate along the channel dimension (dim 1). */
Tensor concatChannels(const std::vector<Tensor>& inputs);

/** Same, over borrowed tensors (no copies of the inputs). */
Tensor concatChannels(const std::vector<const Tensor*>& inputs);

/** Concatenate along the last dimension (all other dims equal). */
Tensor concatLastDim(const std::vector<Tensor>& inputs);

/** Same, over borrowed tensors (no copies of the inputs). */
Tensor concatLastDim(const std::vector<const Tensor*>& inputs);

/** Zero-pad H/W of an NCHW tensor. */
Tensor padSpatial(const Tensor& input, std::int64_t pad_top,
                  std::int64_t pad_bottom, std::int64_t pad_left,
                  std::int64_t pad_right);

/** Nearest-neighbour upsampling by an integer factor (YOLOv3). */
Tensor upsampleNearest(const Tensor& input, std::int64_t factor);

/** Flatten to [N, C*H*W...]. */
Tensor flatten(const Tensor& input);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_KERNELS_HH
