/**
 * @file
 * Pack-and-tile fp32 GEMM engine.
 *
 * The engine computes C[m,n] = A[m,k] * B[k,n] from *packed* operands:
 *
 * - A (weights) is repacked into register-tile-ordered panels of
 *   kGemmMR rows: panel ip holds rows [ip*MR, ip*MR+MR) interleaved
 *   k-major (all MR values for k, then k+1, ...), zero-padded on the
 *   ragged row tail. Each panel is prefixed by one flag per
 *   kGemmKChunk-wide k-chunk recording whether the whole MR x chunk
 *   block is zero — magnitude-pruned weights are skipped at chunk
 *   granularity instead of with a per-element branch in the hot loop.
 * - B (activations / im2col columns) is repacked into kGemmNR-column
 *   panels, also k-major, so the microkernel streams both operands
 *   contiguously.
 *
 * The microkernel accumulates an MR x NR tile of C in local float
 * accumulators (register-resident under the default build flags; no
 * platform intrinsics) over the full k extent, then writes the valid
 * region back once. Because M/N tiling never splits the k loop, every
 * C element is accumulated k-ascending start-to-finish by exactly one
 * worker: results are bit-identical for any thread count, preserving
 * the repo-wide determinism invariant (parallel.hh).
 *
 * A GEMV companion (gemvPackedAcc) consumes the same packed-A panels
 * with *double* accumulators in the same k-ascending order as the old
 * per-row dot products, so the dense and RNN-gate paths keep their
 * historical bit-exact results while gaining packed-panel locality and
 * the pruned-chunk skip.
 *
 * Weight packing is one-time work: the interpreter caches a PackedA
 * per node (next to its converted-parameter cache), and the unpacked
 * kernel entry points pack into thread-local scratch so ad-hoc calls
 * allocate nothing in steady state.
 */

#ifndef EDGEBENCH_CORE_GEMM_PACKED_HH
#define EDGEBENCH_CORE_GEMM_PACKED_HH

#include <cstdint>
#include <span>

#include "edgebench/core/align.hh"

namespace edgebench
{
namespace core
{

/**
 * Activation fused into a GEMM epilogue. The engines apply it while
 * the output tile is still register-resident, with exactly the scalar
 * kernels' elementwise math (relu: v > 0 ? v : 0; relu6:
 * std::clamp(v, 0, 6)), so fusing never changes results — it only
 * removes a full extra pass over the output tensor.
 */
enum class EpilogueAct
{
    kNone,
    kRelu,
    kRelu6,
};

/**
 * Fused epilogue for gemmPacked / gemmPackB: optional per-row bias
 * (rows of C are output channels in the conv mapping; empty span =
 * no bias) followed by an optional activation. The bias add is the
 * same single float addition the old post-GEMM pass performed, so
 * results are bit-identical to the unfused sequence.
 */
struct GemmEpilogue
{
    std::span<const float> bias{};
    EpilogueAct act = EpilogueAct::kNone;
};

/**
 * Scalar reference semantics of EpilogueAct — the exact per-element
 * math of the standalone activation kernels (kernels.cc). Every fused
 * path (vector or scalar, GEMM or depthwise) reduces to this per
 * element, which is what makes fusion bit-neutral.
 */
inline float
applyEpilogueAct(float v, EpilogueAct act)
{
    switch (act) {
        case EpilogueAct::kRelu:
            return v > 0.0f ? v : 0.0f;
        case EpilogueAct::kRelu6:
            return v < 0.0f ? 0.0f : (6.0f < v ? 6.0f : v);
        case EpilogueAct::kNone:
            break;
    }
    return v;
}

/** Microkernel register-tile rows (packed-A panel height). */
inline constexpr std::int64_t kGemmMR = 6;

/** Microkernel register-tile columns (packed-B panel width). */
inline constexpr std::int64_t kGemmNR = 8;

/** k-chunk width for pack-time all-zero (pruned weight) detection. */
inline constexpr std::int64_t kGemmKChunk = 256;

/** ceil(dim / tile): panel/chunk counts for the packed layouts. */
inline std::int64_t
gemmTiles(std::int64_t dim, std::int64_t tile)
{
    return (dim + tile - 1) / tile;
}

/**
 * Non-owning view of a packed A operand. `data` holds mPanels()
 * panels, each [kChunks() zero-flags | k*kGemmMR values]; a flag is
 * 1.0f when the whole MR x chunk block is zero (skippable).
 */
struct PackedAView
{
    std::int64_t m = 0;
    std::int64_t k = 0;
    const float* data = nullptr;

    std::int64_t mPanels() const { return gemmTiles(m, kGemmMR); }
    std::int64_t kChunks() const { return gemmTiles(k, kGemmKChunk); }
    std::int64_t panelStride() const
    {
        return kChunks() + k * kGemmMR;
    }
    const float* panelFlags(std::int64_t ip) const
    {
        return data + ip * panelStride();
    }
    const float* panelValues(std::int64_t ip) const
    {
        return panelFlags(ip) + kChunks();
    }
};

/** Floats required to pack an m x k A operand (panels + flags). */
inline std::int64_t
packedASize(std::int64_t m, std::int64_t k)
{
    return gemmTiles(m, kGemmMR) *
        (gemmTiles(k, kGemmKChunk) + k * kGemmMR);
}

/** Floats required to pack a k x n B operand. */
inline std::int64_t
packedBSize(std::int64_t n, std::int64_t k)
{
    return gemmTiles(n, kGemmNR) * k * kGemmNR;
}

/**
 * Pack row-major A[m,k] into @p storage (>= packedASize(m, k)
 * floats), computing the per-chunk zero flags. Returns a view over
 * @p storage.
 */
PackedAView packAInto(std::int64_t m, std::int64_t k,
                      std::span<const float> a,
                      std::span<float> storage);

/**
 * Heap-owning packed A — the form the interpreter caches per node so
 * steady-state inference performs zero packing work.
 */
struct PackedA
{
    std::int64_t m = 0;
    std::int64_t k = 0;
    AlignedVec<float> data;

    PackedAView view() const { return {m, k, data.data()}; }
    double byteSize() const
    {
        return static_cast<double>(data.size()) * sizeof(float);
    }
};

/** Pack row-major A[m,k] into a fresh heap-owning PackedA. */
PackedA packA(std::int64_t m, std::int64_t k, std::span<const float> a);

/**
 * Pack row-major B[k,n] into @p storage (>= packedBSize(n, k)
 * floats); ragged column tails are zero-padded. Parallelized over
 * column panels (deterministic: disjoint writes, no accumulation).
 */
void packBInto(std::int64_t n, std::int64_t k, std::span<const float> b,
               std::span<float> storage);

/**
 * C[m,n] = A * B with both operands packed (C overwritten), with the
 * optional fused epilogue @p ep (per-row bias + activation) applied
 * before the tile leaves registers. Parallelized over C tiles;
 * bit-identical for any thread count and across the SIMD/scalar
 * microkernels (simd.hh).
 */
void gemmPacked(const PackedAView& a, std::int64_t n,
                std::span<const float> packed_b, std::span<float> c,
                const GemmEpilogue& ep = {});

/**
 * Convenience wrapper: packs row-major B[k,n] into the kGemmPackB
 * scratch slot, then runs gemmPacked. The caller must not itself hold
 * a kGemmPackB borrow.
 */
void gemmPackB(const PackedAView& a, std::int64_t n,
               std::span<const float> b, std::span<float> c,
               const GemmEpilogue& ep = {});

/**
 * y[i] += sum_k A[i,k] * x[k] for i in [0, m), accumulating in double
 * in ascending-k order — the exact accumulation the old per-row dot
 * products performed, so callers that seed y with a bias reproduce
 * historical results bit-for-bit. All-zero weight chunks are skipped.
 * Parallelized over row panels; bit-identical for any thread count.
 */
void gemvPackedAcc(const PackedAView& a, std::span<const float> x,
                   std::span<double> y);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_GEMM_PACKED_HH
