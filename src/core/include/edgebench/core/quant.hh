/**
 * @file
 * Affine INT8 quantization primitives.
 *
 * Implements the post-training quantization scheme used by TFLite and
 * TensorRT (the paper's Table II "Quantization" row): a real value r is
 * represented as r = scale * (q - zero_point) with q an int8.
 */

#ifndef EDGEBENCH_CORE_QUANT_HH
#define EDGEBENCH_CORE_QUANT_HH

#include <cstdint>
#include <span>
#include <vector>

namespace edgebench
{
namespace core
{

/** Affine quantization parameters for one tensor. */
struct QuantParams
{
    double scale = 1.0;
    std::int32_t zeroPoint = 0;

    bool operator==(const QuantParams&) const = default;
};

/**
 * Choose quantization parameters that cover [minVal, maxVal] with the
 * int8 range [-128, 127]. The range is widened to include 0 so that
 * zero padding quantizes exactly (TFLite requirement).
 */
QuantParams chooseQuantParams(double min_val, double max_val);

/**
 * Choose symmetric per-tensor parameters (zeroPoint == 0), the scheme
 * TensorRT uses for weights.
 */
QuantParams chooseSymmetricQuantParams(double abs_max);

/** Quantize one value. Saturates to [-128, 127]. */
std::int8_t quantizeValue(double v, const QuantParams& qp);

/** Dequantize one value. */
double dequantizeValue(std::int8_t q, const QuantParams& qp);

/** Quantize a buffer. */
std::vector<std::int8_t> quantize(std::span<const float> src,
                                  const QuantParams& qp);

/** Dequantize a buffer. */
std::vector<float> dequantize(std::span<const std::int8_t> src,
                              const QuantParams& qp);

/** Observe min/max over a buffer (calibration). */
void observeMinMax(std::span<const float> src, double& min_val,
                   double& max_val);

/**
 * Max absolute quantization round-trip error for parameters @p qp:
 * dequantize(quantize(x)) deviates from x by at most scale/2 for x
 * inside the covered range.
 */
double quantizationStepError(const QuantParams& qp);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_QUANT_HH
