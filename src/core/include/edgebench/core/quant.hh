/**
 * @file
 * Affine INT8 quantization primitives.
 *
 * Implements the post-training quantization scheme used by TFLite and
 * TensorRT (the paper's Table II "Quantization" row): a real value r is
 * represented as r = scale * (q - zero_point) with q an int8.
 */

#ifndef EDGEBENCH_CORE_QUANT_HH
#define EDGEBENCH_CORE_QUANT_HH

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace edgebench
{
namespace core
{

/** Affine quantization parameters for one tensor. */
struct QuantParams
{
    double scale = 1.0;
    std::int32_t zeroPoint = 0;

    bool operator==(const QuantParams&) const = default;
};

/**
 * Choose quantization parameters that cover [minVal, maxVal] with the
 * int8 range [-128, 127]. The range is widened to include 0 so that
 * zero padding quantizes exactly (TFLite requirement).
 */
QuantParams chooseQuantParams(double min_val, double max_val);

/**
 * Choose symmetric per-tensor parameters (zeroPoint == 0), the scheme
 * TensorRT uses for weights.
 */
QuantParams chooseSymmetricQuantParams(double abs_max);

/** Quantize one value. Saturates to [-128, 127]. */
std::int8_t quantizeValue(double v, const QuantParams& qp);

/** Dequantize one value. */
double dequantizeValue(std::int8_t q, const QuantParams& qp);

/** Quantize a buffer. */
std::vector<std::int8_t> quantize(std::span<const float> src,
                                  const QuantParams& qp);

/** Dequantize a buffer. */
std::vector<float> dequantize(std::span<const std::int8_t> src,
                              const QuantParams& qp);

/** Observe min/max over a buffer (calibration). */
void observeMinMax(std::span<const float> src, double& min_val,
                   double& max_val);

/**
 * Observe min/max over an int8 buffer by streaming dequantization —
 * no fp32 copy. Bit-identical to observeMinMax(dequantize(src, qp))
 * (each value is rounded through float exactly as dequantize does).
 */
void observeMinMaxInt8(std::span<const std::int8_t> src,
                       const QuantParams& qp, double& min_val,
                       double& max_val);

/**
 * @name Fixed-point requantization
 *
 * The integer kernels scale an int32/int64 accumulator to the output
 * quantization domain without touching floating point on the hot
 * path: a positive real multiplier M (typically
 * `in_scale * weight_scale / out_scale`) is represented once as
 * `multiplier / 2^shift` with `multiplier` normalized to
 * [2^29, 2^30), and each accumulator is then mapped with one int64
 * multiply and a rounding right shift. docs/QUANTIZATION.md derives
 * the math and its error bound.
 */
/// @{

/** Fixed-point representation of a positive real multiplier. */
struct RequantScale
{
    /** Mantissa, normalized to [2^29, 2^30). */
    std::int64_t multiplier = 0;
    /** Binary exponent: the represented value is multiplier/2^shift. */
    std::int32_t shift = 0;
};

/**
 * Decompose @p real_multiplier (must be positive, finite, and small
 * enough that the normalized shift lands in [1, 62] — true for every
 * scale triple the int8 range can produce) into a RequantScale with a
 * 30-bit mantissa: the represented value differs from
 * @p real_multiplier by < 2^-30 relative.
 */
RequantScale makeRequantScale(double real_multiplier);

/**
 * Arithmetic right shift by @p shift in [1, 62] with round-half-up
 * (ties toward +infinity) — the integer equivalent of
 * `round(x / 2^shift)`.
 */
inline std::int64_t
roundingRightShift(std::int64_t x, std::int32_t shift)
{
    return (x + (std::int64_t{1} << (shift - 1))) >> shift;
}

/**
 * Map accumulator @p acc to int8: `clamp(round(acc * rs) + zp)`.
 * Requires |acc| < 2^33 so the int64 product cannot overflow; the
 * packed int8 GEMM guarantees this via its k <= kGemmInt8MaxK limit.
 */
inline std::int8_t
requantizeFixedPoint(std::int64_t acc, const RequantScale& rs,
                     std::int32_t zero_point)
{
    const std::int64_t q =
        roundingRightShift(acc * rs.multiplier, rs.shift) + zero_point;
    return static_cast<std::int8_t>(
        std::clamp<std::int64_t>(q, -128, 127));
}

/**
 * Variant with caller-supplied saturation bounds (the fused-activation
 * epilogue: a quantized-domain relu/relu6 is just a tighter clamp).
 * Requires -128 <= qlo <= qhi <= 127; with those bounds,
 * `clamp(clamp(q, -128, 127), qlo, qhi) == clamp(q, qlo, qhi)`, so
 * fusing the activation into the requantization is bit-identical to
 * requantizeFixedPoint followed by a separate int8 clamp pass.
 */
inline std::int8_t
requantizeFixedPoint(std::int64_t acc, const RequantScale& rs,
                     std::int32_t zero_point, std::int32_t qlo,
                     std::int32_t qhi)
{
    const std::int64_t q =
        roundingRightShift(acc * rs.multiplier, rs.shift) + zero_point;
    return static_cast<std::int8_t>(
        std::clamp<std::int64_t>(q, qlo, qhi));
}

/**
 * Map a real-domain clamp range into the quantized domain of @p qp:
 * qlo/qhi are the quantized values of real_lo/real_hi (half-even via
 * lround on the exact affine map), saturated to [-128, 127]. An
 * infinite real_hi yields qhi == 127. One definition shared by the
 * int8 activation kernels (kernels_int8.cc) and the fused GEMM
 * epilogues so both clamp with identical bounds.
 */
void quantizedClampBounds(const QuantParams& qp, double real_lo,
                          double real_hi, std::int32_t& qlo,
                          std::int32_t& qhi);

/// @}

/**
 * Max absolute quantization round-trip error for parameters @p qp:
 * dequantize(quantize(x)) deviates from x by at most scale/2 for x
 * inside the covered range.
 */
double quantizationStepError(const QuantParams& qp);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_QUANT_HH
