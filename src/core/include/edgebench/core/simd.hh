/**
 * @file
 * Thin portable SIMD layer for the compute kernels.
 *
 * Built on the GCC/Clang vector_size extension: f32x8 / i32x8 are
 * 8-lane value types the compiler lowers to whatever the target ISA
 * offers (AVX2 on x86-64 with -march=native, NEON pairs on aarch64,
 * SSE pairs or plain scalar code otherwise). No intrinsics, no
 * per-ISA code paths.
 *
 * Bit-identity contract: every helper here performs the same IEEE-754
 * operation per lane that the scalar engine performs per element, in
 * the same order along the reduction dimension. The microkernels
 * vectorize across the NR=8 output columns only — never across k — so
 * each output element's accumulation order is unchanged and results
 * are byte-identical to the scalar engine at any thread count. Fused
 * multiply-add would break that (one rounding instead of two), which
 * is why the build pins -ffp-contract=off (CMakeLists.txt).
 *
 * Runtime selection: the SIMD build (EDGEBENCH_SIMD=ON) compiles both
 * the vector and scalar paths and dispatches on simdActive(), so one
 * binary can compare the two (oracle tests, bench rows) and the
 * EDGEBENCH_SIMD=off environment variable can force the scalar engine
 * in the field. The EDGEBENCH_SIMD=OFF build compiles the scalar
 * engine only and simdActive() is constant false.
 */

#ifndef EDGEBENCH_CORE_SIMD_HH
#define EDGEBENCH_CORE_SIMD_HH

#include <cstdint>
#include <cstring>

namespace edgebench
{
namespace core
{

#if defined(EDGEBENCH_SIMD) && (defined(__GNUC__) || defined(__clang__))
#define EDGEBENCH_SIMD_COMPILED 1
#else
#define EDGEBENCH_SIMD_COMPILED 0
#endif

/** True when the vector microkernels are compiled into this binary. */
inline constexpr bool kSimdCompiled = EDGEBENCH_SIMD_COMPILED != 0;

/** Vector lane count used by the engines (f32x8 / i32x8). */
inline constexpr int kSimdLanes = 8;

/**
 * True when the vector paths should run. Always false in scalar-only
 * builds; in SIMD builds defaults to true but honours the
 * EDGEBENCH_SIMD=off/0 environment variable and setSimdActive().
 */
bool simdActive();

/**
 * Toggle the vector paths at runtime (tests, bench). No-op (returns
 * false) in scalar-only builds. Not thread-safe against concurrent
 * kernel execution; flip it only between inference calls.
 */
bool setSimdActive(bool on);

/** Lane width the active configuration runs: 8 when active, else 1. */
int simdLaneWidth();

#if EDGEBENCH_SIMD_COMPILED

typedef float f32x8 __attribute__((vector_size(32)));
typedef std::int32_t i32x8 __attribute__((vector_size(32)));
typedef double f64x4 __attribute__((vector_size(32)));

/** Unaligned 8-lane float load. */
inline f32x8
loadF32x8(const float* p)
{
    f32x8 v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
}

/** Unaligned 8-lane float store. */
inline void
storeF32x8(float* p, f32x8 v)
{
    __builtin_memcpy(p, &v, sizeof(v));
}

/** Broadcast one float into all 8 lanes. */
inline f32x8
splatF32x8(float x)
{
    return f32x8{x, x, x, x, x, x, x, x};
}

/** Unaligned 8-lane int32 load. */
inline i32x8
loadI32x8(const std::int32_t* p)
{
    i32x8 v;
    __builtin_memcpy(&v, p, sizeof(v));
    return v;
}

/** Unaligned 8-lane int32 store. */
inline void
storeI32x8(std::int32_t* p, i32x8 v)
{
    __builtin_memcpy(p, &v, sizeof(v));
}

/** Broadcast one int32 into all 8 lanes. */
inline i32x8
splatI32x8(std::int32_t x)
{
    return i32x8{x, x, x, x, x, x, x, x};
}

/** Widen 8 consecutive int8 values to an i32x8. */
inline i32x8
widenI8ToI32x8(const std::int8_t* p)
{
    typedef std::int8_t i8x8 __attribute__((vector_size(8)));
    i8x8 narrow;
    __builtin_memcpy(&narrow, p, sizeof(narrow));
    return __builtin_convertvector(narrow, i32x8);
}

/**
 * Per-lane max(v, 0) with the exact semantics of the scalar
 * `v > 0 ? v : 0` (negative zero and NaN map to +0, like the scalar
 * relu in kernels.cc).
 */
inline f32x8
reluF32x8(f32x8 v)
{
    return v > 0.0f ? v : splatF32x8(0.0f);
}

/**
 * Per-lane clamp to [lo, hi] with the exact semantics of the scalar
 * std::clamp(v, lo, hi): v < lo ? lo : (hi < v ? hi : v).
 */
inline f32x8
clampF32x8(f32x8 v, float lo, float hi)
{
    v = v < lo ? splatF32x8(lo) : v;
    return hi < v ? splatF32x8(hi) : v;
}

/** Per-lane int32 clamp to [lo, hi] (same std::clamp ordering). */
inline i32x8
clampI32x8(i32x8 v, std::int32_t lo, std::int32_t hi)
{
    v = v < lo ? splatI32x8(lo) : v;
    return hi < v ? splatI32x8(hi) : v;
}

#endif // EDGEBENCH_SIMD_COMPILED

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_SIMD_HH
