/**
 * @file
 * Minimal deterministic parallelism for the compute kernels.
 *
 * parallelFor splits an index range into contiguous chunks, one per
 * worker. Each output element is written by exactly one worker and
 * every worker performs the same arithmetic it would serially, so
 * results are bit-identical for any thread count — determinism is a
 * repo-wide invariant (see docs/ARCHITECTURE.md).
 *
 * The pool is process-wide and lazy; set the thread count via
 * setParallelism (0 = hardware concurrency). Kernels fall back to the
 * calling thread for small ranges.
 */

#ifndef EDGEBENCH_CORE_PARALLEL_HH
#define EDGEBENCH_CORE_PARALLEL_HH

#include <cstdint>
#include <functional>

namespace edgebench
{
namespace core
{

/**
 * Set the worker count (0 = hardware concurrency). Tears down any
 * existing pool and rebuilds it lazily at the requested size, so the
 * count can change between runs (CLI --threads, determinism tests).
 * Must not be called concurrently with parallelFor, or from inside a
 * parallelFor body.
 */
void setParallelism(int threads);

/** Current worker count (>= 1). */
int parallelism();

/**
 * Run fn(begin, end) over a partition of [0, n) across the workers.
 * Serial (caller thread) when n < min_grain or only one worker.
 */
void parallelFor(std::int64_t n,
                 const std::function<void(std::int64_t,
                                          std::int64_t)>& fn,
                 std::int64_t min_grain = 2);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_PARALLEL_HH
