/**
 * @file
 * Deterministic random number generation.
 *
 * Every stochastic element of edgebench-sim (weight initialization,
 * measurement noise, workload inputs) draws from this RNG so that all
 * tables and figures regenerate bit-identically between runs.
 */

#ifndef EDGEBENCH_CORE_RNG_HH
#define EDGEBENCH_CORE_RNG_HH

#include <cstdint>

namespace edgebench
{
namespace core
{

/**
 * A small, fast, deterministic PRNG (xoshiro256** seeded via
 * SplitMix64). Not cryptographic; chosen for reproducibility and
 * portability across standard libraries (std::mt19937 distributions
 * differ between implementations).
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

    /** @return next raw 64-bit value. */
    std::uint64_t next();

    /** @return uniform double in [0, 1). */
    double uniform();

    /** @return uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** @return uniform integer in [lo, hi] inclusive. */
    std::int64_t uniformInt(std::int64_t lo, std::int64_t hi);

    /** @return standard normal variate (Box-Muller, deterministic). */
    double normal();

    /** @return normal variate with the given mean/stddev. */
    double normal(double mean, double stddev);

    /** Fork a child stream that is independent of this one. */
    Rng fork();

  private:
    std::uint64_t s_[4];
    bool hasSpareNormal_ = false;
    double spareNormal_ = 0.0;
};

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_RNG_HH
