/**
 * @file
 * A small dense tensor with value semantics.
 *
 * Tensors hold fp32 data plus, when quantized, an int8 payload and its
 * QuantParams. FP16 is emulated: data stays fp32 but every element has
 * been rounded through half precision (the paper's frameworks likewise
 * emulate FP16 on devices without native support).
 *
 * Storage comes in two flavours:
 *  - *owned*: the tensor holds its payload in a private vector (the
 *    default, and the only mode most callers ever see);
 *  - *borrowed*: the payload is a span over caller-owned memory — an
 *    activation-arena slab handed out by the interpreter's static
 *    memory planner (graph/memplan.hh). A borrowed tensor never
 *    outlives its arena inside the planner's execution loop; values
 *    that escape (graph outputs) are deep-copied back to owned
 *    storage by the ordinary copy constructor, so value semantics are
 *    preserved at the API boundary.
 *
 * Kernels do not know about the planner. They construct their outputs
 * the way they always did (`Tensor out(shape)` / `forOutputI8`), and
 * the thread-local OutputSink below redirects the *first* matching
 * construction into the armed arena slot. A sink miss (shape or dtype
 * mismatch, nothing armed) simply allocates owned storage, so
 * correctness never depends on the sink being armed.
 */

#ifndef EDGEBENCH_CORE_TENSOR_HH
#define EDGEBENCH_CORE_TENSOR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "edgebench/core/quant.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/core/types.hh"

namespace edgebench
{
namespace core
{

/** Round one fp32 value through IEEE binary16 (round-to-nearest-even). */
float roundThroughF16(float v);

class Tensor
{
  public:
    /** Empty scalar-shaped tensor. */
    Tensor();

    /**
     * Zero-filled fp32 tensor of the given shape — or, when the
     * calling thread's OutputSink is armed for exactly this shape in
     * fp32, a borrowed view over the armed arena slot.
     */
    explicit Tensor(Shape shape);

    /** fp32 tensor with explicit contents (size must match shape). */
    Tensor(Shape shape, std::vector<float> data);

    /**
     * @name Value semantics over both storage modes
     * Copying always deep-copies the payload into owned storage (this
     * is how borrowed planner outputs escape their arena). Moving
     * transfers the storage as-is: a borrowed tensor stays borrowed,
     * an owned one keeps its buffer — no payload copy either way.
     */
    /// @{
    Tensor(const Tensor& other);
    Tensor& operator=(const Tensor& other);
    Tensor(Tensor&& other) noexcept;
    Tensor& operator=(Tensor&& other) noexcept;
    ~Tensor() = default;
    /// @}

    /** @name Factories */
    /// @{
    static Tensor zeros(Shape shape);
    static Tensor full(Shape shape, float value);
    /** He-style normal init scaled by fan-in, deterministic via rng. */
    static Tensor randomNormal(Shape shape, Rng& rng, double stddev = 1.0);
    static Tensor randomUniform(Shape shape, Rng& rng, double lo,
                                double hi);
    /**
     * Adopt already-quantized int8 values verbatim (no fp32 staging
     * round trip). The integer kernels build their outputs this way;
     * dequantize(quantize(x)) == x element-wise, so adopting computed
     * q values is bit-identical to staging them through fp32.
     */
    static Tensor fromInt8(Shape shape, std::vector<std::int8_t> data,
                           const QuantParams& qp);
    /**
     * Zero-filled int8 output tensor for the integer kernels: borrows
     * the armed OutputSink slot when shape and dtype match, otherwise
     * owns its (zero-initialized) storage. Fill via qdataMut().
     */
    static Tensor forOutputI8(Shape shape, const QuantParams& qp);
    /** fp32 tensor borrowing caller-owned storage (planner/tests). */
    static Tensor borrowF32(Shape shape, std::span<float> storage);
    /** int8 tensor borrowing caller-owned storage (planner/tests). */
    static Tensor borrowI8(Shape shape, std::span<std::int8_t> storage,
                           const QuantParams& qp);
    /// @}

    const Shape& shape() const { return shape_; }
    DType dtype() const { return dtype_; }
    std::int64_t numel() const { return numElements(shape_); }

    /**
     * Exact size of the payload in bytes at the current dtype.
     * Integer so that summing byte sizes over a run (live-activation
     * accounting) is exact; kF16 counts its logical 2 bytes/element
     * even though storage is emulated in fp32.
     */
    std::int64_t byteSize() const
    {
        switch (dtype_) {
          case DType::kI8: return numel();
          case DType::kF16: return numel() * 2;
          case DType::kBin1: return (numel() + 7) / 8;
          default: return numel() * 4;
        }
    }

    /** @name fp32 access (valid for kF32/kF16 tensors) */
    /// @{
    std::span<float> data();
    std::span<const float> data() const;
    float at(std::int64_t i) const;
    void set(std::int64_t i, float v);
    /// @}

    /** @name int8 access (valid for kI8 tensors) */
    /// @{
    std::span<const std::int8_t> qdata() const;
    /** Mutable int8 payload (kernels filling a forOutputI8 tensor). */
    std::span<std::int8_t> qdataMut();
    const QuantParams& quantParams() const;
    /// @}

    /** True when the payload lives in caller-owned (arena) storage. */
    bool borrowed() const
    {
        return ext_f32_ != nullptr || ext_i8_ != nullptr;
    }

    /**
     * Address of the first payload byte. Stable across moves, changes
     * across copies — the storage-identity probe the no-copy
     * regression tests rely on.
     */
    const void* storageAddress() const;

    /**
     * Process-wide count of deep copies performed by the copy
     * constructor / copy assignment (regression tests for accidental
     * copies on hot paths).
     */
    static std::int64_t copyCount();

    /** Fraction of elements equal to zero (pruning bookkeeping). */
    double sparsity() const;

    /** @name Precision conversions (return new tensors) */
    /// @{
    /** Post-training affine quantization from observed min/max. */
    Tensor toInt8() const;
    /** Quantization with caller-supplied params (from calibration). */
    Tensor toInt8(const QuantParams& qp) const;
    /** Back to fp32 (dequantize or identity). */
    Tensor toF32() const;
    /** Emulated fp16: rounds every element through binary16. */
    Tensor toF16() const;
    /// @}

    /**
     * Round every element through binary16 in place and retag the
     * dtype as kF16. Identical values to toF16() without allocating;
     * keeps borrowed storage borrowed.
     */
    void convertToF16InPlace();

    /** Zero out the smallest-magnitude @p fraction of elements. */
    Tensor prunedByMagnitude(double fraction) const;

    /** Elementwise maximum absolute difference against @p other. */
    double maxAbsDiff(const Tensor& other) const;

  private:
    std::span<float> f32Span();
    std::span<const float> f32Span() const;

    Shape shape_;
    DType dtype_ = DType::kF32;
    std::vector<float> f32_;
    std::vector<std::int8_t> i8_;
    /** Borrowed-storage views (null/0 when owned). */
    float* ext_f32_ = nullptr;
    std::int8_t* ext_i8_ = nullptr;
    std::int64_t ext_len_ = 0;
    QuantParams qp_;
};

/**
 * Thread-local destination hint for kernel output tensors.
 *
 * The interpreter's memory-planner path arms the sink with a node's
 * arena slot immediately before executing the node; the first tensor
 * construction whose shape *and* element type match the armed slot
 * borrows it instead of allocating (Tensor(Shape) for fp32/fp16
 * outputs, Tensor::forOutputI8 for int8 outputs). Arming is
 * per-thread, one slot deep, and consumed by the first match, so
 * kernels that build scratch tensors of other shapes are unaffected.
 *
 * The sink is a pure optimization channel: if nothing matches (op
 * falls back to a different dtype, reshapes through a different
 * constructor, ...) the output is plainly owned and the run stays
 * correct — the planner's slot just goes unused for that node.
 */
class OutputSink
{
  public:
    /**
     * Arm for an fp32/fp16 output of @p shape writing into @p dst.
     * @p clear zero-fills the slot at take time — required for ops
     * that rely on zero-initialized outputs (padSpatial,
     * detectPostprocess) because arena slots are reused across nodes.
     */
    static void armF32(const Shape& shape, std::span<float> dst,
                       bool clear);
    /** Arm for an int8 output of @p shape writing into @p dst. */
    static void armI8(const Shape& shape, std::span<std::int8_t> dst,
                      bool clear);
    /** Disarm without consuming (end of the node's execution). */
    static void disarm();
    /** True when the armed slot was taken since the last arm. */
    static bool consumed();

  private:
    friend class Tensor;
    /** Take the armed fp32 slot if @p shape matches; empty on miss. */
    static std::span<float> takeF32(const Shape& shape);
    /** Take the armed int8 slot if @p shape matches; empty on miss. */
    static std::span<std::int8_t> takeI8(const Shape& shape);
};

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_TENSOR_HH
