/**
 * @file
 * A small dense tensor with value semantics.
 *
 * Tensors hold fp32 data plus, when quantized, an int8 payload and its
 * QuantParams. FP16 is emulated: data stays fp32 but every element has
 * been rounded through half precision (the paper's frameworks likewise
 * emulate FP16 on devices without native support).
 */

#ifndef EDGEBENCH_CORE_TENSOR_HH
#define EDGEBENCH_CORE_TENSOR_HH

#include <cstdint>
#include <span>
#include <vector>

#include "edgebench/core/quant.hh"
#include "edgebench/core/rng.hh"
#include "edgebench/core/types.hh"

namespace edgebench
{
namespace core
{

/** Round one fp32 value through IEEE binary16 (round-to-nearest-even). */
float roundThroughF16(float v);

class Tensor
{
  public:
    /** Empty scalar-shaped tensor. */
    Tensor();

    /** Zero-filled fp32 tensor of the given shape. */
    explicit Tensor(Shape shape);

    /** fp32 tensor with explicit contents (size must match shape). */
    Tensor(Shape shape, std::vector<float> data);

    /** @name Factories */
    /// @{
    static Tensor zeros(Shape shape);
    static Tensor full(Shape shape, float value);
    /** He-style normal init scaled by fan-in, deterministic via rng. */
    static Tensor randomNormal(Shape shape, Rng& rng, double stddev = 1.0);
    static Tensor randomUniform(Shape shape, Rng& rng, double lo,
                                double hi);
    /**
     * Adopt already-quantized int8 values verbatim (no fp32 staging
     * round trip). The integer kernels build their outputs this way;
     * dequantize(quantize(x)) == x element-wise, so adopting computed
     * q values is bit-identical to staging them through fp32.
     */
    static Tensor fromInt8(Shape shape, std::vector<std::int8_t> data,
                           const QuantParams& qp);
    /// @}

    const Shape& shape() const { return shape_; }
    DType dtype() const { return dtype_; }
    std::int64_t numel() const { return numElements(shape_); }

    /** Size of the payload in bytes at the current dtype. */
    double byteSize() const { return numel() * dtypeBytes(dtype_); }

    /** @name fp32 access (valid for kF32/kF16 tensors) */
    /// @{
    std::span<float> data();
    std::span<const float> data() const;
    float at(std::int64_t i) const;
    void set(std::int64_t i, float v);
    /// @}

    /** @name int8 access (valid for kI8 tensors) */
    /// @{
    std::span<const std::int8_t> qdata() const;
    const QuantParams& quantParams() const;
    /// @}

    /** Fraction of elements equal to zero (pruning bookkeeping). */
    double sparsity() const;

    /** @name Precision conversions (return new tensors) */
    /// @{
    /** Post-training affine quantization from observed min/max. */
    Tensor toInt8() const;
    /** Quantization with caller-supplied params (from calibration). */
    Tensor toInt8(const QuantParams& qp) const;
    /** Back to fp32 (dequantize or identity). */
    Tensor toF32() const;
    /** Emulated fp16: rounds every element through binary16. */
    Tensor toF16() const;
    /// @}

    /** Zero out the smallest-magnitude @p fraction of elements. */
    Tensor prunedByMagnitude(double fraction) const;

    /** Elementwise maximum absolute difference against @p other. */
    double maxAbsDiff(const Tensor& other) const;

  private:
    Shape shape_;
    DType dtype_ = DType::kF32;
    std::vector<float> f32_;
    std::vector<std::int8_t> i8_;
    QuantParams qp_;
};

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_TENSOR_HH
