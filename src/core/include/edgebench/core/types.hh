/**
 * @file
 * Element types and tensor shapes.
 */

#ifndef EDGEBENCH_CORE_TYPES_HH
#define EDGEBENCH_CORE_TYPES_HH

#include <cstdint>
#include <string>
#include <vector>

namespace edgebench
{
namespace core
{

/**
 * Numeric element types supported across the stack. Mirrors the
 * precisions discussed in the paper: FP32 (default), FP16
 * (half-precision inference, Table II), INT8 (quantization, TFLite /
 * TensorRT / EdgeTPU), and INT32 (quantized accumulators). kBin1 covers
 * FINN-style binarized weights on the PYNQ platform.
 */
enum class DType
{
    kF32,
    kF16,
    kI8,
    kI32,
    kBin1,
};

/** @return size of one element of @p t in bytes (kBin1 rounds to 1/8). */
double dtypeBytes(DType t);

/** @return human-readable name, e.g. "fp32". */
std::string dtypeName(DType t);

/** Tensor shape: a list of extents. Layout is NCHW / NCDHW. */
using Shape = std::vector<std::int64_t>;

/** @return product of all extents of @p s (1 for a scalar shape). */
std::int64_t numElements(const Shape& s);

/** @return shape formatted as "[1, 3, 224, 224]". */
std::string shapeToString(const Shape& s);

/** @return true when the two shapes are elementwise identical. */
bool sameShape(const Shape& a, const Shape& b);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_TYPES_HH
