/**
 * @file
 * Common error types and check macros for edgebench-sim.
 *
 * Error philosophy (after the gem5 fatal/panic split):
 *  - InvalidArgumentError: the caller supplied a bad configuration
 *    (user fault, analogous to fatal()).
 *  - InternalError: an invariant of the library itself was violated
 *    (library bug, analogous to panic()).
 *  - MemoryCapacityError: a model does not fit on a device; this is an
 *    *expected* outcome in several experiments (Table V of the paper)
 *    and therefore has its own type so callers can catch it.
 */

#ifndef EDGEBENCH_CORE_COMMON_HH
#define EDGEBENCH_CORE_COMMON_HH

#include <cstdint>
#include <sstream>
#include <stdexcept>
#include <string>

namespace edgebench
{

/** Base class of all edgebench-sim exceptions. */
class Error : public std::runtime_error
{
  public:
    explicit Error(const std::string& msg) : std::runtime_error(msg) {}
};

/** The caller supplied an invalid argument or configuration. */
class InvalidArgumentError : public Error
{
  public:
    explicit InvalidArgumentError(const std::string& msg) : Error(msg) {}
};

/** An internal invariant was violated: a bug in edgebench-sim itself. */
class InternalError : public Error
{
  public:
    explicit InternalError(const std::string& msg) : Error(msg) {}
};

/**
 * A workload exceeded a device memory capacity. Mirrors the
 * "Memory Error" outcomes in Figs. 3-4 and the large-memory marks in
 * Table V of the paper.
 */
class MemoryCapacityError : public Error
{
  public:
    explicit MemoryCapacityError(const std::string& msg) : Error(msg) {}
};

/**
 * A model is not deployable on a framework/device combination for a
 * non-memory reason (unsupported ops, conversion barriers). Mirrors the
 * "code incompatibility" and "TFLite conversion barrier" marks in
 * Table V.
 */
class CompatibilityError : public Error
{
  public:
    explicit CompatibilityError(const std::string& msg) : Error(msg) {}
};

namespace detail
{

[[noreturn]] void throwCheckFailure(const char* cond, const char* file,
                                    int line, const std::string& msg);

} // namespace detail

} // namespace edgebench

/**
 * Argument/configuration validation macro; throws InvalidArgumentError.
 * Usage: EB_CHECK(stride > 0, "stride must be positive, got " << stride);
 */
#define EB_CHECK(cond, msgexpr)                                           \
    do {                                                                  \
        if (!(cond)) {                                                    \
            std::ostringstream eb_check_oss_;                             \
            eb_check_oss_ << msgexpr;                                     \
            ::edgebench::detail::throwCheckFailure(                       \
                #cond, __FILE__, __LINE__, eb_check_oss_.str());          \
        }                                                                 \
    } while (0)

#endif // EDGEBENCH_CORE_COMMON_HH
