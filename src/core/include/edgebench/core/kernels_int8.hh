/**
 * @file
 * Quantized (INT8) compute kernels.
 *
 * These follow the TFLite reference semantics: int8 inputs/weights with
 * affine QuantParams, int32 accumulation, fp32 bias added in the real
 * domain, and requantization of the result to the caller-supplied
 * output parameters. The EdgeTPU and TFLite execution paths in the
 * framework layer run these kernels for real.
 */

#ifndef EDGEBENCH_CORE_KERNELS_INT8_HH
#define EDGEBENCH_CORE_KERNELS_INT8_HH

#include "edgebench/core/geometry.hh"
#include "edgebench/core/tensor.hh"

namespace edgebench
{
namespace core
{

/**
 * Quantized 2D convolution. @p input and @p weights must be kI8
 * tensors; @p bias is fp32 (or empty). Result is a kI8 tensor with
 * parameters @p out_qp. Supports groups (depthwise included).
 */
Tensor conv2dInt8(const Tensor& input, const Tensor& weights,
                  const Tensor& bias, const Conv2dGeom& g,
                  const QuantParams& out_qp);

/** Quantized fully-connected layer; same conventions as conv2dInt8. */
Tensor denseInt8(const Tensor& input, const Tensor& weights,
                 const Tensor& bias, const DenseGeom& g,
                 const QuantParams& out_qp);

/** Quantized ReLU family: clamps in the quantized domain. */
Tensor reluInt8(const Tensor& input);
Tensor relu6Int8(const Tensor& input);

/** Quantized residual add: requantizes both sides to @p out_qp. */
Tensor addInt8(const Tensor& a, const Tensor& b,
               const QuantParams& out_qp);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_KERNELS_INT8_HH
