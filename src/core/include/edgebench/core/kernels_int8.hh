/**
 * @file
 * Quantized (INT8) compute kernels.
 *
 * These follow the TFLite reference semantics: int8 inputs/weights with
 * affine QuantParams, int32 accumulation, fp32 bias quantized to the
 * accumulator domain, and fixed-point requantization of the result to
 * the caller-supplied output parameters (docs/QUANTIZATION.md is the
 * full contract). The EdgeTPU and TFLite execution paths in the
 * framework layer run these kernels for real.
 *
 * The production conv/dense paths route through the integer
 * pack-and-tile engine (gemm_packed_int8.hh). `conv2dInt8Naive` and
 * `denseInt8Naive` are the direct per-element oracles — same integer
 * arithmetic, no packing — kept as the bit-exact reference the tests
 * hold the engine to.
 */

#ifndef EDGEBENCH_CORE_KERNELS_INT8_HH
#define EDGEBENCH_CORE_KERNELS_INT8_HH

#include <cstdint>
#include <span>
#include <vector>

#include "edgebench/core/gemm_packed_int8.hh"
#include "edgebench/core/geometry.hh"
#include "edgebench/core/tensor.hh"

namespace edgebench
{
namespace core
{

/**
 * Quantized 2D convolution (production path: im2col + packed integer
 * GEMM; depthwise layers take a direct per-plane kernel). @p input and
 * @p weights must be kI8 tensors; @p bias is fp32 — a default
 * (empty-shape) tensor means "no bias", anything else must be exactly
 * [outC] (malformed bias is a hard error). Result is a kI8 tensor
 * with parameters @p out_qp. Supports groups, stride, dilation.
 * @p act is fused into the requantization clamp (int8ActBounds):
 * bit-identical to running the standalone reluInt8/relu6Int8 clamp
 * afterwards, minus a full extra pass over the output.
 */
Tensor conv2dInt8(const Tensor& input, const Tensor& weights,
                  const Tensor& bias, const Conv2dGeom& g,
                  const QuantParams& out_qp,
                  EpilogueAct act = EpilogueAct::kNone);

/**
 * Direct per-element quantized convolution oracle. Bit-identical to
 * conv2dInt8 (same zero-point algebra, bias quantization and
 * fixed-point requantization), kept naive on purpose as the reference
 * the packed engine is tested against.
 */
Tensor conv2dInt8Naive(const Tensor& input, const Tensor& weights,
                       const Tensor& bias, const Conv2dGeom& g,
                       const QuantParams& out_qp);

/**
 * Pre-packed int8 conv weights: one packed-A panel set (values + row
 * sums) per group. Empty for depthwise layers, whose direct kernel
 * reads the raw weight tensor. Activation-agnostic: zero-point
 * corrections fold at call time, so one packing serves any input
 * quantization.
 */
struct PackedConvWeightsI8
{
    std::vector<PackedAI8> groups;
};

/** One-time weight packing for conv2dInt8Packed (interpreter cache). */
PackedConvWeightsI8 packConv2dWeightsInt8(const Tensor& weights,
                                          const Conv2dGeom& g);

/**
 * conv2dInt8 consuming pre-packed weights: identical results with zero
 * steady-state packing cost. @p weights is the raw int8 weight tensor
 * (quant params, shape checks; depthwise direct path).
 */
Tensor conv2dInt8Packed(const Tensor& input, const Tensor& weights,
                        const PackedConvWeightsI8& packed,
                        const Tensor& bias, const Conv2dGeom& g,
                        const QuantParams& out_qp,
                        EpilogueAct act = EpilogueAct::kNone);

/**
 * Quantized fully-connected layer (production path: packed integer
 * GEMV per batch row); same conventions as conv2dInt8.
 */
Tensor denseInt8(const Tensor& input, const Tensor& weights,
                 const Tensor& bias, const DenseGeom& g,
                 const QuantParams& out_qp);

/** Direct per-element quantized dense oracle (see conv2dInt8Naive). */
Tensor denseInt8Naive(const Tensor& input, const Tensor& weights,
                      const Tensor& bias, const DenseGeom& g,
                      const QuantParams& out_qp);

/** One-time weight packing for denseInt8Packed (interpreter cache). */
PackedAI8 packDenseWeightsInt8(const Tensor& weights,
                               const DenseGeom& g);

/**
 * denseInt8 consuming pre-packed weights; bit-identical to denseInt8.
 * @p weights is the raw int8 weight tensor (quant params, checks).
 */
Tensor denseInt8Packed(const Tensor& input, const Tensor& weights,
                       const PackedAI8& packed, const Tensor& bias,
                       const DenseGeom& g, const QuantParams& out_qp);

/**
 * int8 im2col for one convolution group: out-of-bounds taps read as
 * @p pad_value (the input zero point, i.e. real zero — the int8
 * sibling of the fp32 kernel's zero padding). Column matrix layout
 * matches im2col: one contiguous outH*outW slice per patch row.
 */
void im2colInt8(std::span<const std::int8_t> image, const Conv2dGeom& g,
                std::int64_t group, std::int8_t pad_value,
                std::span<std::int8_t> columns);

/** Quantized ReLU family: clamps in the quantized domain. */
Tensor reluInt8(const Tensor& input);
Tensor relu6Int8(const Tensor& input);

/**
 * In-place quantized ReLU family — same clamp bounds and parallel
 * split as the allocating variants, mutating @p t (QuantParams are
 * unchanged, so results stay bit-identical).
 */
void reluInt8InPlace(Tensor& t);
void relu6Int8InPlace(Tensor& t);

/**
 * Quantized residual add: requantizes both sides to @p out_qp with a
 * shared-shift dual fixed-point multiplier — pure integer per
 * element, no per-element double math.
 */
Tensor addInt8(const Tensor& a, const Tensor& b,
               const QuantParams& out_qp);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_KERNELS_INT8_HH
