/**
 * @file
 * Pack-and-tile INT8 GEMM engine.
 *
 * Integer sibling of the fp32 engine (gemm_packed.hh): it computes an
 * int8 output matrix from affine-quantized int8 operands with int32
 * accumulation and a fixed-point requantization epilogue — no
 * floating point anywhere on the per-element hot path. The
 * quantization contract (zero-point algebra, bias folding, the
 * multiplier/shift math and the bit-exactness guarantee against the
 * naive oracle kernels) is documented in docs/QUANTIZATION.md.
 *
 * Layout mirrors the fp32 engine:
 *
 * - A (weights) is repacked into kGemmInt8MR-row panels interleaved
 *   k-major, zero-padded on the ragged row tail. At pack time the
 *   engine also records each row's raw value sum `sum_p A[i,p]`, so
 *   the activation-zero-point correction `-b_zp * sum_p A[i,p]` is a
 *   per-row constant folded into the bias instead of a subtraction
 *   performed on every multiply-accumulate.
 * - B (activations / im2col columns) is repacked into kGemmInt8NR
 *   column panels, k-major, with per-column raw sums recorded for the
 *   symmetric weight-zero-point correction `-a_zp * sum_p B[p,j]`.
 *
 * The microkernel accumulates an MR x NR tile in local int32
 * accumulators over the full k extent; the epilogue adds the folded
 * per-row/per-column corrections and requantizes each element with
 * one int64 multiply plus a rounding right shift
 * (core::requantizeFixedPoint). Integer accumulation is exact, and
 * M/N tiling never splits the k loop, so results are bit-identical
 * for any thread count — and, unlike the fp32 engine, bit-identical
 * to the naive per-element oracle as well, because integer addition
 * is associative.
 *
 * There is no pruned-chunk skip here: a pruned int8 weight is the
 * weight zero point, which is nonzero in general, so zero-value
 * chunks carry no exploitable structure (pruning remains an fp32
 * story).
 */

#ifndef EDGEBENCH_CORE_GEMM_PACKED_INT8_HH
#define EDGEBENCH_CORE_GEMM_PACKED_INT8_HH

#include <cmath>
#include <cstdint>
#include <limits>
#include <span>

#include "edgebench/core/align.hh"
#include "edgebench/core/gemm_packed.hh"
#include "edgebench/core/quant.hh"

namespace edgebench
{
namespace core
{

/** Microkernel register-tile rows (packed-A panel height). */
inline constexpr std::int64_t kGemmInt8MR = 6;

/** Microkernel register-tile columns (packed-B panel width). */
inline constexpr std::int64_t kGemmInt8NR = 8;

/**
 * Maximum reduction depth. Guarantees (a) the raw int32 tile
 * accumulator cannot overflow (k * 2^14 < 2^31) and (b) the corrected
 * int64 accumulator stays below 2^33, the requantizeFixedPoint
 * overflow bound. 2^16 covers every layer in the model zoo (largest
 * is VGG's 25088-wide fc1).
 */
inline constexpr std::int64_t kGemmInt8MaxK = 65536;

/** ceil(dim / tile), shared by the packed layouts. */
inline std::int64_t
gemmInt8Tiles(std::int64_t dim, std::int64_t tile)
{
    return (dim + tile - 1) / tile;
}

/**
 * Non-owning view of a packed int8 A operand: mPanels() value panels
 * of k * MR bytes (k-major interleaved, ragged rows zero-padded) plus
 * MR raw row sums per panel.
 */
struct PackedAI8View
{
    std::int64_t m = 0;
    std::int64_t k = 0;
    const std::int8_t* values = nullptr;
    const std::int32_t* rowSums = nullptr;

    std::int64_t mPanels() const
    {
        return gemmInt8Tiles(m, kGemmInt8MR);
    }
    const std::int8_t* panelValues(std::int64_t ip) const
    {
        return values + ip * k * kGemmInt8MR;
    }
    const std::int32_t* panelRowSums(std::int64_t ip) const
    {
        return rowSums + ip * kGemmInt8MR;
    }
};

/** Bytes required for the packed values of an m x k int8 A operand. */
inline std::int64_t
packedAI8ValueCount(std::int64_t m, std::int64_t k)
{
    return gemmInt8Tiles(m, kGemmInt8MR) * k * kGemmInt8MR;
}

/** int32 row-sum entries for an m-row packed A operand. */
inline std::int64_t
packedAI8SumCount(std::int64_t m)
{
    return gemmInt8Tiles(m, kGemmInt8MR) * kGemmInt8MR;
}

/** Bytes required for the packed values of a k x n int8 B operand. */
inline std::int64_t
packedBI8ValueCount(std::int64_t n, std::int64_t k)
{
    return gemmInt8Tiles(n, kGemmInt8NR) * k * kGemmInt8NR;
}

/** int32 column-sum entries for an n-column packed B operand. */
inline std::int64_t
packedBI8SumCount(std::int64_t n)
{
    return gemmInt8Tiles(n, kGemmInt8NR) * kGemmInt8NR;
}

/**
 * Pack row-major int8 A[m,k] into @p values
 * (>= packedAI8ValueCount) and @p row_sums (>= packedAI8SumCount),
 * computing raw per-row sums. Parallelized over panels
 * (deterministic: disjoint writes). Returns a view over the storage.
 */
PackedAI8View packAInt8Into(std::int64_t m, std::int64_t k,
                            std::span<const std::int8_t> a,
                            std::span<std::int8_t> values,
                            std::span<std::int32_t> row_sums);

/**
 * Heap-owning packed int8 A — the form the interpreter caches per
 * quantized node. The cache is valid regardless of the activation
 * quantization of any particular run: zero-point corrections are
 * folded at call time from the recorded row sums, not baked into the
 * panels.
 */
struct PackedAI8
{
    std::int64_t m = 0;
    std::int64_t k = 0;
    AlignedVec<std::int8_t> values;
    AlignedVec<std::int32_t> rowSums;

    PackedAI8View view() const
    {
        return {m, k, values.data(), rowSums.data()};
    }
    double byteSize() const
    {
        return static_cast<double>(values.size()) +
            static_cast<double>(rowSums.size() *
                                sizeof(std::int32_t));
    }
};

/** Pack row-major int8 A[m,k] into a fresh heap-owning PackedAI8. */
PackedAI8 packAInt8(std::int64_t m, std::int64_t k,
                    std::span<const std::int8_t> a);

/**
 * Pack row-major int8 B[k,n] into @p storage
 * (>= packedBI8ValueCount) and record raw per-column sums in
 * @p col_sums (>= packedBI8SumCount; ragged-tail entries are 0).
 * Parallelized over column panels (deterministic: disjoint writes).
 */
void packBInt8Into(std::int64_t n, std::int64_t k,
                   std::span<const std::int8_t> b,
                   std::span<std::int8_t> storage,
                   std::span<std::int32_t> col_sums);

/**
 * Quantization parameters of one integer GEMM:
 * real(C) = A_real * B_real + bias, with A = a.scale * (q - a.zp)
 * etc., requantized to `out`. The fixed-point multiplier
 * (a.scale * b.scale / out.scale) and the quantized bias are derived
 * inside the engine so every caller — packed, GEMV, naive oracle,
 * depthwise — shares one definition.
 */
struct Int8GemmQuant
{
    QuantParams a;   ///< weights (the packed A operand)
    QuantParams b;   ///< activations (the packed B operand)
    QuantParams out; ///< requantization target
};

/**
 * Quantize one real-domain bias value to the accumulator domain
 * (step a_scale * b_scale). One definition shared by every integer
 * kernel so packed and naive results stay bit-identical.
 */
inline std::int64_t
quantizeBiasValue(double bias, double acc_scale)
{
    return std::llround(bias / acc_scale);
}

/**
 * Quantized-domain saturation bounds for a fused activation: a relu /
 * relu6 on an int8 tensor is a pure clamp (quantizedClampBounds), so
 * the engines fuse it into the requantization clamp — bit-identical
 * to requantizing to [-128, 127] and clamping in a separate pass.
 */
inline void
int8ActBounds(EpilogueAct act, const QuantParams& out_qp,
              std::int32_t& qlo, std::int32_t& qhi)
{
    switch (act) {
        case EpilogueAct::kRelu:
            quantizedClampBounds(
                out_qp, 0.0,
                std::numeric_limits<double>::infinity(), qlo, qhi);
            return;
        case EpilogueAct::kRelu6:
            quantizedClampBounds(out_qp, 0.0, 6.0, qlo, qhi);
            return;
        case EpilogueAct::kNone:
            break;
    }
    qlo = -128;
    qhi = 127;
}

/**
 * C[m,n] (int8, row-major, overwritten) = requantized A * B with both
 * operands packed. @p bias is real-domain, empty or one value per
 * row of A; @p act is fused into the requantization clamp. Parallelized
 * over C tiles; bit-identical for any thread count and to the naive
 * oracle.
 */
void gemmPackedInt8(const PackedAI8View& a, std::int64_t n,
                    std::span<const std::int8_t> packed_b,
                    std::span<const std::int32_t> b_col_sums,
                    std::span<const float> bias,
                    const Int8GemmQuant& q, std::span<std::int8_t> c,
                    EpilogueAct act = EpilogueAct::kNone);

/**
 * y[m] (int8, overwritten) = requantized A * x for one unpacked
 * activation vector x[k] — the dense/GEMV companion. x streams
 * directly (no packing); panels stream k-major. Parallelized over row
 * panels; bit-identical to gemmPackedInt8 with n == 1.
 */
void gemvPackedInt8(const PackedAI8View& a,
                    std::span<const std::int8_t> x,
                    std::span<const float> bias,
                    const Int8GemmQuant& q,
                    std::span<std::int8_t> y);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_GEMM_PACKED_INT8_HH
