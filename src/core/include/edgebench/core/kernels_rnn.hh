/**
 * @file
 * Recurrent-layer reference kernels (LSTM and GRU), implementing the
 * RNN support the paper lists as future work.
 *
 * Conventions: input is [N, T, I]; weights are packed gate-major —
 * LSTM gate order i, f, g, o; GRU gate order z (update), r (reset),
 * n (candidate). W_ih is [gates*H, I], W_hh is [gates*H, H], bias is
 * [gates*H]. Initial hidden/cell states are zero. The output is the
 * full hidden-state sequence [N, T, H].
 */

#ifndef EDGEBENCH_CORE_KERNELS_RNN_HH
#define EDGEBENCH_CORE_KERNELS_RNN_HH

#include "edgebench/core/geometry.hh"
#include "edgebench/core/tensor.hh"

namespace edgebench
{
namespace core
{

/** LSTM forward over a full sequence (gates == 4). */
Tensor lstmForward(const Tensor& input, const Tensor& w_ih,
                   const Tensor& w_hh, const Tensor& bias,
                   const RnnGeom& g);

/** GRU forward over a full sequence (gates == 3). */
Tensor gruForward(const Tensor& input, const Tensor& w_ih,
                  const Tensor& w_hh, const Tensor& bias,
                  const RnnGeom& g);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_KERNELS_RNN_HH
