/**
 * @file
 * Recurrent-layer reference kernels (LSTM and GRU), implementing the
 * RNN support the paper lists as future work.
 *
 * Conventions: input is [N, T, I]; weights are packed gate-major —
 * LSTM gate order i, f, g, o; GRU gate order z (update), r (reset),
 * n (candidate). W_ih is [gates*H, I], W_hh is [gates*H, H], bias is
 * [gates*H]. Initial hidden/cell states are zero. The output is the
 * full hidden-state sequence [N, T, H].
 */

#ifndef EDGEBENCH_CORE_KERNELS_RNN_HH
#define EDGEBENCH_CORE_KERNELS_RNN_HH

#include "edgebench/core/gemm_packed.hh"
#include "edgebench/core/geometry.hh"
#include "edgebench/core/tensor.hh"

namespace edgebench
{
namespace core
{

/** Pre-packed RNN weight pair for the packed forward overloads. */
struct PackedRnnWeights
{
    PackedA ih; ///< W_ih packed [gates*H, I]
    PackedA hh; ///< W_hh packed [gates*H, H]
};

/** One-time weight packing for the packed overloads (interpreter). */
PackedRnnWeights packRnnWeights(const Tensor& w_ih, const Tensor& w_hh,
                                const RnnGeom& g);

/** LSTM forward over a full sequence (gates == 4). */
Tensor lstmForward(const Tensor& input, const Tensor& w_ih,
                   const Tensor& w_hh, const Tensor& bias,
                   const RnnGeom& g);

/** LSTM forward consuming pre-packed weights; identical results. */
Tensor lstmForward(const Tensor& input, const PackedRnnWeights& packed,
                   const Tensor& bias, const RnnGeom& g);

/** GRU forward over a full sequence (gates == 3). */
Tensor gruForward(const Tensor& input, const Tensor& w_ih,
                  const Tensor& w_hh, const Tensor& bias,
                  const RnnGeom& g);

/** GRU forward consuming pre-packed weights; identical results. */
Tensor gruForward(const Tensor& input, const PackedRnnWeights& packed,
                  const Tensor& bias, const RnnGeom& g);

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_KERNELS_RNN_HH
