/**
 * @file
 * Simulated-time clock.
 *
 * edgebench-sim's determinism rules forbid reading wall clocks (see
 * docs/ARCHITECTURE.md): every duration in the system is *modeled*,
 * not measured. VirtualClock is the time base those modeled durations
 * accumulate on — a manually-advanced monotonic counter that the
 * tracing layer (src/obs) uses to place spans on a timeline. Layers
 * that compute a cost advance the clock by it; nothing ever observes
 * host time, so traces are bit-reproducible across runs and machines.
 */

#ifndef EDGEBENCH_CORE_CLOCK_HH
#define EDGEBENCH_CORE_CLOCK_HH

namespace edgebench
{
namespace core
{

/** A manually-advanced monotonic clock counting simulated time. */
class VirtualClock
{
  public:
    VirtualClock() = default;

    /** Current simulated time, microseconds since reset(). */
    double nowUs() const { return now_us_; }
    /** Current simulated time, milliseconds since reset(). */
    double nowMs() const { return now_us_ / 1e3; }

    /** Advance by @p us microseconds; throws if @p us is negative. */
    void advanceUs(double us);
    /** Advance by @p ms milliseconds; throws if @p ms is negative. */
    void advanceMs(double ms);

    /** Rewind to t=0. */
    void reset() { now_us_ = 0.0; }

  private:
    double now_us_ = 0.0;
};

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_CLOCK_HH
