/**
 * @file
 * Thread-local scratch arenas for the compute kernels.
 *
 * Hot kernels (im2col convolution, RNN gate GEMVs, INT8 staging) used
 * to allocate a fresh std::vector per call; under a model sweep that
 * is one malloc/free pair per node per inference. A scratch arena
 * hands out grow-only buffers that live for the thread's lifetime, so
 * steady-state kernel execution performs no heap allocation.
 *
 * Slots are compile-time identities (one per independent concurrent
 * use). Borrowing the same slot twice on one thread reuses — and
 * clobbers — the same storage, so a kernel that calls another kernel
 * must not share its slot with the callee. Buffers are thread-local:
 * parallelFor workers that index into a caller's scratch span (the
 * usual pattern: the caller borrows, workers fill disjoint ranges)
 * share the caller's buffer, while workers that borrow for themselves
 * get their own.
 *
 * Scratch reuse never changes arithmetic: every element of a borrowed
 * span is written before it is read (the spans are not zeroed), so the
 * repo-wide bit-determinism invariant (parallel.hh) is unaffected.
 */

#ifndef EDGEBENCH_CORE_SCRATCH_HH
#define EDGEBENCH_CORE_SCRATCH_HH

#include <cstddef>
#include <cstdint>
#include <span>

namespace edgebench
{
namespace core
{

/** Scratch slot identities; one per independent concurrent use. */
enum class ScratchSlot
{
    kIm2Col,          ///< conv2d column matrix
    kRnnGates,        ///< LSTM/GRU input-side gate pre-activations
    kRnnGatesHidden,  ///< GRU hidden-side gate pre-activations
    kDenseAcc,        ///< dense per-row double accumulators
    kGemmPackA,       ///< ad-hoc packed-A panels (gemm entry point)
    kGemmPackB,       ///< packed-B panels (gemmPackB / conv2d)
    kRnnPackIh,       ///< ad-hoc packed input-hidden RNN weights
    kRnnPackHh,       ///< ad-hoc packed hidden-hidden RNN weights
    kIm2ColI8,        ///< int8 conv column matrix
    kGemmPackAI8,     ///< ad-hoc packed int8 A panels (+ row sums)
    kGemmPackBI8,     ///< packed int8 B panels (+ column sums)
    kInt8RowCorr,     ///< folded per-row int8 GEMM corrections
    kCount
};

/**
 * Borrow an uninitialized float span of @p n elements from the calling
 * thread's arena. Contents are unspecified; valid until the same slot
 * is borrowed again on this thread. Arenas are per element type: the
 * same slot borrowed at two different types (e.g. scratchI8 and
 * scratchI32 on kGemmPackAI8) yields two independent buffers.
 */
std::span<float> scratchF32(ScratchSlot slot, std::size_t n);

/** Same, for double-precision accumulator scratch. */
std::span<double> scratchF64(ScratchSlot slot, std::size_t n);

/** Same, for quantized int8 operand scratch. */
std::span<std::int8_t> scratchI8(ScratchSlot slot, std::size_t n);

/** Same, for int32 sum/correction scratch. */
std::span<std::int32_t> scratchI32(ScratchSlot slot, std::size_t n);

/** Same, for int64 accumulator/correction scratch. */
std::span<std::int64_t> scratchI64(ScratchSlot slot, std::size_t n);

/** Total bytes currently reserved by this thread's arenas (tests). */
std::size_t scratchBytesReserved();

/** Release this thread's arenas (tests; never required in production). */
void scratchRelease();

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_SCRATCH_HH
