/**
 * @file
 * Kernel geometry descriptors shared by the compute kernels, the graph
 * IR shape inference, and the analytical cost model.
 *
 * Keeping geometry (and its MAC/byte arithmetic) in one place
 * guarantees that the latency the device model prices and the numbers
 * the interpreter actually computes refer to the same work.
 */

#ifndef EDGEBENCH_CORE_GEOMETRY_HH
#define EDGEBENCH_CORE_GEOMETRY_HH

#include <cstdint>

namespace edgebench
{
namespace core
{

/** 2D convolution geometry (NCHW input, [outC, inC/groups, kH, kW]). */
struct Conv2dGeom
{
    std::int64_t n = 1;
    std::int64_t inC = 0;
    std::int64_t inH = 0;
    std::int64_t inW = 0;
    std::int64_t outC = 0;
    std::int64_t kH = 1;
    std::int64_t kW = 1;
    std::int64_t strideH = 1;
    std::int64_t strideW = 1;
    std::int64_t padH = 0;
    std::int64_t padW = 0;
    std::int64_t dilH = 1;
    std::int64_t dilW = 1;
    std::int64_t groups = 1;

    /** Throws InvalidArgumentError when inconsistent. */
    void validate() const;

    std::int64_t outH() const;
    std::int64_t outW() const;

    /** Multiply-accumulates per forward pass (= paper FLOP count). */
    std::int64_t macs() const;

    /** Weight element count (excluding bias). */
    std::int64_t weightCount() const;

    std::int64_t inputCount() const { return n * inC * inH * inW; }
    std::int64_t outputCount() const { return n * outC * outH() * outW(); }
};

/** 3D convolution geometry (NCDHW), used by the C3D model. */
struct Conv3dGeom
{
    std::int64_t n = 1;
    std::int64_t inC = 0;
    std::int64_t inD = 0;
    std::int64_t inH = 0;
    std::int64_t inW = 0;
    std::int64_t outC = 0;
    std::int64_t kD = 1;
    std::int64_t kH = 1;
    std::int64_t kW = 1;
    std::int64_t strideD = 1;
    std::int64_t strideH = 1;
    std::int64_t strideW = 1;
    std::int64_t padD = 0;
    std::int64_t padH = 0;
    std::int64_t padW = 0;

    void validate() const;

    std::int64_t outD() const;
    std::int64_t outH() const;
    std::int64_t outW() const;
    std::int64_t macs() const;
    std::int64_t weightCount() const;
    std::int64_t inputCount() const { return n * inC * inD * inH * inW; }

    std::int64_t
    outputCount() const
    {
        return n * outC * outD() * outH() * outW();
    }
};

/** Pooling window geometry (2D). */
struct Pool2dGeom
{
    std::int64_t n = 1;
    std::int64_t c = 0;
    std::int64_t inH = 0;
    std::int64_t inW = 0;
    std::int64_t kH = 1;
    std::int64_t kW = 1;
    std::int64_t strideH = 1;
    std::int64_t strideW = 1;
    std::int64_t padH = 0;
    std::int64_t padW = 0;
    /** Ceil-mode output rounding (DarkNet/Caffe style). */
    bool ceilMode = false;

    void validate() const;
    std::int64_t outH() const;
    std::int64_t outW() const;
    std::int64_t outputCount() const { return n * c * outH() * outW(); }
};

/** 3D pooling window geometry, used by C3D. */
struct Pool3dGeom
{
    std::int64_t n = 1;
    std::int64_t c = 0;
    std::int64_t inD = 0;
    std::int64_t inH = 0;
    std::int64_t inW = 0;
    std::int64_t kD = 1;
    std::int64_t kH = 1;
    std::int64_t kW = 1;
    std::int64_t strideD = 1;
    std::int64_t strideH = 1;
    std::int64_t strideW = 1;
    std::int64_t padD = 0;
    std::int64_t padH = 0;
    std::int64_t padW = 0;

    void validate() const;
    std::int64_t outD() const;
    std::int64_t outH() const;
    std::int64_t outW() const;

    std::int64_t
    outputCount() const
    {
        return n * c * outD() * outH() * outW();
    }
};

/**
 * Recurrent layer geometry (LSTM/GRU). Covers the RNN/LSTM model
 * support the paper lists as future work.
 */
struct RnnGeom
{
    std::int64_t batch = 1;
    std::int64_t seqLen = 0;
    std::int64_t inputSize = 0;
    std::int64_t hiddenSize = 0;
    /** Gate count: 4 for LSTM, 3 for GRU. */
    std::int64_t gates = 4;

    void validate() const;

    /** MACs for a full sequence forward pass. */
    std::int64_t macs() const
    {
        return batch * seqLen * gates * hiddenSize *
            (inputSize + hiddenSize);
    }

    /** Weight elements: W_ih + W_hh (biases excluded). */
    std::int64_t weightCount() const
    {
        return gates * hiddenSize * (inputSize + hiddenSize);
    }
};

/** Fully-connected layer geometry. */
struct DenseGeom
{
    std::int64_t batch = 1;
    std::int64_t inFeatures = 0;
    std::int64_t outFeatures = 0;

    void validate() const;
    std::int64_t macs() const { return batch * inFeatures * outFeatures; }
    std::int64_t weightCount() const { return inFeatures * outFeatures; }
};

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_GEOMETRY_HH
