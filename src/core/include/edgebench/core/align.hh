/**
 * @file
 * 64-byte aligned allocation for SIMD-touched buffers.
 *
 * The pack-and-tile engines stream packed panels with vector loads;
 * the scratch arenas (scratch.hh) and the interpreter's cached packed
 * weights (PackedA / PackedAI8) hold that data. std::vector's default
 * allocator only guarantees alignof(std::max_align_t) (16 on x86-64),
 * so panel rows could straddle cache lines and split vector loads.
 * AlignedVec pins every such buffer to a 64-byte boundary — one cache
 * line, and wide enough for any vector type simd.hh can lower to.
 *
 * Alignment never changes arithmetic or layout; it only constrains
 * where buffers start, so the repo-wide bit-determinism invariant is
 * unaffected.
 */

#ifndef EDGEBENCH_CORE_ALIGN_HH
#define EDGEBENCH_CORE_ALIGN_HH

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace edgebench
{
namespace core
{

/** Alignment (bytes) for all SIMD-touched buffers: one cache line. */
inline constexpr std::size_t kSimdAlign = 64;

/**
 * Minimal std::allocator replacement that over-aligns every block to
 * @c Align bytes via the C++17 aligned operator new.
 */
template <typename T, std::size_t Align = kSimdAlign>
struct AlignedAllocator
{
    using value_type = T;

    static_assert(Align >= alignof(T), "cannot under-align");
    static_assert((Align & (Align - 1)) == 0, "alignment must be pow2");

    AlignedAllocator() noexcept = default;

    template <typename U>
    AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept
    {
    }

    template <typename U>
    struct rebind
    {
        using other = AlignedAllocator<U, Align>;
    };

    T*
    allocate(std::size_t n)
    {
        return static_cast<T*>(::operator new(
            n * sizeof(T), std::align_val_t{Align}));
    }

    void
    deallocate(T* p, std::size_t) noexcept
    {
        ::operator delete(p, std::align_val_t{Align});
    }

    friend bool
    operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept
    {
        return true;
    }
};

/** std::vector whose storage always starts on a 64-byte boundary. */
template <typename T>
using AlignedVec = std::vector<T, AlignedAllocator<T>>;

/** True when @p p sits on a @c kSimdAlign boundary (tests). */
inline bool
isSimdAligned(const void* p)
{
    return reinterpret_cast<std::uintptr_t>(p) % kSimdAlign == 0;
}

} // namespace core
} // namespace edgebench

#endif // EDGEBENCH_CORE_ALIGN_HH
