#include "edgebench/core/rng.hh"

#include <cmath>

#include "edgebench/core/common.hh"

namespace edgebench
{
namespace core
{

namespace
{

/** SplitMix64 step, used to expand a single seed into rng state. */
std::uint64_t
splitMix64(std::uint64_t& x)
{
    x += 0x9E3779B97F4A7C15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto& s : s_)
        s = splitMix64(sm);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 high-quality bits -> double in [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    EB_CHECK(lo <= hi, "uniform: lo " << lo << " > hi " << hi);
    return lo + (hi - lo) * uniform();
}

std::int64_t
Rng::uniformInt(std::int64_t lo, std::int64_t hi)
{
    EB_CHECK(lo <= hi, "uniformInt: lo " << lo << " > hi " << hi);
    // All arithmetic in uint64: `hi - lo` and `lo + offset` would
    // overflow int64 for extreme bounds.
    const auto ulo = static_cast<std::uint64_t>(lo);
    const auto span =
        static_cast<std::uint64_t>(hi) - ulo + 1;
    auto place = [ulo](std::uint64_t offset) {
        return static_cast<std::int64_t>(ulo + offset);
    };
    if (span == 0) // full 64-bit range: every draw is valid
        return static_cast<std::int64_t>(next());
    if ((span & (span - 1)) == 0) // power of two: mask, no bias
        return place(next() & (span - 1));
    // Lemire's multiply-shift bounded draw with rejection: a plain
    // `next() % span` over-represents the low residues whenever span
    // does not divide 2^64.
    auto widen = [span](std::uint64_t x) {
        return static_cast<unsigned __int128>(x) * span;
    };
    unsigned __int128 m = widen(next());
    if (static_cast<std::uint64_t>(m) < span) {
        const std::uint64_t thresh = (0 - span) % span;
        while (static_cast<std::uint64_t>(m) < thresh)
            m = widen(next());
    }
    return place(static_cast<std::uint64_t>(m >> 64));
}

double
Rng::normal()
{
    if (hasSpareNormal_) {
        hasSpareNormal_ = false;
        return spareNormal_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 1e-300);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * M_PI * u2;
    spareNormal_ = r * std::sin(theta);
    hasSpareNormal_ = true;
    return r * std::cos(theta);
}

double
Rng::normal(double mean, double stddev)
{
    EB_CHECK(stddev >= 0.0, "normal: negative stddev " << stddev);
    return mean + stddev * normal();
}

Rng
Rng::fork()
{
    return Rng(next());
}

} // namespace core
} // namespace edgebench
