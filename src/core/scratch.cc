#include "edgebench/core/scratch.hh"

#include <array>

#include "edgebench/core/align.hh"

namespace edgebench
{
namespace core
{

namespace
{

constexpr std::size_t kSlots =
    static_cast<std::size_t>(ScratchSlot::kCount);

// AlignedVec pins every scratch buffer to a 64-byte boundary so the
// SIMD kernels stream packed panels with aligned vector loads.
struct Arena
{
    std::array<AlignedVec<float>, kSlots> f32;
    std::array<AlignedVec<double>, kSlots> f64;
    std::array<AlignedVec<std::int8_t>, kSlots> i8;
    std::array<AlignedVec<std::int32_t>, kSlots> i32;
    std::array<AlignedVec<std::int64_t>, kSlots> i64;
};

Arena&
arena()
{
    thread_local Arena a;
    return a;
}

template <typename T>
std::span<T>
borrow(std::array<AlignedVec<T>, kSlots>& pool, ScratchSlot slot,
       std::size_t n)
{
    auto& buf = pool[static_cast<std::size_t>(slot)];
    if (buf.size() < n)
        buf.resize(n);
    return {buf.data(), n};
}

template <typename T>
std::size_t
reservedBytes(const std::array<AlignedVec<T>, kSlots>& pool)
{
    std::size_t bytes = 0;
    for (const auto& b : pool)
        bytes += b.capacity() * sizeof(T);
    return bytes;
}

template <typename T>
void
releasePool(std::array<AlignedVec<T>, kSlots>& pool)
{
    for (auto& b : pool) {
        b.clear();
        b.shrink_to_fit();
    }
}

} // namespace

std::span<float>
scratchF32(ScratchSlot slot, std::size_t n)
{
    return borrow(arena().f32, slot, n);
}

std::span<double>
scratchF64(ScratchSlot slot, std::size_t n)
{
    return borrow(arena().f64, slot, n);
}

std::span<std::int8_t>
scratchI8(ScratchSlot slot, std::size_t n)
{
    return borrow(arena().i8, slot, n);
}

std::span<std::int32_t>
scratchI32(ScratchSlot slot, std::size_t n)
{
    return borrow(arena().i32, slot, n);
}

std::span<std::int64_t>
scratchI64(ScratchSlot slot, std::size_t n)
{
    return borrow(arena().i64, slot, n);
}

std::size_t
scratchBytesReserved()
{
    const Arena& a = arena();
    return reservedBytes(a.f32) + reservedBytes(a.f64) +
        reservedBytes(a.i8) + reservedBytes(a.i32) +
        reservedBytes(a.i64);
}

void
scratchRelease()
{
    Arena& a = arena();
    releasePool(a.f32);
    releasePool(a.f64);
    releasePool(a.i8);
    releasePool(a.i32);
    releasePool(a.i64);
}

} // namespace core
} // namespace edgebench
