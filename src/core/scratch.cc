#include "edgebench/core/scratch.hh"

#include <array>
#include <vector>

namespace edgebench
{
namespace core
{

namespace
{

constexpr std::size_t kSlots =
    static_cast<std::size_t>(ScratchSlot::kCount);

struct Arena
{
    std::array<std::vector<float>, kSlots> f32;
    std::array<std::vector<double>, kSlots> f64;
};

Arena&
arena()
{
    thread_local Arena a;
    return a;
}

} // namespace

std::span<float>
scratchF32(ScratchSlot slot, std::size_t n)
{
    auto& buf = arena().f32[static_cast<std::size_t>(slot)];
    if (buf.size() < n)
        buf.resize(n);
    return {buf.data(), n};
}

std::span<double>
scratchF64(ScratchSlot slot, std::size_t n)
{
    auto& buf = arena().f64[static_cast<std::size_t>(slot)];
    if (buf.size() < n)
        buf.resize(n);
    return {buf.data(), n};
}

std::size_t
scratchBytesReserved()
{
    std::size_t bytes = 0;
    for (const auto& b : arena().f32)
        bytes += b.capacity() * sizeof(float);
    for (const auto& b : arena().f64)
        bytes += b.capacity() * sizeof(double);
    return bytes;
}

void
scratchRelease()
{
    Arena& a = arena();
    for (auto& b : a.f32) {
        b.clear();
        b.shrink_to_fit();
    }
    for (auto& b : a.f64) {
        b.clear();
        b.shrink_to_fit();
    }
}

} // namespace core
} // namespace edgebench
