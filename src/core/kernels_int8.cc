#include "edgebench/core/kernels_int8.hh"

#include <algorithm>
#include <cmath>
#include <limits>

#include "edgebench/core/common.hh"
#include "edgebench/core/parallel.hh"
#include "edgebench/core/scratch.hh"

namespace edgebench
{
namespace core
{

namespace
{

/**
 * Strict bias validation shared by every integer conv/dense path: a
 * default (scalar-shaped, empty-shape) tensor means "no bias";
 * anything else must be exactly [out_c]. A malformed bias is a hard
 * error, never silently ignored (the fp32 kernels adopted the same
 * contract in the pack-and-tile PR).
 */
bool
checkBiasInt8(const Tensor& bias, std::int64_t out_c, const char* what)
{
    if (bias.shape().empty())
        return false;
    EB_CHECK(bias.shape() == Shape({out_c}),
             what << ": bad bias shape " << shapeToString(bias.shape())
                  << " != expected " << shapeToString(Shape{out_c}));
    return true;
}

void
checkConvOperandsInt8(const Tensor& input, const Tensor& weights,
                      const Conv2dGeom& g, const char* what)
{
    EB_CHECK(input.dtype() == DType::kI8 &&
                 weights.dtype() == DType::kI8,
             what << ": inputs must be int8");
    EB_CHECK(input.shape() == Shape({g.n, g.inC, g.inH, g.inW}),
             what << ": input shape " << shapeToString(input.shape())
                  << " != expected "
                  << shapeToString(Shape{g.n, g.inC, g.inH, g.inW}));
    EB_CHECK(weights.shape() ==
                 Shape({g.outC, g.inC / g.groups, g.kH, g.kW}),
             what << ": bad weight shape "
                  << shapeToString(weights.shape()));
}

/** True when the direct depthwise kernel applies (one input channel
 * per group; depth multipliers outC > groups included). */
bool
isDepthwiseInt8(const Conv2dGeom& g)
{
    return g.groups > 1 && g.inC == g.groups;
}

/** The input zero point as the int8 padding value (real zero). */
std::int8_t
padValueInt8(const QuantParams& qp)
{
    return static_cast<std::int8_t>(
        std::clamp<std::int32_t>(qp.zeroPoint, -128, 127));
}

/**
 * Direct depthwise integer convolution: each output plane reads one
 * input plane, so im2col and the GEMM dispatch are pure overhead.
 * Same integer arithmetic as the naive oracle (int32 raw products,
 * folded bias, fixed-point requant), so results stay bit-identical to
 * conv2dInt8Naive. One task per (batch, output-channel) plane.
 */
Tensor
conv2dInt8Depthwise(const Tensor& input, const Tensor& weights,
                    const Tensor& bias, const Conv2dGeom& g,
                    bool has_bias, const QuantParams& out_qp,
                    EpilogueAct act)
{
    const std::int64_t ocg = g.outC / g.groups;
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    const QuantParams iq = input.quantParams();
    const QuantParams wq = weights.quantParams();
    const double acc_scale = iq.scale * wq.scale;
    const RequantScale rs =
        makeRequantScale(acc_scale / out_qp.scale);
    std::int32_t qlo = -128;
    std::int32_t qhi = 127;
    int8ActBounds(act, out_qp, qlo, qhi);
    Tensor result =
        Tensor::forOutputI8(Shape{g.n, g.outC, oh, ow}, out_qp);
    auto out = result.qdataMut();
    auto in = input.qdata();
    auto w = weights.qdata();
    parallelFor(
        g.n * g.outC,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const std::int64_t b = p / g.outC;
                const std::int64_t oc = p % g.outC;
                const std::int64_t ic = oc / ocg;
                const std::int8_t* iplane =
                    in.data() + (b * g.inC + ic) * g.inH * g.inW;
                const std::int8_t* wk = w.data() + oc * g.kH * g.kW;
                const std::int64_t bias_q = has_bias
                    ? quantizeBiasValue(bias.at(oc), acc_scale)
                    : 0;
                std::int8_t* oplane = out.data() + p * oh * ow;
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                    for (std::int64_t ox = 0; ox < ow; ++ox) {
                        std::int32_t acc = 0;
                        for (std::int64_t ky = 0; ky < g.kH; ++ky) {
                            const std::int64_t iy =
                                oy * g.strideH - g.padH + ky * g.dilH;
                            if (iy < 0 || iy >= g.inH)
                                continue;
                            for (std::int64_t kx = 0; kx < g.kW;
                                 ++kx) {
                                const std::int64_t ix =
                                    ox * g.strideW - g.padW +
                                    kx * g.dilW;
                                if (ix < 0 || ix >= g.inW)
                                    continue;
                                acc += (iplane[iy * g.inW + ix] -
                                        iq.zeroPoint) *
                                    (wk[ky * g.kW + kx] -
                                     wq.zeroPoint);
                            }
                        }
                        oplane[oy * ow + ox] = requantizeFixedPoint(
                            acc + bias_q, rs, out_qp.zeroPoint, qlo,
                            qhi);
                    }
                }
            }
        },
        /*min_grain=*/2);
    return result;
}

/**
 * Shared int8 im2col + packed-GEMM body: per-group weight panels come
 * from the caller (packed once per call, or once per model via the
 * interpreter's cache) and are reused across the whole batch loop.
 */
Tensor
conv2dInt8Im2colPacked(const Tensor& input,
                       const std::vector<PackedAI8View>& wpanels,
                       const QuantParams& wq, const Tensor& bias,
                       const Conv2dGeom& g, bool has_bias,
                       const QuantParams& out_qp, EpilogueAct act)
{
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t ocg = g.outC / g.groups;
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    const std::int64_t patch = cg * g.kH * g.kW;
    const QuantParams iq = input.quantParams();
    const Int8GemmQuant quant{wq, iq, out_qp};
    // 1x1 stride-1 unpadded convolutions read the input verbatim, so
    // pack B straight from the image instead of materializing the
    // column matrix (mirrors the fp32 pointwise shortcut).
    const bool pointwise = g.kH == 1 && g.kW == 1 && g.strideH == 1 &&
        g.strideW == 1 && g.padH == 0 && g.padW == 0;
    Tensor result =
        Tensor::forOutputI8(Shape{g.n, g.outC, oh, ow}, out_qp);
    auto out = result.qdataMut();
    // Scratch borrows hoisted out of the batch/group loops: one column
    // matrix and one packed-B panel set (values + column sums), reused
    // for every (batch, group) iteration.
    std::span<std::int8_t> columns;
    if (!pointwise)
        columns = scratchI8(ScratchSlot::kIm2ColI8,
                            static_cast<std::size_t>(patch * oh * ow));
    std::span<std::int8_t> packed_b = scratchI8(
        ScratchSlot::kGemmPackBI8,
        static_cast<std::size_t>(packedBI8ValueCount(oh * ow, patch)));
    std::span<std::int32_t> col_sums = scratchI32(
        ScratchSlot::kGemmPackBI8,
        static_cast<std::size_t>(packedBI8SumCount(oh * ow)));
    std::span<const float> bias_all;
    if (has_bias)
        bias_all = bias.data();
    auto in = input.qdata();
    for (std::int64_t b = 0; b < g.n; ++b) {
        std::span<const std::int8_t> image = in.subspan(
            static_cast<std::size_t>(b * g.inC * g.inH * g.inW),
            static_cast<std::size_t>(g.inC * g.inH * g.inW));
        for (std::int64_t grp = 0; grp < g.groups; ++grp) {
            if (pointwise) {
                packBInt8Into(
                    oh * ow, patch,
                    image.subspan(
                        static_cast<std::size_t>(grp * cg * g.inH *
                                                 g.inW),
                        static_cast<std::size_t>(patch * oh * ow)),
                    packed_b, col_sums);
            } else {
                im2colInt8(image, g, grp, padValueInt8(iq), columns);
                packBInt8Into(oh * ow, patch, columns, packed_b,
                              col_sums);
            }
            std::span<const float> bias_grp;
            if (has_bias)
                bias_grp = bias_all.subspan(
                    static_cast<std::size_t>(grp * ocg),
                    static_cast<std::size_t>(ocg));
            std::span<std::int8_t> omat(
                out.data() + ((b * g.outC) + grp * ocg) * oh * ow,
                static_cast<std::size_t>(ocg * oh * ow));
            gemmPackedInt8(wpanels[static_cast<std::size_t>(grp)],
                           oh * ow, packed_b, col_sums, bias_grp,
                           quant, omat, act);
        }
    }
    return result;
}

} // namespace

void
im2colInt8(std::span<const std::int8_t> image, const Conv2dGeom& g,
           std::int64_t group, std::int8_t pad_value,
           std::span<std::int8_t> columns)
{
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    EB_CHECK(static_cast<std::int64_t>(columns.size()) ==
                 cg * g.kH * g.kW * oh * ow,
             "im2colInt8: bad columns size");
    const std::int64_t c0 = group * cg;
    // Each patch row (c, ky, kx) owns one contiguous oh*ow slice of
    // the column matrix; partition the rows across the workers.
    parallelFor(
        cg * g.kH * g.kW,
        [&](std::int64_t r0, std::int64_t r1) {
            for (std::int64_t r = r0; r < r1; ++r) {
                const std::int64_t c = r / (g.kH * g.kW);
                const std::int64_t ky = (r / g.kW) % g.kH;
                const std::int64_t kx = r % g.kW;
                std::int8_t* row = columns.data() + r * oh * ow;
                for (std::int64_t oy = 0; oy < oh; ++oy) {
                    const std::int64_t iy =
                        oy * g.strideH - g.padH + ky * g.dilH;
                    for (std::int64_t ox = 0; ox < ow; ++ox) {
                        const std::int64_t ix =
                            ox * g.strideW - g.padW + kx * g.dilW;
                        std::int8_t v = pad_value;
                        if (iy >= 0 && iy < g.inH && ix >= 0 &&
                            ix < g.inW) {
                            v = image[((c0 + c) * g.inH + iy) * g.inW +
                                      ix];
                        }
                        row[oy * ow + ox] = v;
                    }
                }
            }
        },
        /*min_grain=*/4);
}

Tensor
conv2dInt8Naive(const Tensor& input, const Tensor& weights,
                const Tensor& bias, const Conv2dGeom& g,
                const QuantParams& out_qp)
{
    g.validate();
    checkConvOperandsInt8(input, weights, g, "conv2dInt8Naive");
    const bool has_bias =
        checkBiasInt8(bias, g.outC, "conv2dInt8Naive");
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t ocg = g.outC / g.groups;

    const QuantParams iq = input.quantParams();
    const QuantParams wq = weights.quantParams();
    const double acc_scale = iq.scale * wq.scale;
    const RequantScale rs =
        makeRequantScale(acc_scale / out_qp.scale);

    const std::int64_t oh = g.outH();
    const std::int64_t ow = g.outW();
    std::vector<std::int8_t> out(
        static_cast<std::size_t>(g.n * g.outC * oh * ow));
    auto in = input.qdata();
    auto w = weights.qdata();
    // Partition (batch, output-channel) planes across workers; integer
    // accumulation is order-independent, but the per-element loop
    // order is also left untouched.
    parallelFor(
        g.n * g.outC,
        [&](std::int64_t p0, std::int64_t p1) {
            for (std::int64_t p = p0; p < p1; ++p) {
                const std::int64_t b = p / g.outC;
                const std::int64_t oc = p % g.outC;
                const std::int64_t grp = oc / ocg;
                const std::int64_t bias_q = has_bias
                    ? quantizeBiasValue(bias.at(oc), acc_scale)
                    : 0;
                for (std::int64_t oy = 0; oy < oh; ++oy)
                for (std::int64_t ox = 0; ox < ow; ++ox) {
                    std::int64_t acc = 0;
                    for (std::int64_t c = 0; c < cg; ++c) {
                        const std::int64_t ic = grp * cg + c;
                        for (std::int64_t ky = 0; ky < g.kH; ++ky) {
                            const std::int64_t iy =
                                oy * g.strideH - g.padH + ky * g.dilH;
                            for (std::int64_t kx = 0; kx < g.kW;
                                 ++kx) {
                                const std::int64_t ix = ox * g.strideW -
                                    g.padW + kx * g.dilW;
                                // Out-of-bounds reads behave as
                                // real-zero input (quantized value ==
                                // input zero point), contributing 0.
                                const std::int32_t qi =
                                    (iy >= 0 && iy < g.inH && ix >= 0 &&
                                     ix < g.inW)
                                        ? in[((b * g.inC + ic) * g.inH +
                                              iy) * g.inW + ix]
                                        : iq.zeroPoint;
                                const std::int32_t qw =
                                    w[((oc * cg + c) * g.kH + ky) *
                                          g.kW + kx];
                                acc += static_cast<std::int64_t>(
                                           qi - iq.zeroPoint) *
                                    (qw - wq.zeroPoint);
                            }
                        }
                    }
                    out[static_cast<std::size_t>(
                        (p * oh + oy) * ow + ox)] =
                        requantizeFixedPoint(acc + bias_q, rs,
                                             out_qp.zeroPoint);
                }
            }
        },
        /*min_grain=*/2);
    return Tensor::fromInt8(Shape{g.n, g.outC, oh, ow}, std::move(out),
                            out_qp);
}

PackedConvWeightsI8
packConv2dWeightsInt8(const Tensor& weights, const Conv2dGeom& g)
{
    g.validate();
    EB_CHECK(weights.dtype() == DType::kI8,
             "packConv2dWeightsInt8: weights must be int8");
    EB_CHECK(weights.shape() ==
                 Shape({g.outC, g.inC / g.groups, g.kH, g.kW}),
             "packConv2dWeightsInt8: bad weight shape "
                 << shapeToString(weights.shape()));
    PackedConvWeightsI8 packed;
    if (isDepthwiseInt8(g))
        return packed; // direct kernel reads the raw weight tensor
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t ocg = g.outC / g.groups;
    const std::int64_t patch = cg * g.kH * g.kW;
    auto w = weights.qdata();
    packed.groups.reserve(static_cast<std::size_t>(g.groups));
    for (std::int64_t grp = 0; grp < g.groups; ++grp)
        packed.groups.push_back(packAInt8(
            ocg, patch,
            w.subspan(static_cast<std::size_t>(grp * ocg * patch),
                      static_cast<std::size_t>(ocg * patch))));
    return packed;
}

Tensor
conv2dInt8Packed(const Tensor& input, const Tensor& weights,
                 const PackedConvWeightsI8& packed, const Tensor& bias,
                 const Conv2dGeom& g, const QuantParams& out_qp,
                 EpilogueAct act)
{
    g.validate();
    checkConvOperandsInt8(input, weights, g, "conv2dInt8Packed");
    const bool has_bias =
        checkBiasInt8(bias, g.outC, "conv2dInt8Packed");
    if (isDepthwiseInt8(g))
        return conv2dInt8Depthwise(input, weights, bias, g, has_bias,
                                   out_qp, act);
    EB_CHECK(static_cast<std::int64_t>(packed.groups.size()) ==
                 g.groups,
             "conv2dInt8Packed: packed weights for "
                 << packed.groups.size() << " groups, geometry has "
                 << g.groups);
    std::vector<PackedAI8View> views;
    views.reserve(packed.groups.size());
    for (const PackedAI8& pa : packed.groups)
        views.push_back(pa.view());
    return conv2dInt8Im2colPacked(input, views, weights.quantParams(),
                                  bias, g, has_bias, out_qp, act);
}

Tensor
conv2dInt8(const Tensor& input, const Tensor& weights,
           const Tensor& bias, const Conv2dGeom& g,
           const QuantParams& out_qp, EpilogueAct act)
{
    g.validate();
    checkConvOperandsInt8(input, weights, g, "conv2dInt8");
    const bool has_bias = checkBiasInt8(bias, g.outC, "conv2dInt8");
    if (isDepthwiseInt8(g))
        return conv2dInt8Depthwise(input, weights, bias, g, has_bias,
                                   out_qp, act);
    // Weight packing hoisted out of the batch loop: all groups packed
    // once per call into a single pair of scratch borrows (values +
    // row sums), reused for every batch element.
    const std::int64_t cg = g.inC / g.groups;
    const std::int64_t ocg = g.outC / g.groups;
    const std::int64_t patch = cg * g.kH * g.kW;
    const std::int64_t vals_per_group = packedAI8ValueCount(ocg, patch);
    const std::int64_t sums_per_group = packedAI8SumCount(ocg);
    std::span<std::int8_t> pa_vals = scratchI8(
        ScratchSlot::kGemmPackAI8,
        static_cast<std::size_t>(g.groups * vals_per_group));
    std::span<std::int32_t> pa_sums = scratchI32(
        ScratchSlot::kGemmPackAI8,
        static_cast<std::size_t>(g.groups * sums_per_group));
    auto w = weights.qdata();
    std::vector<PackedAI8View> views;
    views.reserve(static_cast<std::size_t>(g.groups));
    for (std::int64_t grp = 0; grp < g.groups; ++grp)
        views.push_back(packAInt8Into(
            ocg, patch,
            w.subspan(static_cast<std::size_t>(grp * ocg * patch),
                      static_cast<std::size_t>(ocg * patch)),
            pa_vals.subspan(
                static_cast<std::size_t>(grp * vals_per_group)),
            pa_sums.subspan(
                static_cast<std::size_t>(grp * sums_per_group))));
    return conv2dInt8Im2colPacked(input, views, weights.quantParams(),
                                  bias, g, has_bias, out_qp, act);
}

namespace
{

void
checkDenseOperandsInt8(const Tensor& input, const Tensor& weights,
                       const DenseGeom& g, const char* what)
{
    EB_CHECK(input.dtype() == DType::kI8 &&
                 weights.dtype() == DType::kI8,
             what << ": inputs must be int8");
    EB_CHECK(input.numel() == g.batch * g.inFeatures,
             what << ": bad input size");
    EB_CHECK(weights.shape() == Shape({g.outFeatures, g.inFeatures}),
             what << ": bad weight shape "
                  << shapeToString(weights.shape()));
}

/** Dense body over packed int8 weights: one GEMV per batch row. */
Tensor
denseInt8PackedImpl(const Tensor& input, const PackedAI8View& pa,
                    const QuantParams& wq, const Tensor& bias,
                    const DenseGeom& g, bool has_bias,
                    const QuantParams& out_qp)
{
    const Int8GemmQuant quant{wq, input.quantParams(), out_qp};
    std::span<const float> bias_span;
    if (has_bias)
        bias_span = bias.data();
    Tensor result =
        Tensor::forOutputI8(Shape{g.batch, g.outFeatures}, out_qp);
    auto out = result.qdataMut();
    auto in = input.qdata();
    for (std::int64_t b = 0; b < g.batch; ++b)
        gemvPackedInt8(
            pa,
            in.subspan(static_cast<std::size_t>(b * g.inFeatures),
                       static_cast<std::size_t>(g.inFeatures)),
            bias_span, quant,
            {out.data() + b * g.outFeatures,
             static_cast<std::size_t>(g.outFeatures)});
    return result;
}

} // namespace

Tensor
denseInt8Naive(const Tensor& input, const Tensor& weights,
               const Tensor& bias, const DenseGeom& g,
               const QuantParams& out_qp)
{
    g.validate();
    checkDenseOperandsInt8(input, weights, g, "denseInt8Naive");
    const bool has_bias =
        checkBiasInt8(bias, g.outFeatures, "denseInt8Naive");

    const QuantParams iq = input.quantParams();
    const QuantParams wq = weights.quantParams();
    const double acc_scale = iq.scale * wq.scale;
    const RequantScale rs =
        makeRequantScale(acc_scale / out_qp.scale);

    std::vector<std::int8_t> out(
        static_cast<std::size_t>(g.batch * g.outFeatures));
    auto in = input.qdata();
    auto w = weights.qdata();
    // One output feature per task, flattened over the batch.
    parallelFor(
        g.batch * g.outFeatures,
        [&](std::int64_t j0, std::int64_t j1) {
            for (std::int64_t j = j0; j < j1; ++j) {
                const std::int64_t b = j / g.outFeatures;
                const std::int64_t of = j % g.outFeatures;
                std::int64_t acc = 0;
                const std::int8_t* irow = in.data() + b * g.inFeatures;
                const std::int8_t* wrow = w.data() + of * g.inFeatures;
                for (std::int64_t i = 0; i < g.inFeatures; ++i)
                    acc += static_cast<std::int64_t>(
                               irow[i] - iq.zeroPoint) *
                        (wrow[i] - wq.zeroPoint);
                const std::int64_t bias_q = has_bias
                    ? quantizeBiasValue(bias.at(of), acc_scale)
                    : 0;
                out[static_cast<std::size_t>(j)] = requantizeFixedPoint(
                    acc + bias_q, rs, out_qp.zeroPoint);
            }
        },
        /*min_grain=*/16);
    return Tensor::fromInt8(Shape{g.batch, g.outFeatures},
                            std::move(out), out_qp);
}

PackedAI8
packDenseWeightsInt8(const Tensor& weights, const DenseGeom& g)
{
    g.validate();
    EB_CHECK(weights.dtype() == DType::kI8,
             "packDenseWeightsInt8: weights must be int8");
    EB_CHECK(weights.shape() == Shape({g.outFeatures, g.inFeatures}),
             "packDenseWeightsInt8: bad weight shape "
                 << shapeToString(weights.shape()));
    return packAInt8(g.outFeatures, g.inFeatures, weights.qdata());
}

Tensor
denseInt8Packed(const Tensor& input, const Tensor& weights,
                const PackedAI8& packed, const Tensor& bias,
                const DenseGeom& g, const QuantParams& out_qp)
{
    g.validate();
    checkDenseOperandsInt8(input, weights, g, "denseInt8Packed");
    const bool has_bias =
        checkBiasInt8(bias, g.outFeatures, "denseInt8Packed");
    EB_CHECK(packed.m == g.outFeatures && packed.k == g.inFeatures,
             "denseInt8Packed: packed weights are "
                 << packed.m << "x" << packed.k << ", geometry wants "
                 << g.outFeatures << "x" << g.inFeatures);
    return denseInt8PackedImpl(input, packed.view(),
                               weights.quantParams(), bias, g,
                               has_bias, out_qp);
}

Tensor
denseInt8(const Tensor& input, const Tensor& weights,
          const Tensor& bias, const DenseGeom& g,
          const QuantParams& out_qp)
{
    g.validate();
    checkDenseOperandsInt8(input, weights, g, "denseInt8");
    const bool has_bias =
        checkBiasInt8(bias, g.outFeatures, "denseInt8");
    // Ad-hoc path: pack the weights into scratch (values + row sums),
    // then run the same GEMV body as the cached path.
    std::span<std::int8_t> pa_vals = scratchI8(
        ScratchSlot::kGemmPackAI8,
        static_cast<std::size_t>(
            packedAI8ValueCount(g.outFeatures, g.inFeatures)));
    std::span<std::int32_t> pa_sums = scratchI32(
        ScratchSlot::kGemmPackAI8,
        static_cast<std::size_t>(packedAI8SumCount(g.outFeatures)));
    const PackedAI8View pa = packAInt8Into(
        g.outFeatures, g.inFeatures, weights.qdata(), pa_vals, pa_sums);
    return denseInt8PackedImpl(input, pa, weights.quantParams(), bias,
                               g, has_bias, out_qp);
}

namespace
{

/**
 * Clamp in the quantized domain: the bounds are mapped to quantized
 * values once, then every element is a pure int8 clamp. Clamping
 * never changes the QuantParams, so no requantization is involved.
 */
Tensor
clampInt8(const Tensor& input, double real_lo, double real_hi)
{
    EB_CHECK(input.dtype() == DType::kI8, "clampInt8: not int8");
    const QuantParams qp = input.quantParams();
    std::int32_t qlo = 0;
    std::int32_t qhi = 0;
    quantizedClampBounds(qp, real_lo, real_hi, qlo, qhi);
    Tensor result = Tensor::forOutputI8(input.shape(), qp);
    auto out = result.qdataMut();
    auto q = input.qdata();
    parallelFor(
        static_cast<std::int64_t>(q.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i)
                out[static_cast<std::size_t>(i)] =
                    static_cast<std::int8_t>(std::clamp<std::int32_t>(
                        q[i], qlo, qhi));
        },
        /*min_grain=*/4096);
    return result;
}

/** In-place variant: same bounds, same parallel split, mutating @p t. */
void
clampInt8InPlace(Tensor& t, double real_lo, double real_hi)
{
    EB_CHECK(t.dtype() == DType::kI8, "clampInt8: not int8");
    const QuantParams qp = t.quantParams();
    std::int32_t qlo = 0;
    std::int32_t qhi = 0;
    quantizedClampBounds(qp, real_lo, real_hi, qlo, qhi);
    auto q = t.qdataMut();
    parallelFor(
        static_cast<std::int64_t>(q.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i)
                q[i] = static_cast<std::int8_t>(
                    std::clamp<std::int32_t>(q[i], qlo, qhi));
        },
        /*min_grain=*/4096);
}

} // namespace

Tensor
reluInt8(const Tensor& input)
{
    return clampInt8(input, 0.0,
                     std::numeric_limits<double>::infinity());
}

Tensor
relu6Int8(const Tensor& input)
{
    return clampInt8(input, 0.0, 6.0);
}

void
reluInt8InPlace(Tensor& t)
{
    clampInt8InPlace(t, 0.0, std::numeric_limits<double>::infinity());
}

void
relu6Int8InPlace(Tensor& t)
{
    clampInt8InPlace(t, 0.0, 6.0);
}

Tensor
addInt8(const Tensor& a, const Tensor& b, const QuantParams& out_qp)
{
    EB_CHECK(a.dtype() == DType::kI8 && b.dtype() == DType::kI8,
             "addInt8: inputs must be int8");
    EB_CHECK(sameShape(a.shape(), b.shape()), "addInt8: shape mismatch");
    const QuantParams aq = a.quantParams();
    const QuantParams bq = b.quantParams();
    // Both operands rescale to the output grid through fixed-point
    // multipliers sharing one shift:
    //   q_out = rrs((q_a - z_a) * m_a + (q_b - z_b) * m_b, s) + z_out
    // with m = round(scale_ratio * 2^s) and s chosen so the larger
    // ratio lands on a 30-bit mantissa. |q - z| <= 255 and m <= 2^30
    // bound each term by 2^38, far inside int64.
    const double ratio_a = aq.scale / out_qp.scale;
    const double ratio_b = bq.scale / out_qp.scale;
    EB_CHECK(std::isfinite(ratio_a) && ratio_a > 0.0 &&
                 std::isfinite(ratio_b) && ratio_b > 0.0,
             "addInt8: bad scale ratio");
    int exponent = 0;
    std::frexp(std::max(ratio_a, ratio_b), &exponent);
    const std::int32_t shift = 30 - exponent;
    EB_CHECK(shift >= 1 && shift <= 62,
             "addInt8: scale ratio out of fixed-point range");
    const std::int64_t mult_a = std::llround(std::ldexp(ratio_a, shift));
    const std::int64_t mult_b = std::llround(std::ldexp(ratio_b, shift));
    auto pa = a.qdata();
    auto pb = b.qdata();
    Tensor result = Tensor::forOutputI8(a.shape(), out_qp);
    auto out = result.qdataMut();
    parallelFor(
        static_cast<std::int64_t>(pa.size()),
        [&](std::int64_t i0, std::int64_t i1) {
            for (std::int64_t i = i0; i < i1; ++i) {
                const std::int64_t acc =
                    (pa[i] - aq.zeroPoint) * mult_a +
                    (pb[i] - bq.zeroPoint) * mult_b;
                const std::int64_t q =
                    roundingRightShift(acc, shift) + out_qp.zeroPoint;
                out[static_cast<std::size_t>(i)] =
                    static_cast<std::int8_t>(
                        std::clamp<std::int64_t>(q, -128, 127));
            }
        },
        /*min_grain=*/4096);
    return result;
}

} // namespace core
} // namespace edgebench
